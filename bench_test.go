// Package aqlsched's root benchmarks regenerate every table and figure
// of the paper's evaluation (Section 4); one testing.B target per
// artifact. Run them with:
//
//	go test -bench=. -benchmem
//
// Each iteration performs the full experiment on the simulator; the
// reported wall time is the cost of regenerating that artifact.
package aqlsched_test

import (
	"fmt"
	"runtime"
	"testing"

	"aqlsched/internal/experiments"
	"aqlsched/internal/fleet"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/sweep"
)

func benchCfg(b *testing.B) experiments.Config {
	b.Helper()
	if testing.Short() {
		return experiments.QuickConfig()
	}
	cfg := experiments.QuickConfig() // benches always use the quick windows
	return cfg
}

// BenchmarkFig2Calibration regenerates the quantum-length calibration
// (Fig. 2 (a)-(f) plus the lock-duration inset).
func BenchmarkFig2Calibration(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2(cfg)
		if len(r.Report.Curves) == 0 {
			b.Fatal("no calibration curves")
		}
	}
}

// BenchmarkFig4VTRS regenerates the online recognition traces (Fig. 4).
func BenchmarkFig4VTRS(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(cfg)
		if len(r.Traces) != 5 {
			b.Fatal("expected 5 traces")
		}
	}
}

// BenchmarkTable3Recognition regenerates the per-application type
// census (Table 3).
func BenchmarkTable3Recognition(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		r := experiments.Table3(cfg)
		if len(r.Entries) == 0 {
			b.Fatal("no entries")
		}
	}
}

// BenchmarkFig5Robustness regenerates the per-app quantum sweep (Fig. 5).
func BenchmarkFig5Robustness(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(cfg)
		if len(r.Apps) == 0 {
			b.Fatal("no apps")
		}
	}
}

// BenchmarkFig6SingleSocket regenerates Table 5 and Fig. 6 (left):
// scenarios S1-S5 under default Xen and AQL_Sched.
func BenchmarkFig6SingleSocket(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		r := experiments.SingleSocket(cfg)
		if len(r.Scenarios) != 5 {
			b.Fatal("expected 5 scenarios")
		}
	}
}

// BenchmarkFig6FourSocket regenerates Fig. 6 (right): the Fig. 3
// population on the 4-socket machine.
func BenchmarkFig6FourSocket(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6Right(cfg)
		if len(r.Clusters) == 0 {
			b.Fatal("no clusters")
		}
	}
}

// BenchmarkFig7Customization regenerates the quantum-customization
// ablation (Fig. 7).
func BenchmarkFig7Customization(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7(cfg)
		if len(r.Norm) != 3 {
			b.Fatal("expected 3 ablation cases")
		}
	}
}

// BenchmarkFig8Baselines regenerates the comparison with vTurbo,
// Microsliced and vSlicer (Fig. 8).
func BenchmarkFig8Baselines(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(cfg)
		if len(r.Norm) != 4 {
			b.Fatal("expected 4 policies")
		}
	}
}

// BenchmarkOverhead regenerates the Section 4.3 overhead measurement.
func BenchmarkOverhead(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		r := experiments.Overhead(cfg)
		if r.Periods == 0 {
			b.Fatal("monitor never sampled")
		}
	}
}

// BenchmarkFleet100Hosts runs a full datacenter-scale fleet scenario —
// 100 hosts, a 2,400-vCPU population with churn, live migrations — and
// reports the simulator's scale-out throughput as simulated VM-seconds
// per wall-clock second ("vmsec/s", higher is better). The workers
// sub-benchmarks shard host advances across that many goroutines
// (epoch-parallel execution; results are identical at any count) and
// also report GOMAXPROCS: on a 1-core container workers=2/4 tie with
// workers=1 by construction, so a flat curve there is the scheduler's
// doing, not a failed optimisation.
func BenchmarkFleet100Hosts(b *testing.B) {
	spec := fleet100Spec()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var vmSeconds float64
			for i := 0; i < b.N; i++ {
				res := fleet.Run(spec, fleet.Options{Workers: workers})
				v, ok := res.Metrics.Get("fleet_vm_seconds")
				if !ok || v <= 0 {
					b.Fatalf("fleet_vm_seconds = %v (ok=%v)", v, ok)
				}
				vmSeconds = v
			}
			b.ReportMetric(vmSeconds*float64(b.N)/b.Elapsed().Seconds(), "vmsec/s")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

func fleet100Spec() fleet.Spec {
	return fleet.Spec{
		Name:      "fleet-bench",
		Hosts:     100,
		OverSub:   3,
		Placement: "least-loaded",
		Tenants:   []fleet.Tenant{{Name: "alpha", Weight: 2}, {Name: "beta", Weight: 1}, {Name: "gamma", Weight: 1}},
		VCPUs:     2400,
		Mix: map[string]float64{
			"IOInt": 0.25, "ConSpin": 0.25, "LLCF": 0.2, "LLCO": 0.15, "LoLCF": 0.15,
		},
		Churn: &scenario.ChurnSpec{
			Rate:         40,
			MeanLifetime: 400 * sim.Millisecond,
			MinLifetime:  100 * sim.Millisecond,
			Horizon:      900 * sim.Millisecond,
		},
		Rebalance: fleet.Rebalance{
			Every:         100 * sim.Millisecond,
			Threshold:     0.05,
			MigrationTime: 40 * sim.Millisecond,
			MaxPerTick:    8,
		},
		Warmup:  300 * sim.Millisecond,
		Measure: 700 * sim.Millisecond,
		Seed:    sweep.DefaultSeed,
	}
}

// sweepBenchSpec is a small real grid — S1+S5 under three policies,
// two seed replications (12 runs) — with short windows. It is the
// built-in "bench" sweep, shared with the golden-determinism test.
func sweepBenchSpec(b *testing.B) *sweep.Spec {
	b.Helper()
	spec, ok := sweep.Builtin("bench")
	if !ok {
		b.Fatal("built-in bench sweep missing")
	}
	return spec
}

// BenchmarkSweepParallel compares sequential against parallel
// execution of the same sweep grid; the aggregates are bit-identical
// either way, only the wall time differs. On a single-core host the
// two variants tie (pool overhead is noise); the speedup scales with
// GOMAXPROCS.
func BenchmarkSweepParallel(b *testing.B) {
	parallel := runtime.GOMAXPROCS(0)
	if parallel < 4 {
		parallel = 4
	}
	for _, workers := range []int{1, parallel} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			spec := sweepBenchSpec(b)
			for i := 0; i < b.N; i++ {
				res, err := sweep.Exec(spec, sweep.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if res.Failed() > 0 {
					b.Fatalf("%d failed runs", res.Failed())
				}
			}
		})
	}
}

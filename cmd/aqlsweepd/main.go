// Command aqlsweepd serves sweep execution over HTTP/JSON: submit a
// sweep spec (the exact schema aqlsweep -spec parses) as a job, stream
// its per-cell results incrementally, and fetch the finished artifacts
// — byte-identical to what aqlsweep -out emits for the same spec.
//
// The queue is persistent and crash-safe: every job lives in its own
// directory under -data with a fingerprinted manifest and atomic
// per-cell checkpoints, so a killed daemon re-enqueues in-flight jobs
// on restart and resumes them cell by cell. Dispatch is deficit-
// weighted per-user fair share under strict priority classes; SIGTERM
// drains gracefully (running cells finish, jobs re-queue).
//
//	aqlsweepd -data /var/lib/aqlsweepd -addr 127.0.0.1:8466
//	curl -s localhost:8466/v1/jobs -d '{"user":"ada","builtin":"genmix"}'
//	curl -sN localhost:8466/v1/jobs/job-000001/results
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aqlsched/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8466", "listen address (host:port; port 0 picks a free port)")
	data := flag.String("data", "", "persistent data directory for the job queue (required)")
	jobSlots := flag.Int("job-slots", 1, "jobs executing concurrently")
	workers := flag.Int("workers", 0, "sweep worker goroutines per job (0 = GOMAXPROCS)")
	fleetWorkers := flag.Int("fleet-workers", 0, "host-advance shards per fleet run (0 = spec hint)")
	runTimeout := flag.Duration("run-timeout", 0, "per-run wall-clock watchdog (0 = none)")
	benchDir := flag.String("bench-dir", ".", "directory holding the BENCH_*.json trajectory for /v1/bench")
	flag.Parse()

	logger := log.New(os.Stderr, "aqlsweepd: ", log.LstdFlags)
	if *data == "" {
		fmt.Fprintln(os.Stderr, "aqlsweepd: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	s, err := serve.New(serve.Config{
		DataDir:      *data,
		JobSlots:     *jobSlots,
		SweepWorkers: *workers,
		FleetWorkers: *fleetWorkers,
		RunTimeout:   *runTimeout,
		BenchDir:     *benchDir,
		Logf:         logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("listening on %s (data=%s, job-slots=%d)", ln.Addr(), *data, *jobSlots)

	hs := &http.Server{Handler: s.Handler()}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		logger.Printf("received %s: draining (running cells finish and stay journaled)", sig)
		// Drain first: it rejects new submissions, stops sweeps at the
		// next cell boundary and wakes result streams so Shutdown's wait
		// for in-flight connections can complete.
		s.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}()

	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		logger.Fatal(err)
	}
	logger.Printf("drained; bye")
}

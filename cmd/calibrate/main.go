// Command calibrate reruns the Section 3.4 quantum-length calibration
// (Fig. 2) and prints the per-type curves, the lock-duration sweep, and
// the derived best-quantum table.
//
// Usage:
//
//	calibrate [-quick] [-seed N] [-repeats N]
package main

import (
	"flag"
	"os"

	"aqlsched/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced measurement windows")
	seed := flag.Uint64("seed", 0xCA11B, "simulation seed")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed

	res := experiments.Fig2(cfg)
	for _, t := range res.Tables() {
		t.Render(os.Stdout)
	}
}

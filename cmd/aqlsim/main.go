// Command aqlsim runs one of the paper's colocation scenarios under a
// chosen scheduling policy and prints per-application performance and,
// for AQL_Sched, the cluster layout it settled on.
//
// Usage:
//
//	aqlsim [-scenario S1..S5|four-socket] [-policy xen|aql|vturbo|vslicer|microsliced|fixed]
//	       [-quantum 30ms] [-warmup 2s] [-measure 6s] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"aqlsched/internal/baselines"
	"aqlsched/internal/core"
	"aqlsched/internal/report"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
)

func main() {
	scen := flag.String("scenario", "S5", "scenario: S1..S5 or four-socket")
	policy := flag.String("policy", "aql", "policy: xen, aql, vturbo, vslicer, microsliced, fixed")
	quantum := flag.Duration("quantum", 30*time.Millisecond, "quantum for -policy fixed")
	warmup := flag.Duration("warmup", 2*time.Second, "warm-up window (simulated)")
	measure := flag.Duration("measure", 6*time.Second, "measurement window (simulated)")
	seed := flag.Uint64("seed", 0xA91, "simulation seed")
	flag.Parse()

	var spec scenario.Spec
	if *scen == "four-socket" {
		spec = scenario.FourSocket(*seed)
	} else {
		spec = scenario.ScenarioByName(*scen, *seed)
	}
	spec.Warmup = sim.Time(warmup.Microseconds())
	spec.Measure = sim.Time(measure.Microseconds())

	var ctl *core.Controller
	var pol scenario.Policy
	switch *policy {
	case "xen":
		pol = baselines.XenDefault{}
	case "aql":
		pol = baselines.AQL{Out: &ctl}
	case "vturbo":
		pol = baselines.VTurbo{}
	case "vslicer":
		pol = baselines.VSlicer{}
	case "microsliced":
		pol = baselines.Microsliced()
	case "fixed":
		pol = baselines.FixedQuantum{Q: sim.Time(quantum.Microseconds())}
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	start := time.Now()
	res := scenario.Run(spec, pol)

	t := &report.Table{
		Title:   fmt.Sprintf("%s under %s", spec.Name, res.Policy),
		Headers: []string{"application", "type", "metric", "value"},
	}
	for _, a := range res.Apps {
		if a.IsLatency {
			t.AddRow(a.Name, a.Expected.String(), "mean latency", a.Latency.String())
		} else {
			t.AddRow(a.Name, a.Expected.String(), "throughput", fmt.Sprintf("%.1f jobs/s", a.Throughput))
		}
	}
	t.AddNote("context switches: %d, preemptions: %d, wall time: %v",
		res.CtxSwitches, res.Preemptions, time.Since(start).Round(time.Millisecond))
	t.Render(os.Stdout)

	if ctl != nil && ctl.LastPlan != nil {
		ct := &report.Table{
			Title:   "AQL_Sched cluster layout",
			Headers: []string{"cluster", "quantum", "pCPUs", "members"},
		}
		for _, c := range ctl.LastPlan.Clusters {
			byVariant := map[string]int{}
			for _, m := range c.Members {
				byVariant[m.Variant()]++
			}
			keys := make([]string, 0, len(byVariant))
			for k := range byVariant {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			line := ""
			for i, k := range keys {
				if i > 0 {
					line += ", "
				}
				line += fmt.Sprintf("%d %s", byVariant[k], k)
			}
			ct.AddRow(c.Name, c.Quantum.String(), len(c.PCPUs), line)
		}
		ct.Render(os.Stdout)
	}
}

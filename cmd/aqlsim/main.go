// Command aqlsim runs one catalog scenario under one catalog policy
// and prints per-application performance, the AQL cluster layout (when
// the policy recognizes types) and, for dynamic scenarios, the
// adaptation diagnostics.
//
// Scenario and policy names resolve through the internal/catalog
// registries — the same grammar sweep spec files use (`aqlsweep -list`
// prints every valid name):
//
//	aqlsim -scenario S1..S5|four-socket|dynphase -policy xen|aql|aql-w:<n>|vturbo|vslicer|microsliced|fixed:<dur>|aql-nocustom:<dur>
//	       [-quantum 30ms] [-warmup 2s] [-measure 6s] [-seed N]
//
// `-policy fixed -quantum 5ms` is accepted as back-compat sugar for
// `-policy fixed:5ms`.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"aqlsched/internal/catalog"
	"aqlsched/internal/metrics"
	"aqlsched/internal/report"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
)

// fmtMetric renders one registry metric value with its unit; "us"
// durations use the simulator's adaptive time formatting.
func fmtMetric(name string, v float64) string {
	d, ok := metrics.DescByName(name)
	if !ok {
		return fmt.Sprintf("%.4g", v)
	}
	switch d.Unit {
	case "us":
		return sim.Time(v).String()
	case "s":
		return fmt.Sprintf("%.4g s", v)
	case "index", "frac":
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.4g %s", v, d.Unit)
	}
}

func main() {
	scen := flag.String("scenario", "S5", "catalog scenario name (aqlsweep -list prints them)")
	policy := flag.String("policy", "aql", "catalog policy name or parameterized form (fixed:<dur>, aql-nocustom:<dur>, aql-w:<n>)")
	quantum := flag.Duration("quantum", 30*time.Millisecond, "back-compat: with -policy fixed, shorthand for fixed:<quantum>")
	warmup := flag.Duration("warmup", 2*time.Second, "warm-up window (simulated)")
	measure := flag.Duration("measure", 6*time.Second, "measurement window (simulated)")
	seed := flag.Uint64("seed", 0xA91, "simulation seed")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "aqlsim: "+format+"\n", args...)
		os.Exit(2)
	}

	sc, err := catalog.ScenarioByName(*scen)
	if err != nil {
		fail("unknown scenario %q (known: %s)", *scen, strings.Join(catalog.Scenarios.Names(), ", "))
	}

	polName := *policy
	if polName == "fixed" {
		// Pre-catalog spelling: -policy fixed -quantum 5ms.
		polName = fmt.Sprintf("fixed:%s", *quantum)
	}
	p, err := catalog.PolicyByName(polName)
	if err != nil {
		fail("%v", err)
	}

	spec := sc.New()
	spec.Seed = *seed
	spec.Warmup = sim.Time(warmup.Microseconds())
	spec.Measure = sim.Time(measure.Microseconds())

	pol := p.New()
	start := time.Now()
	res := scenario.Run(spec, pol)

	t := &report.Table{
		Title:   fmt.Sprintf("%s under %s", spec.Name, res.Policy),
		Headers: []string{"application", "type", "metric", "value"},
	}
	for _, a := range res.Apps {
		if a.Metrics.Len() == 0 {
			t.AddRow(a.Name, a.Expected.String(), "-", "measurement failed")
			continue
		}
		for _, name := range a.Metrics.Names() {
			v, _ := a.Metrics.Get(name)
			t.AddRow(a.Name, a.Expected.String(), name, fmtMetric(name, v))
		}
	}
	t.AddNote("context switches: %d, preemptions: %d, pool migrations: %d, wall time: %v",
		res.CtxSwitches, res.Preemptions, res.PoolMigrations, time.Since(start).Round(time.Millisecond))
	t.Render(os.Stdout)

	if cp, ok := pol.(scenario.ControllerProvider); ok {
		if ctl := cp.AQLController(); ctl != nil && ctl.LastPlan != nil {
			ct := &report.Table{
				Title:   "AQL_Sched cluster layout",
				Headers: []string{"cluster", "quantum", "pCPUs", "members"},
			}
			for _, c := range ctl.LastPlan.Clusters {
				byVariant := map[string]int{}
				for _, m := range c.Members {
					byVariant[m.Variant()]++
				}
				keys := make([]string, 0, len(byVariant))
				for k := range byVariant {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				line := ""
				for i, k := range keys {
					if i > 0 {
						line += ", "
					}
					line += fmt.Sprintf("%d %s", byVariant[k], k)
				}
				ct.AddRow(c.Name, c.Quantum.String(), len(c.PCPUs), line)
			}
			ct.Render(os.Stdout)
		}
	}

	if a := res.Adapt; a != nil {
		at := &report.Table{
			Title:   fmt.Sprintf("Adaptation (vTRS window n=%d)", a.Window),
			Headers: []string{"VM", "flips", "recognized", "mean latency (periods)", "truth match"},
		}
		for _, vm := range a.PerVM {
			if !vm.Dynamic {
				continue
			}
			match := 0.0
			if vm.Total > 0 {
				match = float64(vm.Matched) / float64(vm.Total)
			}
			at.AddRow(vm.VM, vm.Flips, vm.RecognizedFlips,
				fmt.Sprintf("%.2f", vm.MeanLatency()), fmt.Sprintf("%.0f%%", 100*match))
		}
		at.AddNote("overall: latency %.2f periods over %d/%d recognized flips; reclusters %d, migrations %d in the measure window",
			a.MeanLatencyPeriods, a.RecognizedFlips, a.Flips, a.Reclusters, a.Migrations)
		at.Render(os.Stdout)
	}
}

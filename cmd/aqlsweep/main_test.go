package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// specJSON is a tiny fleet sweep (2 placements x 2 seeds = 4 runs),
// fast enough to execute for real in the success case.
const specJSON = `{
	"name": "exitcode-quick",
	"scenarios": [
		{"fleet": {
			"name": "dc",
			"hosts": 4,
			"oversub": 2,
			"placement": ["least-loaded", "bin-pack"],
			"tenants": {"alpha": 2, "beta": 1},
			"vcpus": 48,
			"mix": {"IOInt": 0.3, "ConSpin": 0.3, "LLCF": 0.4},
			"churn": {"rate_per_sec": 25, "mean_life_ms": 120, "min_life_ms": 40, "horizon_ms": 260},
			"rebalance": {"every_ms": 40, "threshold": 0.08, "migration_ms": 15, "max_per_tick": 4}
		}}
	],
	"policies": ["xen"],
	"seeds": 2,
	"warmup_ms": 80,
	"measure_ms": 220
}`

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "aqlsweep")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building aqlsweep: %v\n%s", err, out)
	}
	return bin
}

func writeSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func exitCode(t *testing.T, bin string, args ...string) (int, string) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), string(out)
	}
	t.Fatalf("running aqlsweep: %v\n%s", err, out)
	return -1, ""
}

// TestExitCodeOnFailedCells is the regression test for the failure
// contract: a sweep with FAILED cells exits non-zero so CI pipelines
// cannot silently pass over empty artifacts, and -allow-failed is the
// explicit escape hatch.
func TestExitCodeOnFailedCells(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildBinary(t)
	spec := writeSpec(t)

	// -run-timeout 1ns makes the watchdog fail every run instantly:
	// every cell is FAILED.
	code, out := exitCode(t, bin, "-q", "-spec", spec, "-run-timeout", "1ns")
	if code != 1 {
		t.Fatalf("aqlsweep with all cells FAILED exited %d, want 1\n%s", code, out)
	}

	code, out = exitCode(t, bin, "-q", "-spec", spec, "-run-timeout", "1ns", "-allow-failed")
	if code != 0 {
		t.Fatalf("aqlsweep -allow-failed exited %d, want 0\n%s", code, out)
	}

	// A clean sweep still exits 0 without the escape hatch.
	code, out = exitCode(t, bin, "-q", "-spec", spec)
	if code != 0 {
		t.Fatalf("clean sweep exited %d, want 0\n%s", code, out)
	}
}

// Command aqlsweep executes a scenario × policy × seed sweep on a
// bounded worker pool and emits aggregate artifacts (JSON, CSV, text
// table). Sweeps come from a JSON spec file or a built-in name;
// results are bit-identical for any -workers value.
//
// Usage:
//
//	aqlsweep -spec fig8 -workers 8 -out out/
//	aqlsweep -spec mysweep.json -seeds 5 -quick
//	aqlsweep -resume out/fig8.journal
//	aqlsweep -list
//
// With -out, every completed run is checkpointed to a crash-safe
// journal (<out>/<name>.journal/). After a crash or kill, -resume
// <journal-dir> rebuilds the same sweep from the journal's manifest,
// skips the journaled runs, and emits artifacts byte-identical to an
// uninterrupted run's.
//
// Spec files look like:
//
//	{
//	  "name": "grid",
//	  "topologies": {"dual-8": {"sockets": 2, "cores_per_socket": 8, "llc_mb": 12}},
//	  "scenarios": [
//	    "S1", "four-socket",
//	    {"name": "S5", "topology": "dual-8"},
//	    {"gen": {"vcpus": 32, "oversub": 4, "topology": "dual-8",
//	             "mix": {"IOInt": 0.25, "ConSpin": 0.25, "LLCF": 0.5},
//	             "apps": ["bzip2"]}}
//	  ],
//	  "policies": ["xen", "aql", "vturbo", "fixed:10ms"],
//	  "baseline": "xen-credit",
//	  "seeds": 3,
//	  "warmup_ms": 1000,
//	  "measure_ms": 2500
//	}
//
// Every name resolves through the internal/catalog registries; -list
// prints them. Progress goes to stderr; the aggregate table goes to
// stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"aqlsched/internal/catalog"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/sweep"
)

func main() {
	var (
		specArg     = flag.String("spec", "", "sweep spec: JSON file path or built-in name (see -list)")
		list        = flag.Bool("list", false, "list the catalog (topologies, scenarios, workloads, policies) and built-in sweeps, then exit")
		listMetrics = flag.Bool("list-metrics", false, "list the metric registry (name, unit, direction, aggregation, scope), then exit")
		metricsSel  = flag.String("metrics", "", "comma-separated metric names to emit (default: all; see -list-metrics)")
		workers     = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		fleetWork   = flag.Int("fleet-workers", 0, "shard each fleet run's host advances across this many goroutines (0 = the spec's hint, else GOMAXPROCS; 1 = serial; results are byte-identical at any value)")
		out         = flag.String("out", "", "output directory for <name>.json/.csv/.txt artifacts (also enables the crash-safe run journal)")
		resume      = flag.String("resume", "", "resume an interrupted sweep from its journal directory (<out>/<name>.journal); journaled runs are skipped")
		runTimeout  = flag.Duration("run-timeout", 10*time.Minute, "per-run watchdog: a run still executing after this is marked FAILED (0 disables)")
		seeds       = flag.Int("seeds", 0, "override seed replications per cell")
		seed        = flag.Uint64("seed", 0, "override the base simulation seed")
		quick       = flag.Bool("quick", false, "quick windows (1s warmup, 2.5s measure)")
		allowFailed = flag.Bool("allow-failed", false, "exit 0 even when runs or cells failed (failures still print and mark the artifacts)")
		quiet       = flag.Bool("q", false, "suppress per-run progress on stderr")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile (after the sweep) to this file")
		traceFile  = flag.String("trace", "", "write a runtime execution trace of the sweep to this file")
	)
	flag.Parse()

	if *list {
		printCatalog(os.Stdout)
		return
	}
	if *listMetrics {
		printMetrics(os.Stdout)
		return
	}
	// Validate the metric selection before the sweep runs: a typo must
	// fail in milliseconds, not after minutes of simulation.
	selection, err := parseMetricSelection(*metricsSel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aqlsweep: %v\n", err)
		os.Exit(2)
	}
	var (
		spec    *sweep.Spec
		journal *sweep.Journal
		outDir  = *out
	)
	if *resume != "" {
		// A resume rebuilds the sweep entirely from the journal's
		// manifest — combining it with grid-shaping flags would silently
		// change which runs the journaled indexes mean.
		for _, f := range []string{"spec", "seeds", "seed", "quick"} {
			if flagSet(f) {
				fmt.Fprintf(os.Stderr, "aqlsweep: -resume rebuilds the sweep from the journal; -%s cannot be combined with it\n", f)
				os.Exit(2)
			}
		}
		var err error
		spec, journal, err = resumeSweep(*resume)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aqlsweep: %v\n", err)
			os.Exit(2)
		}
		if outDir == "" {
			// Artifacts land next to the journal, where the interrupted
			// invocation would have put them.
			outDir = filepath.Dir(filepath.Clean(*resume))
		}
		fmt.Fprintf(os.Stderr, "aqlsweep: resuming %s from %s: %d/%d runs already journaled, skipping them\n",
			spec.Name, *resume, journal.RestoredCount(), len(spec.Runs()))
	} else {
		if *specArg == "" {
			fmt.Fprintln(os.Stderr, "aqlsweep: -spec is required (file path or built-in name; -list shows built-ins)")
			os.Exit(2)
		}
		var src []byte
		var builtin string
		var err error
		spec, src, builtin, err = resolveSpec(*specArg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aqlsweep: %v\n", err)
			os.Exit(2)
		}
		if *seeds > 0 {
			spec.Seeds = *seeds
		}
		if *seed != 0 {
			spec.BaseSeed = *seed
		} else if flagSet("seed") {
			// BaseSeed 0 means "default" throughout the sweep layer, so an
			// explicit zero cannot be honored — say so instead of silently
			// running with 0xA91.
			fmt.Fprintf(os.Stderr, "aqlsweep: -seed 0 is reserved for the default; running with base seed %#x\n", sweep.DefaultSeed)
		}
		if *quick {
			spec.Warmup = 1 * sim.Second
			spec.Measure = 2500 * sim.Millisecond
		}
		if outDir != "" {
			journal, err = createJournal(spec, src, builtin, outDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aqlsweep: %v\n", err)
				os.Exit(2)
			}
		}
	}

	opts := sweep.Options{Workers: *workers, FleetWorkers: *fleetWork, Journal: journal, RunTimeout: *runTimeout}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	runs := len(spec.Runs())
	header := fmt.Sprintf("aqlsweep: %s — %d runs (%d scenarios x %d policies x %d seeds), workers=%d",
		spec.Name, runs, len(spec.Scenarios), len(spec.Policies), max(spec.Seeds, 1), opts.EffectiveWorkers())
	if opts.FleetWorkers > 0 {
		header += fmt.Sprintf(", fleet-workers=%d", opts.FleetWorkers)
	}
	fmt.Fprintln(os.Stderr, header)

	// Start profiling only once the sweep is actually about to run, so
	// argument errors never leave truncated profile files behind; flush
	// on every exit path after this point.
	stopProfiling, err := startProfiling(*cpuprofile, *memprofile, *traceFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aqlsweep: %v\n", err)
		os.Exit(2)
	}
	defer stopProfiling()

	start := time.Now()
	res, err := sweep.Exec(spec, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aqlsweep: %v\n", err)
		stopProfiling()
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "aqlsweep: completed %d runs in %v\n", runs, time.Since(start).Round(time.Millisecond))

	if len(selection) > 0 {
		if err := res.SelectMetrics(selection...); err != nil {
			fmt.Fprintf(os.Stderr, "aqlsweep: %v\n", err)
			stopProfiling()
			os.Exit(2)
		}
	}
	res.Table().Render(os.Stdout)

	if outDir != "" {
		if err := writeArtifacts(res, outDir); err != nil {
			fmt.Fprintf(os.Stderr, "aqlsweep: %v\n", err)
			stopProfiling()
			os.Exit(1)
		}
	}
	// Failures must be visible in the exit status, not only inside the
	// artifacts: any failed run (and a fortiori any all-failed FAILED
	// cell) exits non-zero so CI and scripts catch it. -allow-failed is
	// the escape hatch for sweeps where partial grids are expected.
	if f, fc := res.Failed(), res.FailedCells(); f > 0 {
		msg := fmt.Sprintf("aqlsweep: %d run(s) failed", f)
		if fc > 0 {
			msg += fmt.Sprintf(", %d cell(s) FAILED entirely", fc)
		}
		if *allowFailed {
			fmt.Fprintln(os.Stderr, msg+" (-allow-failed: exiting 0)")
			return
		}
		fmt.Fprintln(os.Stderr, msg)
		stopProfiling()
		os.Exit(1)
	}
}

// printCatalog lists every name a spec file may reference: registered
// topologies, scenarios, workloads, the policy grammar, and the
// built-in sweeps.
func printCatalog(w io.Writer) {
	fmt.Fprintln(w, "topologies (spec files may also define their own under \"topologies\"):")
	for _, n := range catalog.TopologyNames() {
		t, err := catalog.TopologyByName(n)
		if err != nil {
			// A registered name that fails to build is a broken
			// registration — surface it instead of silently hiding the
			// entry from the listing.
			fmt.Fprintf(w, "  %-16s BROKEN: %v\n", n, err)
			continue
		}
		fmt.Fprintf(w, "  %-16s %d socket(s) x %d cores, %s LLC/socket\n",
			n, t.Sockets, t.CoresPerSocket, fmtCacheSize(t.LLC.Size))
	}

	fmt.Fprintln(w, "\nscenarios (plus generated ones via {\"gen\": {...}} entries):")
	fmt.Fprintf(w, "  %s\n", strings.Join(catalog.Scenarios.Names(), " "))

	fmt.Fprintln(w, "\nworkloads (for \"apps\" lists in generator blocks):")
	fmt.Fprintf(w, "  %s\n", strings.Join(catalog.Workloads.Names(), " "))

	fmt.Fprintln(w, "\npolicies (strings like \"fixed:5ms\", or {\"policy\": {\"name\": ..., \"params\": {...}}} spec-file blocks):")
	for _, d := range catalog.PolicyPlugins() {
		fmt.Fprintf(w, "  %-16s %s\n", d.Name, d.Help)
		if len(d.Aliases) > 0 {
			fmt.Fprintf(w, "  %-16s aliases: %s\n", "", strings.Join(d.Aliases, ", "))
		}
		for _, p := range d.Params {
			fmt.Fprintf(w, "  %-16s %s\n", "", fmtPolicyParam(p, d.Positional))
		}
	}

	// Axes registered by layers above the core catalog (the fleet's
	// placement policies, and whatever comes next).
	for _, ax := range catalog.ExtraAxes() {
		fmt.Fprintf(w, "\n%s (for {\"fleet\": {...}} scenario entries):\n", ax.Kind)
		fmt.Fprintf(w, "  %s\n", strings.Join(ax.Names, " "))
	}

	fmt.Fprintln(w, "\nbuilt-in sweeps:")
	for _, n := range sweep.BuiltinNames() {
		s, _ := sweep.Builtin(n)
		fmt.Fprintf(w, "  %-14s %d scenarios x %d policies x %d seeds\n",
			n, len(s.Scenarios), len(s.Policies), max(s.Seeds, 1))
	}

	fmt.Fprintln(w, "\nmetrics: -list-metrics prints the measurement registry; -metrics name,... selects emitted columns.")
	fmt.Fprintln(w, "\nSee EXPERIMENTS.md \"Authoring custom scenarios\" for the spec-file schema.")
}

// fmtPolicyParam renders one policy parameter line for -list: name,
// kind/hint, bounds, default, and whether it may be spelled bare
// ("fixed:5ms" instead of "fixed:q=5ms").
func fmtPolicyParam(p scenario.ParamDesc, positional string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s=%s (%s", p.Name, p.GrammarHint(), p.Kind)
	if p.Min != "" || p.Max != "" {
		min, max := p.Min, p.Max
		if min == "" {
			min = "-"
		}
		if max == "" {
			max = "-"
		}
		fmt.Fprintf(&b, " in [%s, %s]", min, max)
	}
	if p.Required {
		b.WriteString(", required")
	} else if p.Default != "" {
		fmt.Fprintf(&b, ", default %s", p.Default)
	} else {
		b.WriteString(", optional")
	}
	if p.Name == positional {
		b.WriteString(", positional")
	}
	b.WriteString(")")
	if p.Help != "" {
		b.WriteString(": ")
		b.WriteString(p.Help)
	}
	return b.String()
}

// printMetrics lists the measurement registry: every metric the
// scenario layer can record, in registration order (the column order
// of emitted artifacts).
func printMetrics(w io.Writer) {
	fmt.Fprintln(w, "metrics (registration order = artifact column order; select with -metrics name,name,...):")
	fmt.Fprintf(w, "  %-22s %-8s %-9s %-11s %-8s %s\n", "NAME", "UNIT", "DIRECTION", "AGGREGATION", "SCOPE", "DESCRIPTION")
	for _, d := range catalog.MetricDescs() {
		name := d.Name
		if d.Primary {
			name += "*"
		}
		fmt.Fprintf(w, "  %-22s %-8s %-9s %-11s %-8s %s\n",
			name, d.Unit, d.Direction.String(), d.Agg.String(), d.Scope.String(), d.Help)
	}
	fmt.Fprintln(w, "\n* primary performance metric (the value baseline normalization pairs)")
}

// parseMetricSelection splits and validates a -metrics argument
// against the registry before any simulation runs.
func parseMetricSelection(arg string) ([]string, error) {
	if arg == "" {
		return nil, nil
	}
	var names []string
	for _, n := range strings.Split(arg, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, err := catalog.MetricByName(n); err != nil {
			return nil, err
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-metrics %q selects nothing", arg)
	}
	return names, nil
}

// fmtCacheSize renders a cache capacity adaptively: whole or
// fractional MB above 1 MB, KB below it — a 512 KB LLC must not print
// as "0 MB".
func fmtCacheSize(bytes int64) string {
	const mb = 1024 * 1024
	if bytes >= mb {
		if bytes%mb == 0 {
			return fmt.Sprintf("%d MB", bytes/mb)
		}
		return fmt.Sprintf("%.1f MB", float64(bytes)/mb)
	}
	return fmt.Sprintf("%d KB", bytes/1024)
}

// startProfiling arms the requested profilers and returns an idempotent
// stop function that flushes them (deferred on the normal path, called
// explicitly before os.Exit).
func startProfiling(cpuprofile, memprofile, traceFile string) (func(), error) {
	var stops []func()
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "aqlsweep: wrote CPU profile to %s\n", cpuprofile)
		})
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
			fmt.Fprintf(os.Stderr, "aqlsweep: wrote execution trace to %s\n", traceFile)
		})
	}
	if memprofile != "" {
		// Create eagerly so a bad path fails before the sweep runs, but
		// write at stop time (the profile must cover the whole sweep).
		f, err := os.Create(memprofile)
		if err != nil {
			return nil, err
		}
		stops = append(stops, func() {
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "aqlsweep: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "aqlsweep: wrote allocation profile to %s\n", memprofile)
		})
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		for _, stop := range stops {
			stop()
		}
	}, nil
}

// flagSet reports whether the named flag was explicitly passed.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// resolveSpec prefers an on-disk spec file; otherwise the name must be
// a built-in sweep. It also returns the sweep's identity for the run
// journal: the raw file bytes, or the built-in name.
func resolveSpec(arg string) (*sweep.Spec, []byte, string, error) {
	if _, err := os.Stat(arg); err == nil {
		data, err := os.ReadFile(arg)
		if err != nil {
			return nil, nil, "", err
		}
		s, err := sweep.Parse(data)
		return s, data, "", err
	}
	if s, ok := sweep.Builtin(arg); ok {
		return s, nil, arg, nil
	}
	return nil, nil, "", fmt.Errorf("spec %q is neither a file nor a built-in (built-ins: %v)", arg, sweep.BuiltinNames())
}

// createJournal arms the crash-safe run journal at
// <out>/<name>.journal/ for a fresh (non-resume) invocation.
func createJournal(spec *sweep.Spec, src []byte, builtin string, outDir string) (*sweep.Journal, error) {
	m := sweep.NewManifest(spec, src, builtin)
	return sweep.CreateJournal(filepath.Join(outDir, spec.Name+".journal"), m)
}

// resumeSweep reopens a journal and rebuilds the exact sweep it was
// created for from the manifest's embedded spec source and overrides.
func resumeSweep(dir string) (*sweep.Spec, *sweep.Journal, error) {
	j, m, err := sweep.OpenJournal(dir)
	if err != nil {
		return nil, nil, err
	}
	spec, err := m.Rebuild()
	if err != nil {
		return nil, nil, fmt.Errorf("journal %s: %v", dir, err)
	}
	return spec, j, nil
}

// writeArtifacts emits <name>.json, <name>.csv and <name>.txt into dir
// through the sweep package's atomic emit path (shared with aqlsweepd).
func writeArtifacts(res *sweep.Result, dir string) error {
	paths, err := res.WriteArtifacts(dir)
	if err != nil {
		return err
	}
	for _, p := range paths {
		fmt.Fprintf(os.Stderr, "aqlsweep: wrote %s\n", p)
	}
	return nil
}

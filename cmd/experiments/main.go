// Command experiments regenerates every table and figure of the paper's
// evaluation on the simulator and prints them as text tables.
//
// Usage:
//
//	experiments [-quick] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aqlsched/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced measurement windows and sweeps")
	seed := flag.Uint64("seed", 0xA91, "simulation seed")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed

	start := time.Now()
	experiments.All(cfg, os.Stdout)
	fmt.Printf("regenerated full evaluation in %v\n", time.Since(start).Round(time.Millisecond))
}

module aqlsched

go 1.22

// Typedetect watches the online vCPU Type Recognition System (vTRS)
// classify a mixed population in real time: every few monitoring
// periods it prints each vCPU's cursor averages and decided type — a
// live rendition of the paper's Fig. 4.
package main

import (
	"fmt"

	"aqlsched/internal/baselines"
	"aqlsched/internal/core"
	"aqlsched/internal/hw"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

type watcher struct {
	inner baselines.AQL
	ctl   **core.Controller
}

func (w *watcher) Name() string { return "typedetect" }

func (w *watcher) Setup(h *xen.Hypervisor, deps []*workload.Deployment) {
	w.inner.Setup(h, deps)
	ctl := *w.ctl
	ctl.Monitor.OnPeriod = func(now sim.Time, period int) {
		if period%10 != 0 {
			return
		}
		fmt.Printf("t=%v (monitoring period %d):\n", now, period)
		for _, d := range deps {
			v := d.Dom.VCPUs[0]
			avg := ctl.Monitor.AveragesOf(v)
			fmt.Printf("  %-14s -> %-8v (IO=%3.0f Spin=%3.0f LoLCF=%3.0f LLCF=%3.0f LLCO=%3.0f)\n",
				d.Dom.Name, ctl.Monitor.TypeOf(v),
				avg.IOInt, avg.ConSpin, avg.LoLCF, avg.LLCF, avg.LLCO)
		}
	}
}

func main() {
	spec := scenario.Spec{
		Name:       "typedetect",
		GuestPCPUs: []hw.PCPUID{0, 1},
		Apps: []scenario.Entry{
			{Spec: workload.SPECWeb2009()},
			{Spec: workload.ByName("astar")},
			{Spec: workload.ByName("libquantum")},
			{Spec: workload.ByName("gobmk")},
			{Spec: workload.ByName("facesim")},
		},
		Warmup:  600 * sim.Millisecond,
		Measure: 1 * sim.Second,
		Seed:    0xA91,
	}
	var ctl *core.Controller
	scenario.Run(spec, &watcher{inner: baselines.AQL{MonitorOnly: true, Out: &ctl}, ctl: &ctl})
}

// Weblatency reproduces the paper's Section 1 motivating claim: a
// high-traffic web site colocated with CPU-bound VMs improves its mean
// request latency dramatically when the quantum drops from Xen's 30 ms
// default to 1 ms — because the web vCPU also runs CGI scripts, never
// blocks, and so is never BOOST-eligible.
package main

import (
	"fmt"

	"aqlsched/internal/baselines"
	"aqlsched/internal/hw"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/workload"
)

func main() {
	run := func(q sim.Time) sim.Time {
		spec := scenario.Spec{
			Name:       "weblatency",
			GuestPCPUs: []hw.PCPUID{0},
			Apps: []scenario.Entry{
				{Spec: workload.MicroWeb(true)}, // web + CGI (heterogeneous)
				{Spec: workload.ByName("hmmer")},
				{Spec: workload.ByName("bzip2")},
				{Spec: workload.ByName("libquantum")},
			},
			Warmup:  1 * sim.Second,
			Measure: 5 * sim.Second,
			Seed:    7,
		}
		res := scenario.Run(spec, baselines.FixedQuantum{Q: q})
		lat, _ := res.Apps[0].Metrics.Get(scenario.MLatencyMean.Name)
		return sim.Time(lat)
	}

	lat30 := run(30 * sim.Millisecond)
	lat1 := run(1 * sim.Millisecond)
	fmt.Println("heterogeneous web VM colocated with 3 CPU-bound VMs on one pCPU:")
	fmt.Printf("  mean latency at 30ms quantum (Xen default): %v\n", lat30)
	fmt.Printf("  mean latency at  1ms quantum:               %v\n", lat1)
	fmt.Printf("  improvement: %.0f%% (the paper's Section 1 reports ~62%%)\n",
		100*(1-float64(lat1)/float64(lat30)))
}

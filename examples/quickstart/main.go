// Quickstart: build a virtualized machine, colocate two VMs on one
// pCPU, run two simulated seconds under the Xen credit scheduler, and
// print what each VM got.
package main

import (
	"fmt"

	"aqlsched/internal/cache"
	"aqlsched/internal/credit"
	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

func main() {
	// The paper's calibration machine (Table 2), one guest pCPU.
	h := xen.New(hw.I73770(), credit.New(), 42, xen.WithGuestPCPUs([]hw.PCPUID{0}))

	// A batch VM crunching 10ms jobs over a small working set.
	batch := h.CreateDomain("batch", 256, 0, 1)
	batch.OS.Spawn("worker", 0, false,
		workload.NewCPUBound(cache.Profile{WSS: 64 * hw.KB, RefRate: 0.1}, 10*sim.Millisecond), 0)

	// A second, double-weight VM sharing the pCPU.
	heavy := h.CreateDomain("heavy", 512, 0, 1)
	heavy.OS.Spawn("worker", 0, false,
		workload.NewCPUBound(cache.Profile{WSS: 64 * hw.KB, RefRate: 0.1}, 10*sim.Millisecond), 0)

	h.Run(2 * sim.Second)

	fmt.Println("two VMs sharing one pCPU for 2s under the credit scheduler:")
	for _, d := range h.Domains {
		v := d.VCPUs[0]
		fmt.Printf("  %-6s weight=%-4d ran %v (%.0f%% of the pCPU)\n",
			d.Name, d.Weight, v.RunTime, 100*v.RunTime.Seconds()/2)
	}
	fmt.Printf("  context switches: %d\n", h.CtxSwitches)
}

// Consolidation runs the paper's S5 colocation scenario (Table 4:
// SPECweb2009, facesim, bzip2, hmmer, libquantum — 16 vCPUs on 4 pCPUs)
// under the default Xen credit scheduler and under AQL_Sched, printing
// the per-application comparison and the clusters AQL formed.
package main

import (
	"fmt"
	"sort"

	"aqlsched/internal/baselines"
	"aqlsched/internal/core"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
)

func main() {
	spec := scenario.ScenarioByName("S5", 0xA91)
	spec.Warmup = 2 * sim.Second
	spec.Measure = 6 * sim.Second

	base := scenario.Run(spec, baselines.XenDefault{})
	var ctl *core.Controller
	aql := scenario.Run(spec, baselines.AQL{Out: &ctl})
	norm := scenario.Normalize(aql, base)

	fmt.Println("scenario S5: AQL_Sched vs default Xen (normalized, lower is better):")
	names := make([]string, 0, len(norm))
	for n := range norm {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := aql.App(n)
		fmt.Printf("  %-14s %-8s normalized %.3f\n", n, a.Expected, norm[n])
	}

	fmt.Println("clusters AQL_Sched settled on:")
	for _, c := range ctl.LastPlan.Clusters {
		fmt.Printf("  %-14s quantum %-10v pCPUs %d vCPUs %d\n",
			c.Name, c.Quantum, len(c.PCPUs), len(c.Members))
	}
}

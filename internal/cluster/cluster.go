// Package cluster implements the paper's two-level clustering
// (Section 3.5).
//
// Level 1 (Algorithm 1) distributes vCPUs across sockets: vCPUs are
// split into a "trashing" list (LLCO vCPUs, plus IOInt/ConSpin vCPUs
// whose LLCO cursor exceeds 50% — noted IOInt+/ConSpin+) and a
// "non-trashing" list (everything else, ordered with LoLCF first so
// LLCF vCPUs end up as far from trashers as possible). The concatenated
// list is cut into equal per-socket chunks, keeping vCPUs of the same VM
// together (NUMA affinity).
//
// Note: the paper's Algorithm 1 line 5 tests `max(...) = LLCF_cur_avg`
// for membership of the *trashing* list — an evident typo for
// LLCO_cur_avg (LLCF vCPUs are the sensitive ones the split protects).
// We implement the clear intent.
//
// Level 2 (Algorithm 2) works per socket: vCPUs are grouped by quantum
// length compatibility (QLC) — every type whose calibrated best quantum
// is q joins cluster C^q; quantum-agnostic vCPUs (LoLCF, LLCO) pad the
// clusters to multiples of k = vCPUs-per-pCPU. pCPUs are then dealt out
// fairly: a pCPU whose k vCPUs would have to come from clusters with
// different quanta forms the default cluster, scheduled with the default
// quantum (30 ms).
package cluster

import (
	"fmt"
	"sort"

	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/xen"
)

// VCPUInfo is the clustering input for one vCPU: its recognized type
// and its trashing (LLCO cursor) intensity.
type VCPUInfo struct {
	V       *xen.VCPU
	Type    vcputype.Type
	LLCOAvg float64
}

// Variant renders the paper's type notation: IOInt+ / ConSpin+ for
// trashing-intense IO/spin vCPUs, IOInt- / ConSpin- otherwise.
func (i VCPUInfo) Variant() string {
	switch i.Type {
	case vcputype.IOInt, vcputype.ConSpin:
		if i.LLCOAvg > TrashingThreshold {
			return i.Type.String() + "+"
		}
		return i.Type.String() + "-"
	default:
		return i.Type.String()
	}
}

// TrashingThreshold is the LLCO-cursor level above which an IOInt or
// ConSpin vCPU counts as a trasher ("tremendous, let us say greater
// than 50%" — Section 3.5).
const TrashingThreshold = 50.0

// QuantumTable maps each vCPU type to its calibrated best quantum.
// Types absent from Best are quantum-agnostic (LoLCF, LLCO).
type QuantumTable struct {
	Best    map[vcputype.Type]sim.Time
	Default sim.Time
}

// PaperTable returns the calibration outcome of Section 3.4.2: IOInt
// and ConSpin at 1 ms, LLCF at 90 ms, LoLCF/LLCO agnostic, default
// 30 ms (Xen's).
func PaperTable() QuantumTable {
	return QuantumTable{
		Best: map[vcputype.Type]sim.Time{
			vcputype.IOInt:   1 * sim.Millisecond,
			vcputype.ConSpin: 1 * sim.Millisecond,
			vcputype.LLCF:    90 * sim.Millisecond,
		},
		Default: 30 * sim.Millisecond,
	}
}

// QuantumFor reports the best quantum for a type and whether the type
// is calibrated (false = agnostic).
func (qt QuantumTable) QuantumFor(t vcputype.Type) (sim.Time, bool) {
	q, ok := qt.Best[t]
	return q, ok
}

// IsTrashing implements the (corrected) Algorithm 1 membership test.
func IsTrashing(i VCPUInfo) bool {
	switch i.Type {
	case vcputype.LLCO:
		return true
	case vcputype.IOInt, vcputype.ConSpin:
		return i.LLCOAvg > TrashingThreshold
	default:
		return false
	}
}

// AssignSockets implements Algorithm 1: returns, per socket (in socket
// order), the vCPU infos placed there. Infos must be provided in a
// stable order; the algorithm re-orders them VM-by-VM as line 3
// requires.
func AssignSockets(infos []VCPUInfo, sockets []hw.SocketID, topo *hw.Topology) map[hw.SocketID][]VCPUInfo {
	if len(sockets) == 0 {
		panic("cluster: no sockets to assign to")
	}
	// Line 3: order vCPUs so those of the same VM follow each other.
	// Creation order already groups by domain; a stable sort by domain
	// ID makes it explicit.
	ordered := append([]VCPUInfo(nil), infos...)
	sort.SliceStable(ordered, func(a, b int) bool {
		return ordered[a].V.Domain.ID < ordered[b].V.Domain.ID
	})

	// Lines 4-10: split into trashing and non-trashing.
	var trashing, nonTrashing []VCPUInfo
	for _, i := range ordered {
		if IsTrashing(i) {
			trashing = append(trashing, i)
		} else {
			nonTrashing = append(nonTrashing, i)
		}
	}
	// Line 11: LoLCF first in the non-trashing list, so that the socket
	// that mixes trashing and non-trashing receives LoLCF (insensitive)
	// rather than LLCF vCPUs.
	sort.SliceStable(nonTrashing, func(a, b int) bool {
		aIsLoLCF := nonTrashing[a].Type == vcputype.LoLCF
		bIsLoLCF := nonTrashing[b].Type == vcputype.LoLCF
		return aIsLoLCF && !bIsLoLCF
	})

	// Lines 12-17: deal n vCPUs to each socket, trashing list first.
	combined := append(trashing, nonTrashing...)
	out := make(map[hw.SocketID][]VCPUInfo, len(sockets))
	n := len(combined) / len(sockets)
	rem := len(combined) % len(sockets)
	pos := 0
	for idx, s := range sockets {
		take := n
		if idx < rem {
			take++
		}
		out[s] = combined[pos : pos+take]
		pos += take
	}
	return out
}

// Cluster is one quantum-compatibility cluster bound to a pCPU pool.
type Cluster struct {
	// Name follows the paper's notation, e.g. "C3^90ms".
	Name string
	// Quantum is the pool's time-slice.
	Quantum sim.Time
	// Default marks the C^dq cluster of mixed leftovers.
	Default bool
	// Socket hosting the cluster.
	Socket hw.SocketID
	// PCPUs assigned to the cluster.
	PCPUs []hw.PCPUID
	// Members in assignment order.
	Members []VCPUInfo
}

// String renders a summary.
func (c *Cluster) String() string {
	return fmt.Sprintf("%s{q=%v, pcpus=%d, vcpus=%d}", c.Name, c.Quantum, len(c.PCPUs), len(c.Members))
}

// clusterSocket implements Algorithm 2 on one socket. nextID numbers
// clusters globally (C1, C2, ... as in Fig. 3).
func clusterSocket(socket hw.SocketID, vcpus []VCPUInfo, pcpus []hw.PCPUID, qt QuantumTable, nextID *int) []*Cluster {
	if len(vcpus) == 0 {
		// Idle socket: one default cluster holding the pCPUs.
		*nextID++
		return []*Cluster{{
			Name:    fmt.Sprintf("C%d^%s", *nextID, qt.Default),
			Quantum: qt.Default,
			Default: true,
			Socket:  socket,
			PCPUs:   append([]hw.PCPUID(nil), pcpus...),
		}}
	}
	// Lines 2-7: group non-agnostic vCPUs by calibrated quantum,
	// ascending quantum order for determinism.
	groups := make(map[sim.Time][]VCPUInfo)
	var agnostic []VCPUInfo
	for _, i := range vcpus {
		if q, ok := qt.QuantumFor(i.Type); ok {
			groups[q] = append(groups[q], i)
		} else {
			agnostic = append(agnostic, i)
		}
	}
	quanta := make([]sim.Time, 0, len(groups))
	for q := range groups {
		quanta = append(quanta, q)
	}
	sort.Slice(quanta, func(a, b int) bool { return quanta[a] < quanta[b] })

	// Fairness unit: k vCPUs per pCPU (line 11), rounded up so every
	// vCPU fits somewhere.
	k := (len(vcpus) + len(pcpus) - 1) / len(pcpus)
	if k == 0 {
		k = 1
	}

	// Line 10: agnostic vCPUs pad clusters toward multiples of k.
	type protoCluster struct {
		q       sim.Time
		members []VCPUInfo
	}
	var protos []*protoCluster
	for _, q := range quanta {
		protos = append(protos, &protoCluster{q: q, members: groups[q]})
	}
	for _, pc := range protos {
		for len(agnostic) > 0 && len(pc.members)%k != 0 {
			pc.members = append(pc.members, agnostic[0])
			agnostic = agnostic[1:]
		}
	}
	// Remaining agnostics balance the clusters (line 10): k at a time to
	// whichever cluster currently has the fewest members, so pCPUs end
	// up evenly split (the paper's S4: the four LLCO balancers join the
	// LLCF cluster, giving two pCPUs to each cluster). An all-agnostic
	// socket forms a default-quantum cluster.
	if len(agnostic) > 0 && len(protos) == 0 {
		protos = append(protos, &protoCluster{q: qt.Default})
	}
	for len(agnostic) > 0 {
		smallest := protos[0]
		for _, pc := range protos[1:] {
			if len(pc.members) < len(smallest.members) {
				smallest = pc
			}
		}
		take := k
		if take > len(agnostic) {
			take = len(agnostic)
		}
		smallest.members = append(smallest.members, agnostic[:take]...)
		agnostic = agnostic[take:]
	}

	// Lines 12-29: deal pCPUs, spilling mixed remainders into the
	// default cluster.
	clusters := make(map[sim.Time]*Cluster)
	var defaultCluster *Cluster
	var order []*Cluster
	getCluster := func(q sim.Time) *Cluster {
		if c, ok := clusters[q]; ok {
			return c
		}
		*nextID++
		c := &Cluster{
			Name:    fmt.Sprintf("C%d^%s", *nextID, q),
			Quantum: q,
			Socket:  socket,
		}
		clusters[q] = c
		order = append(order, c)
		return c
	}
	getDefault := func() *Cluster {
		if defaultCluster == nil {
			*nextID++
			defaultCluster = &Cluster{
				Name:    fmt.Sprintf("C%d^%s", *nextID, qt.Default),
				Quantum: qt.Default,
				Default: true,
				Socket:  socket,
			}
			order = append(order, defaultCluster)
		}
		return defaultCluster
	}

	gi := 0 // current proto-cluster index
	for _, p := range pcpus {
		// Skip exhausted proto-clusters.
		for gi < len(protos) && len(protos[gi].members) == 0 {
			gi++
		}
		if gi >= len(protos) {
			// More pCPUs than needed: attach spare pCPUs to the last
			// cluster created (its pool simply has headroom).
			if len(order) > 0 {
				last := order[len(order)-1]
				last.PCPUs = append(last.PCPUs, p)
			} else {
				c := getCluster(qt.Default)
				c.PCPUs = append(c.PCPUs, p)
			}
			continue
		}
		pc := protos[gi]
		if len(pc.members) >= k {
			// Lines 14-16: a full complement from one cluster.
			c := getCluster(pc.q)
			c.Members = append(c.Members, pc.members[:k]...)
			c.PCPUs = append(c.PCPUs, p)
			pc.members = pc.members[k:]
			continue
		}
		// Lines 17-27: the cluster cannot fill this pCPU alone.
		take := append([]VCPUInfo(nil), pc.members...)
		pc.members = nil
		isLast := gi == len(protos)-1
		if !isLast {
			// Mix in vCPUs from following clusters; the mixed set runs
			// under the default quantum (lines 20-24).
			for len(take) < k {
				gi++
				for gi < len(protos) && len(protos[gi].members) == 0 {
					gi++
				}
				if gi >= len(protos) {
					break
				}
				need := k - len(take)
				nc := protos[gi]
				if need > len(nc.members) {
					need = len(nc.members)
				}
				take = append(take, nc.members[:need]...)
				nc.members = nc.members[need:]
			}
			c := getDefault()
			c.Members = append(c.Members, take...)
			c.PCPUs = append(c.PCPUs, p)
			continue
		}
		// Lines 25-26: trailing partial cluster keeps its quantum.
		c := getCluster(pc.q)
		c.Members = append(c.Members, take...)
		c.PCPUs = append(c.PCPUs, p)
	}
	return order
}

// Plan is the outcome of the two-level clustering.
type Plan struct {
	Clusters []*Cluster
}

// Build runs both levels for the given vCPU infos over the hypervisor's
// guest pCPUs and returns the cluster layout.
func Build(h *xen.Hypervisor, infos []VCPUInfo, qt QuantumTable) *Plan {
	topo := h.Topo
	// Group guest pCPUs per socket, keeping only sockets that have any.
	perSocket := make(map[hw.SocketID][]hw.PCPUID)
	var sockets []hw.SocketID
	for _, p := range h.GuestPCPUs() {
		s := topo.SocketOf(p)
		if _, ok := perSocket[s]; !ok {
			sockets = append(sockets, s)
		}
		perSocket[s] = append(perSocket[s], p)
	}
	sort.Slice(sockets, func(a, b int) bool { return sockets[a] < sockets[b] })

	assignment := AssignSockets(infos, sockets, topo)
	plan := &Plan{}
	id := 0
	for _, s := range sockets {
		plan.Clusters = append(plan.Clusters, clusterSocket(s, assignment[s], perSocket[s], qt, &id)...)
	}
	return plan
}

// ToPoolPlan converts the cluster layout into a hypervisor pool plan.
func (p *Plan) ToPoolPlan() *xen.PoolPlan {
	pp := &xen.PoolPlan{Assign: make(map[*xen.VCPU]*xen.CPUPool)}
	for _, c := range p.Clusters {
		pool := xen.NewCPUPool(c.Name, c.Quantum, c.PCPUs)
		pp.Pools = append(pp.Pools, pool)
		for _, m := range c.Members {
			pp.Assign[m.V] = pool
		}
	}
	return pp
}

// Signature produces a stable string describing the assignment, used to
// detect whether a new plan actually changes anything.
func (p *Plan) Signature() string {
	var sb []byte
	for _, c := range p.Clusters {
		sb = append(sb, fmt.Sprintf("%s|q=%v|p=%v|", c.Name, c.Quantum, c.PCPUs)...)
		for _, m := range c.Members {
			sb = append(sb, fmt.Sprintf("%d,", m.V.Global)...)
		}
		sb = append(sb, ';')
	}
	return string(sb)
}

package cluster_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"aqlsched/internal/cluster"
	"aqlsched/internal/credit"
	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/xen"
)

// buildVCPUs creates count single-vCPU domains of each listed type, in
// list order, and returns infos typed accordingly.
func buildVCPUs(h *xen.Hypervisor, groups []struct {
	t     vcputype.Type
	count int
	llco  float64
}) []cluster.VCPUInfo {
	var infos []cluster.VCPUInfo
	for gi, g := range groups {
		for i := 0; i < g.count; i++ {
			d := h.CreateDomain(fmt.Sprintf("%v-%d-%d", g.t, gi, i), 256, 0, 1)
			infos = append(infos, cluster.VCPUInfo{V: d.VCPUs[0], Type: g.t, LLCOAvg: g.llco})
		}
	}
	return infos
}

func fourSocketHyp() *xen.Hypervisor {
	topo := hw.XeonE54603()
	var guest []hw.PCPUID
	for s := hw.SocketID(1); s <= 3; s++ {
		guest = append(guest, topo.PCPUsOfSocket(s)...)
	}
	return xen.New(topo, credit.New(), 1, xen.WithGuestPCPUs(guest))
}

// TestFig3Reproduction checks the paper's worked example: 12 LLCO, 12
// IOInt+, 17 LLCF, 7 ConSpin- vCPUs on 3 guest sockets x 4 pCPUs form
// exactly 6 clusters with the layout of Fig. 3.
func TestFig3Reproduction(t *testing.T) {
	h := fourSocketHyp()
	infos := buildVCPUs(h, []struct {
		t     vcputype.Type
		count int
		llco  float64
	}{
		{vcputype.LLCO, 12, 100},
		{vcputype.IOInt, 12, 90}, // IOInt+ (trashing)
		{vcputype.LLCF, 17, 5},
		{vcputype.ConSpin, 7, 5}, // ConSpin-
	})
	plan := cluster.Build(h, infos, cluster.PaperTable())

	if len(plan.Clusters) != 6 {
		for _, c := range plan.Clusters {
			t.Logf("  %v", c)
		}
		t.Fatalf("formed %d clusters, want 6 (Fig. 3)", len(plan.Clusters))
	}

	// Socket 1 (first guest socket): one 1ms cluster of 16 vCPUs
	// (12 LLCO + 4 IOInt+).
	s1 := clustersOn(plan, 1)
	if len(s1) != 1 || s1[0].Quantum != 1*sim.Millisecond || len(s1[0].Members) != 16 {
		t.Errorf("socket1: %v, want one 1ms cluster of 16", s1)
	}
	counts := typeCounts(s1[0].Members)
	if counts[vcputype.LLCO] != 12 || counts[vcputype.IOInt] != 4 {
		t.Errorf("socket1 composition %v, want 12 LLCO + 4 IOInt+", counts)
	}

	// Socket 2: a 1ms cluster (8 IOInt+) and a 90ms cluster (8 LLCF).
	s2 := clustersOn(plan, 2)
	if len(s2) != 2 {
		t.Fatalf("socket2 has %d clusters, want 2: %v", len(s2), s2)
	}
	if got := findByQuantum(t, s2, 1*sim.Millisecond); len(got.Members) != 8 || typeCounts(got.Members)[vcputype.IOInt] != 8 {
		t.Errorf("socket2 1ms cluster: %v (%v), want 8 IOInt+", got, typeCounts(got.Members))
	}
	if got := findByQuantum(t, s2, 90*sim.Millisecond); len(got.Members) != 8 || typeCounts(got.Members)[vcputype.LLCF] != 8 {
		t.Errorf("socket2 90ms cluster: %v, want 8 LLCF", got)
	}

	// Socket 3: 9 LLCF + 7 ConSpin- -> a 1ms cluster (4 ConSpin), a
	// 90ms cluster (8 LLCF) and a default 30ms cluster of the mixed
	// remainder (3 ConSpin + 1 LLCF), exactly as the paper narrates.
	s3 := clustersOn(plan, 3)
	if len(s3) != 3 {
		t.Fatalf("socket3 has %d clusters, want 3: %v", len(s3), s3)
	}
	def := findDefault(t, s3)
	if def.Quantum != 30*sim.Millisecond || len(def.Members) != 4 {
		t.Errorf("default cluster %v with %d members, want 30ms with 4", def, len(def.Members))
	}
	dc := typeCounts(def.Members)
	if dc[vcputype.ConSpin] != 3 || dc[vcputype.LLCF] != 1 {
		t.Errorf("default cluster composition %v, want 3 ConSpin + 1 LLCF", dc)
	}
	if got := findByQuantum(t, s3, 90*sim.Millisecond); len(got.Members) != 8 {
		t.Errorf("socket3 90ms cluster has %d members, want 8", len(got.Members))
	}
	if got := findByQuantum(t, s3, 1*sim.Millisecond); len(got.Members) != 4 || typeCounts(got.Members)[vcputype.ConSpin] != 4 {
		t.Errorf("socket3 1ms cluster %v, want 4 ConSpin", got)
	}

	// No trasher may share sockets 2-3's LLCF-only pools... more
	// precisely: socket 3 must host no trashing vCPU at all.
	for _, c := range s3 {
		for _, m := range c.Members {
			if cluster.IsTrashing(m) {
				t.Errorf("trashing vCPU %v on socket 3", m.V)
			}
		}
	}

	// Fairness: 4 vCPUs per pCPU everywhere.
	for _, c := range plan.Clusters {
		if len(c.PCPUs) == 0 {
			t.Errorf("cluster %v has no pCPUs", c)
			continue
		}
		perPCPU := float64(len(c.Members)) / float64(len(c.PCPUs))
		if perPCPU > 4 {
			t.Errorf("cluster %v overloads its pCPUs: %.1f vCPUs/pCPU", c, perPCPU)
		}
	}

	// The plan must convert to a valid hypervisor pool plan.
	if err := plan.ToPoolPlan().Validate(h); err != nil {
		t.Errorf("plan invalid: %v", err)
	}
}

func clustersOn(p *cluster.Plan, s hw.SocketID) []*cluster.Cluster {
	var out []*cluster.Cluster
	for _, c := range p.Clusters {
		if c.Socket == s {
			out = append(out, c)
		}
	}
	return out
}

func typeCounts(ms []cluster.VCPUInfo) map[vcputype.Type]int {
	out := map[vcputype.Type]int{}
	for _, m := range ms {
		out[m.Type]++
	}
	return out
}

func findByQuantum(t *testing.T, cs []*cluster.Cluster, q sim.Time) *cluster.Cluster {
	t.Helper()
	for _, c := range cs {
		if c.Quantum == q && !c.Default {
			return c
		}
	}
	t.Fatalf("no non-default cluster with quantum %v in %v", q, cs)
	return nil
}

func findDefault(t *testing.T, cs []*cluster.Cluster) *cluster.Cluster {
	t.Helper()
	for _, c := range cs {
		if c.Default {
			return c
		}
	}
	t.Fatalf("no default cluster in %v", cs)
	return nil
}

func TestTrashingClassification(t *testing.T) {
	mk := func(ty vcputype.Type, llco float64) cluster.VCPUInfo {
		return cluster.VCPUInfo{Type: ty, LLCOAvg: llco}
	}
	cases := []struct {
		info cluster.VCPUInfo
		want bool
		name string
	}{
		{mk(vcputype.LLCO, 100), true, "LLCO"},
		{mk(vcputype.LLCF, 100), false, "LLCF never trashing"},
		{mk(vcputype.LoLCF, 0), false, "LoLCF"},
		{mk(vcputype.IOInt, 90), true, "IOInt+"},
		{mk(vcputype.IOInt, 10), false, "IOInt-"},
		{mk(vcputype.ConSpin, 60), true, "ConSpin+"},
		{mk(vcputype.ConSpin, 50), false, "ConSpin at threshold"},
	}
	for _, c := range cases {
		if got := cluster.IsTrashing(c.info); got != c.want {
			t.Errorf("%s: IsTrashing = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestVariantNotation(t *testing.T) {
	if v := (cluster.VCPUInfo{Type: vcputype.IOInt, LLCOAvg: 80}).Variant(); v != "IOInt+" {
		t.Errorf("variant %q, want IOInt+", v)
	}
	if v := (cluster.VCPUInfo{Type: vcputype.ConSpin, LLCOAvg: 10}).Variant(); v != "ConSpin-" {
		t.Errorf("variant %q, want ConSpin-", v)
	}
	if v := (cluster.VCPUInfo{Type: vcputype.LLCF}).Variant(); v != "LLCF" {
		t.Errorf("variant %q, want LLCF", v)
	}
}

func TestSingleSocketScenarioS1Clustering(t *testing.T) {
	// Table 5 S1: {5 ConSpin + 3 LoLCF} at 1ms and {5 LLCF + 3 LoLCF}
	// at 90ms, 2 pCPUs each.
	topo := hw.I73770()
	h := xen.New(topo, credit.New(), 1, xen.WithGuestPCPUs([]hw.PCPUID{0, 1, 2, 3}))
	infos := buildVCPUs(h, []struct {
		t     vcputype.Type
		count int
		llco  float64
	}{
		{vcputype.ConSpin, 5, 5},
		{vcputype.LLCF, 5, 5},
		{vcputype.LoLCF, 6, 0},
	})
	plan := cluster.Build(h, infos, cluster.PaperTable())
	if len(plan.Clusters) != 2 {
		t.Fatalf("%d clusters, want 2 (Table 5 S1): %v", len(plan.Clusters), plan.Clusters)
	}
	c1 := findByQuantum(t, plan.Clusters, 1*sim.Millisecond)
	c90 := findByQuantum(t, plan.Clusters, 90*sim.Millisecond)
	tc1, tc90 := typeCounts(c1.Members), typeCounts(c90.Members)
	if tc1[vcputype.ConSpin] != 5 || tc1[vcputype.LoLCF] != 3 || len(c1.Members) != 8 {
		t.Errorf("C1 composition %v, want 5 ConSpin + 3 LoLCF", tc1)
	}
	if tc90[vcputype.LLCF] != 5 || tc90[vcputype.LoLCF] != 3 || len(c90.Members) != 8 {
		t.Errorf("C90 composition %v, want 5 LLCF + 3 LoLCF", tc90)
	}
	if len(c1.PCPUs) != 2 || len(c90.PCPUs) != 2 {
		t.Errorf("pCPU split %d/%d, want 2/2", len(c1.PCPUs), len(c90.PCPUs))
	}
}

func TestAllAgnosticSocketGetsDefaultQuantum(t *testing.T) {
	topo := hw.I73770()
	h := xen.New(topo, credit.New(), 1, xen.WithGuestPCPUs([]hw.PCPUID{0, 1}))
	infos := buildVCPUs(h, []struct {
		t     vcputype.Type
		count int
		llco  float64
	}{
		{vcputype.LoLCF, 4, 0},
		{vcputype.LLCO, 4, 100},
	})
	plan := cluster.Build(h, infos, cluster.PaperTable())
	for _, c := range plan.Clusters {
		if c.Quantum != 30*sim.Millisecond {
			t.Errorf("all-agnostic cluster %v has quantum %v, want default 30ms", c, c.Quantum)
		}
	}
}

// Property: for arbitrary type mixes, the clustering always (a) assigns
// every vCPU exactly once, (b) partitions the guest pCPUs, (c) keeps
// per-pool load within the fairness bound ceil(totV/totP) per pCPU on
// each socket, and (d) produces a plan the hypervisor accepts.
func TestClusteringInvariantsProperty(t *testing.T) {
	f := func(mix [5]uint8) bool {
		h := fourSocketHyp()
		var groups []struct {
			t     vcputype.Type
			count int
			llco  float64
		}
		types := vcputype.All()
		total := 0
		for i, c := range mix {
			n := int(c % 9)
			total += n
			llco := 0.0
			if types[i] == vcputype.LLCO {
				llco = 100
			}
			groups = append(groups, struct {
				t     vcputype.Type
				count int
				llco  float64
			}{types[i], n, llco})
		}
		if total == 0 {
			return true
		}
		infos := buildVCPUs(h, groups)
		plan := cluster.Build(h, infos, cluster.PaperTable())

		seen := map[*xen.VCPU]int{}
		for _, c := range plan.Clusters {
			for _, m := range c.Members {
				seen[m.V]++
			}
		}
		if len(seen) != total {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return plan.ToPoolPlan().Validate(h) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Package fairshare implements the deficit-weighted round ordering
// shared by the fleet's tenant-fairshare placement and aqlsweepd's job
// queue: contenders are served in ascending order of how much service
// they have already received per unit of weight, so over repeated
// rounds each contender's share of completed service converges to its
// weight fraction.
//
// The ordering is a pure function of its inputs — no randomness, no
// wall clock — which is what lets both callers keep their byte-identical
// determinism guarantees.
package fairshare

import "sort"

// Entry is one contender in a deficit round. Served is the service the
// contender has already received (committed vCPUs for tenants,
// completed sweep cells for queue users); Weight is its proportional
// share (> 0). Key breaks deficit ties deterministically (lowest
// first) and must be unique within one Order call.
type Entry struct {
	Key    int
	Served float64
	Weight float64
}

// Deficit is the contender's served-per-weight ratio — the quantity a
// deficit round minimizes.
func (e Entry) Deficit() float64 { return e.Served / e.Weight }

// Order returns the indices of entries in dispatch order: ascending
// Served/Weight, ties broken on ascending Key. Callers walk the order
// and serve the first contender that can actually be served (a VM that
// fits, a job whose user still has queue entries), which preserves the
// convergence property even when the most underserved contender is
// blocked.
func Order(entries []Entry) []int {
	idx := make([]int, len(entries))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		da, db := entries[idx[a]].Deficit(), entries[idx[b]].Deficit()
		if da != db {
			return da < db
		}
		return entries[idx[a]].Key < entries[idx[b]].Key
	})
	return idx
}

// Pick returns the index of the single most underserved entry (the
// head of Order), or -1 for an empty slice.
func Pick(entries []Entry) int {
	if len(entries) == 0 {
		return -1
	}
	return Order(entries)[0]
}

package fairshare

import (
	"math"
	"testing"
)

func TestOrderByDeficit(t *testing.T) {
	entries := []Entry{
		{Key: 0, Served: 10, Weight: 1}, // deficit 10
		{Key: 1, Served: 2, Weight: 1},  // deficit 2
		{Key: 2, Served: 6, Weight: 2},  // deficit 3
	}
	got := Order(entries)
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Order = %v, want %v", got, want)
		}
	}
}

func TestOrderTieBreaksOnKey(t *testing.T) {
	entries := []Entry{
		{Key: 7, Served: 4, Weight: 2},
		{Key: 3, Served: 2, Weight: 1},
		{Key: 5, Served: 6, Weight: 3},
	}
	// All deficits are 2: order must be ascending Key.
	got := Order(entries)
	want := []int{1, 2, 0} // keys 3, 5, 7
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Order = %v, want %v (keys %d,%d,%d)",
				got, want, entries[got[0]].Key, entries[got[1]].Key, entries[got[2]].Key)
		}
	}
}

func TestHigherWeightServedFirst(t *testing.T) {
	// Equal service received, unequal weights: the heavier contender is
	// more underserved relative to its entitlement.
	entries := []Entry{
		{Key: 0, Served: 6, Weight: 1},
		{Key: 1, Served: 6, Weight: 3},
	}
	if got := Pick(entries); got != 1 {
		t.Fatalf("Pick = %d, want 1 (weight 3 is more underserved)", got)
	}
}

func TestPickEmpty(t *testing.T) {
	if got := Pick(nil); got != -1 {
		t.Fatalf("Pick(nil) = %d, want -1", got)
	}
}

// TestSharesConvergeToWeights simulates the dispatch loop both callers
// run: serve one unit to the round winner, repeat. Completed-service
// shares must converge to the weight fractions.
func TestSharesConvergeToWeights(t *testing.T) {
	weights := []float64{3, 2, 1}
	served := make([]float64, len(weights))
	for round := 0; round < 600; round++ {
		entries := make([]Entry, len(weights))
		for i := range weights {
			entries[i] = Entry{Key: i, Served: served[i], Weight: weights[i]}
		}
		served[Pick(entries)]++
	}
	total, wsum := 0.0, 0.0
	for i := range weights {
		total += served[i]
		wsum += weights[i]
	}
	for i, w := range weights {
		share := served[i] / total
		want := w / wsum
		if math.Abs(share-want) > 0.01 {
			t.Fatalf("contender %d share %.3f, want %.3f ± 0.01 (served %v)", i, share, want, served)
		}
	}
}

// TestBlockedContenderSkipped mirrors the callers' walk-the-order use:
// when the most underserved contender cannot be served, the next in
// deficit order gets its turn.
func TestBlockedContenderSkipped(t *testing.T) {
	entries := []Entry{
		{Key: 0, Served: 0, Weight: 1}, // most underserved, but blocked
		{Key: 1, Served: 5, Weight: 1},
	}
	blocked := map[int]bool{0: true}
	for _, i := range Order(entries) {
		if blocked[i] {
			continue
		}
		if i != 1 {
			t.Fatalf("served contender %d, want 1", i)
		}
		return
	}
	t.Fatal("nothing served")
}

package credit_test

import (
	"testing"

	"aqlsched/internal/cache"
	"aqlsched/internal/credit"
	"aqlsched/internal/guest"
	"aqlsched/internal/hw"
	"aqlsched/internal/iodev"
	"aqlsched/internal/sim"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

func newHyp(pcpus int) (*xen.Hypervisor, *credit.Scheduler) {
	var ids []hw.PCPUID
	for i := 0; i < pcpus; i++ {
		ids = append(ids, hw.PCPUID(i))
	}
	s := credit.New()
	h := xen.New(hw.I73770(), s, 42, xen.WithGuestPCPUs(ids))
	return h, s
}

func spawnBurner(d *xen.Domain, cpu int) *guest.Thread {
	return d.OS.Spawn("burn", cpu, false,
		workload.NewCPUBound(cache.Profile{WSS: 64 * hw.KB, RefRate: 0.1}, 5*sim.Millisecond), 0)
}

func TestEqualWeightsShareEqually(t *testing.T) {
	h, _ := newHyp(1)
	d1 := h.CreateDomain("a", 256, 0, 1)
	d2 := h.CreateDomain("b", 256, 0, 1)
	spawnBurner(d1, 0)
	spawnBurner(d2, 0)
	h.Run(6 * sim.Second)
	r1, r2 := d1.VCPUs[0].RunTime, d2.VCPUs[0].RunTime
	ratio := float64(r1) / float64(r2)
	if ratio < 0.85 || ratio > 1.18 {
		t.Errorf("equal weights: share ratio %.3f (r1=%v r2=%v), want ~1", ratio, r1, r2)
	}
	if r1+r2 < 5900*sim.Millisecond {
		t.Errorf("pCPU idle despite runnable work: total %v", r1+r2)
	}
}

func TestDoubleWeightGetsDoubleShare(t *testing.T) {
	h, _ := newHyp(1)
	d1 := h.CreateDomain("heavy", 512, 0, 1)
	d2 := h.CreateDomain("light", 256, 0, 1)
	spawnBurner(d1, 0)
	spawnBurner(d2, 0)
	h.Run(12 * sim.Second)
	r1, r2 := d1.VCPUs[0].RunTime, d2.VCPUs[0].RunTime
	ratio := float64(r1) / float64(r2)
	if ratio < 1.6 || ratio > 2.5 {
		t.Errorf("2:1 weights: share ratio %.3f (heavy=%v light=%v), want ~2", ratio, r1, r2)
	}
}

func TestCapLimitsConsumption(t *testing.T) {
	h, _ := newHyp(1)
	d := h.CreateDomain("capped", 256, 25, 1)
	spawnBurner(d, 0)
	h.Run(12 * sim.Second)
	frac := d.VCPUs[0].RunTime.Seconds() / 12
	if frac > 0.35 {
		t.Errorf("capped domain used %.0f%% of the pCPU, cap is 25%%", frac*100)
	}
	if frac < 0.15 {
		t.Errorf("capped domain used only %.0f%%, should approach its 25%% cap", frac*100)
	}
}

func TestFourVCPUsPerPCPUFairness(t *testing.T) {
	// The paper's standard consolidation ratio: 4 vCPUs per pCPU.
	h, _ := newHyp(2)
	var doms []*xen.Domain
	for i := 0; i < 8; i++ {
		d := h.CreateDomain("vm", 256, 0, 1)
		spawnBurner(d, 0)
		doms = append(doms, d)
	}
	h.Run(8 * sim.Second)
	var min, max sim.Time = sim.MaxTime, 0
	for _, d := range doms {
		rt := d.VCPUs[0].RunTime
		if rt < min {
			min = rt
		}
		if rt > max {
			max = rt
		}
	}
	// Every vCPU should get roughly 1/4 of a pCPU (2s of 8s).
	if float64(max)/float64(min) > 1.35 {
		t.Errorf("unfair split across 8 equal vCPUs: min=%v max=%v", min, max)
	}
}

func TestBoostKeepsExclusiveIOLatencyLowUnderContention(t *testing.T) {
	// Fig. 2(a) mechanism: an exclusively-IO vCPU colocated with CPU
	// hogs on one pCPU still sees low latency under the default 30 ms
	// quantum, because each wake-up BOOSTs it past the hogs.
	h, _ := newHyp(1)
	web := h.CreateDomain("web", 256, 0, 1)
	srv := iodev.NewServer("web", 1)
	web.OS.Spawn("handler", 0, true, workload.NewHandler(srv, 200*sim.Microsecond, cache.Profile{WSS: 64 * hw.KB}), 0)
	for i := 0; i < 3; i++ {
		d := h.CreateDomain("hog", 256, 0, 1)
		spawnBurner(d, 0)
	}
	src := iodev.NewPoissonSource(h, web, srv, 200, sim.NewRNG(7))
	src.Start()
	h.Run(2 * sim.Second)
	srv.Lat.Reset()
	h.Run(8 * sim.Second)
	mean := srv.Lat.Mean()
	if srv.Lat.Count() < 500 {
		t.Fatalf("only %d requests measured", srv.Lat.Count())
	}
	// Without BOOST the wait would be ~3 quanta = 90ms; with BOOST it
	// should be dominated by the rate limit (~1ms) and service time.
	if mean > 5*sim.Millisecond {
		t.Errorf("exclusive-IO mean latency %v under BOOST, want < 5ms", mean)
	}
}

func TestHeterogeneousIOLatencyDependsOnQuantum(t *testing.T) {
	// Fig. 2(b) mechanism: a web vCPU that also runs CGI work never
	// blocks, is never boosted, and so waits ~(k-1) quanta per request.
	// Shrinking the quantum must shrink the latency.
	meanAt := func(q sim.Time) sim.Time {
		h, _ := newHyp(1)
		web := h.CreateDomain("web", 256, 0, 1)
		srv := iodev.NewServer("web", 1)
		web.OS.Spawn("handler", 0, true, workload.NewHandler(srv, 200*sim.Microsecond, cache.Profile{WSS: 64 * hw.KB}), 0)
		web.OS.Spawn("cgi", 0, false,
			workload.NewCPUBound(cache.Profile{WSS: 128 * hw.KB, RefRate: 0.2}, 5*sim.Millisecond), 0)
		for i := 0; i < 3; i++ {
			d := h.CreateDomain("hog", 256, 0, 1)
			spawnBurner(d, 0)
		}
		pool := xen.NewCPUPool("all", q, []hw.PCPUID{0})
		plan := &xen.PoolPlan{Pools: []*xen.CPUPool{pool}, Assign: map[*xen.VCPU]*xen.CPUPool{}}
		for _, v := range h.AllVCPUs() {
			plan.Assign[v] = pool
		}
		if err := h.ApplyPlan(plan, 0); err != nil {
			t.Fatal(err)
		}
		src := iodev.NewPoissonSource(h, web, srv, 100, sim.NewRNG(7))
		src.Start()
		h.Run(2 * sim.Second)
		srv.Lat.Reset()
		h.Run(10 * sim.Second)
		if srv.Lat.Count() < 300 {
			t.Fatalf("only %d requests measured at q=%v", srv.Lat.Count(), q)
		}
		return srv.Lat.Mean()
	}
	lat1 := meanAt(1 * sim.Millisecond)
	lat30 := meanAt(30 * sim.Millisecond)
	if lat1 >= lat30 {
		t.Errorf("hetero IO latency: q=1ms %v not better than q=30ms %v", lat1, lat30)
	}
	// The paper's Section 1 claims ~62%% improvement at 1ms vs 30ms.
	improvement := 1 - float64(lat1)/float64(lat30)
	if improvement < 0.40 {
		t.Errorf("1ms improves hetero latency by only %.0f%%, want > 40%%", improvement*100)
	}
}

func TestSpinLockHoldDurationGrowsWithQuantum(t *testing.T) {
	// Fig. 2 rightmost: lock-holder preemption stretches a hold by up
	// to (k-1) quanta, so the worst hold grows with the quantum when 4
	// lock-sharing vCPUs are consolidated.
	holdAt := func(q sim.Time) sim.Time {
		h, _ := newHyp(1)
		spec := workload.MicroKernbench(4)
		dep := workload.Deploy(h, spec, "", sim.NewRNG(3))
		// Consolidate: all 4 vCPUs on 1 pCPU.
		pool := xen.NewCPUPool("all", q, []hw.PCPUID{0})
		plan := &xen.PoolPlan{Pools: []*xen.CPUPool{pool}, Assign: map[*xen.VCPU]*xen.CPUPool{}}
		for _, v := range h.AllVCPUs() {
			plan.Assign[v] = pool
		}
		if err := h.ApplyPlan(plan, 0); err != nil {
			t.Fatal(err)
		}
		h.Run(10 * sim.Second)
		_, _, max := dep.Locks[0].HoldStats()
		return max
	}
	h20 := holdAt(20 * sim.Millisecond)
	h80 := holdAt(80 * sim.Millisecond)
	if h80 <= h20 {
		t.Errorf("worst lock hold at q=80ms (%v) not larger than at q=20ms (%v)", h80, h20)
	}
}

func TestPoolQuantumControlsDispatchLength(t *testing.T) {
	h, _ := newHyp(1)
	d1 := h.CreateDomain("a", 256, 0, 1)
	d2 := h.CreateDomain("b", 256, 0, 1)
	spawnBurner(d1, 0)
	spawnBurner(d2, 0)
	pool := xen.NewCPUPool("fast", 1*sim.Millisecond, []hw.PCPUID{0})
	plan := &xen.PoolPlan{Pools: []*xen.CPUPool{pool}, Assign: map[*xen.VCPU]*xen.CPUPool{
		d1.VCPUs[0]: pool, d2.VCPUs[0]: pool,
	}}
	if err := h.ApplyPlan(plan, 0); err != nil {
		t.Fatal(err)
	}
	h.Run(1 * sim.Second)
	// 1ms slices, 2 busy vCPUs: ~1000 switches/s.
	if h.CtxSwitches < 800 || h.CtxSwitches > 1300 {
		t.Errorf("context switches = %d with 1ms pool, want ~1000", h.CtxSwitches)
	}
}

func TestStealingUsesIdlePCPUs(t *testing.T) {
	// 2 pCPUs, 2 busy vCPUs that both wake on pCPU 0's queue: one must
	// be stolen by pCPU 1 so neither waits.
	h, _ := newHyp(2)
	d1 := h.CreateDomain("a", 256, 0, 1)
	d2 := h.CreateDomain("b", 256, 0, 1)
	spawnBurner(d1, 0)
	spawnBurner(d2, 0)
	h.Run(2 * sim.Second)
	r1, r2 := d1.VCPUs[0].RunTime, d2.VCPUs[0].RunTime
	if r1 < 1900*sim.Millisecond || r2 < 1900*sim.Millisecond {
		t.Errorf("with 2 pCPUs both vCPUs should run ~full time: %v, %v", r1, r2)
	}
}

func TestCreditDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64) {
		h, _ := newHyp(2)
		web := h.CreateDomain("web", 256, 0, 1)
		srv := iodev.NewServer("web", 1)
		web.OS.Spawn("h", 0, true, workload.NewHandler(srv, 100*sim.Microsecond, cache.Profile{WSS: 32 * hw.KB}), 0)
		src := iodev.NewPoissonSource(h, web, srv, 300, sim.NewRNG(5))
		src.Start()
		d := h.CreateDomain("cpu", 256, 0, 1)
		spawnBurner(d, 0)
		h.Run(3 * sim.Second)
		return srv.Lat.Mean(), h.CtxSwitches
	}
	m1, c1 := run()
	m2, c2 := run()
	if m1 != m2 || c1 != c2 {
		t.Errorf("identical runs diverged: (%v,%d) vs (%v,%d)", m1, c1, m2, c2)
	}
}

func TestVSlicerStyleSliceOverride(t *testing.T) {
	h, _ := newHyp(1)
	d1 := h.CreateDomain("ls", 256, 0, 1)
	d2 := h.CreateDomain("be", 256, 0, 1)
	spawnBurner(d1, 0)
	spawnBurner(d2, 0)
	d1.VCPUs[0].SliceOverride = 2 * sim.Millisecond
	h.Run(2 * sim.Second)
	// The override must not starve either side.
	r1, r2 := d1.VCPUs[0].RunTime, d2.VCPUs[0].RunTime
	if r1 == 0 || r2 == 0 {
		t.Fatalf("starvation: r1=%v r2=%v", r1, r2)
	}
	// The overridden vCPU runs shorter slices: with RR order its share
	// drops; what matters here is that dispatches are 2ms long, giving
	// many more context switches than 30ms slices alone would.
	if h.CtxSwitches < 100 {
		t.Errorf("ctx switches %d, want >100 with a 2ms slice in play", h.CtxSwitches)
	}
}

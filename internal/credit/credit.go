// Package credit implements the Xen Credit scheduler model the paper
// extends (Section 2.1).
//
// Each domain holds a weight (proportional share) and an optional cap.
// Every accounting period (30 ms) the scheduler mints credits — 300 per
// pCPU — and distributes them to domains in proportion to their
// weights, splitting each domain's share across its vCPUs. Running
// vCPUs burn credits at 300 per 30 ms of pCPU time. A vCPU with
// positive credit is UNDER, negative is OVER; UNDER vCPUs are scheduled
// round-robin before OVER ones (the paper's Q1), each for the quantum of
// its CPU pool (the paper's Q2; Xen default 30 ms).
//
// The BOOST mechanism ([13], discussed in Sections 1 and 3.4) is
// modelled faithfully: a vCPU that wakes from blocked while UNDER enters
// the BOOST priority, is queued ahead of everyone and may preempt a
// running vCPU that has held its pCPU for at least the rate limit. This
// is what makes *exclusively* IO-bound vCPUs quantum-agnostic
// (Fig. 2(a)) while heterogeneous vCPUs — which exhaust their slice and
// are never boost-eligible — wait a full round of quanta (Fig. 2(b)).
package credit

import (
	"fmt"

	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
	"aqlsched/internal/xen"
)

// Priorities, lower is better.
const (
	prioBoost = 0
	prioUnder = 1
	prioOver  = 2
	// prioParked marks capped domains that exhausted their cap: they
	// stay queued but are never picked until credits replenish (Xen's
	// CSCHED_PRI_TS_PARKED).
	prioParked = 3
)

// Accounting constants mirroring Xen's credit scheduler.
const (
	// AcctPeriod is the credit accounting period.
	AcctPeriod = 30 * sim.Millisecond
	// creditsPerAcct is minted per pCPU per accounting period.
	creditsPerAcct = 300.0
	// creditPerUs converts run time to burned credits.
	creditPerUs = creditsPerAcct / float64(AcctPeriod)
	// creditClamp bounds accumulated credit (Xen caps hoarding).
	creditClamp = 300.0
)

// data is the scheduler-private state of one vCPU.
type data struct {
	credit float64
	prio   int
	queued bool
	queue  hw.PCPUID // which runqueue holds it (valid when queued)
	// chargedUpTo is the watermark up to which run time has been
	// converted into burned credit, so periodic accounting and
	// requeue-time burning never double-charge.
	chargedUpTo sim.Time
	// boostRetry is the vCPU's pre-bound boost-retry event body. Bound
	// once at AddVCPU, it lets boostPreempt schedule any number of
	// pending retries without allocating a closure per attempt (the
	// retry path fires on every BOOST wake and used to dominate the
	// allocation profile).
	boostRetry sim.EventFunc
}

func sd(v *xen.VCPU) *data { return v.SD.(*data) }

// Scheduler is the Credit policy. One instance serves all pools.
type Scheduler struct {
	h     *xen.Hypervisor
	runq  map[hw.PCPUID][]*xen.VCPU
	vcpus []*xen.VCPU

	// BoostEnabled mirrors Xen's BOOST; some calibration/baseline runs
	// disable it.
	BoostEnabled bool

	acctEvents uint64
}

// New returns a Credit scheduler with BOOST enabled.
func New() *Scheduler {
	return &Scheduler{runq: make(map[hw.PCPUID][]*xen.VCPU), BoostEnabled: true}
}

// Name implements xen.Scheduler.
func (s *Scheduler) Name() string { return "credit" }

// Attach implements xen.Scheduler and starts the accounting tick.
func (s *Scheduler) Attach(h *xen.Hypervisor) {
	s.h = h
	var acct func(now sim.Time)
	acct = func(now sim.Time) {
		s.account(now)
		h.Engine.After(AcctPeriod, acct)
	}
	h.Engine.After(AcctPeriod, acct)
}

// AddVCPU implements xen.Scheduler.
func (s *Scheduler) AddVCPU(v *xen.VCPU, now sim.Time) {
	c := &data{credit: 0, prio: prioUnder}
	c.boostRetry = func(t sim.Time) {
		// Still waiting with its boost? Try again.
		if v.State() == xen.Runnable && c.queued && c.prio == prioBoost {
			s.boostPreempt(v, t)
		}
	}
	v.SD = c
	s.vcpus = append(s.vcpus, v)
}

// RemoveVCPU implements xen.Scheduler: drop the vCPU from its runqueue
// and the accounting list (VM teardown).
func (s *Scheduler) RemoveVCPU(v *xen.VCPU, now sim.Time) {
	s.dequeue(v)
	for i, x := range s.vcpus {
		if x == v {
			s.vcpus = append(s.vcpus[:i], s.vcpus[i+1:]...)
			break
		}
	}
}

// burnUpTo converts run time in (chargedUpTo, now] into burned credit.
func (s *Scheduler) burnUpTo(v *xen.VCPU, now sim.Time) {
	c := sd(v)
	if now <= c.chargedUpTo {
		return
	}
	c.credit -= float64(now-c.chargedUpTo) * creditPerUs
	if c.credit < -creditClamp {
		c.credit = -creditClamp
	}
	c.chargedUpTo = now
}

// account mints and distributes credits (every 30 ms).
func (s *Scheduler) account(now sim.Time) {
	s.acctEvents++
	// Charge running vCPUs for time elapsed since their watermark, so
	// long slices burn credit across period boundaries.
	for _, v := range s.vcpus {
		if v.State() == xen.Running {
			s.burnUpTo(v, now)
		}
	}
	// Mint: 300 credits per guest pCPU per period, split by weight.
	total := creditsPerAcct * float64(len(s.h.GuestPCPUs()))
	weightSum := 0
	for _, d := range s.h.Domains {
		weightSum += d.Weight * len(d.VCPUs)
	}
	if weightSum == 0 {
		return
	}
	for _, d := range s.h.Domains {
		domShare := total * float64(d.Weight*len(d.VCPUs)) / float64(weightSum)
		perVCPU := domShare / float64(len(d.VCPUs))
		if d.Cap > 0 {
			// Cap: the domain may consume at most Cap% of one pCPU.
			maxPerVCPU := creditsPerAcct * float64(d.Cap) / 100 / float64(len(d.VCPUs))
			if perVCPU > maxPerVCPU {
				perVCPU = maxPerVCPU
			}
		}
		for _, v := range d.VCPUs {
			c := sd(v)
			c.credit += perVCPU
			if c.credit > creditClamp {
				c.credit = creditClamp
			}
			// A boosted vCPU that is still waiting in a run queue keeps
			// its boost: clearing it here would strand a woken IO vCPU
			// behind full slices whenever the tick lands inside its
			// (rate-limited) preemption window.
			if c.prio == prioBoost && c.queued && v.State() == xen.Runnable {
				continue
			}
			// Priority recomputes at the tick; BOOST expires here.
			switch {
			case c.credit >= 0:
				c.prio = prioUnder
			case d.Cap > 0:
				// Over budget with a cap: parked until replenished.
				c.prio = prioParked
			default:
				c.prio = prioOver
			}
			// A running capped vCPU that went over budget is evicted.
			if c.prio == prioParked && v.State() == xen.Running {
				s.h.Preempt(v.PCPU(), now)
			}
		}
	}
	// Priorities moved around: idle pCPUs may now have runnable work
	// (e.g. a parked vCPU just unparked).
	for _, p := range s.h.GuestPCPUs() {
		if s.h.RunningOn(p) == nil {
			s.h.TryRun(p, now)
		}
	}
}

// homePCPU picks the runqueue pCPU for v: its last pCPU when inside its
// pool, otherwise the pool pCPU with the shortest queue.
func (s *Scheduler) homePCPU(v *xen.VCPU) hw.PCPUID {
	pool := v.Pool()
	if pool.Contains(v.LastPCPU()) {
		return v.LastPCPU()
	}
	best := pool.PCPUs()[0]
	for _, p := range pool.PCPUs() {
		if len(s.runq[p]) < len(s.runq[best]) {
			best = p
		}
	}
	return best
}

// enqueue inserts v into its home runqueue in priority order (FIFO
// within a priority level).
func (s *Scheduler) enqueue(v *xen.VCPU) {
	c := sd(v)
	if c.queued {
		panic(fmt.Sprintf("credit: %v queued twice", v))
	}
	p := s.homePCPU(v)
	q := s.runq[p]
	pos := len(q)
	for i := range q {
		if sd(q[i]).prio > c.prio {
			pos = i
			break
		}
	}
	q = append(q, nil)
	copy(q[pos+1:], q[pos:])
	q[pos] = v
	s.runq[p] = q
	c.queued = true
	c.queue = p
}

// dequeue removes v from its runqueue.
func (s *Scheduler) dequeue(v *xen.VCPU) {
	c := sd(v)
	if !c.queued {
		return
	}
	q := s.runq[c.queue]
	for i, x := range q {
		if x == v {
			s.runq[c.queue] = append(q[:i], q[i+1:]...)
			break
		}
	}
	c.queued = false
}

// Wake implements xen.Scheduler: BOOST when eligible, then try to place.
// Eligibility follows Xen: a vCPU that was UNDER at the last accounting
// tick boosts on wake; OVER (or parked) ones do not.
func (s *Scheduler) Wake(v *xen.VCPU, now sim.Time) {
	c := sd(v)
	boosted := false
	if s.BoostEnabled && c.prio <= prioUnder {
		c.prio = prioBoost
		boosted = true
	}
	s.enqueue(v)

	pool := v.Pool()
	// Fill an idle pCPU first (prefer the vCPU's last pCPU).
	if pool.Contains(v.LastPCPU()) && s.h.RunningOn(v.LastPCPU()) == nil {
		s.h.TryRun(v.LastPCPU(), now)
		return
	}
	for _, p := range pool.PCPUs() {
		if s.h.RunningOn(p) == nil {
			s.h.TryRun(p, now)
			return
		}
	}
	if boosted {
		s.boostPreempt(v, now)
	}
}

// boostPreempt tries to evict the worst-priority running vCPU in v's
// pool for the boosted v. When every candidate is still inside its rate
// limit, the attempt is retried the moment the earliest one becomes
// eligible (Xen defers the tickle the same way); without the retry a
// boosted vCPU that wakes just after a hog's dispatch would wait the
// hog's entire quantum, defeating BOOST for long slices.
func (s *Scheduler) boostPreempt(v *xen.VCPU, now sim.Time) {
	pool := v.Pool()
	var target hw.PCPUID
	worst := prioBoost // only preempt strictly worse than BOOST
	found := false
	soonest := sim.MaxTime
	for _, p := range pool.PCPUs() {
		r := s.h.RunningOn(p)
		if r == nil {
			s.h.TryRun(p, now)
			return
		}
		if pr := sd(r).prio; pr > prioBoost {
			if ran := r.RanFor(now); ran < xen.RateLimit {
				if at := now + xen.RateLimit - ran; at < soonest {
					soonest = at
				}
				continue
			}
			if pr > worst {
				worst = pr
				target = p
				found = true
			}
		}
	}
	if found {
		s.h.Preempt(target, now)
		return
	}
	if soonest == sim.MaxTime {
		// No candidate at all right now (e.g. every runner is itself
		// boosted). Those states are transient — retry after the rate
		// limit rather than stranding the boosted vCPU for a slice.
		soonest = now + xen.RateLimit
	}
	s.h.Engine.At(soonest, sd(v).boostRetry)
}

// Requeue implements xen.Scheduler: burn credits for the slice that just
// ended and queue on the home runqueue. As in Xen, the priority is NOT
// recomputed here — UNDER/OVER only changes at the accounting tick — but
// an expiring slice does consume a BOOST.
func (s *Scheduler) Requeue(v *xen.VCPU, ranFor sim.Time, now sim.Time) {
	s.burnUpTo(v, now)
	c := sd(v)
	if c.prio == prioBoost {
		c.prio = prioUnder
	}
	s.enqueue(v)
}

// Block implements xen.Scheduler: burn for the partial slice. The
// tick-time priority is kept (Xen semantics).
func (s *Scheduler) Block(v *xen.VCPU, now sim.Time) {
	s.dequeue(v) // defensive; a blocking vCPU is normally unqueued
	s.burnUpTo(v, now)
	c := sd(v)
	if c.prio == prioBoost {
		c.prio = prioUnder
	}
}

// PickNext implements xen.Scheduler: pop the best local vCPU, else steal
// from the peer queue (within the pool) holding the most stealable work.
func (s *Scheduler) PickNext(p hw.PCPUID, now sim.Time) *xen.VCPU {
	if v := s.popLocal(p, now); v != nil {
		return v
	}
	pool := s.h.PoolOf(p)
	if pool == nil {
		return nil
	}
	var richest hw.PCPUID
	max := 0
	for _, q := range pool.PCPUs() {
		if q == p {
			continue
		}
		if n := s.countStealable(q, p); n > max {
			max = n
			richest = q
		}
	}
	if max == 0 {
		return nil
	}
	if v := s.popStealable(richest, p, now); v != nil {
		sd(v).chargedUpTo = now
		return v
	}
	return nil
}

// popLocal pops the first runnable (non-parked) vCPU of p's queue,
// re-homing strays whose pool no longer includes p (self-healing after
// reconfiguration).
func (s *Scheduler) popLocal(p hw.PCPUID, now sim.Time) *xen.VCPU {
	for {
		idx := -1
		for i, v := range s.runq[p] {
			if sd(v).prio != prioParked {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil
		}
		q := s.runq[p]
		v := q[idx]
		s.runq[p] = append(q[:idx], q[idx+1:]...)
		sd(v).queued = false
		if v.Pool().Contains(p) {
			sd(v).chargedUpTo = now
			return v
		}
		s.enqueue(v) // re-home to its own pool
	}
}

// countStealable counts vCPUs queued on q that are allowed to run on p.
func (s *Scheduler) countStealable(q, p hw.PCPUID) int {
	n := 0
	for _, v := range s.runq[q] {
		if v.Pool().Contains(p) && sd(v).prio != prioParked {
			n++
		}
	}
	return n
}

// popStealable removes the first vCPU on q's queue that may run on p.
func (s *Scheduler) popStealable(q, p hw.PCPUID, now sim.Time) *xen.VCPU {
	for i, v := range s.runq[q] {
		if v.Pool().Contains(p) && sd(v).prio != prioParked {
			s.runq[q] = append(s.runq[q][:i], s.runq[q][i+1:]...)
			sd(v).queued = false
			return v
		}
	}
	return nil
}

// SliceFor implements xen.Scheduler: the pool quantum, clipped by any
// per-vCPU override (vSlicer-style policies).
func (s *Scheduler) SliceFor(v *xen.VCPU, p hw.PCPUID) sim.Time {
	slice := v.Pool().Slice
	if v.SliceOverride > 0 && v.SliceOverride < slice {
		slice = v.SliceOverride
	}
	return slice
}

// PoolChanged implements xen.Scheduler: re-home a queued vCPU.
func (s *Scheduler) PoolChanged(v *xen.VCPU, now sim.Time) {
	if sd(v).queued {
		s.dequeue(v)
		s.enqueue(v)
	}
}

// Credit reports v's current credit (tests/diagnostics).
func (s *Scheduler) Credit(v *xen.VCPU) float64 { return sd(v).credit }

// Prio reports v's current priority (tests/diagnostics).
func (s *Scheduler) Prio(v *xen.VCPU) int { return sd(v).prio }

// QueueLen reports the length of pCPU p's runqueue (tests).
func (s *Scheduler) QueueLen(p hw.PCPUID) int { return len(s.runq[p]) }

package core_test

import (
	"testing"

	"aqlsched/internal/baselines"
	"aqlsched/internal/core"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

// runS1 runs the Table 4 S1 scenario under a policy.
func runWith(t *testing.T, name string, pol scenario.Policy, warmup, measure sim.Time) *scenario.Result {
	t.Helper()
	spec := scenario.ScenarioByName(name, 7)
	spec.Warmup = warmup
	spec.Measure = measure
	return scenario.Run(spec, pol)
}

func TestAQLRecognizesScenarioTypes(t *testing.T) {
	var ctl *core.Controller
	res := runWith(t, "S1", baselines.AQL{Out: &ctl}, 2*sim.Second, 1*sim.Second)
	if ctl == nil {
		t.Fatal("controller not exposed")
	}
	// Every vCPU of every deployment should be typed as its Expected
	// type by the end of the run.
	mistyped := 0
	total := 0
	for _, d := range res.Deps {
		for _, v := range d.Dom.VCPUs {
			total++
			if got := ctl.Monitor.TypeOf(v); got != d.Spec.Expected {
				mistyped++
				t.Logf("%v: typed %v, expected %v (avg %+v)", v, got, d.Spec.Expected, ctl.Monitor.AveragesOf(v))
			}
		}
	}
	if mistyped > total/8 {
		t.Errorf("%d/%d vCPUs mistyped", mistyped, total)
	}
}

func TestAQLFormsTable5S1Clusters(t *testing.T) {
	var ctl *core.Controller
	runWith(t, "S1", baselines.AQL{Out: &ctl}, 2*sim.Second, 1*sim.Second)
	if ctl.LastPlan == nil {
		t.Fatal("no cluster plan applied")
	}
	// Table 5 S1: two clusters, 1ms (ConSpin+LoLCF) and 90ms
	// (LLCF+LoLCF), 2 pCPUs each.
	var q1, q90 int
	for _, c := range ctl.LastPlan.Clusters {
		switch c.Quantum {
		case 1 * sim.Millisecond:
			q1++
			if len(c.PCPUs) != 2 {
				t.Errorf("1ms cluster has %d pCPUs, want 2", len(c.PCPUs))
			}
		case 90 * sim.Millisecond:
			q90++
			if len(c.PCPUs) != 2 {
				t.Errorf("90ms cluster has %d pCPUs, want 2", len(c.PCPUs))
			}
		default:
			t.Errorf("unexpected cluster quantum %v", c.Quantum)
		}
	}
	if q1 != 1 || q90 != 1 {
		t.Errorf("clusters: %d at 1ms, %d at 90ms; want 1 and 1. Plan: %v",
			q1, q90, ctl.LastPlan.Clusters)
	}
}

func TestAQLOutperformsDefaultXenOnS2(t *testing.T) {
	// S2 colocates IOInt web VMs with LLCF and LLCO: AQL should beat
	// default Xen on the web latency (1ms pool) while not hurting LLCF
	// (90ms pool, separated from trashers where possible).
	base := runWith(t, "S2", baselines.XenDefault{}, 2*sim.Second, 4*sim.Second)
	aql := runWith(t, "S2", baselines.AQL{}, 2*sim.Second, 4*sim.Second)
	norm := scenario.Normalize(aql, base)

	if n := norm["SPECweb2009"]; n >= 1.0 {
		t.Errorf("AQL web latency normalized %.3f, want < 1 (improvement)", n)
	}
	if n := norm["bzip2"]; n > 1.10 {
		t.Errorf("AQL LLCF normalized %.3f, want <= ~1 (no regression)", n)
	}
	// LLCO is agnostic: must be within noise.
	if n := norm["libquantum"]; n > 1.15 {
		t.Errorf("AQL LLCO normalized %.3f, want ~1 (agnostic)", n)
	}
}

func TestAQLOverheadNegligible(t *testing.T) {
	// Section 4.3: the monitoring systems alone (event-channel
	// counting, PLE trapping, PMU sampling every 30 ms) must not perturb
	// application performance (paper: < 1%).
	base := runWith(t, "S3", baselines.XenDefault{}, 1*sim.Second, 4*sim.Second)
	mon := runWith(t, "S3", baselines.AQL{MonitorOnly: true}, 1*sim.Second, 4*sim.Second)
	norm := scenario.Normalize(mon, base)
	for app, n := range norm {
		if n > 1.01 || n < 0.99 {
			t.Errorf("%s: monitoring-only run normalized %.3f, want ~1 (negligible overhead)", app, n)
		}
	}
}

func TestAQLReclusteringIsStable(t *testing.T) {
	// Once types stabilize, the controller should stop reconfiguring:
	// the plan signature is unchanged so ApplyPlan is skipped.
	var ctl *core.Controller
	runWith(t, "S1", baselines.AQL{Out: &ctl}, 3*sim.Second, 3*sim.Second)
	// 6s of run = 50 windows; if every window reconfigured, churn.
	if ctl.Reclusters > 20 {
		t.Errorf("%d reconfigurations over 6s, want few (stable types)", ctl.Reclusters)
	}
	if ctl.Reclusters == 0 {
		t.Error("controller never applied a plan")
	}
}

func TestAQLAdaptsWhenWorkloadChanges(t *testing.T) {
	// A vCPU that changes behaviour (LLCF -> LLCO) must be re-typed and
	// the plan updated: the paper's "fixed type is not realistic"
	// argument (Section 1).
	spec := scenario.ScenarioByName("S1", 11)
	spec.Warmup = 2 * sim.Second
	spec.Measure = 1 * sim.Second
	var ctl *core.Controller
	res := scenario.Run(spec, baselines.AQL{Out: &ctl})
	_ = res

	// Fresh hypervisor-level check is done through a direct run: build
	// a phase-change program via two profiles. Simplest: re-run with a
	// domain whose spec flips — covered by the vtrs window test at unit
	// level; here we just assert the controller exposes changing infos.
	infos := ctl.Infos()
	if len(infos) == 0 {
		t.Fatal("no infos")
	}
	seen := map[vcputype.Type]int{}
	for _, i := range infos {
		seen[i.Type]++
	}
	if len(seen) < 2 {
		t.Errorf("type census %v: expected a mix of types in S1", seen)
	}
}

// Ensure the policy glue compiles against the real workload types.
var _ scenario.Policy = baselines.AQL{}
var _ scenario.Policy = baselines.XenDefault{}
var _ scenario.Policy = baselines.VTurbo{}
var _ scenario.Policy = baselines.VSlicer{}
var _ = workload.Suite
var _ = xen.DefaultSlice

// Package core implements AQL_Sched, the paper's contribution: an
// Adaptable Quantum Length scheduler (Section 3).
//
// The controller wires the three features together:
//
//  1. the online vCPU Type Recognition System (internal/vtrs) samples
//     every vCPU each monitoring period (30 ms) and types it after a
//     4-period window;
//  2. the offline calibration result (internal/calib, summarized as a
//     cluster.QuantumTable) maps each type to its best quantum —
//     IOInt/ConSpin 1 ms, LLCF 90 ms, LoLCF/LLCO agnostic;
//  3. the two-level clustering (internal/cluster) turns the typed vCPU
//     population into CPU pools per socket, each configured with its
//     cluster's quantum, while preserving fairness and separating
//     trashing from non-trashing vCPUs.
//
// Every vTRS window the controller rebuilds the cluster plan; if the
// assignment changed it is applied through the hypervisor's pool
// reconfiguration, which — thanks to the shared-runqueue trick the
// paper describes in Section 4.3 — costs nothing beyond the cache
// effects the cache model already charges.
package core

import (
	"aqlsched/internal/cluster"
	"aqlsched/internal/sim"
	"aqlsched/internal/vtrs"
	"aqlsched/internal/xen"
)

// Controller is the AQL_Sched control loop.
type Controller struct {
	H       *xen.Hypervisor
	Monitor *vtrs.Monitor
	Table   cluster.QuantumTable

	// ReclusterEvery is the decision cadence in monitoring periods
	// (defaults to the vTRS window, n = 4).
	ReclusterEvery int
	// GracePeriods delays the first decision so every vCPU accumulates
	// a full window of warm history under the default quantum before
	// the first clustering locks placements in (defaults to 2 windows).
	GracePeriods int

	// QuantumCustomization, when false, keeps the clustering step but
	// forces FixedQuantum on every pool — the Fig. 7 ablation that
	// isolates the benefit of quantum customization from the benefit of
	// clustering.
	QuantumCustomization bool
	// FixedQuantum is the pool quantum used when customization is off.
	FixedQuantum sim.Time

	// Reclusters counts applied reconfigurations (diagnostics).
	Reclusters uint64
	// LastPlan is the most recently applied cluster layout.
	LastPlan *cluster.Plan

	lastSig string
}

// New builds an AQL controller over h with the paper's calibrated
// quantum table and default cadence.
func New(h *xen.Hypervisor) *Controller {
	return &Controller{
		H:                    h,
		Monitor:              vtrs.NewMonitor(h),
		Table:                cluster.PaperTable(),
		ReclusterEvery:       vtrs.DefaultWindow,
		GracePeriods:         2 * vtrs.DefaultWindow,
		QuantumCustomization: true,
	}
}

// Start begins monitoring and deciding.
func (c *Controller) Start() {
	c.Monitor.OnPeriod = c.onPeriod
	c.Monitor.Start()
}

// Infos snapshots the recognized type and trashing cursor of every
// vCPU — the clustering input.
func (c *Controller) Infos() []cluster.VCPUInfo {
	var infos []cluster.VCPUInfo
	for _, d := range c.H.Domains {
		for _, v := range d.VCPUs {
			infos = append(infos, cluster.VCPUInfo{
				V:       v,
				Type:    c.Monitor.TypeOf(v),
				LLCOAvg: c.Monitor.TrashingCursor(v),
			})
		}
	}
	return infos
}

// onPeriod runs after each monitoring period; every ReclusterEvery
// periods it recomputes and (if changed) applies the cluster plan.
func (c *Controller) onPeriod(now sim.Time, period int) {
	if c.ReclusterEvery <= 0 || period%c.ReclusterEvery != 0 || period < c.GracePeriods {
		return
	}
	plan := cluster.Build(c.H, c.Infos(), c.Table)
	if !c.QuantumCustomization {
		q := c.FixedQuantum
		if q <= 0 {
			q = c.Table.Default
		}
		for _, cl := range plan.Clusters {
			cl.Quantum = q
		}
	}
	sig := plan.Signature()
	if sig == c.lastSig {
		return
	}
	if err := c.H.ApplyPlan(plan.ToPoolPlan(), now); err != nil {
		// A plan that fails validation is a programming error: the
		// clustering must always produce a full partition.
		panic("core: " + err.Error())
	}
	c.lastSig = sig
	c.LastPlan = plan
	c.Reclusters++
}

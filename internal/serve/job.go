package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"time"

	"aqlsched/internal/atomicio"
	"aqlsched/internal/sim"
	"aqlsched/internal/sweep"
)

// State is a job's lifecycle state. Transitions:
//
//	queued → running → done | failed | canceled
//	queued → canceled
//	running → queued            (daemon drain/crash: resumed next boot)
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is the persistent record of one submitted sweep job — everything
// needed to re-run it after a daemon restart. It embeds the sweep
// journal Manifest, so the job's spec identity, grid-shaping overrides
// and fingerprint follow exactly the same crash-safety rules as
// aqlsweep -resume.
type Job struct {
	ID       string  `json:"id"`
	Seq      int     `json:"seq"`
	User     string  `json:"user"`
	Priority int     `json:"priority"`
	Weight   float64 `json:"weight"`
	// DeadlineMS is an advisory completion deadline relative to
	// submission: it orders a user's own queued jobs (earliest absolute
	// deadline first) and sets DeadlineMissed on completion. It never
	// preempts running cells.
	DeadlineMS int64          `json:"deadline_ms,omitempty"`
	Manifest   sweep.Manifest `json:"manifest"`

	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// FailedRuns counts runs that FAILED inside a completed sweep (the
	// job still reaches "done"; artifacts mark the failures).
	FailedRuns     int   `json:"failed_runs,omitempty"`
	DeadlineMissed bool  `json:"deadline_missed,omitempty"`
	SubmittedUnix  int64 `json:"submitted_unix_ms"`
	StartedUnix    int64 `json:"started_unix_ms,omitempty"`
	FinishedUnix   int64 `json:"finished_unix_ms,omitempty"`
}

// deadlineAt is the absolute advisory deadline in unix ms, or 0.
func (j *Job) deadlineAt() int64 {
	if j.DeadlineMS <= 0 {
		return 0
	}
	return j.SubmittedUnix + j.DeadlineMS
}

// job is the Server's runtime view of a Job: the persistent record
// plus the stream/settlement state rebuilt from the journal. All
// fields below Job are guarded by Server.mu.
type job struct {
	Job
	dir string

	// total is the expanded run-matrix size (Manifest.Runs).
	total int
	// journaled[i] is true once run i has a journal checkpoint;
	// settled[i] once run i finished (checkpointed or FAILED).
	journaled []bool
	settled   []bool
	// frontier is the first unsettled run index: the stream may emit
	// every journaled index below it in ascending order without ever
	// emitting out of order.
	frontier int
	doneRuns int
	failed   int
	// updated is closed and replaced on every observable change — the
	// broadcast channel result streams and pollers wait on.
	updated chan struct{}
	// cancel aborts the running sweep; non-nil only while running.
	cancel func(error)
}

func (j *job) advanceFrontier() {
	for j.frontier < j.total && j.settled[j.frontier] {
		j.frontier++
	}
}

// markRun records one settled run (from the sweep's OnRun callback or
// journal recovery). Reports whether the run was newly journaled.
func (j *job) markRun(idx int, journaled bool) bool {
	if idx < 0 || idx >= j.total || j.settled[idx] {
		return false
	}
	j.settled[idx] = true
	if journaled {
		j.journaled[idx] = true
		j.doneRuns++
	} else {
		j.failed++
	}
	j.advanceFrontier()
	return journaled
}

// jobFile is the job record's on-disk location inside its directory.
const jobFile = "job.json"

// journalDirName is the per-job sweep journal directory.
const journalDirName = "journal"

func (j *job) journalDir() string { return filepath.Join(j.dir, journalDirName) }

// artifactPath is the finished artifact of the given extension
// (".json", ".csv", ".txt"); artifacts are named after the sweep, like
// aqlsweep -out.
func (j *job) artifactPath(ext string) string {
	return filepath.Join(j.dir, j.Manifest.Name+ext)
}

// persist writes the job record atomically. Callers hold Server.mu (or
// own the job exclusively).
func (j *job) persist() error {
	data, err := json.MarshalIndent(&j.Job, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(filepath.Join(j.dir, jobFile), append(data, '\n'), 0o644)
}

func (j *job) broadcast() {
	close(j.updated)
	j.updated = make(chan struct{})
}

var checkpointRE = regexp.MustCompile(`^run-(\d{5})\.json$`)

// scanJournal lists the checkpointed run indexes of a job's journal
// directory, ascending; a missing directory is an empty journal.
// Checkpoint writes are atomic, so presence means a complete record.
func scanJournal(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var idxs []int
	for _, e := range ents {
		m := checkpointRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		var idx int
		fmt.Sscanf(m[1], "%d", &idx)
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	return idxs, nil
}

// loadJob reads one job directory back into a runtime job, rebuilding
// the stream state from the journal. Unknown or corrupt directories
// return an error and are skipped by recovery (never wedge the boot).
func loadJob(dir string) (*job, error) {
	data, err := os.ReadFile(filepath.Join(dir, jobFile))
	if err != nil {
		return nil, err
	}
	var rec Job
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %v", filepath.Join(dir, jobFile), err)
	}
	if rec.ID == "" || rec.Manifest.Runs <= 0 {
		return nil, fmt.Errorf("%s: incomplete job record", filepath.Join(dir, jobFile))
	}
	j := newJob(rec, dir)
	idxs, err := scanJournal(j.journalDir())
	if err != nil {
		return nil, err
	}
	for _, idx := range idxs {
		j.markRun(idx, true)
	}
	// Settlement of FAILED runs is not persisted (they re-execute on
	// resume); for terminal jobs the stream treats everything as
	// settled anyway.
	return j, nil
}

func newJob(rec Job, dir string) *job {
	return &job{
		Job:       rec,
		dir:       dir,
		total:     rec.Manifest.Runs,
		journaled: make([]bool, rec.Manifest.Runs),
		settled:   make([]bool, rec.Manifest.Runs),
		updated:   make(chan struct{}),
	}
}

// SubmitRequest is the POST /v1/jobs body: the sweep spec (inline
// spec-file JSON, or a built-in name) plus queue attributes and the
// same grid-shaping overrides aqlsweep accepts as flags.
type SubmitRequest struct {
	// User attributes the job for fair-share accounting (required).
	User string `json:"user"`
	// Priority is the job's strict priority class (≥ 0, default 0).
	// Higher classes dispatch first, always — fair share applies only
	// within a class.
	Priority int `json:"priority,omitempty"`
	// Weight is the user's fair-share weight (> 0, default 1; the
	// latest submitted weight wins for the user).
	Weight float64 `json:"weight,omitempty"`
	// DeadlineMS is the advisory completion deadline in ms from
	// submission (see Job.DeadlineMS).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Spec is an inline sweep spec file — the exact schema aqlsweep
	// -spec parses. Exactly one of Spec and Builtin must be set.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Builtin names a built-in sweep instead.
	Builtin string `json:"builtin,omitempty"`
	// Seeds, BaseSeed and Quick mirror the aqlsweep flags.
	Seeds    int    `json:"seeds,omitempty"`
	BaseSeed uint64 `json:"base_seed,omitempty"`
	Quick    bool   `json:"quick,omitempty"`
}

// buildManifest validates the request's spec and turns it into the
// job's journal manifest — the single identity both execution and
// recovery rebuild the sweep from.
func (r *SubmitRequest) buildManifest() (sweep.Manifest, error) {
	var (
		spec    *sweep.Spec
		src     []byte
		builtin string
		err     error
	)
	switch {
	case len(r.Spec) > 0 && r.Builtin != "":
		return sweep.Manifest{}, fmt.Errorf("submit: set exactly one of spec and builtin, not both")
	case len(r.Spec) > 0:
		src = append([]byte(nil), r.Spec...)
		spec, err = sweep.Parse(src)
		if err != nil {
			return sweep.Manifest{}, err
		}
	case r.Builtin != "":
		s, ok := sweep.Builtin(r.Builtin)
		if !ok {
			return sweep.Manifest{}, fmt.Errorf("submit: unknown built-in sweep %q (built-ins: %v)", r.Builtin, sweep.BuiltinNames())
		}
		spec, builtin = s, r.Builtin
	default:
		return sweep.Manifest{}, fmt.Errorf("submit: a spec (inline spec-file JSON) or a builtin name is required")
	}
	if r.Seeds > 0 {
		spec.Seeds = r.Seeds
	}
	if r.BaseSeed != 0 {
		spec.BaseSeed = r.BaseSeed
	}
	if r.Quick {
		spec.Warmup = 1 * sim.Second
		spec.Measure = 2500 * sim.Millisecond
	}
	return sweep.NewManifest(spec, src, builtin), nil
}

func nowUnixMS() int64 { return time.Now().UnixMilli() }

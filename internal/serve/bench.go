package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// The repo tracks scheduler-core performance across PRs as committed
// BENCH_<tag>.json snapshots (one map of benchmark name → counters per
// PR). GET /v1/bench serves that trajectory as one schema'd document,
// so regressions are visible without checking out history.

// BenchCounters is one benchmark's measured counters in one snapshot.
type BenchCounters struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	VMSecPerS   float64 `json:"vmsec_per_s,omitempty"`
	GOMAXPROCS  int     `json:"gomaxprocs,omitempty"`
}

// BenchSnapshot is one committed BENCH_*.json file.
type BenchSnapshot struct {
	// Tag is the snapshot label from the filename (BENCH_<tag>.json).
	Tag string `json:"tag"`
	// File is the snapshot's filename.
	File string `json:"file"`
	// Results maps benchmark name → counters.
	Results map[string]BenchCounters `json:"results"`
}

// BenchDoc is the GET /v1/bench document: every snapshot plus the
// union of benchmark names, both in stable order.
type BenchDoc struct {
	// Snapshots are ordered by the integer suffix of their tag when one
	// exists (pr2 < pr6 < pr8 < pr10), then lexically — so the list
	// reads as the PR trajectory.
	Snapshots []BenchSnapshot `json:"snapshots"`
	// Benchmarks is the sorted union of benchmark names across
	// snapshots.
	Benchmarks []string `json:"benchmarks"`
}

var benchFileRE = regexp.MustCompile(`^BENCH_(.+)\.json$`)

// tagOrder extracts the trailing integer of a tag ("pr10" → 10) for
// numeric ordering; tags without one sort after, lexically.
func tagOrder(tag string) (int, bool) {
	i := len(tag)
	for i > 0 && tag[i-1] >= '0' && tag[i-1] <= '9' {
		i--
	}
	if i == len(tag) {
		return 0, false
	}
	n, err := strconv.Atoi(tag[i:])
	return n, err == nil
}

// LoadBench reads every BENCH_*.json snapshot in dir into one BenchDoc.
// A directory with no snapshots yields an empty (not nil) document; a
// malformed snapshot is an error — committed files must parse.
func LoadBench(dir string) (*BenchDoc, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	doc := &BenchDoc{Snapshots: []BenchSnapshot{}, Benchmarks: []string{}}
	for _, e := range ents {
		m := benchFileRE.FindStringSubmatch(e.Name())
		if m == nil || e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var results map[string]BenchCounters
		if err := json.Unmarshal(data, &results); err != nil {
			return nil, fmt.Errorf("%s: %v", e.Name(), err)
		}
		doc.Snapshots = append(doc.Snapshots, BenchSnapshot{Tag: m[1], File: e.Name(), Results: results})
	}
	sort.Slice(doc.Snapshots, func(i, j int) bool {
		a, b := doc.Snapshots[i].Tag, doc.Snapshots[j].Tag
		an, aok := tagOrder(a)
		bn, bok := tagOrder(b)
		switch {
		case aok && bok && an != bn:
			return an < bn
		case aok != bok:
			return aok // numbered tags first
		default:
			return a < b
		}
	})
	names := map[string]bool{}
	for _, s := range doc.Snapshots {
		for n := range s.Results {
			names[n] = true
		}
	}
	for n := range names {
		doc.Benchmarks = append(doc.Benchmarks, n)
	}
	sort.Strings(doc.Benchmarks)
	return doc, nil
}

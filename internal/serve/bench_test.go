package serve

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLoadBenchRepoSnapshots reads the repo's committed BENCH_*.json
// trajectory — the exact document GET /v1/bench serves in-tree.
func TestLoadBenchRepoSnapshots(t *testing.T) {
	doc, err := LoadBench("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Snapshots) < 3 {
		t.Fatalf("repo trajectory has %d snapshots, want >= 3 (pr2, pr6, pr8)", len(doc.Snapshots))
	}
	seen := map[string]bool{}
	for _, s := range doc.Snapshots {
		seen[s.Tag] = true
		if len(s.Results) == 0 {
			t.Fatalf("snapshot %s is empty", s.File)
		}
		for name, c := range s.Results {
			if c.NsPerOp <= 0 {
				t.Fatalf("%s: %s has ns_per_op = %v", s.File, name, c.NsPerOp)
			}
		}
	}
	for _, tag := range []string{"pr2", "pr6", "pr8"} {
		if !seen[tag] {
			t.Fatalf("trajectory is missing snapshot %s (have %v)", tag, seen)
		}
	}
	if len(doc.Benchmarks) == 0 {
		t.Fatal("no benchmark names collected")
	}
}

// TestLoadBenchNumericTagOrder: snapshots order by the tag's integer
// suffix (pr2 < pr10), not lexically.
func TestLoadBenchNumericTagOrder(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"BENCH_pr10.json": `{"BenchmarkX": {"ns_per_op": 2}}`,
		"BENCH_pr2.json":  `{"BenchmarkX": {"ns_per_op": 1}}`,
		"BENCH_base.json": `{"BenchmarkX": {"ns_per_op": 3}}`,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	doc, err := LoadBench(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tags []string
	for _, s := range doc.Snapshots {
		tags = append(tags, s.Tag)
	}
	want := []string{"pr2", "pr10", "base"}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("snapshot order %v, want %v", tags, want)
		}
	}
}

// TestLoadBenchRejectsMalformed: a committed snapshot that does not
// parse is an error, not a silent skip.
func TestLoadBenchRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBench(dir); err == nil {
		t.Fatal("LoadBench accepted a malformed snapshot")
	}
}

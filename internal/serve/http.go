package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"

	"aqlsched/internal/catalog"
	"aqlsched/internal/sweep"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs                 submit a sweep job (SubmitRequest body)
//	GET  /v1/jobs                 list jobs
//	GET  /v1/jobs/{id}            one job's status
//	POST /v1/jobs/{id}/cancel     cancel (queued: immediate; running: next cell)
//	GET  /v1/jobs/{id}/results    NDJSON cell-checkpoint stream (?after=<index>)
//	GET  /v1/jobs/{id}/artifact   finished artifact (?format=json|csv|txt)
//	GET  /v1/catalog              experiment-axis self-documentation
//	GET  /v1/bench                the repo's BENCH_*.json trajectory
//	GET  /v1/healthz              liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/jobs/{id}/artifact", s.handleArtifact)
	mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	mux.HandleFunc("GET /v1/bench", s.handleBench)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func errorCode(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	view, err := s.Submit(&req)
	if err != nil {
		writeError(w, errorCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, view)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	view, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleResults streams the job's journaled cell checkpoints as NDJSON,
// one checkpoint line per completed run, in strict run-index order.
// Each line is the journal checkpoint verbatim, so the stream's bytes
// are exactly the crash-safe on-disk record. ?after=<index> resumes a
// stream after the given run index — the cursor survives client
// reconnects and daemon restarts because the order is a pure function
// of the (deterministic) run matrix. The stream follows a live job
// until it reaches a terminal state, then ends.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	after := -1
	if q := r.URL.Query().Get("after"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, "after: %v", err)
			return
		}
		after = n
	}
	if _, err := s.Job(id); err != nil {
		writeError(w, errorCode(err), "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	for {
		st, journalDir, err := s.streamSnapshot(id, after)
		if err != nil {
			return // job evaporated (cannot happen today: jobs are never deleted)
		}
		for _, idx := range st.indexes {
			line, err := os.ReadFile(sweep.CheckpointPath(journalDir, idx))
			if err != nil {
				s.cfg.Logf("serve: stream %s run %d: %v", id, idx, err)
				return
			}
			if _, err := w.Write(line); err != nil {
				return
			}
			after = idx
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.terminal || st.draining {
			return
		}
		select {
		case <-st.updated:
		case <-r.Context().Done():
			return
		}
	}
}

// handleArtifact serves a finished job's emitted artifact — the same
// bytes aqlsweep -out writes for the same spec.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	ctype := map[string]string{"json": "application/json", "csv": "text/csv", "txt": "text/plain"}[format]
	if ctype == "" {
		writeError(w, http.StatusBadRequest, "format must be json, csv or txt")
		return
	}
	s.mu.Lock()
	j, ok := s.jobs[id]
	var state State
	var path string
	if ok {
		state = j.State
		path = j.artifactPath("." + format)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "%v", ErrNotFound)
		return
	}
	if state != StateDone {
		writeError(w, http.StatusConflict, "job %s is %s; artifacts exist only for done jobs", id, state)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reading artifact: %v", err)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(data)
}

// handleCatalog serves the experiment-axis self-documentation plus the
// built-in sweep names (added here — the catalog package cannot import
// sweep without a cycle).
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		catalog.Doc
		BuiltinSweeps []string `json:"builtin_sweeps"`
	}{catalog.Document(), sweep.BuiltinNames()})
}

func (s *Server) handleBench(w http.ResponseWriter, r *http.Request) {
	doc, err := LoadBench(s.cfg.BenchDir)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// Package serve is the sweep-serving layer behind cmd/aqlsweepd: a
// persistent, crash-safe job queue over the sweep engine. Jobs are
// submitted as spec files (the exact schema aqlsweep parses) plus
// queue attributes (user, priority, optional deadline); a bounded
// executor pool runs them through sweep.Exec with a per-job journal,
// so every completed cell is checkpointed atomically and a SIGKILL'd
// daemon resumes cell-by-cell on restart with byte-identical
// artifacts. Dispatch is deficit-weighted per-user fair share
// (internal/fairshare — the same discipline as the fleet's
// tenant-fairshare placement) under strict priority classes.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"aqlsched/internal/atomicio"
	"aqlsched/internal/fairshare"
	"aqlsched/internal/sweep"
)

// Config configures a Server.
type Config struct {
	// DataDir is the persistent root: DataDir/jobs/<id>/ holds each
	// job's record, journal and artifacts; DataDir/queue.json snapshots
	// the queue state.
	DataDir string
	// JobSlots bounds concurrently executing jobs (default 1).
	JobSlots int
	// SweepWorkers is the per-job sweep worker pool (0 = GOMAXPROCS).
	SweepWorkers int
	// FleetWorkers shards fleet runs inside each job (0 = spec hint).
	FleetWorkers int
	// RunTimeout bounds each run's wall clock (0 = none).
	RunTimeout time.Duration
	// BenchDir holds the BENCH_*.json trajectory served at /v1/bench
	// (default "." — the repo root when run in-tree).
	BenchDir string
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

// Server is the job store, queue and executor pool. One Server owns
// one DataDir; HTTP handlers (http.go) are a thin layer over its
// methods.
type Server struct {
	cfg Config

	mu      sync.Mutex
	jobs    map[string]*job
	order   []*job // ascending Seq
	nextSeq int
	// served counts journaled cells per user — the fair-share deficit
	// numerator. Recomputed from journal directories on boot, so it is
	// crash-safe without ever being authoritative on disk.
	served map[string]int
	// weights holds each user's fair-share weight (latest submitted
	// value wins).
	weights  map[string]float64
	running  int
	draining bool
	wg       sync.WaitGroup
}

// errDrain and errCanceled distinguish why a running sweep's context
// was canceled: drain re-queues the job for the next boot, cancel is
// terminal.
var (
	errDrain    = errors.New("serve: draining")
	errCanceled = errors.New("serve: canceled by user")
)

// New opens (or initializes) a Server over cfg.DataDir and recovers
// the persisted queue: every job directory is reloaded, jobs that were
// running when the previous process died are re-enqueued (their
// journals preserve completed cells), fair-share counters are
// recomputed from the journals, and dispatch resumes immediately.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("serve: Config.DataDir is required")
	}
	if cfg.JobSlots <= 0 {
		cfg.JobSlots = 1
	}
	if cfg.BenchDir == "" {
		cfg.BenchDir = "."
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:     cfg,
		jobs:    map[string]*job{},
		served:  map[string]int{},
		weights: map[string]float64{},
		nextSeq: 1,
	}
	if err := os.MkdirAll(s.jobsRoot(), 0o755); err != nil {
		return nil, err
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.maybeDispatchLocked()
	s.mu.Unlock()
	return s, nil
}

func (s *Server) jobsRoot() string { return filepath.Join(s.cfg.DataDir, "jobs") }

// queueState is the queue.json snapshot: observability plus the
// submission counter. Job records and journals are the ground truth;
// the snapshot only needs to keep next_seq monotonic across restarts
// (job IDs must never be reused, even after a job directory is gone).
type queueState struct {
	NextSeq int                `json:"next_seq"`
	Served  map[string]int     `json:"served_cells"`
	Weights map[string]float64 `json:"weights"`
}

func (s *Server) writeQueueStateLocked() {
	st := queueState{NextSeq: s.nextSeq, Served: s.served, Weights: s.weights}
	data, err := json.MarshalIndent(st, "", "  ")
	if err == nil {
		err = atomicio.WriteFile(filepath.Join(s.cfg.DataDir, "queue.json"), append(data, '\n'), 0o644)
	}
	if err != nil {
		s.cfg.Logf("serve: queue state: %v", err)
	}
}

// recover reloads every persisted job. Corrupt directories are logged
// and skipped — recovery must never wedge the boot.
func (s *Server) recover() error {
	ents, err := os.ReadDir(s.jobsRoot())
	if err != nil {
		return err
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(s.jobsRoot(), e.Name())
		j, err := loadJob(dir)
		if err != nil {
			s.cfg.Logf("serve: skipping %s: %v", dir, err)
			continue
		}
		if j.State == StateRunning {
			// The previous process died mid-sweep. The journal holds every
			// completed cell; re-enqueue and the next dispatch resumes it.
			j.State = StateQueued
			if err := j.persist(); err != nil {
				s.cfg.Logf("serve: re-enqueue %s: %v", j.ID, err)
			}
			s.cfg.Logf("serve: recovered in-flight job %s (%d/%d cells journaled)", j.ID, j.doneRuns, j.total)
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j)
	}
	sort.Slice(s.order, func(i, k int) bool { return s.order[i].Seq < s.order[k].Seq })
	for _, j := range s.order {
		s.served[j.User] += j.doneRuns
		s.weights[j.User] = j.Weight // ascending seq: latest submission wins
		if j.Seq >= s.nextSeq {
			s.nextSeq = j.Seq + 1
		}
	}
	// queue.json keeps next_seq monotonic even when job dirs were
	// removed; prefer whichever is larger.
	if data, err := os.ReadFile(filepath.Join(s.cfg.DataDir, "queue.json")); err == nil {
		var st queueState
		if json.Unmarshal(data, &st) == nil && st.NextSeq > s.nextSeq {
			s.nextSeq = st.NextSeq
		}
	}
	return nil
}

// Submit validates a request, persists the job and dispatches if a
// slot is free. It returns the new job's view.
func (s *Server) Submit(req *SubmitRequest) (JobView, error) {
	if req.User == "" {
		return JobView{}, fmt.Errorf("submit: user is required")
	}
	if req.Priority < 0 {
		return JobView{}, fmt.Errorf("submit: priority must be >= 0")
	}
	weight := req.Weight
	if weight == 0 {
		weight = 1
	}
	if weight < 0 {
		return JobView{}, fmt.Errorf("submit: weight must be > 0")
	}
	m, err := req.buildManifest()
	if err != nil {
		return JobView{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobView{}, ErrDraining
	}
	seq := s.nextSeq
	s.nextSeq++
	rec := Job{
		ID:            fmt.Sprintf("job-%06d", seq),
		Seq:           seq,
		User:          req.User,
		Priority:      req.Priority,
		Weight:        weight,
		DeadlineMS:    req.DeadlineMS,
		Manifest:      m,
		State:         StateQueued,
		SubmittedUnix: nowUnixMS(),
	}
	j := newJob(rec, filepath.Join(s.jobsRoot(), rec.ID))
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return JobView{}, err
	}
	if err := j.persist(); err != nil {
		return JobView{}, err
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	s.weights[j.User] = weight
	s.writeQueueStateLocked()
	s.maybeDispatchLocked()
	return j.viewLocked(), nil
}

// ErrDraining rejects submissions while the server shuts down.
var ErrDraining = errors.New("serve: server is draining")

// ErrNotFound reports an unknown job ID.
var ErrNotFound = errors.New("serve: no such job")

// pickLocked chooses the next queued job, or nil: strict priority
// classes first, deficit-weighted fair share across users inside the
// top class, then the winning user's earliest-deadline job (jobs
// without a deadline after all jobs with one), then lowest Seq.
func (s *Server) pickLocked() *job {
	best := -1
	for _, j := range s.order {
		if j.State == StateQueued && j.Priority > best {
			best = j.Priority
		}
	}
	if best < 0 {
		return nil
	}
	// Users with queued work in the top class, deterministically keyed
	// by sorted name.
	byUser := map[string][]*job{}
	for _, j := range s.order { // ascending seq
		if j.State == StateQueued && j.Priority == best {
			byUser[j.User] = append(byUser[j.User], j)
		}
	}
	users := make([]string, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Strings(users)
	entries := make([]fairshare.Entry, len(users))
	for i, u := range users {
		w := s.weights[u]
		if w <= 0 {
			w = 1
		}
		entries[i] = fairshare.Entry{Key: i, Served: float64(s.served[u]), Weight: w}
	}
	winner := byUser[users[fairshare.Pick(entries)]]
	pick := winner[0]
	for _, j := range winner[1:] {
		jd, pd := j.deadlineAt(), pick.deadlineAt()
		switch {
		case jd != 0 && (pd == 0 || jd < pd):
			pick = j
		case jd == pd && j.Seq < pick.Seq:
			pick = j
		}
	}
	return pick
}

// maybeDispatchLocked starts queued jobs while slots are free. Called
// on every transition that can unblock the queue.
func (s *Server) maybeDispatchLocked() {
	for !s.draining && s.running < s.cfg.JobSlots {
		j := s.pickLocked()
		if j == nil {
			return
		}
		s.startLocked(j)
	}
}

func (s *Server) startLocked(j *job) {
	ctx, cancel := context.WithCancelCause(context.Background())
	j.State = StateRunning
	j.Error = ""
	j.StartedUnix = nowUnixMS()
	j.cancel = cancel
	if err := j.persist(); err != nil {
		s.cfg.Logf("serve: persist %s: %v", j.ID, err)
	}
	j.broadcast()
	s.running++
	s.wg.Add(1)
	s.cfg.Logf("serve: dispatch %s (user=%s prio=%d, %d/%d cells journaled)",
		j.ID, j.User, j.Priority, j.doneRuns, j.total)
	go s.runJob(j, ctx)
}

// runJob executes one job's sweep to completion (or cancellation). It
// owns the job's State transitions out of StateRunning.
func (s *Server) runJob(j *job, ctx context.Context) {
	defer s.wg.Done()
	res, err := s.execSweep(j, ctx)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	j.cancel = nil
	switch cause := context.Cause(ctx); {
	case err != nil && errors.Is(cause, errDrain):
		// Drain: in-flight cells finished and were journaled; hand the
		// job back to the queue so the next boot resumes it.
		j.State = StateQueued
		j.StartedUnix = 0
		j.resetFailed()
		s.cfg.Logf("serve: drained %s (%d/%d cells journaled)", j.ID, j.doneRuns, j.total)
	case err != nil && errors.Is(cause, errCanceled):
		j.State = StateCanceled
		j.Error = "canceled by user"
		j.FinishedUnix = nowUnixMS()
	case err != nil:
		j.State = StateFailed
		j.Error = err.Error()
		j.FinishedUnix = nowUnixMS()
	default:
		j.State = StateDone
		j.FailedRuns = res.Failed()
		j.FinishedUnix = nowUnixMS()
		if at := j.deadlineAt(); at > 0 && j.FinishedUnix > at {
			j.DeadlineMissed = true
		}
		s.cfg.Logf("serve: finished %s (%d cells, %d failed runs)", j.ID, len(res.Cells), res.Failed())
	}
	if err := j.persist(); err != nil {
		s.cfg.Logf("serve: persist %s: %v", j.ID, err)
	}
	j.broadcast()
	s.writeQueueStateLocked()
	s.maybeDispatchLocked()
}

// execSweep rebuilds the job's spec from its manifest, opens (or
// creates) the per-job journal, and runs the sweep with a per-cell
// callback feeding the result stream and fair-share accounting. On
// success the artifacts are written into the job directory through the
// exact emit path aqlsweep -out uses — which is why service and batch
// artifacts are byte-identical.
func (s *Server) execSweep(j *job, ctx context.Context) (*sweep.Result, error) {
	spec, err := j.Manifest.Rebuild()
	if err != nil {
		return nil, err
	}
	jl, err := s.openJournal(j)
	if err != nil {
		return nil, err
	}
	res, err := sweep.Exec(spec, sweep.Options{
		Workers:      s.cfg.SweepWorkers,
		FleetWorkers: s.cfg.FleetWorkers,
		RunTimeout:   s.cfg.RunTimeout,
		Journal:      jl,
		Context:      ctx,
		OnRun: func(rr *sweep.RunResult) {
			s.mu.Lock()
			if j.markRun(rr.Index, rr.Err == nil) {
				s.served[j.User]++
			}
			j.broadcast()
			s.mu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}
	if _, err := res.WriteArtifacts(j.dir); err != nil {
		return nil, fmt.Errorf("writing artifacts: %v", err)
	}
	return res, nil
}

// openJournal opens the job's journal if it exists (a resumed job) or
// creates it, and folds any checkpoints recovered on open into the
// job's stream state.
func (s *Server) openJournal(j *job) (*sweep.Journal, error) {
	if _, err := os.Stat(filepath.Join(j.journalDir(), "manifest.json")); err == nil {
		jl, m, err := sweep.OpenJournal(j.journalDir())
		if err != nil {
			return nil, err
		}
		if m.Fingerprint != j.Manifest.Fingerprint {
			return nil, fmt.Errorf("journal fingerprint mismatch for %s", j.ID)
		}
		s.mu.Lock()
		for _, idx := range jl.RestoredIndexes() {
			if j.markRun(idx, true) {
				// Boot-time recovery already counted these; only checkpoints
				// that appeared since (impossible today) would land here.
				s.served[j.User]++
			}
		}
		s.mu.Unlock()
		return jl, nil
	}
	return sweep.CreateJournal(j.journalDir(), j.Manifest)
}

// resetFailed clears non-journaled settlement marks so a re-queued
// job's resume re-executes (and re-streams) its failed runs. Caller
// holds s.mu.
func (j *job) resetFailed() {
	for i := range j.settled {
		if j.settled[i] && !j.journaled[i] {
			j.settled[i] = false
		}
	}
	j.failed = 0
	j.frontier = 0
	j.advanceFrontier()
}

// Cancel cancels a job: a queued job becomes canceled immediately, a
// running job stops at the next cell boundary (in-flight cells finish
// and stay journaled). Terminal jobs are left alone.
func (s *Server) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	switch j.State {
	case StateQueued:
		j.State = StateCanceled
		j.Error = "canceled by user"
		j.FinishedUnix = nowUnixMS()
		if err := j.persist(); err != nil {
			s.cfg.Logf("serve: persist %s: %v", j.ID, err)
		}
		j.broadcast()
		s.maybeDispatchLocked()
	case StateRunning:
		j.cancel(errCanceled) // runJob finishes the transition
	}
	return j.viewLocked(), nil
}

// Drain stops dispatching, cancels running sweeps at their next cell
// boundary (completed cells stay journaled; the jobs re-queue for the
// next boot) and waits for the pool to empty — the SIGTERM path.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	for _, j := range s.order {
		if j.cancel != nil {
			j.cancel(errDrain)
		}
		j.broadcast() // wake result streams so they can terminate
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	s.writeQueueStateLocked()
	s.mu.Unlock()
}

// JobView is the external snapshot of a job: the persistent record
// plus live progress.
type JobView struct {
	Job
	TotalRuns   int `json:"total_runs"`
	DoneRuns    int `json:"done_runs"`
	FailedSoFar int `json:"failed_so_far,omitempty"`
}

func (j *job) viewLocked() JobView {
	return JobView{Job: j.Job, TotalRuns: j.total, DoneRuns: j.doneRuns, FailedSoFar: j.failed}
}

// Job returns one job's view.
func (s *Server) Job(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return j.viewLocked(), nil
}

// Jobs lists every job, ascending by Seq.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, j := range s.order {
		out = append(out, j.viewLocked())
	}
	return out
}

// streamState snapshots what a result stream may emit right now:
// journaled indexes in (after, limit] ascending, whether the job is
// terminal, and the channel that signals the next change. The frontier
// rule — only emit index i once every run below i has settled — keeps
// the stream strictly index-ordered, so the ?after= cursor is stable
// across daemon restarts.
type streamState struct {
	indexes  []int
	terminal bool
	draining bool
	updated  <-chan struct{}
}

func (s *Server) streamSnapshot(id string, after int) (streamState, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return streamState{}, "", ErrNotFound
	}
	limit := j.frontier
	if j.State.Terminal() {
		limit = j.total
	}
	st := streamState{terminal: j.State.Terminal(), draining: s.draining, updated: j.updated}
	for idx := after + 1; idx < limit; idx++ {
		if j.journaled[idx] {
			st.indexes = append(st.indexes, idx)
		}
	}
	return st, j.journalDir(), nil
}

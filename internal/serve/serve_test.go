package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aqlsched/internal/sweep"
)

// testSpecJSON is a small fleet sweep (2 placements x 2 seeds = 4
// runs) — fast enough for tests, big enough to observe partial
// progress with one worker.
const testSpecJSON = `{
	"name": "serve-quick",
	"scenarios": [
		{"fleet": {
			"name": "dc",
			"hosts": 4,
			"oversub": 2,
			"placement": ["least-loaded", "bin-pack"],
			"tenants": {"alpha": 2, "beta": 1},
			"vcpus": 48,
			"mix": {"IOInt": 0.3, "ConSpin": 0.3, "LLCF": 0.4},
			"churn": {"rate_per_sec": 25, "mean_life_ms": 120, "min_life_ms": 40, "horizon_ms": 260},
			"rebalance": {"every_ms": 40, "threshold": 0.08, "migration_ms": 15, "max_per_tick": 4}
		}}
	],
	"policies": ["xen"],
	"seeds": 2,
	"warmup_ms": 80,
	"measure_ms": 220
}`

// --- pure dispatch-order tests (no sweeps execute) --------------------------

// bareServer builds a Server for dispatch-order tests without touching
// disk or starting sweeps.
func bareServer() *Server {
	return &Server{
		cfg:     Config{JobSlots: 1, Logf: func(string, ...any) {}},
		jobs:    map[string]*job{},
		served:  map[string]int{},
		weights: map[string]float64{},
		nextSeq: 1,
	}
}

// enqueue adds a fake queued job of the given shape and returns it.
func enqueue(s *Server, user string, prio int, weight float64, deadlineMS int64, runs int) *job {
	seq := s.nextSeq
	s.nextSeq++
	j := newJob(Job{
		ID: fmt.Sprintf("job-%06d", seq), Seq: seq, User: user,
		Priority: prio, Weight: weight, DeadlineMS: deadlineMS,
		Manifest: sweep.Manifest{Runs: runs}, State: StateQueued,
		SubmittedUnix: int64(1000 * seq), // deterministic submit clock
	}, "")
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	s.weights[user] = weight
	return j
}

// drainQueue repeatedly picks and "completes" jobs, crediting each
// job's full cell count to its user, and returns the user sequence.
func drainQueue(s *Server) []string {
	var got []string
	for {
		j := s.pickLocked()
		if j == nil {
			return got
		}
		j.State = StateDone
		s.served[j.User] += j.total
		got = append(got, j.User)
	}
}

// TestDispatchFairShareUnequalJobCounts is the acceptance-criteria
// queue test: two users, equal priority and weight, unequal job counts
// — dispatch alternates so completed-cell shares track the (equal)
// weights while both have work, instead of FIFO-starving the lighter
// submitter behind the heavy one.
func TestDispatchFairShareUnequalJobCounts(t *testing.T) {
	s := bareServer()
	for i := 0; i < 6; i++ {
		enqueue(s, "ada", 0, 1, 0, 4)
	}
	for i := 0; i < 3; i++ {
		enqueue(s, "bob", 0, 1, 0, 4)
	}
	got := drainQueue(s)
	want := []string{"ada", "bob", "ada", "bob", "ada", "bob", "ada", "ada", "ada"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("dispatch order %v, want %v", got, want)
	}
}

// TestDispatchSharesConvergeToWeights: with weights 3:1 and identical
// single-cell jobs, completed-cell shares converge to 3:1.
func TestDispatchSharesConvergeToWeights(t *testing.T) {
	s := bareServer()
	for i := 0; i < 40; i++ {
		enqueue(s, "ada", 0, 3, 0, 1)
		enqueue(s, "bob", 0, 1, 0, 1)
	}
	got := drainQueue(s)
	ada := 0
	for _, u := range got[:40] { // while both still have queued work
		if u == "ada" {
			ada++
		}
	}
	if ada < 28 || ada > 32 {
		t.Fatalf("ada served %d of the first 40 dispatches, want ~30 (weight 3:1)", ada)
	}
}

// TestDispatchPriorityPreemptsQueueOrder: a later, higher-priority job
// dispatches before every earlier queued job, regardless of deficits —
// and a job already running is not disturbed (dispatch only ever
// consumes free slots).
func TestDispatchPriorityPreemptsQueueOrder(t *testing.T) {
	s := bareServer()
	enqueue(s, "ada", 0, 1, 0, 4)
	enqueue(s, "ada", 0, 1, 0, 4)
	running := enqueue(s, "carol", 0, 1, 0, 4)
	running.State = StateRunning // simulate an in-flight job
	s.running = 1
	hi := enqueue(s, "bob", 5, 1, 0, 4)

	if j := s.pickLocked(); j != hi {
		t.Fatalf("picked %s (user %s prio %d), want the high-priority job %s", j.ID, j.User, j.Priority, hi.ID)
	}
	// A full slot means no dispatch at all: priority preempts the
	// queue order, never running cells.
	s.maybeDispatchLocked()
	if running.State != StateRunning || hi.State != StateQueued {
		t.Fatalf("dispatch disturbed a running job (running=%s hi=%s)", running.State, hi.State)
	}
}

// TestDispatchDeadlineOrdersWithinUser: among one user's queued jobs in
// the same class, the earliest absolute deadline wins; jobs without a
// deadline go last; ties fall back to submission order.
func TestDispatchDeadlineOrdersWithinUser(t *testing.T) {
	s := bareServer()
	noDeadline := enqueue(s, "ada", 0, 1, 0, 4)
	late := enqueue(s, "ada", 0, 1, 500_000, 4)
	soon := enqueue(s, "ada", 0, 1, 1_000, 4) // latest submit, earliest absolute deadline

	if j := s.pickLocked(); j != soon {
		t.Fatalf("picked %s, want earliest-deadline job %s", j.ID, soon.ID)
	}
	soon.State = StateDone
	if j := s.pickLocked(); j != late {
		t.Fatalf("picked %s, want remaining deadline job %s", j.ID, late.ID)
	}
	late.State = StateDone
	if j := s.pickLocked(); j != noDeadline {
		t.Fatalf("picked %s, want the no-deadline job %s", j.ID, noDeadline.ID)
	}
}

// --- integration tests (real sweeps over a temp data dir) -------------------

// newTestServer boots a Server over dir with one job slot and a single
// sweep worker (so partial progress is observable).
func newTestServer(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := New(Config{DataDir: dir, JobSlots: 1, SweepWorkers: 1, BenchDir: "../.."})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func waitFor(t *testing.T, desc string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// referenceArtifacts runs the test spec through the plain batch path
// (sweep.Exec + WriteArtifacts) — the bytes every service path must
// reproduce exactly.
func referenceArtifacts(t *testing.T) map[string][]byte {
	t.Helper()
	spec, err := sweep.Parse([]byte(testSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.Exec(spec, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths, err := res.WriteArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Ext(p)] = data
	}
	return out
}

func compareArtifacts(t *testing.T, jobDir, name string, want map[string][]byte, label string) {
	t.Helper()
	for _, ext := range []string{".json", ".csv", ".txt"} {
		got, err := os.ReadFile(filepath.Join(jobDir, name+ext))
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !bytes.Equal(got, want[ext]) {
			t.Fatalf("%s: %s artifact differs from batch aqlsweep output", label, ext)
		}
	}
}

// TestServeBatchByteIdentity: a job submitted through the queue
// produces artifacts byte-identical to batch execution of the same
// spec.
func TestServeBatchByteIdentity(t *testing.T) {
	want := referenceArtifacts(t)
	s := newTestServer(t, t.TempDir())
	view, err := s.Submit(&SubmitRequest{User: "ada", Spec: json.RawMessage(testSpecJSON)})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to finish", func() bool {
		v, err := s.Job(view.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == StateFailed {
			t.Fatalf("job failed: %s", v.Error)
		}
		return v.State == StateDone
	})
	s.Drain()
	compareArtifacts(t, filepath.Join(s.jobsRoot(), view.ID), "serve-quick", want, "served job")
}

// TestCrashRecoveryByteIdentity is the crash contract in-process: a
// job is interrupted mid-sweep (drain — the same cell-boundary stop a
// SIGKILL approximates, minus the in-flight cell the journal already
// made atomic), a second Server boots over the same data dir,
// auto-resumes the job cell-by-cell, and the final artifacts are
// byte-identical to an uninterrupted batch run. The real-SIGKILL
// variant runs in CI against the aqlsweepd binary.
func TestCrashRecoveryByteIdentity(t *testing.T) {
	want := referenceArtifacts(t)
	dir := t.TempDir()
	s1 := newTestServer(t, dir)
	view, err := s1.Submit(&SubmitRequest{User: "ada", Spec: json.RawMessage(testSpecJSON)})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "partial progress", func() bool {
		v, err := s1.Job(view.ID)
		if err != nil {
			t.Fatal(err)
		}
		return v.DoneRuns >= 1
	})
	s1.Drain() // interrupt at the next cell boundary

	v, err := s1.Job(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateQueued {
		t.Fatalf("drained job is %s, want re-queued", v.State)
	}
	if v.DoneRuns == 0 || v.DoneRuns >= v.TotalRuns {
		t.Fatalf("drained job journaled %d/%d cells, want partial progress", v.DoneRuns, v.TotalRuns)
	}

	s2 := newTestServer(t, dir) // restart: recovery re-enqueues and resumes
	waitFor(t, "recovered job to finish", func() bool {
		v, err := s2.Job(view.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == StateFailed {
			t.Fatalf("recovered job failed: %s", v.Error)
		}
		return v.State == StateDone
	})
	got, err := s2.Job(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.DoneRuns != got.TotalRuns {
		t.Fatalf("recovered job completed %d/%d runs", got.DoneRuns, got.TotalRuns)
	}
	s2.Drain()
	compareArtifacts(t, filepath.Join(s2.jobsRoot(), view.ID), "serve-quick", want, "recovered job")
}

// --- HTTP API end to end ----------------------------------------------------

func submitJSON(t *testing.T, ts *httptest.Server, body string) JobView {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, e["error"])
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

// TestHTTPEndToEnd drives the whole API surface: submit over HTTP,
// follow the live NDJSON stream to completion, resume it with a
// cursor, fetch the artifact and check it against batch bytes, and
// exercise catalog/bench/healthz.
func TestHTTPEndToEnd(t *testing.T) {
	want := referenceArtifacts(t)
	s := newTestServer(t, t.TempDir())
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	view := submitJSON(t, ts, fmt.Sprintf(`{"user":"ada","spec":%s}`, testSpecJSON))
	if view.ID == "" || view.TotalRuns != 4 {
		t.Fatalf("submit returned %+v, want an ID and 4 total runs", view)
	}

	// Follow the live stream: it must deliver one checkpoint line per
	// run, in strictly ascending index order, then end with the job.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results Content-Type = %q", ct)
	}
	var lines []string
	lastIdx := -1
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var rec struct {
			Index int `json:"index"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stream line is not JSON: %v", err)
		}
		if rec.Index <= lastIdx {
			t.Fatalf("stream emitted index %d after %d", rec.Index, lastIdx)
		}
		lastIdx = rec.Index
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 {
		t.Fatalf("stream delivered %d lines, want 4", len(lines))
	}

	// The job must be terminal once the stream ends.
	var got JobView
	jr, err := http.Get(ts.URL + "/v1/jobs/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(jr.Body).Decode(&got)
	jr.Body.Close()
	if got.State != StateDone || got.DoneRuns != 4 {
		t.Fatalf("after stream end job is %s with %d/%d runs", got.State, got.DoneRuns, got.TotalRuns)
	}

	// Cursor resume: ?after=<first index> replays exactly the suffix.
	var first struct {
		Index int `json:"index"`
	}
	json.Unmarshal([]byte(lines[0]), &first)
	rr, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/results?after=%d", ts.URL, view.ID, first.Index))
	if err != nil {
		t.Fatal(err)
	}
	var resumed []string
	rsc := bufio.NewScanner(rr.Body)
	rsc.Buffer(make([]byte, 1<<20), 1<<20)
	for rsc.Scan() {
		resumed = append(resumed, rsc.Text())
	}
	rr.Body.Close()
	if strings.Join(resumed, "\n") != strings.Join(lines[1:], "\n") {
		t.Fatal("cursor resume did not replay the exact suffix of the stream")
	}

	// Artifact bytes == batch bytes.
	ar, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/artifact?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(ar.Body)
	ar.Body.Close()
	if !bytes.Equal(buf.Bytes(), want[".json"]) {
		t.Fatal("served artifact differs from batch aqlsweep output")
	}

	// Discovery endpoints answer with sane documents.
	cr, err := http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	var cat struct {
		Scenarios     []string `json:"scenarios"`
		Policies      []any    `json:"policies"`
		BuiltinSweeps []string `json:"builtin_sweeps"`
	}
	json.NewDecoder(cr.Body).Decode(&cat)
	cr.Body.Close()
	if len(cat.Scenarios) == 0 || len(cat.Policies) == 0 || len(cat.BuiltinSweeps) == 0 {
		t.Fatalf("catalog document is missing axes: %+v", cat)
	}

	hr, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %d", hr.StatusCode)
	}
}

// TestHTTPSubmitValidation: malformed submissions fail with 400 and a
// JSON error body.
func TestHTTPSubmitValidation(t *testing.T) {
	s := newTestServer(t, t.TempDir())
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"spec":` + testSpecJSON + `}`,                  // no user
		`{"user":"ada"}`,                                 // no spec
		`{"user":"ada","builtin":"nope"}`,                // unknown builtin
		`{"user":"ada","builtin":"genmix","spec":{}}`,    // both
		`{"user":"ada","builtin":"genmix","bogus":true}`, // unknown field
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || e["error"] == "" {
			t.Fatalf("submit %s: status %d, error %q; want 400 with an error", body, resp.StatusCode, e["error"])
		}
	}

	if r, _ := http.Get(ts.URL + "/v1/jobs/job-999999"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job returned %d, want 404", r.StatusCode)
	}
}

// TestCancelQueuedJob: canceling a queued job is immediate and
// terminal, and frees nothing that was not running.
func TestCancelQueuedJob(t *testing.T) {
	s := newTestServer(t, t.TempDir())
	defer s.Drain()
	// Fill the single slot, then queue a second job and cancel it.
	first, err := s.Submit(&SubmitRequest{User: "ada", Spec: json.RawMessage(testSpecJSON)})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Submit(&SubmitRequest{User: "bob", Spec: json.RawMessage(testSpecJSON)})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Cancel(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateCanceled {
		t.Fatalf("canceled queued job is %s", v.State)
	}
	waitFor(t, "first job to finish", func() bool {
		v, err := s.Job(first.ID)
		if err != nil {
			t.Fatal(err)
		}
		return v.State.Terminal()
	})
	if v, _ := s.Job(first.ID); v.State != StateDone {
		t.Fatalf("first job ended %s, want done", v.State)
	}
}

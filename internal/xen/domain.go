package xen

import (
	"fmt"

	"aqlsched/internal/guest"
	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
)

// DomainID identifies a domain (VM).
type DomainID int

// VCPUState is the hypervisor-side scheduling state of a vCPU.
type VCPUState int

const (
	// Blocked: the guest has nothing runnable on this vCPU.
	Blocked VCPUState = iota
	// Runnable: waiting in a run queue.
	Runnable
	// Running: currently on a pCPU.
	Running
)

func (s VCPUState) String() string {
	switch s {
	case Blocked:
		return "blocked"
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	}
	return "?"
}

// VCPU is one virtual CPU as the hypervisor sees it.
type VCPU struct {
	Domain *Domain
	// Index is the vCPU's index within its domain.
	Index int
	// Global is a hypervisor-wide unique ID (stable ordering key).
	Global int

	// Counters is the free-running PMU/event block the vTRS monitors
	// sample (Section 3.3.2).
	Counters hw.Counters

	// SliceOverride, when positive, bounds this vCPU's slice below the
	// pool quantum (used by the vSlicer baseline).
	SliceOverride sim.Time

	// SD is scheduler-private data.
	SD any

	state    VCPUState
	pool     *CPUPool
	pcpu     hw.PCPUID // valid while Running
	lastPCPU hw.PCPUID // last pCPU it ran on (runqueue affinity)

	// endBurst is the vCPU's pre-bound burst-completion timer: one
	// callback bound at creation, re-armed per burst, so the dispatch
	// hot path schedules without allocating.
	endBurst *sim.Timer

	dispatchedAt  sim.Time
	sliceEnd      sim.Time
	runnableSince sim.Time
	burst         *burst
	everRan       bool
	destroyed     bool

	// RunTime accumulates total time spent Running (fairness checks).
	RunTime sim.Time
}

// State reports the vCPU's scheduling state.
func (v *VCPU) State() VCPUState { return v.state }

// Destroyed reports whether the vCPU's domain has been torn down.
func (v *VCPU) Destroyed() bool { return v.destroyed }

// Pool reports the CPU pool the vCPU belongs to.
func (v *VCPU) Pool() *CPUPool { return v.pool }

// PCPU reports where the vCPU is running (only meaningful when Running).
func (v *VCPU) PCPU() hw.PCPUID { return v.pcpu }

// LastPCPU reports where the vCPU last ran.
func (v *VCPU) LastPCPU() hw.PCPUID { return v.lastPCPU }

// RanFor reports how long the vCPU has been running in its current
// dispatch (zero when not running).
func (v *VCPU) RanFor(now sim.Time) sim.Time {
	if v.state != Running {
		return 0
	}
	return now - v.dispatchedAt
}

// String labels the vCPU for diagnostics.
func (v *VCPU) String() string {
	return fmt.Sprintf("%s.v%d", v.Domain.Name, v.Index)
}

// Domain is a VM: guest OS plus hypervisor-side accounting.
type Domain struct {
	ID   DomainID
	Name string
	// Weight is the Credit scheduler's proportional-share weight.
	Weight int
	// Cap limits the domain's CPU consumption in percent of one pCPU
	// (0 = uncapped), as in Xen's credit scheduler.
	Cap int

	OS    *guest.OS
	VCPUs []*VCPU

	hyp  *Hypervisor
	dead bool
}

// Dead reports whether the domain has been destroyed.
func (d *Domain) Dead() bool { return d.dead }

// WakeVCPU implements guest.Waker: a thread became runnable on cpu.
func (d *Domain) WakeVCPU(cpu int, now sim.Time) {
	d.hyp.wake(d.VCPUs[cpu], now)
}

// KickVCPU implements guest.Waker: the vCPU's current burst is stale
// (IRQ arrived, or a spinning thread was granted its lock).
func (d *Domain) KickVCPU(cpu int, now sim.Time) {
	d.hyp.kick(d.VCPUs[cpu], now)
}

// CountLockOp implements guest.Waker: the ConSpin monitor's hypercall
// wrapper records one spin-lock acquisition for the cpu-th vCPU.
func (d *Domain) CountLockOp(cpu int) {
	d.VCPUs[cpu].Counters.LockOps++
}

// TotalIOEvents sums the IO event counters across the domain's vCPUs.
func (d *Domain) TotalIOEvents() uint64 {
	var n uint64
	for _, v := range d.VCPUs {
		n += v.Counters.IOEvents
	}
	return n
}

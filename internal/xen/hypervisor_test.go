package xen

import (
	"testing"

	"aqlsched/internal/cache"
	"aqlsched/internal/guest"
	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
)

// fifoSched is a minimal scheduler for exercising the dispatch
// machinery: one global FIFO queue, pool slices, no preemption.
type fifoSched struct {
	h *Hypervisor
	q []*VCPU
}

func (s *fifoSched) Name() string            { return "fifo" }
func (s *fifoSched) Attach(h *Hypervisor)    { s.h = h }
func (s *fifoSched) AddVCPU(*VCPU, sim.Time) {}
func (s *fifoSched) RemoveVCPU(v *VCPU, now sim.Time) {
	for i, x := range s.q {
		if x == v {
			s.q = append(s.q[:i], s.q[i+1:]...)
			return
		}
	}
}
func (s *fifoSched) Wake(v *VCPU, now sim.Time) {
	s.q = append(s.q, v)
	for _, p := range v.Pool().PCPUs() {
		if s.h.RunningOn(p) == nil {
			s.h.TryRun(p, now)
			return
		}
	}
}
func (s *fifoSched) Requeue(v *VCPU, ranFor, now sim.Time) { s.q = append(s.q, v) }
func (s *fifoSched) Block(*VCPU, sim.Time)                 {}
func (s *fifoSched) PickNext(p hw.PCPUID, now sim.Time) *VCPU {
	for i, v := range s.q {
		if v.Pool().Contains(p) {
			s.q = append(s.q[:i], s.q[i+1:]...)
			return v
		}
	}
	return nil
}
func (s *fifoSched) SliceFor(v *VCPU, p hw.PCPUID) sim.Time { return v.Pool().Slice }
func (s *fifoSched) PoolChanged(v *VCPU, now sim.Time)      {}

// burnProgram runs fixed compute jobs forever.
type burnProgram struct {
	prof    cache.Profile
	job     sim.Time
	started bool
}

func (b *burnProgram) Next(t *guest.Thread, now sim.Time) guest.Action {
	if b.started {
		t.Jobs++
	}
	b.started = true
	return guest.Action{Kind: guest.ActCompute, Work: b.job, Prof: b.prof}
}

func smallProf() cache.Profile { return cache.Profile{WSS: 64 * hw.KB, RefRate: 0.1} }

func newTestHyp(pcpus int) (*Hypervisor, *fifoSched) {
	top := hw.I73770()
	var ids []hw.PCPUID
	for i := 0; i < pcpus; i++ {
		ids = append(ids, hw.PCPUID(i))
	}
	s := &fifoSched{}
	h := New(top, s, 1, WithGuestPCPUs(ids))
	return h, s
}

func TestSingleVCPURunsAndCompletesJobs(t *testing.T) {
	h, _ := newTestHyp(1)
	d := h.CreateDomain("vm", 0, 0, 1)
	th := d.OS.Spawn("w", 0, false, &burnProgram{prof: smallProf(), job: 1 * sim.Millisecond}, 0)
	h.Run(1 * sim.Second)
	if th.Jobs < 900 {
		t.Errorf("completed %d jobs in 1s of 1ms jobs, want ~1000", th.Jobs)
	}
	v := d.VCPUs[0]
	if v.RunTime < 990*sim.Millisecond {
		t.Errorf("vCPU ran %v of 1s, want nearly all", v.RunTime)
	}
}

func TestTwoVCPUsShareOnePCPUFairly(t *testing.T) {
	h, _ := newTestHyp(1)
	d1 := h.CreateDomain("a", 0, 0, 1)
	d2 := h.CreateDomain("b", 0, 0, 1)
	d1.OS.Spawn("a", 0, false, &burnProgram{prof: smallProf(), job: 500 * sim.Second}, 0)
	d2.OS.Spawn("b", 0, false, &burnProgram{prof: smallProf(), job: 500 * sim.Second}, 0)
	h.Run(3 * sim.Second)
	r1, r2 := d1.VCPUs[0].RunTime, d2.VCPUs[0].RunTime
	total := r1 + r2
	if total < 2900*sim.Millisecond {
		t.Errorf("total run time %v, want ~3s (no idle gaps)", total)
	}
	ratio := float64(r1) / float64(r2)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("FIFO share ratio %v:%v = %.2f, want ~1", r1, r2, ratio)
	}
}

func TestQuantumBoundsDispatchLength(t *testing.T) {
	h, _ := newTestHyp(1)
	d1 := h.CreateDomain("a", 0, 0, 1)
	d2 := h.CreateDomain("b", 0, 0, 1)
	d1.OS.Spawn("a", 0, false, &burnProgram{prof: smallProf(), job: 500 * sim.Second}, 0)
	d2.OS.Spawn("b", 0, false, &burnProgram{prof: smallProf(), job: 500 * sim.Second}, 0)
	h.Run(3 * sim.Second)
	// 30ms default slice, two busy vCPUs on one pCPU: about 100
	// dispatches in 3s.
	if h.CtxSwitches < 90 || h.CtxSwitches > 130 {
		t.Errorf("context switches = %d, want ~100 for 30ms slices over 3s", h.CtxSwitches)
	}
}

func TestIdleVCPUBlocksAndMachineGoesQuiet(t *testing.T) {
	h, _ := newTestHyp(2)
	d := h.CreateDomain("vm", 0, 0, 1)
	done := false
	prog := guest.ProgramFunc(func(th *guest.Thread, now sim.Time) guest.Action {
		if done {
			return guest.Action{Kind: guest.ActExit}
		}
		done = true
		return guest.Action{Kind: guest.ActCompute, Work: 5 * sim.Millisecond, Prof: smallProf()}
	})
	d.OS.Spawn("once", 0, false, prog, 0)
	h.Run(1 * sim.Second)
	if d.VCPUs[0].State() != Blocked {
		t.Errorf("vCPU state %v after work done, want blocked", d.VCPUs[0].State())
	}
	if rt := d.VCPUs[0].RunTime; rt < 5*sim.Millisecond || rt > 7*sim.Millisecond {
		t.Errorf("run time %v, want ~5ms", rt)
	}
}

func TestIOEventWakesBlockedVCPU(t *testing.T) {
	h, _ := newTestHyp(1)
	d := h.CreateDomain("vm", 0, 0, 1)
	var served []sim.Time
	prog := &ioEcho{served: &served}
	d.OS.Spawn("handler", 0, true, prog, 0)
	// Deliver one event at t=100ms.
	h.Engine.At(100*sim.Millisecond, func(now sim.Time) {
		h.NotifyIO(d, 7, now)
	})
	h.Run(200 * sim.Millisecond)
	if len(served) != 1 {
		t.Fatalf("served %d events, want 1", len(served))
	}
	// Machine idle: service should complete almost immediately
	// (ctx switch + 100µs service).
	if served[0] > 101*sim.Millisecond {
		t.Errorf("event served at %v, want ~100.1ms", served[0])
	}
	if d.VCPUs[0].Counters.IOEvents != 1 {
		t.Errorf("IOEvents = %d, want 1", d.VCPUs[0].Counters.IOEvents)
	}
}

type ioEcho struct {
	served *[]sim.Time
	state  int
}

func (e *ioEcho) Next(t *guest.Thread, now sim.Time) guest.Action {
	switch e.state {
	case 0:
		e.state = 1
		return guest.Action{Kind: guest.ActWaitIO, Port: 7}
	case 1:
		e.state = 2
		return guest.Action{Kind: guest.ActCompute, Work: 100 * sim.Microsecond, Prof: cache.Profile{WSS: 4096}}
	default:
		*e.served = append(*e.served, now)
		e.state = 1
		return guest.Action{Kind: guest.ActWaitIO, Port: 7}
	}
}

func TestSpinBurstAccruesPauseLoops(t *testing.T) {
	h, _ := newTestHyp(2)
	d := h.CreateDomain("vm", 0, 0, 2)
	lock := guest.NewSpinLock("l")
	// Thread A holds the lock for a long critical section on vCPU 0;
	// thread B spins on vCPU 1.
	progA := &lockHog{lock: lock, hold: 50 * sim.Millisecond}
	progB := &lockHog{lock: lock, hold: 1 * sim.Millisecond}
	d.OS.Spawn("A", 0, false, progA, 0)
	d.OS.Spawn("B", 1, false, progB, 0)
	h.Run(40 * sim.Millisecond)
	if d.VCPUs[1].Counters.PauseLoops == 0 {
		t.Error("spinning vCPU accrued no pause loops")
	}
}

type lockHog struct {
	lock  *guest.SpinLock
	hold  sim.Time
	state int
}

func (l *lockHog) Next(t *guest.Thread, now sim.Time) guest.Action {
	switch l.state {
	case 0:
		l.state = 1
		return guest.Action{Kind: guest.ActAcquire, Lock: l.lock}
	case 1:
		l.state = 2
		return guest.Action{Kind: guest.ActCompute, Work: l.hold, Prof: cache.Profile{WSS: 4096}}
	default:
		l.state = 0
		t.Jobs++
		return guest.Action{Kind: guest.ActRelease, Lock: l.lock}
	}
}

func TestApplyPlanPartitionsPools(t *testing.T) {
	h, _ := newTestHyp(4)
	d1 := h.CreateDomain("a", 0, 0, 2)
	d2 := h.CreateDomain("b", 0, 0, 2)
	for i := 0; i < 2; i++ {
		d1.OS.Spawn("a", i, false, &burnProgram{prof: smallProf(), job: 500 * sim.Second}, 0)
		d2.OS.Spawn("b", i, false, &burnProgram{prof: smallProf(), job: 500 * sim.Second}, 0)
	}
	h.Run(50 * sim.Millisecond)

	fast := NewCPUPool("fast", 1*sim.Millisecond, []hw.PCPUID{0, 1})
	slow := NewCPUPool("slow", 90*sim.Millisecond, []hw.PCPUID{2, 3})
	plan := &PoolPlan{
		Pools: []*CPUPool{fast, slow},
		Assign: map[*VCPU]*CPUPool{
			d1.VCPUs[0]: fast, d1.VCPUs[1]: fast,
			d2.VCPUs[0]: slow, d2.VCPUs[1]: slow,
		},
	}
	if err := h.ApplyPlan(plan, h.Engine.Now()); err != nil {
		t.Fatal(err)
	}
	// Sample running placement over time: d1 only on {0,1}, d2 only on {2,3}.
	violations := 0
	var sample func(now sim.Time)
	sample = func(now sim.Time) {
		for p := hw.PCPUID(0); p < 4; p++ {
			v := h.RunningOn(p)
			if v == nil {
				continue
			}
			if v.Domain == d1 && p > 1 {
				violations++
			}
			if v.Domain == d2 && p < 2 {
				violations++
			}
		}
		if now < 500*sim.Millisecond {
			h.Engine.After(1*sim.Millisecond, sample)
		}
	}
	h.Engine.After(1*sim.Millisecond, sample)
	h.Run(600 * sim.Millisecond)
	if violations != 0 {
		t.Errorf("%d placement violations after ApplyPlan", violations)
	}
}

func TestApplyPlanRejectsBadPlans(t *testing.T) {
	h, _ := newTestHyp(2)
	d := h.CreateDomain("a", 0, 0, 1)
	d.OS.Spawn("a", 0, false, &burnProgram{prof: smallProf(), job: sim.Second}, 0)

	// Missing pCPU 1.
	p0 := NewCPUPool("p0", sim.Millisecond, []hw.PCPUID{0})
	bad := &PoolPlan{Pools: []*CPUPool{p0}, Assign: map[*VCPU]*CPUPool{d.VCPUs[0]: p0}}
	if err := h.ApplyPlan(bad, h.Engine.Now()); err == nil {
		t.Error("plan missing a pCPU accepted")
	}
	// Unassigned vCPU.
	p01 := NewCPUPool("p01", sim.Millisecond, []hw.PCPUID{0, 1})
	bad2 := &PoolPlan{Pools: []*CPUPool{p01}, Assign: map[*VCPU]*CPUPool{}}
	if err := h.ApplyPlan(bad2, h.Engine.Now()); err == nil {
		t.Error("plan with unassigned vCPU accepted")
	}
	// Overlapping pools.
	pa := NewCPUPool("pa", sim.Millisecond, []hw.PCPUID{0, 1})
	pb := NewCPUPool("pb", sim.Millisecond, []hw.PCPUID{1})
	bad3 := &PoolPlan{Pools: []*CPUPool{pa, pb}, Assign: map[*VCPU]*CPUPool{d.VCPUs[0]: pa}}
	if err := h.ApplyPlan(bad3, h.Engine.Now()); err == nil {
		t.Error("overlapping pools accepted")
	}
	// pCPU outside the topology: must be an error, not an index panic.
	px := NewCPUPool("px", sim.Millisecond, []hw.PCPUID{0, 1, 99})
	bad4 := &PoolPlan{Pools: []*CPUPool{px}, Assign: map[*VCPU]*CPUPool{d.VCPUs[0]: px}}
	if err := h.ApplyPlan(bad4, h.Engine.Now()); err == nil {
		t.Error("plan with out-of-topology pCPU accepted")
	}
}

func TestDeterminismSameSeedSameTrace(t *testing.T) {
	run := func() (uint64, uint64, sim.Time) {
		h, _ := newTestHyp(2)
		d1 := h.CreateDomain("a", 0, 0, 1)
		d2 := h.CreateDomain("b", 0, 0, 1)
		d1.OS.Spawn("a", 0, false, &burnProgram{prof: smallProf(), job: 3 * sim.Millisecond}, 0)
		d2.OS.Spawn("b", 0, false, &burnProgram{prof: smallProf(), job: 7 * sim.Millisecond}, 0)
		h.Run(2 * sim.Second)
		return h.CtxSwitches, h.Engine.Fired(), d1.VCPUs[0].RunTime
	}
	c1, f1, r1 := run()
	c2, f2, r2 := run()
	if c1 != c2 || f1 != f2 || r1 != r2 {
		t.Errorf("two identical runs diverged: (%d,%d,%v) vs (%d,%d,%v)", c1, f1, r1, c2, f2, r2)
	}
}

func TestRunTimeNeverExceedsWallPerPCPU(t *testing.T) {
	h, _ := newTestHyp(2)
	var doms []*Domain
	for i := 0; i < 4; i++ {
		d := h.CreateDomain("vm", 0, 0, 1)
		d.OS.Spawn("w", 0, false, &burnProgram{prof: smallProf(), job: 2 * sim.Millisecond}, 0)
		doms = append(doms, d)
	}
	h.Run(1 * sim.Second)
	var total sim.Time
	for _, d := range doms {
		total += d.VCPUs[0].RunTime
	}
	if total > 2*sim.Second {
		t.Errorf("total run time %v exceeds 2 pCPU-seconds", total)
	}
	if total < 1900*sim.Millisecond {
		t.Errorf("total run time %v, want ~2s (busy machine)", total)
	}
}

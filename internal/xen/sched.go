// Package xen models the hypervisor layer: domains, vCPUs, CPU pools,
// event channels, and the dispatch machinery that multiplexes vCPUs onto
// pCPUs under a pluggable scheduler.
//
// The model mirrors the Xen structure the paper builds on (Section 2.1):
// a scheduler answers Q1 (which vCPU gets a pCPU) through its run queues
// and Q2 (for how long) through the time-slice of the CPU pool the vCPU
// belongs to. Following the paper's implementation trick (Section 4.3),
// a single scheduler instance serves every pool — pools are just
// (pCPU-set, quantum) configurations — so moving a vCPU between pools
// never copies scheduler state and costs nothing beyond the cache
// effects the cache model already captures.
package xen

import (
	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
)

// RateLimit is the minimum time a dispatched vCPU runs before a wake-up
// preemption (BOOST) may evict it, mirroring Xen's sched_ratelimit_us.
const RateLimit = 1 * sim.Millisecond

// DefaultSlice is the Xen Credit scheduler's default quantum (Q2).
const DefaultSlice = 30 * sim.Millisecond

// Scheduler is the pluggable policy deciding which vCPU runs where.
// A single instance serves all CPU pools of a hypervisor.
type Scheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Attach wires the scheduler to its hypervisor. Called exactly once,
	// before any other method; the scheduler may register periodic
	// accounting events on h.Engine.
	Attach(h *Hypervisor)
	// AddVCPU registers a new vCPU (initially blocked).
	AddVCPU(v *VCPU, now sim.Time)
	// RemoveVCPU unregisters a vCPU whose domain is being destroyed:
	// the scheduler drops it from its queues and accounting. The
	// hypervisor has already taken it off any pCPU.
	RemoveVCPU(v *VCPU, now sim.Time)
	// Wake transitions a blocked vCPU to runnable: the scheduler
	// enqueues it and may start idle pCPUs or preempt running ones
	// (subject to RateLimit).
	Wake(v *VCPU, now sim.Time)
	// Requeue re-enqueues a still-runnable vCPU whose slice ended or
	// that was preempted; ranFor is how long it just ran.
	Requeue(v *VCPU, ranFor sim.Time, now sim.Time)
	// Block removes a vCPU that stopped being runnable.
	Block(v *VCPU, now sim.Time)
	// PickNext pops the next vCPU to run on p, or nil to idle. The
	// returned vCPU must belong to a pool containing p.
	PickNext(p hw.PCPUID, now sim.Time) *VCPU
	// SliceFor reports the time-slice to grant v on p (usually the
	// pool's quantum; policies like vSlicer differentiate per vCPU).
	SliceFor(v *VCPU, p hw.PCPUID) sim.Time
	// PoolChanged tells the scheduler v moved to a different pool so
	// queued state can be re-homed onto the new pool's pCPUs.
	PoolChanged(v *VCPU, now sim.Time)
}

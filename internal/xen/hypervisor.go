package xen

import (
	"fmt"
	"math"

	"aqlsched/internal/cache"
	"aqlsched/internal/guest"
	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
)

// burstKind distinguishes compute bursts from spin-waits.
type burstKind int

const (
	burstRun burstKind = iota
	burstSpin
)

// burst is the in-flight execution of one guest step on a pCPU. Compute
// bursts are planned eagerly through the cache model; if preempted
// mid-way they are rolled back and re-run with the actually elapsed
// budget (the insertion clock is additive, so this is exact). Finished
// bursts return to the hypervisor's free-list, so steady-state dispatch
// allocates nothing.
type burst struct {
	kind     burstKind
	thread   *guest.Thread
	prof     cache.Profile
	work     sim.Time
	start    sim.Time // dispatch time of this burst
	overhead sim.Time // context-switch cost charged before execution
	planned  cache.BurstResult
	fpBefore cache.Footprint
	coreWas  *cache.Footprint
	next     *burst // free-list link, nil while in flight
}

// Hypervisor owns the machine, the domains, the pools and the dispatch
// machinery.
type Hypervisor struct {
	Engine *sim.Engine
	Topo   *hw.Topology
	Cache  *cache.Model
	RNG    *sim.RNG

	Domains []*Domain
	Sched   Scheduler

	guestPCPUs []hw.PCPUID
	// poolOf and running are dense, indexed by hw.PCPUID: the dispatch
	// path touches them on every decision and map lookups were a
	// measurable fraction of simulation time.
	poolOf  []*CPUPool
	pools   []*CPUPool
	running []*VCPU

	allVCPUs  []*VCPU // cached AllVCPUs slice, appended on CreateDomain
	burstFree *burst  // free-list of recycled burst structs

	// speed caches each pCPU's core-class speed factor. It stays nil on
	// homogeneous machines, so the dispatch hot path does no float work
	// there and existing results are bit-identical.
	speed []float64

	// OnDispatch, when set, observes every dispatch: v waited `wait`
	// since becoming runnable before going on CPU at `now`. Policies
	// install it (EDF's deadline-miss accounting); nil costs one branch.
	OnDispatch func(v *VCPU, wait, now sim.Time)

	nextDomID  int
	nextGlobal int

	// CtxSwitches counts dispatches (overhead diagnostics).
	CtxSwitches uint64
	// Preemptions counts slice-cut events (BOOST/kick/reconfigure).
	Preemptions uint64
	// PoolMigrations counts vCPUs moved between pools by ApplyPlan —
	// the migration-churn half of the paper's reactivity trade-off
	// (Section 3.3: a short vTRS window reacts faster but reclusters,
	// and therefore migrates, more).
	PoolMigrations uint64
}

// Option configures a Hypervisor.
type Option func(*Hypervisor)

// WithGuestPCPUs restricts guest scheduling to the given pCPUs (the
// paper pins dom0/driver domains to dedicated cores that the guest
// scheduler never sees).
func WithGuestPCPUs(pcpus []hw.PCPUID) Option {
	return func(h *Hypervisor) { h.guestPCPUs = append([]hw.PCPUID(nil), pcpus...) }
}

// New builds a hypervisor over topo using sched, with a single default
// pool spanning all guest pCPUs at the Xen default 30 ms quantum.
func New(topo *hw.Topology, sched Scheduler, seed uint64, opts ...Option) *Hypervisor {
	if err := topo.Validate(); err != nil {
		panic(fmt.Sprintf("xen: %v", err))
	}
	h := &Hypervisor{
		Engine:  sim.NewEngine(),
		Topo:    topo,
		Cache:   cache.NewModel(topo),
		RNG:     sim.NewRNG(seed),
		Sched:   sched,
		poolOf:  make([]*CPUPool, topo.TotalPCPUs()),
		running: make([]*VCPU, topo.TotalPCPUs()),
	}
	if h.guestPCPUs == nil {
		for p := 0; p < topo.TotalPCPUs(); p++ {
			h.guestPCPUs = append(h.guestPCPUs, hw.PCPUID(p))
		}
	}
	for _, o := range opts {
		o(h)
	}
	def := NewCPUPool("default", DefaultSlice, h.guestPCPUs)
	h.pools = []*CPUPool{def}
	for _, p := range h.guestPCPUs {
		h.poolOf[p] = def
	}
	if topo.Heterogeneous() {
		speed := make([]float64, topo.TotalPCPUs())
		uniform := true
		for p := range speed {
			speed[p] = topo.SpeedOf(hw.PCPUID(p))
			if speed[p] != 1 {
				uniform = false
			}
		}
		if !uniform {
			h.speed = speed
		}
	}
	sched.Attach(h)
	return h
}

// speedOf reports pCPU p's execution speed factor (1 everywhere on
// homogeneous machines).
func (h *Hypervisor) speedOf(p hw.PCPUID) float64 {
	if h.speed == nil {
		return 1
	}
	return h.speed[p]
}

// refTime converts a wall interval on a core of speed s into the
// reference time the cache model runs in (floor, clamped to 1 so a
// positive wall interval always makes progress).
func refTime(wall sim.Time, s float64) sim.Time {
	r := sim.Time(float64(wall) * s)
	if r < 1 {
		r = 1
	}
	return r
}

// refElapsed is refTime keyed by pCPU, with the homogeneous fast path
// returning wall untouched (no float arithmetic).
func (h *Hypervisor) refElapsed(p hw.PCPUID, wall sim.Time) sim.Time {
	if s := h.speedOf(p); s != 1 {
		return refTime(wall, s)
	}
	return wall
}

// GuestPCPUs lists the pCPUs guests may use.
func (h *Hypervisor) GuestPCPUs() []hw.PCPUID { return h.guestPCPUs }

// Pools lists the current CPU pools.
func (h *Hypervisor) Pools() []*CPUPool { return h.pools }

// PoolOf reports the pool owning pCPU p.
func (h *Hypervisor) PoolOf(p hw.PCPUID) *CPUPool { return h.poolOf[p] }

// RunningOn reports the vCPU currently on pCPU p (nil when idle).
func (h *Hypervisor) RunningOn(p hw.PCPUID) *VCPU { return h.running[p] }

// AllVCPUs lists every guest vCPU in creation order. The slice is
// maintained incrementally by CreateDomain; callers must not mutate it.
func (h *Hypervisor) AllVCPUs() []*VCPU { return h.allVCPUs }

// DomainsEverCreated reports how many domains were ever created.
// Unlike len(Domains) it never decreases on teardown, so it is the
// correct label space for per-VM RNG forks: two churn VMs deployed
// around a departure must not receive identical random streams.
// Without teardown it equals len(Domains), which keeps the historical
// fork labels (and therefore every static scenario) byte-identical.
func (h *Hypervisor) DomainsEverCreated() int { return h.nextDomID }

// getBurst pops a recycled burst from the free-list (or allocates the
// first time a new depth of in-flight bursts is reached).
func (h *Hypervisor) getBurst() *burst {
	b := h.burstFree
	if b == nil {
		return &burst{}
	}
	h.burstFree = b.next
	b.next = nil
	return b
}

// putBurst recycles a finished burst. The caller must have dropped every
// reference to it.
func (h *Hypervisor) putBurst(b *burst) {
	*b = burst{next: h.burstFree}
	h.burstFree = b
}

// CreateDomain builds a domain with ncpu vCPUs, all initially blocked
// (they wake when the guest spawns threads on them). weight follows the
// Credit scheduler convention (256 default); cap is a percentage of one
// pCPU, 0 meaning uncapped.
func (h *Hypervisor) CreateDomain(name string, weight, cap, ncpu int) *Domain {
	if weight <= 0 {
		weight = 256
	}
	d := &Domain{
		ID:     DomainID(h.nextDomID),
		Name:   name,
		Weight: weight,
		Cap:    cap,
		hyp:    h,
	}
	h.nextDomID++
	d.OS = guest.NewOS(name, ncpu, h.Engine, d)
	for i := 0; i < ncpu; i++ {
		v := &VCPU{
			Domain: d,
			Index:  i,
			Global: h.nextGlobal,
			state:  Blocked,
			pool:   h.pools[0],
		}
		h.nextGlobal++
		v.lastPCPU = h.pools[0].PCPUs()[v.Global%len(h.pools[0].PCPUs())]
		// One burst-end callback per vCPU, bound once: re-arming it is
		// allocation-free no matter how many bursts the vCPU runs.
		v.endBurst = h.Engine.NewTimer(func(now sim.Time) {
			if b := v.burst; b != nil {
				h.burstEnded(v, b, now)
			}
		})
		d.VCPUs = append(d.VCPUs, v)
		h.allVCPUs = append(h.allVCPUs, v)
		h.Sched.AddVCPU(v, h.Engine.Now())
	}
	h.Domains = append(h.Domains, d)
	return d
}

// DestroyDomain tears a VM down (churn departure): the guest OS shuts
// down, every vCPU leaves its pCPU/runqueue, and the domain disappears
// from Domains/AllVCPUs so monitoring, clustering and credit
// accounting stop seeing it. In-flight bursts are settled through the
// normal preemption path, so cache state and counters stay exact.
// Idempotent; freed pCPUs are immediately rescheduled.
func (h *Hypervisor) DestroyDomain(d *Domain, now sim.Time) {
	if d.dead {
		return
	}
	d.dead = true
	d.OS.Shutdown()
	for _, v := range d.VCPUs {
		switch v.state {
		case Running:
			p := v.pcpu
			h.stopRunning(v, now)
			v.state = Blocked
			h.Sched.RemoveVCPU(v, now)
			v.destroyed = true
			h.TryRun(p, now)
		case Runnable:
			h.Sched.RemoveVCPU(v, now)
			v.state = Blocked
			v.destroyed = true
		case Blocked:
			h.Sched.RemoveVCPU(v, now)
			v.destroyed = true
		}
		v.endBurst.Stop()
	}
	for i, x := range h.Domains {
		if x == d {
			h.Domains = append(h.Domains[:i], h.Domains[i+1:]...)
			break
		}
	}
	live := h.allVCPUs[:0]
	for _, v := range h.allVCPUs {
		if !v.destroyed {
			live = append(live, v)
		}
	}
	h.allVCPUs = live
}

// NotifyIO injects one event-channel notification for (dom, port),
// modelling the split-driver upcall path: the event counter of the
// target vCPU advances and the guest wakes the waiting handler thread.
func (h *Hypervisor) NotifyIO(d *Domain, port int, now sim.Time) {
	cpu := d.OS.DeliverIO(port, now)
	if cpu >= 0 && cpu < len(d.VCPUs) {
		d.VCPUs[cpu].Counters.IOEvents++
	}
}

// --- dispatch machinery -------------------------------------------------

// wake transitions a blocked vCPU to runnable.
func (h *Hypervisor) wake(v *VCPU, now sim.Time) {
	if v.destroyed || v.state != Blocked {
		return
	}
	v.state = Runnable
	v.runnableSince = now
	h.Sched.Wake(v, now)
}

// kick ends the current burst of a running vCPU so the next guest step
// is re-evaluated immediately (IRQ arrival, lock grant).
func (h *Hypervisor) kick(v *VCPU, now sim.Time) {
	if v.state != Running || v.burst == nil {
		return
	}
	b := v.burst
	v.burst = nil
	v.endBurst.Stop()
	h.settleBurst(v, b, now)
	h.putBurst(b)
	h.runBurst(v, now)
}

// TryRun attempts to dispatch work on an idle pCPU (schedulers call this
// when a wake-up may fill an idle core).
func (h *Hypervisor) TryRun(p hw.PCPUID, now sim.Time) {
	if h.running[p] != nil {
		return
	}
	v := h.Sched.PickNext(p, now)
	if v == nil {
		return
	}
	h.dispatch(v, p, now)
}

// Preempt evicts the vCPU running on p (if any), requeueing it, and
// immediately reschedules the pCPU.
func (h *Hypervisor) Preempt(p hw.PCPUID, now sim.Time) {
	v := h.running[p]
	if v == nil {
		h.TryRun(p, now)
		return
	}
	h.Preemptions++
	h.stopRunning(v, now)
	h.Sched.Requeue(v, now-v.dispatchedAt, now)
	h.TryRun(p, now)
}

// dispatch puts v on p and starts its first burst.
func (h *Hypervisor) dispatch(v *VCPU, p hw.PCPUID, now sim.Time) {
	if v.state == Running {
		panic(fmt.Sprintf("xen: dispatching already-running vCPU %v", v))
	}
	if h.running[p] != nil {
		panic(fmt.Sprintf("xen: dispatching %v on busy pCPU %d", v, p))
	}
	if !v.pool.Contains(p) {
		panic(fmt.Sprintf("xen: dispatching %v on pCPU %d outside pool %s", v, p, v.pool.Name))
	}
	h.CtxSwitches++
	v.state = Running
	v.pcpu = p
	v.lastPCPU = p
	v.dispatchedAt = now
	v.everRan = true
	wait := now - v.runnableSince
	v.Counters.StolenTime += uint64(wait)
	slice := h.Sched.SliceFor(v, p)
	if slice <= 0 {
		panic(fmt.Sprintf("xen: zero slice for %v", v))
	}
	v.sliceEnd = now + slice
	h.running[p] = v
	if h.OnDispatch != nil {
		h.OnDispatch(v, wait, now)
	}
	h.runBurstWithOverhead(v, now, h.Topo.CtxSwitchCost)
}

// runBurst asks the guest what v does next and executes it.
func (h *Hypervisor) runBurst(v *VCPU, now sim.Time) {
	h.runBurstWithOverhead(v, now, 0)
}

func (h *Hypervisor) runBurstWithOverhead(v *VCPU, now sim.Time, overhead sim.Time) {
	if v.state != Running || v.burst != nil {
		return
	}
	if now+overhead >= v.sliceEnd {
		h.endSlice(v, now)
		return
	}
	step := v.Domain.OS.NextStep(v.Index, now)
	switch step.Kind {
	case guest.StepIdle:
		h.blockVCPU(v, now)
	case guest.StepRun:
		budget := v.sliceEnd - now - overhead
		b := h.getBurst()
		b.kind = burstRun
		b.thread = step.Thread
		b.prof = step.Prof
		b.work = step.Work
		b.start = now
		b.overhead = overhead
		b.fpBefore = step.Thread.FP
		b.coreWas = h.Cache.CoreOccupant(v.pcpu)
		var wall sim.Time
		if s := h.speedOf(v.pcpu); s != 1 {
			// Heterogeneous core: the cache model runs in reference
			// time (the budget shrinks by the speed factor), and the
			// planned wall stretches back for the timer, so slow cores
			// accrue proportionally less work per wall second.
			b.planned = h.Cache.Run(&step.Thread.FP, v.pcpu, step.Prof, step.Work, refTime(budget, s))
			wall = sim.Time(math.Ceil(float64(b.planned.Wall) / s))
			if wall > budget {
				wall = budget
			}
		} else {
			b.planned = h.Cache.Run(&step.Thread.FP, v.pcpu, step.Prof, step.Work, budget)
			wall = b.planned.Wall
		}
		v.burst = b
		step.Thread.OnCPU = true
		v.endBurst.Arm(now + overhead + wall)
	case guest.StepSpin:
		b := h.getBurst()
		b.kind = burstSpin
		b.thread = step.Thread
		b.start = now
		b.overhead = overhead
		v.burst = b
		step.Thread.OnCPU = true
		v.endBurst.Arm(v.sliceEnd)
	default:
		panic(fmt.Sprintf("xen: unknown step kind %d", step.Kind))
	}
}

// burstEnded handles the natural completion of a burst (work done or
// slice expired).
func (h *Hypervisor) burstEnded(v *VCPU, b *burst, now sim.Time) {
	if v.burst != b {
		return // stale event (should have been cancelled)
	}
	v.burst = nil
	b.thread.OnCPU = false
	switch b.kind {
	case burstRun:
		v.Counters.Add(b.planned.Counters)
		v.Domain.OS.BurstDone(b.thread, b.planned.Ideal, now)
	case burstSpin:
		d := now - b.start - b.overhead
		if d > 0 {
			v.Counters.Add(cache.SpinCounters(h.refElapsed(v.pcpu, d)))
		}
	}
	h.putBurst(b)
	if now >= v.sliceEnd {
		h.endSlice(v, now)
		return
	}
	h.runBurst(v, now)
}

// settleBurst accounts a burst that was cut short at `now`: the planned
// execution is rolled back and replayed with the actually elapsed
// budget.
func (h *Hypervisor) settleBurst(v *VCPU, b *burst, now sim.Time) {
	b.thread.OnCPU = false
	elapsed := now - b.start - b.overhead
	if b.kind == burstSpin {
		if elapsed > 0 {
			v.Counters.Add(cache.SpinCounters(h.refElapsed(v.pcpu, elapsed)))
		}
		return
	}
	// Roll back the planned burst...
	b.thread.FP = b.fpBefore
	h.Cache.Uninsert(h.Topo.SocketOf(v.pcpu), b.planned.InsertedBytes)
	h.Cache.SetCoreOccupant(v.pcpu, b.coreWas)
	if elapsed <= 0 {
		return // preempted during the context-switch window: no progress
	}
	// ...and replay exactly the elapsed part (in reference time on a
	// heterogeneous core).
	res := h.Cache.Run(&b.thread.FP, v.pcpu, b.prof, b.work, h.refElapsed(v.pcpu, elapsed))
	v.Counters.Add(res.Counters)
	v.Domain.OS.BurstDone(b.thread, res.Ideal, now)
}

// stopRunning takes v off its pCPU, settling any in-flight burst.
func (h *Hypervisor) stopRunning(v *VCPU, now sim.Time) {
	if v.state != Running {
		panic(fmt.Sprintf("xen: stopRunning on %v in state %v", v, v.state))
	}
	if b := v.burst; b != nil {
		v.burst = nil
		v.endBurst.Stop()
		h.settleBurst(v, b, now)
		h.putBurst(b)
	}
	v.RunTime += now - v.dispatchedAt
	h.running[v.pcpu] = nil
	v.state = Runnable
	v.runnableSince = now
}

// endSlice finishes v's quantum: requeue and reschedule the pCPU.
func (h *Hypervisor) endSlice(v *VCPU, now sim.Time) {
	p := v.pcpu
	ranFor := now - v.dispatchedAt
	if b := v.burst; b != nil {
		v.burst = nil
		v.endBurst.Stop()
		h.settleBurst(v, b, now)
		h.putBurst(b)
	}
	v.RunTime += ranFor
	h.running[p] = nil
	v.state = Runnable
	v.runnableSince = now
	h.Sched.Requeue(v, ranFor, now)
	h.TryRun(p, now)
}

// blockVCPU parks a vCPU with no runnable guest work.
func (h *Hypervisor) blockVCPU(v *VCPU, now sim.Time) {
	p := v.pcpu
	if b := v.burst; b != nil {
		v.burst = nil
		v.endBurst.Stop()
		h.settleBurst(v, b, now)
		h.putBurst(b)
	}
	v.RunTime += now - v.dispatchedAt
	h.running[p] = nil
	v.state = Blocked
	h.Sched.Block(v, now)
	h.TryRun(p, now)
}

// --- pool reconfiguration ------------------------------------------------

// PoolPlan describes a full pool configuration: a partition of the guest
// pCPUs into pools and an assignment of every vCPU to one of them.
type PoolPlan struct {
	Pools  []*CPUPool
	Assign map[*VCPU]*CPUPool
}

// Validate checks that the plan partitions the guest pCPUs and assigns
// every vCPU to one of its pools.
func (pp *PoolPlan) Validate(h *Hypervisor) error {
	seen := make(map[hw.PCPUID]bool)
	for _, pool := range pp.Pools {
		for _, p := range pool.PCPUs() {
			if p < 0 || int(p) >= h.Topo.TotalPCPUs() {
				return fmt.Errorf("xen: pool %s lists pCPU %d outside the topology (%d pCPUs)",
					pool.Name, p, h.Topo.TotalPCPUs())
			}
			if seen[p] {
				return fmt.Errorf("xen: pCPU %d in two pools", p)
			}
			seen[p] = true
		}
	}
	for _, p := range h.guestPCPUs {
		if !seen[p] {
			return fmt.Errorf("xen: guest pCPU %d in no pool", p)
		}
	}
	for _, d := range h.Domains {
		for _, v := range d.VCPUs {
			pool, ok := pp.Assign[v]
			if !ok || pool == nil {
				return fmt.Errorf("xen: vCPU %v not assigned to a pool", v)
			}
			found := false
			for _, pl := range pp.Pools {
				if pl == pool {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("xen: vCPU %v assigned to foreign pool %s", v, pool.Name)
			}
		}
	}
	return nil
}

// ApplyPlan reconfigures pools and vCPU membership. Running vCPUs whose
// pCPU leaves their pool are preempted; everything else migrates for
// free (the shared-scheduler trick). Cache effects of migration emerge
// from the cache model on the next dispatch.
func (h *Hypervisor) ApplyPlan(pp *PoolPlan, now sim.Time) error {
	if err := pp.Validate(h); err != nil {
		return err
	}
	h.pools = pp.Pools
	for i := range h.poolOf {
		h.poolOf[i] = nil
	}
	for _, pool := range pp.Pools {
		for _, p := range pool.PCPUs() {
			h.poolOf[p] = pool
		}
	}
	for _, d := range h.Domains {
		for _, v := range d.VCPUs {
			newPool := pp.Assign[v]
			if v.pool == newPool {
				continue
			}
			h.PoolMigrations++
			v.pool = newPool
			switch v.state {
			case Running:
				if !newPool.Contains(v.pcpu) {
					p := v.pcpu
					h.Preemptions++
					h.stopRunning(v, now)
					h.Sched.Requeue(v, now-v.dispatchedAt, now)
					h.TryRun(p, now)
				} else {
					// Stays put; the new quantum takes effect at the
					// next dispatch.
				}
			case Runnable:
				h.Sched.PoolChanged(v, now)
			case Blocked:
				// Nothing queued; next wake uses the new pool.
			}
		}
	}
	// A pCPU may have changed pools under a vCPU whose assignment kept
	// the same pool object: evict any running vCPU stranded outside its
	// pool.
	for _, p := range h.guestPCPUs {
		if v := h.running[p]; v != nil && !v.pool.Contains(p) {
			h.Preemptions++
			h.stopRunning(v, now)
			h.Sched.Requeue(v, now-v.dispatchedAt, now)
		}
	}
	// Kick every idle pCPU: queues may have moved.
	for _, p := range h.guestPCPUs {
		h.TryRun(p, now)
	}
	return nil
}

// Run executes the simulation until the deadline.
func (h *Hypervisor) Run(until sim.Time) { h.Engine.RunUntil(until) }

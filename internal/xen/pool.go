package xen

import (
	"fmt"

	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
)

// CPUPool is a set of pCPUs scheduled with a common quantum (Q2). In
// this model a pool carries no scheduler state of its own — one
// scheduler instance serves every pool (the paper's shared-runqueue
// implementation trick, Section 4.3) — so reconfiguring pools or moving
// vCPUs between them copies nothing.
type CPUPool struct {
	// Name labels the pool in reports (e.g. "C1^1ms").
	Name string
	// Slice is the pool's quantum length.
	Slice sim.Time

	pcpus []hw.PCPUID
	// member is a dense membership table indexed by pCPU ID: Contains
	// sits on the dispatch hot path, where a map lookup was measurable.
	member []bool
}

// NewCPUPool builds a pool over the given pCPUs with the given quantum.
func NewCPUPool(name string, slice sim.Time, pcpus []hw.PCPUID) *CPUPool {
	if slice <= 0 {
		panic(fmt.Sprintf("xen: pool %q with non-positive slice %v", name, slice))
	}
	if len(pcpus) == 0 {
		panic(fmt.Sprintf("xen: pool %q with no pCPUs", name))
	}
	p := &CPUPool{Name: name, Slice: slice}
	p.pcpus = append(p.pcpus, pcpus...)
	maxID := hw.PCPUID(0)
	for _, c := range pcpus {
		if c > maxID {
			maxID = c
		}
	}
	p.member = make([]bool, maxID+1)
	for _, c := range pcpus {
		if p.member[c] {
			panic(fmt.Sprintf("xen: pool %q lists pCPU %d twice", name, c))
		}
		p.member[c] = true
	}
	return p
}

// PCPUs lists the pool's pCPUs (callers must not mutate).
func (p *CPUPool) PCPUs() []hw.PCPUID { return p.pcpus }

// Contains reports whether the pool includes pCPU c.
func (p *CPUPool) Contains(c hw.PCPUID) bool {
	return c >= 0 && int(c) < len(p.member) && p.member[c]
}

// String renders the pool for diagnostics.
func (p *CPUPool) String() string {
	return fmt.Sprintf("%s(q=%v, pcpus=%v)", p.Name, p.Slice, p.pcpus)
}

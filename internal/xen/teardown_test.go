package xen

import (
	"testing"

	"aqlsched/internal/guest"
	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
)

// TestDestroyDomainFreesThePCPU: two single-vCPU burn domains share one
// pCPU; destroying one mid-run must hand the whole pCPU to the
// survivor and stop the victim's progress entirely.
func TestDestroyDomainFreesThePCPU(t *testing.T) {
	h, _ := newTestHyp(1)
	d1 := h.CreateDomain("vm1", 0, 0, 1)
	d2 := h.CreateDomain("vm2", 0, 0, 1)
	t1 := d1.OS.Spawn("w1", 0, false, &burnProgram{prof: smallProf(), job: 1 * sim.Millisecond}, 0)
	t2 := d2.OS.Spawn("w2", 0, false, &burnProgram{prof: smallProf(), job: 1 * sim.Millisecond}, 0)

	h.Engine.After(500*sim.Millisecond, func(now sim.Time) {
		h.DestroyDomain(d2, now)
	})
	h.Run(1 * sim.Second)

	if len(h.Domains) != 1 || h.Domains[0] != d1 {
		t.Fatalf("Domains after destroy: %d entries", len(h.Domains))
	}
	if len(h.AllVCPUs()) != 1 {
		t.Errorf("AllVCPUs has %d entries, want 1", len(h.AllVCPUs()))
	}
	if !d2.Dead() || !d2.VCPUs[0].Destroyed() {
		t.Error("destroyed domain not marked dead")
	}
	jobsAtDeath := t2.Jobs
	if jobsAtDeath == 0 || jobsAtDeath > 600 {
		t.Errorf("victim completed %d jobs before death, want ~250 (half of a shared pCPU)", jobsAtDeath)
	}
	// The survivor owns the pCPU for the second half: ~250 + ~500 jobs.
	if t1.Jobs < 600 {
		t.Errorf("survivor completed %d jobs, want ~750 after inheriting the pCPU", t1.Jobs)
	}
	if st := t2.State(); st != guest.Dead {
		t.Errorf("victim thread state %v, want dead", st)
	}
}

// TestDestroyDomainIsIdempotentAndSafeWhileBlocked: destroying a
// domain twice, or one whose vCPU is blocked, must not corrupt the
// dispatcher; later wakes on the dead domain are no-ops.
func TestDestroyDomainIsIdempotentAndSafeWhileBlocked(t *testing.T) {
	h, s := newTestHyp(1)
	d := h.CreateDomain("vm", 0, 0, 1)
	// A sleeper that is blocked most of the time.
	prog := guest.ProgramFunc(func(th *guest.Thread, now sim.Time) guest.Action {
		return guest.Action{Kind: guest.ActSleep, Dur: 10 * sim.Millisecond}
	})
	d.OS.Spawn("sleepy", 0, false, prog, 0)
	h.Engine.After(25*sim.Millisecond, func(now sim.Time) {
		h.DestroyDomain(d, now)
		h.DestroyDomain(d, now) // idempotent
		// A stray wake on the destroyed vCPU must be ignored.
		h.wake(d.VCPUs[0], now)
	})
	h.Run(200 * sim.Millisecond)
	if len(s.q) != 0 {
		t.Errorf("destroyed vCPU left %d entries in the run queue", len(s.q))
	}
	if h.RunningOn(0) != nil {
		t.Errorf("pCPU 0 still busy after the only domain died")
	}
}

// TestPoolMigrationsCounter: ApplyPlan counts exactly the vCPUs whose
// pool assignment changed.
func TestPoolMigrationsCounter(t *testing.T) {
	h, _ := newTestHyp(2)
	d := h.CreateDomain("vm", 0, 0, 2)
	a := NewCPUPool("a", DefaultSlice, []hw.PCPUID{0})
	b := NewCPUPool("b", DefaultSlice, []hw.PCPUID{1})
	plan := &PoolPlan{Pools: []*CPUPool{a, b}, Assign: map[*VCPU]*CPUPool{
		d.VCPUs[0]: a, d.VCPUs[1]: b,
	}}
	if err := h.ApplyPlan(plan, 0); err != nil {
		t.Fatal(err)
	}
	if h.PoolMigrations != 2 {
		t.Errorf("PoolMigrations = %d after initial assignment, want 2", h.PoolMigrations)
	}
	// Re-applying the same assignment moves nobody.
	if err := h.ApplyPlan(plan, 0); err != nil {
		t.Fatal(err)
	}
	if h.PoolMigrations != 2 {
		t.Errorf("PoolMigrations = %d after a no-op plan, want 2", h.PoolMigrations)
	}
}

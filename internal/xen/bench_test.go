package xen

import (
	"testing"

	"aqlsched/internal/guest"
	"aqlsched/internal/sim"
)

// BenchmarkDispatchComputeBursts drives two compute-bound vCPUs
// time-sharing one pCPU: every iteration simulates one second, i.e.
// ~67 quantum expiries and a few hundred bursts through the full
// dispatch → cache-plan → burst-end path.
func BenchmarkDispatchComputeBursts(b *testing.B) {
	h, _ := newTestHyp(1)
	d1 := h.CreateDomain("a", 0, 0, 1)
	d2 := h.CreateDomain("b", 0, 0, 1)
	d1.OS.Spawn("a", 0, false, &burnProgram{prof: smallProf(), job: 3 * sim.Millisecond}, 0)
	d2.OS.Spawn("b", 0, false, &burnProgram{prof: smallProf(), job: 7 * sim.Millisecond}, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Run(h.Engine.Now() + 1*sim.Second)
	}
}

// BenchmarkDispatchKickChurn exercises the preemption path: spin-lock
// contention between two vCPUs causes continuous kick → settle →
// rollback → re-dispatch cycles (the allocation-heavy path before the
// burst free-list).
func BenchmarkDispatchKickChurn(b *testing.B) {
	h, _ := newTestHyp(2)
	d := h.CreateDomain("vm", 0, 0, 2)
	lock := guest.NewSpinLock("l")
	d.OS.Spawn("A", 0, false, &lockHog{lock: lock, hold: 200 * sim.Microsecond}, 0)
	d.OS.Spawn("B", 1, false, &lockHog{lock: lock, hold: 200 * sim.Microsecond}, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Run(h.Engine.Now() + 100*sim.Millisecond)
	}
}

package workload_test

import (
	"testing"

	"aqlsched/internal/credit"
	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

func TestSuiteCoversPaperTable3(t *testing.T) {
	suite := workload.Suite()
	if len(suite) != 26 {
		t.Errorf("suite has %d apps, want 26 (2 IO + 12 SPEC CPU + 12 PARSEC)", len(suite))
	}
	counts := map[vcputype.Type]int{}
	for _, s := range suite {
		counts[s.Expected]++
	}
	if counts[vcputype.IOInt] != 2 {
		t.Errorf("%d IOInt apps, want 2", counts[vcputype.IOInt])
	}
	if counts[vcputype.ConSpin] != 12 {
		t.Errorf("%d ConSpin apps, want 12 (PARSEC)", counts[vcputype.ConSpin])
	}
	if counts[vcputype.LLCF] != 5 {
		t.Errorf("%d LLCF apps, want 5", counts[vcputype.LLCF])
	}
	if counts[vcputype.LoLCF] != 5 {
		t.Errorf("%d LoLCF apps, want 5", counts[vcputype.LoLCF])
	}
	if counts[vcputype.LLCO] != 2 {
		t.Errorf("%d LLCO apps, want 2", counts[vcputype.LLCO])
	}
}

func TestByNameFindsEveryAppAndPanicsOnUnknown(t *testing.T) {
	for _, s := range workload.Suite() {
		if got := workload.ByName(s.Name); got.Name != s.Name {
			t.Errorf("ByName(%q) returned %q", s.Name, got.Name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ByName(unknown) did not panic")
		}
	}()
	workload.ByName("no-such-app")
}

func TestWorkingSetsMatchTypes(t *testing.T) {
	top := hw.I73770()
	for _, s := range workload.Suite() {
		switch s.Expected {
		case vcputype.LoLCF:
			if s.Prof.WSS > top.L2.Size {
				t.Errorf("%s (LoLCF): WSS %d exceeds L2 %d", s.Name, s.Prof.WSS, top.L2.Size)
			}
		case vcputype.LLCF:
			if s.Prof.WSS <= top.L2.Size || s.Prof.WSS > top.LLC.Size {
				t.Errorf("%s (LLCF): WSS %d not in (L2, LLC]", s.Name, s.Prof.WSS)
			}
		case vcputype.LLCO:
			if s.Prof.WSS <= top.LLC.Size {
				t.Errorf("%s (LLCO): WSS %d does not overflow LLC %d", s.Name, s.Prof.WSS, top.LLC.Size)
			}
			if !s.Prof.Streaming {
				t.Errorf("%s (LLCO): not streaming", s.Name)
			}
		}
	}
}

func TestDeployShapes(t *testing.T) {
	h := xen.New(hw.I73770(), credit.New(), 3, xen.WithGuestPCPUs([]hw.PCPUID{0, 1, 2, 3}))
	rng := sim.NewRNG(3)

	cpu := workload.Deploy(h, workload.ByName("bzip2"), "", rng)
	if len(cpu.Dom.VCPUs) != 1 {
		t.Errorf("CPU app deployed with %d vCPUs, want 1", len(cpu.Dom.VCPUs))
	}

	lock := workload.Deploy(h, workload.ByName("facesim"), "", rng)
	if len(lock.Dom.VCPUs) != 4 {
		t.Errorf("PARSEC app deployed with %d vCPUs, want 4", len(lock.Dom.VCPUs))
	}
	if len(lock.Locks) != 1 {
		t.Errorf("lock app has %d locks, want 1", len(lock.Locks))
	}

	web := workload.Deploy(h, workload.SPECWeb2009(), "x", rng)
	if len(web.Servers) != 1 {
		t.Errorf("web app has %d servers, want 1", len(web.Servers))
	}
	if !web.IsLatencyApp() || cpu.IsLatencyApp() {
		t.Error("IsLatencyApp misclassifies")
	}
	if web.Dom.Name != "SPECweb2009-x" {
		t.Errorf("instance naming: %q", web.Dom.Name)
	}
}

func TestDeploymentRunsAndCountsJobs(t *testing.T) {
	h := xen.New(hw.I73770(), credit.New(), 5, xen.WithGuestPCPUs([]hw.PCPUID{0}))
	rng := sim.NewRNG(5)
	d := workload.Deploy(h, workload.ByName("hmmer"), "", rng)
	h.Run(2 * sim.Second)
	snapA := d.Snapshot(h.Engine.Now())
	h.Run(4 * sim.Second)
	snapB := d.Snapshot(h.Engine.Now())
	if snapB.Jobs <= snapA.Jobs {
		t.Errorf("no jobs completed between snapshots: %d -> %d", snapA.Jobs, snapB.Jobs)
	}
	// Solo VM on a pCPU crunching 10ms jobs: ~100/s.
	rate := float64(snapB.Jobs-snapA.Jobs) / 2
	if rate < 85 || rate > 110 {
		t.Errorf("solo hmmer rate %.1f jobs/s, want ~100", rate)
	}
}

func TestMicroBenchmarksMatchTable1(t *testing.T) {
	top := hw.I73770()
	web := workload.MicroWeb(false)
	if web.CGI.WSS != 0 {
		t.Error("exclusive micro web must have no CGI")
	}
	hetero := workload.MicroWeb(true)
	if hetero.CGI.WSS == 0 {
		t.Error("heterogeneous micro web must have CGI")
	}
	kb := workload.MicroKernbench(4)
	if kb.Threads != 4 || kb.Expected != vcputype.ConSpin {
		t.Errorf("kernbench: %+v", kb)
	}
	llcf := workload.MicroListWalk(top, vcputype.LLCF)
	if llcf.Prof.WSS != top.LLC.Size/2 {
		t.Errorf("LLCF walk WSS %d, want half the LLC (paper 3.4.2)", llcf.Prof.WSS)
	}
	lolcf := workload.MicroListWalk(top, vcputype.LoLCF)
	if lolcf.Prof.WSS != top.L2.Size*9/10 {
		t.Errorf("LoLCF walk WSS %d, want 90%% of L2", lolcf.Prof.WSS)
	}
	llco := workload.MicroListWalk(top, vcputype.LLCO)
	if llco.Prof.WSS <= top.LLC.Size {
		t.Errorf("LLCO walk WSS %d must overflow the LLC", llco.Prof.WSS)
	}
	defer func() {
		if recover() == nil {
			t.Error("MicroListWalk(IOInt) did not panic")
		}
	}()
	workload.MicroListWalk(top, vcputype.IOInt)
}

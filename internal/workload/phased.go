package workload

import (
	"fmt"

	"aqlsched/internal/cache"
	"aqlsched/internal/guest"
	"aqlsched/internal/hw"
	"aqlsched/internal/iodev"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/xen"
)

// AppPhase is one leg of a phased application's behaviour cycle. The
// program cycles through its spec's phases forever: phase k lasts Dur,
// then phase k+1 begins (wrapping around), all measured from the VM's
// deployment time. The phase's Type is the ground truth the adaptation
// diagnostics compare the vTRS's recognized type against.
//
// Compute phases (LoLCF/LLCF/LLCO) run a CPUBound-style job stream with
// the phase's Prof and JobWork. IOInt phases serve open-loop requests
// at Rate with Service time per request (the deployment runs the load
// source only while an IO phase is active). ConSpin phases are not
// supported: a single-threaded phased VM has nobody to contend with.
type AppPhase struct {
	// Dur is the phase length (> 0), from the VM's deployment clock.
	Dur sim.Time
	// Type is the ground-truth vCPU type while this phase is active.
	Type vcputype.Type

	// Prof / JobWork configure compute phases.
	Prof    cache.Profile
	JobWork sim.Time

	// Rate / Service configure IOInt phases.
	Rate    float64
	Service sim.Time
}

// ValidatePhaseDefs checks the definition-level invariants of a phase
// cycle — the parts a generator's phase list must already satisfy
// before per-VM behaviour knobs are drawn: at least two phases, each
// with a positive duration and a supported, known type.
func ValidatePhaseDefs(phases []AppPhase) error {
	if len(phases) < 2 {
		return fmt.Errorf("workload: a phase cycle needs at least 2 phases, got %d", len(phases))
	}
	for i, p := range phases {
		switch {
		case p.Dur <= 0:
			return fmt.Errorf("workload: phase %d has non-positive duration %v", i, p.Dur)
		case p.Type == vcputype.ConSpin:
			return fmt.Errorf("workload: phase %d: ConSpin phases are not supported (single-threaded phased VM)", i)
		case p.Type < 0 || p.Type > vcputype.LoLCF:
			return fmt.Errorf("workload: phase %d: unknown type %v", i, p.Type)
		}
	}
	return nil
}

// ValidatePhases rejects unusable phase schedules: the definition
// checks of ValidatePhaseDefs plus the behaviour knobs a deployable
// phase needs (IO phases a rate, compute phases work and a footprint).
func ValidatePhases(phases []AppPhase) error {
	if len(phases) == 0 {
		return nil
	}
	if err := ValidatePhaseDefs(phases); err != nil {
		return err
	}
	for i, p := range phases {
		switch {
		case p.Type == vcputype.IOInt && p.Rate <= 0:
			return fmt.Errorf("workload: phase %d: IOInt phase needs a positive request rate", i)
		case p.Type != vcputype.IOInt && (p.JobWork <= 0 || p.Prof.WSS <= 0):
			return fmt.Errorf("workload: phase %d: compute phase needs positive JobWork and WSS", i)
		}
	}
	return nil
}

// phaseCycle reports the total cycle length.
func phaseCycle(phases []AppPhase) sim.Time {
	var c sim.Time
	for _, p := range phases {
		c += p.Dur
	}
	return c
}

// PhaseAt reports the active phase index for a clock value rel
// (time since deployment plus the spec's PhaseOffset, cycling).
func PhaseAt(phases []AppPhase, offset, rel sim.Time) int {
	cycle := phaseCycle(phases)
	if cycle <= 0 {
		return 0
	}
	rel = (rel + offset) % cycle
	if rel < 0 {
		rel += cycle
	}
	for i, p := range phases {
		if rel < p.Dur {
			return i
		}
		rel -= p.Dur
	}
	return len(phases) - 1
}

// TypeAt reports the spec's ground-truth vCPU type at time rel since
// deployment: the active phase's type for phased apps, Expected
// otherwise.
func (s *AppSpec) TypeAt(rel sim.Time) vcputype.Type {
	if len(s.Phases) == 0 {
		return s.Expected
	}
	return s.Phases[PhaseAt(s.Phases, s.PhaseOffset, rel)].Type
}

// PhasedProgram drives the single worker thread of a phased VM: at
// every action boundary it re-reads the deployment clock and behaves
// per the active phase — batch jobs during compute phases, request
// service during IO phases. Phase flips therefore take effect within
// one job (a few ms), far below the 30 ms monitoring period whose
// granularity the adaptation metrics are measured at.
type PhasedProgram struct {
	Phases []AppPhase
	Offset sim.Time
	Base   sim.Time // deployment time
	Srv    *iodev.Server

	// JobSleep/SleepEveryJobs pace housekeeping pauses during compute
	// phases (see CPUBound); they also bound how long the thread can go
	// without re-reading the clock.
	JobSleep       sim.Time
	SleepEveryJobs int

	serving  bool // an IO request is being processed
	arrived  sim.Time
	sleeping bool
	count    int
}

// NewPhasedProgram builds the program; srv may be nil when no phase is
// IOInt.
func NewPhasedProgram(phases []AppPhase, offset, base sim.Time, srv *iodev.Server) *PhasedProgram {
	every := int(DefaultSleepSpacing / (5 * sim.Millisecond))
	return &PhasedProgram{
		Phases:         phases,
		Offset:         offset,
		Base:           base,
		Srv:            srv,
		JobSleep:       DefaultJobSleep,
		SleepEveryJobs: every,
	}
}

// Next implements guest.Program.
func (p *PhasedProgram) Next(t *guest.Thread, now sim.Time) guest.Action {
	if p.serving {
		// The in-flight request finished: record and look again.
		p.serving = false
		p.Srv.Complete(p.arrived, now)
		t.Jobs++
	}
	ph := p.Phases[PhaseAt(p.Phases, p.Offset, now-p.Base)]
	if ph.Type == vcputype.IOInt {
		// Serve whatever is queued; otherwise wait for the next event.
		// Wake-ups can be spurious (phase-boundary nudges, stale events
		// from a previous IO phase), so always re-check the queue.
		if p.Srv.Pending() > 0 {
			p.arrived = p.Srv.Take()
			p.serving = true
			return guest.Action{Kind: guest.ActCompute, Work: ph.Service, Prof: ph.Prof}
		}
		return guest.Action{Kind: guest.ActWaitIO, Port: p.Srv.Port}
	}
	// Compute phase: a CPUBound-style job stream with occasional
	// housekeeping pauses (the pause also re-reads the clock, so a
	// compute phase can never pin the thread past a flip for long).
	if p.sleeping {
		p.sleeping = false
		return guest.Action{Kind: guest.ActCompute, Work: ph.JobWork, Prof: ph.Prof}
	}
	t.Jobs++
	p.count++
	if p.JobSleep > 0 && p.SleepEveryJobs > 0 && p.count%p.SleepEveryJobs == 0 {
		p.sleeping = true
		return guest.Action{Kind: guest.ActSleep, Dur: p.JobSleep}
	}
	return guest.Action{Kind: guest.ActCompute, Work: ph.JobWork, Prof: ph.Prof}
}

// SynthesizePhases draws one behaviour leg per phase definition from
// the config's knob ranges — the phased analogue of Synthesize. The
// result is a pure function of the RNG state, so generated dynamic
// populations stay reproducible at any worker count.
func (c GenConfig) SynthesizePhases(rng *sim.RNG, defs []AppPhase, topo *hw.Topology) []AppPhase {
	out := make([]AppPhase, len(defs))
	for i, d := range defs {
		ph := AppPhase{Dur: d.Dur, Type: d.Type}
		switch d.Type {
		case vcputype.IOInt:
			ph.Rate = c.IORate.draw(rng)
			ph.Service = c.Service.drawTime(rng) * sim.Microsecond
			ph.Prof = prof(rng, Range{96, 256}, Range{0.2, 0.4})
		default:
			s := c.Synthesize(rng, d.Type, topo)
			ph.Prof = s.Prof
			ph.JobWork = s.JobWork
		}
		out[i] = ph
	}
	return out
}

// maxPhaseRate reports the largest IO rate across phases (0 when no IO
// phase exists).
func maxPhaseRate(phases []AppPhase) float64 {
	max := 0.0
	for _, p := range phases {
		if p.Type == vcputype.IOInt && p.Rate > max {
			max = p.Rate
		}
	}
	return max
}

// untilNextBoundary reports the time until the next phase edge from
// clock value rel (time since deployment; the spec offset is applied
// inside).
func untilNextBoundary(phases []AppPhase, offset, rel sim.Time) sim.Time {
	cycle := phaseCycle(phases)
	pos := (rel + offset) % cycle
	if pos < 0 {
		pos += cycle
	}
	var acc sim.Time
	for _, p := range phases {
		acc += p.Dur
		if pos < acc {
			return acc - pos
		}
	}
	return cycle - pos
}

// deployPhased installs a phased VM: one vCPU, one worker thread
// driven by a PhasedProgram, one request server shared by every IO
// phase, and a per-IO-phase Poisson source gated on phase activity by
// a boundary ticker. The ticker consumes no randomness and the sources
// fork their RNGs at deployment, so the whole lifecycle is a pure
// function of (spec, rng, deploy time).
func deployPhased(h *xen.Hypervisor, spec AppSpec, name string, d *Deployment, rng *sim.RNG) {
	base := h.Engine.Now()
	d.Dom = h.CreateDomain(name, 0, 0, 1)
	needIO := maxPhaseRate(spec.Phases) > 0

	var srv *iodev.Server
	srcs := make([]*iodev.PoissonSource, len(spec.Phases))
	if needIO {
		srv = iodev.NewServer(name+".http", 1)
		d.Servers = append(d.Servers, srv)
		for i, ph := range spec.Phases {
			if ph.Type == vcputype.IOInt {
				src := iodev.NewPoissonSource(h, d.Dom, srv, ph.Rate,
					rng.Fork(uint64(h.DomainsEverCreated())*16+uint64(i)+7))
				srcs[i] = src
				d.sources = append(d.sources, src)
			}
		}
	}

	prog := NewPhasedProgram(spec.Phases, spec.PhaseOffset, base, srv)
	t := d.Dom.OS.Spawn(name+".phased", 0, needIO, prog, base)
	d.Threads = append(d.Threads, t)
	d.Workers = append(d.Workers, t)

	// Boundary ticker: (de)activate the phase's source and nudge a
	// thread parked in an IO wait so compute phases begin promptly.
	// Teardown (Deployment.Stop) ends the chain.
	cur := -1
	stopped := false
	d.stops = append(d.stops, func() { stopped = true })
	var tick sim.EventFunc
	tick = func(now sim.Time) {
		if stopped {
			return
		}
		rel := now - base
		i := PhaseAt(spec.Phases, spec.PhaseOffset, rel)
		if i != cur {
			if cur >= 0 && srcs[cur] != nil {
				srcs[cur].Stop()
				srv.DropPending()
			}
			if srcs[i] != nil {
				srcs[i].Start()
			}
			if cur >= 0 && srv != nil {
				// Spurious-wake nudge; PhasedProgram re-checks the queue.
				d.Dom.OS.DeliverIO(srv.Port, now)
			}
			cur = i
		}
		h.Engine.After(untilNextBoundary(spec.Phases, spec.PhaseOffset, rel), tick)
	}
	tick(base)
}

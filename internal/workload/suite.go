package workload

import (
	"fmt"

	"aqlsched/internal/cache"
	"aqlsched/internal/guest"
	"aqlsched/internal/hw"
	"aqlsched/internal/iodev"
	"aqlsched/internal/metrics"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/xen"
)

// Kind classifies how an application is deployed.
type Kind int

const (
	// KindCPU: batch single-thread CPU job stream (SPEC CPU2006-like).
	KindCPU Kind = iota
	// KindLock: multi-threaded, spin-lock synchronized (PARSEC-like).
	KindLock
	// KindWeb: open-loop request service plus CGI background work
	// (SPECweb2009-like; the heterogeneous workload of Fig. 2(b)).
	KindWeb
	// KindMail: closed-loop request service (SPECmail2009-like).
	KindMail
)

// AppSpec describes one benchmark application synthetically: only the
// type-relevant behaviour (working set, LLC traffic, lock rates, IO
// rates) is modelled, which is exactly what the scheduler reacts to.
type AppSpec struct {
	Name string
	// Expected is the type the paper's vTRS detected (Table 3).
	Expected vcputype.Type
	Kind     Kind

	// Prof is the memory profile of the app's main compute.
	Prof cache.Profile
	// Steady marks pure compute loops with no housekeeping pauses
	// (SPEC CPU-style): the vCPU never blocks between jobs.
	Steady bool
	// JobWork is the ideal time per batch job (KindCPU) or per CGI
	// job (KindWeb background).
	JobWork sim.Time

	// Threads / Gap / Hold configure KindLock applications.
	Threads int
	Gap     sim.Time
	Hold    sim.Time
	// BarrierEvery, when positive, makes each lock thread signal its
	// ring successor and wait on its predecessor every that many cycles
	// (a traveling dependency wave, see LockWorker).
	BarrierEvery int

	// Rate / Service configure request service (KindWeb open loop).
	Rate    float64
	Service sim.Time
	// CGI is the background compute profile for heterogeneous web
	// serving; a zero WSS disables the CGI thread (exclusive IO).
	CGI cache.Profile

	// Clients / Think configure KindMail closed loops.
	Clients int
	Think   sim.Time

	// StartJitter staggers thread/source start uniformly in
	// [0, StartJitter]. Real VMs never boot in lockstep; without
	// jitter, equal-length slices on different pCPUs rotate in perfect
	// synchrony and lock-holder preemption artificially disappears.
	StartJitter sim.Time

	// Phases, when non-empty, makes the application dynamic: a
	// single-vCPU VM whose behaviour cycles through the phases forever
	// (Kind is ignored). See AppPhase and PhasedProgram.
	Phases []AppPhase
	// PhaseOffset shifts the VM into its phase cycle, so colocated
	// phased VMs need not flip in lockstep.
	PhaseOffset sim.Time
}

// Deployment is a running instance of an AppSpec inside one VM.
type Deployment struct {
	Spec AppSpec
	// DeployedAt is when Deploy ran — the origin of the VM's phase
	// clock and of churn throughput windows.
	DeployedAt sim.Time
	Dom        *xen.Domain
	Threads    []*guest.Thread
	// Workers lists the threads whose Jobs define the app's throughput
	// metric (excludes background/ballast threads).
	Workers []*guest.Thread
	Servers []*iodev.Server
	Locks   []*guest.SpinLock

	sources []source
	stops   []func()
}

type source interface {
	Start()
	Stop()
}

// Deploy creates a VM for spec and installs its threads, devices and
// load sources. Threads and sources start within spec.StartJitter of
// now (staggered deterministically from rng).
func Deploy(h *xen.Hypervisor, spec AppSpec, instance string, rng *sim.RNG) *Deployment {
	name := spec.Name
	if instance != "" {
		name = fmt.Sprintf("%s-%s", spec.Name, instance)
	}
	d := &Deployment{Spec: spec, DeployedAt: h.Engine.Now()}
	jrng := rng.Fork(uint64(h.DomainsEverCreated()) + 101)
	delay := func() sim.Time {
		if spec.StartJitter <= 0 {
			return 0
		}
		return jrng.UniformTime(0, spec.StartJitter)
	}
	spawn := func(tname string, cpu int, irq bool, worker bool, prog guest.Program) {
		dd := delay()
		dom := d.Dom
		if dd == 0 {
			t := dom.OS.Spawn(tname, cpu, irq, prog, h.Engine.Now())
			d.Threads = append(d.Threads, t)
			if worker {
				d.Workers = append(d.Workers, t)
			}
			return
		}
		h.Engine.After(dd, func(now sim.Time) {
			t := dom.OS.Spawn(tname, cpu, irq, prog, now)
			d.Threads = append(d.Threads, t)
			if worker {
				d.Workers = append(d.Workers, t)
			}
		})
	}
	if len(spec.Phases) > 0 {
		if err := ValidatePhases(spec.Phases); err != nil {
			panic(err.Error())
		}
		deployPhased(h, spec, name, d, rng)
		return d
	}
	switch spec.Kind {
	case KindCPU:
		d.Dom = h.CreateDomain(name, 0, 0, 1)
		w := NewCPUBound(spec.Prof, spec.JobWork)
		if spec.Steady {
			w.JobSleep = 0
		}
		spawn(name+".worker", 0, false, true, w)

	case KindLock:
		n := spec.Threads
		if n <= 0 {
			n = 4
		}
		d.Dom = h.CreateDomain(name, 0, 0, n)
		lock := guest.NewSpinLock(name + ".lock")
		d.Locks = append(d.Locks, lock)
		// Ring dependency semaphores, seeded with one credit so the
		// wave flows (each worker may run one join-interval ahead of
		// its predecessor).
		var sems []*guest.Semaphore
		if spec.BarrierEvery > 0 {
			for i := 0; i < n; i++ {
				sems = append(sems, guest.NewSemaphore(fmt.Sprintf("%s.ring%d", name, i), 1))
			}
		}
		for i := 0; i < n; i++ {
			w := NewLockWorker(lock, spec.Gap, spec.Hold, spec.Prof)
			w.Seed = rng.Fork(uint64(i) + 31).Uint64()
			if sems != nil {
				w.NextSem = sems[(i+1)%n]
				w.PrevSem = sems[i]
				w.JoinEvery = spec.BarrierEvery
			}
			spawn(fmt.Sprintf("%s.w%d", name, i), i, false, true, w)
			// With ring joins enabled the vCPU would block at joins, so
			// background jobs keep it heterogeneous (BOOST must not
			// re-align the gang — the Section 3.4 argument). Without
			// joins the spinning workers already never block.
			if spec.BarrierEvery > 0 {
				bg := NewCPUBound(spec.Prof, 5*sim.Millisecond)
				spawn(fmt.Sprintf("%s.bg%d", name, i), i, false, false, bg)
			}
		}

	case KindWeb:
		d.Dom = h.CreateDomain(name, 0, 0, 1)
		srv := iodev.NewServer(name+".http", 1)
		d.Servers = append(d.Servers, srv)
		spawn(name+".handler", 0, true, true, NewHandler(srv, spec.Service, spec.Prof))
		if spec.CGI.WSS > 0 {
			cgi := NewCPUBound(spec.CGI, spec.JobWork)
			cgi.JobSleep = 0 // CGI load never idles: the vCPU must stay heterogeneous
			spawn(name+".cgi", 0, false, false, cgi)
		}
		src := iodev.NewPoissonSource(h, d.Dom, srv, spec.Rate, rng.Fork(uint64(h.DomainsEverCreated())))
		d.sources = append(d.sources, src)
		h.Engine.After(delay(), func(sim.Time) { src.Start() })

	case KindMail:
		d.Dom = h.CreateDomain(name, 0, 0, 1)
		srv := iodev.NewServer(name+".smtp", 1)
		d.Servers = append(d.Servers, srv)
		spawn(name+".handler", 0, true, true, NewHandler(srv, spec.Service, spec.Prof))
		if spec.CGI.WSS > 0 {
			idx := NewCPUBound(spec.CGI, spec.JobWork)
			idx.JobSleep = 0
			spawn(name+".index", 0, false, false, idx)
		}
		src := iodev.NewClosedLoopSource(h, d.Dom, srv, spec.Clients, spec.Think, rng.Fork(uint64(h.DomainsEverCreated())))
		d.sources = append(d.sources, src)
		h.Engine.After(delay(), func(sim.Time) { src.Start() })

	default:
		panic(fmt.Sprintf("workload: unknown kind %d", spec.Kind))
	}
	return d
}

// Jobs sums completed jobs across the deployment's worker threads.
func (d *Deployment) Jobs() uint64 {
	var n uint64
	ts := d.Workers
	if len(ts) == 0 {
		ts = d.Threads
	}
	for _, t := range ts {
		n += t.Jobs
	}
	return n
}

// Snapshot captures (now, jobs) for throughput windows.
func (d *Deployment) Snapshot(now sim.Time) metrics.JobSnapshot {
	return metrics.JobSnapshot{At: now, Jobs: d.Jobs()}
}

// ResetLatencies clears latency histograms (cuts off warm-up).
func (d *Deployment) ResetLatencies() {
	for _, s := range d.Servers {
		s.Lat.Reset()
	}
}

// MeanLatency reports the mean request latency across servers (IO apps).
func (d *Deployment) MeanLatency() sim.Time {
	var sum sim.Time
	var n int
	for _, s := range d.Servers {
		if s.Lat.Count() > 0 {
			sum += s.Lat.Mean() * sim.Time(s.Lat.Count())
			n += s.Lat.Count()
		}
	}
	if n == 0 {
		return 0
	}
	return sum / sim.Time(n)
}

// IsLatencyApp reports whether the deployment's performance metric is
// latency (true) or throughput (false). Phased applications always
// report throughput: their job counter (compute jobs + served
// requests) is well-defined across behaviour flips, mean latency over
// intermittent IO phases is not.
func (d *Deployment) IsLatencyApp() bool {
	if len(d.Spec.Phases) > 0 {
		return false
	}
	return d.Spec.Kind == KindWeb || d.Spec.Kind == KindMail
}

// Stop quiesces the deployment's load sources (VM teardown): no new
// requests are issued; in-flight work settles through the normal paths.
func (d *Deployment) Stop() {
	for _, s := range d.sources {
		s.Stop()
	}
	for _, f := range d.stops {
		f()
	}
}

// --- Calibration micro-benchmarks (Table 1) ------------------------------

// MicroWeb returns the Wordpress-like IOInt micro-benchmark. hetero adds
// the CGI background thread (the heterogeneous workload of Fig. 2(b)).
func MicroWeb(hetero bool) AppSpec {
	s := AppSpec{
		Name:     "wordpress",
		Expected: vcputype.IOInt,
		Kind:     KindWeb,
		Prof:     cache.Profile{WSS: 128 * hw.KB, RefRate: 0.2},
		Rate:     400,
		Service:  250 * sim.Microsecond,
	}
	if hetero {
		s.Name = "wordpress+cgi"
		s.CGI = cache.Profile{WSS: 192 * hw.KB, RefRate: 0.3}
		s.JobWork = 5 * sim.Millisecond
	}
	return s
}

// MicroKernbench returns the kernbench-like ConSpin micro-benchmark
// with the given thread count (the paper uses 4).
func MicroKernbench(threads int) AppSpec {
	return AppSpec{
		Name:         "kernbench",
		Expected:     vcputype.ConSpin,
		Kind:         KindLock,
		Prof:         cache.Profile{WSS: 192 * hw.KB, RefRate: 0.4},
		Threads:      threads,
		Gap:          150 * sim.Microsecond,
		Hold:         12 * sim.Microsecond,
		BarrierEvery: 0, // see LockWorker: ring joins available, off by default
	}
}

// MicroListWalk returns a Drepper-style list-walk micro-benchmark
// configured for the given type: LoLCF uses 90% of L2, LLCF half the
// LLC, LLCO twice the LLC (Section 3.4.2).
func MicroListWalk(top *hw.Topology, t vcputype.Type) AppSpec {
	switch t {
	case vcputype.LoLCF:
		return AppSpec{
			Name: "listwalk-l2", Expected: vcputype.LoLCF, Kind: KindCPU, Steady: true,
			Prof:    cache.Profile{WSS: top.L2.Size * 9 / 10, RefRate: 0.2},
			JobWork: 10 * sim.Millisecond,
		}
	case vcputype.LLCF:
		return AppSpec{
			Name: "listwalk-llc", Expected: vcputype.LLCF, Kind: KindCPU, Steady: true,
			Prof:    cache.Profile{WSS: top.LLC.Size / 2, RefRate: 25, MissFloor: 0.01, ReuseFactor: 5},
			JobWork: 2 * sim.Millisecond,
		}
	case vcputype.LLCO:
		return AppSpec{
			Name: "listwalk-over", Expected: vcputype.LLCO, Kind: KindCPU, Steady: true,
			Prof:    cache.Profile{WSS: top.LLC.Size * 2, RefRate: 30, Streaming: true, StreamMissRatio: 0.9},
			JobWork: 10 * sim.Millisecond,
		}
	default:
		panic(fmt.Sprintf("workload: no list walk for type %s", t))
	}
}

package workload

import (
	"fmt"

	"aqlsched/internal/cache"
	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
)

// The reference benchmark suite as synthetic profiles. Working-set
// sizes, LLC traffic, lock behaviour and IO rates are chosen so that
// each application lands in the type the paper's vTRS detected for it
// (Table 3). Absolute speeds are not calibrated against SPEC/PARSEC —
// only the type-relevant behaviour matters to the scheduler.
//
// SPEC CPU2006 (paper Table 3):
//
//	LLCF:  astar, xalancbmk ("Xatanbmck" in the paper), bzip2, gcc,
//	       omnetpp ("omntp")
//	LoLCF: hmmer, gobmk, perlbench, sjeng, h264ref
//	LLCO:  mcf, libquantum
//
// PARSEC: all ConSpin (bodytrack, blackscholes, canneal, dedup,
// facesim, ferret, fluidanimate, freqmine, raytrace, streamcluster,
// vips, x264).
//
// SPECweb2009 and SPECmail2009: IOInt.

// cpuSpec builds a KindCPU AppSpec.
func cpuSpec(name string, expected vcputype.Type, prof cache.Profile) AppSpec {
	return AppSpec{
		Name:     name,
		Expected: expected,
		Kind:     KindCPU,
		Prof:     prof,
		JobWork:  10 * sim.Millisecond,
		Steady:   true,
	}
}

// lockSpec builds a KindLock AppSpec (4 threads, the paper's kernbench
// configuration) with a per-frame barrier — PARSEC's worker-loop
// structure.
func lockSpec(name string, gap, hold sim.Time, prof cache.Profile) AppSpec {
	return AppSpec{
		Name:     name,
		Expected: vcputype.ConSpin,
		Kind:     KindLock,
		Prof:     prof,
		Threads:  4,
		Gap:      gap,
		Hold:     hold,
	}
}

// SPECWeb2009 is the internet-service benchmark: open-loop requests plus
// CGI-style dynamic content generation (heterogeneous, hence IOInt but
// never boost-eligible).
func SPECWeb2009() AppSpec {
	return AppSpec{
		Name:     "SPECweb2009",
		Expected: vcputype.IOInt,
		Kind:     KindWeb,
		Prof:     cache.Profile{WSS: 160 * hw.KB, RefRate: 0.3},
		Rate:     400,
		Service:  300 * sim.Microsecond,
		CGI:      cache.Profile{WSS: 200 * hw.KB, RefRate: 0.4},
		JobWork:  4 * sim.Millisecond,
	}
}

// SPECMail2009 is the corporate mail benchmark: a closed-loop client
// population and a mail-store indexing background task.
func SPECMail2009() AppSpec {
	return AppSpec{
		Name:     "SPECmail2009",
		Expected: vcputype.IOInt,
		Kind:     KindMail,
		Prof:     cache.Profile{WSS: 192 * hw.KB, RefRate: 0.3},
		Clients:  64,
		Think:    30 * sim.Millisecond,
		Service:  350 * sim.Microsecond,
		CGI:      cache.Profile{WSS: 160 * hw.KB, RefRate: 0.3},
		JobWork:  4 * sim.Millisecond,
	}
}

// SPECCPU2006 lists the SPEC CPU2006 programs the paper experiments
// with, in its Fig. 5 order.
func SPECCPU2006() []AppSpec {
	return []AppSpec{
		cpuSpec("hmmer", vcputype.LoLCF, cache.Profile{WSS: 120 * hw.KB, RefRate: 0.2}),
		cpuSpec("sjeng", vcputype.LoLCF, cache.Profile{WSS: 160 * hw.KB, RefRate: 0.25}),
		cpuSpec("bzip2", vcputype.LLCF, cache.Profile{WSS: 1200 * hw.KB, RefRate: 12, MissFloor: 0.01, ReuseFactor: 3}),
		cpuSpec("h264ref", vcputype.LoLCF, cache.Profile{WSS: 220 * hw.KB, RefRate: 0.5}),
		cpuSpec("mcf", vcputype.LLCO, cache.Profile{WSS: 20 * hw.MB, RefRate: 25, Streaming: true, StreamMissRatio: 0.85}),
		cpuSpec("omnetpp", vcputype.LLCF, cache.Profile{WSS: 1400 * hw.KB, RefRate: 13, MissFloor: 0.02, ReuseFactor: 3}),
		cpuSpec("astar", vcputype.LLCF, cache.Profile{WSS: 1 * hw.MB, RefRate: 10, MissFloor: 0.01, ReuseFactor: 3}),
		cpuSpec("libquantum", vcputype.LLCO, cache.Profile{WSS: 32 * hw.MB, RefRate: 35, Streaming: true, StreamMissRatio: 0.95}),
		cpuSpec("gobmk", vcputype.LoLCF, cache.Profile{WSS: 180 * hw.KB, RefRate: 0.3}),
		cpuSpec("perlbench", vcputype.LoLCF, cache.Profile{WSS: 200 * hw.KB, RefRate: 0.4}),
		cpuSpec("gcc", vcputype.LLCF, cache.Profile{WSS: 1500 * hw.KB, RefRate: 11, MissFloor: 0.02, ReuseFactor: 3}),
		cpuSpec("xalancbmk", vcputype.LLCF, cache.Profile{WSS: 1300 * hw.KB, RefRate: 12, MissFloor: 0.015, ReuseFactor: 3}),
	}
}

// PARSEC lists the PARSEC programs the paper experiments with, in its
// Fig. 5 order. All synchronize through spin-locks (ConSpin).
func PARSEC() []AppSpec {
	smallWS := cache.Profile{WSS: 192 * hw.KB, RefRate: 0.4}
	medWS := cache.Profile{WSS: 1 * hw.MB, RefRate: 3, MissFloor: 0.01, ReuseFactor: 5}
	return []AppSpec{
		lockSpec("bodytrack", 150*sim.Microsecond, 10*sim.Microsecond, smallWS),
		lockSpec("blackscholes", 400*sim.Microsecond, 6*sim.Microsecond, smallWS),
		lockSpec("canneal", 250*sim.Microsecond, 12*sim.Microsecond, medWS),
		lockSpec("dedup", 120*sim.Microsecond, 8*sim.Microsecond, smallWS),
		lockSpec("facesim", 200*sim.Microsecond, 15*sim.Microsecond, medWS),
		lockSpec("ferret", 180*sim.Microsecond, 10*sim.Microsecond, smallWS),
		lockSpec("fluidanimate", 250*sim.Microsecond, 12*sim.Microsecond, smallWS),
		lockSpec("freqmine", 300*sim.Microsecond, 10*sim.Microsecond, medWS),
		lockSpec("raytrace", 350*sim.Microsecond, 8*sim.Microsecond, smallWS),
		lockSpec("streamcluster", 200*sim.Microsecond, 14*sim.Microsecond, medWS),
		lockSpec("vips", 250*sim.Microsecond, 9*sim.Microsecond, smallWS),
		lockSpec("x264", 220*sim.Microsecond, 11*sim.Microsecond, smallWS),
	}
}

// Suite returns every reference application: SPECweb2009, SPECmail2009,
// SPEC CPU2006 and PARSEC (the paper's full evaluation set).
func Suite() []AppSpec {
	var out []AppSpec
	out = append(out, SPECWeb2009(), SPECMail2009())
	out = append(out, SPECCPU2006()...)
	out = append(out, PARSEC()...)
	return out
}

// Lookup finds an application spec by name in the full suite,
// reporting an error for unknown names. This is the resolution entry
// point for user-supplied names (sweep spec files, the catalog), where
// a typo must surface as a clean error, not a panic.
func Lookup(name string) (AppSpec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return AppSpec{}, fmt.Errorf("workload: unknown application %q", name)
}

// ByName is Lookup for internal callers with statically known names:
// it panics on unknown names.
func ByName(name string) AppSpec {
	s, err := Lookup(name)
	if err != nil {
		panic(err.Error())
	}
	return s
}

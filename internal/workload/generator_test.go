package workload

import (
	"reflect"
	"strings"
	"testing"

	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
)

// TestSynthesizeDeterministic: same RNG fork, same draw.
func TestSynthesizeDeterministic(t *testing.T) {
	topo := hw.I73770()
	for _, typ := range vcputype.All() {
		a := Synthesize(sim.NewRNG(7).Fork(3), typ, topo)
		b := Synthesize(sim.NewRNG(7).Fork(3), typ, topo)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: same seed diverged:\n%+v\n%+v", typ, a, b)
		}
		c := Synthesize(sim.NewRNG(7).Fork(4), typ, topo)
		if reflect.DeepEqual(a, c) {
			t.Errorf("%v: different forks drew identical specs", typ)
		}
	}
}

// TestSynthesizeRegimes: each synthesized app must land in its target
// type's behavioural regime on the machine it was drawn for.
func TestSynthesizeRegimes(t *testing.T) {
	topo := hw.I73770()
	cfg := DefaultGenConfig()
	rng := sim.NewRNG(0xBEEF)
	for i := 0; i < 50; i++ {
		for _, typ := range vcputype.All() {
			s := cfg.Synthesize(rng.Fork(uint64(i)), typ, topo)
			if s.Expected != typ {
				t.Fatalf("draw %d: expected type %v, got %v", i, typ, s.Expected)
			}
			if !strings.HasPrefix(s.Name, "syn-") {
				t.Fatalf("draw %d (%v): name %q", i, typ, s.Name)
			}
			switch typ {
			case vcputype.IOInt:
				if s.Kind != KindWeb || s.Rate < cfg.IORate.Lo || s.Rate >= cfg.IORate.Hi {
					t.Fatalf("IOInt out of regime: %+v", s)
				}
				if s.Service <= 0 || s.CGI.WSS <= 0 {
					t.Fatalf("IOInt missing service/CGI: %+v", s)
				}
			case vcputype.ConSpin:
				if s.Kind != KindLock || s.Threads < int(cfg.Threads.Lo) || s.Threads > int(cfg.Threads.Hi) {
					t.Fatalf("ConSpin out of regime: %+v", s)
				}
				if s.Hold <= 0 || s.Gap <= 0 {
					t.Fatalf("ConSpin without lock cadence: %+v", s)
				}
			case vcputype.LLCF:
				if s.Kind != KindCPU || s.Prof.WSS <= topo.L2.Size || s.Prof.WSS >= topo.LLC.Size {
					t.Fatalf("LLCF WSS %d outside (L2, LLC): %+v", s.Prof.WSS, s)
				}
			case vcputype.LLCO:
				if !s.Prof.Streaming || s.Prof.WSS < topo.LLC.Size {
					t.Fatalf("LLCO WSS %d does not overflow the LLC: %+v", s.Prof.WSS, s)
				}
			case vcputype.LoLCF:
				if s.Prof.WSS <= 0 || s.Prof.WSS >= topo.L2.Size {
					t.Fatalf("LoLCF WSS %d does not fit L2: %+v", s.Prof.WSS, s)
				}
			}
		}
	}
}

// TestSynthesizeScalesWithTopology: cache-relative footprints must track
// the machine's geometry, not the i7's.
func TestSynthesizeScalesWithTopology(t *testing.T) {
	big, err := hw.TopologyBuilder{Sockets: 2, CoresPerSocket: 8, LLCMB: 32}.Build()
	if err != nil {
		t.Fatal(err)
	}
	small := hw.I73770()
	// Same RNG state → same fraction drawn → footprint scales with LLC.
	a := Synthesize(sim.NewRNG(11), vcputype.LLCO, small)
	b := Synthesize(sim.NewRNG(11), vcputype.LLCO, big)
	if b.Prof.WSS <= a.Prof.WSS {
		t.Errorf("LLCO WSS did not scale with the LLC: %d on 8 MB vs %d on 32 MB", a.Prof.WSS, b.Prof.WSS)
	}
	if b.Prof.WSS < big.LLC.Size {
		t.Errorf("LLCO WSS %d does not overflow the 32 MB LLC", b.Prof.WSS)
	}
}

func TestLookup(t *testing.T) {
	s, err := Lookup("bzip2")
	if err != nil || s.Name != "bzip2" {
		t.Fatalf("Lookup(bzip2) = %+v, %v", s, err)
	}
	if _, err := Lookup("quake3"); err == nil || !strings.Contains(err.Error(), "quake3") {
		t.Errorf("Lookup(quake3) error = %v", err)
	}
	// ByName stays the panicking internal helper.
	defer func() {
		if recover() == nil {
			t.Error("ByName(quake3) did not panic")
		}
	}()
	ByName("quake3")
}

package workload

import (
	"fmt"
	"strings"

	"aqlsched/internal/cache"
	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
)

// Range bounds one synthesizer knob: float draws are uniform in
// [Lo, Hi); integer draws (thread counts) are uniform over the closed
// interval [Lo, Hi].
type Range struct {
	Lo, Hi float64
}

// draw returns a uniform variate in the range (Lo when degenerate).
func (r Range) draw(rng *sim.RNG) float64 {
	if r.Hi <= r.Lo {
		return r.Lo
	}
	return r.Lo + rng.Float64()*(r.Hi-r.Lo)
}

func (r Range) drawTime(rng *sim.RNG) sim.Time { return sim.Time(r.draw(rng)) }

func (r Range) drawInt(rng *sim.RNG) int {
	lo, hi := int(r.Lo), int(r.Hi)
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// GenConfig bounds the knobs Synthesize draws from, per target type:
// IO request rates and service times (IOInt), spin-lock thread counts
// and hold/gap durations (ConSpin), and working-set sizes relative to
// the machine's cache levels (the three cache types). The zero value is
// unusable; start from DefaultGenConfig.
type GenConfig struct {
	// IOInt: open-loop request rate (req/s) and per-request service
	// time (µs).
	IORate  Range
	Service Range

	// ConSpin: worker threads, inter-critical-section compute gap (µs)
	// and lock hold time (µs).
	Threads Range
	Gap     Range
	Hold    Range

	// Working-set sizes, relative to the target cache level:
	// LLCFWSS and LLCOWSS are fractions/multiples of the LLC,
	// LoLCFWSS a fraction of L2 (the paper's Section 3.4.2 regimes).
	LLCFWSS  Range
	LLCOWSS  Range
	LoLCFWSS Range
}

// DefaultGenConfig spans the behaviour regimes of the reference suite
// (Table 3): rates and footprints bracket the SPEC/PARSEC/SPECweb
// profiles in profiles.go without leaving each type's regime.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		IORate:   Range{150, 500},
		Service:  Range{200, 400}, // µs
		Threads:  Range{2, 6},
		Gap:      Range{120, 400}, // µs
		Hold:     Range{6, 16},    // µs
		LLCFWSS:  Range{0.15, 0.7},
		LLCOWSS:  Range{1.5, 3},
		LoLCFWSS: Range{0.4, 0.9},
	}
}

// Synthesize draws one application of the target type with the default
// knob ranges. See GenConfig.Synthesize.
func Synthesize(rng *sim.RNG, target vcputype.Type, topo *hw.Topology) AppSpec {
	return DefaultGenConfig().Synthesize(rng, target, topo)
}

// Synthesize draws a synthetic AppSpec whose type-relevant behaviour
// (IO rate, lock cadence, working set) lands in the target type's
// regime on the given machine. The result is a pure function of the
// RNG state, the target and the topology: callers that fork a fresh
// RNG per call (rng.Fork(i)) get reproducible, order-independent
// populations — the discipline the sweep layer relies on for
// byte-identical artifacts at any worker count.
func (c GenConfig) Synthesize(rng *sim.RNG, target vcputype.Type, topo *hw.Topology) AppSpec {
	name := "syn-" + strings.ToLower(target.String())
	switch target {
	case vcputype.IOInt:
		return AppSpec{
			Name:     name,
			Expected: vcputype.IOInt,
			Kind:     KindWeb,
			Rate:     c.IORate.draw(rng),
			Service:  c.Service.drawTime(rng) * sim.Microsecond,
			Prof:     prof(rng, Range{96, 256}, Range{0.2, 0.4}),
			CGI:      prof(rng, Range{128, 256}, Range{0.2, 0.4}),
			JobWork:  Range{3000, 6000}.drawTime(rng) * sim.Microsecond,
		}

	case vcputype.ConSpin:
		return AppSpec{
			Name:     name,
			Expected: vcputype.ConSpin,
			Kind:     KindLock,
			Prof:     prof(rng, Range{128, 256}, Range{0.3, 0.5}),
			Threads:  c.Threads.drawInt(rng),
			Gap:      c.Gap.drawTime(rng) * sim.Microsecond,
			Hold:     c.Hold.drawTime(rng) * sim.Microsecond,
		}

	case vcputype.LLCF:
		wss := int64(c.LLCFWSS.draw(rng) * float64(topo.LLC.Size))
		return AppSpec{
			Name:     name,
			Expected: vcputype.LLCF,
			Kind:     KindCPU,
			Steady:   true,
			Prof: cache.Profile{
				WSS:         wss,
				RefRate:     Range{8, 20}.draw(rng),
				MissFloor:   Range{0.01, 0.02}.draw(rng),
				ReuseFactor: float64(Range{3, 5}.drawInt(rng)),
			},
			JobWork: Range{2000, 10000}.drawTime(rng) * sim.Microsecond,
		}

	case vcputype.LLCO:
		wss := int64(c.LLCOWSS.draw(rng) * float64(topo.LLC.Size))
		return AppSpec{
			Name:     name,
			Expected: vcputype.LLCO,
			Kind:     KindCPU,
			Steady:   true,
			Prof: cache.Profile{
				WSS:             wss,
				RefRate:         Range{25, 35}.draw(rng),
				Streaming:       true,
				StreamMissRatio: Range{0.85, 0.95}.draw(rng),
			},
			JobWork: Range{4000, 12000}.drawTime(rng) * sim.Microsecond,
		}

	case vcputype.LoLCF:
		wss := int64(c.LoLCFWSS.draw(rng) * float64(topo.L2.Size))
		return AppSpec{
			Name:     name,
			Expected: vcputype.LoLCF,
			Kind:     KindCPU,
			Steady:   true,
			Prof: cache.Profile{
				WSS:     wss,
				RefRate: Range{0.2, 0.5}.draw(rng),
			},
			JobWork: Range{4000, 12000}.drawTime(rng) * sim.Microsecond,
		}
	}
	panic(fmt.Sprintf("workload: cannot synthesize type %v", target))
}

// prof draws a small cache profile: WSS in KB, reference rate.
func prof(rng *sim.RNG, wssKB, refRate Range) cache.Profile {
	return cache.Profile{
		WSS:     int64(wssKB.draw(rng)) * hw.KB,
		RefRate: refRate.draw(rng),
	}
}

package workload

import (
	"testing"

	"aqlsched/internal/cache"
	"aqlsched/internal/credit"
	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/xen"
)

func computePhase(dur sim.Time, t vcputype.Type, wss int64) AppPhase {
	return AppPhase{Dur: dur, Type: t, Prof: cache.Profile{WSS: wss, RefRate: 0.3}, JobWork: 2 * sim.Millisecond}
}

func ioPhase(dur sim.Time, rate float64) AppPhase {
	return AppPhase{Dur: dur, Type: vcputype.IOInt, Rate: rate, Service: 200 * sim.Microsecond,
		Prof: cache.Profile{WSS: 64 * hw.KB, RefRate: 0.2}}
}

func TestValidatePhases(t *testing.T) {
	ok := []AppPhase{
		computePhase(sim.Second, vcputype.LoLCF, 128*hw.KB),
		ioPhase(sim.Second, 200),
	}
	if err := ValidatePhases(ok); err != nil {
		t.Errorf("valid phases rejected: %v", err)
	}
	bad := [][]AppPhase{
		{computePhase(sim.Second, vcputype.LoLCF, 128*hw.KB)},                                  // single phase
		{computePhase(0, vcputype.LoLCF, 128*hw.KB), ioPhase(sim.Second, 200)},                 // zero duration
		{{Dur: sim.Second, Type: vcputype.ConSpin}, ioPhase(sim.Second, 200)},                  // ConSpin
		{{Dur: sim.Second, Type: vcputype.IOInt}, computePhase(sim.Second, vcputype.LoLCF, 1)}, // IO without rate
		{{Dur: sim.Second, Type: vcputype.LLCF}, ioPhase(sim.Second, 200)},                     // compute without work
	}
	for i, phases := range bad {
		if err := ValidatePhases(phases); err == nil {
			t.Errorf("bad phase set %d accepted", i)
		}
	}
}

func TestPhaseAtAndTypeAt(t *testing.T) {
	spec := AppSpec{Phases: []AppPhase{
		computePhase(1000*sim.Millisecond, vcputype.LoLCF, 128*hw.KB),
		computePhase(500*sim.Millisecond, vcputype.LLCO, 32*hw.MB),
	}}
	cases := []struct {
		rel  sim.Time
		want vcputype.Type
	}{
		{0, vcputype.LoLCF},
		{999 * sim.Millisecond, vcputype.LoLCF},
		{1000 * sim.Millisecond, vcputype.LLCO},
		{1499 * sim.Millisecond, vcputype.LLCO},
		{1500 * sim.Millisecond, vcputype.LoLCF}, // cycle wraps
		{2600 * sim.Millisecond, vcputype.LLCO},  // second cycle
	}
	for _, c := range cases {
		if got := spec.TypeAt(c.rel); got != c.want {
			t.Errorf("TypeAt(%v) = %v, want %v", c.rel, got, c.want)
		}
	}
	// Offset shifts the cycle.
	spec.PhaseOffset = 1000 * sim.Millisecond
	if got := spec.TypeAt(0); got != vcputype.LLCO {
		t.Errorf("offset TypeAt(0) = %v, want LLCO", got)
	}
	// Static specs report Expected.
	st := AppSpec{Expected: vcputype.LLCF}
	if got := st.TypeAt(42 * sim.Second); got != vcputype.LLCF {
		t.Errorf("static TypeAt = %v, want LLCF", got)
	}
}

// TestPhasedDeploymentSwitchesBehaviour runs a phased VM alone on one
// pCPU and checks that each phase produces its own signature: IO
// events only while the IO phase is active, compute jobs throughout.
func TestPhasedDeploymentSwitchesBehaviour(t *testing.T) {
	topo := hw.I73770()
	h := xen.New(topo, credit.New(), 1, xen.WithGuestPCPUs([]hw.PCPUID{0}))
	rng := sim.NewRNG(7)
	spec := AppSpec{
		Name: "phased",
		Phases: []AppPhase{
			computePhase(500*sim.Millisecond, vcputype.LoLCF, 128*hw.KB),
			ioPhase(500*sim.Millisecond, 400),
		},
	}
	d := Deploy(h, spec, "", rng)
	if len(d.Dom.VCPUs) != 1 || len(d.Workers) != 1 {
		t.Fatalf("phased VM has %d vCPUs / %d workers, want 1/1", len(d.Dom.VCPUs), len(d.Workers))
	}

	h.Run(500 * sim.Millisecond)
	v := d.Dom.VCPUs[0]
	ioAfterCompute := v.Counters.IOEvents
	jobsAfterCompute := d.Jobs()
	if jobsAfterCompute == 0 {
		t.Error("no compute jobs in the compute phase")
	}
	if ioAfterCompute != 0 {
		t.Errorf("%d IO events during the compute phase, want 0", ioAfterCompute)
	}

	h.Run(1000 * sim.Millisecond)
	ioAfterIO := v.Counters.IOEvents
	if ioAfterIO < 100 {
		t.Errorf("%d IO events during the IO phase, want ~200", ioAfterIO)
	}
	if d.Jobs() <= jobsAfterCompute {
		t.Error("no requests served during the IO phase")
	}
	if d.IsLatencyApp() {
		t.Error("phased VM must report throughput, not latency")
	}

	// Back in the compute phase: the IO source must be quiesced.
	h.Run(1400 * sim.Millisecond)
	ioAfterSecondCompute := v.Counters.IOEvents
	h.Run(1500 * sim.Millisecond)
	if grown := v.Counters.IOEvents - ioAfterSecondCompute; grown > 2 {
		t.Errorf("IO source still issuing in the compute phase (%d new events)", grown)
	}
}

// TestPhasedDeterminism: two identical deployments produce identical
// job and counter trajectories.
func TestPhasedDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		topo := hw.I73770()
		h := xen.New(topo, credit.New(), 9, xen.WithGuestPCPUs([]hw.PCPUID{0}))
		spec := AppSpec{
			Name: "phased",
			Phases: []AppPhase{
				ioPhase(300*sim.Millisecond, 300),
				computePhase(300*sim.Millisecond, vcputype.LLCO, 24*hw.MB),
			},
			PhaseOffset: 150 * sim.Millisecond,
		}
		d := Deploy(h, spec, "", sim.NewRNG(9))
		h.Run(2 * sim.Second)
		return d.Jobs(), d.Dom.VCPUs[0].Counters.IOEvents
	}
	j1, e1 := run()
	j2, e2 := run()
	if j1 != j2 || e1 != e2 {
		t.Errorf("phased runs diverged: jobs %d vs %d, events %d vs %d", j1, j2, e1, e2)
	}
}

func TestSynthesizePhases(t *testing.T) {
	defs := []AppPhase{
		{Dur: sim.Second, Type: vcputype.IOInt},
		{Dur: sim.Second, Type: vcputype.LLCF},
	}
	topo := hw.I73770()
	cfg := DefaultGenConfig()
	ph := cfg.SynthesizePhases(sim.NewRNG(3), defs, topo)
	if len(ph) != 2 {
		t.Fatalf("%d phases, want 2", len(ph))
	}
	if err := ValidatePhases(ph); err != nil {
		t.Errorf("synthesized phases invalid: %v", err)
	}
	if ph[0].Rate < cfg.IORate.Lo || ph[0].Rate >= cfg.IORate.Hi {
		t.Errorf("IO rate %v outside config range", ph[0].Rate)
	}
	if lo, hi := int64(float64(topo.LLC.Size)*cfg.LLCFWSS.Lo), int64(float64(topo.LLC.Size)*cfg.LLCFWSS.Hi); ph[1].Prof.WSS < lo || ph[1].Prof.WSS > hi {
		t.Errorf("LLCF WSS %d outside [%d, %d]", ph[1].Prof.WSS, lo, hi)
	}
	// Pure function of the RNG state.
	again := cfg.SynthesizePhases(sim.NewRNG(3), defs, topo)
	for i := range ph {
		if ph[i] != again[i] {
			t.Errorf("phase %d not reproducible: %+v vs %+v", i, ph[i], again[i])
		}
	}
}

// Package workload provides the guest programs and benchmark profiles
// used throughout the evaluation: the calibration micro-benchmarks of
// Table 1 (a Wordpress-like web server, a kernbench-like parallel build
// synchronizing through spin-locks, and Drepper-style list walks with
// LoLCF/LLCF/LLCO working sets) and synthetic profiles for the reference
// suites (SPEC CPU2006, PARSEC, SPECweb2009, SPECmail2009) matched to
// the type table the paper reports (Table 3).
package workload

import (
	"aqlsched/internal/cache"
	"aqlsched/internal/guest"
	"aqlsched/internal/iodev"
	"aqlsched/internal/sim"
)

// CPUBound is a batch program: an endless sequence of fixed-size jobs
// with a given memory profile. Thread.Jobs counts completed jobs, which
// is the throughput metric (the paper reports execution time; time per
// job is its reciprocal).
//
// JobSleep inserts a tiny blocking pause between jobs, standing in for
// guest timer ticks and kernel housekeeping. Besides realism it keeps
// vCPU schedules drifting: with zero blocking anywhere, equal-length
// slices rotate in permanent lockstep across pCPUs, an artificial
// regime no real machine stays in.
type CPUBound struct {
	Prof     cache.Profile
	JobWork  sim.Time
	JobSleep sim.Time
	// SleepEveryJobs spaces the pauses out; the pause must be much
	// rarer than the longest quantum under study or batch vCPUs would
	// never consume a full slice.
	SleepEveryJobs int

	started  bool
	sleeping bool
	count    int
}

// Housekeeping pause defaults: 150 µs roughly every 250 ms of work.
// The pause spacing must comfortably exceed the longest quantum under
// study (90 ms) or batch vCPUs would block before consuming full slices.
const (
	DefaultJobSleep     = 150 * sim.Microsecond
	DefaultSleepSpacing = 250 * sim.Millisecond
)

// NewCPUBound returns a batch program with jobWork ideal time per job
// and the default housekeeping pause cadence.
func NewCPUBound(prof cache.Profile, jobWork sim.Time) *CPUBound {
	every := 1
	if jobWork > 0 {
		every = int(DefaultSleepSpacing / jobWork)
		if every < 1 {
			every = 1
		}
	}
	return &CPUBound{
		Prof:           prof,
		JobWork:        jobWork,
		JobSleep:       DefaultJobSleep,
		SleepEveryJobs: every,
	}
}

// Next implements guest.Program.
func (c *CPUBound) Next(t *guest.Thread, now sim.Time) guest.Action {
	if c.sleeping {
		c.sleeping = false
		return guest.Action{Kind: guest.ActCompute, Work: c.JobWork, Prof: c.Prof}
	}
	if c.started {
		t.Jobs++
		c.count++
		if c.JobSleep > 0 && c.SleepEveryJobs > 0 && c.count%c.SleepEveryJobs == 0 {
			c.sleeping = true
			return guest.Action{Kind: guest.ActSleep, Dur: c.JobSleep}
		}
	}
	c.started = true
	return guest.Action{Kind: guest.ActCompute, Work: c.JobWork, Prof: c.Prof}
}

// LockWorker is one thread of a concurrent application synchronizing
// through spin-locks plus periodic blocking dependencies (kernbench-like:
// make jobs taking short kernel locks and waiting on compile/link
// dependencies; PARSEC-like: pipeline stages handing work downstream).
// Each cycle computes for Gap, then holds the lock for Hold inside a
// critical section. Every JoinEvery cycles the thread signals its ring
// successor and waits for its predecessor — a traveling dependency wave,
// deliberately NOT an all-to-all barrier: symmetric barriers let the
// gang self-align into co-scheduled windows, an artifact irregular real
// dependency graphs do not enjoy. One completed critical section counts
// as one job.
type LockWorker struct {
	Lock *guest.SpinLock
	Gap  sim.Time
	Hold sim.Time
	Prof cache.Profile
	// Ring dependency: every JoinEvery cycles, V(NextSem) then
	// P(PrevSem). Nil semaphores disable the ring.
	NextSem   *guest.Semaphore
	PrevSem   *guest.Semaphore
	JoinEvery int

	// Seed drives the per-cycle work jitter (deterministic xorshift).
	Seed uint64

	state  int
	cycles int
	rng    uint64
}

// NewLockWorker builds one worker of a spin-lock application.
func NewLockWorker(lock *guest.SpinLock, gap, hold sim.Time, prof cache.Profile) *LockWorker {
	return &LockWorker{Lock: lock, Gap: gap, Hold: hold, Prof: prof, Seed: 0x9E3779B9}
}

// jitteredGap returns this cycle's compute phase: Gap scaled by a
// deterministic pseudo-random factor in [0.5, 1.5). Real parallel
// programs (make jobs, pipeline stages) have irregular phase lengths;
// perfectly regular phases let consolidated gangs fall into lock-step
// alignment, an artificial attractor.
func (w *LockWorker) jitteredGap() sim.Time {
	if w.rng == 0 {
		w.rng = w.Seed | 1
	}
	w.rng ^= w.rng << 13
	w.rng ^= w.rng >> 7
	w.rng ^= w.rng << 17
	frac := float64(w.rng%1024) / 1024.0
	return sim.Time(float64(w.Gap) * (0.5 + frac))
}

// lockWorker states.
const (
	lwGap = iota
	lwAcquire
	lwCritical
	lwRelease
	lwSignal
	lwWait
)

// Next implements guest.Program: gap compute -> acquire -> critical
// section -> release [-> signal successor -> wait on predecessor].
func (w *LockWorker) Next(t *guest.Thread, now sim.Time) guest.Action {
	switch w.state {
	case lwGap:
		w.state = lwAcquire
		return guest.Action{Kind: guest.ActCompute, Work: w.jitteredGap(), Prof: w.Prof}
	case lwAcquire:
		w.state = lwCritical
		return guest.Action{Kind: guest.ActAcquire, Lock: w.Lock}
	case lwCritical:
		w.state = lwRelease
		// Critical sections touch a small shared structure.
		return guest.Action{Kind: guest.ActCompute, Work: w.Hold, Prof: cache.Profile{WSS: 32 * 1024}}
	case lwRelease:
		w.cycles++
		t.Jobs++
		if w.NextSem != nil && w.JoinEvery > 0 && w.cycles%w.JoinEvery == 0 {
			w.state = lwSignal
		} else {
			w.state = lwGap
		}
		return guest.Action{Kind: guest.ActRelease, Lock: w.Lock}
	case lwSignal:
		w.state = lwWait
		return guest.Action{Kind: guest.ActSemV, Sem: w.NextSem}
	default: // lwWait
		w.state = lwGap
		return guest.Action{Kind: guest.ActSemP, Sem: w.PrevSem}
	}
}

// Handler serves requests from an iodev.Server: it waits for the event
// channel, then spends Service ideal time per request. Request latency
// is recorded at completion. One request is one job.
type Handler struct {
	Srv     *iodev.Server
	Service sim.Time
	Prof    cache.Profile

	state   int
	arrived sim.Time
}

// NewHandler builds an IO request handler program.
func NewHandler(srv *iodev.Server, service sim.Time, prof cache.Profile) *Handler {
	return &Handler{Srv: srv, Service: service, Prof: prof}
}

// Next implements guest.Program: wait -> serve -> complete -> wait.
func (h *Handler) Next(t *guest.Thread, now sim.Time) guest.Action {
	switch h.state {
	case 0:
		h.state = 1
		return guest.Action{Kind: guest.ActWaitIO, Port: h.Srv.Port}
	case 1:
		h.arrived = h.Srv.Take()
		h.state = 2
		return guest.Action{Kind: guest.ActCompute, Work: h.Service, Prof: h.Prof}
	default:
		h.Srv.Complete(h.arrived, now)
		t.Jobs++
		h.state = 1
		return guest.Action{Kind: guest.ActWaitIO, Port: h.Srv.Port}
	}
}

// Sleeper alternates compute and sleep — a background housekeeping
// pattern used in tests.
type Sleeper struct {
	Work  sim.Time
	Sleep sim.Time
	Prof  cache.Profile
	state int
}

// Next implements guest.Program.
func (s *Sleeper) Next(t *guest.Thread, now sim.Time) guest.Action {
	if s.state == 0 {
		s.state = 1
		return guest.Action{Kind: guest.ActCompute, Work: s.Work, Prof: s.Prof}
	}
	s.state = 0
	t.Jobs++
	return guest.Action{Kind: guest.ActSleep, Dur: s.Sleep}
}

package report

import (
	"strings"
	"testing"
)

func TestTableRendersAligned(t *testing.T) {
	tb := &Table{
		Title:   "Demo",
		Headers: []string{"name", "value"},
	}
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 2.5)
	tb.AddNote("footnote %d", 42)
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "====") {
		t.Errorf("missing title/underline:\n%s", out)
	}
	if !strings.Contains(out, "a-much-longer-name") {
		t.Errorf("missing row:\n%s", out)
	}
	if !strings.Contains(out, "2.500") {
		t.Errorf("float not formatted:\n%s", out)
	}
	if !strings.Contains(out, "footnote 42") {
		t.Errorf("missing note:\n%s", out)
	}
	// Every data line must have the same width (aligned columns).
	var widths []int
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "|") {
			widths = append(widths, len(line))
		}
	}
	for _, w := range widths {
		if w != widths[0] {
			t.Errorf("misaligned table:\n%s", out)
			break
		}
	}
}

func TestBar(t *testing.T) {
	if b := Bar(5, 10, 10); b != "#####" {
		t.Errorf("Bar(5,10,10) = %q", b)
	}
	if b := Bar(20, 10, 10); b != "##########" {
		t.Errorf("over-max bar %q", b)
	}
	if b := Bar(1, 0, 10); b != "" {
		t.Errorf("zero-max bar %q", b)
	}
	if b := Bar(-1, 10, 10); b != "" {
		t.Errorf("negative bar %q", b)
	}
}

func TestBarChart(t *testing.T) {
	c := &BarChart{Title: "chart", Width: 20}
	c.Add("aql", 0.8)
	c.Add("xen", 1.0)
	out := c.String()
	if !strings.Contains(out, "aql") || !strings.Contains(out, "0.800") {
		t.Errorf("chart missing items:\n%s", out)
	}
	// xen (the max) should have the longest bar.
	lines := strings.Split(out, "\n")
	var aqlBar, xenBar int
	for _, l := range lines {
		n := strings.Count(l, "#")
		if strings.HasPrefix(l, "aql") {
			aqlBar = n
		}
		if strings.HasPrefix(l, "xen") {
			xenBar = n
		}
	}
	if xenBar <= aqlBar {
		t.Errorf("bar lengths wrong: aql=%d xen=%d", aqlBar, xenBar)
	}
}

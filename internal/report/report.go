// Package report renders experiment results as fixed-width text tables
// and ASCII bar charts — the textual equivalents of the paper's figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row (stringifying each cell).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			wd := 0
			if i < len(widths) {
				wd = widths[i]
			}
			parts[i] = pad(c, wd)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	line(t.Headers)
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bar renders a horizontal ASCII bar scaled so that max fills width.
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n)
}

// BarChart renders labelled normalized bars with a reference mark at
// 1.0 (the paper's figures all normalize over default Xen; lower is
// better).
type BarChart struct {
	Title string
	Items []BarItem
	// Width of the largest bar in characters.
	Width int
}

// BarItem is one bar.
type BarItem struct {
	Label string
	Value float64
}

// Add appends a bar.
func (b *BarChart) Add(label string, value float64) {
	b.Items = append(b.Items, BarItem{Label: label, Value: value})
}

// Render writes the chart to w.
func (b *BarChart) Render(w io.Writer) {
	if b.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", b.Title, strings.Repeat("-", len(b.Title)))
	}
	width := b.Width
	if width <= 0 {
		width = 50
	}
	max := 0.0
	labelW := 0
	for _, it := range b.Items {
		if it.Value > max {
			max = it.Value
		}
		if len(it.Label) > labelW {
			labelW = len(it.Label)
		}
	}
	if max < 1 {
		max = 1
	}
	for _, it := range b.Items {
		fmt.Fprintf(w, "%s %6.3f |%s\n", pad(it.Label, labelW), it.Value, Bar(it.Value, max, width))
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (b *BarChart) String() string {
	var sb strings.Builder
	b.Render(&sb)
	return sb.String()
}

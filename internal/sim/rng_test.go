package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Fork(0)
	c2 := parent.Fork(1)
	if c1.Uint64() == c2.Uint64() {
		t.Error("forked children with different labels produced same first value")
	}
	// Fork must not advance the parent stream.
	p1 := NewRNG(7)
	v1 := p1.Uint64()
	p2 := NewRNG(7)
	p2.Fork(99)
	v2 := p2.Uint64()
	if v1 != v2 {
		t.Error("Fork perturbed the parent stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const mean = 250.0
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Errorf("exponential sample mean %.2f, want ~%.2f", got, mean)
	}
}

func TestRNGExpTimeAtLeastOne(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 1000; i++ {
		if d := r.ExpTime(2); d < 1 {
			t.Fatalf("ExpTime returned %v < 1", d)
		}
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(17)
	const mean, sd = 100.0, 15.0
	const n = 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(mean, sd)
		sum += v
		sumsq += v * v
	}
	m := sum / n
	variance := sumsq/n - m*m
	if math.Abs(m-mean) > 0.5 {
		t.Errorf("normal mean %.2f, want ~%.1f", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.5 {
		t.Errorf("normal stddev %.2f, want ~%.1f", math.Sqrt(variance), sd)
	}
}

// Property: Intn stays within bounds for any positive n.
func TestRNGIntnBoundsProperty(t *testing.T) {
	r := NewRNG(23)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: UniformTime respects [lo, hi] for any ordered pair.
func TestRNGUniformTimeProperty(t *testing.T) {
	r := NewRNG(29)
	f := func(a, b uint32) bool {
		lo, hi := Time(a), Time(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		v := r.UniformTime(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (SplitMix64). Every stochastic component of the simulator owns its own
// RNG so that adding or removing one component never perturbs the random
// streams seen by the others.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent generator from this one. The derived
// stream is a deterministic function of the parent state and the label.
func (r *RNG) Fork(label uint64) *RNG {
	// Mix the label through one splitmix round so that Fork(0), Fork(1)
	// diverge even from the same parent state.
	z := r.state + 0x9e3779b97f4a7c15*(label+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &RNG{state: z ^ (z >> 31)}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform variate in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponential variate with the given mean. Used for
// Poisson inter-arrival times in the IO client models.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// ExpTime returns an exponential Time variate with the given mean,
// rounded to at least one microsecond so events always make progress.
func (r *RNG) ExpTime(mean Time) Time {
	d := Time(r.Exp(float64(mean)))
	if d < 1 {
		d = 1
	}
	return d
}

// UniformTime returns a uniform Time variate in [lo, hi].
func (r *RNG) UniformTime(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(r.Uint64()%uint64(hi-lo+1))
}

// Normal returns a normal variate (Box-Muller) with the given mean and
// standard deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

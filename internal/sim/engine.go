// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated state changes are driven by events on a priority queue
// ordered by (time, sequence number). Equal-time events fire in the order
// they were scheduled, so a simulation is fully deterministic given its
// inputs and RNG seed. Time is measured in integer microseconds.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated instant or duration in microseconds.
type Time int64

// Convenient duration units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * 1000
)

// MaxTime is the largest representable simulated time.
const MaxTime Time = 1<<63 - 1

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time in a human-friendly unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%dµs", int64(t))
	}
}

// EventFunc is the body of a scheduled event. It runs at the event's
// due time with the engine clock already advanced to that time.
type EventFunc func(now Time)

// Event is a handle to a scheduled event; it can be cancelled.
type Event struct {
	at      Time
	seq     uint64
	fn      EventFunc
	index   int // heap index, -1 when popped or cancelled
	cancels bool
}

// Time reports when the event is due.
func (e *Event) Time() Time { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancels }

// eventQueue implements heap.Interface over pending events.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulation loop.
//
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool

	// Stats
	fired uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled and not yet fired.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at the absolute time at. Scheduling in the past
// (before Now) panics: that is always a simulation bug.
func (e *Engine) At(at Time, fn EventFunc) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn EventFunc) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancels || ev.index < 0 {
		if ev != nil {
			ev.cancels = true
		}
		return
	}
	ev.cancels = true
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Step fires the next pending event, advancing the clock to its due
// time. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	e.fired++
	ev.fn(e.now)
	return true
}

// RunUntil fires events until the clock would pass deadline or the queue
// empties. The clock finishes at exactly deadline (even when idle) so
// that measurement windows are well defined.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// Run fires events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Stop makes the current Run/RunUntil call return after the event that
// is currently executing.
func (e *Engine) Stop() { e.stopped = true }

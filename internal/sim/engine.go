// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated state changes are driven by events on a priority queue
// ordered by (time, sequence number). Equal-time events fire in the order
// they were scheduled, so a simulation is fully deterministic given its
// inputs and RNG seed. Time is measured in integer microseconds.
//
// The queue is a flat 4-ary min-heap of (time, seq, slot) entries over a
// slot table with an intrusive free-list, so scheduling, firing and
// cancelling events allocates nothing in steady state: the heap and slot
// slices grow to the simulation's peak pending count and are reused from
// then on. Hot callers that repeatedly schedule and cancel the same
// logical callback (one per vCPU, say) should use a Timer, which binds
// its function once and re-arms without any per-occurrence allocation.
package sim

import (
	"fmt"
)

// Time is a simulated instant or duration in microseconds.
type Time int64

// Convenient duration units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * 1000
)

// MaxTime is the largest representable simulated time.
const MaxTime Time = 1<<63 - 1

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time in a human-friendly unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%dµs", int64(t))
	}
}

// EventFunc is the body of a scheduled event. It runs at the event's
// due time with the engine clock already advanced to that time.
type EventFunc func(now Time)

// Event is a value handle to a scheduled event, usable to cancel it.
// The zero Event is valid and refers to nothing. Handles stay safe after
// the event fires or is cancelled: the engine detects staleness through
// a generation counter, so Cancel on a spent handle is a no-op.
type Event struct {
	slot int32
	gen  uint32
}

// heapEntry is one pending event in the 4-ary min-heap. The full sort
// key lives in the entry itself so sift comparisons never chase into the
// slot table.
type heapEntry struct {
	at   Time
	seq  uint64
	slot int32
}

func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// slot carries the callback state of one pending event. Free slots are
// chained through next; gen increments on every free so stale Event
// handles (and stale Timer fires) can be detected.
type slot struct {
	fn    EventFunc
	timer *Timer
	at    Time
	gen   uint32
	heap  int32 // index into Engine.heap, -1 when free
	next  int32 // free-list link, meaningful only when free
}

// Engine is a discrete-event simulation loop.
//
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	heap    []heapEntry
	slots   []slot
	free    int32 // head of the slot free-list, -1 when empty
	stopped bool

	// Stats
	fired uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{free: -1}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled and not yet fired.
func (e *Engine) Pending() int { return len(e.heap) }

// --- slot table -----------------------------------------------------------

func (e *Engine) allocSlot() int32 {
	if e.free >= 0 {
		i := e.free
		e.free = e.slots[i].next
		return i
	}
	e.slots = append(e.slots, slot{gen: 1, heap: -1})
	return int32(len(e.slots) - 1)
}

func (e *Engine) freeSlot(i int32) {
	s := &e.slots[i]
	s.fn = nil
	s.timer = nil
	s.gen++
	s.heap = -1
	s.next = e.free
	e.free = i
}

// schedule allocates a slot for (at, fn) and pushes it on the heap.
func (e *Engine) schedule(at Time, fn EventFunc, t *Timer) int32 {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	i := e.allocSlot()
	s := &e.slots[i]
	s.fn = fn
	s.timer = t
	s.at = at
	e.push(heapEntry{at: at, seq: e.seq, slot: i})
	e.seq++
	return i
}

// --- 4-ary heap -----------------------------------------------------------

func (e *Engine) push(en heapEntry) {
	e.heap = append(e.heap, en)
	e.siftUp(len(e.heap) - 1)
}

func (e *Engine) siftUp(i int) {
	en := e.heap[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(en, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.slots[e.heap[i].slot].heap = int32(i)
		i = p
	}
	e.heap[i] = en
	e.slots[en.slot].heap = int32(i)
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	en := e.heap[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(e.heap[j], e.heap[m]) {
				m = j
			}
		}
		if !entryLess(e.heap[m], en) {
			break
		}
		e.heap[i] = e.heap[m]
		e.slots[e.heap[i].slot].heap = int32(i)
		i = m
	}
	e.heap[i] = en
	e.slots[en.slot].heap = int32(i)
}

// removeAt deletes the heap entry at index i, preserving heap order.
func (e *Engine) removeAt(i int) {
	n := len(e.heap) - 1
	if i == n {
		e.heap = e.heap[:n]
		return
	}
	last := e.heap[n]
	e.heap = e.heap[:n]
	e.heap[i] = last
	e.slots[last.slot].heap = int32(i)
	if i > 0 && entryLess(last, e.heap[(i-1)>>2]) {
		e.siftUp(i)
	} else {
		e.siftDown(i)
	}
}

// popMin removes and returns the earliest entry.
func (e *Engine) popMin() heapEntry {
	en := e.heap[0]
	n := len(e.heap) - 1
	if n > 0 {
		e.heap[0] = e.heap[n]
		e.slots[e.heap[0].slot].heap = 0
		e.heap = e.heap[:n]
		e.siftDown(0)
	} else {
		e.heap = e.heap[:0]
	}
	return en
}

// --- public scheduling API ------------------------------------------------

// At schedules fn to run at the absolute time at. Scheduling in the past
// (before Now) panics: that is always a simulation bug.
func (e *Engine) At(at Time, fn EventFunc) Event {
	i := e.schedule(at, fn, nil)
	return Event{slot: i, gen: e.slots[i].gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn EventFunc) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Scheduled reports whether ev is still pending (not fired, not
// cancelled).
func (e *Engine) Scheduled(ev Event) bool {
	if ev.gen == 0 || int(ev.slot) >= len(e.slots) {
		return false
	}
	s := &e.slots[ev.slot]
	return s.gen == ev.gen && s.heap >= 0
}

// Cancel removes a pending event and reports whether it was still
// pending. Cancelling an already-fired, already-cancelled or zero Event
// is a no-op.
func (e *Engine) Cancel(ev Event) bool {
	if !e.Scheduled(ev) {
		return false
	}
	s := &e.slots[ev.slot]
	e.removeAt(int(s.heap))
	e.freeSlot(ev.slot)
	return true
}

// Step fires the next pending event, advancing the clock to its due
// time. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	en := e.popMin()
	s := &e.slots[en.slot]
	fn := s.fn
	if t := s.timer; t != nil {
		t.slot = -1
	}
	e.freeSlot(en.slot)
	e.now = en.at
	e.fired++
	fn(e.now)
	return true
}

// RunUntil fires events until the clock would pass deadline or the queue
// empties. The clock finishes at exactly deadline (even when idle) so
// that measurement windows are well defined.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.Step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// Run fires events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Stop makes the current Run/RunUntil call return after the event that
// is currently executing.
func (e *Engine) Stop() { e.stopped = true }

// --- timers ---------------------------------------------------------------

// Timer is a reusable scheduled callback: the function is bound once and
// the timer is then armed, fired and re-armed any number of times with
// no per-occurrence allocation. Each arming gets a fresh sequence
// number, so a rearmed timer orders against equal-time events exactly as
// a newly scheduled one would.
//
// A Timer is owned by its engine and must not be copied. The zero Timer
// is not usable; call Engine.NewTimer.
type Timer struct {
	e    *Engine
	fn   EventFunc
	slot int32 // pending slot, -1 when idle
}

// NewTimer binds fn to a new idle timer on the engine.
func (e *Engine) NewTimer(fn EventFunc) *Timer {
	return &Timer{e: e, fn: fn, slot: -1}
}

// Armed reports whether the timer has a pending occurrence.
func (t *Timer) Armed() bool { return t.slot >= 0 }

// When reports the due time of the pending occurrence; meaningless when
// the timer is not armed.
func (t *Timer) When() Time {
	if t.slot < 0 {
		return 0
	}
	return t.e.slots[t.slot].at
}

// Arm schedules the timer's next occurrence at the absolute time at,
// replacing any still-pending occurrence (rearm semantics). The timer
// un-arms itself immediately before its function runs, so the function
// may re-arm from inside the callback.
func (t *Timer) Arm(at Time) {
	t.Stop()
	t.slot = t.e.schedule(at, t.fn, t)
}

// Stop cancels the pending occurrence, if any, and reports whether one
// was pending.
func (t *Timer) Stop() bool {
	if t.slot < 0 {
		return false
	}
	s := &t.e.slots[t.slot]
	t.e.removeAt(int(s.heap))
	t.e.freeSlot(t.slot)
	t.slot = -1
	return true
}

package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{50, 10, 30, 10, 20} {
		at := at
		e.At(at, func(now Time) {
			if now != at {
				t.Errorf("event scheduled at %v fired at %v", at, now)
			}
			got = append(got, now)
		})
	}
	e.Run()
	want := []Time{10, 10, 20, 30, 50}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineEqualTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired out of schedule order: %v", order)
		}
	}
}

func TestEngineAfterAndNow(t *testing.T) {
	e := NewEngine()
	e.After(5, func(now Time) {
		if now != 5 {
			t.Errorf("now = %v, want 5", now)
		}
		e.After(7, func(now Time) {
			if now != 12 {
				t.Errorf("now = %v, want 12", now)
			}
		})
	})
	e.Run()
	if e.Now() != 12 {
		t.Errorf("final clock %v, want 12", e.Now())
	}
	if e.Fired() != 2 {
		t.Errorf("fired %d, want 2", e.Fired())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func(Time) { fired = true })
	if !e.Scheduled(ev) {
		t.Error("event does not report scheduled")
	}
	if !e.Cancel(ev) {
		t.Error("cancel of a pending event reported nothing pending")
	}
	if e.Cancel(ev) { // double cancel is a no-op
		t.Error("double cancel reported a pending event")
	}
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Scheduled(ev) {
		t.Error("cancelled event still reports scheduled")
	}
}

func TestEngineCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var got []Time
	evs := make([]Event, 0, 5)
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		evs = append(evs, e.At(at, func(now Time) { got = append(got, now) }))
	}
	e.Cancel(evs[2]) // remove t=3
	e.Run()
	want := []Time{1, 2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func(now Time)
	tick = func(now Time) {
		count++
		e.After(10, tick)
	}
	e.After(10, tick)
	e.RunUntil(95)
	if count != 9 {
		t.Errorf("fired %d ticks by t=95, want 9", count)
	}
	if e.Now() != 95 {
		t.Errorf("clock %v after RunUntil(95), want 95", e.Now())
	}
	// Continue running: the pending tick at t=100 must still fire.
	e.RunUntil(100)
	if count != 10 {
		t.Errorf("fired %d ticks by t=100, want 10", count)
	}
}

func TestEngineRunUntilIdleAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Errorf("idle RunUntil left clock at %v, want 500", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func(now Time)
	tick = func(now Time) {
		count++
		if count == 3 {
			e.Stop()
			return
		}
		e.After(1, tick)
	}
	e.After(1, tick)
	e.Run()
	if count != 3 {
		t.Errorf("fired %d events, want 3 (stopped)", count)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(5, func(Time) {})
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{5, "5µs"},
		{1500, "1.500ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

// Property: for any batch of event times, the engine fires them in
// non-decreasing time order and the clock never goes backwards.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, off := range offsets {
			at := Time(off)
			e.At(at, func(now Time) { fired = append(fired, now) })
		}
		e.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: pending count is consistent under schedule/cancel sequences.
func TestEnginePendingProperty(t *testing.T) {
	f := func(n uint8, cancelMask uint16) bool {
		e := NewEngine()
		count := int(n%32) + 1
		evs := make([]Event, count)
		for i := 0; i < count; i++ {
			evs[i] = e.At(Time(i), func(Time) {})
		}
		cancelled := 0
		for i := 0; i < count && i < 16; i++ {
			if cancelMask&(1<<i) != 0 {
				e.Cancel(evs[i])
				cancelled++
			}
		}
		return e.Pending() == count-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

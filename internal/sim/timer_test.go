package sim

import "testing"

// A cancelled event scheduled before a live equal-time event must not
// perturb the live event's firing order (the heap rewrite moves entries
// around on removal).
func TestEngineCancelThenFireOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	var evs []Event
	// Interleave keepers and cancels at the same instant.
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, e.At(100, func(Time) { order = append(order, i) }))
	}
	for i := 1; i < 20; i += 2 {
		e.Cancel(evs[i])
	}
	// Later-time events behind the cancelled block.
	fired200 := false
	e.At(200, func(Time) { fired200 = true })
	e.Run()
	want := []int{0, 2, 4, 6, 8, 10, 12, 14, 16, 18}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("equal-time FIFO broken after cancels: %v", order)
		}
	}
	if !fired200 {
		t.Error("event after cancelled block never fired")
	}
}

func TestTimerFiresAndUnarms(t *testing.T) {
	e := NewEngine()
	var fires []Time
	tm := e.NewTimer(func(now Time) { fires = append(fires, now) })
	if tm.Armed() {
		t.Error("fresh timer reports armed")
	}
	tm.Arm(10)
	if !tm.Armed() || tm.When() != 10 {
		t.Errorf("armed timer: Armed=%v When=%v, want true/10", tm.Armed(), tm.When())
	}
	e.Run()
	if len(fires) != 1 || fires[0] != 10 {
		t.Fatalf("fires = %v, want [10]", fires)
	}
	if tm.Armed() {
		t.Error("timer still armed after firing")
	}
}

// Arm on an already-armed timer replaces the pending occurrence: only
// the latest due time fires, exactly once.
func TestTimerRearmReplacesPending(t *testing.T) {
	e := NewEngine()
	var fires []Time
	tm := e.NewTimer(func(now Time) { fires = append(fires, now) })
	tm.Arm(50)
	tm.Arm(30) // earlier rearm wins
	e.Run()
	if len(fires) != 1 || fires[0] != 30 {
		t.Fatalf("fires = %v, want [30]", fires)
	}

	fires = nil
	tm.Arm(60)
	tm.Arm(90) // later rearm wins too — last Arm is authoritative
	e.Run()
	if len(fires) != 1 || fires[0] != 90 {
		t.Fatalf("fires = %v, want [90]", fires)
	}
}

// A rearm gets a fresh sequence number: against an equal-time plain
// event scheduled between the two arms, the rearmed timer fires second.
func TestTimerRearmOrdersAsFreshlyScheduled(t *testing.T) {
	e := NewEngine()
	var order []string
	tm := e.NewTimer(func(Time) { order = append(order, "timer") })
	tm.Arm(100)
	e.At(100, func(Time) { order = append(order, "plain") })
	tm.Arm(100) // rearm at the same instant, after the plain event
	e.Run()
	if len(order) != 2 || order[0] != "plain" || order[1] != "timer" {
		t.Fatalf("order = %v, want [plain timer]", order)
	}
}

func TestTimerRearmFromInsideCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tm *Timer
	tm = e.NewTimer(func(now Time) {
		count++
		if count < 5 {
			tm.Arm(now + 10)
		}
	})
	tm.Arm(10)
	e.Run()
	if count != 5 {
		t.Errorf("periodic timer fired %d times, want 5", count)
	}
	if e.Now() != 50 {
		t.Errorf("clock %v, want 50", e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.NewTimer(func(Time) { fired = true })
	tm.Arm(10)
	if !tm.Stop() {
		t.Error("Stop on armed timer reported nothing pending")
	}
	if tm.Stop() {
		t.Error("Stop on idle timer reported pending")
	}
	e.Run()
	if fired {
		t.Error("stopped timer fired")
	}
}

// Heavy schedule/cancel churn must not grow the slot table beyond the
// peak pending count: slots are recycled through the free-list.
func TestEngineFreeListReuseUnderCancelChurn(t *testing.T) {
	e := NewEngine()
	for round := 0; round < 1000; round++ {
		a := e.At(Time(round)+1, func(Time) {})
		b := e.At(Time(round)+2, func(Time) {})
		e.Cancel(a)
		e.Cancel(b)
	}
	if got := len(e.slots); got > 2 {
		t.Errorf("slot table grew to %d entries under churn, want <= 2", got)
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d after churn, want 0", e.Pending())
	}
	// The engine must still schedule and fire correctly afterwards.
	fired := 0
	for i := 0; i < 10; i++ {
		e.At(Time(2000+i), func(Time) { fired++ })
	}
	e.Run()
	if fired != 10 {
		t.Errorf("fired %d events after churn, want 10", fired)
	}
}

// Stale Event handles from before a slot was recycled must not cancel
// the slot's new occupant.
func TestEngineStaleHandleCannotCancelRecycledSlot(t *testing.T) {
	e := NewEngine()
	old := e.At(10, func(Time) {})
	e.Cancel(old) // frees the slot
	fired := false
	e.At(20, func(Time) { fired = true }) // reuses the slot
	if e.Cancel(old) {
		t.Error("stale handle cancelled the slot's new occupant")
	}
	e.Run()
	if !fired {
		t.Error("recycled-slot event did not fire")
	}
}

// Equal-time FIFO across a mix of plain events and timers, exercising
// sift paths of the 4-ary heap with a non-trivial pending set.
func TestEngineEqualTimeFIFOWide(t *testing.T) {
	e := NewEngine()
	const n = 64
	var order []int
	for i := 0; i < n; i++ {
		i := i
		// Spread some padding events at later times so the heap has depth.
		e.At(Time(1000+i), func(Time) {})
		e.At(500, func(Time) { order = append(order, i) })
	}
	e.RunUntil(500)
	if len(order) != n {
		t.Fatalf("fired %d equal-time events, want %d", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired out of schedule order: %v", order)
		}
	}
}

// --- benchmarks -----------------------------------------------------------

// BenchmarkEngineScheduleFire measures the schedule→fire round trip with
// a warm free-list (the steady state of a long simulation).
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine()
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+1, fn)
		e.Step()
	}
}

// BenchmarkEngineScheduleCancel measures schedule→cancel churn, the
// pattern of preempted bursts.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.At(e.Now()+1, fn)
		e.Cancel(ev)
	}
}

// BenchmarkEngineTimerRearm measures the pre-bound timer path used by
// the hypervisor's burst machinery.
func BenchmarkEngineTimerRearm(b *testing.B) {
	e := NewEngine()
	tm := e.NewTimer(func(Time) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Arm(e.Now() + 1)
		e.Step()
	}
}

// BenchmarkEngineMixedLoad keeps 1024 pending events and continuously
// replaces the fired one, measuring heap operations at realistic depth.
func BenchmarkEngineMixedLoad(b *testing.B) {
	e := NewEngine()
	fn := func(Time) {}
	for i := 0; i < 1024; i++ {
		e.At(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+1024, fn)
		e.Step()
	}
}

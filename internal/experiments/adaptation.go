package experiments

import (
	"fmt"

	"aqlsched/internal/catalog"
	"aqlsched/internal/report"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sweep"
)

// AdaptationWindows is the vTRS window axis of the adaptation
// experiment: n = 4 is the paper's choice, the sweep brackets it.
var AdaptationWindows = []int{1, 2, 4, 8}

// AdaptationSweep declares the reactivity-vs-churn grid: the dynphase
// scenario (phased VMs whose ground-truth type flips every 1–1.5 s)
// under AQL at each vTRS window. Section 3.3 argues n trades
// reactivity (short windows re-recognize a flipped vCPU sooner)
// against migration churn (every re-recognition the clustering acts on
// moves vCPUs between pools); this sweep measures both sides on
// genuinely moving workloads.
func AdaptationSweep(cfg Config) *sweep.Spec {
	warm, meas := cfg.windows()
	sp := &sweep.Spec{
		Name:      "adaptation",
		Scenarios: []sweep.Scenario{mustScenario("dynphase")},
		BaseSeed:  cfg.seed(),
		Warmup:    warm,
		Measure:   meas,
	}
	if !cfg.Quick {
		sp.Seeds = 3
	}
	for _, n := range AdaptationWindows {
		sp.Policies = append(sp.Policies, sweep.Policy(catalog.AQLWindowPolicy(n)))
	}
	return sp
}

// AdaptationRow is one window's aggregate: recognition latency (in
// 30 ms monitoring periods), truth-match fraction, and measurement-
// window recluster/migration churn.
type AdaptationRow struct {
	Window     int
	Latency    float64
	LatencyCI  float64
	MatchFrac  float64
	Reclusters float64
	Migrations float64
}

// AdaptationResult is the executed experiment.
type AdaptationResult struct {
	Rows []AdaptationRow
	Res  *sweep.Result
}

// Adaptation runs the window sweep and folds the per-cell adaptation
// aggregates into one row per window.
func Adaptation(cfg Config) *AdaptationResult {
	sp := AdaptationSweep(cfg)
	res := mustSweep(sp, sweep.Options{})
	out := &AdaptationResult{Res: res}
	for i, n := range AdaptationWindows {
		cell := res.Cell("dynphase", sp.Policies[i].Name)
		// adapt_match_frac is recorded by every adaptive run, so its
		// absence means the cell produced no adaptation data at all — a
		// configuration error. adapt_latency_periods is absent when no
		// replication recognized a flip; that degrades to a 0 row
		// (matching the historical empty-stats rendering), not a panic.
		if cell.Metric(scenario.MAdaptMatch.Name) == nil {
			panic(fmt.Sprintf("experiments: adaptation metrics for window %d missing", n))
		}
		stat := func(name string) (mean, ci float64) {
			if m := cell.Metric(name); m != nil {
				return m.Stats.Mean, m.Stats.CI95
			}
			return 0, 0
		}
		lat, latCI := stat(scenario.MAdaptLatency.Name)
		match, _ := stat(scenario.MAdaptMatch.Name)
		recl, _ := stat(scenario.MAdaptReclusters.Name)
		mig, _ := stat(scenario.MAdaptMigrations.Name)
		out.Rows = append(out.Rows, AdaptationRow{
			Window:     n,
			Latency:    lat,
			LatencyCI:  latCI,
			MatchFrac:  match,
			Reclusters: recl,
			Migrations: mig,
		})
	}
	return out
}

// Table renders the reactivity-vs-churn trade-off.
func (r *AdaptationResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Adaptation: vTRS window n vs recognition latency and migration churn (dynphase)",
		Headers: []string{"window n", "recognition latency (periods)", "±ci95", "truth match", "reclusters", "migrations"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Window,
			fmt.Sprintf("%.2f", row.Latency), fmt.Sprintf("%.2f", row.LatencyCI),
			fmt.Sprintf("%.0f%%", 100*row.MatchFrac),
			fmt.Sprintf("%.1f", row.Reclusters), fmt.Sprintf("%.1f", row.Migrations))
	}
	t.AddNote("phased VMs flip type every 1-1.5s; latency = periods from a ground-truth flip to the vTRS re-recognizing it")
	t.AddNote("short windows react faster but recluster (and migrate) more - the trade-off behind the paper's n = 4")
	return t
}

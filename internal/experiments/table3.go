package experiments

import (
	"aqlsched/internal/baselines"
	"aqlsched/internal/core"
	"aqlsched/internal/report"
	"aqlsched/internal/scenario"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
)

// Table3Entry is one application's recognition outcome.
type Table3Entry struct {
	App      string
	Expected vcputype.Type
	Detected vcputype.Type
}

// Table3Result is the full recognition census.
type Table3Result struct {
	Entries []Table3Entry
}

// Table3 runs every reference application in the standard colocation and
// reports the type vTRS detects — the paper's Table 3.
func Table3(cfg Config) *Table3Result {
	out := &Table3Result{}
	for _, app := range table3Suite(cfg) {
		var ctl *core.Controller
		spec := Colo(app, 4, cfg)
		res := scenario.Run(spec, baselines.AQL{MonitorOnly: true, Out: &ctl})
		detected := ctl.Monitor.TypeOf(res.Deps[0].Dom.VCPUs[0])
		out.Entries = append(out.Entries, Table3Entry{
			App:      app.Name,
			Expected: app.Expected,
			Detected: detected,
		})
	}
	return out
}

func table3Suite(cfg Config) []workload.AppSpec {
	if !cfg.Quick {
		return workload.Suite()
	}
	return Fig5Suite(cfg)
}

// Mistyped counts entries whose detected type differs from the paper's.
func (r *Table3Result) Mistyped() int {
	n := 0
	for _, e := range r.Entries {
		if e.Detected != e.Expected {
			n++
		}
	}
	return n
}

// Table renders the census grouped like the paper's Table 3.
func (r *Table3Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Table 3: application type recognition (vTRS)",
		Headers: []string{"type", "applications (detected)"},
	}
	byType := map[vcputype.Type][]string{}
	for _, e := range r.Entries {
		name := e.App
		if e.Detected != e.Expected {
			name += "(!" + e.Detected.String() + ")"
		}
		byType[e.Expected] = append(byType[e.Expected], name)
	}
	for _, ty := range vcputype.All() {
		apps := byType[ty]
		line := ""
		for i, a := range apps {
			if i > 0 {
				line += ", "
			}
			line += a
		}
		t.AddRow(ty.String(), line)
	}
	t.AddNote("(!X) marks an app detected as X instead of the paper's type")
	return t
}

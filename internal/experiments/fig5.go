package experiments

import (
	"aqlsched/internal/report"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/sweep"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
)

// Fig5Quanta is the sweep of Fig. 5 (30 ms is the normalization base).
func Fig5Quanta() []sim.Time {
	return []sim.Time{
		1 * sim.Millisecond,
		10 * sim.Millisecond,
		60 * sim.Millisecond,
		90 * sim.Millisecond,
	}
}

// Fig5App is one application's sweep outcome.
type Fig5App struct {
	Name     string
	Expected vcputype.Type
	// Norm maps quantum -> normalized performance (lower is better).
	Norm map[sim.Time]float64
}

// BestQuantum reports the quantum with the lowest normalized value
// (30 ms is included implicitly with value 1).
func (a Fig5App) BestQuantum() sim.Time {
	best, bestV := 30*sim.Millisecond, 1.0
	for q, v := range a.Norm {
		if v < bestV {
			best, bestV = q, v
		}
	}
	return best
}

// Spread reports max-min normalized value across all quanta.
func (a Fig5App) Spread() float64 {
	lo, hi := 1.0, 1.0
	for _, v := range a.Norm {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// Fig5Result holds the robustness sweep.
type Fig5Result struct {
	Apps []Fig5App
}

// Fig5Suite lists the applications swept: the full reference suite, or
// a two-per-type subset in quick mode.
func Fig5Suite(cfg Config) []workload.AppSpec {
	if !cfg.Quick {
		return workload.Suite()
	}
	return []workload.AppSpec{
		workload.SPECWeb2009(),
		workload.ByName("bzip2"),
		workload.ByName("astar"),
		workload.ByName("hmmer"),
		workload.ByName("libquantum"),
		workload.ByName("fluidanimate"),
	}
}

// Fig5Sweep declares the robustness sweep: one colocation scenario per
// application, one fixed-quantum policy per swept quantum, normalized
// over the 30 ms default.
func Fig5Sweep(cfg Config) *sweep.Spec {
	base := sweep.FixedPolicy(30 * sim.Millisecond)
	sp := &sweep.Spec{
		Name:     "fig5",
		Policies: []sweep.Policy{base},
		Baseline: base.Name,
		BaseSeed: cfg.seed(),
	}
	for _, q := range Fig5Quanta() {
		sp.Policies = append(sp.Policies, sweep.FixedPolicy(q))
	}
	for _, app := range Fig5Suite(cfg) {
		app := app
		sp.Scenarios = append(sp.Scenarios, sweep.Scenario{
			Name: "colo-" + app.Name,
			New:  func() scenario.Spec { return Colo(app, 4, cfg) },
		})
	}
	return sp
}

// Fig5 runs every application in the standard 4-vCPUs-per-pCPU
// colocation under each quantum and normalizes over the Xen default —
// validating that each app performs best at (or indistinguishably from)
// its type's calibrated quantum.
func Fig5(cfg Config) *Fig5Result {
	res := mustSweep(Fig5Sweep(cfg), sweep.Options{})
	out := &Fig5Result{}
	for _, app := range Fig5Suite(cfg) {
		a := Fig5App{Name: app.Name, Expected: app.Expected, Norm: map[sim.Time]float64{}}
		for _, q := range Fig5Quanta() {
			cell := res.Cell("colo-"+app.Name, sweep.FixedPolicy(q).Name)
			if n := cell.App(app.Name).Norm(); n != nil {
				a.Norm[q] = n.Mean
			}
		}
		out.Apps = append(out.Apps, a)
	}
	return out
}

// Table renders the sweep in the paper's Fig. 5 layout.
func (r *Fig5Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig. 5: normalized performance per quantum (base: 30ms; lower=better)",
		Headers: []string{"app", "type", "1ms", "10ms", "60ms", "90ms", "best"},
	}
	for _, a := range r.Apps {
		t.AddRow(a.Name, a.Expected.String(),
			a.Norm[1*sim.Millisecond], a.Norm[10*sim.Millisecond],
			a.Norm[60*sim.Millisecond], a.Norm[90*sim.Millisecond],
			a.BestQuantum().String())
	}
	t.AddNote("each app colocated with trashing/low-footprint disturbers at 4 vCPUs/pCPU")
	return t
}

package experiments

import (
	"fmt"
	"sort"

	"aqlsched/internal/cluster"
	"aqlsched/internal/report"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sweep"
)

// ScenarioOutcome is one Table-4 scenario under AQL vs default Xen.
type ScenarioOutcome struct {
	Name string
	// Norm maps app name -> normalized perf under AQL (base: Xen).
	Norm map[string]float64
	// Expected type per app name.
	Types map[string]string
	// Clusters is the final layout AQL settled on (Table 5).
	Clusters []*cluster.Cluster
	// Reclusters counts applied reconfigurations.
	Reclusters uint64
}

// SingleSocketResult covers Fig. 6 (left) and Table 5.
type SingleSocketResult struct {
	Scenarios []ScenarioOutcome
}

// SingleSocketSweep declares the Table 4 grid: scenarios S1–S5 under
// default Xen (the baseline) and AQL_Sched.
func SingleSocketSweep(cfg Config) *sweep.Spec {
	warm, meas := cfg.windows()
	sp := &sweep.Spec{
		Name:     "single-socket",
		Policies: []sweep.Policy{sweep.XenPolicy(), sweep.AQLPolicy()},
		Baseline: sweep.XenPolicy().Name,
		BaseSeed: cfg.seed(),
		Warmup:   warm,
		Measure:  meas,
	}
	for _, s := range scenario.Table4(0) {
		sp.Scenarios = append(sp.Scenarios, mustScenario(s.Name))
	}
	return sp
}

// SingleSocket runs the five colocation scenarios of Table 4 under the
// default Xen scheduler and under AQL_Sched, producing the normalized
// per-application performance of Fig. 6 (left) and the cluster layouts
// of Table 5.
func SingleSocket(cfg Config) *SingleSocketResult {
	sp := SingleSocketSweep(cfg)
	res := mustSweep(sp, sweep.Options{})
	out := &SingleSocketResult{}
	aqlName := sweep.AQLPolicy().Name
	for _, sc := range sp.Scenarios {
		oc := ScenarioOutcome{
			Name:  sc.Name,
			Norm:  map[string]float64{},
			Types: map[string]string{},
		}
		if cell := res.Cell(sc.Name, aqlName); cell != nil {
			for i := range cell.Apps {
				ca := &cell.Apps[i]
				oc.Types[ca.App] = ca.Type
				if n := ca.Norm(); n != nil {
					oc.Norm[ca.App] = n.Mean
				}
			}
		}
		if rr := res.RunFor(sc.Name, aqlName, 0); rr != nil {
			if ctl := rr.Controller(); ctl != nil && ctl.LastPlan != nil {
				oc.Clusters = ctl.LastPlan.Clusters
				oc.Reclusters = ctl.Reclusters
			}
		}
		out.Scenarios = append(out.Scenarios, oc)
	}
	return out
}

// Fig6LeftTable renders the per-app normalized performance.
func (r *SingleSocketResult) Fig6LeftTable() *report.Table {
	t := &report.Table{
		Title:   "Fig. 6 (left): AQL_Sched vs default Xen, scenarios S1-S5 (lower=better)",
		Headers: []string{"scenario", "app", "type", "normalized perf"},
	}
	for _, sc := range r.Scenarios {
		names := make([]string, 0, len(sc.Norm))
		for n := range sc.Norm {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			t.AddRow(sc.Name, n, sc.Types[n], sc.Norm[n])
		}
	}
	t.AddNote("normalized over the default Xen scheduler; LoLCF/LLCO are quantum agnostic")
	return t
}

// Table5Table renders the cluster layouts.
func (r *SingleSocketResult) Table5Table() *report.Table {
	t := &report.Table{
		Title:   "Table 5: clustering applied to each scenario",
		Headers: []string{"scenario", "cluster", "quantum", "#pCPUs", "members"},
	}
	for _, sc := range r.Scenarios {
		for _, c := range sc.Clusters {
			byVariant := map[string]int{}
			for _, m := range c.Members {
				byVariant[m.Variant()]++
			}
			keys := make([]string, 0, len(byVariant))
			for k := range byVariant {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			line := ""
			for i, k := range keys {
				if i > 0 {
					line += ", "
				}
				line += fmt.Sprintf("%d %s", byVariant[k], k)
			}
			t.AddRow(sc.Name, c.Name, c.Quantum.String(), len(c.PCPUs), line)
		}
	}
	return t
}

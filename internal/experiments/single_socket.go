package experiments

import (
	"fmt"
	"sort"

	"aqlsched/internal/baselines"
	"aqlsched/internal/cluster"
	"aqlsched/internal/core"
	"aqlsched/internal/report"
	"aqlsched/internal/scenario"
)

// ScenarioOutcome is one Table-4 scenario under AQL vs default Xen.
type ScenarioOutcome struct {
	Name string
	// Norm maps app name -> normalized perf under AQL (base: Xen).
	Norm map[string]float64
	// Expected type per app name.
	Types map[string]string
	// Clusters is the final layout AQL settled on (Table 5).
	Clusters []*cluster.Cluster
	// Reclusters counts applied reconfigurations.
	Reclusters uint64
}

// SingleSocketResult covers Fig. 6 (left) and Table 5.
type SingleSocketResult struct {
	Scenarios []ScenarioOutcome
}

// SingleSocket runs the five colocation scenarios of Table 4 under the
// default Xen scheduler and under AQL_Sched, producing the normalized
// per-application performance of Fig. 6 (left) and the cluster layouts
// of Table 5.
func SingleSocket(cfg Config) *SingleSocketResult {
	out := &SingleSocketResult{}
	warm, meas := cfg.windows()
	for _, spec := range scenario.Table4(cfg.seed()) {
		spec.Warmup = warm
		spec.Measure = meas
		base := scenario.Run(spec, baselines.XenDefault{})
		var ctl *core.Controller
		aql := scenario.Run(spec, baselines.AQL{Out: &ctl})

		oc := ScenarioOutcome{
			Name:  spec.Name,
			Norm:  scenario.Normalize(aql, base),
			Types: map[string]string{},
		}
		for _, a := range aql.Apps {
			oc.Types[a.Name] = a.Expected.String()
		}
		if ctl != nil && ctl.LastPlan != nil {
			oc.Clusters = ctl.LastPlan.Clusters
			oc.Reclusters = ctl.Reclusters
		}
		out.Scenarios = append(out.Scenarios, oc)
	}
	return out
}

// Fig6LeftTable renders the per-app normalized performance.
func (r *SingleSocketResult) Fig6LeftTable() *report.Table {
	t := &report.Table{
		Title:   "Fig. 6 (left): AQL_Sched vs default Xen, scenarios S1-S5 (lower=better)",
		Headers: []string{"scenario", "app", "type", "normalized perf"},
	}
	for _, sc := range r.Scenarios {
		names := make([]string, 0, len(sc.Norm))
		for n := range sc.Norm {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			t.AddRow(sc.Name, n, sc.Types[n], sc.Norm[n])
		}
	}
	t.AddNote("normalized over the default Xen scheduler; LoLCF/LLCO are quantum agnostic")
	return t
}

// Table5Table renders the cluster layouts.
func (r *SingleSocketResult) Table5Table() *report.Table {
	t := &report.Table{
		Title:   "Table 5: clustering applied to each scenario",
		Headers: []string{"scenario", "cluster", "quantum", "#pCPUs", "members"},
	}
	for _, sc := range r.Scenarios {
		for _, c := range sc.Clusters {
			byVariant := map[string]int{}
			for _, m := range c.Members {
				byVariant[m.Variant()]++
			}
			keys := make([]string, 0, len(byVariant))
			for k := range byVariant {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			line := ""
			for i, k := range keys {
				if i > 0 {
					line += ", "
				}
				line += fmt.Sprintf("%d %s", byVariant[k], k)
			}
			t.AddRow(sc.Name, c.Name, c.Quantum.String(), len(c.PCPUs), line)
		}
	}
	return t
}

package experiments

import (
	"aqlsched/internal/calib"
	"aqlsched/internal/report"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
)

// Fig2Result is the calibration experiment outcome.
type Fig2Result struct {
	Report *calib.Report
}

// Fig2 reruns the Section 3.4 calibration (Fig. 2 (a)-(f) plus the
// lock-duration inset).
func Fig2(cfg Config) *Fig2Result {
	warm, meas := cfg.windows()
	o := calib.Options{
		Warmup:  warm,
		Measure: meas,
		Seed:    cfg.seed(),
	}
	if cfg.Quick {
		o.PerPCPU = []int{4}
	}
	return &Fig2Result{Report: calib.Run(o)}
}

// Tables renders the calibration curves, lock durations and the derived
// quantum table.
func (r *Fig2Result) Tables() []*report.Table {
	var out []*report.Table

	for _, curve := range r.Report.Curves {
		t := &report.Table{
			Title:   "Fig. 2: calibration — " + curve.Case.Label,
			Headers: []string{"quantum", "vCPUs/pCPU", "normalized perf (lower=better)"},
		}
		for _, p := range curve.Points {
			t.AddRow(p.Quantum.String(), p.PerPCPU, p.Norm)
		}
		t.AddNote("normalized over the Xen default quantum (30ms)")
		out = append(out, t)
	}

	lock := &report.Table{
		Title:   "Fig. 2 (rightmost): lock duration vs quantum",
		Headers: []string{"quantum", "mean hold", "worst hold (LHP footprint)"},
	}
	for _, p := range r.Report.LockDurations {
		lock.AddRow(p.Quantum.String(), p.MeanHold.String(), p.MaxHold.String())
	}
	out = append(out, lock)

	tbl := &report.Table{
		Title:   "Derived best-quantum table (Section 3.4.2)",
		Headers: []string{"type", "best quantum"},
	}
	for _, ty := range vcputype.All() {
		if q, ok := r.Report.Table.Best[ty]; ok {
			tbl.AddRow(ty.String(), q.String())
		} else {
			tbl.AddRow(ty.String(), "agnostic")
		}
	}
	tbl.AddRow("default", r.Report.Table.Default.String())
	out = append(out, tbl)
	return out
}

// BestQuantum is a convenience accessor.
func (r *Fig2Result) BestQuantum(t vcputype.Type) (sim.Time, bool) {
	return r.Report.Table.QuantumFor(t)
}

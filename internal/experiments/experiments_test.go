package experiments

import (
	"strings"
	"testing"

	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
)

// The experiment tests assert the paper's qualitative results (who
// wins, in which direction) on quick configurations.

func TestFig2ShapesMatchPaper(t *testing.T) {
	r := Fig2(QuickConfig())

	if q, ok := r.BestQuantum(vcputype.IOInt); !ok || q != 1*sim.Millisecond {
		t.Errorf("IOInt best quantum = %v (%v), want 1ms", q, ok)
	}
	if q, ok := r.BestQuantum(vcputype.ConSpin); ok && q > 30*sim.Millisecond {
		t.Errorf("ConSpin best quantum = %v, want small or agnostic", q)
	}
	if q, ok := r.BestQuantum(vcputype.LLCF); !ok || q != 90*sim.Millisecond {
		t.Errorf("LLCF best quantum = %v (%v), want 90ms", q, ok)
	}
	for _, ty := range []vcputype.Type{vcputype.LoLCF, vcputype.LLCO} {
		if _, ok := r.BestQuantum(ty); ok {
			t.Errorf("%v should be quantum-agnostic", ty)
		}
	}
	// Worst lock holds grow with the quantum (Fig. 2 rightmost: the
	// lock-holder-preemption footprint).
	ld := r.Report.LockDurations
	if ld[len(ld)-1].MaxHold <= ld[0].MaxHold {
		t.Errorf("worst lock durations not increasing: %v", ld)
	}
	// Rendering does not crash and mentions every case.
	var sb strings.Builder
	for _, tb := range r.Tables() {
		tb.Render(&sb)
	}
	for _, label := range []string{"Excl. IOInt", "Hetero. IOInt", "ConSpin", "LLCF", "LoLCF", "LLCO"} {
		if !strings.Contains(sb.String(), label) {
			t.Errorf("rendered calibration misses %q", label)
		}
	}
}

func TestFig4VTRSIdentifiesRepresentativeApps(t *testing.T) {
	r := Fig4(QuickConfig())
	if len(r.Traces) != 5 {
		t.Fatalf("%d traces, want 5", len(r.Traces))
	}
	for _, tr := range r.Traces {
		if tr.Final != tr.Expected {
			t.Errorf("%s: final type %v, want %v", tr.App, tr.Final, tr.Expected)
		}
		if len(tr.Samples) < 50 {
			t.Errorf("%s: only %d samples, want >= 50 monitoring periods", tr.App, len(tr.Samples))
		}
		// The expected type's curve is the highest most of the time
		// (after the first window fills).
		if ratio := tr.DominanceRatio(8); ratio < 0.6 {
			t.Errorf("%s: expected type dominant only %.0f%% of periods", tr.App, ratio*100)
		}
	}
}

func TestTable3RecognizesTheSuite(t *testing.T) {
	cfg := QuickConfig()
	if !testing.Short() {
		cfg.Quick = false // full suite when not in short mode
		cfg.Seed = QuickConfig().Seed
	}
	r := Table3(cfg)
	if m := r.Mistyped(); m > len(r.Entries)/8 {
		t.Errorf("%d/%d applications mistyped: %s", m, len(r.Entries), r.Table())
	}
}

func TestFig5EachTypePrefersItsQuantum(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 sweep is slow")
	}
	r := Fig5(QuickConfig())
	for _, a := range r.Apps {
		switch a.Expected {
		case vcputype.IOInt:
			if n := a.Norm[1*sim.Millisecond]; n >= 0.9 {
				t.Errorf("%s (IOInt): 1ms normalized %.3f, want well below 1", a.Name, n)
			}
		case vcputype.ConSpin:
			if n := a.Norm[1*sim.Millisecond]; n >= 1.3 {
				t.Errorf("%s (ConSpin): 1ms normalized %.3f, want no large penalty", a.Name, n)
			}
		case vcputype.LLCF:
			if n := a.Norm[1*sim.Millisecond]; n <= 1.0 {
				t.Errorf("%s (LLCF): 1ms normalized %.3f, want > 1 (penalty)", a.Name, n)
			}
			if n := a.Norm[90*sim.Millisecond]; n > 1.05 {
				t.Errorf("%s (LLCF): 90ms normalized %.3f, want <= ~1", a.Name, n)
			}
		case vcputype.LoLCF, vcputype.LLCO:
			if s := a.Spread(); s > 0.25 {
				t.Errorf("%s (%v): spread %.3f across quanta, want agnostic", a.Name, a.Expected, s)
			}
		}
	}
}

func TestSingleSocketAQLBeatsXen(t *testing.T) {
	r := SingleSocket(QuickConfig())
	if len(r.Scenarios) != 5 {
		t.Fatalf("%d scenarios, want 5", len(r.Scenarios))
	}
	for _, sc := range r.Scenarios {
		for app, norm := range sc.Norm {
			switch sc.Types[app] {
			case "IOInt":
				if norm >= 1.0 {
					t.Errorf("%s/%s: normalized %.3f, want < 1 (AQL wins)", sc.Name, app, norm)
				}
			case "ConSpin":
				// Quantum-agnostic in this substrate: no regression
				// beyond gang-alignment noise (see EXPERIMENTS.md).
				if norm > 1.3 {
					t.Errorf("%s/%s: normalized %.3f, want no large regression", sc.Name, app, norm)
				}
			case "LLCF":
				if norm > 1.08 {
					t.Errorf("%s/%s: normalized %.3f, want <= ~1", sc.Name, app, norm)
				}
			default: // agnostic types: no significant regression
				if norm > 1.25 {
					t.Errorf("%s/%s: normalized %.3f, want ~1 (agnostic)", sc.Name, app, norm)
				}
			}
		}
	}
	// Table 5 layouts: S2 and S5 must match the paper exactly.
	for _, sc := range r.Scenarios {
		if sc.Name != "S2" && sc.Name != "S5" {
			continue
		}
		if len(sc.Clusters) != 2 {
			t.Errorf("%s: %d clusters, want 2", sc.Name, len(sc.Clusters))
			continue
		}
		for _, c := range sc.Clusters {
			if len(c.PCPUs) != 2 {
				t.Errorf("%s/%s: %d pCPUs, want 2", sc.Name, c.Name, len(c.PCPUs))
			}
			if c.Quantum != 1*sim.Millisecond && c.Quantum != 90*sim.Millisecond {
				t.Errorf("%s/%s: quantum %v, want 1ms or 90ms", sc.Name, c.Name, c.Quantum)
			}
		}
	}
}

func TestFig6RightFormsSixClustersAndWins(t *testing.T) {
	if testing.Short() {
		t.Skip("four-socket run is slow")
	}
	r := Fig6Right(QuickConfig())
	if len(r.Clusters) < 5 || len(r.Clusters) > 7 {
		t.Errorf("%d clusters on the 4-socket machine, want ~6 (Fig. 3)", len(r.Clusters))
	}
	// LLCF clusters at 90ms should not regress; IOInt+ clusters at 1ms
	// should improve.
	for _, c := range r.Clusters {
		for variant, norm := range c.PerVariant {
			switch {
			case variant == "IOInt+":
				if norm >= 1.0 {
					t.Errorf("cluster %s %s: normalized %.3f, want < 1", c.Cluster, variant, norm)
				}
			case variant == "LLCF" && c.Quantum == 90*sim.Millisecond:
				// Paper Fig. 6 right: LLCF varies per cluster with its
				// co-runners (C3 vs C4); allow per-cluster variance as
				// long as no cluster collapses.
				if norm > 1.8 {
					t.Errorf("cluster %s LLCF: normalized %.3f, want no collapse", c.Cluster, norm)
				}
			}
		}
	}
}

func TestFig7CustomizationHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("four-socket ablation is slow")
	}
	r := Fig7(QuickConfig())
	// With the large fixed quantum, IOInt+ must be much worse than full
	// AQL; with the small one, LLCF must be worse.
	if n := r.Norm["large (90ms)"]["IOInt"]; n <= 1.1 {
		t.Errorf("large quantum IOInt normalized %.3f, want > 1.1 (customization benefit)", n)
	}
	if n := r.Norm["small (1ms)"]["LLCF"]; n <= 1.0 {
		t.Errorf("small quantum LLCF normalized %.3f, want > 1 (customization benefit)", n)
	}
}

func TestFig8AQLBestAcrossAllTypes(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline comparison is slow")
	}
	r := Fig8(QuickConfig())
	aql := r.Norm["aql"]
	// AQL improves IOInt strongly and never regresses the others beyond
	// gang-alignment noise.
	if n := aql["IOInt"]; n >= 1.0 {
		t.Errorf("AQL IOInt normalized %.3f, want < 1", n)
	}
	if n := aql["LLCF"]; n > 1.1 {
		t.Errorf("AQL LLCF normalized %.3f, want <= ~1", n)
	}
	if n := aql["ConSpin"]; n > 1.3 {
		t.Errorf("AQL ConSpin normalized %.3f, want no large regression", n)
	}
	// Microsliced penalizes LLCF relative to AQL (its known weakness).
	if micro, ok := r.Norm["microsliced"]; ok {
		if micro["LLCF"] <= aql["LLCF"]-0.02 {
			t.Errorf("microsliced LLCF %.3f better than AQL %.3f", micro["LLCF"], aql["LLCF"])
		}
	}
	// No baseline beats AQL on every type simultaneously.
	for pol, m := range r.Norm {
		if pol == "aql" {
			continue
		}
		better := 0
		for ty := range aql {
			if m[ty] < aql[ty]-0.02 {
				better++
			}
		}
		if better == len(aql) {
			t.Errorf("%s beats AQL on every type: %v vs %v", pol, m, aql)
		}
	}
}

func TestOverheadBelowOnePercent(t *testing.T) {
	r := Overhead(QuickConfig())
	if d := r.MaxPerfDelta(); d > 0.01 {
		t.Errorf("monitoring perturbs performance by %.2f%%, want < 1%%", d*100)
	}
	if r.ModelledOverhead > 0.01 {
		t.Errorf("modelled controller overhead %.4f, want < 1%%", r.ModelledOverhead)
	}
	if r.Periods == 0 {
		t.Error("monitor never sampled")
	}
}

func TestStaticTablesRender(t *testing.T) {
	var sb strings.Builder
	Table4(QuickConfig()).Render(&sb)
	Table6().Render(&sb)
	for _, want := range []string{"S1", "S5", "vTurbo", "AQL_Sched", "Microsliced"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("static tables missing %q", want)
		}
	}
}

// TestAdaptationLatencyGrowsWithWindow reproduces the paper's
// Section 3.3 reactivity-vs-churn argument on moving workloads: the
// recognition latency after a ground-truth type flip must grow
// monotonically with the vTRS window n, while recluster/migration
// churn shrinks. n = 1 reacts fastest but thrashes; n = 8 is calm but
// slow — which is why the paper lands on n = 4.
func TestAdaptationLatencyGrowsWithWindow(t *testing.T) {
	res := Adaptation(QuickConfig())
	if len(res.Rows) != len(AdaptationWindows) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(AdaptationWindows))
	}
	for i, row := range res.Rows {
		if row.Latency <= 0 {
			t.Fatalf("window %d: no recognition latency measured", row.Window)
		}
		if i == 0 {
			continue
		}
		prev := res.Rows[i-1]
		if row.Latency < prev.Latency {
			t.Errorf("recognition latency not monotone: n=%d -> %.2f periods, n=%d -> %.2f",
				prev.Window, prev.Latency, row.Window, row.Latency)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.Latency <= first.Latency {
		t.Errorf("latency at n=%d (%.2f) not above n=%d (%.2f)",
			last.Window, last.Latency, first.Window, first.Latency)
	}
	// The other side of the trade-off: the widest window must recluster
	// and migrate less than the narrowest.
	if last.Reclusters >= first.Reclusters {
		t.Errorf("reclusters did not shrink with the window: n=%d -> %.1f, n=%d -> %.1f",
			first.Window, first.Reclusters, last.Window, last.Reclusters)
	}
	if last.Migrations >= first.Migrations {
		t.Errorf("migrations did not shrink with the window: n=%d -> %.1f, n=%d -> %.1f",
			first.Window, first.Migrations, last.Window, last.Migrations)
	}
	res.Table() // must render
}

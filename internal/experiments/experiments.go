// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4) on the simulator:
//
//	Fig. 2   — quantum-length calibration per type (+ lock durations)
//	Fig. 4   — online vTRS cursor traces for 5 representative apps
//	Table 3  — detected type for every benchmark
//	Fig. 5   — per-app performance across quantum lengths (robustness)
//	Table 4  — colocation scenarios (inputs)
//	Table 5  — clusters AQL forms per scenario
//	Fig. 6   — AQL vs default Xen, single-socket (left) and 4-socket
//	           (right, the Fig. 3 population)
//	Fig. 7   — quantum-customization ablation on the 4-socket case
//	Fig. 8   — comparison with vTurbo, Microsliced and vSlicer on S5
//	Table 6  — qualitative feature comparison
//	§4.3     — overhead of the monitoring/recognition/clustering path
//
// Every experiment returns a typed result plus rendered text tables.
// Absolute numbers are simulator-specific; the shapes are what
// reproduce (see EXPERIMENTS.md).
//
// The grid-shaped experiments (Fig. 5, Fig. 6, Fig. 7, Fig. 8) are
// declared as sweep.Spec values and executed by the internal/sweep
// orchestrator on a worker pool — the same grids are runnable
// standalone via cmd/aqlsweep.
package experiments

import (
	"fmt"

	"aqlsched/internal/catalog"
	"aqlsched/internal/hw"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/sweep"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
)

// Config controls experiment durations.
type Config struct {
	// Quick shrinks measurement windows and sweeps (tests, -short).
	Quick bool
	// Seed for all scenario RNGs.
	Seed uint64
}

// DefaultConfig is the full-length configuration.
func DefaultConfig() Config { return Config{Seed: 0xA91} }

// QuickConfig is the reduced configuration.
func QuickConfig() Config { return Config{Quick: true, Seed: 0xA91} }

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 0xA91
	}
	return c.Seed
}

// mustSweep executes a sweep for an experiment entry point. The sweep
// layer tolerates failed runs (a long aqlsweep grid should survive
// one bad cell); the figure runners must not, or a swallowed panic
// would read as a 0x normalized "result" — so any run error escalates.
func mustSweep(sp *sweep.Spec, opts sweep.Options) *sweep.Result {
	res, err := sweep.Exec(sp, opts)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	for i := range res.Runs {
		if e := res.Runs[i].Err; e != nil {
			panic("experiments: " + e.Error())
		}
	}
	return res
}

// mustScenario resolves a catalog scenario for a sweep axis.
func mustScenario(name string) sweep.Scenario {
	sc, err := catalog.ScenarioByName(name)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return sweep.Scenario{Name: sc.Name, New: sc.New}
}

// windows returns (warmup, measure).
func (c Config) windows() (sim.Time, sim.Time) {
	if c.Quick {
		return 1 * sim.Second, 2500 * sim.Millisecond
	}
	return 2 * sim.Second, 6 * sim.Second
}

// Colo builds the paper's standard measurement environment for one
// application: the subject VM colocated with disturber VMs so that k
// vCPUs share each pCPU (Sections 3.4.1 and 4.1). Single-vCPU subjects
// get one pCPU; multi-vCPU subjects get one pCPU per vCPU.
func Colo(app workload.AppSpec, k int, cfg Config) scenario.Spec {
	topo := hw.I73770()
	subjectVCPUs := 1
	if app.Kind == workload.KindLock {
		subjectVCPUs = app.Threads
		if subjectVCPUs <= 0 {
			subjectVCPUs = 4
		}
	}
	var ids []hw.PCPUID
	for i := 0; i < subjectVCPUs; i++ {
		ids = append(ids, hw.PCPUID(i))
	}
	apps := []scenario.Entry{{Spec: app, Count: 1}}
	for i := 0; i < (k-1)*subjectVCPUs; i++ {
		d := workload.MicroListWalk(topo, vcputype.LLCO)
		if i%2 == 1 {
			d = workload.MicroListWalk(topo, vcputype.LoLCF)
		}
		d.Steady = false // disturbers keep housekeeping pauses: schedule drift
		d.JobWork += sim.Time(i%5) * 1700 * sim.Microsecond
		apps = append(apps, scenario.Entry{Spec: d, Count: 1})
	}
	warm, meas := cfg.windows()
	return scenario.Spec{
		Name:       fmt.Sprintf("colo-%s-k%d", app.Name, k),
		Topo:       topo,
		GuestPCPUs: ids,
		Apps:       apps,
		Warmup:     warm,
		Measure:    meas,
		Seed:       cfg.seed(),
	}
}

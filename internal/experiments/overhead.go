package experiments

import (
	"sort"

	"aqlsched/internal/baselines"
	"aqlsched/internal/core"
	"aqlsched/internal/report"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
)

// Per-operation cost model for the controller path (Section 4.3): the
// monitors piggyback on existing event-channel handling and PMU
// registers, so the only real costs are reading counters and the
// O(max(m, n)) recognition + clustering pass.
const (
	costPerVCPUSample = 2 * sim.Microsecond // counter read + cursor math
	costPerEntity     = 1 * sim.Microsecond // clustering per vCPU/pCPU
)

// OverheadResult quantifies the AQL_Sched control-path overhead.
type OverheadResult struct {
	// PerfDelta maps app -> normalized perf of the monitor-only run
	// over plain Xen (1.0 = indistinguishable).
	PerfDelta map[string]float64
	// Periods and Reclusters are the control-path invocation counts.
	Periods    int
	Reclusters uint64
	// ModelledOverhead is the controller CPU time fraction per the cost
	// model (the paper reports < 1%).
	ModelledOverhead float64
}

// Overhead runs scenario S3 under plain Xen and under monitoring-only
// AQL, comparing application performance, and models the controller's
// CPU cost analytically.
func Overhead(cfg Config) *OverheadResult {
	warm, meas := cfg.windows()
	spec := scenario.ScenarioByName("S3", cfg.seed())
	spec.Warmup = warm
	spec.Measure = meas

	base := scenario.Run(spec, baselines.XenDefault{})
	var ctl *core.Controller
	mon := scenario.Run(spec, baselines.AQL{MonitorOnly: true, Out: &ctl})

	out := &OverheadResult{
		PerfDelta: scenario.Normalize(mon, base),
	}
	if ctl != nil {
		out.Periods = ctl.Monitor.Periods()
		out.Reclusters = ctl.Reclusters
		nv := len(mon.Hyp.AllVCPUs())
		np := len(mon.Hyp.GuestPCPUs())
		ctlCost := sim.Time(out.Periods) * (sim.Time(nv)*costPerVCPUSample + sim.Time(nv+np)*costPerEntity)
		total := (warm + meas) * sim.Time(np)
		out.ModelledOverhead = float64(ctlCost) / float64(total)
	}
	return out
}

// Table renders the overhead measurements.
func (r *OverheadResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Section 4.3: AQL_Sched overhead",
		Headers: []string{"metric", "value"},
	}
	apps := make([]string, 0, len(r.PerfDelta))
	for app := range r.PerfDelta {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		t.AddRow("perf delta "+app, r.PerfDelta[app])
	}
	t.AddRow("monitoring periods", r.Periods)
	t.AddRow("reconfigurations", int(r.Reclusters))
	t.AddRow("modelled controller CPU share", r.ModelledOverhead)
	t.AddNote("paper: no degradation above 1%% observed")
	return t
}

// MaxPerfDelta reports the largest |1 - delta| across apps.
func (r *OverheadResult) MaxPerfDelta() float64 {
	max := 0.0
	for _, d := range r.PerfDelta {
		dev := d - 1
		if dev < 0 {
			dev = -dev
		}
		if dev > max {
			max = dev
		}
	}
	return max
}

package experiments

import (
	"sort"

	"aqlsched/internal/report"
	"aqlsched/internal/sweep"
)

// Fig8Apps maps the paper's reported types to S5 applications.
var fig8Apps = []struct {
	Label string
	App   string
}{
	{"IOInt", "SPECweb2009"},
	{"ConSpin", "facesim"},
	{"LLCF", "bzip2"},
}

// Fig8Result compares AQL with the related systems on scenario S5.
type Fig8Result struct {
	// Norm maps policy -> type label -> normalized perf (base: Xen).
	Norm map[string]map[string]float64
}

// Fig8Sweep declares the comparison: scenario S5 under the default Xen
// scheduler (the baseline) and the four contenders.
func Fig8Sweep(cfg Config) *sweep.Spec {
	warm, meas := cfg.windows()
	return &sweep.Spec{
		Name:      "fig8",
		Scenarios: []sweep.Scenario{mustScenario("S5")},
		Policies: []sweep.Policy{
			sweep.XenPolicy(),
			sweep.VTurboPolicy(),
			sweep.MicroslicedPolicy(),
			sweep.VSlicerPolicy(),
			sweep.AQLPolicy(),
		},
		Baseline: sweep.XenPolicy().Name,
		BaseSeed: cfg.seed(),
		Warmup:   warm,
		Measure:  meas,
	}
}

// Fig8 runs S5 under vTurbo, Microsliced, vSlicer and AQL_Sched,
// normalizing each over the default Xen scheduler (the paper's Fig. 8).
// The baselines have no type recognition, so — exactly as the authors
// did — they are configured manually for their best behaviour.
func Fig8(cfg Config) *Fig8Result {
	sp := Fig8Sweep(cfg)
	res := mustSweep(sp, sweep.Options{})
	out := &Fig8Result{Norm: map[string]map[string]float64{}}
	for _, pol := range sp.Policies {
		if pol.Name == sp.Baseline {
			continue
		}
		m := map[string]float64{}
		for _, fa := range fig8Apps {
			m[fa.Label] = res.Norm("S5", pol.Name, fa.App)
		}
		out.Norm[pol.Name] = m
	}
	return out
}

// Table renders the comparison.
func (r *Fig8Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig. 8: comparison with vTurbo, Microsliced and vSlicer on S5 (base: Xen; lower=better)",
		Headers: []string{"policy", "IOInt", "ConSpin", "LLCF"},
	}
	pols := make([]string, 0, len(r.Norm))
	for p := range r.Norm {
		pols = append(pols, p)
	}
	sort.Strings(pols)
	for _, p := range pols {
		t.AddRow(p, r.Norm[p]["IOInt"], r.Norm[p]["ConSpin"], r.Norm[p]["LLCF"])
	}
	t.AddNote("baselines configured manually for best performance (no online recognition)")
	return t
}

package experiments

import (
	"fmt"

	"aqlsched/internal/baselines"
	"aqlsched/internal/core"
	"aqlsched/internal/hw"
	"aqlsched/internal/report"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/vtrs"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

// Fig4Apps are the five representative applications of Fig. 4, one per
// type: SPECweb2009 (IOInt), astar (LLCF), libquantum (LLCO), gobmk
// (LoLCF), fluidanimate (ConSpin).
func Fig4Apps() []workload.AppSpec {
	return []workload.AppSpec{
		workload.SPECWeb2009(),
		workload.ByName("astar"),
		workload.ByName("libquantum"),
		workload.ByName("gobmk"),
		workload.ByName("fluidanimate"),
	}
}

// Fig4Trace is the cursor trace of one application's vCPU.
type Fig4Trace struct {
	App      string
	Expected vcputype.Type
	Samples  []vtrs.Sample
	Final    vcputype.Type
}

// Fig4Result is the online-vTRS experiment outcome.
type Fig4Result struct {
	Traces  []Fig4Trace
	Periods int
}

// Fig4 colocates the five representative applications at 4 vCPUs per
// pCPU and records 50+ monitoring periods of cursor averages for one
// vCPU of each (the paper's Fig. 4), plus the decided type.
func Fig4(cfg Config) *Fig4Result {
	// 5 apps: 4 single-vCPU + fluidanimate with 4 vCPUs = 8 vCPUs on
	// 2 pCPUs (4 per pCPU, the paper's standard ratio).
	warm, _ := cfg.windows()
	periods := 50
	spec := scenario.Spec{
		Name:       "fig4",
		GuestPCPUs: []hw.PCPUID{0, 1},
		Warmup:     warm,
		Measure:    sim.Time(periods+5) * vtrs.DefaultPeriod,
		Seed:       cfg.seed(),
	}
	for _, app := range Fig4Apps() {
		spec.Apps = append(spec.Apps, scenario.Entry{Spec: app, Count: 1})
	}

	var ctl *core.Controller
	pol := baselines.AQL{MonitorOnly: true, Out: &ctl}

	// We need traces enabled before the run starts; use the policy's
	// Setup hook by wrapping it.
	wrapped := &tracingPolicy{inner: pol, ctl: &ctl}
	res := scenario.Run(spec, wrapped)

	out := &Fig4Result{Periods: ctl.Monitor.Periods()}
	for _, d := range res.Deps {
		v := d.Dom.VCPUs[0]
		out.Traces = append(out.Traces, Fig4Trace{
			App:      d.Spec.Name,
			Expected: d.Spec.Expected,
			Samples:  ctl.Monitor.Samples(v),
			Final:    ctl.Monitor.TypeOf(v),
		})
	}
	return out
}

// tracingPolicy wraps the AQL monitor-only policy and enables tracing
// on every vCPU right after setup.
type tracingPolicy struct {
	inner baselines.AQL
	ctl   **core.Controller
}

func (p *tracingPolicy) Name() string { return "vtrs-trace" }

func (p *tracingPolicy) Setup(h *xen.Hypervisor, deps []*workload.Deployment) {
	p.inner.Setup(h, deps)
	for _, d := range deps {
		(*p.ctl).Monitor.Trace(d.Dom.VCPUs[0])
	}
}

// Table renders the trace as the paper's per-period dominant cursors.
func (r *Fig4Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig. 4: online vTRS — cursor averages every 10th monitoring period",
		Headers: []string{"app", "expected", "final", "periods: type(avg) ..."},
	}
	for _, tr := range r.Traces {
		line := ""
		for i, s := range tr.Samples {
			if i%10 != 9 {
				continue
			}
			line += fmt.Sprintf("p%d:%s(%.0f) ", s.Period, s.Type, s.Avg.Get(s.Type))
		}
		t.AddRow(tr.App, tr.Expected.String(), tr.Final.String(), line)
	}
	return t
}

// DominanceRatio reports, for one trace, the fraction of samples (after
// the warm-in skip) in which the expected type's cursor average is the
// highest — the "curve higher than the others most of the time"
// criterion of Fig. 4.
func (tr Fig4Trace) DominanceRatio(skip int) float64 {
	n, dom := 0, 0
	for i, s := range tr.Samples {
		if i < skip {
			continue
		}
		n++
		if s.Type == tr.Expected {
			dom++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(dom) / float64(n)
}

package experiments

import (
	"io"

	"aqlsched/internal/report"
	"aqlsched/internal/scenario"
)

// Table4 renders the colocation scenarios (experiment inputs).
func Table4(cfg Config) *report.Table {
	t := &report.Table{
		Title:   "Table 4: colocation scenarios (16 vCPUs on 4 pCPUs)",
		Headers: []string{"scenario", "application", "type", "VMs", "vCPUs"},
	}
	for _, spec := range scenario.Table4(cfg.seed()) {
		for _, e := range spec.Apps {
			vcpus := e.Count
			if e.Spec.Threads > 0 {
				vcpus = e.Count * e.Spec.Threads
			}
			t.AddRow(spec.Name, e.Spec.Name, e.Spec.Expected.String(), e.Count, vcpus)
		}
	}
	return t
}

// Table6 renders the qualitative feature comparison of the paper.
func Table6() *report.Table {
	t := &report.Table{
		Title: "Table 6: AQL_Sched compared with existing solutions",
		Headers: []string{
			"solution", "dynamic type recognition", "handled types", "overhead", "hardware change",
		},
	}
	t.AddRow("vTurbo", "not supported", "IO", "no overhead", "no")
	t.AddRow("vSlicer", "not supported", "IO", "no overhead", "no")
	t.AddRow("Microsliced", "not supported", "IO, spin-lock", "overhead for CPU-burn apps", "yes")
	t.AddRow("Xen BOOST", "supported", "IO", "no overhead", "no")
	t.AddRow("AQL_Sched", "supported", "IO, spin-lock, CPU burn", "no overhead", "no")
	return t
}

// All runs every experiment and renders the full evaluation to w.
func All(cfg Config, w io.Writer) {
	Table4(cfg).Render(w)

	f2 := Fig2(cfg)
	for _, t := range f2.Tables() {
		t.Render(w)
	}

	f4 := Fig4(cfg)
	f4.Table().Render(w)

	t3 := Table3(cfg)
	t3.Table().Render(w)

	f5 := Fig5(cfg)
	f5.Table().Render(w)

	ss := SingleSocket(cfg)
	ss.Table5Table().Render(w)
	ss.Fig6LeftTable().Render(w)

	f6r := Fig6Right(cfg)
	f6r.Table().Render(w)

	f7 := Fig7(cfg)
	f7.Table().Render(w)

	f8 := Fig8(cfg)
	f8.Table().Render(w)

	Table6().Render(w)

	ad := Adaptation(cfg)
	ad.Table().Render(w)

	ov := Overhead(cfg)
	ov.Table().Render(w)
}

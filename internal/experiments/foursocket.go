package experiments

import (
	"fmt"
	"sort"

	"aqlsched/internal/baselines"
	"aqlsched/internal/core"
	"aqlsched/internal/report"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
)

// ClusterPerf summarizes one cluster of the 4-socket experiment.
type ClusterPerf struct {
	Cluster string
	Quantum sim.Time
	Socket  int
	// PerVariant maps the paper's variant notation (IOInt+, LLCF, ...)
	// to the mean normalized performance of the member VMs.
	PerVariant map[string]float64
	Members    int
	PCPUs      int
}

// Fig6RightResult is the 4-socket experiment outcome.
type Fig6RightResult struct {
	Clusters   []ClusterPerf
	Reclusters uint64
}

// runFourSocket executes the Fig. 3 population under a policy and
// returns the scenario results.
func runFourSocket(cfg Config, pol scenario.Policy) *scenario.Result {
	spec := scenario.FourSocket(cfg.seed())
	spec.Warmup, spec.Measure = cfg.windows()
	return scenario.Run(spec, pol)
}

// Fig6Right runs the Fig. 3 population (12 LLCO, 12 IOInt+, 17 LLCF,
// 7 ConSpin- vCPUs on three guest sockets) under default Xen and AQL,
// reporting normalized performance per cluster as the paper does.
func Fig6Right(cfg Config) *Fig6RightResult {
	base := runFourSocket(cfg, baselines.XenDefault{})
	var ctl *core.Controller
	aql := runFourSocket(cfg, baselines.AQL{Out: &ctl})

	// Per-VM normalized performance.
	norm := map[string]float64{}
	for _, vm := range aql.PerVM {
		b := base.VM(vm.Name)
		if b.Metric() > 0 {
			norm[vm.Name] = vm.Metric() / b.Metric()
		}
	}

	out := &Fig6RightResult{}
	if ctl == nil || ctl.LastPlan == nil {
		return out
	}
	out.Reclusters = ctl.Reclusters
	for _, c := range ctl.LastPlan.Clusters {
		cp := ClusterPerf{
			Cluster:    c.Name,
			Quantum:    c.Quantum,
			Socket:     int(c.Socket),
			PerVariant: map[string]float64{},
			Members:    len(c.Members),
			PCPUs:      len(c.PCPUs),
		}
		sums := map[string]float64{}
		counts := map[string]int{}
		for _, m := range c.Members {
			if v, ok := norm[m.V.Domain.Name]; ok {
				sums[m.Variant()] += v
				counts[m.Variant()]++
			}
		}
		for k, s := range sums {
			cp.PerVariant[k] = s / float64(counts[k])
		}
		out.Clusters = append(out.Clusters, cp)
	}
	return out
}

// Table renders the per-cluster normalized performance.
func (r *Fig6RightResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig. 6 (right): 4-socket machine, per-cluster normalized perf (base: Xen)",
		Headers: []string{"socket", "cluster", "quantum", "vCPUs/pCPUs", "variant", "normalized"},
	}
	for _, c := range r.Clusters {
		keys := make([]string, 0, len(c.PerVariant))
		for k := range c.PerVariant {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			t.AddRow(c.Socket, c.Cluster, c.Quantum.String(),
				fmt.Sprintf("%d/%d", c.Members, c.PCPUs), k, c.PerVariant[k])
		}
	}
	return t
}

// Fig7Result is the quantum-customization ablation.
type Fig7Result struct {
	// Norm maps fixed-quantum label -> variant -> mean normalized perf
	// over the full AQL run (>1 means the ablation is worse, i.e.
	// customization helped).
	Norm map[string]map[string]float64
}

// Fig7 replays the 4-socket experiment with the clustering step active
// but the quantum customization disabled — every pool runs a fixed
// small (1 ms), medium (30 ms) or large (90 ms) quantum — and
// normalizes over the full AQL_Sched run (the paper's Fig. 7).
func Fig7(cfg Config) *Fig7Result {
	full := runFourSocket(cfg, baselines.AQL{})
	fullVM := map[string]float64{}
	for _, vm := range full.PerVM {
		fullVM[vm.Name] = vm.Metric()
	}
	variantOf := map[string]string{}
	for _, d := range full.Deps {
		variantOf[d.Dom.Name] = d.Spec.Expected.String()
	}

	out := &Fig7Result{Norm: map[string]map[string]float64{}}
	cases := []struct {
		label string
		q     sim.Time
	}{
		{"small (1ms)", 1 * sim.Millisecond},
		{"medium (30ms)", 30 * sim.Millisecond},
		{"large (90ms)", 90 * sim.Millisecond},
	}
	for _, cse := range cases {
		res := runFourSocket(cfg, baselines.AQL{DisableCustomization: true, FixedQuantum: cse.q})
		sums := map[string]float64{}
		counts := map[string]int{}
		for _, vm := range res.PerVM {
			base := fullVM[vm.Name]
			if base <= 0 {
				continue
			}
			v := variantOf[vm.Name]
			sums[v] += vm.Metric() / base
			counts[v]++
		}
		m := map[string]float64{}
		for k, s := range sums {
			m[k] = s / float64(counts[k])
		}
		out.Norm[cse.label] = m
	}
	return out
}

// Table renders the ablation.
func (r *Fig7Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig. 7: benefit of quantum customization (normalized over full AQL; >1 = ablation worse)",
		Headers: []string{"fixed quantum", "type", "normalized perf"},
	}
	labels := make([]string, 0, len(r.Norm))
	for l := range r.Norm {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		types := make([]string, 0, len(r.Norm[l]))
		for ty := range r.Norm[l] {
			types = append(types, ty)
		}
		sort.Strings(types)
		for _, ty := range types {
			t.AddRow(l, ty, r.Norm[l][ty])
		}
	}
	t.AddNote("clustering stays active; only the per-pool quantum customization is disabled")
	return t
}

package experiments

import (
	"fmt"
	"sort"

	"aqlsched/internal/report"
	"aqlsched/internal/sim"
	"aqlsched/internal/sweep"
)

// ClusterPerf summarizes one cluster of the 4-socket experiment.
type ClusterPerf struct {
	Cluster string
	Quantum sim.Time
	Socket  int
	// PerVariant maps the paper's variant notation (IOInt+, LLCF, ...)
	// to the mean normalized performance of the member VMs.
	PerVariant map[string]float64
	Members    int
	PCPUs      int
}

// Fig6RightResult is the 4-socket experiment outcome.
type Fig6RightResult struct {
	Clusters   []ClusterPerf
	Reclusters uint64
}

// FourSocketSweep declares a sweep of the Fig. 3 population under the
// given policy axis.
func FourSocketSweep(cfg Config, name, baseline string, pols []sweep.Policy) *sweep.Spec {
	warm, meas := cfg.windows()
	return &sweep.Spec{
		Name:      name,
		Scenarios: []sweep.Scenario{mustScenario("four-socket")},
		Policies:  pols,
		Baseline:  baseline,
		BaseSeed:  cfg.seed(),
		Warmup:    warm,
		Measure:   meas,
	}
}

// perVMNorm pairs two runs' per-VM measurements: measured metric over
// baseline metric, keyed by domain name.
func perVMNorm(measured, base *sweep.RunResult) map[string]float64 {
	baseVM := map[string]float64{}
	for _, vm := range base.PerVM {
		v, _ := vm.Perf()
		baseVM[vm.Name] = v
	}
	norm := map[string]float64{}
	for _, vm := range measured.PerVM {
		// A measured VM whose metric failed contributes 0 — the
		// paper-figure semantics these per-VM plots were produced with
		// (a starved VM under the ablation reads as 0, not as absent).
		v, _ := vm.Perf()
		if b := baseVM[vm.Name]; b > 0 {
			norm[vm.Name] = v / b
		}
	}
	return norm
}

// Fig6Right runs the Fig. 3 population (12 LLCO, 12 IOInt+, 17 LLCF,
// 7 ConSpin- vCPUs on three guest sockets) under default Xen and AQL,
// reporting normalized performance per cluster as the paper does.
func Fig6Right(cfg Config) *Fig6RightResult {
	sp := FourSocketSweep(cfg, "fig6-right", sweep.XenPolicy().Name,
		[]sweep.Policy{sweep.XenPolicy(), sweep.AQLPolicy()})
	res := mustSweep(sp, sweep.Options{})
	base := res.RunFor("four-socket", sweep.XenPolicy().Name, 0)
	aql := res.RunFor("four-socket", sweep.AQLPolicy().Name, 0)

	// Per-VM normalized performance.
	norm := perVMNorm(aql, base)

	out := &Fig6RightResult{}
	ctl := aql.Controller()
	if ctl == nil || ctl.LastPlan == nil {
		return out
	}
	out.Reclusters = ctl.Reclusters
	for _, c := range ctl.LastPlan.Clusters {
		cp := ClusterPerf{
			Cluster:    c.Name,
			Quantum:    c.Quantum,
			Socket:     int(c.Socket),
			PerVariant: map[string]float64{},
			Members:    len(c.Members),
			PCPUs:      len(c.PCPUs),
		}
		sums := map[string]float64{}
		counts := map[string]int{}
		for _, m := range c.Members {
			if v, ok := norm[m.V.Domain.Name]; ok {
				sums[m.Variant()] += v
				counts[m.Variant()]++
			}
		}
		for k, s := range sums {
			cp.PerVariant[k] = s / float64(counts[k])
		}
		out.Clusters = append(out.Clusters, cp)
	}
	return out
}

// Table renders the per-cluster normalized performance.
func (r *Fig6RightResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig. 6 (right): 4-socket machine, per-cluster normalized perf (base: Xen)",
		Headers: []string{"socket", "cluster", "quantum", "vCPUs/pCPUs", "variant", "normalized"},
	}
	for _, c := range r.Clusters {
		keys := make([]string, 0, len(c.PerVariant))
		for k := range c.PerVariant {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			t.AddRow(c.Socket, c.Cluster, c.Quantum.String(),
				fmt.Sprintf("%d/%d", c.Members, c.PCPUs), k, c.PerVariant[k])
		}
	}
	return t
}

// Fig7Result is the quantum-customization ablation.
type Fig7Result struct {
	// Norm maps fixed-quantum label -> variant -> mean normalized perf
	// over the full AQL run (>1 means the ablation is worse, i.e.
	// customization helped).
	Norm map[string]map[string]float64
}

// Fig7 replays the 4-socket experiment with the clustering step active
// but the quantum customization disabled — every pool runs a fixed
// small (1 ms), medium (30 ms) or large (90 ms) quantum — and
// normalizes over the full AQL_Sched run (the paper's Fig. 7).
func Fig7(cfg Config) *Fig7Result {
	cases := []struct {
		label string
		q     sim.Time
	}{
		{"small (1ms)", 1 * sim.Millisecond},
		{"medium (30ms)", 30 * sim.Millisecond},
		{"large (90ms)", 90 * sim.Millisecond},
	}
	pols := []sweep.Policy{sweep.AQLPolicy()}
	for _, cse := range cases {
		pols = append(pols, sweep.AQLNoCustomPolicy(cse.q))
	}
	sp := FourSocketSweep(cfg, "fig7", sweep.AQLPolicy().Name, pols)
	res := mustSweep(sp, sweep.Options{})
	full := res.RunFor("four-socket", sweep.AQLPolicy().Name, 0)
	variantOf := map[string]string{}
	for _, vm := range full.PerVM {
		variantOf[vm.Name] = vm.Expected.String()
	}

	out := &Fig7Result{Norm: map[string]map[string]float64{}}
	for i, cse := range cases {
		ablation := res.RunFor("four-socket", pols[i+1].Name, 0)
		norm := perVMNorm(ablation, full)
		sums := map[string]float64{}
		counts := map[string]int{}
		// Accumulate in deployment order: summing in map-iteration
		// order would make the means float-order nondeterministic.
		for _, vm := range ablation.PerVM {
			n, ok := norm[vm.Name]
			if !ok {
				continue
			}
			v := variantOf[vm.Name]
			sums[v] += n
			counts[v]++
		}
		m := map[string]float64{}
		for k, s := range sums {
			m[k] = s / float64(counts[k])
		}
		out.Norm[cse.label] = m
	}
	return out
}

// Table renders the ablation.
func (r *Fig7Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig. 7: benefit of quantum customization (normalized over full AQL; >1 = ablation worse)",
		Headers: []string{"fixed quantum", "type", "normalized perf"},
	}
	labels := make([]string, 0, len(r.Norm))
	for l := range r.Norm {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		types := make([]string, 0, len(r.Norm[l]))
		for ty := range r.Norm[l] {
			types = append(types, ty)
		}
		sort.Strings(types)
		for _, ty := range types {
			t.AddRow(l, ty, r.Norm[l][ty])
		}
	}
	t.AddNote("clustering stays active; only the per-pool quantum customization is disabled")
	return t
}

// Package vcputype defines the five vCPU type labels of the paper
// (Section 3.2). It exists separately so the recognition system, the
// clustering algorithms, the workload suite and the controller can share
// the taxonomy without import cycles.
package vcputype

import "fmt"

// Type is one of the five application types the paper identifies.
type Type int

const (
	// IOInt: IO intensive, latency critical.
	IOInt Type = iota
	// ConSpin: concurrent threads synchronizing through spin-locks.
	ConSpin
	// LLCF: last-level-cache friendly (WSS fits in the LLC).
	LLCF
	// LLCO: trashing (WSS overflows the LLC).
	LLCO
	// LoLCF: low-level-cache friendly (WSS fits in L1/L2).
	LoLCF
	numTypes
)

// None marks a measurement with no single expected type: fleet tenants
// aggregate VMs of many types, so their AppMeasures carry no taxonomy
// label. It is outside All() and never parses.
const None Type = -1

// All lists the five types in the paper's priority order: when cursor
// averages tie, the earlier (more specific) type wins.
func All() []Type { return []Type{IOInt, ConSpin, LLCF, LLCO, LoLCF} }

// String implements fmt.Stringer with the paper's notation.
func (t Type) String() string {
	switch t {
	case None:
		return "-"
	case IOInt:
		return "IOInt"
	case ConSpin:
		return "ConSpin"
	case LLCF:
		return "LLCF"
	case LLCO:
		return "LLCO"
	case LoLCF:
		return "LoLCF"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Parse converts a label back to a Type.
func Parse(s string) (Type, error) {
	for _, t := range All() {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("vcputype: unknown type %q", s)
}

// Agnostic reports whether the type is quantum-length agnostic per the
// paper's calibration (Section 3.4.2): LoLCF and LLCO perform the same
// under any quantum and are used to balance clusters.
func (t Type) Agnostic() bool { return t == LoLCF || t == LLCO }

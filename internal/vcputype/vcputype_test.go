package vcputype

import "testing"

func TestStringAndParseRoundTrip(t *testing.T) {
	for _, ty := range All() {
		got, err := Parse(ty.String())
		if err != nil {
			t.Errorf("Parse(%q): %v", ty.String(), err)
		}
		if got != ty {
			t.Errorf("round trip %v -> %v", ty, got)
		}
	}
}

func TestParseRejectsUnknown(t *testing.T) {
	if _, err := Parse("NotAType"); err == nil {
		t.Error("Parse accepted an unknown label")
	}
}

func TestAgnosticTypes(t *testing.T) {
	want := map[Type]bool{
		IOInt: false, ConSpin: false, LLCF: false,
		LLCO: true, LoLCF: true,
	}
	for ty, w := range want {
		if ty.Agnostic() != w {
			t.Errorf("%v.Agnostic() = %v, want %v", ty, ty.Agnostic(), w)
		}
	}
}

func TestPriorityOrderIsSpecificFirst(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("%d types, want 5", len(all))
	}
	if all[0] != IOInt || all[1] != ConSpin {
		t.Errorf("priority order %v: IOInt and ConSpin must lead", all)
	}
	if all[len(all)-1] != LoLCF {
		t.Errorf("priority order %v: LoLCF (the generic fallback) must be last", all)
	}
}

package cache

import (
	"math"
	"testing"

	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
)

// legacyBisect is the pre-Newton budget solver, kept verbatim as the
// reference: 48 bisection steps on wall(w) with one exp per probe and
// the exact historical expression tree.
func legacyBisect(m *Model, wallBudget, hi0, r0, T, floor, refRate float64) float64 {
	coldInt := func(w float64) float64 {
		return (1 - r0) * T * (1 - math.Exp(-w/T))
	}
	missCount := func(w float64) float64 {
		c := coldInt(w)
		return refRate * (floor*w + (1-floor)*c)
	}
	wall := func(w float64) float64 { return w + m.missCost*missCount(w) }

	lo, hi := 0.0, hi0
	for i := 0; i < 48 && hi-lo > 1e-9*(1+hi); i++ {
		mid := (lo + hi) / 2
		if wall(mid) > wallBudget {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

// TestSolveBudgetBitIdenticalToLegacyBisection differentially tests the
// Newton+replay solver against the legacy bisection over a large seeded
// random parameter sweep. Bit-identical means exactly that: any ulp of
// drift in the returned float64 fails, because downstream quantization
// (ceilTime, counter truncation) could amplify it into a visible
// artifact diff.
func TestSolveBudgetBitIdenticalToLegacyBisection(t *testing.T) {
	m := testModel()
	n := 200000
	if testing.Short() {
		n = 20000
	}
	for _, seed := range []uint64{0xB157, 0x7E57, 0xFACE} {
		rng := sim.NewRNG(seed)
		t.Run("", func(t *testing.T) { diffSolver(t, m, rng, n) })
	}
}

func diffSolver(t *testing.T, m *Model, rng *sim.RNG, n int) {
	for i := 0; i < n; i++ {
		// Parameter ranges covering (and exceeding) what real profiles
		// and topologies produce.
		r0 := rng.Float64()
		floor := rng.Float64() * 0.5
		refRate := math.Exp(rng.Float64()*8 - 2)   // ~0.14 .. 55 refs/µs
		T := math.Exp(rng.Float64()*12 + 1)        // ~2.7 .. 4.4e5 µs
		work := math.Exp(rng.Float64()*14 - 2)     // ~0.14 .. 2.2e4 µs
		budget := work * (0.01 + rng.Float64()*10) // below and above wall(work)

		// Only budget-limited cases reach the solver; mirror the caller's
		// entry condition.
		ew := math.Exp(-work / T)
		c := (1 - r0) * T * (1 - ew)
		wallW := work + m.missCost*(refRate*(floor*work+(1-floor)*c))
		if wallW <= budget {
			continue
		}
		hi0 := math.Min(work, budget)
		want := legacyBisect(m, budget, hi0, r0, T, floor, refRate)
		got := m.solveBudget(budget, hi0, r0, T, floor, refRate)
		if got != want {
			t.Fatalf("case %d: solveBudget(budget=%.17g, hi0=%.17g, r0=%.17g, T=%.17g, floor=%.17g, refRate=%.17g)\n got %.17g\nwant %.17g (diff %g)",
				i, budget, hi0, r0, T, floor, refRate, got, want, got-want)
		}
	}
}

// TestRunBudgetLimitedMatchesLegacyEndToEnd drives Model.Run itself on
// budget-limited bursts and checks the full BurstResult (Wall, Ideal,
// counters, inserted bytes, footprint) against a model running the
// legacy solver — the end-to-end guarantee the artifacts depend on.
func TestRunBudgetLimitedMatchesLegacyEndToEnd(t *testing.T) {
	mNew := testModel()
	mRef := testModel()
	rng := sim.NewRNG(0x5EED)
	profs := []Profile{
		{WSS: 4 * hw.MB, RefRate: 10, MissFloor: 0.01},
		{WSS: 6 * hw.MB, RefRate: 40, MissFloor: 0.02},
		{WSS: 12 * hw.MB, RefRate: 25, MissFloor: 0.01}, // overflows cap
	}
	for i := 0; i < 2000; i++ {
		prof := profs[int(rng.Uint64()%3)]
		work := sim.Time(1000 + rng.Uint64()%200000)
		budget := sim.Time(1 + rng.Uint64()%2000)
		var fpN, fpR Footprint
		fpN.resident = rng.Float64() * float64(prof.WSS)
		fpN.socket, fpN.valid, fpN.mark = 0, true, mNew.sockets[0].inserted
		fpR.resident = fpN.resident
		fpR.socket, fpR.valid, fpR.mark = 0, true, mRef.sockets[0].inserted

		got := mNew.Run(&fpN, 0, prof, work, budget)
		want := runWithLegacySolver(mRef, &fpR, 0, prof, work, budget)
		if got != want {
			t.Fatalf("case %d (prof=%+v work=%v budget=%v):\n got %+v\nwant %+v", i, prof, work, budget, got, want)
		}
		if fpN.resident != fpR.resident {
			t.Fatalf("case %d: footprint drifted: %.17g vs %.17g", i, fpN.resident, fpR.resident)
		}
	}
}

// runWithLegacySolver reimplements Run's cached branch with the legacy
// bisection (everything else shared), for the end-to-end reference.
func runWithLegacySolver(m *Model, fp *Footprint, core hw.PCPUID, prof Profile, work, budget sim.Time) BurstResult {
	s := m.topo.SocketOf(core)
	m.decay(fp, s)
	res := BurstResult{}
	wallLeft := float64(budget)
	if m.cores[core].last != fp {
		m.cores[core].last = fp
		fill := float64(min64(prof.WSS, m.topo.L2.Size)) * m.l2Fill
		if fill >= wallLeft {
			res.Wall = budget
			res.Ideal = 0
			return res
		}
		wallLeft -= fill
	}
	w := float64(work)

	eff := math.Min(float64(prof.WSS), m.capBytes)
	line := float64(m.topo.LLC.LineSize)
	floor := prof.MissFloor
	if prof.WSS > int64(m.capBytes) {
		floor = math.Max(floor, 1-m.capBytes/float64(prof.WSS))
	}
	r0 := 0.0
	if eff > 0 {
		r0 = math.Min(fp.resident/eff, 1)
	}
	T := eff / (prof.RefRate * math.Max(1-floor, 1e-9) * line)
	coldInt := func(w float64) float64 { return (1 - r0) * T * (1 - math.Exp(-w/T)) }
	missCount := func(w float64) float64 {
		c := coldInt(w)
		return prof.RefRate * (floor*w + (1-floor)*c)
	}
	wall := func(w float64) float64 { return w + m.missCost*missCount(w) }
	if wall(w) > wallLeft {
		w = legacyBisect(m, wallLeft, math.Min(w, wallLeft), r0, T, floor, prof.RefRate)
	}
	idealDone := w
	misses := missCount(w)
	refsF := prof.RefRate * w
	r := 1 - (1-r0)*math.Exp(-w/T)
	fp.resident = math.Min(r*eff, eff)

	res.InsertedBytes = misses * float64(m.topo.LLC.LineSize)
	m.insert(s, res.InsertedBytes)
	wallUsed := float64(budget) - wallLeft + idealDone + misses*m.missCost
	res.Wall = ceilTime(wallUsed)
	if res.Wall > budget {
		res.Wall = budget
	}
	if res.Wall < 1 {
		res.Wall = 1
	}
	res.Ideal = sim.Time(idealDone)
	res.Finished = res.Ideal >= work
	if res.Finished {
		res.Ideal = work
	}
	res.Counters = hw.Counters{
		Instructions:  uint64(idealDone * prof.instrRate()),
		LLCReferences: uint64(refsF * prof.reuse()),
		LLCMisses:     uint64(misses),
	}
	fp.mark = m.sockets[s].inserted
	return res
}

package cache

import (
	"fmt"

	"aqlsched/internal/sim"
)

// SetAssoc is a direct set-associative cache simulator with LRU
// replacement. It exists to validate the analytic occupancy model: the
// package tests drive it with the Drepper-style linked-list walks the
// paper used for calibration ([27] in the paper) and check that the
// analytic model's miss behaviour matches within tolerance.
type SetAssoc struct {
	sets     int
	ways     int
	lineSize int64
	// lines[set][way] holds the tag; stamps[set][way] the LRU clock.
	lines  [][]uint64
	stamps [][]uint64
	clock  uint64

	accesses uint64
	misses   uint64
}

// NewSetAssoc builds a cache of the given total size, associativity and
// line size. When size is not a multiple of ways*lineSize (the paper's
// Table 2 lists a 20-way 8 MB LLC, which is not), the set count is
// rounded down, slightly shrinking the modelled capacity.
func NewSetAssoc(size int64, ways int, lineSize int64) *SetAssoc {
	if ways <= 0 || lineSize <= 0 || size <= 0 {
		panic("cache: invalid set-associative geometry")
	}
	sets := int(size / (int64(ways) * lineSize))
	if sets <= 0 {
		panic(fmt.Sprintf("cache: size %d too small for %d-way sets of %d-byte lines", size, ways, lineSize))
	}
	c := &SetAssoc{sets: sets, ways: ways, lineSize: lineSize}
	c.lines = make([][]uint64, sets)
	c.stamps = make([][]uint64, sets)
	for i := range c.lines {
		c.lines[i] = make([]uint64, ways)
		c.stamps[i] = make([]uint64, ways)
		for w := range c.lines[i] {
			c.lines[i][w] = ^uint64(0) // invalid
		}
	}
	return c
}

// Access touches the byte address and reports whether it missed.
func (c *SetAssoc) Access(addr uint64) bool {
	c.clock++
	c.accesses++
	lineAddr := addr / uint64(c.lineSize)
	set := int(lineAddr % uint64(c.sets))
	tag := lineAddr / uint64(c.sets)

	oldest, oldestStamp := 0, ^uint64(0)
	for w := 0; w < c.ways; w++ {
		if c.lines[set][w] == tag {
			c.stamps[set][w] = c.clock
			return false
		}
		if c.stamps[set][w] < oldestStamp {
			oldest, oldestStamp = w, c.stamps[set][w]
		}
	}
	c.misses++
	c.lines[set][oldest] = tag
	c.stamps[set][oldest] = c.clock
	return true
}

// Stats reports accesses and misses so far.
func (c *SetAssoc) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// MissRatio reports the cumulative miss ratio.
func (c *SetAssoc) MissRatio() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears statistics but keeps contents.
func (c *SetAssoc) ResetStats() { c.accesses, c.misses = 0, 0 }

// ListWalk simulates the paper's calibration micro-benchmark ([27],
// "parsing of a linked list"): a pseudo-random permutation walk over a
// working set of wss bytes, touching one line per step. It returns the
// miss ratio over `steps` accesses.
func ListWalk(c *SetAssoc, wss int64, steps int, rng *sim.RNG) float64 {
	c.ResetStats()
	linesInSet := wss / c.lineSize
	if linesInSet <= 0 {
		linesInSet = 1
	}
	// A fixed stride co-prime with the line count approximates a
	// permutation walk deterministically; start offset randomized.
	pos := uint64(rng.Intn(int(linesInSet)))
	const stride = 9973 // prime
	for i := 0; i < steps; i++ {
		pos = (pos + stride) % uint64(linesInSet)
		c.Access(pos * uint64(c.lineSize))
	}
	return c.MissRatio()
}

package cache

import (
	"math"
	"testing"
	"testing/quick"

	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
)

func testModel() *Model { return NewModel(hw.I73770()) }

// Profiles mirroring the calibration micro-benchmarks.
func llcfProfile() Profile {
	return Profile{WSS: 4 * hw.MB, RefRate: 10, MissFloor: 0.01}
}
func llcoProfile() Profile {
	return Profile{WSS: 16 * hw.MB, RefRate: 30, Streaming: true, StreamMissRatio: 0.9}
}
func lolcfProfile() Profile {
	return Profile{WSS: 230 * hw.KB, RefRate: 0.1}
}

func TestColdRunIsSlowerThanWarmRun(t *testing.T) {
	m := testModel()
	var fp Footprint
	prof := llcfProfile()
	const work = 5000 * sim.Millisecond // more than enough budget

	cold := m.Run(&fp, 0, prof, 10*sim.Millisecond, work)
	if !cold.Finished {
		t.Fatal("cold burst did not finish within huge budget")
	}
	warm := m.Run(&fp, 0, prof, 10*sim.Millisecond, work)
	if !warm.Finished {
		t.Fatal("warm burst did not finish")
	}
	if cold.Wall <= warm.Wall {
		t.Errorf("cold wall %v not slower than warm wall %v", cold.Wall, warm.Wall)
	}
	// Warm run should be close to ideal speed.
	ratio := float64(warm.Wall) / float64(10*sim.Millisecond)
	if ratio > 1.1 {
		t.Errorf("warm slowdown %.3f, want < 1.1", ratio)
	}
}

func TestFootprintWarmsTowardWSS(t *testing.T) {
	m := testModel()
	var fp Footprint
	prof := llcfProfile()
	for i := 0; i < 20; i++ {
		m.Run(&fp, 0, prof, 20*sim.Millisecond, sim.Second)
	}
	if fp.Resident() < 0.95*float64(prof.WSS) {
		t.Errorf("after long run resident = %.0f, want >= 95%% of WSS %d", fp.Resident(), prof.WSS)
	}
	if fp.Resident() > float64(prof.WSS) {
		t.Errorf("resident %.0f exceeds WSS %d", fp.Resident(), prof.WSS)
	}
}

func TestCoRunnerInsertionsEvictFootprint(t *testing.T) {
	m := testModel()
	var victim, disturber Footprint
	prof := llcfProfile()
	// Warm the victim.
	for i := 0; i < 10; i++ {
		m.Run(&victim, 0, prof, 20*sim.Millisecond, sim.Second)
	}
	warm := victim.Resident()
	// Disturber streams on another core of the same socket.
	m.Run(&disturber, 1, llcoProfile(), 30*sim.Millisecond, sim.Second)
	// Victim's next dispatch sees the decayed footprint.
	m.Run(&victim, 0, prof, 1*sim.Microsecond, 10*sim.Microsecond)
	if victim.Resident() >= warm {
		t.Errorf("victim resident %.0f did not decay from %.0f after disturber streamed", victim.Resident(), warm)
	}
}

func TestCrossSocketMigrationGoesCold(t *testing.T) {
	m := NewModel(hw.XeonE54603())
	var fp Footprint
	prof := llcfProfile()
	for i := 0; i < 10; i++ {
		m.Run(&fp, 0, prof, 20*sim.Millisecond, sim.Second)
	}
	if fp.Resident() == 0 {
		t.Fatal("footprint never warmed")
	}
	// Core 4 is on socket 1.
	m.Run(&fp, 4, prof, 1*sim.Microsecond, 100*sim.Microsecond)
	if fp.Resident() > 0.05*float64(prof.WSS) {
		t.Errorf("after cross-socket move, resident = %.0f, want near cold", fp.Resident())
	}
}

func TestStreamingSlowdownIsConstant(t *testing.T) {
	m := testModel()
	var fp Footprint
	prof := llcoProfile()
	r1 := m.Run(&fp, 0, prof, 10*sim.Millisecond, sim.Second)
	r2 := m.Run(&fp, 0, prof, 10*sim.Millisecond, sim.Second)
	if !r1.Finished || !r2.Finished {
		t.Fatal("streaming bursts did not finish")
	}
	// First run differs only by L2 fill; both should show the same
	// steady slowdown within 5%.
	d := math.Abs(float64(r1.Wall-r2.Wall)) / float64(r2.Wall)
	if d > 0.05 {
		t.Errorf("streaming wall times %v vs %v differ by %.1f%%", r1.Wall, r2.Wall, d*100)
	}
	if r2.Wall <= 10*sim.Millisecond {
		t.Error("streaming run not slower than ideal")
	}
}

func TestLoLCFRunsAtIdealSpeed(t *testing.T) {
	m := testModel()
	var fp Footprint
	r := m.Run(&fp, 0, lolcfProfile(), 10*sim.Millisecond, sim.Second)
	if !r.Finished {
		t.Fatal("LoLCF burst did not finish")
	}
	slow := float64(r.Wall) / float64(10*sim.Millisecond)
	if slow > 1.01 {
		t.Errorf("LoLCF slowdown %.4f, want ~1.0", slow)
	}
}

func TestBudgetIsRespected(t *testing.T) {
	m := testModel()
	var fp Footprint
	prof := llcfProfile()
	r := m.Run(&fp, 0, prof, 100*sim.Millisecond, 1*sim.Millisecond)
	if r.Finished {
		t.Error("burst claims finished despite small budget")
	}
	if r.Wall > 1*sim.Millisecond {
		t.Errorf("wall %v exceeds budget 1ms", r.Wall)
	}
	if r.Ideal <= 0 {
		t.Errorf("no progress within budget (ideal=%v)", r.Ideal)
	}
	if r.Ideal >= 100*sim.Millisecond {
		t.Errorf("ideal %v impossible within 1ms budget", r.Ideal)
	}
}

func TestCountersEmitted(t *testing.T) {
	m := testModel()
	var fp Footprint
	prof := llcfProfile()
	r := m.Run(&fp, 0, prof, 10*sim.Millisecond, sim.Second)
	if r.Counters.Instructions == 0 {
		t.Error("no instructions counted")
	}
	if r.Counters.LLCReferences == 0 {
		t.Error("no LLC references counted")
	}
	if r.Counters.LLCMisses == 0 {
		t.Error("cold burst produced no misses")
	}
	if r.Counters.LLCMisses > r.Counters.LLCReferences {
		t.Errorf("misses %d exceed references %d", r.Counters.LLCMisses, r.Counters.LLCReferences)
	}
	// Reference ratio should approximate RefRate/instrRate.
	rr := r.Counters.LLCRefRatio()
	want := prof.RefRate / DefaultInstrPerUs
	if math.Abs(rr-want)/want > 0.05 {
		t.Errorf("LLC ref ratio %.5f, want ~%.5f", rr, want)
	}
}

func TestMissRatioDistinguishesTypes(t *testing.T) {
	m := testModel()
	var fpF, fpO Footprint
	// Warm LLCF, then measure a steady window.
	for i := 0; i < 10; i++ {
		m.Run(&fpF, 0, llcfProfile(), 20*sim.Millisecond, sim.Second)
	}
	rF := m.Run(&fpF, 0, llcfProfile(), 30*sim.Millisecond, sim.Second)
	rO := m.Run(&fpO, 1, llcoProfile(), 30*sim.Millisecond, sim.Second)
	if mr := rF.Counters.LLCMissRatio(); mr > 0.1 {
		t.Errorf("warm LLCF miss ratio %.3f, want < 0.1", mr)
	}
	if mr := rO.Counters.LLCMissRatio(); mr < 0.5 {
		t.Errorf("LLCO miss ratio %.3f, want > 0.5", mr)
	}
}

func TestQuantumEffectOnLLCF(t *testing.T) {
	// The paper's core claim (Fig. 2d): with a trashing co-runner
	// time-sharing the same core, an LLCF application completes the
	// same work faster under a 90ms quantum than under 1ms.
	wallPerWork := func(q sim.Time) float64 {
		m := testModel()
		var llcf, llco Footprint
		profF, profO := llcfProfile(), llcoProfile()
		var wall, ideal float64
		// Alternate slices on core 0, like two vCPUs sharing a pCPU.
		for ideal < float64(500*sim.Millisecond) {
			rF := m.Run(&llcf, 0, profF, sim.MaxTime/4, q)
			wall += float64(rF.Wall)
			ideal += float64(rF.Ideal)
			m.Run(&llco, 0, profO, sim.MaxTime/4, q)
		}
		return wall / ideal
	}
	slow1 := wallPerWork(1 * sim.Millisecond)
	slow30 := wallPerWork(30 * sim.Millisecond)
	slow90 := wallPerWork(90 * sim.Millisecond)
	if !(slow1 > slow30 && slow30 > slow90) {
		t.Errorf("LLCF slowdowns not monotone in quantum: q1=%.3f q30=%.3f q90=%.3f", slow1, slow30, slow90)
	}
	// The 1ms penalty should be substantial (paper: ~1.3x vs 30ms).
	if slow1/slow30 < 1.1 {
		t.Errorf("1ms vs 30ms penalty only %.3f, want > 1.1", slow1/slow30)
	}
}

func TestQuantumAgnosticTypes(t *testing.T) {
	// LLCO and LoLCF should run at nearly the same speed under 1ms and
	// 90ms quanta (Fig. 2e, 2f).
	for _, tc := range []struct {
		name string
		prof Profile
	}{
		{"LLCO", llcoProfile()},
		{"LoLCF", lolcfProfile()},
	} {
		wallPerWork := func(q sim.Time) float64 {
			m := testModel()
			var fp, dist Footprint
			profD := llcoProfile()
			var wall, ideal float64
			for ideal < float64(200*sim.Millisecond) {
				r := m.Run(&fp, 0, tc.prof, sim.MaxTime/4, q)
				wall += float64(r.Wall)
				ideal += float64(r.Ideal)
				m.Run(&dist, 0, profD, sim.MaxTime/4, q)
			}
			return wall / ideal
		}
		s1, s90 := wallPerWork(1*sim.Millisecond), wallPerWork(90*sim.Millisecond)
		if math.Abs(s1-s90)/s90 > 0.08 {
			t.Errorf("%s: slowdown differs too much across quanta: q1=%.3f q90=%.3f", tc.name, s1, s90)
		}
	}
}

func TestRunPanicsOnNonPositiveArgs(t *testing.T) {
	m := testModel()
	var fp Footprint
	for _, args := range [][2]sim.Time{{0, 10}, {10, 0}, {-1, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Run(work=%v,budget=%v) did not panic", args[0], args[1])
				}
			}()
			m.Run(&fp, 0, llcfProfile(), args[0], args[1])
		}()
	}
}

func TestSpinCounters(t *testing.T) {
	c := SpinCounters(100 * sim.Microsecond)
	if c.PauseLoops == 0 {
		t.Error("spin produced no pause loops")
	}
	if c.LLCReferences != 0 {
		t.Error("spin produced LLC references")
	}
	if c.Instructions == 0 {
		t.Error("spin retired no instructions")
	}
}

// Property: wall time always >= ideal work done, and both are bounded by
// the budget/work arguments.
func TestBurstBoundsProperty(t *testing.T) {
	m := testModel()
	f := func(wssKB uint16, refRate uint8, workMs, budgetMs uint8) bool {
		prof := Profile{
			WSS:     int64(wssKB%16384+1) * hw.KB,
			RefRate: float64(refRate % 50),
		}
		var fp Footprint
		work := sim.Time(workMs%50+1) * sim.Millisecond
		budget := sim.Time(budgetMs%50+1) * sim.Millisecond
		r := m.Run(&fp, 0, prof, work, budget)
		if r.Wall < 1 || r.Wall > budget {
			return false
		}
		if r.Ideal < 0 || r.Ideal > work {
			return false
		}
		if r.Ideal > r.Wall { // work can't exceed wall time spent
			return false
		}
		if fp.Resident() < 0 || fp.Resident() > float64(prof.WSS) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the socket insertion clock is monotone non-decreasing.
func TestInsertionClockMonotoneProperty(t *testing.T) {
	m := testModel()
	var fp Footprint
	last := m.Inserted(0)
	f := func(streaming bool, workMs uint8) bool {
		prof := llcfProfile()
		if streaming {
			prof = llcoProfile()
		}
		m.Run(&fp, 0, prof, sim.Time(workMs%20+1)*sim.Millisecond, sim.Second)
		now := m.Inserted(0)
		ok := now >= last
		last = now
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

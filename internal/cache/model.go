// Package cache models the memory hierarchy's effect on execution speed.
//
// The paper's entire cache argument (Section 3.2) is about what a
// quantum length does to last-level-cache (LLC) occupancy:
//
//   - an LLCF vCPU (working set fits in the LLC) loses its resident
//     footprint to co-runners while descheduled and pays a refill cost
//     every time it is dispatched — so short quanta amortize that cost
//     badly and long quanta amortize it well;
//   - an LLCO vCPU (working set overflows the LLC) misses constantly no
//     matter what, so it is quantum-agnostic, but its stream of
//     insertions is what evicts everyone else ("trashing");
//   - a LoLCF vCPU (working set fits in L1/L2) refills a few hundred
//     kilobytes per dispatch, which is negligible at any realistic
//     quantum — also agnostic.
//
// The model reproduces exactly that mechanism analytically. Each thread
// owns a Footprint: the bytes of its working set currently resident in
// some socket's LLC. Sockets carry a monotone "insertion clock" counting
// all bytes inserted into their LLC; a footprint decays between
// dispatches in proportion to how much co-runners inserted in the
// interim (random replacement: each inserted byte evicts a resident byte
// with probability resident/size, giving exponential decay). While a
// thread runs, its misses re-install lines, warming the footprint toward
// its working-set size.
//
// Execution time follows: a burst of "ideal" work w (time it would take
// with a warm cache) is stretched by miss stalls, wall = w + misses *
// missCost. Warm-up misses follow the closed form of the occupancy ODE
// dr/dt = refRate*lineSize*(1-r/WSS), so a burst is simulated in O(1)
// regardless of length.
//
// A set-associative cache simulator (setassoc.go) validates the analytic
// parameters against a directly simulated Drepper-style list walk.
package cache

import (
	"fmt"
	"math"

	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
)

// Profile describes the memory behaviour of a compute burst. Profiles
// are the synthetic stand-ins for the paper's benchmark working sets.
type Profile struct {
	// WSS is the working-set size in bytes.
	WSS int64
	// RefRate is the number of references reaching the LLC per ideal
	// microsecond of execution (loads missing L1/L2). Working sets that
	// fit in L2 should use a near-zero rate.
	RefRate float64
	// MissFloor is the steady-state LLC miss ratio once the working set
	// is fully resident (conflict/cold misses that never go away).
	MissFloor float64
	// Streaming marks sets traversed with no reuse: every LLC reference
	// misses with ratio StreamMissRatio regardless of occupancy (LLCO).
	Streaming bool
	// StreamMissRatio is the constant miss ratio for streaming sets.
	StreamMissRatio float64
	// InstrPerUs is the nominal instruction rate per ideal microsecond;
	// zero means DefaultInstrPerUs. Only counter synthesis uses it.
	InstrPerUs float64
	// ReuseFactor models in-window temporal locality for the PMU
	// reference counter: each line brought into the LLC is re-referenced
	// (ReuseFactor - 1) additional times, so the reported LLC reference
	// count is RefRate*work*ReuseFactor while misses are unchanged.
	// Cache-friendly programs have high reuse — that is what keeps their
	// measured miss *ratio* low even when co-runners evict them between
	// dispatches. Zero means 1 (no extra reuse).
	ReuseFactor float64
}

// DefaultInstrPerUs is the nominal retirement rate used when a profile
// does not specify one (one instruction per nanosecond of ideal time).
const DefaultInstrPerUs = 1000.0

// instrRate returns the profile's instruction rate.
func (p Profile) instrRate() float64 {
	if p.InstrPerUs > 0 {
		return p.InstrPerUs
	}
	return DefaultInstrPerUs
}

// reuse returns the profile's reference reuse factor.
func (p Profile) reuse() float64 {
	if p.ReuseFactor > 1 {
		return p.ReuseFactor
	}
	return 1
}

// Footprint is the cache-residency state of one thread (or one vCPU when
// a vCPU runs a single thread, the paper's framing). The zero value is a
// fully cold footprint.
type Footprint struct {
	resident float64     // bytes of WSS resident in the LLC of `socket`
	socket   hw.SocketID // which socket's LLC holds the footprint
	valid    bool        // false until first run
	mark     float64     // socket insertion clock at last run
}

// Resident reports the resident bytes (diagnostics and tests).
func (f *Footprint) Resident() float64 { return f.resident }

// Invalidate drops all residency (e.g. after an explicit flush).
func (f *Footprint) Invalidate() { *f = Footprint{} }

// BurstResult reports what happened during a modelled burst.
type BurstResult struct {
	// Wall is the wall-clock (simulated) time consumed.
	Wall sim.Time
	// Ideal is the ideal work completed (warm-cache time units).
	Ideal sim.Time
	// Counters holds the PMU events the burst generated.
	Counters hw.Counters
	// Finished reports whether the requested work completed within the
	// wall budget.
	Finished bool
	// InsertedBytes is how much this burst inserted into the socket LLC
	// (needed to roll the insertion clock back when a planned burst is
	// cut short by preemption).
	InsertedBytes float64
}

// socketLLC is the per-socket shared-LLC state.
type socketLLC struct {
	inserted float64 // monotone byte-insertion clock
}

// coreState tracks which footprint last ran on a core, to charge private
// L1/L2 refill when cores are time-shared.
type coreState struct {
	last *Footprint
}

// Model is the machine-wide cache/performance model.
type Model struct {
	topo    *hw.Topology
	sockets []socketLLC
	cores   []coreState

	llcSize  float64
	capBytes float64 // max residency a single footprint may hold
	missCost float64 // extra wall µs per LLC miss (vs. an LLC hit)
	l2Fill   float64 // wall µs per byte of private-cache refill
	l2Size   []int64 // per-core private L2 capacity (class overrides)
}

// NewModel builds a cache model for the given machine.
func NewModel(topo *hw.Topology) *Model {
	if err := topo.Validate(); err != nil {
		panic(fmt.Sprintf("cache: %v", err))
	}
	memLatUs := float64(topo.MemLatencyNS) / 1000.0
	llcLatUs := float64(topo.LLC.LatencyNS) / 1000.0
	// Per-core L2 capacity: heterogeneous core classes may shrink a
	// class's private cache. On homogeneous machines every entry equals
	// topo.L2.Size, so the burst arithmetic is unchanged bit for bit.
	l2Size := make([]int64, topo.TotalPCPUs())
	for p := range l2Size {
		l2Size[p] = topo.L2Of(hw.PCPUID(p)).Size
	}
	return &Model{
		topo:     topo,
		sockets:  make([]socketLLC, topo.Sockets),
		cores:    make([]coreState, topo.TotalPCPUs()),
		llcSize:  float64(topo.LLC.Size),
		capBytes: 0.95 * float64(topo.LLC.Size),
		missCost: memLatUs - llcLatUs,
		l2Fill:   1e6 / float64(topo.MemBandwidth),
		l2Size:   l2Size,
	}
}

// Inserted reports the insertion clock of a socket (tests/diagnostics).
func (m *Model) Inserted(s hw.SocketID) float64 { return m.sockets[s].inserted }

// Uninsert rolls back bytes previously inserted into socket s's LLC.
// The hypervisor uses it when a planned burst is preempted mid-way: the
// burst is rolled back and re-run with the actually elapsed budget.
// Because the insertion clock is additive, removing exactly this burst's
// contribution leaves co-runners' insertions intact.
func (m *Model) Uninsert(s hw.SocketID, bytes float64) {
	m.sockets[s].inserted -= bytes
	if m.sockets[s].inserted < 0 {
		m.sockets[s].inserted = 0
	}
}

// CoreOccupant reports which footprint last ran on a core (snapshot for
// preemption rollback).
func (m *Model) CoreOccupant(core hw.PCPUID) *Footprint { return m.cores[core].last }

// SetCoreOccupant restores a core's last-footprint record (rollback).
func (m *Model) SetCoreOccupant(core hw.PCPUID, fp *Footprint) { m.cores[core].last = fp }

// decay applies inter-dispatch eviction to fp for a dispatch on socket s.
func (m *Model) decay(fp *Footprint, s hw.SocketID) {
	if !fp.valid || fp.socket != s {
		// First run, or migrated across sockets: fully cold here.
		fp.resident = 0
		fp.socket = s
		fp.valid = true
		fp.mark = m.sockets[s].inserted
		return
	}
	delta := m.sockets[s].inserted - fp.mark
	if delta > 0 {
		fp.resident *= math.Exp(-delta / m.llcSize)
	}
	fp.mark = m.sockets[s].inserted
}

// insert records bytes entering socket s's LLC and advances the clock.
func (m *Model) insert(s hw.SocketID, bytes float64) {
	m.sockets[s].inserted += bytes
}

// Run executes up to `work` ideal microseconds of the profile on the
// given core within `budget` wall microseconds, updating the footprint
// and the socket insertion clock, and returns what happened.
//
// Run must be called with work > 0 and budget > 0.
func (m *Model) Run(fp *Footprint, core hw.PCPUID, prof Profile, work, budget sim.Time) BurstResult {
	if work <= 0 || budget <= 0 {
		panic(fmt.Sprintf("cache: Run(work=%v, budget=%v)", work, budget))
	}
	s := m.topo.SocketOf(core)
	m.decay(fp, s)

	res := BurstResult{}
	wallLeft := float64(budget)

	// Private L1/L2 refill: charged when another footprint used this
	// core since we last did. Bounded by the L2 size.
	if m.cores[core].last != fp {
		m.cores[core].last = fp
		fill := float64(min64(prof.WSS, m.l2Size[core])) * m.l2Fill
		if fill >= wallLeft {
			// The whole budget went to private refill; almost no work.
			res.Wall = budget
			res.Ideal = 0
			return res
		}
		wallLeft -= fill
	}

	w := float64(work)
	var idealDone, misses, refsF float64

	switch {
	case prof.WSS <= m.l2Size[core] || prof.RefRate <= 0:
		// L2-resident: runs at ideal speed, negligible LLC traffic.
		idealDone = math.Min(w, wallLeft)
		refsF = prof.RefRate * idealDone
		misses = 0

	case prof.Streaming:
		// No reuse: constant slowdown, constant insertion stream.
		slow := 1 + prof.RefRate*prof.StreamMissRatio*m.missCost
		idealDone = math.Min(w, wallLeft/slow)
		refsF = prof.RefRate * idealDone
		misses = refsF * prof.StreamMissRatio
		res.InsertedBytes = misses * float64(m.topo.LLC.LineSize)
		m.insert(s, res.InsertedBytes)

	default:
		// Cached random access over WSS with warm-up.
		idealDone, misses, refsF = m.runCached(fp, prof, w, wallLeft)
		res.InsertedBytes = misses * float64(m.topo.LLC.LineSize)
		m.insert(s, res.InsertedBytes)
	}

	wallUsed := float64(budget) - wallLeft + idealDone + misses*m.missCost
	res.Wall = ceilTime(wallUsed)
	if res.Wall > budget {
		res.Wall = budget
	}
	if res.Wall < 1 {
		res.Wall = 1
	}
	res.Ideal = sim.Time(idealDone)
	res.Finished = res.Ideal >= work
	if res.Finished {
		res.Ideal = work
	}
	res.Counters = hw.Counters{
		Instructions:  uint64(idealDone * prof.instrRate()),
		LLCReferences: uint64(refsF * prof.reuse()),
		LLCMisses:     uint64(misses),
	}
	fp.mark = m.sockets[s].inserted
	return res
}

// runCached integrates the occupancy ODE for a cache-friendly random
// access pattern and returns (idealDone, misses, refs) for the burst,
// updating fp.resident.
//
// Let r be the resident fraction of the effective working set E =
// min(WSS, cap). Misses occur at rate RefRate*(miss probability), with
// missProb = floor + (1-floor)*(1-r). Each miss installs a line:
// dr/dw = RefRate*(1-floor)*(1-r)*line/E, so (1-r) decays exponentially
// in ideal time with constant T = E / (RefRate*(1-floor)*line).
//
// The expensive primitive here is math.Exp: every evaluation of the
// wall-time function costs one. The whole-burst path shares a single
// exp(-w/T) between the budget check, the miss count and the footprint
// update (they all need the same value), and the budget-limited path
// finds the root of wall(w) = budget with a guarded Newton iteration
// (one exp per step, quadratic convergence) instead of the former
// 48-evaluation bisection. To keep results bit-identical with that
// bisection, the converged root then replays the bisection's midpoint
// lattice — pure arithmetic, no exp — reproducing its exact return
// value; see solveBudget.
func (m *Model) runCached(fp *Footprint, prof Profile, work, wallBudget float64) (idealDone, misses, refs float64) {
	eff := math.Min(float64(prof.WSS), m.capBytes)
	line := float64(m.topo.LLC.LineSize)
	floor := prof.MissFloor
	if prof.WSS > int64(m.capBytes) {
		// Set bigger than the cache but with reuse: references to the
		// uncacheable remainder always miss. Raise the floor by the
		// uncacheable fraction.
		floor = math.Max(floor, 1-m.capBytes/float64(prof.WSS))
	}
	r0 := 0.0
	if eff > 0 {
		r0 = math.Min(fp.resident/eff, 1)
	}
	T := eff / (prof.RefRate * math.Max(1-floor, 1e-9) * line)

	// wall(w) = w + missCost*missCount(w), with
	// missCount(w) = RefRate*(floor*w + (1-floor)*coldInt(w)) and
	// coldInt(w) = (1-r0)*T*(1-exp(-w/T)). Every formula below is kept
	// as the exact expression tree of those definitions — only the
	// shared exp(-w/T) is hoisted — so results match the previous
	// implementation bit for bit.
	missCountAt := func(w, ew float64) float64 {
		c := (1 - r0) * T * (1 - ew)
		return prof.RefRate * (floor*w + (1-floor)*c)
	}
	wallAt := func(w, ew float64) float64 { return w + m.missCost*missCountAt(w, ew) }

	w := work
	ew := math.Exp(-w / T)
	if wallAt(w, ew) > wallBudget {
		w = m.solveBudget(wallBudget, math.Min(w, wallBudget), r0, T, floor, prof.RefRate)
		ew = math.Exp(-w / T)
	}
	idealDone = w
	misses = missCountAt(w, ew)
	refs = prof.RefRate * w

	// Footprint after the burst.
	r := 1 - (1-r0)*ew
	fp.resident = math.Min(r*eff, eff)
	return idealDone, misses, refs
}

// solveBudget finds the ideal work w in [0, hi0] whose wall time equals
// wallBudget, reproducing bit for bit what the legacy bisection
// returned.
//
// wall(w) = w + missCost*RefRate*(floor*w + (1-floor)*(1-r0)*T*(1-exp(-w/T)))
// is strictly increasing (wall' >= 1) and concave (the transient term's
// second derivative is negative), so Newton from below converges
// monotonically and quadratically: each tangent line lies above a
// concave function, so its root never overshoots the true root. Once
// the root is known to full precision, the bisection's answer is a pure
// function of the comparison wall(mid) > budget <=> mid > root, so its
// 48-step midpoint lattice is replayed with plain comparisons — no
// transcendental calls — to land on the exact same float64 the old code
// produced. Should Newton stall (it cannot, but guard anyway), the
// legacy bisection runs as the fallback.
func (m *Model) solveBudget(wallBudget, hi0, r0, T, floor, refRate float64) float64 {
	// Exactly the legacy expression tree (w + missCost*(refRate*(...)));
	// regrouping the products would round differently.
	wallAt := func(w, ew float64) float64 {
		c := (1 - r0) * T * (1 - ew)
		return w + m.missCost*(refRate*(floor*w+(1-floor)*c))
	}

	// Newton on g(w) = wall(w) - budget from w=0 (g(0) = -budget < 0).
	// g'(w) = 1 + missCost*refRate*(floor + (1-floor)*(1-r0)*exp(-w/T)).
	dBase := 1 + m.missCost*refRate*floor
	dCold := m.missCost * refRate * (1 - floor) * (1 - r0)
	root, converged := 0.0, false
	for i := 0; i < 64; i++ {
		ew := math.Exp(-root / T)
		g := wallAt(root, ew) - wallBudget
		if g >= 0 {
			// At (or an ulp past) the root: cannot get closer.
			converged = true
			break
		}
		next := root - g/(dBase+dCold*ew)
		if next > hi0 {
			// Concavity makes this unreachable from below; bail to the
			// exact legacy path if numerics ever disagree.
			break
		}
		if next <= root {
			// Fixed point: the iteration can no longer make progress.
			converged = true
			break
		}
		root = next
	}

	lo, hi := 0.0, hi0
	if !converged {
		// Legacy bisection, one exp per probe.
		for i := 0; i < 48 && hi-lo > 1e-9*(1+hi); i++ {
			mid := (lo + hi) / 2
			if wallAt(mid, math.Exp(-mid/T)) > wallBudget {
				hi = mid
			} else {
				lo = mid
			}
		}
		return lo
	}
	// Replay the bisection lattice against the converged root: wall is
	// strictly increasing, so wall(mid) > budget <=> mid > trueRoot —
	// except within the float evaluation noise of wall itself. That
	// noise is eps-scale in the magnitudes wall sums: the budget, the
	// work, and the transient term missCost*refRate*(1-floor)*(1-r0)*T,
	// whose (1-exp(-w/T)) factor cancels catastrophically when T is
	// huge. Both the legacy predicate's flip point and Newton's root
	// live within that noise of the true root, so midpoints further
	// than `guard` (1000x the noise bound) away are decided by
	// comparison alone, and the rare midpoint inside the band is
	// decided by evaluating the legacy comparison itself. Every replay
	// decision therefore equals the legacy decision, making the
	// returned float64 bit-identical.
	transient := m.missCost * refRate * (1 - floor) * (1 - r0) * T
	guard := 1e3 * 2.3e-16 * (1 + wallBudget + hi0 + transient)
	for i := 0; i < 48 && hi-lo > 1e-9*(1+hi); i++ {
		mid := (lo + hi) / 2
		var above bool
		switch {
		case mid > root+guard:
			above = true
		case mid < root-guard:
			above = false
		default:
			above = wallAt(mid, math.Exp(-mid/T)) > wallBudget
		}
		if above {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

// SpinCounters synthesizes PMU counters for a spin-wait burst of the
// given wall duration: instructions retire (the PAUSE loop), essentially
// no LLC traffic, and the PAUSE-loop-exit counter advances. PauseRate is
// loop iterations per microsecond.
const PauseRate = 32.0

// SpinCounters returns the counters a spin burst of duration d produces.
func SpinCounters(d sim.Time) hw.Counters {
	return hw.Counters{
		Instructions: uint64(float64(d) * DefaultInstrPerUs * 0.25),
		PauseLoops:   uint64(float64(d) * PauseRate),
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func ceilTime(v float64) sim.Time {
	t := sim.Time(v)
	if float64(t) < v {
		t++
	}
	return t
}

package cache

import (
	"testing"

	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
)

// BenchmarkCacheRunWholeBurst measures the common case: the requested
// work fits the wall budget, so Run takes the closed-form path (one
// exp, shared across budget check, miss count and footprint update).
func BenchmarkCacheRunWholeBurst(b *testing.B) {
	m := NewModel(hw.I73770())
	prof := Profile{WSS: 4 * hw.MB, RefRate: 10, MissFloor: 0.01}
	var fp Footprint
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(&fp, 0, prof, 5*sim.Millisecond, 30*sim.Millisecond)
	}
}

// BenchmarkCacheRunBudgetLimited measures the budget-limited case: the
// work does not fit, so Run solves wall(w) = budget (formerly a
// 48-evaluation bisection, now a guarded Newton iteration plus an
// exp-free lattice replay).
func BenchmarkCacheRunBudgetLimited(b *testing.B) {
	m := NewModel(hw.I73770())
	prof := Profile{WSS: 6 * hw.MB, RefRate: 40, MissFloor: 0.01}
	var fp Footprint
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp.Invalidate() // cold every time: maximal transient, worst case
		m.Run(&fp, 0, prof, 100*sim.Millisecond, 1*sim.Millisecond)
	}
}

// BenchmarkCacheRunAlternating flips two footprints on one core, paying
// the private-refill path and inter-dispatch decay on every call — the
// dispatch-time pattern of two vCPUs time-sharing a pCPU.
func BenchmarkCacheRunAlternating(b *testing.B) {
	m := NewModel(hw.I73770())
	prof := Profile{WSS: 4 * hw.MB, RefRate: 10, MissFloor: 0.01}
	var fpA, fpB Footprint
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp := &fpA
		if i&1 == 1 {
			fp = &fpB
		}
		m.Run(fp, 0, prof, 5*sim.Millisecond, 30*sim.Millisecond)
	}
}

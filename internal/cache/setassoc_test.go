package cache

import (
	"testing"

	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
)

func TestSetAssocGeometry(t *testing.T) {
	c := NewSetAssoc(8*hw.MB, 16, 64)
	if c.sets != int(8*hw.MB/(16*64)) {
		t.Errorf("sets = %d", c.sets)
	}
}

func TestSetAssocBadGeometryPanics(t *testing.T) {
	cases := []struct {
		size, line int64
		ways       int
	}{
		{0, 64, 8}, {1024, 64, 0}, {100, 64, 8}, // 100 bytes < one set
	}
	for i, g := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad geometry did not panic", i)
				}
			}()
			NewSetAssoc(g.size, g.ways, g.line)
		}()
	}
}

func TestSetAssocHitAfterMiss(t *testing.T) {
	c := NewSetAssoc(64*hw.KB, 8, 64)
	if !c.Access(0x1000) {
		t.Error("first access did not miss")
	}
	if c.Access(0x1000) {
		t.Error("second access to same line missed")
	}
	if c.Access(0x1001) {
		t.Error("same-line different-byte access missed")
	}
	acc, miss := c.Stats()
	if acc != 3 || miss != 1 {
		t.Errorf("stats = (%d, %d), want (3, 1)", acc, miss)
	}
}

func TestSetAssocLRUEviction(t *testing.T) {
	// 2-way, single... use small cache: 2 sets of 2 ways, 64B lines.
	c := NewSetAssoc(256, 2, 64)
	// Addresses mapping to set 0: line numbers 0, 2, 4 (2 sets).
	a, b, d := uint64(0), uint64(2*64), uint64(4*64)
	c.Access(a) // miss
	c.Access(b) // miss
	c.Access(a) // hit, refreshes a
	c.Access(d) // miss, evicts b (LRU)
	if c.Access(a) {
		t.Error("a was evicted but should have been MRU")
	}
	if !c.Access(b) {
		t.Error("b should have been evicted")
	}
}

func TestListWalkFitsInCacheHasLowMissRatio(t *testing.T) {
	llc := hw.I73770().LLC
	c := NewSetAssoc(llc.Size, llc.Ways, llc.LineSize)
	rng := sim.NewRNG(1)
	// Working set = half the LLC (the paper's LLCF configuration).
	wss := llc.Size / 2
	steps := int(wss/llc.LineSize) * 8 // several rounds
	ListWalk(c, wss, steps, rng)
	c.ResetStats()
	mr := ListWalk(c, wss, steps, rng)
	if mr > 0.05 {
		t.Errorf("warm LLCF walk miss ratio %.3f, want < 0.05", mr)
	}
}

func TestListWalkOverflowingCacheHasHighMissRatio(t *testing.T) {
	llc := hw.I73770().LLC
	c := NewSetAssoc(llc.Size, llc.Ways, llc.LineSize)
	rng := sim.NewRNG(2)
	wss := llc.Size * 2 // LLCO configuration
	steps := int(wss/llc.LineSize) * 4
	mr := ListWalk(c, wss, steps, rng)
	if mr < 0.5 {
		t.Errorf("LLCO walk miss ratio %.3f, want > 0.5", mr)
	}
}

// The analytic model's steady-state miss behaviour should agree with the
// direct set-associative simulation for the calibration working sets.
func TestAnalyticModelAgreesWithSetAssoc(t *testing.T) {
	top := hw.I73770()
	llc := top.LLC

	// Direct simulation: warm LLCF walk.
	c := NewSetAssoc(llc.Size, llc.Ways, llc.LineSize)
	rng := sim.NewRNG(3)
	wss := llc.Size / 2
	steps := int(wss/llc.LineSize) * 8
	ListWalk(c, wss, steps, rng) // warm
	c.ResetStats()
	direct := ListWalk(c, wss, steps, rng)

	// Analytic: warm footprint, steady window.
	m := NewModel(top)
	var fp Footprint
	prof := Profile{WSS: wss, RefRate: 10, MissFloor: 0.01}
	for i := 0; i < 20; i++ {
		m.Run(&fp, 0, prof, 50*sim.Millisecond, sim.Second)
	}
	r := m.Run(&fp, 0, prof, 50*sim.Millisecond, sim.Second)
	analytic := r.Counters.LLCMissRatio()

	if diff := analytic - direct; diff > 0.05 || diff < -0.05 {
		t.Errorf("analytic warm miss ratio %.4f vs direct %.4f: disagree", analytic, direct)
	}
}

package calib

import (
	"testing"

	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
)

// quickOptions keeps test runtime modest while preserving the shape.
func quickOptions() Options {
	return Options{
		PerPCPU: []int{4},
		Warmup:  500 * sim.Millisecond,
		Measure: 2 * sim.Second,
	}
}

func TestCalibrationReproducesFig2(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	rep := Run(quickOptions())

	curve := func(label string) *Curve {
		for i := range rep.Curves {
			if rep.Curves[i].Case.Label == label {
				return &rep.Curves[i]
			}
		}
		t.Fatalf("no curve %q", label)
		return nil
	}
	at := func(label string, qms int) float64 {
		p, ok := curve(label).At(sim.Time(qms)*sim.Millisecond, 4)
		if !ok {
			t.Fatalf("no point %s q=%dms", label, qms)
		}
		return p.Norm
	}

	// Fig. 2(a): exclusive IOInt is quantum-agnostic (BOOST covers it).
	if spread := at("Excl. IOInt", 90) - at("Excl. IOInt", 1); spread > 0.35 {
		t.Errorf("exclusive IOInt spread %.2f, want small (quantum agnostic)", spread)
	}

	// Fig. 2(b): heterogeneous IOInt strongly prefers 1 ms.
	if n := at("Hetero. IOInt", 1); n > 0.6 {
		t.Errorf("hetero IOInt at 1ms normalized %.2f, want well below 1", n)
	}
	if n := at("Hetero. IOInt", 90); n < 1.0 {
		t.Errorf("hetero IOInt at 90ms normalized %.2f, want >= 1", n)
	}

	// Fig. 2(c): a short quantum must not hurt ConSpin (the paper finds
	// a modest benefit; in this substrate steady-state spin-lock damage
	// is scale-invariant, so we assert no-harm here and verify the
	// lock-duration mechanism below — see EXPERIMENTS.md).
	if n := at("ConSpin", 1); n >= 1.25 {
		t.Errorf("ConSpin at 1ms normalized %.2f, want no large penalty", n)
	}

	// Fig. 2(d): LLCF prefers large quanta; 1 ms is harmful.
	if n := at("LLCF", 1); n <= 1.05 {
		t.Errorf("LLCF at 1ms normalized %.2f, want > 1.05 (penalty)", n)
	}
	if n := at("LLCF", 90); n >= 1.0 {
		t.Errorf("LLCF at 90ms normalized %.2f, want < 1", n)
	}

	// Fig. 2(e)-(f): LoLCF and LLCO are agnostic.
	for _, label := range []string{"LoLCF", "LLCO"} {
		spread := 0.0
		for _, q := range []int{1, 10, 60, 90} {
			if d := at(label, q) - 1; d > spread {
				spread = d
			}
			if d := 1 - at(label, q); d > spread {
				spread = d
			}
		}
		if spread > AgnosticSpread {
			t.Errorf("%s spread %.2f, want <= %.2f (agnostic)", label, spread, AgnosticSpread)
		}
	}

	// Derived table must match the paper: IOInt/ConSpin -> 1 ms,
	// LLCF -> 90 ms, LoLCF/LLCO agnostic.
	if q := rep.Table.Best[vcputype.IOInt]; q != 1*sim.Millisecond {
		t.Errorf("IOInt best quantum %v, want 1ms", q)
	}
	// ConSpin: in this substrate steady-state spin-lock damage is
	// scale-invariant (see EXPERIMENTS.md), so no best-quantum value is
	// asserted; the lock-duration mechanism is verified below.
	_ = rep.Table.Best[vcputype.ConSpin]
	if q := rep.Table.Best[vcputype.LLCF]; q != 90*sim.Millisecond {
		t.Errorf("LLCF best quantum %v, want 90ms", q)
	}
	for _, ty := range []vcputype.Type{vcputype.LoLCF, vcputype.LLCO} {
		if _, ok := rep.Table.Best[ty]; ok {
			t.Errorf("%v has a calibrated quantum, want agnostic", ty)
		}
	}

	// Fig. 2 rightmost: lock-holder preemption stretches holds by
	// multiples of the quantum — the worst observed hold grows with it.
	ld := rep.LockDurations
	if len(ld) < 2 {
		t.Fatal("no lock duration sweep")
	}
	if ld[len(ld)-1].MaxHold <= ld[0].MaxHold {
		t.Errorf("worst lock hold at %v (%v) not larger than at %v (%v)",
			ld[len(ld)-1].Quantum, ld[len(ld)-1].MaxHold, ld[0].Quantum, ld[0].MaxHold)
	}
}

func TestQuantaMatchPaperDiscretization(t *testing.T) {
	q := Quanta()
	want := []sim.Time{1, 10, 30, 60, 90}
	if len(q) != len(want) {
		t.Fatalf("quanta %v", q)
	}
	for i, w := range want {
		if q[i] != w*sim.Millisecond {
			t.Errorf("quanta[%d] = %v, want %dms", i, q[i], w)
		}
	}
}

// Package calib is the offline quantum-length calibration of
// Section 3.4: for each application type it measures performance under
// quantum lengths {1, 10, 30, 60, 90} ms with 2 and 4 vCPUs sharing a
// pCPU, normalizes over the Xen default (30 ms), and derives the best
// quantum per type — or flags the type as quantum-agnostic when the
// spread is insignificant.
//
// The paper automated this with a deployment framework (Roboconf) and a
// self-benchmarking tool (CLIF); here the same loop runs in-process on
// the simulator.
package calib

import (
	"fmt"
	"sort"

	"aqlsched/internal/baselines"
	"aqlsched/internal/cluster"
	"aqlsched/internal/hw"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
)

// Quanta is the paper's quantum-length discretization.
func Quanta() []sim.Time {
	return []sim.Time{
		1 * sim.Millisecond,
		10 * sim.Millisecond,
		30 * sim.Millisecond,
		60 * sim.Millisecond,
		90 * sim.Millisecond,
	}
}

// BaselineQuantum is the normalization point (Xen default).
const BaselineQuantum = 30 * sim.Millisecond

// AgnosticSpread: when the best and worst normalized performance across
// quanta differ by less than this fraction, the type is declared
// quantum-agnostic. Consolidated gang schedules are noisy (alignment
// luck), so the band is generous; genuinely sensitive types (hetero
// IOInt, LLCF) show spreads several times larger.
const AgnosticSpread = 0.25

// Case identifies one calibration subject (a sub-figure of Fig. 2).
type Case struct {
	// Label as in Fig. 2, e.g. "Excl. IOInt".
	Label string
	// Type whose best quantum this case calibrates.
	Type vcputype.Type
	// Spec under calibration.
	Spec workload.AppSpec
	// UseForTable marks the case whose result enters the quantum table
	// (e.g. the heterogeneous IOInt case, not the exclusive one).
	UseForTable bool
}

// Cases returns the calibration subjects of Fig. 2 (a)-(f).
func Cases(topo *hw.Topology) []Case {
	return []Case{
		{Label: "Excl. IOInt", Type: vcputype.IOInt, Spec: workload.MicroWeb(false)},
		{Label: "Hetero. IOInt", Type: vcputype.IOInt, Spec: workload.MicroWeb(true), UseForTable: true},
		{Label: "ConSpin", Type: vcputype.ConSpin, Spec: workload.MicroKernbench(4), UseForTable: true},
		{Label: "LLCF", Type: vcputype.LLCF, Spec: workload.MicroListWalk(topo, vcputype.LLCF), UseForTable: true},
		{Label: "LoLCF", Type: vcputype.LoLCF, Spec: workload.MicroListWalk(topo, vcputype.LoLCF), UseForTable: true},
		{Label: "LLCO", Type: vcputype.LLCO, Spec: workload.MicroListWalk(topo, vcputype.LLCO), UseForTable: true},
	}
}

// Point is one measurement of a calibration curve.
type Point struct {
	Quantum sim.Time
	PerPCPU int // vCPUs sharing each pCPU
	// Norm is performance normalized over the 30 ms baseline (lower is
	// better, as in Fig. 2).
	Norm float64
	// Raw is the un-normalized metric (µs latency or time-per-job).
	Raw float64
}

// Curve is the calibration result of one case.
type Curve struct {
	Case   Case
	Points []Point
}

// At returns the point for (q, k).
func (c *Curve) At(q sim.Time, k int) (Point, bool) {
	for _, p := range c.Points {
		if p.Quantum == q && p.PerPCPU == k {
			return p, true
		}
	}
	return Point{}, false
}

// LockPoint is one lock-duration measurement (Fig. 2 rightmost).
type LockPoint struct {
	Quantum  sim.Time
	MeanHold sim.Time
	// MaxHold is the worst hold observed: the direct footprint of
	// lock-holder preemption, which stretches a hold by up to
	// (k-1) quanta.
	MaxHold sim.Time
}

// Report is the full calibration outcome.
type Report struct {
	Curves []Curve
	// LockDurations is the Fig. 2 rightmost series.
	LockDurations []LockPoint
	// Table is the derived per-type best-quantum table.
	Table cluster.QuantumTable
	// AgnosticTypes lists types whose spread was below the threshold.
	AgnosticTypes []vcputype.Type
}

// Options configure a calibration run.
type Options struct {
	Topo *hw.Topology
	// PerPCPU lists the consolidation ratios to sweep (default {2,4}).
	PerPCPU []int
	// Warmup and Measure default to 1s and 3s.
	Warmup, Measure sim.Time
	Seed            uint64
	// Repeats averages each point over several seeds (default 3):
	// consolidated schedules are bistable (aligned vs. convoyed gangs)
	// and single runs sample alignment luck, exactly like single runs
	// on real hardware.
	Repeats int
}

func (o *Options) fill() {
	if o.Topo == nil {
		o.Topo = hw.I73770()
	}
	if len(o.PerPCPU) == 0 {
		o.PerPCPU = []int{2, 4}
	}
	if o.Warmup == 0 {
		o.Warmup = 1 * sim.Second
	}
	if o.Measure == 0 {
		o.Measure = 3 * sim.Second
	}
	if o.Seed == 0 {
		o.Seed = 0xCA11B
	}
	if o.Repeats <= 0 {
		o.Repeats = 3
	}
}

// disturber returns the i-th colocated VM spec: a mix of trashing and
// low-footprint workloads ("various workload types", Section 3.4.1).
// Job sizes vary per instance so rotation periods decorrelate.
func disturber(topo *hw.Topology, i int) workload.AppSpec {
	s := workload.MicroListWalk(topo, vcputype.LLCO)
	if i%2 == 1 {
		s = workload.MicroListWalk(topo, vcputype.LoLCF)
	}
	s.Steady = false // disturbers keep housekeeping pauses: schedule drift
	s.JobWork += sim.Time(i%5) * 1700 * sim.Microsecond
	return s
}

// caseSpec builds the colocation scenario for one calibration case at
// consolidation ratio k. Single-vCPU subjects run on one pCPU with k-1
// disturbers; multi-vCPU subjects (kernbench) run on as many pCPUs as
// they have vCPUs, with (k-1) disturbers per pCPU.
func caseSpec(c Case, k int, o Options) scenario.Spec {
	subjectVCPUs := 1
	if c.Spec.Kind == workload.KindLock {
		subjectVCPUs = c.Spec.Threads
	}
	pcpus := subjectVCPUs
	var ids []hw.PCPUID
	for i := 0; i < pcpus; i++ {
		ids = append(ids, hw.PCPUID(i))
	}
	apps := []scenario.Entry{{Spec: c.Spec, Count: 1}}
	nDist := (k - 1) * pcpus
	for i := 0; i < nDist; i++ {
		apps = append(apps, scenario.Entry{Spec: disturber(o.Topo, i), Count: 1})
	}
	return scenario.Spec{
		Name:       fmt.Sprintf("calib-%s-k%d", c.Label, k),
		Topo:       o.Topo,
		GuestPCPUs: ids,
		Apps:       apps,
		Warmup:     o.Warmup,
		Measure:    o.Measure,
		Seed:       o.Seed,
	}
}

// measure runs one case at quantum q and ratio k, returning the raw
// metric of the subject application averaged over o.Repeats seeds.
func measure(c Case, q sim.Time, k int, o Options) float64 {
	sum := 0.0
	for r := 0; r < o.Repeats; r++ {
		spec := caseSpec(c, k, o)
		spec.Seed = o.Seed + uint64(r)*7919
		res := scenario.Run(spec, baselines.FixedQuantum{Q: q})
		// A failed measurement (no jobs at all) contributes 0, exactly
		// like the pre-registry scalar metric did.
		v, _ := res.Apps[0].Perf()
		sum += v
	}
	return sum / float64(o.Repeats)
}

// Run executes the full calibration sweep.
func Run(o Options) *Report {
	o.fill()
	rep := &Report{}
	bests := map[vcputype.Type]sim.Time{}
	agnostic := map[vcputype.Type]bool{}

	for _, c := range Cases(o.Topo) {
		curve := Curve{Case: c}
		// Baselines per ratio.
		base := map[int]float64{}
		for _, k := range o.PerPCPU {
			base[k] = measure(c, BaselineQuantum, k, o)
		}
		for _, q := range Quanta() {
			for _, k := range o.PerPCPU {
				raw := base[k]
				if q != BaselineQuantum {
					raw = measure(c, q, k, o)
				}
				norm := 0.0
				if base[k] > 0 {
					norm = raw / base[k]
				}
				curve.Points = append(curve.Points, Point{Quantum: q, PerPCPU: k, Norm: norm, Raw: raw})
			}
		}
		rep.Curves = append(rep.Curves, curve)
		if !c.UseForTable {
			continue
		}
		// Decide best-vs-agnostic at the highest consolidation ratio.
		k := o.PerPCPU[len(o.PerPCPU)-1]
		bestQ, bestN, worstN := BaselineQuantum, 1.0, 1.0
		for _, q := range Quanta() {
			p, ok := curve.At(q, k)
			if !ok {
				continue
			}
			if p.Norm < bestN {
				bestN, bestQ = p.Norm, q
			}
			if p.Norm > worstN {
				worstN = p.Norm
			}
		}
		if worstN-bestN < AgnosticSpread {
			agnostic[c.Type] = true
			continue
		}
		// Keep the better of an existing calibration (two IOInt cases
		// never both enter the table, but stay defensive).
		if prev, ok := bests[c.Type]; !ok || bestQ != prev {
			bests[c.Type] = bestQ
		}
	}

	rep.Table = cluster.QuantumTable{Best: bests, Default: BaselineQuantum}
	for t, ok := range agnostic {
		if ok && bests[t] == 0 {
			rep.AgnosticTypes = append(rep.AgnosticTypes, t)
		}
	}
	sort.Slice(rep.AgnosticTypes, func(a, b int) bool {
		return rep.AgnosticTypes[a] < rep.AgnosticTypes[b]
	})

	// Lock-duration sweep (Fig. 2 rightmost): kernbench, 4 vCPUs per
	// pCPU, quanta 20..80 ms.
	for _, q := range []sim.Time{20 * sim.Millisecond, 40 * sim.Millisecond, 60 * sim.Millisecond, 80 * sim.Millisecond} {
		mean, max := lockDuration(q, o)
		rep.LockDurations = append(rep.LockDurations, LockPoint{
			Quantum:  q,
			MeanHold: mean,
			MaxHold:  max,
		})
	}
	return rep
}

// lockDuration measures the mean and worst spin-lock hold duration of
// the ConSpin micro-benchmark consolidated at 4 vCPUs per pCPU,
// aggregated over o.Repeats seeds.
func lockDuration(q sim.Time, o Options) (mean, max sim.Time) {
	// Longer critical sections than the throughput micro-benchmark so
	// that slice boundaries land inside holds often enough for the
	// worst-hold statistic to stabilise within the measurement window.
	spec := workload.MicroKernbench(4)
	spec.Hold = 200 * sim.Microsecond
	spec.Gap = 600 * sim.Microsecond
	c := Case{Label: "lock", Type: vcputype.ConSpin, Spec: spec}
	var meanSum sim.Time
	n := 0
	for r := 0; r < o.Repeats; r++ {
		spec := caseSpec(c, 4, o)
		spec.Seed = o.Seed + uint64(r)*7919
		res := scenario.Run(spec, baselines.FixedQuantum{Q: q})
		for _, d := range res.Deps {
			if len(d.Locks) > 0 {
				_, m, mx := d.Locks[0].HoldStats()
				meanSum += m
				n++
				if mx > max {
					max = mx
				}
			}
		}
	}
	if n > 0 {
		mean = meanSum / sim.Time(n)
	}
	return mean, max
}

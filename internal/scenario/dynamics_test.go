package scenario_test

import (
	"testing"

	"aqlsched/internal/baselines"
	"aqlsched/internal/core"
	"aqlsched/internal/hw"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
)

func quickDynPhase(seed uint64) scenario.Spec {
	spec := scenario.DynPhase(seed)
	spec.Warmup = 500 * sim.Millisecond
	spec.Measure = 2 * sim.Second
	return spec
}

func TestDynPhaseIsDynamic(t *testing.T) {
	spec := scenario.DynPhase(1)
	if !spec.Dynamic() {
		t.Error("DynPhase not recognized as dynamic")
	}
	static := scenario.ScenarioByName("S1", 1)
	if static.Dynamic() {
		t.Error("S1 misclassified as dynamic")
	}
}

// TestAdaptationTracksPhaseFlips: running the phased scenario under
// AQL must observe ground-truth flips and re-recognize most of them;
// under a non-recognizing policy no adaptation record exists.
func TestAdaptationTracksPhaseFlips(t *testing.T) {
	res := scenario.Run(quickDynPhase(0xA91), baselines.AQL{Out: new(*core.Controller)})
	a := res.Adapt
	if a == nil {
		t.Fatal("no adaptation record under AQL")
	}
	if a.Window != 4 {
		t.Errorf("adaptation window %d, want the default 4", a.Window)
	}
	if a.Flips == 0 {
		t.Fatal("no ground-truth flips observed over 2.5 s of 1-1.5 s phases")
	}
	if a.RecognizedFlips == 0 || a.MeanLatencyPeriods <= 0 {
		t.Errorf("vTRS recognized %d/%d flips (latency %v), want most",
			a.RecognizedFlips, a.Flips, a.MeanLatencyPeriods)
	}
	if a.MatchedFrac < 0.5 {
		t.Errorf("recognized type matched truth only %.0f%% of periods", 100*a.MatchedFrac)
	}
	// Per-VM series exist for the phased VMs and carry both truths.
	vmSeen := 0
	for _, vm := range a.PerVM {
		if !vm.Dynamic {
			continue
		}
		vmSeen++
		if len(vm.Samples) == 0 {
			t.Errorf("phased VM %s has no samples", vm.VM)
		}
	}
	if vmSeen != 8 {
		t.Errorf("%d phased VMs tracked, want 8", vmSeen)
	}

	// No recognizer, no adaptation record.
	res = scenario.Run(quickDynPhase(0xA91), baselines.XenDefault{})
	if res.Adapt != nil {
		t.Error("adaptation record under plain Xen (no vTRS)")
	}
}

// TestArrivalsDeployAndDepart: a VM arriving mid-warmup and departing
// mid-measure must run in between, be measured over its lifetime, and
// leave the machine to the standing population afterwards.
func TestArrivalsDeployAndDepart(t *testing.T) {
	spec := scenario.ScenarioByName("S1", 3)
	spec.Warmup = 400 * sim.Millisecond
	spec.Measure = 1 * sim.Second
	churn := workload.ByName("hmmer")
	churn.Name = "churner"
	spec.Arrivals = []scenario.Arrival{
		{At: 200 * sim.Millisecond, Spec: churn, Lifetime: 700 * sim.Millisecond},
		{At: 600 * sim.Millisecond, Spec: churn, Lifetime: 10 * sim.Second}, // outlives the run
	}
	res := scenario.Run(spec, baselines.XenDefault{})

	m := res.App("churner")
	if m.Instances != 2 {
		t.Fatalf("churner instances = %d, want 2", m.Instances)
	}
	if v, ok := m.Perf(); !ok || v <= 0 {
		t.Error("churn VMs measured zero throughput")
	}
	// The departed VM's domain is gone; the survivor's remains.
	names := map[string]bool{}
	for _, d := range res.Hyp.Domains {
		names[d.Name] = true
	}
	if names["churner-a1"] {
		t.Error("departed VM still registered with the hypervisor")
	}
	if !names["churner-a2"] {
		t.Error("long-lived arrival missing from the hypervisor")
	}
	// Static apps are still measured normally.
	if v, ok := res.App("hmmer").Perf(); !ok || v <= 0 {
		t.Error("standing population starved after churn")
	}
}

// TestDynamicRunDeterminism: two identical dynamic runs (churn +
// phases under AQL) produce identical measurements and adaptation
// diagnostics.
func TestDynamicRunDeterminism(t *testing.T) {
	gen := scenario.GenSpec{
		Name:  "dyn",
		VCPUs: 8, OverSub: 2,
		Mix:  map[vcputype.Type]float64{vcputype.LoLCF: 1, vcputype.IOInt: 1},
		Seed: 11,
		Phases: []workload.AppPhase{
			{Dur: 400 * sim.Millisecond, Type: vcputype.LoLCF},
			{Dur: 400 * sim.Millisecond, Type: vcputype.LLCO},
		},
		PhaseProb: 0.5,
		Churn:     &scenario.ChurnSpec{Rate: 3, MeanLifetime: 500 * sim.Millisecond, Horizon: 900 * sim.Millisecond},
	}
	run := func() *scenario.Result {
		spec := gen.MustGenerate()
		spec.Warmup = 300 * sim.Millisecond
		spec.Measure = 700 * sim.Millisecond
		return scenario.Run(spec, baselines.AQL{Out: new(*core.Controller)})
	}
	a, b := run(), run()
	if len(a.Apps) != len(b.Apps) {
		t.Fatalf("app counts differ: %d vs %d", len(a.Apps), len(b.Apps))
	}
	for i := range a.Apps {
		if a.Apps[i].Name != b.Apps[i].Name || a.Apps[i].Instances != b.Apps[i].Instances ||
			!a.Apps[i].Metrics.Equal(b.Apps[i].Metrics) {
			t.Errorf("app %d diverged: %+v vs %+v", i, a.Apps[i], b.Apps[i])
		}
	}
	if a.CtxSwitches != b.CtxSwitches || a.PoolMigrations != b.PoolMigrations {
		t.Errorf("diagnostics diverged: ctx %d/%d mig %d/%d",
			a.CtxSwitches, b.CtxSwitches, a.PoolMigrations, b.PoolMigrations)
	}
	if !a.Metrics.Equal(b.Metrics) {
		t.Error("run metric sets diverged across identical runs")
	}
	aa, ba := a.Adapt, b.Adapt
	if (aa == nil) != (ba == nil) {
		t.Fatal("adaptation presence diverged")
	}
	if aa != nil && (aa.Flips != ba.Flips || aa.MeanLatencyPeriods != ba.MeanLatencyPeriods ||
		aa.Migrations != ba.Migrations || aa.Reclusters != ba.Reclusters) {
		t.Errorf("adaptation diverged: %+v vs %+v", aa, ba)
	}
}

// TestGenSpecChurnAndPhaseGeneration: churn knobs expand into a
// deterministic arrival timeline inside the horizon, and phase knobs
// produce phased VMs.
func TestGenSpecChurnAndPhaseGeneration(t *testing.T) {
	gen := scenario.GenSpec{
		Name:  "churny",
		VCPUs: 6,
		Mix:   map[vcputype.Type]float64{vcputype.LoLCF: 1},
		Seed:  5,
		Phases: []workload.AppPhase{
			{Dur: 500 * sim.Millisecond, Type: vcputype.LLCF},
			{Dur: 500 * sim.Millisecond, Type: vcputype.LoLCF},
		},
		PhaseProb: 1,
		Churn: &scenario.ChurnSpec{
			Rate: 5, MeanLifetime: 400 * sim.Millisecond,
			Horizon: 2 * sim.Second, MaxVMs: 4,
		},
	}
	spec, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Arrivals) == 0 || len(spec.Arrivals) > 4 {
		t.Fatalf("%d arrivals, want 1..4 (MaxVMs)", len(spec.Arrivals))
	}
	for i, a := range spec.Arrivals {
		if a.At <= 0 || a.At >= 2*sim.Second {
			t.Errorf("arrival %d at %v outside (0, horizon)", i, a.At)
		}
		if a.Lifetime < 200*sim.Millisecond {
			t.Errorf("arrival %d lifetime %v below the default floor", i, a.Lifetime)
		}
	}
	// PhaseProb 1: every generated VM is phased.
	for _, e := range spec.Apps {
		if len(e.Spec.Phases) == 0 {
			t.Errorf("VM %s not phased despite PhaseProb=1", e.Spec.Name)
		}
	}
	// Same seed, same timeline.
	again := gen.MustGenerate()
	if len(again.Arrivals) != len(spec.Arrivals) {
		t.Fatal("arrival count not reproducible")
	}
	for i := range spec.Arrivals {
		if spec.Arrivals[i].At != again.Arrivals[i].At ||
			spec.Arrivals[i].Lifetime != again.Arrivals[i].Lifetime {
			t.Errorf("arrival %d not reproducible", i)
		}
	}
}

func TestGenSpecDynamicValidation(t *testing.T) {
	base := scenario.GenSpec{
		Name: "v", VCPUs: 4,
		Mix: map[vcputype.Type]float64{vcputype.LoLCF: 1},
	}
	cases := []struct {
		name   string
		mutate func(*scenario.GenSpec)
	}{
		{"single phase", func(g *scenario.GenSpec) {
			g.Phases = []workload.AppPhase{{Dur: sim.Second, Type: vcputype.LoLCF}}
		}},
		{"conspin phase", func(g *scenario.GenSpec) {
			g.Phases = []workload.AppPhase{
				{Dur: sim.Second, Type: vcputype.ConSpin},
				{Dur: sim.Second, Type: vcputype.LoLCF},
			}
		}},
		{"zero-duration phase", func(g *scenario.GenSpec) {
			g.Phases = []workload.AppPhase{
				{Dur: 0, Type: vcputype.LLCF},
				{Dur: sim.Second, Type: vcputype.LoLCF},
			}
		}},
		{"phase prob out of range", func(g *scenario.GenSpec) {
			g.Phases = []workload.AppPhase{
				{Dur: sim.Second, Type: vcputype.LLCF},
				{Dur: sim.Second, Type: vcputype.LoLCF},
			}
			g.PhaseProb = 1.5
		}},
		{"churn without rate", func(g *scenario.GenSpec) {
			g.Churn = &scenario.ChurnSpec{MeanLifetime: sim.Second, Horizon: sim.Second}
		}},
		{"churn without horizon", func(g *scenario.GenSpec) {
			g.Churn = &scenario.ChurnSpec{Rate: 1, MeanLifetime: sim.Second}
		}},
		{"churn horizon before start", func(g *scenario.GenSpec) {
			g.Churn = &scenario.ChurnSpec{Rate: 1, MeanLifetime: sim.Second,
				Start: 2 * sim.Second, Horizon: 1 * sim.Second}
		}},
		{"churn with nothing to draw", func(g *scenario.GenSpec) {
			g.Mix = nil
			g.Fixed = []workload.AppSpec{workload.ByName("hmmer")}
			g.VCPUs = 1
			g.Churn = &scenario.ChurnSpec{Rate: 1, MeanLifetime: sim.Second, Horizon: sim.Second}
		}},
	}
	for _, c := range cases {
		g := base
		c.mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestChurnHorizonBelowDefaultStartRejected: a horizon at or below the
// effective start (explicit or the 50 ms default) must fail
// validation, not silently produce a churn-free scenario.
func TestChurnHorizonBelowDefaultStartRejected(t *testing.T) {
	g := scenario.GenSpec{
		Name: "tiny", VCPUs: 2,
		Mix:   map[vcputype.Type]float64{vcputype.LoLCF: 1},
		Churn: &scenario.ChurnSpec{Rate: 2, MeanLifetime: 500 * sim.Millisecond, Horizon: 40 * sim.Millisecond},
	}
	if err := g.Validate(); err == nil {
		t.Error("horizon 40ms below the 50ms default start accepted")
	}
}

// TestChurnVMsGetIndependentRandomStreams: two churn VMs deployed
// around an earlier VM's teardown must not receive identical forked
// RNG streams (the fork label is the monotonic domain-creation count,
// not the live domain count).
func TestChurnVMsGetIndependentRandomStreams(t *testing.T) {
	web := workload.SPECWeb2009()
	web.Name = "web-churn"
	spec := scenario.Spec{
		Name:        "rng-collide",
		GuestPCPUs:  []hw.PCPUID{0},
		Apps:        []scenario.Entry{{Spec: workload.ByName("hmmer"), Count: 1}},
		Warmup:      200 * sim.Millisecond,
		Measure:     1 * sim.Second,
		Seed:        5,
		StartJitter: -1,
		Arrivals: []scenario.Arrival{
			// First churn VM departs before the second arrives: without
			// monotonic fork labels both would be "domain #1".
			{At: 50 * sim.Millisecond, Spec: web, Lifetime: 200 * sim.Millisecond},
			{At: 400 * sim.Millisecond, Spec: web, Lifetime: 700 * sim.Millisecond},
		},
	}
	res := scenario.Run(spec, baselines.XenDefault{})
	var lats []sim.Time
	for _, d := range res.Deps {
		if d.Spec.Name == "web-churn" {
			if len(d.Servers) != 1 {
				t.Fatalf("web VM has %d servers", len(d.Servers))
			}
			lats = append(lats, d.Servers[0].Lat.Max())
		}
	}
	if len(lats) != 2 {
		t.Fatalf("%d web churn VMs, want 2", len(lats))
	}
	if lats[0] == lats[1] {
		t.Errorf("churn VMs produced identical latency maxima (%v) — correlated RNG streams", lats[0])
	}
}

package scenario_test

import (
	"testing"

	"aqlsched/internal/baselines"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
)

func TestTable4ScenariosHaveSixteenVCPUs(t *testing.T) {
	for _, spec := range scenario.Table4(1) {
		total := 0
		for _, e := range spec.Apps {
			per := 1
			if e.Spec.Threads > 0 {
				per = e.Spec.Threads
			}
			n := e.Count
			if n <= 0 {
				n = 1
			}
			total += n * per
		}
		if total != 16 {
			t.Errorf("%s: %d vCPUs, want 16 (Table 4)", spec.Name, total)
		}
		if len(spec.GuestPCPUs) != 4 {
			t.Errorf("%s: %d pCPUs, want 4", spec.Name, len(spec.GuestPCPUs))
		}
	}
}

func TestScenarioByNameAndUnknown(t *testing.T) {
	if s := scenario.ScenarioByName("S3", 1); s.Name != "S3" {
		t.Errorf("got %q", s.Name)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown scenario did not panic")
		}
	}()
	scenario.ScenarioByName("S9", 1)
}

func TestFourSocketMatchesFig3Population(t *testing.T) {
	spec := scenario.FourSocket(1)
	if len(spec.GuestPCPUs) != 12 {
		t.Errorf("%d guest pCPUs, want 12 (one socket for dom0)", len(spec.GuestPCPUs))
	}
	byType := map[vcputype.Type]int{}
	for _, e := range spec.Apps {
		per := 1
		if e.Spec.Threads > 0 {
			per = e.Spec.Threads
		}
		byType[e.Spec.Expected] += e.Count * per
	}
	if byType[vcputype.LLCO] != 12 || byType[vcputype.IOInt] != 12 ||
		byType[vcputype.LLCF] != 17 || byType[vcputype.ConSpin] != 7 {
		t.Errorf("population %v, want 12 LLCO, 12 IOInt+, 17 LLCF, 7 ConSpin-", byType)
	}
}

func TestRunProducesMeasurements(t *testing.T) {
	spec := scenario.ScenarioByName("S2", 3)
	spec.Warmup = 500 * sim.Millisecond
	spec.Measure = 1 * sim.Second
	res := scenario.Run(spec, baselines.XenDefault{})

	if len(res.Apps) != 3 {
		t.Fatalf("%d app measurements, want 3", len(res.Apps))
	}
	web := res.App("SPECweb2009")
	if lat, ok := web.Metrics.Get(scenario.MLatencyMean.Name); !ok || lat == 0 {
		t.Errorf("web measurement %v, want nonzero latency_mean", web.Metrics.Names())
	}
	// The percentile metrics ride along and must be ordered sanely.
	p50, _ := web.Metrics.Get(scenario.MLatencyP50.Name)
	p95, ok95 := web.Metrics.Get(scenario.MLatencyP95.Name)
	p99, ok99 := web.Metrics.Get(scenario.MLatencyP99.Name)
	if !ok95 || !ok99 || p50 <= 0 || p95 < p50 || p99 < p95 {
		t.Errorf("latency percentiles p50=%v p95=%v p99=%v, want 0 < p50 <= p95 <= p99", p50, p95, p99)
	}
	if web.Instances != 5 {
		t.Errorf("web instances %d, want 5", web.Instances)
	}
	// Five web VMs: the fairness index must exist and land in (0, 1].
	if j, ok := web.Metrics.Get(scenario.MFairnessJain.Name); !ok || j <= 0 || j > 1 {
		t.Errorf("web fairness_jain %v (ok=%v), want in (0, 1]", j, ok)
	}
	bz := res.App("bzip2")
	if _, ok := bz.Metrics.Get(scenario.MLatencyMean.Name); ok {
		t.Error("batch app carries a latency metric")
	}
	if tpj, ok := bz.Metrics.Get(scenario.MTimePerJob.Name); !ok || tpj == 0 {
		t.Errorf("bzip2 measurement %v, want nonzero time_per_job", bz.Metrics.Names())
	}
	if len(res.PerVM) != 16 {
		t.Errorf("%d per-VM measures, want 16", len(res.PerVM))
	}
	if v, ok := res.VM("bzip2-1").Perf(); !ok || v == 0 {
		t.Error("per-VM throughput missing")
	}
	if bv, ok := bz.Perf(); !ok || bv <= 0 {
		t.Error("bzip2 primary metric must be positive")
	}
	if wv, ok := web.Perf(); !ok || wv <= 0 {
		t.Error("web primary metric must be positive")
	}
	// The run-scoped Set carries the hypervisor counters.
	if v, ok := res.Metrics.Get(scenario.MCtxSwitches.Name); !ok || v <= 0 {
		t.Error("run metrics missing ctx_switches")
	}
	if !res.Metrics.Has(scenario.MPoolMigrations.Name) {
		t.Error("run metrics missing pool_migrations")
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() float64 {
		spec := scenario.ScenarioByName("S3", 77)
		spec.Warmup = 500 * sim.Millisecond
		spec.Measure = 1 * sim.Second
		v, _ := scenario.Run(spec, baselines.XenDefault{}).App("bzip2").Perf()
		return v
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical scenario runs diverged: %v vs %v", a, b)
	}
}

func TestNormalizeAgainstBaseline(t *testing.T) {
	spec := scenario.ScenarioByName("S3", 5)
	spec.Warmup = 500 * sim.Millisecond
	spec.Measure = 1 * sim.Second
	base := scenario.Run(spec, baselines.XenDefault{})
	same := scenario.Run(spec, baselines.XenDefault{})
	for app, n := range scenario.Normalize(same, base) {
		if n != 1.0 {
			t.Errorf("%s: self-normalization %v, want exactly 1 (deterministic)", app, n)
		}
	}
}

func TestVTurboDedicatesTurboPool(t *testing.T) {
	spec := scenario.ScenarioByName("S5", 5)
	spec.Warmup = 500 * sim.Millisecond
	spec.Measure = 1 * sim.Second
	res := scenario.Run(spec, baselines.VTurbo{})
	pools := res.Hyp.Pools()
	if len(pools) != 2 {
		t.Fatalf("%d pools under vTurbo, want 2 (turbo + normal)", len(pools))
	}
	var turbo, normal bool
	for _, p := range pools {
		switch p.Name {
		case "turbo":
			turbo = true
			if p.Slice != 1*sim.Millisecond {
				t.Errorf("turbo slice %v, want 1ms", p.Slice)
			}
		case "normal":
			normal = true
		}
	}
	if !turbo || !normal {
		t.Errorf("pool names wrong: %v", pools)
	}
}

func TestVSlicerOverridesIOSlices(t *testing.T) {
	spec := scenario.ScenarioByName("S5", 5)
	spec.Warmup = 500 * sim.Millisecond
	spec.Measure = 1 * sim.Second
	res := scenario.Run(spec, baselines.VSlicer{})
	overridden := 0
	for _, d := range res.Deps {
		for _, v := range d.Dom.VCPUs {
			if v.SliceOverride > 0 {
				overridden++
				if d.Spec.Expected != vcputype.IOInt {
					t.Errorf("vSlicer overrode non-IO vCPU of %s", d.Dom.Name)
				}
			}
		}
	}
	if overridden != 4 {
		t.Errorf("%d vCPUs overridden, want 4 (the S5 web VMs)", overridden)
	}
}

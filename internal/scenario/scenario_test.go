package scenario_test

import (
	"testing"

	"aqlsched/internal/baselines"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
)

func TestTable4ScenariosHaveSixteenVCPUs(t *testing.T) {
	for _, spec := range scenario.Table4(1) {
		total := 0
		for _, e := range spec.Apps {
			per := 1
			if e.Spec.Threads > 0 {
				per = e.Spec.Threads
			}
			n := e.Count
			if n <= 0 {
				n = 1
			}
			total += n * per
		}
		if total != 16 {
			t.Errorf("%s: %d vCPUs, want 16 (Table 4)", spec.Name, total)
		}
		if len(spec.GuestPCPUs) != 4 {
			t.Errorf("%s: %d pCPUs, want 4", spec.Name, len(spec.GuestPCPUs))
		}
	}
}

func TestScenarioByNameAndUnknown(t *testing.T) {
	if s := scenario.ScenarioByName("S3", 1); s.Name != "S3" {
		t.Errorf("got %q", s.Name)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown scenario did not panic")
		}
	}()
	scenario.ScenarioByName("S9", 1)
}

func TestFourSocketMatchesFig3Population(t *testing.T) {
	spec := scenario.FourSocket(1)
	if len(spec.GuestPCPUs) != 12 {
		t.Errorf("%d guest pCPUs, want 12 (one socket for dom0)", len(spec.GuestPCPUs))
	}
	byType := map[vcputype.Type]int{}
	for _, e := range spec.Apps {
		per := 1
		if e.Spec.Threads > 0 {
			per = e.Spec.Threads
		}
		byType[e.Spec.Expected] += e.Count * per
	}
	if byType[vcputype.LLCO] != 12 || byType[vcputype.IOInt] != 12 ||
		byType[vcputype.LLCF] != 17 || byType[vcputype.ConSpin] != 7 {
		t.Errorf("population %v, want 12 LLCO, 12 IOInt+, 17 LLCF, 7 ConSpin-", byType)
	}
}

func TestRunProducesMeasurements(t *testing.T) {
	spec := scenario.ScenarioByName("S2", 3)
	spec.Warmup = 500 * sim.Millisecond
	spec.Measure = 1 * sim.Second
	res := scenario.Run(spec, baselines.XenDefault{})

	if len(res.Apps) != 3 {
		t.Fatalf("%d app measurements, want 3", len(res.Apps))
	}
	web := res.App("SPECweb2009")
	if !web.IsLatency || web.Latency == 0 {
		t.Errorf("web measurement %+v, want nonzero latency", web)
	}
	if web.Instances != 5 {
		t.Errorf("web instances %d, want 5", web.Instances)
	}
	bz := res.App("bzip2")
	if bz.IsLatency || bz.Throughput == 0 {
		t.Errorf("bzip2 measurement %+v, want nonzero throughput", bz)
	}
	if len(res.PerVM) != 16 {
		t.Errorf("%d per-VM measures, want 16", len(res.PerVM))
	}
	if res.VM("bzip2-1").Throughput == 0 {
		t.Error("per-VM throughput missing")
	}
	if bz.Metric() <= 0 || web.Metric() <= 0 {
		t.Error("metrics must be positive")
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() float64 {
		spec := scenario.ScenarioByName("S3", 77)
		spec.Warmup = 500 * sim.Millisecond
		spec.Measure = 1 * sim.Second
		return scenario.Run(spec, baselines.XenDefault{}).App("bzip2").Throughput
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical scenario runs diverged: %v vs %v", a, b)
	}
}

func TestNormalizeAgainstBaseline(t *testing.T) {
	spec := scenario.ScenarioByName("S3", 5)
	spec.Warmup = 500 * sim.Millisecond
	spec.Measure = 1 * sim.Second
	base := scenario.Run(spec, baselines.XenDefault{})
	same := scenario.Run(spec, baselines.XenDefault{})
	for app, n := range scenario.Normalize(same, base) {
		if n != 1.0 {
			t.Errorf("%s: self-normalization %v, want exactly 1 (deterministic)", app, n)
		}
	}
}

func TestVTurboDedicatesTurboPool(t *testing.T) {
	spec := scenario.ScenarioByName("S5", 5)
	spec.Warmup = 500 * sim.Millisecond
	spec.Measure = 1 * sim.Second
	res := scenario.Run(spec, baselines.VTurbo{})
	pools := res.Hyp.Pools()
	if len(pools) != 2 {
		t.Fatalf("%d pools under vTurbo, want 2 (turbo + normal)", len(pools))
	}
	var turbo, normal bool
	for _, p := range pools {
		switch p.Name {
		case "turbo":
			turbo = true
			if p.Slice != 1*sim.Millisecond {
				t.Errorf("turbo slice %v, want 1ms", p.Slice)
			}
		case "normal":
			normal = true
		}
	}
	if !turbo || !normal {
		t.Errorf("pool names wrong: %v", pools)
	}
}

func TestVSlicerOverridesIOSlices(t *testing.T) {
	spec := scenario.ScenarioByName("S5", 5)
	spec.Warmup = 500 * sim.Millisecond
	spec.Measure = 1 * sim.Second
	res := scenario.Run(spec, baselines.VSlicer{})
	overridden := 0
	for _, d := range res.Deps {
		for _, v := range d.Dom.VCPUs {
			if v.SliceOverride > 0 {
				overridden++
				if d.Spec.Expected != vcputype.IOInt {
					t.Errorf("vSlicer overrode non-IO vCPU of %s", d.Dom.Name)
				}
			}
		}
	}
	if overridden != 4 {
		t.Errorf("%d vCPUs overridden, want 4 (the S5 web VMs)", overridden)
	}
}

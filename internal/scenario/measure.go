// Metric registrations: every measurement the scenario layer produces,
// declared once as a metrics.Desc and recorded into typed Sets. The
// declaration order of this single var block is the registry order, and
// therefore the column order of every schema-driven sweep artifact.
package scenario

import (
	"aqlsched/internal/metrics"
	"aqlsched/internal/sim"
)

var (
	// --- Per-app performance ------------------------------------------------

	// MLatencyMean is the mean request latency of an IO application
	// (pooled over its VM instances' servers) — the primary metric the
	// paper reports for IO apps.
	MLatencyMean = metrics.Register(metrics.Desc{
		Name: "latency_mean", Unit: "us", Direction: metrics.LowerIsBetter,
		Agg: metrics.AggMean, Scope: metrics.PerApp, Primary: true,
		Help: "mean request latency of an IO application",
	})
	// MTimePerJob is the inverse aggregate throughput of a batch
	// application — the primary lower-is-better metric for batch apps.
	MTimePerJob = metrics.Register(metrics.Desc{
		Name: "time_per_job", Unit: "s", Direction: metrics.LowerIsBetter,
		Agg: metrics.AggMean, Scope: metrics.PerApp, Primary: true,
		Help: "time per completed job of a batch application (1/throughput)",
	})
	// MLatencyP50/P95/P99 are request-latency percentiles over the same
	// pooled sample set MLatencyMean averages.
	MLatencyP50 = metrics.Register(metrics.Desc{
		Name: "latency_p50", Unit: "us", Direction: metrics.LowerIsBetter,
		Agg: metrics.AggPercentile, Scope: metrics.PerApp,
		Help: "median request latency of an IO application",
	})
	MLatencyP95 = metrics.Register(metrics.Desc{
		Name: "latency_p95", Unit: "us", Direction: metrics.LowerIsBetter,
		Agg: metrics.AggPercentile, Scope: metrics.PerApp,
		Help: "95th-percentile request latency of an IO application",
	})
	MLatencyP99 = metrics.Register(metrics.Desc{
		Name: "latency_p99", Unit: "us", Direction: metrics.LowerIsBetter,
		Agg: metrics.AggPercentile, Scope: metrics.PerApp,
		Help: "99th-percentile request latency of an IO application",
	})
	// MFairnessJain is Jain's fairness index over the per-VM performance
	// values of an application's instances (≥ 2 VMs): 1 when every VM
	// performed identically.
	MFairnessJain = metrics.Register(metrics.Desc{
		Name: "fairness_jain", Unit: "index", Direction: metrics.HigherIsBetter,
		Agg: metrics.AggIndex, Scope: metrics.PerApp,
		Help: "Jain fairness index across an app's VM instances",
	})

	// --- Per-run hypervisor diagnostics --------------------------------------

	MCtxSwitches = metrics.Register(metrics.Desc{
		Name: "ctx_switches", Unit: "count", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "vCPU context switches over the whole run",
	})
	MPreemptions = metrics.Register(metrics.Desc{
		Name: "preemptions", Unit: "count", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "involuntary preemptions over the whole run",
	})
	MPoolMigrations = metrics.Register(metrics.Desc{
		Name: "pool_migrations", Unit: "count", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "vCPU pool moves over the whole run",
	})

	// --- Per-run adaptation diagnostics (dynamic scenarios under a
	// recognizing policy; absent otherwise) ----------------------------------

	MVTRSWindow = metrics.Register(metrics.Desc{
		Name: "vtrs_window", Unit: "periods", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "vTRS sliding-window length n the run used",
	})
	MAdaptLatency = metrics.Register(metrics.Desc{
		Name: "adapt_latency_periods", Unit: "periods", Direction: metrics.DirNone,
		Agg: metrics.AggMean, Scope: metrics.PerRun,
		Help: "mean monitoring periods from a ground-truth flip to re-recognition",
	})
	MAdaptMatch = metrics.Register(metrics.Desc{
		Name: "adapt_match_frac", Unit: "frac", Direction: metrics.DirNone,
		Agg: metrics.AggFraction, Scope: metrics.PerRun,
		Help: "fraction of (VM, period) samples whose recognized type matched truth",
	})
	MAdaptFlips = metrics.Register(metrics.Desc{
		Name: "adapt_flips", Unit: "count", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "observed ground-truth type flips",
	})
	MAdaptReclusters = metrics.Register(metrics.Desc{
		Name: "adapt_reclusters", Unit: "count", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "applied cluster reconfigurations in the measurement window",
	})
	MAdaptMigrations = metrics.Register(metrics.Desc{
		Name: "adapt_migrations", Unit: "count", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "vCPU pool moves in the measurement window",
	})

	// Deadline accounting, emitted only by deadline-aware policies
	// (edf:*): runs under other policies carry no deadline metrics, so
	// existing artifacts are unchanged.
	MDeadlineMisses = metrics.Register(metrics.Desc{
		Name: "deadline_misses", Unit: "count", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "dispatches whose scheduling delay exceeded the policy deadline",
	})
	MDeadlineDispatches = metrics.Register(metrics.Desc{
		Name: "deadline_dispatches", Unit: "count", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "dispatches observed by the deadline accounting",
	})
	MDeadlineMissRatio = metrics.Register(metrics.Desc{
		Name: "deadline_miss_ratio", Unit: "frac", Direction: metrics.LowerIsBetter,
		Agg: metrics.AggFraction, Scope: metrics.PerRun,
		Help: "deadline_misses / deadline_dispatches",
	})
)

// appProbe accumulates one application's raw measurements over its VM
// instances during result collection, then folds them into Sets.
type appProbe struct {
	isLatency bool
	// latency apps: pooled mean accumulator + pooled histogram.
	latSum sim.Time
	latN   int
	hist   metrics.Histogram
	// batch apps: aggregate rate.
	rate float64
	// perVM holds each instance's primary value (mean latency in µs or
	// jobs/s rate) for the fairness index; failed instances contribute
	// nothing.
	perVM []float64
}

// finish folds the accumulated raw measurements into the app's Set. A
// probe that measured nothing (no completed jobs, no served requests)
// records no primary metric at all — the failed measurement is absent,
// and aggregation skips it.
func (p *appProbe) finish(set *metrics.Set) {
	if p.isLatency {
		if p.latN > 0 {
			// Pooled mean in sim.Time (integer µs) arithmetic — the exact
			// value the paper's figures were produced with.
			set.Put(MLatencyMean, float64(p.latSum/sim.Time(p.latN)))
			set.Put(MLatencyP50, float64(p.hist.Percentile(50)))
			set.Put(MLatencyP95, float64(p.hist.Percentile(95)))
			set.Put(MLatencyP99, float64(p.hist.Percentile(99)))
		}
	} else if p.rate > 0 {
		set.Put(MTimePerJob, 1/p.rate)
	}
	if j, ok := metrics.Jain(p.perVM); ok {
		set.Put(MFairnessJain, j)
	}
}

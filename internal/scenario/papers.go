package scenario

import (
	"fmt"

	"aqlsched/internal/cache"
	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
)

// SingleSocketPCPUs is the per-scenario pCPU budget of Section 4.2's
// single-socket experiments: 16 vCPUs on 4 pCPUs (4 vCPUs per pCPU).
func SingleSocketPCPUs() []hw.PCPUID { return []hw.PCPUID{0, 1, 2, 3} }

// webAt returns an independent SPECweb-like VM spec; rate is split so
// several instances together produce the standard load.
func webAt(rate float64) workload.AppSpec {
	s := workload.SPECWeb2009()
	s.Rate = rate
	return s
}

// conSpinVM returns a lock application spec with the given vCPU count.
func conSpinVM(name string, vcpus int) workload.AppSpec {
	s := workload.ByName(name)
	s.Threads = vcpus
	return s
}

// Table4 returns the five colocation scenarios of Table 4, each running
// 16 vCPUs over the 4 single-socket pCPUs. IOInt entries are deployed
// as independent single-vCPU web VMs; ConSpin entries as one VM with as
// many vCPUs as the type count; CPU entries as single-vCPU VMs.
func Table4(seed uint64) []Spec {
	base := func(name string, apps []Entry) Spec {
		return Spec{
			Name:       name,
			Topo:       hw.I73770(),
			GuestPCPUs: SingleSocketPCPUs(),
			Apps:       apps,
			Seed:       seed,
		}
	}
	return []Spec{
		base("S1", []Entry{
			{Spec: conSpinVM("fluidanimate", 5), Count: 1},
			{Spec: workload.ByName("bzip2"), Count: 5},
			{Spec: workload.ByName("hmmer"), Count: 6},
		}),
		base("S2", []Entry{
			{Spec: webAt(200), Count: 5},
			{Spec: workload.ByName("bzip2"), Count: 5},
			{Spec: workload.ByName("libquantum"), Count: 6},
		}),
		base("S3", []Entry{
			{Spec: workload.ByName("bzip2"), Count: 5},
			{Spec: workload.ByName("libquantum"), Count: 5},
			{Spec: workload.ByName("hmmer"), Count: 6},
		}),
		base("S4", []Entry{
			{Spec: webAt(200), Count: 4},
			{Spec: conSpinVM("facesim", 4), Count: 1},
			{Spec: workload.ByName("bzip2"), Count: 4},
			{Spec: workload.ByName("libquantum"), Count: 4},
		}),
		base("S5", []Entry{
			{Spec: webAt(200), Count: 4},
			{Spec: conSpinVM("facesim", 4), Count: 1},
			{Spec: workload.ByName("bzip2"), Count: 4},
			{Spec: workload.ByName("libquantum"), Count: 2},
			{Spec: workload.ByName("hmmer"), Count: 2},
		}),
	}
}

// ScenarioByName returns one of the Table 4 scenarios.
func ScenarioByName(name string, seed uint64) Spec {
	for _, s := range Table4(seed) {
		if s.Name == name {
			return s
		}
	}
	panic(fmt.Sprintf("scenario: unknown scenario %q", name))
}

// --- The four-socket case (Fig. 3 / Fig. 6 right) -------------------------

// FourSocketGuestPCPUs: the paper dedicates one socket (socket 0) to
// dom0; guests use the other three (12 pCPUs).
func FourSocketGuestPCPUs(topo *hw.Topology) []hw.PCPUID {
	var out []hw.PCPUID
	for s := hw.SocketID(1); int(s) < topo.Sockets; s++ {
		out = append(out, topo.PCPUsOfSocket(s)...)
	}
	return out
}

// ioIntPlus is the IOInt+ micro-benchmark of Section 3.5: an IO-driven
// VM whose request processing trashes the LLC (its LLCO cursor is
// "tremendous"), built as the paper did from micro-benchmarks.
func ioIntPlus(rate float64) workload.AppSpec {
	return workload.AppSpec{
		Name:     "microIO+",
		Expected: vcputype.IOInt,
		Kind:     workload.KindWeb,
		Prof:     cache.Profile{WSS: 160 * hw.KB, RefRate: 0.3},
		Rate:     rate,
		Service:  250 * sim.Microsecond,
		CGI:      cache.Profile{WSS: 24 * hw.MB, RefRate: 30, Streaming: true, StreamMissRatio: 0.9},
		JobWork:  4 * sim.Millisecond,
	}
}

// conSpinMinus is a ConSpin- micro-benchmark (lock-bound, small
// footprint).
func conSpinMinus(vcpus int) workload.AppSpec {
	s := workload.MicroKernbench(vcpus)
	s.Name = "microSpin-"
	return s
}

// FourSocket reproduces the Fig. 3 population: 12 LLCO, 12 IOInt+,
// 17 LLCF and 7 ConSpin- vCPUs (48 total) on 12 guest pCPUs of the
// 4-socket Xeon. VM creation order (LLCO, IOInt+, LLCF, ConSpin-)
// matches the paper's layout so Algorithm 1 reproduces Fig. 3 exactly.
func FourSocket(seed uint64) Spec {
	topo := hw.XeonE54603()
	llco := workload.MicroListWalk(topo, vcputype.LLCO)
	llcf := workload.MicroListWalk(topo, vcputype.LLCF)
	return Spec{
		Name:       "four-socket",
		Topo:       topo,
		GuestPCPUs: FourSocketGuestPCPUs(topo),
		Apps: []Entry{
			{Spec: llco, Count: 12},
			{Spec: ioIntPlus(400), Count: 12},
			{Spec: llcf, Count: 17},
			{Spec: conSpinMinus(7), Count: 1},
		},
		Seed: seed,
	}
}

package scenario

// The policy axis carries a typed-parameter model: a policy declares
// its knobs (name, kind, range, default) as ParamDesc values, and the
// catalog's plugin registry turns the declarations into a parse
// grammar ("fixed:5ms", "aql:window=8"), spec-file validation for
// {"policy": {"name": ..., "params": {...}}} blocks, and -list
// self-documentation. The descriptors are JSON-taggable so tooling can
// emit them as machine-readable config schemas.

// ParamKind is the type of one policy parameter.
type ParamKind string

const (
	// ParamInt is a decimal integer ("4").
	ParamInt ParamKind = "int"
	// ParamDuration is a positive Go duration ("5ms", "90us").
	ParamDuration ParamKind = "duration"
	// ParamFloat is a decimal floating-point number ("0.5").
	ParamFloat ParamKind = "float"
	// ParamString is free-form text.
	ParamString ParamKind = "string"
)

// ParamDesc declares one typed policy knob.
type ParamDesc struct {
	// Name identifies the parameter in "k=v" spellings and spec-file
	// params objects.
	Name string `json:"name"`
	// Kind selects the parser and range semantics.
	Kind ParamKind `json:"kind"`
	// Help is a one-line description for -list.
	Help string `json:"help,omitempty"`
	// Hint is the grammar placeholder shown in listings ("<duration>",
	// "<periods>"); empty defaults to "<kind>".
	Hint string `json:"hint,omitempty"`
	// Default is the textual default value applied when the parameter
	// is omitted; empty means no default (the policy's zero behavior).
	Default string `json:"default,omitempty"`
	// Min and Max bound numeric kinds, inclusive, in the same textual
	// form the parameter is spelled in; empty means unbounded.
	Min string `json:"min,omitempty"`
	Max string `json:"max,omitempty"`
	// Required parameters must be supplied explicitly.
	Required bool `json:"required,omitempty"`
}

// GrammarHint is the placeholder shown for this parameter in grammar
// listings.
func (d ParamDesc) GrammarHint() string {
	if d.Hint != "" {
		return d.Hint
	}
	return "<" + string(d.Kind) + ">"
}

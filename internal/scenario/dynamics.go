package scenario

import (
	"aqlsched/internal/cache"
	"aqlsched/internal/core"
	"aqlsched/internal/hw"
	"aqlsched/internal/metrics"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

// Arrival is one VM-lifecycle event: the application deploys at At and
// (when Lifetime is positive) is torn down at At+Lifetime through the
// hypervisor's DestroyDomain. Arrivals and departures may land inside
// warmup or the measurement window — that is the point: the online
// scheduler must re-recognize and re-cluster a moving population.
type Arrival struct {
	// At is the arrival time on the run clock (> 0; time 0 VMs belong
	// in Spec.Apps).
	At sim.Time
	// Spec is the application to deploy (one VM).
	Spec workload.AppSpec
	// Lifetime, when positive, schedules teardown at At+Lifetime.
	// Zero means the VM stays until the end of the run.
	Lifetime sim.Time
}

// Dynamic reports whether the scenario exercises the online scheduler:
// it has lifecycle events or at least one phased application.
func (s *Spec) Dynamic() bool {
	if len(s.Arrivals) > 0 {
		return true
	}
	for _, e := range s.Apps {
		if len(e.Spec.Phases) > 0 {
			return true
		}
	}
	return false
}

// ControllerProvider is implemented by policies that expose their AQL
// controller after Setup (baselines.AQL). The adaptation tracker uses
// it to read the vTRS's recognized types; policies without a
// recognizer produce no adaptation diagnostics.
type ControllerProvider interface {
	AQLController() *core.Controller
}

// TypeSample is one monitoring-period observation for one VM: the
// ground-truth type its workload was executing vs. the type the vTRS
// had recognized for its vCPU.
type TypeSample struct {
	Period     int
	At         sim.Time
	Truth      vcputype.Type
	Recognized vcputype.Type
}

// VMAdaptation is the per-VM adaptation record.
type VMAdaptation struct {
	VM  string
	App string
	// Dynamic marks VMs whose ground truth can change (phased apps).
	Dynamic bool
	// Samples is the full per-period time series (truth vs recognized).
	Samples []TypeSample
	// Flips counts observed ground-truth changes; RecognizedFlips how
	// many of them the vTRS re-recognized before the next flip (or run
	// end); LatencySum accumulates, over recognized flips, the number
	// of monitoring periods from the flip to the first period whose
	// recognized type matched the new truth.
	Flips           int
	RecognizedFlips int
	LatencySum      int
	// Matched / Total count periods where recognized == truth.
	Matched, Total int
}

// MeanLatency reports the mean recognition latency in monitoring
// periods over recognized flips (0 when no flip was recognized).
func (a *VMAdaptation) MeanLatency() float64 {
	if a.RecognizedFlips == 0 {
		return 0
	}
	return float64(a.LatencySum) / float64(a.RecognizedFlips)
}

// Adaptation aggregates the run's adaptation diagnostics: how fast and
// at what churn cost the online scheduler tracked the moving workload.
type Adaptation struct {
	// Window is the vTRS sliding-window length n the run used.
	Window int
	PerVM  []VMAdaptation
	// Flips / RecognizedFlips / MeanLatencyPeriods summarize
	// recognition reactivity across all VMs.
	Flips              int
	RecognizedFlips    int
	MeanLatencyPeriods float64
	// MatchedFrac is the fraction of (VM, period) samples whose
	// recognized type equalled the ground truth.
	MatchedFrac float64
	// Reclusters / Migrations count applied cluster reconfigurations
	// and vCPU pool moves during the measurement window — the churn
	// side of the reactivity trade-off.
	Reclusters uint64
	Migrations uint64
}

// record publishes the run's adaptation diagnostics through the metric
// registry, making the tracker an ordinary registry client: the sweep
// aggregates and emits adapt_* like any other per-run metric. A run
// that recognized no flip records no adapt_latency_periods at all (a
// mean over zero flips is undefined, not zero) — aggregation skips the
// absent measurement.
func (a *Adaptation) record(set *metrics.Set) {
	set.Put(MVTRSWindow, float64(a.Window))
	if a.RecognizedFlips > 0 {
		set.Put(MAdaptLatency, a.MeanLatencyPeriods)
	}
	set.Put(MAdaptMatch, a.MatchedFrac)
	set.Put(MAdaptFlips, float64(a.Flips))
	set.Put(MAdaptReclusters, float64(a.Reclusters))
	set.Put(MAdaptMigrations, float64(a.Migrations))
}

// DynPhase is the hand-authored dynamic scenario of the adaptation
// experiment: 12 vCPUs on 4 single-socket pCPUs, 8 of them phased VMs
// whose ground-truth type flips every 1–1.5 s (compute↔compute and
// IO↔compute cycles, phase-offset so flips never align), plus 4
// static LoLCF VMs as ballast. The population exercises exactly the
// regime Section 3.3's window trade-off is about: the vTRS must keep
// re-recognizing moving vCPUs, and every re-recognition the clustering
// acts on costs migrations.
func DynPhase(seed uint64) Spec {
	topo := hw.I73770()
	lolcf := cache.Profile{WSS: topo.L2.Size * 9 / 10, RefRate: 0.2}
	llco := cache.Profile{WSS: topo.LLC.Size * 2, RefRate: 30, Streaming: true, StreamMissRatio: 0.9}
	llcf := cache.Profile{WSS: topo.LLC.Size / 2, RefRate: 25, MissFloor: 0.01, ReuseFactor: 5}
	ioProf := cache.Profile{WSS: 128 * hw.KB, RefRate: 0.2}

	phased := func(name string, offset sim.Time, phases ...workload.AppPhase) Entry {
		return Entry{Spec: workload.AppSpec{
			Name:        name,
			Expected:    phases[0].Type,
			Phases:      phases,
			PhaseOffset: offset,
		}, Count: 1}
	}
	burnFlip := func(name string, offset sim.Time) Entry {
		return phased(name, offset,
			workload.AppPhase{Dur: 1200 * sim.Millisecond, Type: vcputype.LoLCF, Prof: lolcf, JobWork: 8 * sim.Millisecond},
			workload.AppPhase{Dur: 1200 * sim.Millisecond, Type: vcputype.LLCO, Prof: llco, JobWork: 8 * sim.Millisecond},
		)
	}
	cacheFlip := func(name string, offset sim.Time) Entry {
		return phased(name, offset,
			workload.AppPhase{Dur: 1500 * sim.Millisecond, Type: vcputype.LLCF, Prof: llcf, JobWork: 4 * sim.Millisecond},
			workload.AppPhase{Dur: 1500 * sim.Millisecond, Type: vcputype.LoLCF, Prof: lolcf, JobWork: 8 * sim.Millisecond},
		)
	}
	ioFlip := func(name string, offset sim.Time) Entry {
		return phased(name, offset,
			workload.AppPhase{Dur: 1000 * sim.Millisecond, Type: vcputype.IOInt, Rate: 300, Service: 300 * sim.Microsecond, Prof: ioProf},
			workload.AppPhase{Dur: 1000 * sim.Millisecond, Type: vcputype.LoLCF, Prof: lolcf, JobWork: 8 * sim.Millisecond},
		)
	}
	return Spec{
		Name:       "dynphase",
		Topo:       topo,
		GuestPCPUs: SingleSocketPCPUs(),
		Apps: []Entry{
			burnFlip("flipA", 0),
			burnFlip("flipB", 300*sim.Millisecond),
			burnFlip("flipC", 600*sim.Millisecond),
			burnFlip("flipD", 900*sim.Millisecond),
			cacheFlip("cacheA", 0),
			cacheFlip("cacheB", 750*sim.Millisecond),
			ioFlip("ioA", 0),
			ioFlip("ioB", 500*sim.Millisecond),
			{Spec: workload.ByName("hmmer"), Count: 4},
		},
		Seed: seed,
	}
}

// vmTrack is the tracker's working state for one VM.
type vmTrack struct {
	rec       VMAdaptation
	d         *workload.Deployment
	prevTruth vcputype.Type
	havePrev  bool
	pending   bool // a flip awaits recognition
	flipAt    int  // period of the pending flip
}

// adaptTracker samples every monitoring period (hooked behind the AQL
// controller's own OnPeriod work) and folds the observations into an
// Adaptation.
type adaptTracker struct {
	ctl  *core.Controller
	h    *xen.Hypervisor
	deps *[]*workload.Deployment
	gone map[*workload.Deployment]departInfo

	vms   []*vmTrack
	byDep map[*workload.Deployment]*vmTrack

	measuring  bool
	recStart   uint64
	migStart   uint64
	recluster  uint64
	migrations uint64
}

type departInfo struct {
	at   sim.Time
	snap metrics.JobSnapshot
}

func newAdaptTracker(ctl *core.Controller, h *xen.Hypervisor, deps *[]*workload.Deployment, gone map[*workload.Deployment]departInfo) *adaptTracker {
	return &adaptTracker{
		ctl:   ctl,
		h:     h,
		deps:  deps,
		gone:  gone,
		byDep: map[*workload.Deployment]*vmTrack{},
	}
}

// install chains the tracker behind the monitor's existing OnPeriod
// hook (the controller's recluster step), so samples see the types the
// controller just acted on.
func (tr *adaptTracker) install() {
	prev := tr.ctl.Monitor.OnPeriod
	tr.ctl.Monitor.OnPeriod = func(now sim.Time, period int) {
		if prev != nil {
			prev(now, period)
		}
		tr.sample(now, period)
	}
}

// markMeasureStart snapshots the churn counters so Reclusters and
// Migrations cover the measurement window only.
func (tr *adaptTracker) markMeasureStart() {
	tr.measuring = true
	tr.recStart = tr.ctl.Reclusters
	tr.migStart = tr.h.PoolMigrations
}

// sample records one monitoring period for every live VM.
func (tr *adaptTracker) sample(now sim.Time, period int) {
	for _, d := range *tr.deps {
		if _, departed := tr.gone[d]; departed {
			continue
		}
		vt, ok := tr.byDep[d]
		if !ok {
			vt = &vmTrack{
				d: d,
				rec: VMAdaptation{
					VM:      d.Dom.Name,
					App:     d.Spec.Name,
					Dynamic: len(d.Spec.Phases) > 0,
				},
			}
			tr.byDep[d] = vt
			tr.vms = append(tr.vms, vt)
		}
		truth := d.Spec.TypeAt(now - d.DeployedAt)
		recog := tr.ctl.Monitor.TypeOf(d.Dom.VCPUs[0])
		vt.rec.Samples = append(vt.rec.Samples, TypeSample{
			Period: period, At: now, Truth: truth, Recognized: recog,
		})
		vt.rec.Total++
		if recog == truth {
			vt.rec.Matched++
		}
		if vt.havePrev && truth != vt.prevTruth {
			// A ground-truth flip happened since the last period. A flip
			// still pending from before was never recognized in time.
			vt.pending = true
			vt.flipAt = period
			vt.rec.Flips++
		}
		if vt.pending && recog == truth {
			vt.rec.RecognizedFlips++
			vt.rec.LatencySum += period - vt.flipAt + 1
			vt.pending = false
		}
		vt.prevTruth = truth
		vt.havePrev = true
	}
}

// finalize folds the per-VM state into the run's Adaptation record.
func (tr *adaptTracker) finalize() *Adaptation {
	a := &Adaptation{Window: tr.ctl.Monitor.Window}
	if tr.measuring {
		a.Reclusters = tr.ctl.Reclusters - tr.recStart
		a.Migrations = tr.h.PoolMigrations - tr.migStart
	}
	matched, total := 0, 0
	for _, vt := range tr.vms {
		a.PerVM = append(a.PerVM, vt.rec)
		a.Flips += vt.rec.Flips
		a.RecognizedFlips += vt.rec.RecognizedFlips
		matched += vt.rec.Matched
		total += vt.rec.Total
		if vt.rec.RecognizedFlips > 0 {
			a.MeanLatencyPeriods += float64(vt.rec.LatencySum)
		}
	}
	if a.RecognizedFlips > 0 {
		a.MeanLatencyPeriods /= float64(a.RecognizedFlips)
	} else {
		a.MeanLatencyPeriods = 0
	}
	if total > 0 {
		a.MatchedFrac = float64(matched) / float64(total)
	}
	return a
}

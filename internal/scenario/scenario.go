// Package scenario builds and runs the paper's experimental setups: a
// machine, a set of colocated application VMs, a scheduling policy, and
// a warm-up + measurement window. It also defines the paper's concrete
// scenarios (Table 4's S1-S5 and the four-socket case of Fig. 3).
package scenario

import (
	"fmt"

	"aqlsched/internal/credit"
	"aqlsched/internal/hw"
	"aqlsched/internal/metrics"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

// Policy configures the scheduler under test after deployment. The
// baselines package provides implementations.
type Policy interface {
	Name() string
	Setup(h *xen.Hypervisor, deps []*workload.Deployment)
}

// Entry is one application and how many VMs of it to deploy.
type Entry struct {
	Spec  workload.AppSpec
	Count int
}

// Spec describes a full experiment.
type Spec struct {
	Name       string
	Topo       *hw.Topology
	GuestPCPUs []hw.PCPUID
	Apps       []Entry
	Warmup     sim.Time
	Measure    sim.Time
	Seed       uint64
	// StartJitter staggers VM start times (default 120 ms — one full
	// 4-vCPU rotation at the default quantum). Set negative to disable.
	StartJitter sim.Time
	// Arrivals schedules VM churn: applications deploying (and, with a
	// Lifetime, departing) while the run is underway. See Arrival.
	Arrivals []Arrival
}

// AppMeasure is the measured performance of one application (aggregated
// over its VM instances).
type AppMeasure struct {
	Name     string
	Expected vcputype.Type
	// Latency is the mean request latency (IO applications).
	Latency sim.Time
	// Throughput is jobs per second (batch applications).
	Throughput float64
	// IsLatency selects which of the two is the app's metric.
	IsLatency bool
	// Instances is how many VMs were aggregated.
	Instances int
}

// Metric reports the scalar lower-is-better performance value: mean
// latency in µs for IO apps, time-per-job (1/throughput) for batch.
func (a AppMeasure) Metric() float64 {
	if a.IsLatency {
		return float64(a.Latency)
	}
	if a.Throughput == 0 {
		return 0
	}
	return 1 / a.Throughput
}

// Result is one experiment run.
type Result struct {
	Spec   Spec
	Policy string
	Apps   []AppMeasure
	// PerVM holds one measurement per deployment (Name = domain name),
	// for experiments that report per-VM or per-cluster results.
	PerVM []AppMeasure
	// Hypervisor diagnostics.
	CtxSwitches uint64
	Preemptions uint64
	// PoolMigrations counts vCPU pool moves over the whole run.
	PoolMigrations uint64
	// Adapt carries the adaptation diagnostics of a dynamic run under a
	// recognizing policy (nil otherwise): recognized-vs-truth time
	// series, recognition latency, recluster and migration churn.
	Adapt *Adaptation
	// Hyp and Deps stay accessible for experiment-specific inspection.
	Hyp  *xen.Hypervisor
	Deps []*workload.Deployment
}

// VM finds a per-VM measurement by domain name.
func (r *Result) VM(name string) AppMeasure {
	for _, a := range r.PerVM {
		if a.Name == name {
			return a
		}
	}
	panic(fmt.Sprintf("scenario: no per-VM measurement for %q in %s", name, r.Spec.Name))
}

// App finds a measurement by application name.
func (r *Result) App(name string) AppMeasure {
	for _, a := range r.Apps {
		if a.Name == name {
			return a
		}
	}
	panic(fmt.Sprintf("scenario: no measurement for %q in %s", name, r.Spec.Name))
}

// Run executes the scenario under the policy and returns measurements.
func Run(spec Spec, pol Policy) *Result {
	if spec.Topo == nil {
		spec.Topo = hw.I73770()
	}
	if spec.Warmup == 0 {
		spec.Warmup = 1 * sim.Second
	}
	if spec.Measure == 0 {
		spec.Measure = 4 * sim.Second
	}
	switch {
	case spec.StartJitter == 0:
		spec.StartJitter = 120 * sim.Millisecond
	case spec.StartJitter < 0:
		spec.StartJitter = 0
	}
	var opts []xen.Option
	if spec.GuestPCPUs != nil {
		opts = append(opts, xen.WithGuestPCPUs(spec.GuestPCPUs))
	}
	h := xen.New(spec.Topo, credit.New(), spec.Seed, opts...)
	rng := sim.NewRNG(spec.Seed + 0x9e37)

	var deps []*workload.Deployment
	for _, e := range spec.Apps {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			inst := ""
			if n > 1 {
				inst = fmt.Sprintf("%d", i+1)
			}
			s := e.Spec
			if s.StartJitter == 0 {
				s.StartJitter = spec.StartJitter
			}
			deps = append(deps, workload.Deploy(h, s, inst, rng))
		}
	}

	// VM churn: arrivals deploy (and, with a lifetime, depart) while
	// the run is underway. Everything is scheduled up front so the
	// whole lifecycle is a pure function of the spec and seed.
	gone := map[*workload.Deployment]departInfo{}
	for i, a := range spec.Arrivals {
		a := a
		inst := fmt.Sprintf("a%d", i+1)
		at := a.At
		if at <= 0 {
			at = 1 // time-0 VMs belong in Apps; clamp instead of racing Setup
		}
		h.Engine.At(at, func(now sim.Time) {
			d := workload.Deploy(h, a.Spec, inst, rng)
			deps = append(deps, d)
			if a.Lifetime > 0 {
				h.Engine.At(now+a.Lifetime, func(end sim.Time) {
					d.Stop()
					gone[d] = departInfo{at: end, snap: d.Snapshot(end)}
					h.DestroyDomain(d.Dom, end)
				})
			}
		})
	}

	pol.Setup(h, deps)

	// Adaptation diagnostics: dynamic scenario + a policy that exposes
	// a vTRS (the AQL controller). Static runs take none of this path.
	var tracker *adaptTracker
	if spec.Dynamic() {
		if cp, ok := pol.(ControllerProvider); ok {
			if ctl := cp.AQLController(); ctl != nil && ctl.Monitor != nil {
				tracker = newAdaptTracker(ctl, h, &deps, gone)
				tracker.install()
			}
		}
	}

	h.Run(spec.Warmup)
	type snap struct {
		jobs metrics.JobSnapshot
	}
	snaps := map[*workload.Deployment]snap{}
	for _, d := range deps {
		if _, departed := gone[d]; departed {
			continue
		}
		d.ResetLatencies()
		snaps[d] = snap{jobs: d.Snapshot(h.Engine.Now())}
	}
	if tracker != nil {
		tracker.markMeasureStart()
	}
	h.Run(spec.Warmup + spec.Measure)

	// Aggregate per application name, and record per-VM measures.
	agg := map[string]*AppMeasure{}
	var order []string
	latSum := map[string]sim.Time{}
	latN := map[string]int{}
	res := &Result{
		Spec:           spec,
		Policy:         pol.Name(),
		CtxSwitches:    h.CtxSwitches,
		Preemptions:    h.Preemptions,
		PoolMigrations: h.PoolMigrations,
		Hyp:            h,
		Deps:           deps,
	}
	if tracker != nil {
		res.Adapt = tracker.finalize()
	}
	for _, d := range deps {
		name := d.Spec.Name
		m, ok := agg[name]
		if !ok {
			m = &AppMeasure{Name: name, Expected: d.Spec.Expected, IsLatency: d.IsLatencyApp()}
			agg[name] = m
			order = append(order, name)
		}
		m.Instances++
		vm := AppMeasure{
			Name:      d.Dom.Name,
			Expected:  d.Spec.Expected,
			IsLatency: d.IsLatencyApp(),
			Instances: 1,
		}
		if m.IsLatency {
			for _, s := range d.Servers {
				if s.Lat.Count() > 0 {
					latSum[name] += s.Lat.Mean() * sim.Time(s.Lat.Count())
					latN[name] += s.Lat.Count()
				}
			}
			vm.Latency = d.MeanLatency()
		} else {
			// Throughput windows: [measure start, run end] for VMs that
			// lived through the window; churn VMs count from arrival
			// and/or to departure.
			start, ok := snaps[d]
			if !ok {
				start = snap{jobs: metrics.JobSnapshot{At: d.DeployedAt}}
			}
			end := d.Snapshot(h.Engine.Now())
			if di, departed := gone[d]; departed {
				end = di.snap
			}
			rate := metrics.Rate(start.jobs, end)
			m.Throughput += rate
			vm.Throughput = rate
		}
		res.PerVM = append(res.PerVM, vm)
	}
	for _, name := range order {
		m := agg[name]
		if m.IsLatency && latN[name] > 0 {
			m.Latency = latSum[name] / sim.Time(latN[name])
		}
		res.Apps = append(res.Apps, *m)
	}
	return res
}

// Normalize computes the paper's normalized performance per app:
// measured metric / baseline metric, lower is better.
func Normalize(measured, baseline *Result) map[string]float64 {
	out := make(map[string]float64, len(measured.Apps))
	for _, a := range measured.Apps {
		b := baseline.App(a.Name)
		out[a.Name] = metrics.Normalized(a.Metric(), b.Metric())
	}
	return out
}

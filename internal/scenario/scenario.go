// Package scenario builds and runs the paper's experimental setups: a
// machine, a set of colocated application VMs, a scheduling policy, and
// a warm-up + measurement window. It also defines the paper's concrete
// scenarios (Table 4's S1-S5 and the four-socket case of Fig. 3).
package scenario

import (
	"fmt"

	"aqlsched/internal/credit"
	"aqlsched/internal/hw"
	"aqlsched/internal/metrics"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

// Policy configures the scheduler under test after deployment. The
// baselines package provides implementations. A policy's typed knobs
// are declared as ParamDesc values (params.go) at plugin-registration
// time; see internal/catalog.RegisterPolicyPlugin.
type Policy interface {
	Name() string
	Setup(h *xen.Hypervisor, deps []*workload.Deployment)
}

// RunMetricsReporter is implemented by policies that produce their own
// run-scoped measurements (EDF's deadline accounting). Run invokes it
// once after the simulation; fleet runs invoke it once per host, in
// host order, against one shared set — implementations must therefore
// accumulate with any values already present rather than overwrite.
type RunMetricsReporter interface {
	ReportRunMetrics(set *metrics.Set)
}

// Entry is one application and how many VMs of it to deploy.
type Entry struct {
	Spec  workload.AppSpec
	Count int
}

// Spec describes a full experiment.
type Spec struct {
	Name       string
	Topo       *hw.Topology
	GuestPCPUs []hw.PCPUID
	Apps       []Entry
	Warmup     sim.Time
	Measure    sim.Time
	Seed       uint64
	// StartJitter staggers VM start times (default 120 ms — one full
	// 4-vCPU rotation at the default quantum). Set negative to disable.
	StartJitter sim.Time
	// Arrivals schedules VM churn: applications deploying (and, with a
	// Lifetime, departing) while the run is underway. See Arrival.
	Arrivals []Arrival
}

// AppMeasure is the measured performance of one application (aggregated
// over its VM instances) or of one VM: a typed, self-describing metric
// Set recorded against the package's registered Descs (see measure.go).
// IO applications carry latency_mean plus the latency percentiles,
// batch applications time_per_job; apps with ≥ 2 instances add
// fairness_jain. A metric the probes could not measure (a batch app
// that completed no jobs) is absent from the Set, never zero.
type AppMeasure struct {
	Name     string
	Expected vcputype.Type
	// Instances is how many VMs were aggregated.
	Instances int
	// Metrics is the app's measurement set (registry-described).
	Metrics metrics.Set
}

// Perf reports the app's primary lower-is-better performance value:
// mean latency in µs for IO apps, time-per-job for batch. ok is false
// when the measurement failed (no requests served, no jobs completed).
func (a AppMeasure) Perf() (v float64, ok bool) {
	_, v, ok = a.Metrics.Primary()
	return v, ok
}

// Result is one experiment run.
type Result struct {
	Spec   Spec
	Policy string
	Apps   []AppMeasure
	// PerVM holds one measurement per deployment (Name = domain name),
	// for experiments that report per-VM or per-cluster results.
	PerVM []AppMeasure
	// Metrics is the run-scoped measurement set: hypervisor counters
	// (ctx_switches, preemptions, pool_migrations) and, for dynamic runs
	// under a recognizing policy, the adaptation diagnostics — all
	// recorded through the same registry the per-app metrics use.
	Metrics metrics.Set
	// Hypervisor diagnostics (also present in Metrics).
	CtxSwitches uint64
	Preemptions uint64
	// PoolMigrations counts vCPU pool moves over the whole run.
	PoolMigrations uint64
	// Adapt keeps the full adaptation drill-down of a dynamic run under
	// a recognizing policy (nil otherwise): the per-VM recognized-vs-
	// truth time series behind the adapt_* metrics.
	Adapt *Adaptation
	// Hyp and Deps stay accessible for experiment-specific inspection.
	Hyp  *xen.Hypervisor
	Deps []*workload.Deployment
}

// VM finds a per-VM measurement by domain name.
func (r *Result) VM(name string) AppMeasure {
	for _, a := range r.PerVM {
		if a.Name == name {
			return a
		}
	}
	panic(fmt.Sprintf("scenario: no per-VM measurement for %q in %s", name, r.Spec.Name))
}

// App finds a measurement by application name.
func (r *Result) App(name string) AppMeasure {
	for _, a := range r.Apps {
		if a.Name == name {
			return a
		}
	}
	panic(fmt.Sprintf("scenario: no measurement for %q in %s", name, r.Spec.Name))
}

// Run executes the scenario under the policy and returns measurements.
func Run(spec Spec, pol Policy) *Result {
	if spec.Topo == nil {
		spec.Topo = hw.I73770()
	}
	if spec.Warmup == 0 {
		spec.Warmup = 1 * sim.Second
	}
	if spec.Measure == 0 {
		spec.Measure = 4 * sim.Second
	}
	switch {
	case spec.StartJitter == 0:
		spec.StartJitter = 120 * sim.Millisecond
	case spec.StartJitter < 0:
		spec.StartJitter = 0
	}
	var opts []xen.Option
	if spec.GuestPCPUs != nil {
		opts = append(opts, xen.WithGuestPCPUs(spec.GuestPCPUs))
	}
	h := xen.New(spec.Topo, credit.New(), spec.Seed, opts...)
	rng := sim.NewRNG(spec.Seed + 0x9e37)

	var deps []*workload.Deployment
	for _, e := range spec.Apps {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			inst := ""
			if n > 1 {
				inst = fmt.Sprintf("%d", i+1)
			}
			s := e.Spec
			if s.StartJitter == 0 {
				s.StartJitter = spec.StartJitter
			}
			deps = append(deps, workload.Deploy(h, s, inst, rng))
		}
	}

	// VM churn: arrivals deploy (and, with a lifetime, depart) while
	// the run is underway. Everything is scheduled up front so the
	// whole lifecycle is a pure function of the spec and seed.
	gone := map[*workload.Deployment]departInfo{}
	for i, a := range spec.Arrivals {
		a := a
		inst := fmt.Sprintf("a%d", i+1)
		at := a.At
		if at <= 0 {
			at = 1 // time-0 VMs belong in Apps; clamp instead of racing Setup
		}
		h.Engine.At(at, func(now sim.Time) {
			d := workload.Deploy(h, a.Spec, inst, rng)
			deps = append(deps, d)
			if a.Lifetime > 0 {
				h.Engine.At(now+a.Lifetime, func(end sim.Time) {
					d.Stop()
					gone[d] = departInfo{at: end, snap: d.Snapshot(end)}
					h.DestroyDomain(d.Dom, end)
				})
			}
		})
	}

	pol.Setup(h, deps)

	// Adaptation diagnostics: dynamic scenario + a policy that exposes
	// a vTRS (the AQL controller). Static runs take none of this path.
	var tracker *adaptTracker
	if spec.Dynamic() {
		if cp, ok := pol.(ControllerProvider); ok {
			if ctl := cp.AQLController(); ctl != nil && ctl.Monitor != nil {
				tracker = newAdaptTracker(ctl, h, &deps, gone)
				tracker.install()
			}
		}
	}

	h.Run(spec.Warmup)
	type snap struct {
		jobs metrics.JobSnapshot
	}
	snaps := map[*workload.Deployment]snap{}
	for _, d := range deps {
		if _, departed := gone[d]; departed {
			continue
		}
		d.ResetLatencies()
		snaps[d] = snap{jobs: d.Snapshot(h.Engine.Now())}
	}
	if tracker != nil {
		tracker.markMeasureStart()
	}
	h.Run(spec.Warmup + spec.Measure)

	// Aggregate per application name, and record per-VM measures. Each
	// app's probe accumulates raw measurements over its instances in
	// deployment order, then finish() folds them into the typed Set.
	type appState struct {
		m     AppMeasure
		probe appProbe
	}
	states := map[string]*appState{}
	var order []string
	res := &Result{
		Spec:           spec,
		Policy:         pol.Name(),
		CtxSwitches:    h.CtxSwitches,
		Preemptions:    h.Preemptions,
		PoolMigrations: h.PoolMigrations,
		Hyp:            h,
		Deps:           deps,
	}
	res.Metrics.Put(MCtxSwitches, float64(h.CtxSwitches))
	res.Metrics.Put(MPreemptions, float64(h.Preemptions))
	res.Metrics.Put(MPoolMigrations, float64(h.PoolMigrations))
	if r, ok := pol.(RunMetricsReporter); ok {
		r.ReportRunMetrics(&res.Metrics)
	}
	if tracker != nil {
		res.Adapt = tracker.finalize()
		res.Adapt.record(&res.Metrics)
	}
	for _, d := range deps {
		name := d.Spec.Name
		st, ok := states[name]
		if !ok {
			st = &appState{
				m:     AppMeasure{Name: name, Expected: d.Spec.Expected},
				probe: appProbe{isLatency: d.IsLatencyApp()},
			}
			states[name] = st
			order = append(order, name)
		}
		st.m.Instances++
		vm := AppMeasure{
			Name:      d.Dom.Name,
			Expected:  d.Spec.Expected,
			Instances: 1,
		}
		if st.probe.isLatency {
			for _, s := range d.Servers {
				if s.Lat.Count() > 0 {
					st.probe.latSum += s.Lat.Mean() * sim.Time(s.Lat.Count())
					st.probe.latN += s.Lat.Count()
					st.probe.hist.Merge(s.Lat)
				}
			}
			// A VM that served no requests has no latency information:
			// its measurement is absent, and it contributes nothing to
			// the fairness index.
			if lat := d.MeanLatency(); lat > 0 {
				vm.Metrics.Put(MLatencyMean, float64(lat))
				st.probe.perVM = append(st.probe.perVM, float64(lat))
			}
		} else {
			// Throughput windows: [measure start, run end] for VMs that
			// lived through the window; churn VMs count from arrival
			// and/or to departure.
			start, ok := snaps[d]
			if !ok {
				start = snap{jobs: metrics.JobSnapshot{At: d.DeployedAt}}
			}
			end := d.Snapshot(h.Engine.Now())
			if di, departed := gone[d]; departed {
				end = di.snap
			}
			rate := metrics.Rate(start.jobs, end)
			st.probe.rate += rate
			if rate > 0 {
				vm.Metrics.Put(MTimePerJob, 1/rate)
			}
			// A zero rate is a meaningful measurement for fairness — a
			// starved VM is the unfairness the index should expose — so
			// it joins the sample set even though the VM's own
			// time_per_job is a failed (absent) measurement.
			st.probe.perVM = append(st.probe.perVM, rate)
		}
		res.PerVM = append(res.PerVM, vm)
	}
	for _, name := range order {
		st := states[name]
		st.probe.finish(&st.m.Metrics)
		res.Apps = append(res.Apps, st.m)
	}
	return res
}

// Normalize computes the paper's normalized performance per app:
// measured primary metric over baseline, lower is better. Apps whose
// measurement failed on either side are absent from the map.
func Normalize(measured, baseline *Result) map[string]float64 {
	out := make(map[string]float64, len(measured.Apps))
	for _, a := range measured.Apps {
		d, v, ok := a.Metrics.Primary()
		if !ok {
			continue
		}
		bv, ok := baseline.App(a.Name).Metrics.Get(d.Name)
		if !ok {
			continue
		}
		if n, ok := d.Normalized(v, bv); ok {
			out[a.Name] = n
		}
	}
	return out
}

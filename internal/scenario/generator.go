package scenario

import (
	"fmt"
	"math"

	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
)

// GenSpec describes a generated colocation scenario: a machine, a vCPU
// budget, an over-subscription ratio and a type mix. Generate expands
// it into a reproducible Spec — the population is a pure function of
// the GenSpec (including its Seed), so every sweep run of the same axis
// point deploys the identical VM set regardless of worker interleaving,
// while the per-run simulation seed still varies across replications.
type GenSpec struct {
	// Name labels the generated scenario (the sweep axis name).
	Name string
	// Topo is the machine; nil defaults to the i7-3770.
	Topo *hw.Topology
	// VCPUs is the total guest vCPU budget to fill (≥ 1).
	VCPUs int
	// OverSub is the vCPU : guest-pCPU ratio (default 4, the paper's
	// single-socket consolidation ratio). The generator provisions
	// ceil(VCPUs/OverSub) guest pCPUs, capped at the machine size.
	OverSub float64
	// Mix weights the five vCPU types; weights need not sum to 1.
	// Types absent from the map are never drawn.
	Mix map[vcputype.Type]float64
	// Fixed deploys these named applications first (one VM each);
	// their vCPUs count against the budget. Synthetic VMs fill the
	// remainder.
	Fixed []workload.AppSpec
	// Seed drives the generator's draws (types and app knobs). It is
	// independent of the simulation seed the sweep assigns per run.
	Seed uint64
	// Gen bounds the per-type knob draws; the zero value means
	// workload.DefaultGenConfig.
	Gen *workload.GenConfig

	// Phases, when non-empty, defines a behaviour cycle (each entry's
	// Dur and Type; the per-phase knobs are drawn per VM): generated
	// VMs become phased applications with probability PhaseProb.
	Phases []workload.AppPhase
	// PhaseProb is the probability a generated VM is phased. The zero
	// value means "unset" and defaults to 1 when Phases is set; to
	// generate no phased VMs, leave Phases empty instead. (The
	// spec-file layer distinguishes an explicit "phase_prob": 0 and
	// drops the phases block accordingly.)
	PhaseProb float64
	// Churn, when set, adds VM arrival/departure events to the
	// generated scenario. See ChurnSpec.
	Churn *ChurnSpec
}

// ChurnSpec parameterizes generated VM churn: Poisson arrivals at Rate
// per simulated second from Start until Horizon, each VM living an
// exponential MeanLifetime (floored at MinLifetime) before teardown.
// All draws fork from the generator seed, so the timeline is identical
// across sweep workers and replications.
type ChurnSpec struct {
	// Rate is mean VM arrivals per simulated second (> 0).
	Rate float64
	// MeanLifetime is the mean VM lifetime (> 0).
	MeanLifetime sim.Time
	// MinLifetime floors drawn lifetimes (default 200 ms).
	MinLifetime sim.Time
	// Start is the earliest arrival time (default 50 ms).
	Start sim.Time
	// Horizon bounds arrivals: none at or after it (required, > Start).
	Horizon sim.Time
	// MaxVMs caps the number of arrivals (0 = unbounded).
	MaxVMs int
}

// effectiveStart is Start with its default applied (Validate and
// Generate must agree on it).
func (c *ChurnSpec) effectiveStart() sim.Time {
	if c.Start == 0 {
		return 50 * sim.Millisecond
	}
	return c.Start
}

// ParseMix converts a name → weight map (spec-file form) into a typed
// mix, rejecting unknown type names and non-positive weights.
func ParseMix(m map[string]float64) (map[vcputype.Type]float64, error) {
	if len(m) == 0 {
		return nil, fmt.Errorf("scenario: generator mix is missing (want e.g. {\"IOInt\": 0.25, \"LLCF\": 0.75})")
	}
	out := make(map[vcputype.Type]float64, len(m))
	for name, w := range m {
		t, err := vcputype.Parse(name)
		if err != nil {
			return nil, fmt.Errorf("scenario: generator mix: %v", err)
		}
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("scenario: generator mix: weight %v for %s must be positive and finite", w, name)
		}
		out[t] = w
	}
	return out, nil
}

// MixDrawer draws synthetic applications from a weighted vCPU-type mix.
// It is the reusable core of the generator's drawApp (and of the fleet
// generator, which synthesizes per-host VM populations the same way):
// cumulative weights in the taxonomy's fixed order, one Float64 per type
// draw, one Fork per VM — so the draw sequence is a pure function of
// the RNG stream and never of map iteration order.
type MixDrawer struct {
	types []vcputype.Type
	cum   []float64
	total float64
	cfg   workload.GenConfig
	topo  *hw.Topology
}

// NewMixDrawer prepares a drawer over mix (weights need not sum to 1;
// types absent from the map are never drawn). cfg bounds the per-type
// knob draws; topo sizes cache working sets.
func NewMixDrawer(mix map[vcputype.Type]float64, cfg workload.GenConfig, topo *hw.Topology) *MixDrawer {
	m := &MixDrawer{cfg: cfg, topo: topo}
	for _, t := range vcputype.All() {
		if w, ok := mix[t]; ok {
			m.total += w
			m.types = append(m.types, t)
			m.cum = append(m.cum, m.total)
		}
	}
	return m
}

// Empty reports whether the mix has no drawable types.
func (m *MixDrawer) Empty() bool { return len(m.types) == 0 }

// DrawType draws one vCPU type, consuming exactly one Float64.
func (m *MixDrawer) DrawType(rng *sim.RNG) vcputype.Type {
	u := rng.Float64() * m.total
	typ := m.types[len(m.types)-1]
	for j, c := range m.cum {
		if u < c {
			typ = m.types[j]
			break
		}
	}
	return typ
}

// Draw synthesizes one VM's application: a type draw from rng followed
// by knob draws from rng's fork labelled label (the generator's exact
// per-VM stream split).
func (m *MixDrawer) Draw(rng *sim.RNG, label uint64) workload.AppSpec {
	typ := m.DrawType(rng)
	return m.cfg.Synthesize(rng.Fork(label), typ, m.topo)
}

// VCPUsOf reports how many vCPUs one VM of the app consumes (its thread
// count for lock applications, 1 otherwise — mirroring Deploy). The
// generator and the fleet layer budget populations with it.
func VCPUsOf(s workload.AppSpec) int {
	if s.Kind == workload.KindLock {
		if s.Threads > 0 {
			return s.Threads
		}
		return 4
	}
	return 1
}

func vcpusOf(s workload.AppSpec) int { return VCPUsOf(s) }

// Sanity caps on generator sizes: a typo (or a fuzzer) asking for a
// billion vCPUs or arrivals must fail validation, not exhaust memory
// expanding the population.
const (
	maxGenVCPUs      = 1 << 16
	maxChurnArrivals = 1 << 16
)

// Validate reports an error for an unexpandable generator spec.
func (g *GenSpec) Validate() error {
	topo := g.Topo
	if topo == nil {
		topo = hw.I73770()
	}
	if err := topo.Validate(); err != nil {
		return fmt.Errorf("scenario: generator %q: %v", g.Name, err)
	}
	if g.VCPUs < 1 {
		return fmt.Errorf("scenario: generator %q: vCPU budget must be ≥ 1, got %d", g.Name, g.VCPUs)
	}
	if g.VCPUs > maxGenVCPUs {
		return fmt.Errorf("scenario: generator %q: vCPU budget %d exceeds the %d sanity cap", g.Name, g.VCPUs, maxGenVCPUs)
	}
	if g.OverSub < 0 || math.IsNaN(g.OverSub) || math.IsInf(g.OverSub, 0) {
		return fmt.Errorf("scenario: generator %q: over-subscription ratio %v must be positive", g.Name, g.OverSub)
	}
	if len(g.Mix) == 0 && len(g.Fixed) == 0 && len(g.Phases) == 0 {
		return fmt.Errorf("scenario: generator %q: mix is missing and no fixed apps or phases given", g.Name)
	}
	for t, w := range g.Mix {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("scenario: generator %q: weight %v for %s must be positive and finite", g.Name, w, t)
		}
	}
	fixed := 0
	for _, f := range g.Fixed {
		fixed += vcpusOf(f)
	}
	if fixed > g.VCPUs {
		return fmt.Errorf("scenario: generator %q: fixed apps need %d vCPUs but the budget is %d", g.Name, fixed, g.VCPUs)
	}
	if fixed < g.VCPUs && len(g.Mix) == 0 && len(g.Phases) == 0 {
		return fmt.Errorf("scenario: generator %q: %d vCPUs left to fill but the mix is missing", g.Name, g.VCPUs-fixed)
	}
	if len(g.Phases) > 0 {
		if err := workload.ValidatePhaseDefs(g.Phases); err != nil {
			return fmt.Errorf("scenario: generator %q: %v", g.Name, err)
		}
		if p := g.PhaseProb; p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("scenario: generator %q: phase probability %v must be in [0, 1]", g.Name, p)
		}
	}
	if g.Churn != nil {
		c := g.Churn
		switch {
		case c.Rate <= 0 || math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0):
			return fmt.Errorf("scenario: generator %q: churn arrival rate %v must be positive and finite", g.Name, c.Rate)
		case c.MeanLifetime <= 0:
			return fmt.Errorf("scenario: generator %q: churn mean lifetime %v must be positive", g.Name, c.MeanLifetime)
		case c.Horizon <= 0:
			return fmt.Errorf("scenario: generator %q: churn horizon is required (no arrivals at or after it)", g.Name)
		case c.Start < 0 || c.Horizon <= c.effectiveStart():
			// Validate against the same default Start that Generate will
			// apply, or a tiny horizon would pass here and silently
			// produce a churn-free "churn" scenario.
			return fmt.Errorf("scenario: generator %q: churn horizon %v must exceed start %v", g.Name, c.Horizon, c.effectiveStart())
		case c.MinLifetime < 0 || c.MaxVMs < 0:
			return fmt.Errorf("scenario: generator %q: churn min lifetime and max VMs must be non-negative", g.Name)
		case len(g.Mix) == 0 && len(g.Phases) == 0:
			return fmt.Errorf("scenario: generator %q: churn needs a mix or phases to draw VMs from", g.Name)
		}
		if expected := c.Rate * (c.Horizon - c.effectiveStart()).Seconds(); expected > maxChurnArrivals {
			return fmt.Errorf("scenario: generator %q: churn expects ~%.0f arrivals, more than the %d sanity cap", g.Name, expected, maxChurnArrivals)
		}
	}
	return nil
}

// Generate expands the generator spec into a concrete scenario. The
// result's Seed is the generator seed; sweeps override it per run.
func (g *GenSpec) Generate() (Spec, error) {
	if err := g.Validate(); err != nil {
		return Spec{}, err
	}
	topo := g.Topo
	if topo == nil {
		topo = hw.I73770()
	}
	t := *topo // fresh copy per expansion: runs must not share state
	topo = &t

	oversub := g.OverSub
	if oversub == 0 {
		oversub = 4
	}
	pcpus := int(math.Ceil(float64(g.VCPUs) / oversub))
	if pcpus < 1 {
		pcpus = 1
	}
	if max := topo.TotalPCPUs(); pcpus > max {
		pcpus = max
	}
	ids := make([]hw.PCPUID, pcpus)
	for i := range ids {
		ids[i] = hw.PCPUID(i)
	}

	cfg := workload.DefaultGenConfig()
	if g.Gen != nil {
		cfg = *g.Gen
	}

	// Cumulative weights in the taxonomy's fixed order — map iteration
	// order must never leak into the draw sequence.
	md := NewMixDrawer(g.Mix, cfg, topo)

	var apps []Entry
	budget := g.VCPUs
	for _, f := range g.Fixed {
		budget -= vcpusOf(f)
		apps = append(apps, Entry{Spec: f, Count: 1})
	}

	phaseProb := g.PhaseProb
	if len(g.Phases) > 0 && phaseProb == 0 {
		phaseProb = 1
	}
	// drawApp synthesizes one VM: a phased app (per the phase-cycle
	// definition and probability) or a static one of a mix-drawn type.
	// Static GenSpecs (no Phases) consume the exact historical draw
	// sequence, so existing generated scenarios stay byte-identical.
	drawApp := func(rng *sim.RNG, label uint64) workload.AppSpec {
		var typ vcputype.Type
		if !md.Empty() {
			typ = md.DrawType(rng)
		}
		vrng := rng.Fork(label)
		if len(g.Phases) > 0 && (md.Empty() || rng.Float64() < phaseProb) {
			ph := cfg.SynthesizePhases(vrng, g.Phases, topo)
			var cycle sim.Time
			for _, p := range ph {
				cycle += p.Dur
			}
			return workload.AppSpec{
				Name:        "syn-phased",
				Expected:    ph[0].Type,
				Phases:      ph,
				PhaseOffset: vrng.UniformTime(0, cycle),
			}
		}
		return cfg.Synthesize(vrng, typ, topo)
	}

	rng := sim.NewRNG(g.Seed).Fork(0x5CE0)
	for i := 0; budget > 0; i++ {
		s := drawApp(rng, uint64(i))
		if s.Kind == workload.KindLock && s.Threads > budget {
			// Clamp the last gang to the remaining budget.
			s.Threads = budget
		}
		s.Name = fmt.Sprintf("%s-%02d", s.Name, i)
		budget -= vcpusOf(s)
		apps = append(apps, Entry{Spec: s, Count: 1})
	}

	// VM churn: a Poisson arrival process with exponential lifetimes,
	// drawn from its own fork so adding churn never perturbs the
	// standing population's draws.
	var arrivals []Arrival
	if g.Churn != nil {
		c := *g.Churn
		c.Start = c.effectiveStart()
		if c.MinLifetime == 0 {
			c.MinLifetime = 200 * sim.Millisecond
		}
		crng := sim.NewRNG(g.Seed).Fork(0xC4A2)
		meanInter := sim.Time(float64(sim.Second) / c.Rate)
		at := c.Start
		for k := 0; c.MaxVMs == 0 || k < c.MaxVMs; k++ {
			at += crng.ExpTime(meanInter)
			if at >= c.Horizon {
				break
			}
			s := drawApp(crng, uint64(k)+0x11)
			s.Name = fmt.Sprintf("chn%02d-%s", k, s.Name)
			life := crng.ExpTime(c.MeanLifetime)
			if life < c.MinLifetime {
				life = c.MinLifetime
			}
			arrivals = append(arrivals, Arrival{At: at, Spec: s, Lifetime: life})
		}
	}

	name := g.Name
	if name == "" {
		name = fmt.Sprintf("gen-%dv", g.VCPUs)
	}
	return Spec{
		Name:       name,
		Topo:       topo,
		GuestPCPUs: ids,
		Apps:       apps,
		Arrivals:   arrivals,
		Seed:       g.Seed,
	}, nil
}

// MustGenerate is Generate for specs validated at parse time.
func (g *GenSpec) MustGenerate() Spec {
	s, err := g.Generate()
	if err != nil {
		panic(err.Error())
	}
	return s
}

package scenario

import (
	"reflect"
	"strings"
	"testing"

	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

// noopPolicy is the minimal runnable policy (unmodified credit).
type noopPolicy struct{}

func (noopPolicy) Name() string                                         { return "noop" }
func (noopPolicy) Setup(h *xen.Hypervisor, deps []*workload.Deployment) {}

func genSpec() GenSpec {
	return GenSpec{
		Name:  "gen-test",
		VCPUs: 16,
		Mix: map[vcputype.Type]float64{
			vcputype.IOInt:   0.25,
			vcputype.ConSpin: 0.25,
			vcputype.LLCF:    0.25,
			vcputype.LLCO:    0.25,
		},
		Seed: 0xA91,
	}
}

// TestGenerateDeterministic: the expansion is a pure function of the
// GenSpec — expanding twice (as every sweep run does) yields deeply
// equal populations, and a different seed yields a different one.
func TestGenerateDeterministic(t *testing.T) {
	g := genSpec()
	a, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same GenSpec expanded differently:\n%+v\n%+v", a.Apps, b.Apps)
	}
	g2 := genSpec()
	g2.Seed = 0xA92
	c, err := g2.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Apps, c.Apps) {
		t.Error("different generator seeds drew identical populations")
	}
	// Expansions must not share the topology value across runs.
	if a.Topo == b.Topo {
		t.Error("two expansions share one *hw.Topology")
	}
}

// TestGenerateBudget: the population consumes exactly the vCPU budget
// and provisions ceil(VCPUs/OverSub) guest pCPUs.
func TestGenerateBudget(t *testing.T) {
	g := genSpec()
	g.OverSub = 4
	s, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	vcpus := 0
	for _, e := range s.Apps {
		n := 1
		if e.Spec.Kind == workload.KindLock {
			n = e.Spec.Threads
		}
		vcpus += n * e.Count
	}
	if vcpus != 16 {
		t.Errorf("population spans %d vCPUs, want exactly 16", vcpus)
	}
	if len(s.GuestPCPUs) != 4 {
		t.Errorf("%d guest pCPUs, want 4 (16 vCPUs / oversub 4)", len(s.GuestPCPUs))
	}
	// Over-subscription capped by the machine: 64 vCPUs at ratio 1 on
	// the 8-core i7 must clamp to 8 pCPUs.
	g.VCPUs, g.OverSub = 64, 1
	s, err = g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.GuestPCPUs) != 8 {
		t.Errorf("%d guest pCPUs, want clamp to machine size 8", len(s.GuestPCPUs))
	}
}

// TestGenerateFixedApps: named apps deploy first and count against the
// budget; synthetic VMs fill the remainder.
func TestGenerateFixedApps(t *testing.T) {
	g := genSpec()
	g.VCPUs = 8
	g.Fixed = []workload.AppSpec{workload.ByName("bzip2"), workload.ByName("facesim")}
	s, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Apps) < 3 {
		t.Fatalf("only %d apps; fixed apps not supplemented", len(s.Apps))
	}
	if s.Apps[0].Spec.Name != "bzip2" || s.Apps[1].Spec.Name != "facesim" {
		t.Errorf("fixed apps not deployed first: %s, %s", s.Apps[0].Spec.Name, s.Apps[1].Spec.Name)
	}
	vcpus := 0
	for _, e := range s.Apps {
		n := 1
		if e.Spec.Kind == workload.KindLock {
			n = e.Spec.Threads
		}
		vcpus += n
	}
	if vcpus != 8 {
		t.Errorf("population spans %d vCPUs, want 8 (bzip2=1 + facesim=4 + 3 synthetic)", vcpus)
	}
}

// TestGenerateMixOnly: only mixed-in types are drawn, and gang sizes
// clamp to the remaining budget.
func TestGenerateMixShape(t *testing.T) {
	g := genSpec()
	g.Mix = map[vcputype.Type]float64{vcputype.ConSpin: 1}
	g.VCPUs = 9
	s, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, e := range s.Apps {
		if e.Spec.Expected != vcputype.ConSpin {
			t.Errorf("drew %v from a ConSpin-only mix", e.Spec.Expected)
		}
		total += e.Spec.Threads
	}
	if total != 9 {
		t.Errorf("gangs span %d vCPUs, want exactly 9 (last gang clamped)", total)
	}
	names := map[string]bool{}
	for _, e := range s.Apps {
		if names[e.Spec.Name] {
			t.Errorf("duplicate generated VM name %q", e.Spec.Name)
		}
		names[e.Spec.Name] = true
	}
}

// TestGenerateRuns: a small generated scenario actually runs end to end.
func TestGenerateRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	g := genSpec()
	g.VCPUs = 8
	s, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	s.Warmup = 200 * sim.Millisecond
	s.Measure = 400 * sim.Millisecond
	res := Run(s, noopPolicy{})
	if len(res.Apps) == 0 {
		t.Fatal("generated scenario produced no measurements")
	}
	for _, a := range res.Apps {
		if a.Instances < 1 {
			t.Errorf("app %s: %d instances", a.Name, a.Instances)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []struct {
		name string
		mut  func(*GenSpec)
	}{
		{"zero vcpus", func(g *GenSpec) { g.VCPUs = 0 }},
		{"negative oversub", func(g *GenSpec) { g.OverSub = -1 }},
		{"missing mix", func(g *GenSpec) { g.Mix = nil }},
		{"bad weight", func(g *GenSpec) { g.Mix[vcputype.LLCF] = -2 }},
		{"fixed overflow", func(g *GenSpec) {
			g.VCPUs = 2
			g.Fixed = []workload.AppSpec{workload.ByName("facesim")} // 4 threads
		}},
		{"bad topology", func(g *GenSpec) { g.Topo = &hw.Topology{} }},
	}
	for _, tc := range bad {
		g := genSpec()
		tc.mut(&g)
		if _, err := g.Generate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Fixed-only specs need no mix.
	g := genSpec()
	g.Mix = nil
	g.VCPUs = 4
	g.Fixed = []workload.AppSpec{workload.ByName("facesim")}
	if _, err := g.Generate(); err != nil {
		t.Errorf("fixed-only generator rejected: %v", err)
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix(map[string]float64{"IOInt": 0.5, "LLCO": 0.5})
	if err != nil || len(m) != 2 || m[vcputype.IOInt] != 0.5 {
		t.Fatalf("ParseMix = %v, %v", m, err)
	}
	for _, bad := range []map[string]float64{
		nil,
		{},
		{"IOBound": 1},
		{"IOInt": 0},
		{"IOInt": -1},
	} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%v) accepted", bad)
		}
	}
	if _, err := ParseMix(map[string]float64{"IOBound": 1}); err == nil || !strings.Contains(err.Error(), "IOBound") {
		t.Errorf("unknown type error unhelpful: %v", err)
	}
}

// Package guest models the guest operating system inside a VM: threads,
// per-vCPU run queues, interrupt handlers, spin-locks and blocking
// semaphores.
//
// The paper's framing (Section 3.1) is that "a vCPU type at a given
// instant is the type of the thread using the vCPU at that instant", and
// its three problem mechanisms all live at the guest/hypervisor boundary:
//
//   - interrupt handling: an IO event delivered to a descheduled vCPU
//     waits for the hypervisor to run that vCPU again (Fig. 1);
//   - lock-holder preemption: a guest thread holding a spin-lock keeps
//     it while its vCPU is descheduled, so sibling vCPUs burn their
//     quanta spinning (Section 3.2);
//   - guest-level scheduling is invisible to the hypervisor.
//
// The guest therefore exposes exactly what the hypervisor layer needs:
// "what would this vCPU do right now" (NextStep) plus notifications for
// IO delivery and burst completion. Threads are bound to vCPUs; IRQ
// handler threads preempt normal threads within a vCPU.
package guest

import (
	"aqlsched/internal/cache"
	"aqlsched/internal/sim"
)

// GuestSlice is the guest kernel's internal round-robin slice used when
// several normal threads share one vCPU.
const GuestSlice = 3 * sim.Millisecond

// maxInterpret bounds action-interpretation loops so a misbehaving
// program (e.g. releasing an unheld lock forever) fails fast.
const maxInterpret = 256

// ThreadState enumerates guest thread states.
type ThreadState int

const (
	// Ready: runnable, waiting in its vCPU's queue.
	Ready ThreadState = iota
	// Spinning: busy-waiting for a spin-lock (runnable: burns CPU).
	Spinning
	// BlockedIO: waiting for an event-channel notification.
	BlockedIO
	// BlockedSem: waiting on a semaphore.
	BlockedSem
	// Sleeping: waiting for a timer.
	Sleeping
	// Dead: exited.
	Dead
)

func (s ThreadState) String() string {
	switch s {
	case Ready:
		return "ready"
	case Spinning:
		return "spinning"
	case BlockedIO:
		return "blocked-io"
	case BlockedSem:
		return "blocked-sem"
	case Sleeping:
		return "sleeping"
	case Dead:
		return "dead"
	}
	return "?"
}

// ActionKind enumerates what a program can ask its thread to do next.
type ActionKind int

const (
	// ActCompute: execute Work ideal time with memory profile Prof.
	ActCompute ActionKind = iota
	// ActAcquire: take the spin-lock (spin while held elsewhere).
	ActAcquire
	// ActRelease: release the spin-lock.
	ActRelease
	// ActSemP: semaphore down (block while unavailable).
	ActSemP
	// ActSemV: semaphore up.
	ActSemV
	// ActWaitIO: block until an event arrives on Port.
	ActWaitIO
	// ActSleep: block for Dur.
	ActSleep
	// ActExit: terminate the thread.
	ActExit
)

// Action is one instruction from a Program to the guest kernel.
type Action struct {
	Kind ActionKind
	Work sim.Time
	Prof cache.Profile
	Lock *SpinLock
	Sem  *Semaphore
	Port int
	Dur  sim.Time
}

// Program drives a thread. Next is called whenever the previous action
// has fully completed; it must return the next action.
type Program interface {
	Next(t *Thread, now sim.Time) Action
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(t *Thread, now sim.Time) Action

// Next calls f.
func (f ProgramFunc) Next(t *Thread, now sim.Time) Action { return f(t, now) }

// Thread is one guest thread, bound to one vCPU.
type Thread struct {
	Name string
	OS   *OS
	CPU  int  // index of the vCPU this thread is bound to
	IRQ  bool // IRQ-handler class: preempts normal threads on its vCPU

	prog      Program
	state     ThreadState
	action    Action
	remaining sim.Time // work left in the current compute action

	// sliceUsed accumulates ideal work since the thread last took the
	// CPU; the guest rotates it out only when a full GuestSlice is
	// consumed, so a thread keeps the CPU across action boundaries
	// (critically: it finishes its lock critical sections instead of
	// parking behind a sibling while holding the lock).
	sliceUsed  sim.Time
	preferHead bool

	// Jobs counts completed work units; programs increment it so
	// throughput metrics can be derived without knowing the program.
	Jobs uint64

	// FP is the thread's cache footprint, owned by the hypervisor's
	// cache model (threads are the true cache occupants; a vCPU's cache
	// behaviour at an instant is its current thread's).
	FP cache.Footprint

	// OnCPU is maintained by the hypervisor: true while the thread is
	// the subject of an in-flight burst on a pCPU. Spin-locks use it to
	// prefer granting to a waiter that can proceed immediately
	// (preemptable-ticket semantics, avoiding convoys on descheduled
	// waiters — [39] in the paper).
	OnCPU bool

	queued bool // present in its CPU's ready queue

	// wake is the thread's pre-bound sleep wake-up timer, created on the
	// first ActSleep and re-armed (allocation-free) on every later one.
	wake *sim.Timer
}

// State reports the thread's current state.
func (t *Thread) State() ThreadState { return t.state }

// Remaining reports work left in the current compute action (tests).
func (t *Thread) Remaining() sim.Time { return t.remaining }

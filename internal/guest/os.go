package guest

import (
	"fmt"

	"aqlsched/internal/cache"
	"aqlsched/internal/sim"
)

// Waker is what the guest needs from the hypervisor: the ability to wake
// a blocked vCPU and to kick a running one so it re-evaluates its
// current burst (e.g. a spinner whose lock was just granted, or an IRQ
// arriving while a background thread runs).
type Waker interface {
	// WakeVCPU makes the domain's cpu-th vCPU runnable if it was idle.
	WakeVCPU(cpu int, now sim.Time)
	// KickVCPU asks the hypervisor to end the cpu-th vCPU's current
	// burst at `now` and call NextStep again (no-op if not running).
	KickVCPU(cpu int, now sim.Time)
	// CountLockOp records one spin-lock acquisition by the cpu-th vCPU
	// (the paper's hypercall-based ConSpin monitor).
	CountLockOp(cpu int)
}

// StepKind enumerates what a vCPU should do when dispatched.
type StepKind int

const (
	// StepRun: execute Thread's compute work (up to Work, guest slice
	// bounded) with profile Prof.
	StepRun StepKind = iota
	// StepSpin: busy-wait; ends when the hypervisor slice ends or the
	// guest kicks the vCPU (lock granted).
	StepSpin
	// StepIdle: nothing runnable; the vCPU should block.
	StepIdle
)

// Step tells the hypervisor what a vCPU executes next.
type Step struct {
	Kind   StepKind
	Work   sim.Time
	Prof   cache.Profile
	Thread *Thread
}

// cpuState is the guest-side state of one vCPU.
type cpuState struct {
	irqReady []*Thread // IRQ-class ready queue (FIFO)
	ready    []*Thread // normal ready queue (round-robin)
}

// OS is the guest kernel of one domain.
type OS struct {
	Name   string
	engine *sim.Engine
	waker  Waker
	cpus   []cpuState
	// ioWaiters maps a port to the thread blocked on it (at most one
	// waiter per port in this model).
	ioWaiters map[int]*Thread
	// pending counts events delivered to a port with no waiter; the
	// next ActWaitIO consumes them without blocking.
	pending map[int]int
	// portOwner remembers which vCPU index a port's handler is bound
	// to, for event attribution before/between waits.
	portOwner map[int]int

	threads []*Thread
	dead    bool
}

// NewOS builds a guest kernel with ncpu vCPUs.
func NewOS(name string, ncpu int, engine *sim.Engine, waker Waker) *OS {
	if ncpu <= 0 {
		panic("guest: OS needs at least one vCPU")
	}
	return &OS{
		Name:      name,
		engine:    engine,
		waker:     waker,
		cpus:      make([]cpuState, ncpu),
		ioWaiters: make(map[int]*Thread),
		pending:   make(map[int]int),
		portOwner: make(map[int]int),
	}
}

// NumCPUs reports the number of vCPUs the guest believes it has.
func (os *OS) NumCPUs() int { return len(os.cpus) }

// Threads lists all threads ever spawned (including dead ones).
func (os *OS) Threads() []*Thread { return os.threads }

// Spawn creates a thread bound to the given vCPU and starts it at time
// now. IRQ-class threads preempt normal threads on their vCPU. On a
// shut-down OS (a jittered spawn outliving its VM's teardown) the
// thread is created dead and never scheduled.
func (os *OS) Spawn(name string, cpu int, irq bool, prog Program, now sim.Time) *Thread {
	if cpu < 0 || cpu >= len(os.cpus) {
		panic(fmt.Sprintf("guest: Spawn on vCPU %d of %d", cpu, len(os.cpus)))
	}
	t := &Thread{Name: name, OS: os, CPU: cpu, IRQ: irq, prog: prog, state: Ready}
	os.threads = append(os.threads, t)
	if os.dead {
		t.state = Dead
		return t
	}
	os.advance(t, now)
	return t
}

// Shutdown kills the guest (VM teardown): every thread dies, queues
// and waiters are cleared, pending sleep timers are disarmed, and any
// later event delivery or spawn becomes a no-op.
func (os *OS) Shutdown() {
	if os.dead {
		return
	}
	os.dead = true
	for _, t := range os.threads {
		if t.wake != nil {
			t.wake.Stop()
		}
		t.state = Dead
		t.queued = false
	}
	for i := range os.cpus {
		os.cpus[i] = cpuState{}
	}
	clear(os.ioWaiters)
	clear(os.pending)
}

// enqueue puts a ready thread on its vCPU's queue and pokes the
// hypervisor. A thread continuing within its guest slice (preferHead)
// keeps the head of the queue.
func (os *OS) enqueue(t *Thread, now sim.Time) {
	if os.dead || t.queued || t.state != Ready {
		return
	}
	c := &os.cpus[t.CPU]
	switch {
	case t.IRQ:
		c.irqReady = append(c.irqReady, t)
	case t.preferHead:
		// Head insert in place: this runs after every completed action
		// that kept the guest slice, so it must not allocate.
		c.ready = append(c.ready, nil)
		copy(c.ready[1:], c.ready)
		c.ready[0] = t
	default:
		c.ready = append(c.ready, t)
	}
	t.preferHead = false
	t.queued = true
	os.waker.WakeVCPU(t.CPU, now)
	if t.IRQ {
		// Handler work should preempt a running background burst.
		os.waker.KickVCPU(t.CPU, now)
	}
}

// dequeue removes a thread from its queue (when it blocks or runs).
func (os *OS) dequeue(t *Thread) {
	if !t.queued {
		return
	}
	c := &os.cpus[t.CPU]
	q := &c.ready
	if t.IRQ {
		q = &c.irqReady
	}
	for i, x := range *q {
		if x == t {
			*q = append((*q)[:i], (*q)[i+1:]...)
			break
		}
	}
	t.queued = false
}

// advance interprets actions for t until it reaches a state that takes
// time (compute, spin, block) or exits.
func (os *OS) advance(t *Thread, now sim.Time) {
	for iter := 0; ; iter++ {
		if iter > maxInterpret {
			panic(fmt.Sprintf("guest: thread %s interprets forever (program bug)", t.Name))
		}
		a := t.prog.Next(t, now)
		t.action = a
		switch a.Kind {
		case ActCompute:
			if a.Work <= 0 {
				continue // zero work: fetch next action
			}
			t.remaining = a.Work
			t.state = Ready
			os.enqueue(t, now)
			return
		case ActAcquire:
			if a.Lock == nil {
				panic("guest: ActAcquire without lock")
			}
			if a.Lock.tryAcquire(t, now) {
				continue // got it immediately
			}
			// Contended: spin. The thread stays runnable and burns CPU.
			t.state = Spinning
			os.enqueue2Spin(t, now)
			return
		case ActRelease:
			if a.Lock == nil {
				panic("guest: ActRelease without lock")
			}
			a.Lock.release(t, now)
			continue
		case ActSemP:
			if a.Sem == nil {
				panic("guest: ActSemP without semaphore")
			}
			if a.Sem.tryP(t) {
				continue
			}
			t.state = BlockedSem
			t.sliceUsed = 0
			t.preferHead = false
			os.dequeue(t)
			return
		case ActSemV:
			if a.Sem == nil {
				panic("guest: ActSemV without semaphore")
			}
			a.Sem.v(now)
			continue
		case ActWaitIO:
			os.portOwner[a.Port] = t.CPU
			if os.pending[a.Port] > 0 {
				os.pending[a.Port]--
				continue // event already queued: consume and go on
			}
			if prev, ok := os.ioWaiters[a.Port]; ok && prev != t {
				panic(fmt.Sprintf("guest: two threads wait on port %d", a.Port))
			}
			os.ioWaiters[a.Port] = t
			t.state = BlockedIO
			t.sliceUsed = 0
			t.preferHead = false
			os.dequeue(t)
			return
		case ActSleep:
			t.state = Sleeping
			t.sliceUsed = 0
			t.preferHead = false
			os.dequeue(t)
			if a.Dur < 0 {
				panic(fmt.Sprintf("guest: negative sleep %v", a.Dur))
			}
			if t.wake == nil {
				// Bind the wake-up callback once per thread; later sleeps
				// re-arm it without allocating. A thread has at most one
				// pending sleep, so rearm semantics are safe.
				tt := t
				t.wake = os.engine.NewTimer(func(wake sim.Time) {
					if tt.state != Sleeping {
						return
					}
					// The sleep action is complete: continue the program.
					tt.state = Ready
					os.advance(tt, wake)
				})
			}
			t.wake.Arm(now + a.Dur)
			return
		case ActExit:
			t.state = Dead
			os.dequeue(t)
			return
		default:
			panic(fmt.Sprintf("guest: unknown action kind %d", a.Kind))
		}
	}
}

// enqueue2Spin queues a spinning thread: spinners live on the normal
// ready queue (they occupy the CPU like any runnable thread).
func (os *OS) enqueue2Spin(t *Thread, now sim.Time) {
	if t.queued {
		return
	}
	c := &os.cpus[t.CPU]
	c.ready = append(c.ready, t)
	t.queued = true
	os.waker.WakeVCPU(t.CPU, now)
}

// HasRunnable reports whether the vCPU has any thread to run.
func (os *OS) HasRunnable(cpu int) bool {
	c := &os.cpus[cpu]
	return len(c.irqReady) > 0 || len(c.ready) > 0
}

// NextStep reports what the given vCPU would execute right now. The
// hypervisor calls this at dispatch and after every burst.
func (os *OS) NextStep(cpu int, now sim.Time) Step {
	c := &os.cpus[cpu]
	if len(c.irqReady) > 0 {
		t := c.irqReady[0]
		return Step{Kind: StepRun, Work: t.remaining, Prof: t.action.Prof, Thread: t}
	}
	if len(c.ready) > 0 {
		t := c.ready[0]
		if t.state == Spinning {
			// Dispatch-time re-poll: the lock may have been freed while
			// this vCPU was descheduled.
			if t.action.Lock != nil && t.action.Lock.pollAcquire(t, now) {
				os.dequeue(t)
				t.state = Ready
				t.preferHead = true // it holds the lock: keep the CPU
				os.advance(t, now)
				return os.NextStep(cpu, now)
			}
			return Step{Kind: StepSpin, Thread: t}
		}
		work := t.remaining
		if len(c.ready) > 1 {
			if room := GuestSlice - t.sliceUsed; work > room {
				work = room // guest-internal round robin
				if work <= 0 {
					// Slice exhausted right at the boundary: rotate now,
					// in place (no fresh backing array).
					copy(c.ready, c.ready[1:])
					c.ready[len(c.ready)-1] = t
					t.sliceUsed = 0
					return os.NextStep(cpu, now)
				}
			}
		}
		return Step{Kind: StepRun, Work: work, Prof: t.action.Prof, Thread: t}
	}
	return Step{Kind: StepIdle}
}

// BurstDone informs the guest that `ideal` work of t's current compute
// action completed. The guest charges the thread's slice, rotating it
// out only when a full GuestSlice is consumed.
func (os *OS) BurstDone(t *Thread, ideal sim.Time, now sim.Time) {
	if t.state == Dead {
		return
	}
	if t.state == Spinning {
		// Spin bursts end either on slice expiry (still spinning) or
		// because the lock was granted (state flipped by grant()).
		return
	}
	t.remaining -= ideal
	t.sliceUsed += ideal
	if t.remaining > 0 {
		// Action unfinished: rotate only when the guest slice is used
		// up and another thread is waiting.
		c := &os.cpus[t.CPU]
		if !t.IRQ && t.sliceUsed >= GuestSlice && len(c.ready) > 1 && c.ready[0] == t {
			copy(c.ready, c.ready[1:])
			c.ready[len(c.ready)-1] = t
			t.sliceUsed = 0
		}
		return
	}
	// Action complete: keep the CPU while the slice lasts, so that e.g.
	// a just-acquired lock's critical section runs immediately.
	os.dequeue(t)
	t.preferHead = t.sliceUsed < GuestSlice
	if !t.preferHead {
		t.sliceUsed = 0
	}
	os.advance(t, now)
}

// DeliverIO delivers one event-channel notification for port. It returns
// the index of the vCPU the event is bound for (the port owner's vCPU,
// or 0 when the port was never waited on). When no thread is currently
// waiting, the event is queued and consumed by the next ActWaitIO.
func (os *OS) DeliverIO(port int, now sim.Time) int {
	if os.dead {
		return 0
	}
	if t, ok := os.ioWaiters[port]; ok {
		delete(os.ioWaiters, port)
		// The wait action is complete: continue the program (this
		// enqueues the thread with its next action and wakes/kicks the
		// vCPU as needed).
		t.state = Ready
		os.advance(t, now)
		return t.CPU
	}
	os.pending[port]++
	return os.portOwner[port]
}

// countLockOp forwards a lock acquisition to the hypervisor monitor.
func (os *OS) countLockOp(t *Thread) { os.waker.CountLockOp(t.CPU) }

// kickCPU asks the hypervisor to re-evaluate a vCPU's current burst.
func (os *OS) kickCPU(cpu int, now sim.Time) { os.waker.KickVCPU(cpu, now) }

// grant is called by a SpinLock when ownership passes to t.
func (os *OS) grant(t *Thread, now sim.Time) {
	if t.state != Spinning {
		panic(fmt.Sprintf("guest: lock granted to non-spinning thread %s (%v)", t.Name, t.state))
	}
	// The acquire action is now complete; continue the program.
	os.dequeue(t)
	t.state = Ready
	os.advance(t, now)
	// If the thread's vCPU is currently spinning on a pCPU, have the
	// hypervisor re-evaluate immediately rather than burn the slice.
	os.waker.KickVCPU(t.CPU, now)
}

package guest

import (
	"fmt"

	"aqlsched/internal/sim"
)

// SpinLock is a guest ticket spin-lock. Waiters busy-wait (their vCPU
// burns its quantum spinning, emitting PAUSE loops that the hypervisor's
// ConSpin monitor counts) and are granted the lock in FIFO order.
//
// The lock records hold durations (acquire-to-release wall time), the
// statistic plotted in the rightmost graph of Fig. 2: when a holder's
// vCPU is descheduled mid-critical-section, or a waiter is granted the
// lock while its vCPU is descheduled, the measured duration includes the
// hypervisor-induced delay — which grows with the quantum length.
type SpinLock struct {
	Name string

	owner      *Thread
	waiters    []*Thread // FIFO ticket order
	scratch    []*Thread // reusable snapshot buffer for release kicks
	acquiredAt sim.Time

	holds     uint64
	totalHold sim.Time
	maxHold   sim.Time
}

// NewSpinLock returns an unlocked spin-lock.
func NewSpinLock(name string) *SpinLock { return &SpinLock{Name: name} }

// Holder reports the current owner (nil when free).
func (l *SpinLock) Holder() *Thread { return l.owner }

// Waiters reports how many threads are spinning on the lock.
func (l *SpinLock) Waiters() int { return len(l.waiters) }

// tryAcquire attempts a fast-path acquire for t. It reports success;
// on failure t is appended to the ticket queue.
func (l *SpinLock) tryAcquire(t *Thread, now sim.Time) bool {
	if l.owner == nil && len(l.waiters) == 0 {
		l.owner = t
		l.acquiredAt = now
		t.OS.countLockOp(t)
		return true
	}
	l.waiters = append(l.waiters, t)
	return false
}

// release transfers the lock from t to the next ticket holder, if any.
func (l *SpinLock) release(t *Thread, now sim.Time) {
	if l.owner != t {
		panic(fmt.Sprintf("guest: %s releases lock %q owned by %v", t.Name, l.Name, ownerName(l.owner)))
	}
	d := now - l.acquiredAt
	l.holds++
	l.totalHold += d
	if d > l.maxHold {
		l.maxHold = d
	}
	if len(l.waiters) == 0 {
		l.owner = nil
		return
	}
	// Preemptable-ticket handoff ([39]): grant to the first waiter whose
	// vCPU is currently executing — it proceeds immediately. When every
	// waiter is descheduled the lock is left FREE and the queued waiters
	// re-poll as their vCPUs get dispatched (pollAcquire). Reserving the
	// lock for a descheduled waiter instead would convoy permanently:
	// each stale handoff parks the lock for a multiple of the quantum.
	for i, w := range l.waiters {
		if !w.OnCPU {
			continue
		}
		l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
		l.owner = w
		l.acquiredAt = now
		w.OS.countLockOp(w)
		w.OS.grant(w, now)
		return
	}
	l.owner = nil
	// The lock is free with only descheduled waiters registered. A real
	// spinner polls the lock word continuously, so any waiter whose vCPU
	// is mid-spin-burst must re-evaluate now rather than burn the rest
	// of its hypervisor slice on a free lock: kick their vCPUs (no-op
	// for vCPUs that are not running). The first kicked spinner at its
	// guest queue head re-polls and takes the lock.
	// Kicks can re-enter the lock (a kicked vCPU's next dispatch may
	// poll-acquire, append new waiters, or even release again), so
	// iterate over a snapshot — taken into a reusable buffer, detached
	// during the loop so a re-entrant release cannot clobber it.
	snapshot := append(l.scratch[:0], l.waiters...)
	l.scratch = nil
	for _, w := range snapshot {
		if l.owner != nil {
			break
		}
		w.OS.kickCPU(w.CPU, now)
	}
	l.scratch = snapshot[:0]
}

// pollAcquire is the dispatch-time re-poll of a spinning thread: if the
// lock was left free while t's vCPU was descheduled, t takes it now.
// Reports whether t became the owner.
func (l *SpinLock) pollAcquire(t *Thread, now sim.Time) bool {
	if l.owner != nil {
		return false
	}
	for i, w := range l.waiters {
		if w == t {
			l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
			l.owner = t
			l.acquiredAt = now
			t.OS.countLockOp(t)
			return true
		}
	}
	return false
}

// HoldStats reports (number of holds, mean hold duration, max hold
// duration). Mean is zero when no holds completed.
func (l *SpinLock) HoldStats() (holds uint64, mean, max sim.Time) {
	if l.holds == 0 {
		return 0, 0, 0
	}
	return l.holds, l.totalHold / sim.Time(l.holds), l.maxHold
}

func ownerName(t *Thread) string {
	if t == nil {
		return "nobody"
	}
	return t.Name
}

// Semaphore is a counting semaphore with blocking waiters — the paper's
// contrast to spin-locks: a blocked thread releases its vCPU instead of
// burning the quantum.
type Semaphore struct {
	Name    string
	count   int
	waiters []*Thread
}

// NewSemaphore returns a semaphore with the given initial count.
func NewSemaphore(name string, initial int) *Semaphore {
	if initial < 0 {
		panic("guest: negative semaphore count")
	}
	return &Semaphore{Name: name, count: initial}
}

// Count reports the available units (tests).
func (s *Semaphore) Count() int { return s.count }

// tryP consumes a unit if available.
func (s *Semaphore) tryP(t *Thread) bool {
	if s.count > 0 {
		s.count--
		return true
	}
	s.waiters = append(s.waiters, t)
	return false
}

// v releases one unit, handing it directly to the first waiter if any.
func (s *Semaphore) v(now sim.Time) {
	if len(s.waiters) > 0 {
		next := s.waiters[0]
		s.waiters = s.waiters[1:]
		next.state = Ready
		next.OS.advance(next, now)
		return
	}
	s.count++
}

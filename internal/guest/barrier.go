package guest

import "fmt"

// Barrier is an N-thread phase barrier built on a counting semaphore,
// the blocking join structure of fork/join applications (kernbench's
// make jobs, PARSEC's frame barriers). Under consolidation its round
// time is governed by the *straggler*: the last thread to get pCPU time
// — a delay that grows with the quantum length, which is exactly why
// concurrent applications prefer short quanta even beyond the
// lock-holder-preemption effect.
//
// Usage from a Program state machine:
//
//	if last, _ := b.Arrive(); last {
//	    emit (N-1) ActSemV actions on b.Sem()
//	} else {
//	    emit one ActSemP action on b.Sem()
//	}
type Barrier struct {
	n       int
	arrived int
	sem     *Semaphore
	rounds  uint64
}

// NewBarrier builds a barrier for n threads.
func NewBarrier(name string, n int) *Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("guest: barrier of %d threads", n))
	}
	return &Barrier{n: n, sem: NewSemaphore(name+".sem", 0)}
}

// Sem exposes the underlying semaphore for P/V actions.
func (b *Barrier) Sem() *Semaphore { return b.sem }

// Arrive registers one arrival. It returns last=true for the arrival
// that completes the round (that thread must V the semaphore n-1
// times); every other arriver must P once. Releases counts completed
// rounds.
func (b *Barrier) Arrive() (last bool, waiters int) {
	b.arrived++
	if b.arrived >= b.n {
		b.arrived = 0
		b.rounds++
		return true, b.n - 1
	}
	return false, b.n - 1
}

// Rounds reports how many rounds completed.
func (b *Barrier) Rounds() uint64 { return b.rounds }

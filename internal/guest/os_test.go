package guest

import (
	"testing"

	"aqlsched/internal/cache"
	"aqlsched/internal/sim"
)

// mockWaker records wake/kick calls.
type mockWaker struct {
	wakes   []int
	kicks   []int
	lockOps int
}

func (w *mockWaker) WakeVCPU(cpu int, now sim.Time) { w.wakes = append(w.wakes, cpu) }
func (w *mockWaker) KickVCPU(cpu int, now sim.Time) { w.kicks = append(w.kicks, cpu) }
func (w *mockWaker) CountLockOp(cpu int)            { w.lockOps++ }

// seqProgram plays a fixed list of actions, then exits.
type seqProgram struct {
	actions []Action
	pos     int
}

func (p *seqProgram) Next(t *Thread, now sim.Time) Action {
	if p.pos >= len(p.actions) {
		return Action{Kind: ActExit}
	}
	a := p.actions[p.pos]
	p.pos++
	return a
}

func computeAction(d sim.Time) Action {
	return Action{Kind: ActCompute, Work: d, Prof: cache.Profile{WSS: 16 * 1024}}
}

func TestSpawnComputeThreadBecomesReady(t *testing.T) {
	e := sim.NewEngine()
	w := &mockWaker{}
	os := NewOS("vm", 2, e, w)
	th := os.Spawn("worker", 1, false, &seqProgram{actions: []Action{computeAction(100)}}, 0)
	if th.State() != Ready {
		t.Fatalf("state %v, want ready", th.State())
	}
	if !os.HasRunnable(1) {
		t.Error("vCPU 1 has no runnable work")
	}
	if os.HasRunnable(0) {
		t.Error("vCPU 0 should be idle")
	}
	if len(w.wakes) == 0 || w.wakes[0] != 1 {
		t.Errorf("wakes = %v, want [1]", w.wakes)
	}
	step := os.NextStep(1, 0)
	if step.Kind != StepRun || step.Thread != th || step.Work != 100 {
		t.Errorf("step = %+v", step)
	}
}

func TestBurstDoneAdvancesThroughActions(t *testing.T) {
	e := sim.NewEngine()
	os := NewOS("vm", 1, e, &mockWaker{})
	th := os.Spawn("w", 0, false, &seqProgram{actions: []Action{computeAction(100), computeAction(50)}}, 0)

	os.BurstDone(th, 100, 10)
	if th.Remaining() != 50 {
		t.Errorf("after first action, remaining = %v, want 50 (second action)", th.Remaining())
	}
	os.BurstDone(th, 50, 20)
	if th.State() != Dead {
		t.Errorf("state %v, want dead after program end", th.State())
	}
	if os.HasRunnable(0) {
		t.Error("dead thread still runnable")
	}
}

func TestPartialBurstKeepsRemaining(t *testing.T) {
	e := sim.NewEngine()
	os := NewOS("vm", 1, e, &mockWaker{})
	th := os.Spawn("w", 0, false, &seqProgram{actions: []Action{computeAction(100)}}, 0)
	os.BurstDone(th, 30, 5)
	if th.Remaining() != 70 {
		t.Errorf("remaining = %v, want 70", th.Remaining())
	}
	if th.State() != Ready {
		t.Errorf("state %v, want ready", th.State())
	}
}

func TestGuestRoundRobinRotation(t *testing.T) {
	e := sim.NewEngine()
	os := NewOS("vm", 1, e, &mockWaker{})
	a := os.Spawn("a", 0, false, &seqProgram{actions: []Action{computeAction(100 * sim.Millisecond)}}, 0)
	b := os.Spawn("b", 0, false, &seqProgram{actions: []Action{computeAction(100 * sim.Millisecond)}}, 0)

	s1 := os.NextStep(0, 0)
	if s1.Thread != a {
		t.Fatalf("first step thread %s, want a", s1.Thread.Name)
	}
	// With two ready threads the step is clipped to the guest slice.
	if s1.Work != GuestSlice {
		t.Errorf("work %v, want guest slice %v", s1.Work, GuestSlice)
	}
	os.BurstDone(a, GuestSlice, sim.Time(GuestSlice))
	s2 := os.NextStep(0, sim.Time(GuestSlice))
	if s2.Thread != b {
		t.Errorf("after rotation, step thread %s, want b", s2.Thread.Name)
	}
}

func TestIRQThreadPreemptsNormal(t *testing.T) {
	e := sim.NewEngine()
	w := &mockWaker{}
	os := NewOS("vm", 1, e, w)
	os.Spawn("cgi", 0, false, &seqProgram{actions: []Action{computeAction(sim.Second)}}, 0)
	h := os.Spawn("handler", 0, true, &seqProgram{actions: []Action{
		{Kind: ActWaitIO, Port: 7},
		computeAction(10),
	}}, 0)
	if h.State() != BlockedIO {
		t.Fatalf("handler state %v, want blocked-io", h.State())
	}
	// Background thread runs first.
	if s := os.NextStep(0, 0); s.Thread.Name != "cgi" {
		t.Fatalf("step thread %s, want cgi", s.Thread.Name)
	}
	// IO arrives: handler must be next and the vCPU must be kicked.
	cpu := os.DeliverIO(7, 100)
	if cpu != 0 {
		t.Errorf("DeliverIO returned cpu %d, want 0", cpu)
	}
	if len(w.kicks) == 0 {
		t.Error("IRQ enqueue did not kick the vCPU")
	}
	if s := os.NextStep(0, 100); s.Thread != h {
		t.Errorf("step thread %v, want handler", s.Thread)
	}
}

func TestDeliverIOWithNoWaiterQueues(t *testing.T) {
	e := sim.NewEngine()
	os := NewOS("vm", 1, e, &mockWaker{})
	os.DeliverIO(3, 0) // no waiter yet
	h := os.Spawn("handler", 0, true, &seqProgram{actions: []Action{
		{Kind: ActWaitIO, Port: 3},
		computeAction(10),
		{Kind: ActWaitIO, Port: 3},
		computeAction(10),
	}}, 0)
	// The queued event lets the first wait complete immediately.
	if h.State() != Ready {
		t.Fatalf("handler state %v, want ready (event was queued)", h.State())
	}
	os.BurstDone(h, 10, 5)
	if h.State() != BlockedIO {
		t.Errorf("handler state %v, want blocked on second wait", h.State())
	}
}

func TestSleepWakesViaEngine(t *testing.T) {
	e := sim.NewEngine()
	os := NewOS("vm", 1, e, &mockWaker{})
	th := os.Spawn("s", 0, false, &seqProgram{actions: []Action{
		{Kind: ActSleep, Dur: 500},
		computeAction(10),
	}}, 0)
	if th.State() != Sleeping {
		t.Fatalf("state %v, want sleeping", th.State())
	}
	e.RunUntil(499)
	if th.State() != Sleeping {
		t.Error("woke too early")
	}
	e.RunUntil(500)
	if th.State() != Ready {
		t.Errorf("state %v, want ready after sleep", th.State())
	}
}

func TestSpinLockUncontended(t *testing.T) {
	e := sim.NewEngine()
	os := NewOS("vm", 1, e, &mockWaker{})
	l := NewSpinLock("l")
	th := os.Spawn("w", 0, false, &seqProgram{actions: []Action{
		{Kind: ActAcquire, Lock: l},
		computeAction(10),
		{Kind: ActRelease, Lock: l},
	}}, 0)
	if l.Holder() != th {
		t.Fatal("fast-path acquire failed")
	}
	os.BurstDone(th, 10, 25)
	if l.Holder() != nil {
		t.Error("lock not released")
	}
	holds, mean, _ := l.HoldStats()
	if holds != 1 || mean != 25 {
		t.Errorf("holds=%d mean=%v, want 1, 25", holds, mean)
	}
}

func TestSpinLockContentionAndGrant(t *testing.T) {
	e := sim.NewEngine()
	w := &mockWaker{}
	os := NewOS("vm", 2, e, w)
	l := NewSpinLock("l")
	a := os.Spawn("a", 0, false, &seqProgram{actions: []Action{
		{Kind: ActAcquire, Lock: l},
		computeAction(100),
		{Kind: ActRelease, Lock: l},
	}}, 0)
	b := os.Spawn("b", 1, false, &seqProgram{actions: []Action{
		{Kind: ActAcquire, Lock: l},
		computeAction(10),
		{Kind: ActRelease, Lock: l},
	}}, 0)
	if b.State() != Spinning {
		t.Fatalf("b state %v, want spinning", b.State())
	}
	if s := os.NextStep(1, 0); s.Kind != StepSpin {
		t.Fatalf("vCPU1 step kind %v, want spin", s.Kind)
	}
	// a finishes its critical section and releases: b (actively
	// spinning on its pCPU) is granted.
	b.OnCPU = true
	os.BurstDone(a, 100, 100)
	if l.Holder() != b {
		t.Fatalf("lock holder %v, want b", l.Holder())
	}
	if b.State() != Ready {
		t.Errorf("b state %v, want ready after grant", b.State())
	}
	// The grant must kick vCPU 1 so it stops spinning immediately.
	found := false
	for _, k := range w.kicks {
		if k == 1 {
			found = true
		}
	}
	if !found {
		t.Error("grant did not kick the spinner's vCPU")
	}
	// b runs its critical section and releases.
	os.BurstDone(b, 10, 150)
	if l.Holder() != nil {
		t.Error("lock still held at end")
	}
	holds, _, _ := l.HoldStats()
	if holds != 2 {
		t.Errorf("holds = %d, want 2", holds)
	}
}

func TestSpinLockFIFOOrder(t *testing.T) {
	e := sim.NewEngine()
	os := NewOS("vm", 4, e, &mockWaker{})
	l := NewSpinLock("l")
	mkProg := func() Program {
		return &seqProgram{actions: []Action{
			{Kind: ActAcquire, Lock: l},
			computeAction(10),
			{Kind: ActRelease, Lock: l},
		}}
	}
	a := os.Spawn("a", 0, false, mkProg(), 0)
	b := os.Spawn("b", 1, false, mkProg(), 0)
	c := os.Spawn("c", 2, false, mkProg(), 0)
	if l.Holder() != a || l.Waiters() != 2 {
		t.Fatalf("holder %v waiters %d", l.Holder(), l.Waiters())
	}
	// Both waiters actively spinning: handoff follows ticket order.
	b.OnCPU = true
	c.OnCPU = true
	os.BurstDone(a, 10, 10)
	if l.Holder() != b {
		t.Errorf("ticket order violated: holder %v, want b", l.Holder())
	}
	b.OnCPU = false
	os.BurstDone(b, 10, 20)
	if l.Holder() != c {
		t.Errorf("ticket order violated: holder %v, want c", l.Holder())
	}
}

func TestReleaseWithDescheduledWaitersLeavesLockFree(t *testing.T) {
	e := sim.NewEngine()
	os := NewOS("vm", 3, e, &mockWaker{})
	l := NewSpinLock("l")
	mkProg := func() Program {
		return &seqProgram{actions: []Action{
			{Kind: ActAcquire, Lock: l},
			computeAction(10),
			{Kind: ActRelease, Lock: l},
		}}
	}
	a := os.Spawn("a", 0, false, mkProg(), 0)
	b := os.Spawn("b", 1, false, mkProg(), 0)
	// b is descheduled (OnCPU false): releasing must NOT reserve the
	// lock for it (preemptable-ticket stealing semantics).
	os.BurstDone(a, 10, 10)
	if l.Holder() != nil {
		t.Fatalf("lock reserved for descheduled waiter %v", l.Holder())
	}
	if l.Waiters() != 1 {
		t.Fatalf("waiter list %d, want 1 (b still queued)", l.Waiters())
	}
	// When b's vCPU is dispatched, the re-poll acquires.
	if s := os.NextStep(1, 20); s.Kind != StepRun || s.Thread != b {
		t.Fatalf("after poll, step = %+v, want b's critical section", s)
	}
	if l.Holder() != b {
		t.Errorf("poll did not acquire: holder %v", l.Holder())
	}
}

func TestReleaseByNonOwnerPanics(t *testing.T) {
	e := sim.NewEngine()
	os := NewOS("vm", 1, e, &mockWaker{})
	l := NewSpinLock("l")
	defer func() {
		if recover() == nil {
			t.Error("release of unheld lock did not panic")
		}
	}()
	os.Spawn("bad", 0, false, &seqProgram{actions: []Action{
		{Kind: ActRelease, Lock: l},
	}}, 0)
}

func TestSemaphoreBlockingAndHandoff(t *testing.T) {
	e := sim.NewEngine()
	os := NewOS("vm", 2, e, &mockWaker{})
	s := NewSemaphore("s", 1)
	a := os.Spawn("a", 0, false, &seqProgram{actions: []Action{
		{Kind: ActSemP, Sem: s},
		computeAction(100),
		{Kind: ActSemV, Sem: s},
	}}, 0)
	b := os.Spawn("b", 1, false, &seqProgram{actions: []Action{
		{Kind: ActSemP, Sem: s},
		computeAction(10),
	}}, 0)
	if b.State() != BlockedSem {
		t.Fatalf("b state %v, want blocked-sem (no busy wait)", b.State())
	}
	if os.HasRunnable(1) {
		t.Error("blocked semaphore waiter still runnable")
	}
	os.BurstDone(a, 100, 100) // a completes and Vs
	if b.State() != Ready {
		t.Errorf("b state %v, want ready after V", b.State())
	}
	if s.Count() != 0 {
		t.Errorf("count %d, want 0 (unit handed to waiter)", s.Count())
	}
}

func TestJobsCounter(t *testing.T) {
	e := sim.NewEngine()
	os := NewOS("vm", 1, e, &mockWaker{})
	prog := ProgramFunc(func(t *Thread, now sim.Time) Action {
		t.Jobs++
		return Action{Kind: ActCompute, Work: 10}
	})
	th := os.Spawn("loop", 0, false, prog, 0)
	for i := 0; i < 5; i++ {
		os.BurstDone(th, 10, sim.Time(10*(i+1)))
	}
	if th.Jobs != 6 { // one at spawn + five completions
		t.Errorf("jobs = %d, want 6", th.Jobs)
	}
}

func TestInfiniteInterpretPanics(t *testing.T) {
	e := sim.NewEngine()
	os := NewOS("vm", 1, e, &mockWaker{})
	defer func() {
		if recover() == nil {
			t.Error("zero-work forever program did not panic")
		}
	}()
	os.Spawn("bad", 0, false, ProgramFunc(func(*Thread, sim.Time) Action {
		return Action{Kind: ActCompute, Work: 0}
	}), 0)
}

func TestNextStepIdle(t *testing.T) {
	e := sim.NewEngine()
	os := NewOS("vm", 1, e, &mockWaker{})
	if s := os.NextStep(0, 0); s.Kind != StepIdle {
		t.Errorf("empty vCPU step %v, want idle", s.Kind)
	}
}

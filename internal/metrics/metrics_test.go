package metrics

import (
	"sort"
	"testing"
	"testing/quick"

	"aqlsched/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram not zeroed")
	}
	for _, v := range []sim.Time{10, 20, 30, 40, 50} {
		h.Record(v)
	}
	if h.Count() != 5 {
		t.Errorf("count %d, want 5", h.Count())
	}
	if h.Mean() != 30 {
		t.Errorf("mean %v, want 30", h.Mean())
	}
	if h.Max() != 50 {
		t.Errorf("max %v, want 50", h.Max())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(sim.Time(i))
	}
	if p := h.Percentile(50); p < 49 || p > 51 {
		t.Errorf("p50 = %v, want ~50", p)
	}
	if p := h.Percentile(99); p < 98 || p > 100 {
		t.Errorf("p99 = %v, want ~99", p)
	}
	if p := h.Percentile(100); p != 100 {
		t.Errorf("p100 = %v, want 100", p)
	}
}

func TestHistogramPercentileEmptyAndBounds(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(50) != 0 {
		t.Error("empty percentile not 0")
	}
	h.Record(5)
	defer func() {
		if recover() == nil {
			t.Error("percentile(0) did not panic")
		}
	}()
	h.Percentile(0)
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(100)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("reset did not clear")
	}
}

func TestRate(t *testing.T) {
	a := JobSnapshot{At: 1 * sim.Second, Jobs: 100}
	b := JobSnapshot{At: 3 * sim.Second, Jobs: 300}
	if r := Rate(a, b); r != 100 {
		t.Errorf("rate %v, want 100/s", r)
	}
	if r := Rate(b, b); r != 0 {
		t.Errorf("zero-window rate %v, want 0", r)
	}
}

// Property: mean is within [min, max] and percentiles are monotone.
func TestHistogramInvariantsProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		min, max := sim.Time(vals[0]), sim.Time(vals[0])
		for _, v := range vals {
			tv := sim.Time(v)
			h.Record(tv)
			if tv < min {
				min = tv
			}
			if tv > max {
				max = tv
			}
		}
		if h.Mean() < min || h.Mean() > max {
			return false
		}
		last := sim.Time(0)
		for _, p := range []float64{10, 25, 50, 75, 90, 99, 100} {
			v := h.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return h.Max() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestHistogramPercentileInterleavedWithRecord is the regression test
// for the sorted-view cache: interleaving Record, Percentile and Reset
// must always return nearest-rank-correct values, identical to a
// freshly sorted copy.
func TestHistogramPercentileInterleavedWithRecord(t *testing.T) {
	naive := func(samples []sim.Time, p float64) sim.Time {
		cp := append([]sim.Time(nil), samples...)
		sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
		idx := int(p/100*float64(len(cp))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(cp) {
			idx = len(cp) - 1
		}
		return cp[idx]
	}

	h := NewHistogram()
	var shadow []sim.Time
	rng := sim.NewRNG(42)
	ps := []float64{1, 25, 50, 90, 95, 99, 100}
	for i := 0; i < 500; i++ {
		d := sim.Time(rng.Intn(10_000))
		h.Record(d)
		shadow = append(shadow, d)
		// Query mid-stream every few records: the cache must be
		// invalidated by the interleaved Record calls.
		if i%7 == 0 {
			for _, p := range ps {
				if got, want := h.Percentile(p), naive(shadow, p); got != want {
					t.Fatalf("after %d records: P%v = %v, want %v", i+1, p, got, want)
				}
			}
		}
		// Repeated queries on an unchanged histogram (cache-hit path).
		if i%13 == 0 {
			a := h.Percentile(95)
			if b := h.Percentile(95); a != b {
				t.Fatalf("repeated P95 changed without new samples: %v then %v", a, b)
			}
		}
	}
	// Reset invalidates too.
	h.Reset()
	shadow = shadow[:0]
	if got := h.Percentile(50); got != 0 {
		t.Errorf("P50 after reset = %v, want 0", got)
	}
	for _, d := range []sim.Time{5, 1, 9} {
		h.Record(d)
		shadow = append(shadow, d)
	}
	for _, p := range ps {
		if got, want := h.Percentile(p), naive(shadow, p); got != want {
			t.Errorf("post-reset P%v = %v, want %v", p, got, want)
		}
	}
}

package metrics

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Direction classifies how a metric's value relates to "better". It
// drives baseline normalization: direction-aware metrics normalize to
// the paper's lower-is-better form, direction-less diagnostics never
// normalize.
type Direction uint8

const (
	// DirNone marks a diagnostic: the value describes the run but has
	// no better/worse ordering the harness should act on.
	DirNone Direction = iota
	// LowerIsBetter metrics (latency, time-per-job) normalize as
	// measured/baseline.
	LowerIsBetter
	// HigherIsBetter metrics (fairness) normalize as baseline/measured,
	// so the normalized form is lower-is-better like everything else.
	HigherIsBetter
)

func (d Direction) String() string {
	switch d {
	case LowerIsBetter:
		return "lower"
	case HigherIsBetter:
		return "higher"
	}
	return "n/a"
}

// AggKind describes how a metric's per-run value is produced by its
// probe. Across seed replications every metric aggregates the same way
// (mean, stddev, 95% CI); the kind is self-description for tooling
// (aqlsweep -list-metrics) and artifact readers.
type AggKind uint8

const (
	// AggMean: the run value is a mean over within-run samples.
	AggMean AggKind = iota
	// AggPercentile: the run value is a percentile of within-run samples.
	AggPercentile
	// AggCount: the run value counts events over the measurement window.
	AggCount
	// AggFraction: the run value is a ratio in [0, 1].
	AggFraction
	// AggIndex: the run value is a dimensionless index (e.g. Jain).
	AggIndex
)

func (k AggKind) String() string {
	switch k {
	case AggPercentile:
		return "percentile"
	case AggCount:
		return "count"
	case AggFraction:
		return "fraction"
	case AggIndex:
		return "index"
	}
	return "mean"
}

// Scope tells whether a metric is measured once per application (and
// per VM) or once per run.
type Scope uint8

const (
	// PerApp metrics live on each application's (and VM's) measurement.
	PerApp Scope = iota
	// PerRun metrics live on the run itself (hypervisor counters,
	// adaptation diagnostics).
	PerRun
)

func (s Scope) String() string {
	if s == PerRun {
		return "per-run"
	}
	return "per-app"
}

// Desc is the self-describing type of one measurement: its registry
// name, unit, direction, production kind and scope. Every value that
// flows scenario → sweep → emitters is a (Desc, float64) pair inside a
// Set; emitters derive their columns from the Descs present, so adding
// a metric is one Register call plus one Put at the probe site.
type Desc struct {
	// Name identifies the metric in Sets, artifacts and -metrics
	// selections.
	Name string
	// Unit is the value's unit ("us", "s", "count", ...).
	Unit string
	// Direction drives baseline normalization; DirNone diagnostics are
	// never normalized.
	Direction Direction
	// Agg describes how the probe produces the per-run value.
	Agg AggKind
	// Scope is per-app or per-run.
	Scope Scope
	// Primary marks an application's headline performance metric — the
	// value the paper's figures normalize. An app's Set contains at most
	// one primary metric (mean latency for IO apps, time-per-job for
	// batch apps).
	Primary bool
	// Help is a one-line description for -list-metrics.
	Help string
}

// Normalized applies the desc's direction to a (measured, baseline)
// pair, returning the paper's lower-is-better normalized performance.
// ok is false for direction-less metrics and non-positive denominators
// (a failed or zero baseline cannot normalize anything).
func (d Desc) Normalized(measured, baseline float64) (v float64, ok bool) {
	switch d.Direction {
	case LowerIsBetter:
		if baseline <= 0 {
			return 0, false
		}
		return measured / baseline, true
	case HigherIsBetter:
		if measured <= 0 {
			return 0, false
		}
		return baseline / measured, true
	}
	return 0, false
}

// --- Registry --------------------------------------------------------------

var (
	regMu     sync.RWMutex
	regOrder  []string
	regByName = map[string]Desc{}
)

// Register adds a Desc to the package registry and returns it (so
// clients can bind the result to a package-level var and Put through
// it). Registration happens from init functions; the registration
// order — deterministic for a given binary — is the emission order of
// every schema-driven artifact. Empty or duplicate names panic: a
// collision is a programming error, not an input error.
func Register(d Desc) Desc {
	if d.Name == "" {
		panic("metrics: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByName[d.Name]; dup {
		panic(fmt.Sprintf("metrics: %q registered twice", d.Name))
	}
	regByName[d.Name] = d
	regOrder = append(regOrder, d.Name)
	return d
}

// Descs lists every registered Desc in registration order.
func Descs() []Desc {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Desc, len(regOrder))
	for i, n := range regOrder {
		out[i] = regByName[n]
	}
	return out
}

// DescByName finds a registered Desc.
func DescByName(name string) (Desc, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := regByName[name]
	return d, ok
}

// --- Set -------------------------------------------------------------------

// Set is an ordered collection of measurements: metric name → value,
// iterated in insertion order. A metric a probe could not measure (a
// batch app that completed no jobs, a run that recognized no flips) is
// simply absent, which is how "failed measurement" is represented —
// aggregation walks the union of present metrics and skips absences.
// The zero Set is empty and ready to use.
type Set struct {
	names []string
	vals  map[string]float64
}

// Put records a measurement under its Desc. Re-putting a name
// overwrites the value and keeps the original position.
func (s *Set) Put(d Desc, v float64) {
	if _, registered := DescByName(d.Name); !registered {
		panic(fmt.Sprintf("metrics: Put of unregistered metric %q", d.Name))
	}
	if s.vals == nil {
		// Presized for the typical probe footprint: measurement sets
		// carry a handful of metrics, and growing a map bucket-by-bucket
		// showed up as a measurable slice of the allocation profile.
		s.vals = make(map[string]float64, 8)
		if s.names == nil {
			s.names = make([]string, 0, 8)
		}
	}
	if _, dup := s.vals[d.Name]; !dup {
		s.names = append(s.names, d.Name)
	}
	s.vals[d.Name] = v
}

// Get reports the value recorded under name.
func (s Set) Get(name string) (float64, bool) {
	v, ok := s.vals[name]
	return v, ok
}

// Has reports whether name was recorded.
func (s Set) Has(name string) bool {
	_, ok := s.vals[name]
	return ok
}

// Names lists the recorded metric names in insertion order.
func (s Set) Names() []string {
	return append([]string(nil), s.names...)
}

// Len reports how many metrics were recorded.
func (s Set) Len() int { return len(s.names) }

// Primary returns the Set's primary performance metric (the value the
// paper's figures normalize), or ok=false when the measurement failed
// and no primary metric was recorded.
func (s Set) Primary() (Desc, float64, bool) {
	for _, n := range s.names {
		if d, ok := DescByName(n); ok && d.Primary {
			return d, s.vals[n], true
		}
	}
	return Desc{}, 0, false
}

// Equal reports whether two sets hold the same metrics, in the same
// order, with identical values (sim determinism tests compare Sets).
func (s Set) Equal(o Set) bool {
	if len(s.names) != len(o.names) {
		return false
	}
	for i, n := range s.names {
		if o.names[i] != n || s.vals[n] != o.vals[n] {
			return false
		}
	}
	return true
}

// setEntry is the JSON shape of one Set measurement.
type setEntry struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// MarshalJSON encodes the Set as an ordered array of {name, value}
// pairs, preserving insertion order so a marshal/unmarshal round trip
// reproduces the Set exactly (Equal). Go's float64 JSON encoding
// round-trips bit-exactly, which is what lets the sweep journal restore
// byte-identical artifacts.
func (s Set) MarshalJSON() ([]byte, error) {
	out := make([]setEntry, len(s.names))
	for i, n := range s.names {
		out[i] = setEntry{Name: n, Value: s.vals[n]}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the array form. Every name must resolve in the
// registry — a journal written by a binary with metrics this one does
// not know fails the load instead of resurfacing later as a Put panic.
func (s *Set) UnmarshalJSON(data []byte) error {
	var entries []setEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return err
	}
	*s = Set{}
	for _, e := range entries {
		d, ok := DescByName(e.Name)
		if !ok {
			return fmt.Errorf("metrics: unknown metric %q in serialized set", e.Name)
		}
		s.Put(d, e.Value)
	}
	return nil
}

// Jain computes Jain's fairness index (Σx)²/(n·Σx²) over the samples:
// 1 when all values are equal, approaching 1/n under maximal
// inequality. ok is false with fewer than two samples or an all-zero
// sample set (fairness of nothing is undefined, not perfect).
func Jain(xs []float64) (v float64, ok bool) {
	if len(xs) < 2 {
		return 0, false
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0, false
	}
	return sum * sum / (float64(len(xs)) * sumSq), true
}

package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"aqlsched/internal/sim"
)

// descs for tests live in the shared registry; use a distinct prefix
// so they can never collide with real registrations.
var (
	tLower = Register(Desc{Name: "test_lower", Unit: "us", Direction: LowerIsBetter, Scope: PerApp, Primary: true})
	tHigh  = Register(Desc{Name: "test_higher", Unit: "index", Direction: HigherIsBetter, Scope: PerApp})
	tDiag  = Register(Desc{Name: "test_diag", Unit: "count", Direction: DirNone, Scope: PerRun})
)

func TestRegistryOrderAndLookup(t *testing.T) {
	rank := map[string]int{}
	for i, d := range Descs() {
		rank[d.Name] = i
	}
	if !(rank["test_lower"] < rank["test_higher"] && rank["test_higher"] < rank["test_diag"]) {
		t.Error("registration order not preserved")
	}
	if d, ok := DescByName("test_lower"); !ok || !d.Primary || d.Unit != "us" {
		t.Errorf("lookup returned %+v", d)
	}
	if _, ok := DescByName("test_missing"); ok {
		t.Error("unknown name resolved")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(Desc{Name: "test_lower"})
}

func TestDescNormalizedDirections(t *testing.T) {
	if v, ok := tLower.Normalized(2, 4); !ok || v != 0.5 {
		t.Errorf("lower-is-better norm = %v/%v", v, ok)
	}
	if _, ok := tLower.Normalized(2, 0); ok {
		t.Error("zero baseline normalized")
	}
	if v, ok := tHigh.Normalized(4, 2); !ok || v != 0.5 {
		t.Errorf("higher-is-better norm = %v/%v (want baseline/measured)", v, ok)
	}
	if _, ok := tHigh.Normalized(0, 2); ok {
		t.Error("zero measured rate normalized")
	}
	if _, ok := tDiag.Normalized(1, 1); ok {
		t.Error("diagnostic metric normalized")
	}
}

func TestSetOrderOverwriteAndPrimary(t *testing.T) {
	var s Set
	if s.Len() != 0 || s.Has("test_lower") {
		t.Error("zero Set not empty")
	}
	if _, _, ok := s.Primary(); ok {
		t.Error("empty Set has a primary")
	}
	s.Put(tHigh, 0.5)
	s.Put(tLower, 10)
	s.Put(tHigh, 0.9) // overwrite keeps position
	want := []string{"test_higher", "test_lower"}
	got := s.Names()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("names %v, want %v", got, want)
	}
	if v, ok := s.Get("test_higher"); !ok || v != 0.9 {
		t.Errorf("overwrite lost: %v/%v", v, ok)
	}
	d, v, ok := s.Primary()
	if !ok || d.Name != "test_lower" || v != 10 {
		t.Errorf("primary = %s %v %v", d.Name, v, ok)
	}

	var o Set
	o.Put(tLower, 10)
	o.Put(tHigh, 0.9)
	if s.Equal(o) {
		t.Error("Sets with different insertion order compare equal")
	}
	o = Set{}
	o.Put(tHigh, 0.9)
	o.Put(tLower, 10)
	if !s.Equal(o) {
		t.Error("order-identical Sets compare unequal after overwrite")
	}
	var p Set
	p.Put(tHigh, 0.9)
	p.Put(tLower, 10)
	if !o.Equal(p) {
		t.Error("identical Sets compare unequal")
	}

	defer func() {
		if recover() == nil {
			t.Error("Put of unregistered desc did not panic")
		}
	}()
	s.Put(Desc{Name: "test_unregistered"}, 1)
}

func TestJain(t *testing.T) {
	if v, ok := Jain([]float64{5, 5, 5, 5}); !ok || v != 1 {
		t.Errorf("equal allocation Jain = %v/%v, want exactly 1", v, ok)
	}
	// One active VM out of four: index collapses to 1/n.
	if v, ok := Jain([]float64{8, 0, 0, 0}); !ok || math.Abs(v-0.25) > 1e-12 {
		t.Errorf("maximally unfair Jain = %v, want 0.25", v)
	}
	if _, ok := Jain([]float64{3}); ok {
		t.Error("single-sample Jain defined")
	}
	if _, ok := Jain([]float64{0, 0}); ok {
		t.Error("all-zero Jain defined")
	}
	if _, ok := Jain(nil); ok {
		t.Error("empty Jain defined")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for _, x := range []sim.Time{10, 20, 30} {
		a.Record(x)
	}
	for _, x := range []sim.Time{40, 50} {
		b.Record(x)
	}
	a.Merge(b)
	if a.Count() != 5 {
		t.Fatalf("merged count %d, want 5", a.Count())
	}
	if got := a.Percentile(100); got != sim.Time(50) {
		t.Errorf("merged p100 = %v, want 50", got)
	}
	if got := a.Percentile(50); got != sim.Time(30) {
		t.Errorf("merged p50 = %v, want 30", got)
	}
}

func TestSetJSONRoundTrip(t *testing.T) {
	var s Set
	s.Put(tLower, 123.456789e-3)
	s.Put(tHigh, 1.0/3.0) // not exactly representable in decimal
	s.Put(tDiag, 0)

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Set
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(back) {
		t.Errorf("round trip changed the set:\nbefore %v\nafter  %v", s.Names(), back.Names())
	}
	// Bit-exactness is what the sweep journal's byte-identical resume
	// rests on, so check a value that has no finite decimal expansion.
	if v, _ := back.Get("test_higher"); v != 1.0/3.0 {
		t.Errorf("1/3 round-tripped to %v", v)
	}
	// A second marshal must reproduce the bytes exactly.
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Errorf("re-marshal differs:\n%s\n%s", data, data2)
	}
}

func TestSetUnmarshalRejectsUnknownMetric(t *testing.T) {
	var s Set
	err := json.Unmarshal([]byte(`[{"name": "test_not_registered", "value": 1}]`), &s)
	if err == nil || !strings.Contains(err.Error(), "unknown metric") {
		t.Fatalf("unknown metric accepted: %v", err)
	}
}

// Package metrics provides the measurement primitives the evaluation
// harness uses: latency histograms for IO-intensive applications,
// throughput snapshots for batch applications, and normalized
// performance helpers matching the paper's presentation (values are
// normalized over a baseline run; lower is better).
package metrics

import (
	"fmt"
	"sort"

	"aqlsched/internal/sim"
)

// Histogram collects duration samples (e.g. request latencies).
type Histogram struct {
	samples []sim.Time
	sum     sim.Time
	max     sim.Time
	// sorted caches the sorted view Percentile works on; it is rebuilt
	// lazily after Record/Reset invalidate it, so percentile scans over
	// a settled histogram stop re-sorting the full sample set per call.
	sorted []sim.Time
	dirty  bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one sample.
func (h *Histogram) Record(d sim.Time) {
	h.samples = append(h.samples, d)
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.dirty = true
}

// Reset discards all samples (used to cut off warm-up).
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.sum = 0
	h.max = 0
	h.sorted = h.sorted[:0]
	h.dirty = false
}

// Count reports the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Merge folds another histogram's samples into h (app-level percentiles
// pool the request latencies of every VM instance and server).
func (h *Histogram) Merge(o *Histogram) {
	for _, d := range o.samples {
		h.Record(d)
	}
}

// Mean reports the average sample, or 0 with no samples.
func (h *Histogram) Mean() sim.Time {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / sim.Time(len(h.samples))
}

// Max reports the largest sample.
func (h *Histogram) Max() sim.Time { return h.max }

// Percentile reports the p-th percentile (0 < p <= 100),
// nearest-rank. The sorted view is cached across calls and rebuilt
// only after new samples arrive.
func (h *Histogram) Percentile(p float64) sim.Time {
	if len(h.samples) == 0 {
		return 0
	}
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of (0,100]", p))
	}
	if h.dirty || len(h.sorted) != len(h.samples) {
		h.sorted = append(h.sorted[:0], h.samples...)
		sort.Slice(h.sorted, func(i, j int) bool { return h.sorted[i] < h.sorted[j] })
		h.dirty = false
	}
	cp := h.sorted
	idx := int(p/100*float64(len(cp))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

// JobSnapshot is a (time, jobs-completed) pair for rate computation.
type JobSnapshot struct {
	At   sim.Time
	Jobs uint64
}

// Rate reports jobs per second between two snapshots.
func Rate(a, b JobSnapshot) float64 {
	dt := b.At - a.At
	if dt <= 0 {
		return 0
	}
	return float64(b.Jobs-a.Jobs) / dt.Seconds()
}

// Baseline normalization lives on Desc.Normalized (desc.go): the
// metric's declared direction picks measured/baseline or its inverse,
// so every normalized value reads lower-is-better.

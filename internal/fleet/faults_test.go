package fleet

import (
	"strings"
	"testing"

	"aqlsched/internal/sim"
)

func TestCrashEvictsAndReplaces(t *testing.T) {
	// Two hosts, one VM on each (least-loaded spreads). Host 0 crashes at
	// 10 ms and stays down past the run end; its VM must be re-placed on
	// host 1 after the first retry delay.
	vms := []VMSpec{{App: cpuVM("a")}, {App: cpuVM("b")}}
	spec := explicitSpec("crash", 2, "least-loaded", vms)
	spec.Faults = &FaultPlan{
		Crashes: []Crash{{Host: 0, At: 10 * sim.Millisecond, Down: 10 * sim.Second}},
	}
	res := Run(spec, Options{})
	f := res.Fleet
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !f.Hosts[0].Down() {
		t.Error("host 0 should still be down at run end")
	}
	if f.Hosts[0].EffCapacity() != 0 {
		t.Errorf("down host effective capacity = %d, want 0", f.Hosts[0].EffCapacity())
	}
	victim := f.VMs[0]
	if victim.Host() != f.Hosts[1] {
		t.Fatalf("crash victim should have been re-placed on host 1, is on %v", victim.Host())
	}
	// Default recovery: first retry 10 ms after the crash.
	if victim.PlacedAt != 20*sim.Millisecond {
		t.Errorf("victim re-placed at %v, want 20ms (crash + default retry delay)", victim.PlacedAt)
	}
	if v, _ := res.Metrics.Get("fleet_vms_replaced"); v != 1 {
		t.Errorf("fleet_vms_replaced = %v, want 1", v)
	}
	if v, _ := res.Metrics.Get("fleet_vms_lost"); v != 0 {
		t.Errorf("fleet_vms_lost = %v, want 0", v)
	}
	if v, ok := res.Metrics.Get("fleet_replacement_wait"); !ok || v != 10_000 {
		t.Errorf("fleet_replacement_wait = %v us (ok=%v), want 10000", v, ok)
	}
	if v, _ := res.Metrics.Get("fleet_downtime_vm_seconds"); v <= 0 {
		t.Errorf("fleet_downtime_vm_seconds = %v, want positive", v)
	}
	if v, _ := res.Metrics.Get("fleet_faults_injected"); v != 1 {
		t.Errorf("fleet_faults_injected = %v, want 1", v)
	}
}

func TestCrashRecoveryExhaustion(t *testing.T) {
	// A single host that crashes permanently: every retry fails, so the
	// exhaust decision applies.
	base := func() Spec {
		spec := explicitSpec("exhaust", 1, "least-loaded", []VMSpec{{App: cpuVM("a")}})
		spec.Faults = &FaultPlan{
			Crashes:  []Crash{{Host: 0, At: 10 * sim.Millisecond}}, // Down 0 = never recovers
			Recovery: Recovery{MaxRetries: 2, RetryDelay: 2 * sim.Millisecond, Backoff: 2, OnExhaust: "drop"},
		}
		return spec
	}

	res := Run(base(), Options{})
	f := res.Fleet
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !f.VMs[0].Gone {
		t.Error("dropped victim should be gone")
	}
	if v, _ := res.Metrics.Get("fleet_vms_lost"); v != 1 {
		t.Errorf("fleet_vms_lost = %v, want 1", v)
	}
	if v, _ := res.Metrics.Get("fleet_vms_replaced"); v != 0 {
		t.Errorf("fleet_vms_replaced = %v, want 0", v)
	}

	spec := base()
	spec.Faults.Recovery.OnExhaust = "requeue"
	res = Run(spec, Options{})
	f = res.Fleet
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(f.Pending()) != 1 {
		t.Fatalf("requeued victim should wait in the placement queue, pending = %d", len(f.Pending()))
	}
	if v, _ := res.Metrics.Get("fleet_unplaced"); v != 1 {
		t.Errorf("fleet_unplaced = %v, want 1", v)
	}
	// Never re-placed: downtime runs from the crash to the run end.
	want := (f.end - 10*sim.Millisecond).Seconds()
	if v, _ := res.Metrics.Get("fleet_downtime_vm_seconds"); v != want {
		t.Errorf("fleet_downtime_vm_seconds = %v, want %v", v, want)
	}
}

func TestMigrationFailureInjection(t *testing.T) {
	// Bin-pack stacks both VMs on host 0 and the rebalancer tries to move
	// one out; with failure probability 1 every attempt must fail and the
	// VM must stay where it was, with the reservation released.
	vms := []VMSpec{{App: cpuVM("a")}, {App: cpuVM("b")}}
	spec := explicitSpec("migfail", 2, "bin-pack", vms)
	spec.Rebalance = Rebalance{
		Every:         10 * sim.Millisecond,
		Threshold:     0.03,
		MigrationTime: 5 * sim.Millisecond,
		MaxPerTick:    1,
	}
	spec.Faults = &FaultPlan{MigFailProb: 1}
	res := Run(spec, Options{})
	f := res.Fleet
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if f.Migrations() != 0 {
		t.Errorf("completed migrations = %d, want 0 (all injected to fail)", f.Migrations())
	}
	mf, _ := res.Metrics.Get("fleet_migration_failures")
	if mf < 1 {
		t.Errorf("fleet_migration_failures = %v, want >= 1", mf)
	}
	for _, h := range f.Hosts {
		if h.reserved != 0 {
			t.Errorf("host %d still holds %d reserved vCPUs after failed migrations", h.ID, h.reserved)
		}
	}
	if f.VMs[0].Host() != f.Hosts[0] || f.VMs[1].Host() != f.Hosts[0] {
		t.Error("failed migrations must leave both VMs on the source host")
	}
}

func TestDegradationBlocksAdmission(t *testing.T) {
	// Host capacity 8 (oversub 1 on the default 8-pCPU machine), degraded
	// to factor 0.25 (effective 2) from the start. The 2-vCPU gang fits;
	// the 4-vCPU gang arriving at 5 ms must wait until the degradation
	// lifts at 30 ms.
	vms := []VMSpec{
		{App: gangVM("small", 2)},
		{ArriveAt: 5 * sim.Millisecond, App: gangVM("big", 4)},
	}
	spec := explicitSpec("degrade", 1, "least-loaded", vms)
	spec.OverSub = 1
	spec.Faults = &FaultPlan{
		Degrades: []Degrade{{Host: 0, At: 0, For: 30 * sim.Millisecond, Factor: 0.25}},
	}
	res := Run(spec, Options{})
	f := res.Fleet
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	small, big := f.VMs[0], f.VMs[1]
	if !small.Placed || small.PlacedAt != 0 {
		t.Errorf("small placed=%v at %v, want immediate placement under degradation", small.Placed, small.PlacedAt)
	}
	if !big.Placed || big.PlacedAt != 30*sim.Millisecond {
		t.Errorf("big placed=%v at %v, want placement when the degradation lifts (30ms)", big.Placed, big.PlacedAt)
	}
	if f.Hosts[0].Degraded() {
		t.Error("degradation should have lifted by run end")
	}
}

func TestCrashDuringMigrationReleasesReservation(t *testing.T) {
	// The reservation-leak scenario: bin-pack stacks both VMs on host 0,
	// the rebalancer starts moving the mover to host 1 at the 10 ms tick
	// (transfer takes 40 ms), and host 0 crashes permanently at 15 ms
	// with the transfer in flight. Both victims go through recovery and
	// re-place on host 1 at 19 ms (new placement stint). The leaser's
	// original departure event (due at 18 ms, scheduled against the
	// crashed stint) fires while it sits in the backoff queue and must be
	// ignored as stale; its replacement then departs on the remaining
	// lifetime. When the doomed transfer completes at 50 ms the stint
	// mismatch must release host 1's reservation and count a failed
	// migration — the mover keeps running as its replacement.
	vms := []VMSpec{
		{App: cpuVM("mover")},
		{App: cpuVM("leaser"), Lifetime: 18 * sim.Millisecond},
	}
	spec := explicitSpec("crashmig", 2, "bin-pack", vms)
	spec.Rebalance = Rebalance{
		Every:         10 * sim.Millisecond,
		Threshold:     0.03,
		MigrationTime: 40 * sim.Millisecond, // in flight from 10ms to 50ms
		MaxPerTick:    1,
	}
	spec.Faults = &FaultPlan{
		Crashes:  []Crash{{Host: 0, At: 15 * sim.Millisecond}}, // Down 0 = permanent
		Recovery: Recovery{MaxRetries: 5, RetryDelay: 4 * sim.Millisecond, Backoff: 2},
	}
	res := Run(spec, Options{})
	f := res.Fleet
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, h := range f.Hosts {
		if h.reserved != 0 {
			t.Errorf("host %d leaked %d reserved vCPUs", h.ID, h.reserved)
		}
	}
	if v, _ := res.Metrics.Get("fleet_migration_failures"); v != 1 {
		t.Errorf("fleet_migration_failures = %v, want 1 (the crashed-source transfer)", v)
	}
	if f.Migrations() != 0 {
		t.Errorf("completed migrations = %d, want 0", f.Migrations())
	}
	mover, leaser := f.VMs[0], f.VMs[1]
	if mover.Gone || mover.Host() != f.Hosts[1] {
		t.Errorf("mover gone=%v host=%v, want alive on host 1", mover.Gone, mover.Host())
	}
	if mover.PlacedAt != 19*sim.Millisecond {
		t.Errorf("mover re-placed at %v, want 19ms (crash + retry delay)", mover.PlacedAt)
	}
	if !leaser.Gone {
		t.Error("leaser should have departed on its remaining lifetime")
	}
	if v, _ := res.Metrics.Get("fleet_vms_replaced"); v != 2 {
		t.Errorf("fleet_vms_replaced = %v, want 2", v)
	}
}

func TestStormDeterminismAndSeedSplit(t *testing.T) {
	// A storm-driven fault plan is a pure function of the plan seed: two
	// identical runs must produce identical metric sets, and changing
	// only the per-run Seed must keep the fault schedule (faults are
	// drawn from GenSeed) while the simulation varies.
	mk := func(seed uint64) Spec {
		sp := genFleetSpec()
		sp.Name = "storm"
		sp.Seed = seed
		sp.GenSeed = 7
		sp.Faults = &FaultPlan{
			CrashStorm:   &Storm{Rate: 15, Start: 40 * sim.Millisecond, Horizon: 180 * sim.Millisecond, MeanDown: 30 * sim.Millisecond},
			DegradeStorm: &Storm{Rate: 10, Horizon: 200 * sim.Millisecond, MeanDown: 50 * sim.Millisecond, Factor: 0.5},
			MigFailProb:  0.3,
		}
		return sp
	}
	a := Run(mk(7), Options{})
	b := Run(mk(7), Options{})
	if !a.Metrics.Equal(b.Metrics) {
		t.Error("identical storm specs produced different metric sets")
	}
	if err := a.Fleet.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.Metrics.Get("fleet_faults_injected"); v < 2 {
		t.Errorf("fleet_faults_injected = %v, want a real storm", v)
	}

	// Same GenSeed, different run Seed: the storm schedule is shared, so
	// crash/degrade injections match ...
	c := Run(mk(99), Options{})
	av, _ := a.Metrics.Get("fleet_vms_replaced")
	cv, _ := c.Metrics.Get("fleet_vms_replaced")
	if av != cv {
		t.Errorf("replications diverged on the fault schedule: vms_replaced %v vs %v", av, cv)
	}
}

func TestFaultPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		plan FaultPlan
		want string
	}{
		{"crash host range", FaultPlan{Crashes: []Crash{{Host: 9}}}, "targets host 9"},
		{"degrade factor", FaultPlan{Degrades: []Degrade{{Host: 0, For: sim.Millisecond, Factor: 1.5}}}, "must be in (0, 1]"},
		{"storm rate", FaultPlan{CrashStorm: &Storm{Rate: -1, Horizon: sim.Second, MeanDown: sim.Millisecond}}, "must be positive"},
		{"storm blowup", FaultPlan{CrashStorm: &Storm{Rate: 1e12, Horizon: sim.Second, MeanDown: sim.Millisecond}}, "sanity cap"},
		{"mig prob", FaultPlan{MigFailProb: 1.5}, "must be in [0, 1]"},
		{"backoff", FaultPlan{Recovery: Recovery{Backoff: 0.5}}, "must be ≥ 1"},
		{"exhaust", FaultPlan{Recovery: Recovery{OnExhaust: "explode"}}, "on-exhaust"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec := explicitSpec("bad", 2, "least-loaded", []VMSpec{{App: cpuVM("a")}})
			plan := c.plan
			spec.Faults = &plan
			err := spec.Validate()
			if err == nil {
				t.Fatal("bad fault plan accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

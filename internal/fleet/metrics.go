// Fleet metric registrations: every measurement the fleet layer
// produces flows through the same registry the scenario metrics use, so
// sweep aggregation, artifact schemas and the emitters pick them up
// without any fleet-specific code.
package fleet

import "aqlsched/internal/metrics"

var (
	// --- Per-run fleet diagnostics ------------------------------------------

	MHosts = metrics.Register(metrics.Desc{
		Name: "fleet_hosts", Unit: "count", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "hosts simulated by the fleet run",
	})
	MPlacements = metrics.Register(metrics.Desc{
		Name: "fleet_placements", Unit: "count", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "VM placements over the whole run",
	})
	MUnplaced = metrics.Register(metrics.Desc{
		Name: "fleet_unplaced", Unit: "count", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "VMs still waiting in the placement queue at run end",
	})
	// MPlacementWait is the mean time arrivals spent queued before
	// placement — the fleet-level latency a placement policy trades
	// against packing quality.
	MPlacementWait = metrics.Register(metrics.Desc{
		Name: "fleet_placement_wait", Unit: "us", Direction: metrics.LowerIsBetter,
		Agg: metrics.AggMean, Scope: metrics.PerRun,
		Help: "mean VM queue wait from arrival to placement",
	})
	MMigrations = metrics.Register(metrics.Desc{
		Name: "fleet_migrations", Unit: "count", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "completed live migrations between hosts",
	})
	MMigrationsAborted = metrics.Register(metrics.Desc{
		Name: "fleet_migrations_aborted", Unit: "count", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "live migrations aborted because the VM was torn down in flight",
	})
	// MUtilImbalance is the coefficient of variation of host admission
	// loads, averaged over the rebalance ticks inside the measurement
	// window: 0 when every host carries the same load fraction.
	MUtilImbalance = metrics.Register(metrics.Desc{
		Name: "fleet_util_imbalance", Unit: "index", Direction: metrics.LowerIsBetter,
		Agg: metrics.AggMean, Scope: metrics.PerRun,
		Help: "mean coefficient of variation of host admission loads",
	})
	// MTenantJain is Jain's index over per-tenant attained vCPU time
	// divided by tenant weight: 1 when every tenant got exactly its
	// proportional share.
	MTenantJain = metrics.Register(metrics.Desc{
		Name: "fleet_tenant_jain", Unit: "index", Direction: metrics.HigherIsBetter,
		Agg: metrics.AggIndex, Scope: metrics.PerRun,
		Help: "Jain fairness over per-tenant weighted attained vCPU time",
	})
	// MVMSeconds is the simulated VM-uptime integral (vCPUs × placed
	// lifetime) over the whole run — the deterministic half of the
	// "simulated VM-seconds per wall second" throughput headline (the
	// wall-clock half lives only in benchmarks; artifacts stay
	// bit-identical).
	MVMSeconds = metrics.Register(metrics.Desc{
		Name: "fleet_vm_seconds", Unit: "s", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "simulated vCPU-weighted VM uptime seconds over the run",
	})

	// --- Failure-injection metrics ------------------------------------------
	//
	// Only emitted when the spec carries a fault plan, so fault-free
	// artifacts keep their exact pre-fault bytes.

	MFaultsInjected = metrics.Register(metrics.Desc{
		Name: "fleet_faults_injected", Unit: "count", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "fault events fired (host crashes, degradations, injected migration failures)",
	})
	MMigrationFailures = metrics.Register(metrics.Desc{
		Name: "fleet_migration_failures", Unit: "count", Direction: metrics.LowerIsBetter,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "live migrations that failed (injected faults, dead destinations, crashed sources)",
	})
	MVMsLost = metrics.Register(metrics.Desc{
		Name: "fleet_vms_lost", Unit: "count", Direction: metrics.LowerIsBetter,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "crash victims dropped after the recovery policy exhausted its retries",
	})
	MVMsReplaced = metrics.Register(metrics.Desc{
		Name: "fleet_vms_replaced", Unit: "count", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "crash victims successfully re-placed by the recovery policy",
	})
	// MReplacementWait is the mean crash-to-re-placement latency over
	// replaced VMs — the recovery policy's headline responsiveness.
	MReplacementWait = metrics.Register(metrics.Desc{
		Name: "fleet_replacement_wait", Unit: "us", Direction: metrics.LowerIsBetter,
		Agg: metrics.AggMean, Scope: metrics.PerRun,
		Help: "mean wait from host crash to VM re-placement",
	})
	// MDowntimeVMSeconds integrates vCPUs × downtime over every crash
	// victim (to re-placement, or to run end when never re-placed) — the
	// graceful-degradation counterpart of fleet_vm_seconds.
	MDowntimeVMSeconds = metrics.Register(metrics.Desc{
		Name: "fleet_downtime_vm_seconds", Unit: "s", Direction: metrics.LowerIsBetter,
		Agg: metrics.AggCount, Scope: metrics.PerRun,
		Help: "vCPU-weighted downtime seconds of crash victims",
	})

	// --- Per-tenant measures (the fleet's "apps") ----------------------------

	MTenantVCPUSeconds = metrics.Register(metrics.Desc{
		Name: "tenant_vcpu_seconds", Unit: "s", Direction: metrics.DirNone,
		Agg: metrics.AggCount, Scope: metrics.PerApp,
		Help: "attained vCPU execution seconds of a tenant's VMs in the measurement window",
	})
	MTenantShare = metrics.Register(metrics.Desc{
		Name: "tenant_share", Unit: "frac", Direction: metrics.DirNone,
		Agg: metrics.AggFraction, Scope: metrics.PerApp,
		Help: "tenant's fraction of all attained vCPU time in the measurement window",
	})
)

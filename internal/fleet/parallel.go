// Epoch-parallel execution of one fleet run.
//
// A fleet run is one giant sweep cell, so sweep-level parallelism cannot
// touch it; this file shards the run itself across cores without giving
// up the bit-identical-at-any-workers guarantee. The enabling property
// is PR 6's isolation invariant: every host owns a private engine,
// topology, cache model, policy instance and RNG fork, and hosts only
// ever interact through the central (time, seq)-ordered timeline.
//
// Execution splits into epochs. All events sharing the next fleet
// timestamp t form one epoch: first every host advances its private
// engine to t on a bounded worker pool (the epoch barrier), then the
// epoch's events — and any same-time events they push, which carry
// higher sequence numbers — apply single-threaded in (time, seq) order.
// Eagerly advancing a host is observationally neutral: between fleet
// events nothing outside the host can observe or perturb its engine, so
// running it to t early fires exactly the engine events the lazy serial
// loop would fire at the host's next touch, in the same order, with the
// same state. Cross-host effects (placement, migration completion,
// crash/recovery, rebalance ticks) and every central RNG draw therefore
// happen exactly as in the serial loop, and all artifacts — fault
// schedules included — are byte-identical at any worker count.
package fleet

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"aqlsched/internal/sim"
)

// resolveWorkers picks the effective shard-worker count for one run:
// the explicit Options override first, then the spec's hint, then
// GOMAXPROCS; never more than one worker per host. A result of 1 means
// the serial loop runs (no pool, no barriers).
func resolveWorkers(opt, hint, hosts int) int {
	w := opt
	if w <= 0 {
		w = hint
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > hosts {
		w = hosts
	}
	if w < 1 {
		w = 1
	}
	return w
}

// advancePanic is one captured worker panic: which index raised it,
// the panic value, and the worker's stack at capture time.
type advancePanic struct {
	index int
	val   any
	stack []byte
}

// advancePool is a bounded pool of persistent worker goroutines driving
// the epoch barriers. One pool serves one Fleet run: barriers fire once
// per epoch, so workers are reused rather than respawned, and the pool
// is torn down with close when the run returns (panic or not).
type advancePool struct {
	workers int
	jobs    chan func()
	wg      sync.WaitGroup

	mu     sync.Mutex
	panics []advancePanic
}

func newAdvancePool(workers int) *advancePool {
	p := &advancePool{workers: workers, jobs: make(chan func(), workers)}
	for i := 0; i < workers; i++ {
		go func() {
			for fn := range p.jobs {
				fn()
			}
		}()
	}
	return p
}

// close releases the worker goroutines. The pool must be idle (no do in
// flight).
func (p *advancePool) close() { close(p.jobs) }

// do runs fn(i) for every i in [0, n) across the pool's workers and
// returns once all completed. Indices are handed out through an atomic
// cursor, so skewed per-index work self-balances instead of serializing
// behind a static partition. Worker panics are captured — the remaining
// indices still execute, keeping the barrier well-formed — and re-raised
// here; when several indices panic, the lowest one wins, so the surfaced
// failure does not depend on goroutine scheduling.
func (p *advancePool) do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	var cursor atomic.Int64
	workers := p.workers
	if workers > n {
		workers = n
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		p.jobs <- func() {
			defer p.wg.Done()
			for {
				i := int(cursor.Add(1) - 1)
				if i >= n {
					return
				}
				p.run(i, fn)
			}
		}
	}
	p.wg.Wait()
	if len(p.panics) == 0 {
		return
	}
	first := p.panics[0]
	for _, pc := range p.panics[1:] {
		if pc.index < first.index {
			first = pc
		}
	}
	p.panics = nil
	panic(fmt.Sprintf("fleet: parallel host advance panicked (host %d): %v\n%s",
		first.index, first.val, first.stack))
}

// run executes fn(i), converting a panic into a captured record so the
// worker survives and the barrier completes.
func (p *advancePool) run(i int, fn func(i int)) {
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			p.panics = append(p.panics, advancePanic{index: i, val: r, stack: debug.Stack()})
			p.mu.Unlock()
		}
	}()
	fn(i)
}

// advanceAll advances every host's private engine to t: the epoch
// barrier when a pool is armed, a plain loop otherwise (the measure-
// start barrier and the end-of-run drain share this path in both
// modes). Hosts already at (or past) t are skipped up front — an
// epoch's events usually touch a few hosts, so most engines are still
// current at the next barrier and scheduling pool jobs for them would
// be pure overhead. Hosts never share mutable state during advance —
// see the package comment above for why eager advancement is neutral.
func (f *Fleet) advanceAll(t sim.Time) {
	if f.pool == nil {
		for _, h := range f.Hosts {
			if h.Hyp.Engine.Now() >= t {
				continue
			}
			f.advances++
			h.advance(t)
		}
		return
	}
	stale := f.staleHosts(t)
	f.advances += len(stale)
	f.pool.do(len(stale), func(i int) { stale[i].advance(t) })
}

// staleHosts lists the hosts whose engines are strictly behind t, in
// host order.
func (f *Fleet) staleHosts(t sim.Time) []*Host {
	stale := make([]*Host, 0, len(f.Hosts))
	for _, h := range f.Hosts {
		if h.Hyp.Engine.Now() < t {
			stale = append(stale, h)
		}
	}
	return stale
}

// run drives the central timeline to the end of the measurement window
// and then drains every host to it.
func (f *Fleet) run() {
	if f.pool == nil {
		// Serial fast path (workers = 1): pop one event at a time, hosts
		// advance lazily when an event touches them — the pre-sharding
		// loop, kept verbatim so turning parallelism off costs nothing.
		for len(f.heap) > 0 {
			e := f.pop()
			if e.at > f.end {
				break
			}
			f.handle(e)
		}
	} else {
		for len(f.heap) > 0 {
			t := f.heap[0].at
			if t > f.end {
				break
			}
			f.advanceAll(t)
			// Apply the epoch's events in (time, seq) order. Handlers may
			// push same-time events (a retry, a degradation end); those
			// carry higher sequence numbers and are popped here too,
			// exactly as the serial loop would order them.
			for len(f.heap) > 0 && f.heap[0].at == t {
				f.handle(f.pop())
			}
		}
	}
	f.advanceAll(f.end)
}

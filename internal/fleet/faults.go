// Failure injection: the fault plan turns host crashes, transient
// degradation and migration failures into first-class fleet timeline
// events, and the recovery policy re-places the victims of a dead host
// through the regular Placement registry.
//
// Determinism mirrors the population split: the fault schedule (which
// host fails when, for how long) is a pure function of the plan and its
// seed (default GenSeed), so seed replications see the same storm; the
// probabilistic migration-failure draws come from a fork of the per-run
// simulation seed, consumed in central-timeline order. Nothing in this
// file reads the wall clock or shared mutable state, so fault-injected
// runs stay bit-identical at any sweep worker count.
package fleet

import (
	"fmt"
	"math"

	"aqlsched/internal/sim"
)

// Crash is one explicit host-crash event: the host dies at At, losing
// every resident VM, and rejoins the fleet Down later (Down 0 = the
// host never recovers).
type Crash struct {
	Host int
	At   sim.Time
	Down sim.Time
}

// Degrade is one explicit transient-degradation event: from At until
// At+For the host admits VMs only up to Factor × its nominal capacity
// (already-admitted VMs are not evicted; the host just stops accepting
// load it could no longer serve).
type Degrade struct {
	Host   int
	At     sim.Time
	For    sim.Time
	Factor float64
}

// Storm draws a Poisson schedule of fault events: arrivals at Rate per
// simulated second from Start until Horizon, each lasting an
// exponential MeanDown (floored at 1 ms), on a uniformly drawn host.
// For a degrade storm, Factor is the capacity multiplier applied for
// the event's duration. Max, when positive, caps the number of events.
type Storm struct {
	Rate     float64
	Start    sim.Time
	Horizon  sim.Time
	MeanDown sim.Time
	Factor   float64
	Max      int
}

// Recovery parameterizes the re-placement of VMs lost to a host crash:
// each victim retries admission through the placement policy after
// RetryDelay, backing off by Backoff× per failed attempt, up to
// MaxRetries retries. When retries are exhausted the admission decision
// applies: "requeue" (default) drops the VM into the regular placement
// queue to wait for capacity, "drop" gives up and counts it lost.
type Recovery struct {
	// MaxRetries bounds the backoff attempts (default 5).
	MaxRetries int
	// RetryDelay is the first retry's delay (default 10 ms).
	RetryDelay sim.Time
	// Backoff multiplies the delay per failed attempt (default 2).
	Backoff float64
	// OnExhaust is "requeue" or "drop" (default "requeue").
	OnExhaust string
}

func (r Recovery) withDefaults() Recovery {
	if r.MaxRetries == 0 {
		r.MaxRetries = 5
	}
	if r.RetryDelay <= 0 {
		r.RetryDelay = 10 * sim.Millisecond
	}
	if r.Backoff == 0 {
		r.Backoff = 2
	}
	if r.OnExhaust == "" {
		r.OnExhaust = "requeue"
	}
	return r
}

// FaultPlan is the spec-driven failure schedule of a fleet run:
// explicit and/or storm-drawn host crashes and degradations, a
// migration failure probability, and the recovery policy. The schedule
// expansion is a pure function of the plan and Seed, so replications
// of one spec share the storm exactly like they share the population.
type FaultPlan struct {
	// Seed drives the storm draws (default: the spec's GenSeed).
	Seed uint64
	// Crashes and Degrades are explicit, hand-placed events.
	Crashes  []Crash
	Degrades []Degrade
	// CrashStorm and DegradeStorm draw seeded random schedules.
	CrashStorm   *Storm
	DegradeStorm *Storm
	// MigFailProb fails each completing live migration with this
	// probability (the VM stays where it was; the reservation is
	// released).
	MigFailProb float64
	// Recovery re-places VMs lost to crashes.
	Recovery Recovery
}

func (p *FaultPlan) withDefaults(genSeed uint64) FaultPlan {
	out := *p
	if out.Seed == 0 {
		out.Seed = genSeed
	}
	out.Recovery = out.Recovery.withDefaults()
	return out
}

// maxStormEvents bounds the expected draw count of one storm so a typo
// ("rate_per_sec": 1e9) fails validation instead of expanding an
// astronomically long schedule.
const maxStormEvents = 1 << 16

func validStorm(name, kind string, s *Storm, degrade bool) error {
	if s.Rate <= 0 || math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0) {
		return fmt.Errorf("fleet %q: %s rate %v must be positive and finite", name, kind, s.Rate)
	}
	if s.Start < 0 || s.Horizon <= s.Start {
		return fmt.Errorf("fleet %q: %s horizon %v must exceed start %v", name, kind, s.Horizon, s.Start)
	}
	if s.MeanDown <= 0 {
		return fmt.Errorf("fleet %q: %s mean duration must be positive", name, kind)
	}
	if s.Max < 0 {
		return fmt.Errorf("fleet %q: %s event cap must be non-negative, got %d", name, kind, s.Max)
	}
	if expected := s.Rate * (s.Horizon - s.Start).Seconds(); expected > maxStormEvents {
		return fmt.Errorf("fleet %q: %s expects ~%.0f events, more than the %d sanity cap", name, kind, expected, maxStormEvents)
	}
	if degrade && (s.Factor <= 0 || s.Factor > 1 || math.IsNaN(s.Factor)) {
		return fmt.Errorf("fleet %q: %s capacity factor %v must be in (0, 1]", name, kind, s.Factor)
	}
	return nil
}

// validate rejects an unrunnable fault plan; hosts is the fleet size
// explicit events index into.
func (p *FaultPlan) validate(name string, hosts int) error {
	for i, c := range p.Crashes {
		if c.Host < 0 || c.Host >= hosts {
			return fmt.Errorf("fleet %q: crash %d targets host %d of %d", name, i, c.Host, hosts)
		}
		if c.At < 0 || c.Down < 0 {
			return fmt.Errorf("fleet %q: crash %d has a negative time", name, i)
		}
	}
	for i, d := range p.Degrades {
		if d.Host < 0 || d.Host >= hosts {
			return fmt.Errorf("fleet %q: degrade %d targets host %d of %d", name, i, d.Host, hosts)
		}
		if d.At < 0 || d.For <= 0 {
			return fmt.Errorf("fleet %q: degrade %d needs a non-negative start and a positive duration", name, i)
		}
		if d.Factor <= 0 || d.Factor > 1 || math.IsNaN(d.Factor) {
			return fmt.Errorf("fleet %q: degrade %d capacity factor %v must be in (0, 1]", name, i, d.Factor)
		}
	}
	if s := p.CrashStorm; s != nil {
		if err := validStorm(name, "crash storm", s, false); err != nil {
			return err
		}
	}
	if s := p.DegradeStorm; s != nil {
		if err := validStorm(name, "degrade storm", s, true); err != nil {
			return err
		}
	}
	if p.MigFailProb < 0 || p.MigFailProb > 1 || math.IsNaN(p.MigFailProb) {
		return fmt.Errorf("fleet %q: migration failure probability %v must be in [0, 1]", name, p.MigFailProb)
	}
	r := p.Recovery
	if r.MaxRetries < 0 {
		return fmt.Errorf("fleet %q: recovery retries must be non-negative, got %d", name, r.MaxRetries)
	}
	if r.RetryDelay < 0 {
		return fmt.Errorf("fleet %q: recovery retry delay must be non-negative, got %v", name, r.RetryDelay)
	}
	if r.Backoff != 0 && (r.Backoff < 1 || math.IsNaN(r.Backoff) || math.IsInf(r.Backoff, 0)) {
		return fmt.Errorf("fleet %q: recovery backoff factor %v must be ≥ 1", name, r.Backoff)
	}
	switch r.OnExhaust {
	case "", "requeue", "drop":
	default:
		return fmt.Errorf("fleet %q: recovery on-exhaust decision %q must be \"requeue\" or \"drop\"", name, r.OnExhaust)
	}
	return nil
}

// faultEvent is one expanded entry of the fault schedule.
type faultEvent struct {
	at     sim.Time
	crash  bool // crash vs degrade
	host   int
	dur    sim.Time // downtime (0 = permanent) or degrade duration
	factor float64  // degrade capacity multiplier
}

// stormDraws expands one storm into events; pure function of the rng
// stream it is handed.
func stormDraws(s *Storm, hosts int, crash bool, rng *sim.RNG) []faultEvent {
	var out []faultEvent
	meanInter := sim.Time(float64(sim.Second) / s.Rate)
	at := s.Start
	for k := 0; s.Max == 0 || k < s.Max; k++ {
		at += rng.ExpTime(meanInter)
		if at >= s.Horizon {
			break
		}
		dur := rng.ExpTime(s.MeanDown)
		if dur < sim.Millisecond {
			dur = sim.Millisecond
		}
		out = append(out, faultEvent{
			at: at, crash: crash, host: rng.Intn(hosts), dur: dur, factor: s.Factor,
		})
	}
	return out
}

// timeline expands the plan (with defaults applied) into its event
// schedule: explicit crashes, storm crashes, explicit degradations,
// storm degradations, in that push order. It is a pure function of the
// plan — the fleet pushes the events onto the central (time, seq)
// timeline, which orders same-time faults deterministically.
func (p *FaultPlan) timeline(hosts int) []faultEvent {
	var out []faultEvent
	for _, c := range p.Crashes {
		out = append(out, faultEvent{at: c.At, crash: true, host: c.Host, dur: c.Down})
	}
	if s := p.CrashStorm; s != nil {
		out = append(out, stormDraws(s, hosts, true, sim.NewRNG(p.Seed).Fork(0xFA17))...)
	}
	for _, d := range p.Degrades {
		out = append(out, faultEvent{at: d.At, host: d.Host, dur: d.For, factor: d.Factor})
	}
	if s := p.DegradeStorm; s != nil {
		out = append(out, stormDraws(s, hosts, false, sim.NewRNG(p.Seed).Fork(0xDE64))...)
	}
	return out
}

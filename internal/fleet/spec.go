// Package fleet scales the paper's single-host simulation out to a
// simulated datacenter: N hosts, each wrapping its own topology,
// hypervisor and scheduling policy, run under one fleet-level simulated
// clock. VM arrivals are placed onto hosts by pluggable placement
// policies, and a rebalancer live-migrates VMs between hosts when the
// admission-load imbalance crosses a threshold.
//
// Determinism is inherited from the layers below and preserved at the
// merge points: every cross-host event (arrival, departure, migration
// completion, rebalance tick) lives on one central timeline ordered by
// (time, sequence), hosts advance their private engines only to event
// times that concern them, and every random draw forks from either the
// population seed (the VM timeline) or the run seed (per-host
// simulation) by fixed labels. The same Spec therefore produces
// bit-identical results for any sweep worker count — and, because the
// epoch-parallel run loop (parallel.go) only moves host-private engine
// work onto worker goroutines between central events, for any intra-run
// shard-worker count too.
package fleet

import (
	"fmt"
	"math"
	"sort"

	"aqlsched/internal/hw"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/workload"
)

// Sanity caps on spec sizes: a typo (or a fuzzer) asking for a billion
// hosts should fail validation, not exhaust memory building them.
const (
	maxHosts      = 1 << 14 // 16,384 hosts
	maxFleetVCPUs = 1 << 17 // 131,072 vCPUs of initial population
)

// Tenant is one proportional-share owner of fleet VMs. Weights drive
// both the tenant-fairshare placement policy and the per-tenant
// fairness metrics.
type Tenant struct {
	Name   string
	Weight float64
}

// Rebalance parameterizes the live-migration trigger: every Every the
// fleet compares host admission loads (committed vCPUs over capacity)
// and, while the max-min gap exceeds Threshold, moves one fitting VM
// from the most to the least loaded host. A migration holds capacity on
// both hosts for MigrationTime before completing.
type Rebalance struct {
	// Every is the tick period (default 250 ms).
	Every sim.Time
	// Threshold is the load-fraction gap that triggers a migration
	// (default 0.25; set ≥ 1 to disable migrations in a fully packed
	// fleet).
	Threshold float64
	// MigrationTime models the live-migration transfer (default 40 ms).
	MigrationTime sim.Time
	// MaxPerTick bounds migrations initiated per tick (default 2).
	MaxPerTick int
}

func (r Rebalance) withDefaults() Rebalance {
	if r.Every <= 0 {
		r.Every = 250 * sim.Millisecond
	}
	if r.Threshold == 0 {
		r.Threshold = 0.25
	}
	if r.MigrationTime <= 0 {
		r.MigrationTime = 40 * sim.Millisecond
	}
	if r.MaxPerTick <= 0 {
		r.MaxPerTick = 2
	}
	return r
}

// VMSpec is one VM on the fleet timeline: when it arrives, what it
// runs, whom it belongs to, and how long it lives once placed.
type VMSpec struct {
	// ArriveAt is when the VM enters the placement queue (0 = initial
	// population, admitted at simulation start in slice order).
	ArriveAt sim.Time
	// Lifetime, when positive, tears the VM down that long after
	// placement (not after arrival: a VM that waited in the queue still
	// gets its full lifetime).
	Lifetime sim.Time
	// Tenant indexes Spec.Tenants.
	Tenant int
	// App is the workload the VM runs.
	App workload.AppSpec
}

// VCPUs reports the VM's vCPU demand (the admission unit).
func (v VMSpec) VCPUs() int { return scenario.VCPUsOf(v.App) }

// Spec describes a fleet run: the machines, the VM population and
// churn, the placement policy and the rebalancer. Like the scenario
// generator, the VM timeline is a pure function of GenSeed — identical
// across seed replications, so baseline normalization pairs runs over
// the same population — while Seed drives the per-host simulations and
// varies per run.
type Spec struct {
	Name string
	// Hosts is the number of hosts (≥ 1).
	Hosts int
	// Topo is the per-host machine (nil = i7-3770). Every host runs a
	// fresh copy.
	Topo *hw.Topology
	// OverSub is the admission ratio: each host accepts up to
	// TotalPCPUs · OverSub vCPUs (default 3).
	OverSub float64
	// Placement names the placement policy (default "least-loaded").
	Placement string
	// Tenants lists the VM owners (default one tenant "t0", weight 1).
	Tenants []Tenant
	// VCPUs is the initial population's vCPU budget across the fleet.
	VCPUs int
	// Mix weights the generated VM types (required unless Explicit is
	// set).
	Mix map[string]float64
	// Gen bounds the per-type knob draws (nil = workload defaults).
	Gen *workload.GenConfig
	// Churn adds Poisson VM arrivals with exponential lifetimes, drawn
	// from GenSeed exactly like the scenario generator's churn.
	Churn *scenario.ChurnSpec
	// Rebalance parameterizes the migration trigger.
	Rebalance Rebalance
	// Faults, when non-nil, injects host crashes, transient degradation
	// and migration failures on a seeded schedule (see FaultPlan).
	Faults *FaultPlan
	// Workers is an execution hint: the shard-worker count for this
	// fleet's run loop (0 = GOMAXPROCS, 1 = serial; Options.Workers
	// overrides it). It never influences results — artifacts are
	// byte-identical at any value — it only tunes how many cores one
	// run may use, e.g. from a spec file's {"fleet": {"workers": N}}.
	Workers int
	// Warmup and Measure window the run (defaults 500 ms / 1 s).
	Warmup  sim.Time
	Measure sim.Time
	// Seed is the per-run simulation seed (sweeps override it per run).
	Seed uint64
	// GenSeed drives the population draws (default: Seed of the spec as
	// written — sweeps leave it alone so replications share the
	// population).
	GenSeed uint64
	// Explicit, when non-empty, is the exact VM timeline (tests and
	// hand-authored fleets); no population is generated and Mix/VCPUs/
	// Churn are ignored.
	Explicit []VMSpec
}

func (s *Spec) withDefaults() Spec {
	out := *s
	if out.Topo == nil {
		out.Topo = hw.I73770()
	}
	if out.OverSub == 0 {
		out.OverSub = 3
	}
	if out.Placement == "" {
		out.Placement = "least-loaded"
	}
	if len(out.Tenants) == 0 {
		out.Tenants = []Tenant{{Name: "t0", Weight: 1}}
	}
	if out.Warmup == 0 {
		out.Warmup = 500 * sim.Millisecond
	}
	if out.Measure == 0 {
		out.Measure = 1 * sim.Second
	}
	if out.GenSeed == 0 {
		out.GenSeed = out.Seed
	}
	out.Rebalance = out.Rebalance.withDefaults()
	return out
}

// Validate reports an error for an unrunnable fleet spec. The sweep
// spec-file layer calls it (plus a trial GenVMs) at parse time, so a
// bad fleet block fails the load, not the run.
func (s *Spec) Validate() error {
	name := s.Name
	if name == "" {
		name = "fleet"
	}
	if s.Hosts < 1 {
		return fmt.Errorf("fleet %q: needs at least one host, got %d", name, s.Hosts)
	}
	if s.Hosts > maxHosts {
		return fmt.Errorf("fleet %q: %d hosts exceeds the %d sanity cap", name, s.Hosts, maxHosts)
	}
	if s.Topo != nil {
		if err := s.Topo.Validate(); err != nil {
			return fmt.Errorf("fleet %q: %v", name, err)
		}
	}
	if s.OverSub < 0 || math.IsNaN(s.OverSub) || math.IsInf(s.OverSub, 0) {
		return fmt.Errorf("fleet %q: over-subscription ratio %v must be positive", name, s.OverSub)
	}
	if p := s.Placement; p != "" && !Placements.Has(p) {
		return fmt.Errorf("fleet %q: unknown placement policy %q (known: %v)", name, p, Placements.Names())
	}
	if s.Workers < 0 {
		return fmt.Errorf("fleet %q: workers hint must be non-negative, got %d", name, s.Workers)
	}
	seen := map[string]bool{}
	for i, t := range s.Tenants {
		if t.Name == "" {
			return fmt.Errorf("fleet %q: tenant %d has no name", name, i)
		}
		if seen[t.Name] {
			return fmt.Errorf("fleet %q: duplicate tenant %q", name, t.Name)
		}
		seen[t.Name] = true
		if t.Weight <= 0 || math.IsNaN(t.Weight) || math.IsInf(t.Weight, 0) {
			return fmt.Errorf("fleet %q: tenant %q weight %v must be positive and finite", name, t.Name, t.Weight)
		}
	}
	if s.Faults != nil {
		if err := s.Faults.validate(name, s.Hosts); err != nil {
			return err
		}
	}
	if len(s.Explicit) > 0 {
		nt := len(s.Tenants)
		if nt == 0 {
			nt = 1 // the default tenant
		}
		for i, v := range s.Explicit {
			if v.Tenant < 0 || v.Tenant >= nt {
				return fmt.Errorf("fleet %q: explicit VM %d references tenant %d of %d", name, i, v.Tenant, nt)
			}
			if v.ArriveAt < 0 || v.Lifetime < 0 {
				return fmt.Errorf("fleet %q: explicit VM %d has a negative arrival or lifetime", name, i)
			}
		}
		return nil
	}
	if s.VCPUs < 1 {
		return fmt.Errorf("fleet %q: initial population vCPU budget must be ≥ 1, got %d", name, s.VCPUs)
	}
	if s.VCPUs > maxFleetVCPUs {
		return fmt.Errorf("fleet %q: population budget %d vCPUs exceeds the %d sanity cap", name, s.VCPUs, maxFleetVCPUs)
	}
	if _, err := scenario.ParseMix(s.Mix); err != nil {
		return fmt.Errorf("fleet %q: %v", name, err)
	}
	if c := s.Churn; c != nil {
		// Reuse the generator's churn validation via a minimal GenSpec.
		probe := scenario.GenSpec{Name: name, VCPUs: s.VCPUs, Churn: c}
		probe.Mix, _ = scenario.ParseMix(s.Mix)
		if err := probe.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// GenVMs expands the spec into its VM timeline, sorted by arrival (the
// initial population first, in draw order). It is a pure function of
// the spec and GenSeed.
func (s *Spec) GenVMs() ([]VMSpec, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sp := s.withDefaults()
	if len(sp.Explicit) > 0 {
		out := append([]VMSpec(nil), sp.Explicit...)
		sort.SliceStable(out, func(i, j int) bool { return out[i].ArriveAt < out[j].ArriveAt })
		return out, nil
	}

	mix, err := scenario.ParseMix(sp.Mix)
	if err != nil {
		return nil, err
	}
	cfg := workload.DefaultGenConfig()
	if sp.Gen != nil {
		cfg = *sp.Gen
	}
	topo := *sp.Topo // drawers size working sets off a private copy
	md := scenario.NewMixDrawer(mix, cfg, &topo)

	// Tenant weights, cumulative in declaration order.
	var tcum []float64
	ttotal := 0.0
	for _, t := range sp.Tenants {
		ttotal += t.Weight
		tcum = append(tcum, ttotal)
	}
	drawTenant := func(rng *sim.RNG) int {
		u := rng.Float64() * ttotal
		for i, c := range tcum {
			if u < c {
				return i
			}
		}
		return len(tcum) - 1
	}

	var out []VMSpec
	// Initial population: the same fork label the scenario generator
	// uses for standing populations.
	prng := sim.NewRNG(sp.GenSeed).Fork(0x5CE0)
	budget := sp.VCPUs
	for i := 0; budget > 0; i++ {
		tenant := drawTenant(prng)
		app := md.Draw(prng, uint64(i))
		if app.Kind == workload.KindLock && app.Threads > budget {
			app.Threads = budget
		}
		app.Name = fmt.Sprintf("%s-%02d", app.Name, i)
		budget -= scenario.VCPUsOf(app)
		out = append(out, VMSpec{Tenant: tenant, App: app})
	}

	// Churn: Poisson arrivals with exponential lifetimes from the
	// generator's churn fork label — adding churn never perturbs the
	// standing population's draws.
	if sp.Churn != nil {
		c := *sp.Churn
		if c.Start == 0 {
			c.Start = 50 * sim.Millisecond
		}
		if c.MinLifetime == 0 {
			c.MinLifetime = 200 * sim.Millisecond
		}
		crng := sim.NewRNG(sp.GenSeed).Fork(0xC4A2)
		meanInter := sim.Time(float64(sim.Second) / c.Rate)
		at := c.Start
		for k := 0; c.MaxVMs == 0 || k < c.MaxVMs; k++ {
			at += crng.ExpTime(meanInter)
			if at >= c.Horizon {
				break
			}
			tenant := drawTenant(crng)
			app := md.Draw(crng, uint64(k)+0x11)
			app.Name = fmt.Sprintf("chn%02d-%s", k, app.Name)
			life := crng.ExpTime(c.MeanLifetime)
			if life < c.MinLifetime {
				life = c.MinLifetime
			}
			out = append(out, VMSpec{ArriveAt: at, Lifetime: life, Tenant: tenant, App: app})
		}
	}
	return out, nil
}

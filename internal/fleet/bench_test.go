package fleet

import (
	"testing"

	"aqlsched/internal/sim"
)

// BenchmarkFleetEventLoop isolates the central heap's push/pop cost
// from the simulation itself: a preallocated Fleet heap absorbs 4096
// events with RNG-drawn timestamps per iteration and drains them back
// in (time, seq) order. With the spec-derived preallocation in Run the
// steady state is zero allocations per event.
func BenchmarkFleetEventLoop(b *testing.B) {
	const n = 4096
	f := &Fleet{heap: make([]event, 0, n)}
	rng := sim.NewRNG(1)
	times := make([]sim.Time, n)
	for i := range times {
		times[i] = rng.UniformTime(0, sim.Second)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, at := range times {
			f.push(event{at: at, kind: evTick})
		}
		prev := sim.Time(-1)
		for len(f.heap) > 0 {
			e := f.pop()
			if e.at < prev {
				b.Fatal("heap order violated")
			}
			prev = e.at
		}
	}
}

package fleet

import (
	"encoding/json"
	"testing"

	"aqlsched/internal/sim"
)

// FuzzFleetValidate feeds arbitrary JSON into a fleet Spec and runs
// validation. The property under test: Validate never panics, never
// hangs, and anything it accepts can be expanded into a fault timeline
// without blowing up — the sanity caps (host count, vCPU budget, storm
// event count) must reject absurd inputs instead of letting them
// exhaust memory.
func FuzzFleetValidate(f *testing.F) {
	seed := func(s Spec) {
		data, err := json.Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seed(Spec{Name: "gen", Hosts: 4, VCPUs: 48, Mix: map[string]float64{"LLCF": 1}})
	seed(Spec{
		Name: "faulty", Hosts: 8, OverSub: 2, Placement: "bin-pack",
		VCPUs: 64, Mix: map[string]float64{"LLCF": 2, "ConSpin": 1},
		Faults: &FaultPlan{
			Crashes:  []Crash{{Host: 3, At: 10 * sim.Millisecond, Down: 50 * sim.Millisecond}},
			Degrades: []Degrade{{Host: 1, For: 20 * sim.Millisecond, Factor: 0.5}},
			CrashStorm: &Storm{
				Rate: 5, Horizon: 500 * sim.Millisecond, MeanDown: 40 * sim.Millisecond,
			},
			MigFailProb: 0.25,
			Recovery:    Recovery{MaxRetries: 3, RetryDelay: 5 * sim.Millisecond, Backoff: 2, OnExhaust: "drop"},
		},
	})
	f.Add([]byte(`{"Hosts": -1}`))
	f.Add([]byte(`{"Hosts": 1000000, "VCPUs": 1000000000}`))
	f.Add([]byte(`{"Hosts": 2, "Faults": {"CrashStorm": {"Rate": 1e18, "Horizon": 1000000000}}}`))
	f.Add([]byte(`{"Hosts": 2, "Faults": {"Recovery": {"Backoff": -3}}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Spec
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			return
		}
		// Accepted: the fault timeline must expand within the caps.
		if s.Faults != nil {
			plan := s.Faults.withDefaults(s.GenSeed)
			if evs := plan.timeline(s.Hosts); len(evs) > 2*maxStormEvents+len(plan.Crashes)+len(plan.Degrades) {
				t.Fatalf("timeline expanded to %d events past the caps", len(evs))
			}
		}
	})
}

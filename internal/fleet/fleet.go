package fleet

import (
	"fmt"
	"math"

	"aqlsched/internal/baselines"
	"aqlsched/internal/credit"
	"aqlsched/internal/metrics"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

// Host is one machine of the fleet: a private hypervisor (with its own
// engine, scheduler and policy instance) plus the fleet-level admission
// state. Host engines advance independently between fleet events, so
// they never observe each other's intermediate state — the property
// the epoch-parallel run loop in parallel.go builds on.
type Host struct {
	ID  int
	Hyp *xen.Hypervisor
	// Pol is the per-host scheduling policy instance (the sweep's
	// policy axis: xen, aql, fixed:<q>, ...).
	Pol scenario.Policy

	deployRNG *sim.RNG
	capacity  int
	committed int // admitted vCPUs, including in-flight migration reservations
	reserved  int // the reservation share of committed (incoming migrations)
	vms       []*VM

	// Fault state: a down host admits nothing until it recovers; a
	// degraded host admits only up to factor × capacity. Both stay at
	// their healthy values (false, 1) unless the spec carries a fault
	// plan, so fault-free runs are bit-identical to pre-fault builds.
	down       bool
	factor     float64
	degradeGen int
}

// Capacity is the host's nominal admission limit in vCPUs.
func (h *Host) Capacity() int { return h.capacity }

// EffCapacity is the current admission limit: nominal capacity scaled
// by the active degradation factor (0 while the host is down).
func (h *Host) EffCapacity() int {
	if h.down {
		return 0
	}
	return int(math.Floor(float64(h.capacity) * h.factor))
}

// Down reports whether the host is crashed right now.
func (h *Host) Down() bool { return h.down }

// Degraded reports whether a capacity degradation is active.
func (h *Host) Degraded() bool { return h.factor < 1 }

// Committed is the host's admitted vCPU count (reservations included).
func (h *Host) Committed() int { return h.committed }

// Load is the host's admission-load fraction.
func (h *Host) Load() float64 { return float64(h.committed) / float64(h.capacity) }

// VMs lists the VMs resident on the host; callers must not mutate it.
func (h *Host) VMs() []*VM { return h.vms }

// advance runs the host's private engine up to the fleet time t.
func (h *Host) advance(t sim.Time) {
	if t > h.Hyp.Engine.Now() {
		h.Hyp.Run(t)
	}
}

// VM is one fleet VM over its whole life: queued, placed, possibly
// migrated, possibly departed.
type VM struct {
	ID int
	VMSpec

	// PlacedAt is when placement admitted the VM (meaningful once
	// Placed).
	PlacedAt sim.Time
	Placed   bool
	Gone     bool

	host      *Host
	dep       *workload.Deployment
	migrating bool
	// runCarried accumulates attained vCPU time from hosts the VM
	// already left (live migrations fold the old deployment's runtime
	// in here before redeploying).
	runCarried sim.Time
	// baseRun is the attained-time watermark at measurement start.
	baseRun sim.Time

	// gen is the placement-stint epoch: bumped on every (re)placement
	// and on crash-eviction, so timeline events scheduled against an
	// earlier stint (the old departure, a migration completion) detect
	// they are stale and clean up instead of acting.
	gen int
	// Crash-recovery state: waitRepl marks a crash victim not yet
	// re-placed (crashedAt anchors its downtime), retries counts failed
	// re-placement attempts, remaining is the unserved share of
	// Lifetime at crash time.
	waitRepl  bool
	crashedAt sim.Time
	retries   int
	remaining sim.Time
}

// Host reports where the VM currently runs (nil while queued or gone).
func (v *VM) Host() *Host { return v.host }

// Migrating reports whether a live migration is in flight.
func (v *VM) Migrating() bool { return v.migrating }

// --- Central event timeline ------------------------------------------------

type eventKind uint8

const (
	evArrive eventKind = iota
	evMeasureStart
	evTick
	evDepart
	evMigDone
	evCrash
	evRecover
	evDegrade
	evDegradeEnd
	evRetry
)

// event is one entry of the fleet timeline. Events are ordered by
// (at, seq): seq is assigned in push order, so same-time events fire in
// a deterministic schedule order regardless of heap internals.
type event struct {
	at       sim.Time
	seq      int
	kind     eventKind
	vm       *VM
	src, dst *Host // migration endpoints (evMigDone); src doubles as the fault target host
	// gen pins the event to a VM placement stint (evDepart, evMigDone,
	// evRetry) or a degradation episode (evDegradeEnd); a mismatch at
	// fire time means the world moved on and the event is stale.
	gen    int
	dur    sim.Time // crash downtime / degrade duration
	factor float64  // degrade capacity multiplier
}

func (f *Fleet) push(e event) {
	e.seq = f.seq
	f.seq++
	f.heap = append(f.heap, e)
	i := len(f.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(f.heap[i], f.heap[p]) {
			break
		}
		f.heap[i], f.heap[p] = f.heap[p], f.heap[i]
		i = p
	}
}

func (f *Fleet) pop() event {
	top := f.heap[0]
	last := len(f.heap) - 1
	f.heap[0] = f.heap[last]
	f.heap = f.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && eventLess(f.heap[l], f.heap[s]) {
			s = l
		}
		if r < last && eventLess(f.heap[r], f.heap[s]) {
			s = r
		}
		if s == i {
			break
		}
		f.heap[i], f.heap[s] = f.heap[s], f.heap[i]
		i = s
	}
	return top
}

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// --- Fleet -----------------------------------------------------------------

// Fleet is one running (or finished) fleet simulation. Tests and
// diagnostics may inspect it through Result.Fleet; sweep artifacts only
// ever see the metric Sets.
type Fleet struct {
	Spec    Spec
	Tenants []Tenant
	Hosts   []*Host
	VMs     []*VM

	placer  Placement
	pending []*VM
	// tenantCommitted tracks admitted vCPUs per tenant (placement
	// fairness state; reservations excluded).
	tenantCommitted []int

	warmup, end sim.Time

	heap []event
	seq  int

	// pool, when non-nil, shards per-host engine advancement across
	// worker goroutines at every epoch barrier (see parallel.go). It is
	// execution machinery only: results are byte-identical with or
	// without it.
	pool *advancePool
	// advances counts per-host advance calls actually issued by the
	// epoch barriers — hosts already at the barrier time are skipped, so
	// this is an efficiency probe for advanceAll, not a result metric.
	advances int

	// Fault state: faults is the plan with defaults applied (nil when
	// the spec injects none); faultRNG drives the per-run migration
	// failure draws, consumed in central-timeline order.
	faults   *FaultPlan
	faultRNG *sim.RNG

	// counters and accumulators
	placements, migrations, aborted int
	waitSum                         sim.Time
	imbSum                          float64
	imbN                            int
	vmSeconds                       float64
	tenantAttained                  []float64
	tenantShares                    [][]float64

	// fault counters
	faultsInjected, migFailures int
	vmsLost, vmsReplaced        int
	replWaitSum                 sim.Time
	downtimeVMSec               float64
}

// Options tunes execution. Everything here is per-run state the sweep
// layer provides; none of it may influence results across runs.
type Options struct {
	// NewPolicy builds one fresh per-host scheduling policy instance
	// (nil = the unmodified credit scheduler). Each host gets its own
	// instance so policies that capture controllers stay host-local.
	NewPolicy func() scenario.Policy
	// Workers bounds the shard-worker pool advancing host engines in
	// parallel between fleet events (0 = the spec's Workers hint, else
	// GOMAXPROCS; 1 = the serial loop; capped at the host count).
	// Results are byte-identical at any value.
	Workers int
}

// Result is one executed fleet run: per-tenant measures (the fleet's
// "apps") plus the run-scoped fleet metric Set, both flowing through
// the registry exactly like single-host scenario results.
type Result struct {
	Spec    Spec
	Policy  string
	Apps    []scenario.AppMeasure
	Metrics metrics.Set
	// Fleet keeps the full simulation state for tests and diagnostics.
	Fleet *Fleet
}

// Run executes the fleet spec. It panics on an invalid spec (the sweep
// spec-file layer validates at parse time; the sweep executor converts
// panics into run errors).
func Run(spec Spec, opts Options) *Result {
	vms, err := spec.GenVMs()
	if err != nil {
		panic(err.Error())
	}
	sp := spec.withDefaults()
	newPol := opts.NewPolicy
	if newPol == nil {
		newPol = func() scenario.Policy { return baselines.XenDefault{} }
	}

	f := &Fleet{
		Spec:            sp,
		Tenants:         sp.Tenants,
		warmup:          sp.Warmup,
		end:             sp.Warmup + sp.Measure,
		tenantCommitted: make([]int, len(sp.Tenants)),
		tenantAttained:  make([]float64, len(sp.Tenants)),
		tenantShares:    make([][]float64, len(sp.Tenants)),
	}
	f.placer, err = PlacementByName(sp.Placement)
	if err != nil {
		panic(err.Error())
	}

	capacity := int(math.Round(float64(sp.Topo.TotalPCPUs()) * sp.OverSub))
	if capacity < 1 {
		capacity = 1
	}
	var polName string
	for i := 0; i < sp.Hosts; i++ {
		// Every host owns an independent seed forked from the run seed
		// by its ID, and a deploy RNG split exactly like scenario.Run's.
		hostSeed := sim.NewRNG(sp.Seed).Fork(0xF1E7 + uint64(i)).Uint64()
		topo := *sp.Topo // fresh copy: hosts must not share cache models
		hyp := xen.New(&topo, credit.New(), hostSeed)
		pol := newPol()
		pol.Setup(hyp, nil)
		polName = pol.Name()
		f.Hosts = append(f.Hosts, &Host{
			ID:        i,
			Hyp:       hyp,
			Pol:       pol,
			deployRNG: sim.NewRNG(hostSeed + 0x9e37),
			capacity:  capacity,
			factor:    1,
		})
	}

	var faultTimeline []faultEvent
	if sp.Faults != nil {
		fp := sp.Faults.withDefaults(sp.GenSeed)
		f.faults = &fp
		f.faultRNG = sim.NewRNG(sp.Seed).Fork(0xFA11)
		faultTimeline = f.faults.timeline(sp.Hosts)
	}

	// Size the timeline heap and VM table from the spec-derived event
	// counts: every arrival, its eventual departure, the measure-start
	// barrier, the rebalance ticks and the fault schedule are known up
	// front, so the heap never regrows during the initial burst.
	ticks := 0
	if sp.Rebalance.Every > 0 {
		ticks = int(f.end / sp.Rebalance.Every)
	}
	f.heap = make([]event, 0, 2*len(vms)+ticks+len(faultTimeline)+1)
	f.VMs = make([]*VM, 0, len(vms))
	f.pending = make([]*VM, 0, len(vms))

	for i := range vms {
		vm := &VM{ID: i, VMSpec: vms[i]}
		f.VMs = append(f.VMs, vm)
		f.push(event{at: vm.ArriveAt, kind: evArrive, vm: vm})
	}
	f.push(event{at: f.warmup, kind: evMeasureStart})
	for t := sp.Rebalance.Every; t < f.end; t += sp.Rebalance.Every {
		f.push(event{at: t, kind: evTick})
	}
	for _, fe := range faultTimeline {
		kind := evDegrade
		if fe.crash {
			kind = evCrash
		}
		f.push(event{at: fe.at, kind: kind, src: f.Hosts[fe.host], dur: fe.dur, factor: fe.factor})
	}

	if workers := resolveWorkers(opts.Workers, sp.Workers, sp.Hosts); workers > 1 {
		pool := newAdvancePool(workers)
		f.pool = pool
		// Release the workers on every exit path (including a propagated
		// host panic) and detach the pool: the Fleet outlives Run inside
		// Result.Fleet, and nothing after this point may use barriers.
		defer func() {
			f.pool = nil
			pool.close()
		}()
	}
	f.run()
	for _, vm := range f.VMs {
		if vm.Placed && !vm.Gone {
			f.settle(vm, f.end)
			f.vmSeconds += float64(vm.VCPUs()) * seconds(f.end-vm.PlacedAt)
		}
		// Crash victims never re-placed (still backing off, requeued, or
		// dropped) were down from the crash to the end of the run.
		if vm.waitRepl {
			f.downtimeVMSec += float64(vm.VCPUs()) * seconds(f.end-vm.crashedAt)
		}
	}

	return f.collect(polName)
}

func (f *Fleet) handle(e event) {
	switch e.kind {
	case evArrive:
		f.pending = append(f.pending, e.vm)
		f.drain(e.at)

	case evMeasureStart:
		// One global barrier: every host advances to the window edge so
		// attained-time watermarks are read at one consistent instant.
		// (In epoch mode the epoch barrier already did this; these
		// advances are then no-ops.)
		f.advanceAll(e.at)
		for _, vm := range f.VMs {
			if vm.Placed && !vm.Gone {
				vm.baseRun = f.attained(vm, e.at)
			}
		}

	case evTick:
		f.rebalance(e.at)
		if e.at >= f.warmup {
			f.imbSum += f.imbalance()
			f.imbN++
		}

	case evDepart:
		vm := e.vm
		if vm.Gone || e.gen != vm.gen {
			// Stale: the VM already departed, or this departure belongs to
			// a placement stint a crash has since ended.
			return
		}
		h := vm.host
		h.advance(e.at)
		h.Hyp.DestroyDomain(vm.dep.Dom, e.at)
		f.settle(vm, e.at)
		f.vmSeconds += float64(vm.VCPUs()) * seconds(e.at-vm.PlacedAt)
		vm.Gone = true
		h.committed -= vm.VCPUs()
		f.tenantCommitted[vm.Tenant] -= vm.VCPUs()
		removeVM(h, vm)
		// A departure mid-migration leaves the destination reservation
		// in place; the migration-done event releases it as an abort.
		f.drain(e.at)

	case evMigDone:
		vm, src, dst := e.vm, e.src, e.dst
		dst.reserved -= vm.VCPUs()
		if vm.Gone {
			// Torn down in flight: release the reservation, nothing moved.
			dst.committed -= vm.VCPUs()
			f.aborted++
			f.drain(e.at)
			return
		}
		if e.gen != vm.gen {
			// The source host crashed mid-transfer and the VM went back
			// through recovery: the copy in flight is worthless. Release
			// the reservation and count a failed migration.
			dst.committed -= vm.VCPUs()
			f.migFailures++
			f.drain(e.at)
			return
		}
		if dst.down {
			// The destination died while the transfer ran: the VM keeps
			// running where it was.
			dst.committed -= vm.VCPUs()
			vm.migrating = false
			f.migFailures++
			f.drain(e.at)
			return
		}
		if f.faults != nil && f.faults.MigFailProb > 0 && f.faultRNG.Float64() < f.faults.MigFailProb {
			// Injected transfer failure (dirty-page copy never converged,
			// network fault, ...): same outcome as a dead destination.
			dst.committed -= vm.VCPUs()
			vm.migrating = false
			f.migFailures++
			f.faultsInjected++
			f.drain(e.at)
			return
		}
		vm.migrating = false
		src.advance(e.at)
		dst.advance(e.at)
		src.Hyp.DestroyDomain(vm.dep.Dom, e.at)
		vm.runCarried = f.attained(vm, e.at)
		src.committed -= vm.VCPUs()
		removeVM(src, vm)
		vm.host = dst
		dst.vms = append(dst.vms, vm)
		vm.dep = workload.Deploy(dst.Hyp, vm.App, fmt.Sprintf("v%d", vm.ID), dst.deployRNG)
		f.migrations++
		f.drain(e.at)

	case evCrash:
		f.crash(e.src, e.at, e.dur)

	case evRecover:
		h := e.src
		if !h.down {
			return
		}
		h.down = false
		f.drain(e.at)

	case evDegrade:
		h := e.src
		h.factor = e.factor
		h.degradeGen++
		f.faultsInjected++
		f.push(event{at: e.at + e.dur, kind: evDegradeEnd, src: h, gen: h.degradeGen})

	case evDegradeEnd:
		h := e.src
		if e.gen != h.degradeGen {
			return // a newer degradation superseded this one
		}
		h.factor = 1
		f.drain(e.at)

	case evRetry:
		vm := e.vm
		if vm.Gone || e.gen != vm.gen {
			return
		}
		if vi, h, ok := f.placer.Choose(f, []*VM{vm}); ok && vi == 0 {
			f.place(vm, h, e.at)
			f.drain(e.at)
			return
		}
		vm.retries++
		rec := f.faults.Recovery
		if vm.retries > rec.MaxRetries {
			if rec.OnExhaust == "drop" {
				vm.Gone = true
				f.vmsLost++
			} else {
				// Requeue: the victim joins the tail of the regular
				// placement queue and waits for capacity like any arrival.
				f.pending = append(f.pending, vm)
			}
			return
		}
		f.scheduleRetry(vm, e.at)
	}
}

// crash kills a host: every resident VM is lost and handed to the
// recovery policy, admissions stop until the host recovers (never, when
// down is 0). A second crash on an already-down host is a no-op.
func (f *Fleet) crash(h *Host, now sim.Time, down sim.Time) {
	if h.down {
		return
	}
	h.advance(now)
	h.down = true
	f.faultsInjected++
	if down > 0 {
		f.push(event{at: now + down, kind: evRecover, src: h})
	}
	victims := append([]*VM(nil), h.vms...)
	h.vms = h.vms[:0]
	for _, vm := range victims {
		h.Hyp.DestroyDomain(vm.dep.Dom, now)
		f.settle(vm, now)
		f.vmSeconds += float64(vm.VCPUs()) * seconds(now-vm.PlacedAt)
		h.committed -= vm.VCPUs()
		f.tenantCommitted[vm.Tenant] -= vm.VCPUs()
		if vm.Lifetime > 0 {
			vm.remaining = vm.PlacedAt + vm.Lifetime - now
			if vm.remaining <= 0 {
				// The departure was due this very instant: keep a token
				// remaining lifetime so the replacement departs immediately
				// instead of reading 0 as "runs forever".
				vm.remaining = 1
			}
		}
		// End the placement stint: outstanding depart/migration events
		// for this stint become stale, and an in-flight outbound
		// migration will release its reservation at completion time.
		vm.gen++
		vm.Placed = false
		vm.host = nil
		vm.dep = nil
		vm.migrating = false
		vm.runCarried = 0
		vm.baseRun = 0
		vm.waitRepl = true
		vm.crashedAt = now
		vm.retries = 0
		f.scheduleRetry(vm, now)
	}
}

// scheduleRetry arms the victim's next re-placement attempt after the
// recovery policy's exponential backoff.
func (f *Fleet) scheduleRetry(vm *VM, now sim.Time) {
	rec := f.faults.Recovery
	delay := float64(rec.RetryDelay)
	for i := 0; i < vm.retries; i++ {
		delay *= rec.Backoff
	}
	f.push(event{at: now + sim.Time(delay), kind: evRetry, vm: vm, gen: vm.gen})
}

// drain admits pending VMs until the placement policy cannot (or will
// not) place anything else.
func (f *Fleet) drain(now sim.Time) {
	for len(f.pending) > 0 {
		vi, h, ok := f.placer.Choose(f, f.pending)
		if !ok {
			return
		}
		vm := f.pending[vi]
		f.pending = append(f.pending[:vi], f.pending[vi+1:]...)
		f.place(vm, h, now)
	}
}

func (f *Fleet) place(vm *VM, h *Host, now sim.Time) {
	h.advance(now)
	h.committed += vm.VCPUs()
	f.tenantCommitted[vm.Tenant] += vm.VCPUs()
	vm.host = h
	vm.Placed = true
	vm.PlacedAt = now
	vm.gen++ // a new placement stint begins
	h.vms = append(h.vms, vm)
	vm.dep = workload.Deploy(h.Hyp, vm.App, fmt.Sprintf("v%d", vm.ID), h.deployRNG)
	lifetime := vm.Lifetime
	if vm.waitRepl {
		// Re-placement of a crash victim: close its downtime window and
		// resume the unserved share of its lifetime.
		f.vmsReplaced++
		f.replWaitSum += now - vm.crashedAt
		f.downtimeVMSec += float64(vm.VCPUs()) * seconds(now-vm.crashedAt)
		vm.waitRepl = false
		lifetime = vm.remaining
	} else {
		f.placements++
		f.waitSum += now - vm.ArriveAt
	}
	if lifetime > 0 {
		f.push(event{at: now + lifetime, kind: evDepart, vm: vm, gen: vm.gen})
	}
}

// rebalance initiates up to MaxPerTick live migrations from the most to
// the least loaded host while the load gap exceeds the threshold and a
// move would strictly shrink the pair's worse load (no oscillation).
func (f *Fleet) rebalance(now sim.Time) {
	for n := 0; n < f.Spec.Rebalance.MaxPerTick; n++ {
		var src, dst *Host
		for _, h := range f.Hosts {
			if h.down {
				continue // a dead host neither sheds nor receives load
			}
			if src == nil || h.Load() > src.Load() {
				src = h
			}
			if dst == nil || h.Load() < dst.Load() {
				dst = h
			}
		}
		if src == nil || dst == nil || src == dst {
			return
		}
		gap := src.Load() - dst.Load()
		if gap <= f.Spec.Rebalance.Threshold {
			return
		}
		var vm *VM
		for _, c := range src.vms {
			if c.migrating || c.Gone || !fits(dst, c.VCPUs()) {
				continue
			}
			after := math.Max(
				src.Load()-float64(c.VCPUs())/float64(src.capacity),
				dst.Load()+float64(c.VCPUs())/float64(dst.capacity),
			)
			if after < src.Load() {
				vm = c
				break
			}
		}
		if vm == nil {
			return
		}
		vm.migrating = true
		dst.committed += vm.VCPUs()
		dst.reserved += vm.VCPUs()
		f.push(event{at: now + f.Spec.Rebalance.MigrationTime, kind: evMigDone, vm: vm, src: src, dst: dst, gen: vm.gen})
	}
}

// imbalance is the coefficient of variation of host admission loads.
func (f *Fleet) imbalance() float64 {
	mean := 0.0
	for _, h := range f.Hosts {
		mean += h.Load()
	}
	mean /= float64(len(f.Hosts))
	if mean == 0 {
		return 0
	}
	ss := 0.0
	for _, h := range f.Hosts {
		d := h.Load() - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(f.Hosts))) / mean
}

// attained is the VM's total attained vCPU execution time: runtime
// carried from previous hosts plus the current deployment's, including
// the in-flight slice of currently running vCPUs. The caller must have
// advanced the VM's host to now.
func (f *Fleet) attained(vm *VM, now sim.Time) sim.Time {
	att := vm.runCarried
	if vm.dep != nil {
		for _, v := range vm.dep.Dom.VCPUs {
			att += v.RunTime + v.RanFor(now)
		}
	}
	return att
}

// settle folds the VM's measurement-window attainment into its tenant's
// accumulators. Called exactly once per placement stint, at departure,
// crash-eviction or run end; VMs that departed before the window
// contribute nothing.
func (f *Fleet) settle(vm *VM, now sim.Time) {
	if now <= f.warmup {
		return
	}
	start := vm.PlacedAt
	if start < f.warmup {
		start = f.warmup
	}
	dur := now - start
	if dur <= 0 {
		return
	}
	att := seconds(f.attained(vm, now) - vm.baseRun)
	f.tenantAttained[vm.Tenant] += att
	share := att / (float64(vm.VCPUs()) * seconds(dur))
	f.tenantShares[vm.Tenant] = append(f.tenantShares[vm.Tenant], share)
}

func (f *Fleet) collect(polName string) *Result {
	res := &Result{Spec: f.Spec, Policy: polName, Fleet: f}
	total := 0.0
	for _, a := range f.tenantAttained {
		total += a
	}
	for i, t := range f.Tenants {
		m := scenario.AppMeasure{
			Name:      "tenant:" + t.Name,
			Expected:  vcputype.None,
			Instances: len(f.tenantShares[i]),
		}
		m.Metrics.Put(MTenantVCPUSeconds, f.tenantAttained[i])
		if total > 0 {
			m.Metrics.Put(MTenantShare, f.tenantAttained[i]/total)
		}
		if j, ok := metrics.Jain(f.tenantShares[i]); ok {
			m.Metrics.Put(scenario.MFairnessJain, j)
		}
		res.Apps = append(res.Apps, m)
	}

	res.Metrics.Put(MHosts, float64(len(f.Hosts)))
	res.Metrics.Put(MPlacements, float64(f.placements))
	res.Metrics.Put(MUnplaced, float64(len(f.pending)))
	if f.placements > 0 {
		res.Metrics.Put(MPlacementWait, float64(f.waitSum)/float64(f.placements))
	}
	res.Metrics.Put(MMigrations, float64(f.migrations))
	res.Metrics.Put(MMigrationsAborted, float64(f.aborted))
	if f.imbN > 0 {
		res.Metrics.Put(MUtilImbalance, f.imbSum/float64(f.imbN))
	}
	weighted := make([]float64, len(f.Tenants))
	for i, t := range f.Tenants {
		weighted[i] = f.tenantAttained[i] / t.Weight
	}
	if j, ok := metrics.Jain(weighted); ok {
		res.Metrics.Put(MTenantJain, j)
	}
	res.Metrics.Put(MVMSeconds, f.vmSeconds)
	if f.faults != nil {
		// Fault metrics only exist when a plan was injected, so fault-free
		// runs keep their pre-fault artifact bytes.
		res.Metrics.Put(MFaultsInjected, float64(f.faultsInjected))
		res.Metrics.Put(MMigrationFailures, float64(f.migFailures))
		res.Metrics.Put(MVMsLost, float64(f.vmsLost))
		res.Metrics.Put(MVMsReplaced, float64(f.vmsReplaced))
		if f.vmsReplaced > 0 {
			res.Metrics.Put(MReplacementWait, float64(f.replWaitSum)/float64(f.vmsReplaced))
		}
		res.Metrics.Put(MDowntimeVMSeconds, f.downtimeVMSec)
	}
	// Policy-reported run metrics (EDF's deadline accounting) merge one
	// host at a time, in host order — the reporters accumulate, so the
	// fleet-wide counts are deterministic sums. Policies that report
	// nothing keep the artifact bytes unchanged.
	for _, h := range f.Hosts {
		if r, ok := h.Pol.(scenario.RunMetricsReporter); ok {
			r.ReportRunMetrics(&res.Metrics)
		}
	}
	return res
}

// CheckInvariants verifies the fleet's admission bookkeeping; tests
// call it after (and during) runs. It returns the first violation.
func (f *Fleet) CheckInvariants() error {
	for _, h := range f.Hosts {
		resident := 0
		for _, vm := range h.vms {
			if vm.Gone {
				return fmt.Errorf("host %d holds departed VM %d", h.ID, vm.ID)
			}
			if vm.host != h {
				return fmt.Errorf("VM %d resident on host %d but points at another host", vm.ID, h.ID)
			}
			resident += vm.VCPUs()
		}
		if h.committed != resident+h.reserved {
			return fmt.Errorf("host %d committed %d != resident %d + reserved %d",
				h.ID, h.committed, resident, h.reserved)
		}
		if h.committed < 0 || h.committed > h.capacity {
			return fmt.Errorf("host %d committed %d outside [0, %d]", h.ID, h.committed, h.capacity)
		}
	}
	for _, vm := range f.pending {
		if vm.Placed || vm.Gone {
			return fmt.Errorf("pending VM %d already placed or gone", vm.ID)
		}
	}
	want := make([]int, len(f.Tenants))
	for _, vm := range f.VMs {
		if vm.Placed && !vm.Gone {
			want[vm.Tenant] += vm.VCPUs()
		}
	}
	for i := range want {
		if f.tenantCommitted[i] != want[i] {
			return fmt.Errorf("tenant %d committed %d, want %d", i, f.tenantCommitted[i], want[i])
		}
	}
	return nil
}

// Pending lists the VMs still waiting for placement.
func (f *Fleet) Pending() []*VM { return f.pending }

// Migrations reports completed live migrations.
func (f *Fleet) Migrations() int { return f.migrations }

// Aborted reports migrations aborted by in-flight teardown.
func (f *Fleet) Aborted() int { return f.aborted }

// Placements reports completed VM placements.
func (f *Fleet) Placements() int { return f.placements }

func removeVM(h *Host, vm *VM) {
	for i, x := range h.vms {
		if x == vm {
			h.vms = append(h.vms[:i], h.vms[i+1:]...)
			return
		}
	}
}

func seconds(t sim.Time) float64 { return float64(t) / float64(sim.Second) }

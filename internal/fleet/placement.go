package fleet

import (
	"aqlsched/internal/catalog"
	"aqlsched/internal/fairshare"
)

// Placement decides which pending VM is admitted next and onto which
// host. Choose inspects the fleet read-only and returns the index into
// pending plus the target host; ok=false when nothing can be placed
// right now (the fleet retries whenever capacity frees up). Choices
// must be pure functions of fleet state — no randomness, no wall clock
// — so fleet runs stay bit-identical at any worker count.
type Placement interface {
	Name() string
	Choose(f *Fleet, pending []*VM) (vmIdx int, host *Host, ok bool)
}

// Placements is the placement-policy registry, the fleet's axis in the
// catalog: spec files validate "placement" entries against it and
// aqlsweep -list prints it alongside the quantum-policy grammar.
var Placements = catalog.NewRegistry[func() Placement]("placement")

func init() {
	Placements.Register("least-loaded", func() Placement { return leastLoaded{} })
	Placements.Register("bin-pack", func() Placement { return binPack{} })
	Placements.Register("tenant-fairshare", func() Placement { return fairShare{} })
	catalog.RegisterAxis("placements", Placements.Names)
}

// PlacementByName resolves a placement policy, with the registry's
// clean unknown-name error for user-supplied spec files.
func PlacementByName(name string) (Placement, error) {
	f, err := Placements.Lookup(name)
	if err != nil {
		return nil, err
	}
	return f(), nil
}

// fits reports whether host h can admit demand more vCPUs right now: a
// down host admits nothing, a degraded host only up to its effective
// capacity.
func fits(h *Host, demand int) bool { return h.Committed()+demand <= h.EffCapacity() }

// bestHost scans hosts in ID order and returns the one minimizing (or,
// with pack=true, maximizing) admission load among those that fit.
// Strict inequality on the comparison keeps ties on the lowest ID.
func bestHost(f *Fleet, demand int, pack bool) *Host {
	var best *Host
	var bestLoad float64
	for _, h := range f.Hosts {
		if !fits(h, demand) {
			continue
		}
		l := h.Load()
		if best == nil || (pack && l > bestLoad) || (!pack && l < bestLoad) {
			best, bestLoad = h, l
		}
	}
	return best
}

// leastLoaded admits strictly in arrival order (no overtaking: a big VM
// at the head blocks smaller ones behind it, which is what keeps the
// policy starvation-free) and spreads onto the least-loaded fitting
// host.
type leastLoaded struct{}

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Choose(f *Fleet, pending []*VM) (int, *Host, bool) {
	if len(pending) == 0 {
		return 0, nil, false
	}
	h := bestHost(f, pending[0].VCPUs(), false)
	if h == nil {
		return 0, nil, false
	}
	return 0, h, true
}

// binPack admits in arrival order but packs onto the most-loaded host
// that still fits, concentrating load so whole hosts stay empty — the
// classic consolidation/imbalance trade-off against least-loaded.
type binPack struct{}

func (binPack) Name() string { return "bin-pack" }

func (binPack) Choose(f *Fleet, pending []*VM) (int, *Host, bool) {
	if len(pending) == 0 {
		return 0, nil, false
	}
	h := bestHost(f, pending[0].VCPUs(), true)
	if h == nil {
		return 0, nil, false
	}
	return 0, h, true
}

// fairShare admits the most underserved tenant first: tenants are
// ordered by committed vCPUs over weight (their current share deficit,
// the fairshare package's deficit round), and the winner's oldest
// pending VM goes to the least-loaded fitting host. When that VM fits
// nowhere, the next tenant in deficit order gets its turn — small VMs
// of a less-deficient tenant may overtake a blocked large one, trading
// strict FIFO for share convergence.
type fairShare struct{}

func (fairShare) Name() string { return "tenant-fairshare" }

func (fairShare) Choose(f *Fleet, pending []*VM) (int, *Host, bool) {
	var entries []fairshare.Entry
	var vmIdx []int
	seen := make(map[int]bool, len(f.Tenants))
	for i, vm := range pending {
		if seen[vm.Tenant] {
			continue
		}
		seen[vm.Tenant] = true
		entries = append(entries, fairshare.Entry{
			Key:    vm.Tenant,
			Served: float64(f.tenantCommitted[vm.Tenant]),
			Weight: f.Tenants[vm.Tenant].Weight,
		})
		vmIdx = append(vmIdx, i)
	}
	for _, j := range fairshare.Order(entries) {
		if h := bestHost(f, pending[vmIdx[j]].VCPUs(), false); h != nil {
			return vmIdx[j], h, true
		}
	}
	return 0, nil, false
}

package fleet

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"aqlsched/internal/credit"
	"aqlsched/internal/hw"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

// stormFleetSpec is genFleetSpec under fire: crash and degrade storms
// plus flaky migrations, so the parallel loop is exercised against the
// full fault machinery (stale-generation guards, retries, recovery).
func stormFleetSpec() Spec {
	sp := genFleetSpec()
	sp.Name = "parallel-storm"
	sp.GenSeed = 7
	sp.Faults = &FaultPlan{
		CrashStorm:   &Storm{Rate: 15, Start: 40 * sim.Millisecond, Horizon: 180 * sim.Millisecond, MeanDown: 30 * sim.Millisecond},
		DegradeStorm: &Storm{Rate: 10, Horizon: 200 * sim.Millisecond, MeanDown: 50 * sim.Millisecond, Factor: 0.5},
		MigFailProb:  0.3,
		Recovery:     Recovery{MaxRetries: 3, RetryDelay: 5 * sim.Millisecond, Backoff: 2, OnExhaust: "requeue"},
	}
	return sp
}

// assertSameResult compares two runs metric-for-metric, tenant-for-
// tenant: the epoch-parallel loop must be observationally identical to
// the serial one, not merely statistically close.
func assertSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if !want.Metrics.Equal(got.Metrics) {
		t.Errorf("%s: run metrics differ from the serial run:\nserial   %v\nparallel %v", label, want.Metrics, got.Metrics)
	}
	if len(want.Apps) != len(got.Apps) {
		t.Fatalf("%s: tenant app count differs: %d vs %d", label, len(want.Apps), len(got.Apps))
	}
	for i := range want.Apps {
		if want.Apps[i].Name != got.Apps[i].Name || !want.Apps[i].Metrics.Equal(got.Apps[i].Metrics) {
			t.Errorf("%s: tenant %s metrics differ from the serial run", label, want.Apps[i].Name)
		}
	}
}

// TestParallelRunMatchesSerial: a churn-and-migration fleet must
// produce bit-identical results at every shard-worker count, including
// counts above the host count (capped) and above GOMAXPROCS.
func TestParallelRunMatchesSerial(t *testing.T) {
	serial := Run(genFleetSpec(), Options{Workers: 1})
	if err := serial.Fleet.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 4, 16} {
		par := Run(genFleetSpec(), Options{Workers: w})
		if err := par.Fleet.CheckInvariants(); err != nil {
			t.Errorf("workers=%d: %v", w, err)
		}
		assertSameResult(t, fmt.Sprintf("workers=%d", w), serial, par)
	}
}

// TestParallelFaultRunMatchesSerial: fault injection shares the
// central timeline, so crash storms, recovery retries and migration-
// failure draws must also be identical at any shard-worker count.
func TestParallelFaultRunMatchesSerial(t *testing.T) {
	serial := Run(stormFleetSpec(), Options{Workers: 1})
	if v, _ := serial.Metrics.Get("fleet_faults_injected"); v < 2 {
		t.Fatalf("fleet_faults_injected = %v, want a real storm so the test means something", v)
	}
	for _, w := range []int{2, 4} {
		par := Run(stormFleetSpec(), Options{Workers: w})
		if err := par.Fleet.CheckInvariants(); err != nil {
			t.Errorf("workers=%d: %v", w, err)
		}
		assertSameResult(t, fmt.Sprintf("workers=%d", w), serial, par)
	}
}

// TestSpecWorkersHint: the spec-level hint arms the pool exactly like
// the Options override, and the override wins when both are set.
func TestSpecWorkersHint(t *testing.T) {
	sp := genFleetSpec()
	sp.Workers = 4
	hinted := Run(sp, Options{})
	serial := Run(genFleetSpec(), Options{Workers: 1})
	assertSameResult(t, "spec hint workers=4", serial, hinted)

	overridden := Run(sp, Options{Workers: 1}) // override back to serial
	assertSameResult(t, "options override workers=1", serial, overridden)
}

func TestResolveWorkers(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		opt, hint, hosts, want int
	}{
		{0, 0, 100, min(maxprocs, 100)}, // default: GOMAXPROCS, host-capped
		{1, 8, 100, 1},                  // explicit serial override beats the hint
		{4, 0, 100, 4},
		{0, 3, 100, 3},                    // spec hint
		{16, 0, 4, 4},                     // capped at the host count
		{0, 16, 2, 2},                     // hint capped too
		{-5, -3, 100, min(maxprocs, 100)}, // negatives fall through to the default
	}
	for _, c := range cases {
		if got := resolveWorkers(c.opt, c.hint, c.hosts); got != c.want {
			t.Errorf("resolveWorkers(%d, %d, %d) = %d, want %d", c.opt, c.hint, c.hosts, got, c.want)
		}
	}
}

func TestWorkersValidation(t *testing.T) {
	sp := genFleetSpec()
	sp.Workers = -1
	if err := sp.Validate(); err == nil || !strings.Contains(err.Error(), "workers") {
		t.Errorf("negative workers hint validated, err = %v", err)
	}
}

// TestAdvancePoolPanicPropagation: a panic on a worker must surface in
// the caller — deterministically the lowest panicking index — and the
// pool must stay usable afterwards (the barrier completes, workers
// survive).
func TestAdvancePoolPanicPropagation(t *testing.T) {
	p := newAdvancePool(3)
	defer p.close()

	var ran atomic.Int64
	got := func() (r any) {
		defer func() { r = recover() }()
		p.do(16, func(i int) {
			ran.Add(1)
			if i%5 == 0 {
				panic(fmt.Sprintf("boom-%d", i))
			}
		})
		return nil
	}()
	if got == nil {
		t.Fatal("worker panic did not propagate out of do")
	}
	msg, ok := got.(string)
	if !ok {
		t.Fatalf("propagated panic is %T, want the formatted string", got)
	}
	if !strings.Contains(msg, "boom-0") || !strings.Contains(msg, "(host 0)") {
		t.Errorf("propagated panic should carry the lowest panicking index, got:\n%s", msg)
	}
	if n := ran.Load(); n != 16 {
		t.Errorf("barrier ran %d/16 indices; panics must not abort the epoch", n)
	}

	ran.Store(0)
	p.do(8, func(int) { ran.Add(1) })
	if n := ran.Load(); n != 8 {
		t.Errorf("pool ran %d/8 indices after a propagated panic", n)
	}
}

// panicPolicy arms a timer on each host's private engine that panics
// mid-run — a stand-in for any bug inside parallel host advancement.
type panicPolicy struct{}

func (panicPolicy) Name() string { return "panic" }
func (panicPolicy) Setup(h *xen.Hypervisor, _ []*workload.Deployment) {
	h.Engine.After(30*sim.Millisecond, func(sim.Time) { panic("injected advance panic") })
}

// TestPanicInHostAdvancePropagates: a panic raised inside a host's
// engine while the shard pool is advancing it must reach Run's caller
// (the sweep layer converts it into a FAILED run) instead of killing a
// bare worker goroutine.
func TestPanicInHostAdvancePropagates(t *testing.T) {
	for _, w := range []int{1, 4} {
		got := func() (r any) {
			defer func() { r = recover() }()
			Run(genFleetSpec(), Options{
				Workers:   w,
				NewPolicy: func() scenario.Policy { return panicPolicy{} },
			})
			return nil
		}()
		if got == nil {
			t.Fatalf("workers=%d: injected panic did not propagate", w)
		}
		if msg := fmt.Sprint(got); !strings.Contains(msg, "injected advance panic") {
			t.Errorf("workers=%d: propagated panic lost the cause: %v", w, msg)
		}
	}
}

// TestAdvanceAllSkipsCurrentHosts: the epoch barrier must only issue
// advance calls for hosts whose engines are strictly behind the barrier
// time — most epochs touch a few hosts, and re-advancing the rest is
// wasted work (and, on the pool path, wasted job scheduling). Counted
// via the Fleet.advances probe in both the serial and pooled branches.
func TestAdvanceAllSkipsCurrentHosts(t *testing.T) {
	newHost := func(id int) *Host {
		topo := *hw.I73770()
		return &Host{ID: id, Hyp: xen.New(&topo, credit.New(), uint64(id)+1)}
	}
	for _, workers := range []int{1, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			f := &Fleet{Hosts: []*Host{newHost(0), newHost(1), newHost(2), newHost(3)}}
			if workers > 1 {
				f.pool = newAdvancePool(workers)
				defer f.pool.close()
			}

			f.advanceAll(10 * sim.Millisecond)
			if f.advances != 4 {
				t.Fatalf("first barrier issued %d advances, want 4 (all hosts stale)", f.advances)
			}

			// Two hosts run ahead (as if the epoch's events touched them);
			// the next barrier must only advance the other two.
			f.Hosts[1].advance(20 * sim.Millisecond)
			f.Hosts[3].advance(20 * sim.Millisecond)
			f.advanceAll(20 * sim.Millisecond)
			if f.advances != 6 {
				t.Errorf("second barrier brought total advances to %d, want 6 (current hosts skipped)", f.advances)
			}

			// A barrier at a time every host has reached is a no-op.
			f.advanceAll(20 * sim.Millisecond)
			if f.advances != 6 {
				t.Errorf("no-op barrier issued advances, total %d, want 6", f.advances)
			}

			for _, h := range f.Hosts {
				if now := h.Hyp.Engine.Now(); now != 20*sim.Millisecond {
					t.Errorf("host %d engine at %v after barriers, want 20ms", h.ID, now)
				}
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

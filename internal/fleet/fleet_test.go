package fleet

import (
	"strings"
	"testing"

	"aqlsched/internal/cache"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
)

// cpuVM is a minimal single-vCPU compute app for hand-built timelines.
func cpuVM(name string) workload.AppSpec {
	return workload.AppSpec{
		Name:     name,
		Expected: vcputype.LLCF,
		Kind:     workload.KindCPU,
		Prof:     cache.Profile{WSS: 64 * 1024},
		JobWork:  5 * sim.Millisecond,
		Steady:   true,
	}
}

// gangVM is an n-vCPU barrier app (the admission unit for multi-vCPU VMs).
func gangVM(name string, n int) workload.AppSpec {
	return workload.AppSpec{
		Name:     name,
		Expected: vcputype.ConSpin,
		Kind:     workload.KindLock,
		Prof:     cache.Profile{WSS: 64 * 1024},
		Threads:  n,
		Gap:      200 * sim.Microsecond,
		Hold:     20 * sim.Microsecond,
	}
}

func explicitSpec(name string, hosts int, placement string, vms []VMSpec) Spec {
	return Spec{
		Name:      name,
		Hosts:     hosts,
		Placement: placement,
		Explicit:  vms,
		Warmup:    20 * sim.Millisecond,
		Measure:   60 * sim.Millisecond,
		Seed:      1,
		Rebalance: Rebalance{Threshold: 10}, // no migrations unless a test lowers it
	}
}

func TestLeastLoadedSpreadsBinPackConcentrates(t *testing.T) {
	vms := []VMSpec{
		{App: cpuVM("a")}, {App: cpuVM("b")}, {App: cpuVM("c")}, {App: cpuVM("d")},
	}
	spread := Run(explicitSpec("spread", 2, "least-loaded", vms), Options{})
	if got := []int{spread.Fleet.Hosts[0].Committed(), spread.Fleet.Hosts[1].Committed()}; got[0] != 2 || got[1] != 2 {
		t.Errorf("least-loaded committed = %v, want [2 2]", got)
	}
	pack := Run(explicitSpec("pack", 2, "bin-pack", vms), Options{})
	if got := []int{pack.Fleet.Hosts[0].Committed(), pack.Fleet.Hosts[1].Committed()}; got[0] != 4 || got[1] != 0 {
		t.Errorf("bin-pack committed = %v, want [4 0]", got)
	}
	for _, r := range []*Result{spread, pack} {
		if err := r.Fleet.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", r.Spec.Name, err)
		}
	}
}

func TestQueueDrainsWhenCapacityFrees(t *testing.T) {
	// One i7-3770 host at oversub 1: capacity 8 vCPUs. A 6-vCPU gang
	// holds the host; the next 4-vCPU gang must queue until the first
	// departs, and the single-vCPU VM behind it must not overtake
	// (least-loaded is strict FIFO).
	vms := []VMSpec{
		{App: gangVM("big", 6), Lifetime: 30 * sim.Millisecond},
		{ArriveAt: 1 * sim.Millisecond, App: gangVM("mid", 4)},
		{ArriveAt: 2 * sim.Millisecond, App: cpuVM("small")},
	}
	spec := explicitSpec("queue", 1, "least-loaded", vms)
	spec.OverSub = 1
	res := Run(spec, Options{})
	f := res.Fleet
	if n, _ := res.Metrics.Get("fleet_unplaced"); n != 0 {
		t.Fatalf("unplaced = %v, want 0", n)
	}
	mid, small := f.VMs[1], f.VMs[2]
	if !mid.Placed || mid.PlacedAt != 30*sim.Millisecond {
		t.Errorf("mid placed=%v at %v, want placement at big's departure (30ms)", mid.Placed, mid.PlacedAt)
	}
	if !small.Placed || small.PlacedAt != 30*sim.Millisecond {
		t.Errorf("small placed=%v at %v, want 30ms (drains behind mid, no overtaking)", small.Placed, small.PlacedAt)
	}
	if w, ok := res.Metrics.Get("fleet_placement_wait"); !ok || w <= 0 {
		t.Errorf("fleet_placement_wait = %v (ok=%v), want positive", w, ok)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestTenantFairshareAlternates(t *testing.T) {
	// Capacity 4 (oversub 0.5 on 8 pCPUs). A blocker gang holds the
	// whole host while four tenant-0 VMs queue ahead of four tenant-1
	// VMs; when the blocker departs, FIFO would give tenant 0 the whole
	// host, fairshare must split it 2/2.
	vms := []VMSpec{{Tenant: 0, App: gangVM("blocker", 4), Lifetime: 10 * sim.Millisecond}}
	for i := 0; i < 4; i++ {
		vms = append(vms, VMSpec{ArriveAt: 1 * sim.Millisecond, Tenant: 0, App: cpuVM("a")})
	}
	for i := 0; i < 4; i++ {
		vms = append(vms, VMSpec{ArriveAt: 2 * sim.Millisecond, Tenant: 1, App: cpuVM("b")})
	}
	spec := explicitSpec("fair", 1, "tenant-fairshare", vms)
	spec.OverSub = 0.5
	spec.Tenants = []Tenant{{Name: "alpha", Weight: 1}, {Name: "beta", Weight: 1}}
	res := Run(spec, Options{})
	if got := res.Fleet.tenantCommitted; got[0] != 2 || got[1] != 2 {
		t.Errorf("tenant committed = %v, want [2 2]", got)
	}

	fifo := spec
	fifo.Placement = "least-loaded"
	res = Run(fifo, Options{})
	if got := res.Fleet.tenantCommitted; got[0] != 4 || got[1] != 0 {
		t.Errorf("least-loaded tenant committed = %v, want [4 0]", got)
	}
}

func TestTeardownDuringMigrationAborts(t *testing.T) {
	// Bin-pack stacks three VMs on host 0; the rebalancer migrates the
	// first two out in one tick, but the first departs while its
	// migration is in flight — the fleet must release the destination
	// reservation and count an abort, while the second VM's migration
	// completes. (The third VM stays: once the pair is balanced,
	// another move would only swap the imbalance, which the
	// anti-oscillation guard refuses.)
	vms := []VMSpec{
		{App: cpuVM("victim"), Lifetime: 30 * sim.Millisecond},
		{App: cpuVM("mover")},
		{App: cpuVM("stayer")},
	}
	spec := explicitSpec("teardown", 2, "bin-pack", vms)
	spec.Rebalance = Rebalance{
		Every:         10 * sim.Millisecond,
		Threshold:     0.03,
		MigrationTime: 40 * sim.Millisecond,
		MaxPerTick:    2,
	}
	res := Run(spec, Options{})
	f := res.Fleet
	if f.Aborted() != 1 {
		t.Errorf("aborted migrations = %d, want 1", f.Aborted())
	}
	if f.Migrations() != 1 {
		t.Errorf("completed migrations = %d, want 1 (the survivor)", f.Migrations())
	}
	victim, mover, stayer := f.VMs[0], f.VMs[1], f.VMs[2]
	if !victim.Gone {
		t.Error("victim should have departed")
	}
	if mover.Host() != f.Hosts[1] {
		t.Error("mover should have migrated to host 1")
	}
	if stayer.Host() != f.Hosts[0] {
		t.Error("stayer should have remained on host 0")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if v, _ := res.Metrics.Get("fleet_migrations_aborted"); v != 1 {
		t.Errorf("fleet_migrations_aborted = %v, want 1", v)
	}
}

func genFleetSpec() Spec {
	return Spec{
		Name:      "gen",
		Hosts:     4,
		OverSub:   2,
		Placement: "tenant-fairshare",
		Tenants:   []Tenant{{Name: "alpha", Weight: 2}, {Name: "beta", Weight: 1}},
		VCPUs:     48,
		Mix: map[string]float64{
			"LLCF": 2, "ConSpin": 1, "IOInt": 1,
		},
		Churn: &scenario.ChurnSpec{
			Rate:         30,
			MeanLifetime: 80 * sim.Millisecond,
			MinLifetime:  20 * sim.Millisecond,
			Horizon:      150 * sim.Millisecond,
		},
		Rebalance: Rebalance{
			Every:         25 * sim.Millisecond,
			Threshold:     0.08,
			MigrationTime: 10 * sim.Millisecond,
			MaxPerTick:    4,
		},
		Warmup:  50 * sim.Millisecond,
		Measure: 150 * sim.Millisecond,
		Seed:    7,
	}
}

func TestGeneratedFleetEndToEnd(t *testing.T) {
	res := Run(genFleetSpec(), Options{})
	f := res.Fleet
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if p := f.Placements(); p == 0 {
		t.Fatal("no placements")
	}
	for _, name := range []string{
		"fleet_hosts", "fleet_placements", "fleet_unplaced", "fleet_migrations",
		"fleet_migrations_aborted", "fleet_util_imbalance", "fleet_tenant_jain",
		"fleet_vm_seconds",
	} {
		if !res.Metrics.Has(name) {
			t.Errorf("run metrics missing %s", name)
		}
	}
	if v, _ := res.Metrics.Get("fleet_vm_seconds"); v <= 0 {
		t.Errorf("fleet_vm_seconds = %v, want positive", v)
	}
	if len(res.Apps) != 2 {
		t.Fatalf("per-tenant apps = %d, want 2", len(res.Apps))
	}
	for _, a := range res.Apps {
		if !strings.HasPrefix(a.Name, "tenant:") {
			t.Errorf("tenant app name %q", a.Name)
		}
		if a.Expected != vcputype.None {
			t.Errorf("tenant app %s Expected = %v, want None", a.Name, a.Expected)
		}
		if v, ok := a.Metrics.Get("tenant_vcpu_seconds"); !ok || v <= 0 {
			t.Errorf("tenant app %s tenant_vcpu_seconds = %v (ok=%v)", a.Name, v, ok)
		}
	}
	j, ok := res.Metrics.Get("fleet_tenant_jain")
	if !ok || j <= 0 || j > 1 {
		t.Errorf("fleet_tenant_jain = %v (ok=%v), want in (0, 1]", j, ok)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(genFleetSpec(), Options{})
	b := Run(genFleetSpec(), Options{})
	if !a.Metrics.Equal(b.Metrics) {
		t.Errorf("run metrics differ across identical runs:\n%v\n%v", a.Metrics, b.Metrics)
	}
	if len(a.Apps) != len(b.Apps) {
		t.Fatalf("app count differs: %d vs %d", len(a.Apps), len(b.Apps))
	}
	for i := range a.Apps {
		if !a.Apps[i].Metrics.Equal(b.Apps[i].Metrics) {
			t.Errorf("tenant %s metrics differ across identical runs", a.Apps[i].Name)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	base := genFleetSpec()
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"zero hosts", func(s *Spec) { s.Hosts = 0 }, "at least one host"},
		{"unknown placement", func(s *Spec) { s.Placement = "round-robin" }, "unknown placement"},
		{"zero weight", func(s *Spec) { s.Tenants[0].Weight = 0 }, "must be positive"},
		{"negative weight", func(s *Spec) { s.Tenants[1].Weight = -2 }, "must be positive"},
		{"duplicate tenant", func(s *Spec) { s.Tenants[1].Name = s.Tenants[0].Name }, "duplicate tenant"},
		{"no population", func(s *Spec) { s.VCPUs = 0 }, "vCPU budget"},
		{"bad mix", func(s *Spec) { s.Mix = map[string]float64{"warp-drive": 1} }, "unknown"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := base
			s.Tenants = append([]Tenant(nil), base.Tenants...)
			c.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid spec")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
	good := base
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestExplicitTimelineSortedAndTenantChecked(t *testing.T) {
	s := explicitSpec("sort", 1, "", []VMSpec{
		{ArriveAt: 5 * sim.Millisecond, App: cpuVM("late")},
		{ArriveAt: 1 * sim.Millisecond, App: cpuVM("early")},
	})
	vms, err := s.GenVMs()
	if err != nil {
		t.Fatal(err)
	}
	if vms[0].App.Name != "early" || vms[1].App.Name != "late" {
		t.Errorf("timeline not sorted by arrival: %s, %s", vms[0].App.Name, vms[1].App.Name)
	}

	bad := explicitSpec("badten", 1, "", []VMSpec{{Tenant: 3, App: cpuVM("x")}})
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "tenant") {
		t.Errorf("out-of-range explicit tenant not rejected: %v", err)
	}
}

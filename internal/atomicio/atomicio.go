// Package atomicio writes files crash-safely: content lands in a
// temporary file in the destination directory and is renamed into place
// only after a successful write and sync. A reader therefore sees
// either the complete old file or the complete new one — never a
// truncated artifact from a process killed mid-write.
package atomicio

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data (mode perm for new
// files). On any error the destination is untouched and the temporary
// file is removed.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteTo(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteTo atomically replaces path with whatever write produces. The
// writer goes to a temporary file next to path; only after write
// returns nil and the file is synced and closed does the rename publish
// it.
func WriteTo(path string, perm os.FileMode, write func(w io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return err
	}
	tmp = nil // the deferred cleanup must not remove a closed, renamed file
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

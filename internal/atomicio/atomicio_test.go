package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")

	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read after create: %q, %v", got, err)
	}

	if err := WriteFile(path, []byte("v2-longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2-longer" {
		t.Fatalf("read after replace: %q", got)
	}
}

func TestWriteToFailureLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.csv")
	if err := WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("emitter failed")
	err := WriteTo(path, 0o644, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want the writer's error back, got %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("failed write clobbered the destination: %q", got)
	}

	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestWriteToNoDir(t *testing.T) {
	// A bare filename (no separator) must write into the cwd.
	dir := t.TempDir()
	old, _ := os.Getwd()
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	if err := WriteFile("plain.txt", []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile("plain.txt"); string(got) != "x" {
		t.Fatalf("got %q", got)
	}
}

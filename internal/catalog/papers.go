package catalog

import (
	"fmt"
	"time"

	"aqlsched/internal/baselines"
	"aqlsched/internal/core"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/workload"
)

// The paper's catalogue registers itself: Table 4's five colocation
// scenarios plus the four-socket case, the full reference benchmark
// suite, and every scheduling policy of the evaluation. The topology
// entries ("i7-3770", "xeon-e5-4603") self-register in internal/hw.
func init() {
	// Scenarios. Seed 0 in the constructors: the sweep layer overrides
	// the simulation seed per run.
	for _, s := range scenario.Table4(0) {
		name := s.Name
		Scenarios.Register(name, func() scenario.Spec {
			return scenario.ScenarioByName(name, 0)
		})
	}
	Scenarios.Register("four-socket", func() scenario.Spec {
		return scenario.FourSocket(0)
	})
	// The dynamic-scenario catalogue entry: phased VMs whose type flips
	// mid-run (the adaptation experiment's workload).
	Scenarios.Register("dynphase", func() scenario.Spec {
		return scenario.DynPhase(0)
	})

	// Workloads: the reference suite (SPECweb2009, SPECmail2009,
	// SPEC CPU2006, PARSEC).
	for _, s := range workload.Suite() {
		s := s
		Workloads.Register(s.Name, func() workload.AppSpec { return s })
	}

	// Policies: every spelling of the evaluation registers as a plugin —
	// the descriptor declares the aliases and typed knobs, and the
	// grammar/spec-file/-list surfaces all derive from it.
	RegisterPolicyPlugin(PolicyDesc{
		Name:    "xen",
		Aliases: []string{"xen-credit"},
		Help:    "unmodified Xen credit scheduler (30 ms quantum, BOOST)",
	}, func(Params) (Policy, error) { return XenPolicy(), nil })

	RegisterPolicyPlugin(PolicyDesc{
		Name:       "aql",
		Help:       "the paper's AQL_Sched: vTRS recognition + two-level clustering + per-pool quanta",
		Positional: "window",
		Params: []scenario.ParamDesc{{
			Name: "window", Kind: scenario.ParamInt, Hint: "<periods>",
			Help: "vTRS sliding-window length n (paper default 4)",
			Min:  "1", Max: "64",
		}},
	}, func(p Params) (Policy, error) {
		if n, ok := p.Int("window"); ok {
			return AQLWindowPolicy(n), nil
		}
		return AQLPolicy(), nil
	})

	RegisterPolicyPlugin(PolicyDesc{
		Name:       "aql-w",
		Help:       "AQL at a non-default vTRS window (the reactivity-vs-churn axis)",
		Positional: "n",
		Params: []scenario.ParamDesc{{
			Name: "n", Kind: scenario.ParamInt, Hint: "<periods>",
			Help: "vTRS sliding-window length", Min: "1", Max: "64", Required: true,
		}},
	}, func(p Params) (Policy, error) {
		n, _ := p.Int("n")
		return AQLWindowPolicy(n), nil
	})

	RegisterPolicyPlugin(PolicyDesc{
		Name:       "aql-nocustom",
		Help:       "Fig. 7 ablation: clustering active, every pool at one fixed quantum",
		Positional: "q",
		Params: []scenario.ParamDesc{{
			Name: "q", Kind: scenario.ParamDuration,
			Help: "the fixed per-pool quantum", Required: true,
		}},
	}, func(p Params) (Policy, error) {
		q, _ := p.Duration("q")
		return AQLNoCustomPolicy(q), nil
	})

	RegisterPolicyPlugin(PolicyDesc{
		Name:       "fixed",
		Help:       "every vCPU in one pool at a fixed quantum",
		Positional: "q",
		Params: []scenario.ParamDesc{{
			Name: "q", Kind: scenario.ParamDuration,
			Help: "the quantum", Required: true,
		}},
	}, func(p Params) (Policy, error) {
		q, _ := p.Duration("q")
		return FixedPolicy(q), nil
	})

	RegisterPolicyPlugin(PolicyDesc{
		Name: "vturbo",
		Help: "dedicated turbo cores at a small quantum for IO vCPUs (related system, Fig. 8)",
	}, func(Params) (Policy, error) { return VTurboPolicy(), nil })

	RegisterPolicyPlugin(PolicyDesc{
		Name: "vslicer",
		Help: "shorter slices for IO vCPUs on shared pools (related system, Fig. 8)",
	}, func(Params) (Policy, error) { return VSlicerPolicy(), nil })

	RegisterPolicyPlugin(PolicyDesc{
		Name: "microsliced",
		Help: "1 ms quantum for every vCPU (related system, Fig. 8)",
	}, func(Params) (Policy, error) { return MicroslicedPolicy(), nil })

	RegisterPolicyPlugin(PolicyDesc{
		Name:       "hetero-aql",
		Help:       "class-aware AQL: latency vCPUs pool onto the fastest core class; plain AQL on homogeneous machines",
		Positional: "fast_q",
		Params: []scenario.ParamDesc{{
			Name: "fast_q", Kind: scenario.ParamDuration,
			Help: "quantum of the fast-class pool", Default: "1ms",
		}},
	}, func(p Params) (Policy, error) {
		q, _ := p.Duration("fast_q")
		return HeteroAQLPolicy(q), nil
	})

	RegisterPolicyPlugin(PolicyDesc{
		Name:       "edf",
		Help:       "deadline-aware quantum policy; reports deadline_miss_ratio over per-dispatch scheduling delays",
		Positional: "deadline",
		Params: []scenario.ParamDesc{{
			Name: "deadline", Kind: scenario.ParamDuration,
			Help: "per-dispatch scheduling-delay bound", Required: true,
		}},
	}, func(p Params) (Policy, error) {
		d, _ := p.Duration("deadline")
		return EDFPolicy(d), nil
	})
}

// XenPolicy is the unmodified credit scheduler (the usual baseline).
func XenPolicy() Policy {
	return Policy{Name: baselines.XenDefault{}.Name(), New: func() scenario.Policy {
		return baselines.XenDefault{}
	}}
}

// AQLPolicy is the paper's system. Every run gets a fresh controller
// output slot, retrievable via sweep.RunResult.Controller.
func AQLPolicy() Policy {
	return Policy{Name: baselines.AQL{}.Name(), New: func() scenario.Policy {
		return baselines.AQL{Out: new(*core.Controller)}
	}}
}

// AQLWindowPolicy is AQL with a non-default vTRS window n (recluster
// cadence and grace period scale with it) — the reactivity-vs-churn
// axis of the adaptation experiment.
func AQLWindowPolicy(n int) Policy {
	name := baselines.AQL{Window: n}.Name()
	return Policy{Name: name, New: func() scenario.Policy {
		return baselines.AQL{Window: n, Out: new(*core.Controller)}
	}}
}

// AQLNoCustomPolicy is the Fig. 7 ablation: clustering stays active but
// every pool runs the fixed quantum q.
func AQLNoCustomPolicy(q sim.Time) Policy {
	name := baselines.AQL{DisableCustomization: true, FixedQuantum: q}.Name()
	return Policy{Name: name, New: func() scenario.Policy {
		return baselines.AQL{DisableCustomization: true, FixedQuantum: q, Out: new(*core.Controller)}
	}}
}

// FixedPolicy runs every vCPU at quantum q in one pool.
func FixedPolicy(q sim.Time) Policy {
	name := baselines.FixedQuantum{Q: q}.Name()
	return Policy{Name: name, New: func() scenario.Policy {
		return baselines.FixedQuantum{Q: q}
	}}
}

// VTurboPolicy, VSlicerPolicy and MicroslicedPolicy are the related
// systems of Fig. 8, manually configured as in the paper.
func VTurboPolicy() Policy {
	return Policy{Name: baselines.VTurbo{}.Name(), New: func() scenario.Policy {
		return baselines.VTurbo{}
	}}
}

// VSlicerPolicy differentiates IO-intensive slices on shared pools.
func VSlicerPolicy() Policy {
	return Policy{Name: baselines.VSlicer{}.Name(), New: func() scenario.Policy {
		return baselines.VSlicer{}
	}}
}

// MicroslicedPolicy shortens the quantum for every vCPU.
func MicroslicedPolicy() Policy {
	m := baselines.Microsliced()
	return Policy{Name: m.Name(), New: func() scenario.Policy {
		return baselines.Microsliced()
	}}
}

// HeteroAQLPolicy is the heterogeneous-topology consumer of the AQL
// machinery: on machines with core classes it pools latency vCPUs onto
// the fastest class at quantum fastQ; on homogeneous machines it is
// plain AQL.
func HeteroAQLPolicy(fastQ sim.Time) Policy {
	name := baselines.HeteroAQL{FastQ: fastQ}.Name()
	return Policy{Name: name, New: func() scenario.Policy {
		return baselines.HeteroAQL{FastQ: fastQ, Out: new(*core.Controller)}
	}}
}

// EDFPolicy runs every vCPU at a deadline-derived quantum and counts
// per-dispatch scheduling delays against the deadline (the
// deadline_miss_ratio metric).
func EDFPolicy(deadline sim.Time) Policy {
	name := baselines.EDF{Deadline: deadline}.Name()
	return Policy{Name: name, New: func() scenario.Policy {
		return baselines.EDF{Deadline: deadline, Stats: new(baselines.EDFStats)}
	}}
}

// ParseQuantum parses a quantum duration argument ("10ms", "90ms").
func ParseQuantum(s string) (sim.Time, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("catalog: bad quantum %q: %v", s, err)
	}
	q := sim.Time(d / time.Microsecond)
	if q <= 0 {
		return 0, fmt.Errorf("catalog: quantum %q must be positive", s)
	}
	return q, nil
}

package catalog

import (
	"fmt"
	"strconv"
	"time"

	"aqlsched/internal/baselines"
	"aqlsched/internal/core"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/workload"
)

// The paper's catalogue registers itself: Table 4's five colocation
// scenarios plus the four-socket case, the full reference benchmark
// suite, and every scheduling policy of the evaluation. The topology
// entries ("i7-3770", "xeon-e5-4603") self-register in internal/hw.
func init() {
	// Scenarios. Seed 0 in the constructors: the sweep layer overrides
	// the simulation seed per run.
	for _, s := range scenario.Table4(0) {
		name := s.Name
		Scenarios.Register(name, func() scenario.Spec {
			return scenario.ScenarioByName(name, 0)
		})
	}
	Scenarios.Register("four-socket", func() scenario.Spec {
		return scenario.FourSocket(0)
	})
	// The dynamic-scenario catalogue entry: phased VMs whose type flips
	// mid-run (the adaptation experiment's workload).
	Scenarios.Register("dynphase", func() scenario.Spec {
		return scenario.DynPhase(0)
	})

	// Workloads: the reference suite (SPECweb2009, SPECmail2009,
	// SPEC CPU2006, PARSEC).
	for _, s := range workload.Suite() {
		s := s
		Workloads.Register(s.Name, func() workload.AppSpec { return s })
	}

	// Policies: exact aliases (both the spec-file spelling and the
	// canonical display name resolve) ...
	register := func(p Policy, aliases ...string) {
		for _, a := range aliases {
			RegisterPolicy(a, p)
		}
	}
	register(XenPolicy(), "xen", "xen-credit")
	register(AQLPolicy(), "aql")
	register(VTurboPolicy(), "vturbo")
	register(VSlicerPolicy(), "vslicer")
	register(MicroslicedPolicy(), "microsliced")

	// ... plus the parameterized families.
	RegisterPolicyPrefix("fixed:", "<duration>", func(arg string) (Policy, error) {
		q, err := ParseQuantum(arg)
		if err != nil {
			return Policy{}, err
		}
		return FixedPolicy(q), nil
	})
	RegisterPolicyPrefix("aql-nocustom:", "<duration>", func(arg string) (Policy, error) {
		q, err := ParseQuantum(arg)
		if err != nil {
			return Policy{}, err
		}
		return AQLNoCustomPolicy(q), nil
	})
	RegisterPolicyPrefix("aql-w:", "<periods>", func(arg string) (Policy, error) {
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 || n > 64 {
			return Policy{}, fmt.Errorf("catalog: bad vTRS window %q: want an integer in [1, 64]", arg)
		}
		return AQLWindowPolicy(n), nil
	})
}

// XenPolicy is the unmodified credit scheduler (the usual baseline).
func XenPolicy() Policy {
	return Policy{Name: baselines.XenDefault{}.Name(), New: func() scenario.Policy {
		return baselines.XenDefault{}
	}}
}

// AQLPolicy is the paper's system. Every run gets a fresh controller
// output slot, retrievable via sweep.RunResult.Controller.
func AQLPolicy() Policy {
	return Policy{Name: baselines.AQL{}.Name(), New: func() scenario.Policy {
		return baselines.AQL{Out: new(*core.Controller)}
	}}
}

// AQLWindowPolicy is AQL with a non-default vTRS window n (recluster
// cadence and grace period scale with it) — the reactivity-vs-churn
// axis of the adaptation experiment.
func AQLWindowPolicy(n int) Policy {
	name := baselines.AQL{Window: n}.Name()
	return Policy{Name: name, New: func() scenario.Policy {
		return baselines.AQL{Window: n, Out: new(*core.Controller)}
	}}
}

// AQLNoCustomPolicy is the Fig. 7 ablation: clustering stays active but
// every pool runs the fixed quantum q.
func AQLNoCustomPolicy(q sim.Time) Policy {
	name := baselines.AQL{DisableCustomization: true, FixedQuantum: q}.Name()
	return Policy{Name: name, New: func() scenario.Policy {
		return baselines.AQL{DisableCustomization: true, FixedQuantum: q, Out: new(*core.Controller)}
	}}
}

// FixedPolicy runs every vCPU at quantum q in one pool.
func FixedPolicy(q sim.Time) Policy {
	name := baselines.FixedQuantum{Q: q}.Name()
	return Policy{Name: name, New: func() scenario.Policy {
		return baselines.FixedQuantum{Q: q}
	}}
}

// VTurboPolicy, VSlicerPolicy and MicroslicedPolicy are the related
// systems of Fig. 8, manually configured as in the paper.
func VTurboPolicy() Policy {
	return Policy{Name: baselines.VTurbo{}.Name(), New: func() scenario.Policy {
		return baselines.VTurbo{}
	}}
}

// VSlicerPolicy differentiates IO-intensive slices on shared pools.
func VSlicerPolicy() Policy {
	return Policy{Name: baselines.VSlicer{}.Name(), New: func() scenario.Policy {
		return baselines.VSlicer{}
	}}
}

// MicroslicedPolicy shortens the quantum for every vCPU.
func MicroslicedPolicy() Policy {
	m := baselines.Microsliced()
	return Policy{Name: m.Name(), New: func() scenario.Policy {
		return baselines.Microsliced()
	}}
}

// ParseQuantum parses a quantum duration argument ("10ms", "90ms").
func ParseQuantum(s string) (sim.Time, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("catalog: bad quantum %q: %v", s, err)
	}
	q := sim.Time(d / time.Microsecond)
	if q <= 0 {
		return 0, fmt.Errorf("catalog: quantum %q must be positive", s)
	}
	return q, nil
}

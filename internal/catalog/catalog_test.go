package catalog

import (
	"reflect"
	"strings"
	"testing"

	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
)

func TestRegistryRoundTrip(t *testing.T) {
	r := NewRegistry[int]("widget")
	r.Register("a", 1)
	r.Register("b", 2)
	if v, err := r.Lookup("a"); err != nil || v != 1 {
		t.Errorf("Lookup(a) = %d, %v", v, err)
	}
	if !r.Has("b") || r.Has("c") {
		t.Error("Has is wrong")
	}
	if got := r.Names(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Names = %v", got)
	}
	if _, err := r.Lookup("c"); err == nil || !strings.Contains(err.Error(), "widget") {
		t.Errorf("miss error = %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate Register did not panic")
			}
		}()
		r.Register("a", 3)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty-name Register did not panic")
			}
		}()
		r.Register("", 3)
	}()
}

// TestPaperScenariosRegistered: the catalog resolves every paper
// scenario to exactly what the scenario package constructs directly.
func TestPaperScenariosRegistered(t *testing.T) {
	for _, name := range []string{"S1", "S2", "S3", "S4", "S5"} {
		sc, err := ScenarioByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := sc.New()
		want := scenario.ScenarioByName(name, 0)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: catalog spec differs from scenario.ScenarioByName", name)
		}
	}
	fs, err := ScenarioByName("four-socket")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fs.New(), scenario.FourSocket(0); !reflect.DeepEqual(got, want) {
		t.Error("four-socket: catalog spec differs from scenario.FourSocket")
	}
	if _, err := ScenarioByName("S9"); err == nil {
		t.Error("unknown scenario resolved")
	}
}

func TestWorkloadsRegistered(t *testing.T) {
	names := Workloads.Names()
	if len(names) < 20 {
		t.Fatalf("only %d workloads registered: %v", len(names), names)
	}
	s, err := WorkloadByName("bzip2")
	if err != nil || s.Name != "bzip2" {
		t.Fatalf("WorkloadByName(bzip2) = %+v, %v", s, err)
	}
	if _, err := WorkloadByName("quake3"); err == nil {
		t.Error("unknown workload resolved")
	}
}

func TestPolicyGrammar(t *testing.T) {
	for name, want := range map[string]string{
		"xen":              "xen-credit",
		"xen-credit":       "xen-credit",
		"aql":              "aql",
		"vturbo":           "vturbo",
		"vslicer":          "vslicer",
		"microsliced":      "microsliced",
		"fixed:10ms":       "fixed-10.000ms",
		"aql-nocustom:1ms": "",
	} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if want != "" && p.Name != want {
			t.Errorf("%s resolved to %q, want %q", name, p.Name, want)
		}
		if p.New == nil || p.New() == nil {
			t.Errorf("%s: no constructor", name)
		}
	}
	for _, bad := range []string{"", "frob", "fixed:", "fixed:-3ms", "fixed:zebra", "aql-nocustom:0"} {
		if _, err := PolicyByName(bad); err == nil {
			t.Errorf("bad policy %q resolved", bad)
		}
	}
	grammar := PolicyGrammar()
	joined := strings.Join(grammar, " ")
	for _, want := range []string{"xen", "aql", "fixed:<duration>", "aql-nocustom:<duration>"} {
		if !strings.Contains(joined, want) {
			t.Errorf("grammar %v missing %q", grammar, want)
		}
	}
}

// TestPolicyInstancesAreFresh: each New() must build independent state
// (the AQL controller slot) so concurrent sweep runs never share it.
func TestPolicyInstancesAreFresh(t *testing.T) {
	p, err := PolicyByName("aql")
	if err != nil {
		t.Fatal(err)
	}
	a, b := p.New(), p.New()
	if a == b {
		t.Error("aql policy instances are shared")
	}
}

func TestTopologiesExposed(t *testing.T) {
	names := TopologyNames()
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "i7-3770") || !strings.Contains(joined, "xeon-e5-4603") {
		t.Fatalf("paper machines missing from catalog: %v", names)
	}
	topo, err := TopologyByName("xeon-e5-4603")
	if err != nil || topo.Sockets != 4 {
		t.Errorf("TopologyByName(xeon-e5-4603) = %+v, %v", topo, err)
	}
}

func TestParseQuantum(t *testing.T) {
	q, err := ParseQuantum("10ms")
	if err != nil || q != 10*sim.Millisecond {
		t.Errorf("ParseQuantum(10ms) = %v, %v", q, err)
	}
	for _, bad := range []string{"", "-3ms", "0", "zebra"} {
		if _, err := ParseQuantum(bad); err == nil {
			t.Errorf("ParseQuantum(%q) accepted", bad)
		}
	}
}

func TestAQLWindowPolicyGrammar(t *testing.T) {
	p, err := PolicyByName("aql-w:2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "aql-w2" {
		t.Errorf("policy name %q, want aql-w2", p.Name)
	}
	if p.New() == nil {
		t.Error("nil policy instance")
	}
	for _, bad := range []string{"aql-w:", "aql-w:0", "aql-w:-3", "aql-w:x", "aql-w:999"} {
		if _, err := PolicyByName(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestDynphaseScenarioRegistered(t *testing.T) {
	sc, err := ScenarioByName("dynphase")
	if err != nil {
		t.Fatal(err)
	}
	spec := sc.New()
	if !spec.Dynamic() {
		t.Error("dynphase catalog entry is not dynamic")
	}
	// Fresh state per lookup: two constructions must not share slices.
	other := sc.New()
	if &spec.Apps[0] == &other.Apps[0] {
		t.Error("dynphase constructions share app state")
	}
}

func TestMetricCatalog(t *testing.T) {
	descs := MetricDescs()
	if len(descs) == 0 {
		t.Fatal("metric registry empty — importing the catalog must load the scenario registrations")
	}
	seen := map[string]bool{}
	for _, d := range descs {
		seen[d.Name] = true
	}
	for _, want := range []string{
		"latency_mean", "time_per_job", "latency_p95", "fairness_jain",
		"pool_migrations", "adapt_latency_periods",
	} {
		if !seen[want] {
			t.Errorf("metric %q missing from the catalog", want)
		}
	}
	d, err := MetricByName("latency_mean")
	if err != nil || !d.Primary {
		t.Errorf("latency_mean lookup: %+v, %v", d, err)
	}
	if _, err := MetricByName("nope"); err == nil {
		t.Error("unknown metric resolved")
	}
}

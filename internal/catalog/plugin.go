package catalog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
)

// --- Policy plugin registry -------------------------------------------------
//
// Every policy — the paper's baselines included — registers through one
// RegisterPolicyPlugin call: a descriptor (aliases, typed parameters)
// plus a build function. The registry derives everything downstream
// from the descriptor: the "name:k=v,k=v" string grammar spec files and
// CLIs use, validation of the {"policy": {"name": ..., "params": ...}}
// spec-file block, and the -list self-documentation.

// PolicyDesc declares one policy plugin.
type PolicyDesc struct {
	// Name is the canonical spelling ("fixed", "aql-w", "edf").
	Name string
	// Aliases are additional spellings that resolve to the same plugin
	// ("xen-credit" for "xen").
	Aliases []string
	// Help is a one-line description for -list.
	Help string
	// Positional names the parameter that may be supplied without a
	// "key=" prefix, so "fixed:5ms" means "fixed:q=5ms". Empty means
	// every parameter must be named.
	Positional string
	// Params declares the plugin's typed knobs.
	Params []scenario.ParamDesc
}

// Params carries the parsed, validated parameter values a plugin's
// build function receives: ints as int64, durations as sim.Time,
// floats as float64, strings as string. Only parameters the user
// supplied (or that carry a declared default) are present.
type Params map[string]any

// Int reads an integer parameter.
func (p Params) Int(name string) (int, bool) {
	v, ok := p[name].(int64)
	return int(v), ok
}

// Duration reads a duration parameter.
func (p Params) Duration(name string) (sim.Time, bool) {
	v, ok := p[name].(sim.Time)
	return v, ok
}

// Float reads a float parameter.
func (p Params) Float(name string) (float64, bool) {
	v, ok := p[name].(float64)
	return v, ok
}

// Str reads a string parameter.
func (p Params) Str(name string) (string, bool) {
	v, ok := p[name].(string)
	return v, ok
}

type policyPlugin struct {
	desc  PolicyDesc
	build func(Params) (Policy, error)
}

var (
	pluginMu      sync.RWMutex
	plugins       []*policyPlugin // registration order, for grammar listings
	pluginByAlias = map[string]*policyPlugin{}
)

// RegisterPolicyPlugin registers a policy plugin. It panics on an
// invalid descriptor or a duplicate alias: plugins register from init
// functions and a collision is a programming error, not an input error.
func RegisterPolicyPlugin(desc PolicyDesc, build func(Params) (Policy, error)) {
	if desc.Name == "" {
		panic("catalog: RegisterPolicyPlugin with empty name")
	}
	if build == nil {
		panic(fmt.Sprintf("catalog: policy plugin %q has no build function", desc.Name))
	}
	seen := map[string]bool{}
	for _, d := range desc.Params {
		if d.Name == "" {
			panic(fmt.Sprintf("catalog: policy plugin %q declares an unnamed parameter", desc.Name))
		}
		if seen[d.Name] {
			panic(fmt.Sprintf("catalog: policy plugin %q declares parameter %q twice", desc.Name, d.Name))
		}
		seen[d.Name] = true
		switch d.Kind {
		case scenario.ParamInt, scenario.ParamDuration, scenario.ParamFloat, scenario.ParamString:
		default:
			panic(fmt.Sprintf("catalog: policy plugin %q parameter %q has unknown kind %q", desc.Name, d.Name, d.Kind))
		}
		// Defaults and bounds must themselves parse under the kind.
		for _, txt := range []string{d.Default, d.Min, d.Max} {
			if txt == "" {
				continue
			}
			if _, err := coerceText(d, txt); err != nil {
				panic(fmt.Sprintf("catalog: policy plugin %q parameter %q: bad declaration value %q: %v", desc.Name, d.Name, txt, err))
			}
		}
	}
	if desc.Positional != "" && !seen[desc.Positional] {
		panic(fmt.Sprintf("catalog: policy plugin %q positional %q is not a declared parameter", desc.Name, desc.Positional))
	}
	pl := &policyPlugin{desc: desc, build: build}
	aliases := append([]string{desc.Name}, desc.Aliases...)
	pluginMu.Lock()
	defer pluginMu.Unlock()
	// Validate every alias before inserting any, so a panicking
	// registration leaves the registry untouched.
	for _, alias := range aliases {
		if alias == "" {
			panic(fmt.Sprintf("catalog: policy plugin %q has an empty alias", desc.Name))
		}
		if strings.Contains(alias, ":") {
			panic(fmt.Sprintf("catalog: policy plugin alias %q may not contain %q", alias, ":"))
		}
		if _, dup := pluginByAlias[alias]; dup {
			panic(fmt.Sprintf("catalog: policy %q registered twice", alias))
		}
	}
	for _, alias := range aliases {
		pluginByAlias[alias] = pl
	}
	plugins = append(plugins, pl)
}

// PolicyPlugins lists the registered plugin descriptors sorted by name
// (the -list self-documentation surface).
func PolicyPlugins() []PolicyDesc {
	pluginMu.RLock()
	defer pluginMu.RUnlock()
	out := make([]PolicyDesc, 0, len(plugins))
	for _, pl := range plugins {
		out = append(out, pl.desc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func lookupPlugin(alias string) *policyPlugin {
	pluginMu.RLock()
	defer pluginMu.RUnlock()
	return pluginByAlias[alias]
}

// PolicyByName resolves a policy axis point from its string spelling:
// an alias ("aql", "xen-credit"), optionally followed by ":" and
// comma-separated arguments. An argument is either "key=value" or, for
// plugins with a positional parameter, a bare value ("fixed:5ms").
func PolicyByName(name string) (Policy, error) {
	base, arg, hasArg := strings.Cut(name, ":")
	pl := lookupPlugin(base)
	if pl == nil {
		return Policy{}, fmt.Errorf("catalog: unknown policy %q (want one of %s)", name, strings.Join(PolicyGrammar(), ", "))
	}
	params := Params{}
	if hasArg {
		if err := pl.parseArgs(arg, params); err != nil {
			return Policy{}, err
		}
	}
	if err := pl.finish(params); err != nil {
		return Policy{}, err
	}
	return pl.build(params)
}

// PolicyFromConfig resolves a policy from a spec file's structured
// {"policy": {"name": ..., "params": {...}}} block: name is a plugin
// alias (no ":" arguments) and params holds JSON values — strings in
// the same spellings the grammar accepts, or JSON numbers for numeric
// kinds.
func PolicyFromConfig(name string, raw map[string]any) (Policy, error) {
	if strings.Contains(name, ":") {
		return Policy{}, fmt.Errorf("catalog: policy block name %q may not carry %q arguments; use the params object", name, ":")
	}
	pl := lookupPlugin(name)
	if pl == nil {
		return Policy{}, fmt.Errorf("catalog: unknown policy %q (want one of %s)", name, strings.Join(PolicyGrammar(), ", "))
	}
	params := Params{}
	keys := make([]string, 0, len(raw))
	for k := range raw {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic first-error selection
	for _, k := range keys {
		d, ok := pl.param(k)
		if !ok {
			return Policy{}, fmt.Errorf("catalog: policy %q has no parameter %q (declared: %s)", pl.desc.Name, k, strings.Join(pl.paramNames(), ", "))
		}
		v, err := coerceJSON(d, raw[k])
		if err != nil {
			return Policy{}, err
		}
		if err := checkRange(d, v); err != nil {
			return Policy{}, err
		}
		params[k] = v
	}
	if err := pl.finish(params); err != nil {
		return Policy{}, err
	}
	return pl.build(params)
}

// PolicyNames lists the bare policy aliases — the spellings that
// resolve with no ":" arguments — sorted.
func PolicyNames() []string {
	pluginMu.RLock()
	defer pluginMu.RUnlock()
	var out []string
	for _, pl := range plugins {
		if !pl.bareResolvable() {
			continue
		}
		out = append(out, pl.desc.Name)
		out = append(out, pl.desc.Aliases...)
	}
	sort.Strings(out)
	return out
}

// PolicyGrammar lists every valid policy spelling: the bare aliases
// (sorted) plus the parameterized forms ("fixed:<duration>",
// "aql-w:<periods>") in plugin registration order.
func PolicyGrammar() []string {
	pluginMu.RLock()
	defer pluginMu.RUnlock()
	var bare, parameterized []string
	for _, pl := range plugins {
		if pl.bareResolvable() {
			bare = append(bare, pl.desc.Name)
			bare = append(bare, pl.desc.Aliases...)
		}
		if form := pl.grammarForm(); form != "" {
			parameterized = append(parameterized, form)
		}
	}
	sort.Strings(bare)
	return append(bare, parameterized...)
}

func (pl *policyPlugin) param(name string) (scenario.ParamDesc, bool) {
	for _, d := range pl.desc.Params {
		if d.Name == name {
			return d, true
		}
	}
	return scenario.ParamDesc{}, false
}

func (pl *policyPlugin) paramNames() []string {
	out := make([]string, len(pl.desc.Params))
	for i, d := range pl.desc.Params {
		out[i] = d.Name
	}
	return out
}

// bareResolvable reports whether the plugin resolves with no arguments
// (no required parameter lacks a default).
func (pl *policyPlugin) bareResolvable() bool {
	for _, d := range pl.desc.Params {
		if d.Required && d.Default == "" {
			return false
		}
	}
	return true
}

// grammarForm renders the parameterized spelling, or "" for plugins
// without parameters. The positional parameter shows as its bare hint
// ("fixed:<duration>"); named ones as "key=<hint>".
func (pl *policyPlugin) grammarForm() string {
	if len(pl.desc.Params) == 0 {
		return ""
	}
	parts := make([]string, 0, len(pl.desc.Params))
	for _, d := range pl.desc.Params {
		if d.Name == pl.desc.Positional {
			parts = append(parts, d.GrammarHint())
		} else {
			parts = append(parts, d.Name+"="+d.GrammarHint())
		}
	}
	return pl.desc.Name + ":" + strings.Join(parts, ",")
}

// parseArgs parses the text after the ":" — comma-separated "key=value"
// pairs, plus at most one bare value for the positional parameter.
func (pl *policyPlugin) parseArgs(arg string, params Params) error {
	for _, part := range strings.Split(arg, ",") {
		key, val, named := strings.Cut(part, "=")
		if !named {
			if pl.desc.Positional == "" {
				return fmt.Errorf("catalog: policy %q takes no positional argument; want %s", pl.desc.Name, pl.grammarOrBare())
			}
			key, val = pl.desc.Positional, part
		}
		d, ok := pl.param(key)
		if !ok {
			return fmt.Errorf("catalog: policy %q has no parameter %q (declared: %s)", pl.desc.Name, key, strings.Join(pl.paramNames(), ", "))
		}
		if _, dup := params[key]; dup {
			return fmt.Errorf("catalog: policy %q parameter %q given twice", pl.desc.Name, key)
		}
		v, err := coerceText(d, val)
		if err != nil {
			return err
		}
		if err := checkRange(d, v); err != nil {
			return err
		}
		params[key] = v
	}
	return nil
}

func (pl *policyPlugin) grammarOrBare() string {
	if form := pl.grammarForm(); form != "" {
		return form
	}
	return pl.desc.Name
}

// finish applies declared defaults and enforces required parameters.
func (pl *policyPlugin) finish(params Params) error {
	for _, d := range pl.desc.Params {
		if _, set := params[d.Name]; set {
			continue
		}
		if d.Default != "" {
			v, err := coerceText(d, d.Default)
			if err != nil {
				return err // unreachable: declaration values are pre-validated
			}
			params[d.Name] = v
			continue
		}
		if d.Required {
			return fmt.Errorf("catalog: policy %q requires %s (want %s)", pl.desc.Name, d.Name, pl.grammarOrBare())
		}
	}
	return nil
}

// coerceText parses one textual parameter value under its declared
// kind.
func coerceText(d scenario.ParamDesc, raw string) (any, error) {
	switch d.Kind {
	case scenario.ParamInt:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("catalog: bad %s %q: want an integer%s", d.Name, raw, rangeNote(d))
		}
		return n, nil
	case scenario.ParamDuration:
		return ParseQuantum(raw)
	case scenario.ParamFloat:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("catalog: bad %s %q: want a number%s", d.Name, raw, rangeNote(d))
		}
		return f, nil
	default:
		return raw, nil
	}
}

// coerceJSON converts one decoded JSON value (string, number) to the
// parameter's kind. Strings take the same spellings the grammar does;
// numbers are accepted for int (integral only) and float kinds.
func coerceJSON(d scenario.ParamDesc, v any) (any, error) {
	switch x := v.(type) {
	case string:
		return coerceText(d, x)
	case int:
		// JSON decoding never produces int, but Go-authored builtin
		// specs do; fold into the float64 path.
		return coerceJSON(d, float64(x))
	case float64:
		switch d.Kind {
		case scenario.ParamInt:
			n := int64(x)
			if float64(n) != x {
				return nil, fmt.Errorf("catalog: bad %s %v: want an integer%s", d.Name, x, rangeNote(d))
			}
			return n, nil
		case scenario.ParamFloat:
			return x, nil
		case scenario.ParamDuration:
			return nil, fmt.Errorf("catalog: bad %s %v: want a duration string like \"5ms\"", d.Name, x)
		}
	}
	return nil, fmt.Errorf("catalog: bad %s value %v (%T): want a string%s", d.Name, v, v, map[bool]string{true: " or number", false: ""}[d.Kind == scenario.ParamInt || d.Kind == scenario.ParamFloat])
}

// checkRange enforces the declared inclusive [Min, Max] bounds.
func checkRange(d scenario.ParamDesc, v any) error {
	if d.Min == "" && d.Max == "" {
		return nil
	}
	out := fmt.Errorf("catalog: bad %s %s: want %s in [%s, %s]", d.Name, render(v), kindNoun(d.Kind), orInf(d.Min), orInf(d.Max))
	switch x := v.(type) {
	case int64:
		if d.Min != "" {
			if min, _ := strconv.ParseInt(d.Min, 10, 64); x < min {
				return out
			}
		}
		if d.Max != "" {
			if max, _ := strconv.ParseInt(d.Max, 10, 64); x > max {
				return out
			}
		}
	case sim.Time:
		if d.Min != "" {
			if min, _ := ParseQuantum(d.Min); x < min {
				return out
			}
		}
		if d.Max != "" {
			if max, _ := ParseQuantum(d.Max); x > max {
				return out
			}
		}
	case float64:
		if d.Min != "" {
			if min, _ := strconv.ParseFloat(d.Min, 64); x < min {
				return out
			}
		}
		if d.Max != "" {
			if max, _ := strconv.ParseFloat(d.Max, 64); x > max {
				return out
			}
		}
	}
	return nil
}

func render(v any) string {
	if t, ok := v.(sim.Time); ok {
		return t.String()
	}
	return fmt.Sprint(v)
}

func kindNoun(k scenario.ParamKind) string {
	switch k {
	case scenario.ParamInt:
		return "an integer"
	case scenario.ParamDuration:
		return "a duration"
	case scenario.ParamFloat:
		return "a number"
	}
	return "a value"
}

func orInf(bound string) string {
	if bound == "" {
		return "-"
	}
	return bound
}

func rangeNote(d scenario.ParamDesc) string {
	if d.Min == "" && d.Max == "" {
		return ""
	}
	return fmt.Sprintf(" in [%s, %s]", orInf(d.Min), orInf(d.Max))
}

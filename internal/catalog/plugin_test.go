package catalog

import (
	"reflect"
	"strings"
	"testing"

	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
)

// TestPluginUnknownParam: a parameter the descriptor does not declare
// must fail with an error naming both the typo and the declared knobs,
// in every spelling (string grammar and config block).
func TestPluginUnknownParam(t *testing.T) {
	if _, err := PolicyByName("aql:widnow=4"); err == nil ||
		!strings.Contains(err.Error(), `no parameter "widnow"`) ||
		!strings.Contains(err.Error(), "window") {
		t.Errorf("string spelling: err = %v, want unknown-param naming the declared one", err)
	}
	if _, err := PolicyFromConfig("aql", map[string]any{"widnow": 4}); err == nil ||
		!strings.Contains(err.Error(), `no parameter "widnow"`) {
		t.Errorf("config block: err = %v, want unknown-param", err)
	}
}

// TestPluginOutOfRange: values outside a declared [Min, Max] must fail
// in both spellings, and the error must carry the offending value.
func TestPluginOutOfRange(t *testing.T) {
	for _, bad := range []string{"aql:window=0", "aql:window=65", "aql-w:65", "aql-w:n=0"} {
		if _, err := PolicyByName(bad); err == nil {
			t.Errorf("%q resolved despite out-of-range window", bad)
		}
	}
	if _, err := PolicyFromConfig("aql", map[string]any{"window": 65}); err == nil ||
		!strings.Contains(err.Error(), "65") {
		t.Errorf("config block out-of-range: err = %v", err)
	}
	// In-range endpoints must still resolve.
	for _, ok := range []string{"aql:window=1", "aql:window=64", "aql-w:1"} {
		if _, err := PolicyByName(ok); err != nil {
			t.Errorf("%q: %v", ok, err)
		}
	}
}

// TestPluginDuplicateRegistration: registering over an existing alias
// must panic — silent shadowing would make the axis ambiguous.
func TestPluginDuplicateRegistration(t *testing.T) {
	cases := []PolicyDesc{
		{Name: "xen"}, // canonical name taken
		{Name: "zz-fresh", Aliases: []string{"xen-credit"}}, // alias taken
	}
	for _, desc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("registering %+v did not panic", desc)
				}
			}()
			RegisterPolicyPlugin(desc, func(Params) (Policy, error) { return XenPolicy(), nil })
		}()
	}
}

// TestPluginDescValidation: broken descriptors (undeclared positional,
// ":" in an alias, unparseable default) must be rejected at
// registration, not at first use.
func TestPluginDescValidation(t *testing.T) {
	cases := []PolicyDesc{
		{Name: "zz-a", Positional: "ghost"},
		{Name: "zz-b", Aliases: []string{"zz:b"}},
		{Name: "zz-c", Params: []scenario.ParamDesc{{Name: "q", Kind: scenario.ParamDuration, Default: "zebra"}}},
		{Name: "zz-d", Params: []scenario.ParamDesc{{Name: "n", Kind: scenario.ParamInt, Min: "high"}}},
		{Name: "zz-e", Params: []scenario.ParamDesc{{Name: "x", Kind: "blob"}}},
	}
	for _, desc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("registering %+v did not panic", desc)
				}
			}()
			RegisterPolicyPlugin(desc, func(Params) (Policy, error) { return XenPolicy(), nil })
		}()
	}
}

// TestPluginRequiredParam: omitting a required parameter fails with an
// error naming it; the config-block spelling supplies it as JSON.
func TestPluginRequiredParam(t *testing.T) {
	if _, err := PolicyByName("fixed"); err == nil || !strings.Contains(err.Error(), "q") {
		t.Errorf("bare fixed resolved, err = %v", err)
	}
	if _, err := PolicyFromConfig("edf", nil); err == nil ||
		!strings.Contains(err.Error(), "deadline") {
		t.Errorf("edf without deadline: err = %v", err)
	}
}

// TestPolicyFromConfigMatchesGrammar: the {"policy": {...}} block and
// the string grammar are two spellings of the same plugin call — same
// axis name, equivalent instances.
func TestPolicyFromConfigMatchesGrammar(t *testing.T) {
	cases := []struct {
		str    string
		name   string
		params map[string]any
	}{
		{"xen", "xen", nil},
		{"aql", "aql", nil},
		{"aql:window=8", "aql", map[string]any{"window": 8}},
		{"fixed:5ms", "fixed", map[string]any{"q": "5ms"}},
		{"aql-nocustom:1ms", "aql-nocustom", map[string]any{"q": "1ms"}},
		{"hetero-aql", "hetero-aql", nil},
		{"hetero-aql:2ms", "hetero-aql", map[string]any{"fast_q": "2ms"}},
		{"edf:10ms", "edf", map[string]any{"deadline": "10ms"}},
	}
	for _, c := range cases {
		want, err := PolicyByName(c.str)
		if err != nil {
			t.Fatalf("%s: %v", c.str, err)
		}
		got, err := PolicyFromConfig(c.name, c.params)
		if err != nil {
			t.Fatalf("config %s %v: %v", c.name, c.params, err)
		}
		if got.Name != want.Name {
			t.Errorf("config %s %v resolved to %q, grammar %q gave %q", c.name, c.params, got.Name, c.str, want.Name)
		}
		if !reflect.DeepEqual(got.New(), want.New()) {
			t.Errorf("config %s %v builds a different instance than %q", c.name, c.params, c.str)
		}
	}
}

// TestPolicyFromConfigCoercion: JSON numbers for durations and
// fractional floats for ints must be rejected, not silently rounded.
func TestPolicyFromConfigCoercion(t *testing.T) {
	if _, err := PolicyFromConfig("fixed", map[string]any{"q": 5}); err == nil {
		t.Error("numeric duration accepted; durations must be strings like \"5ms\"")
	}
	if _, err := PolicyFromConfig("aql", map[string]any{"window": 4.5}); err == nil {
		t.Error("fractional int accepted")
	}
	// JSON decoding hands ints over as float64; integral values must work.
	p, err := PolicyFromConfig("aql", map[string]any{"window": float64(8)})
	if err != nil || p.Name != "aql-w8" {
		t.Errorf("integral float64 window: %+v, %v", p, err)
	}
}

// TestLegacySpellingsMatchConstructors: every pre-plugin spelling must
// resolve through the registry to exactly the Policy the direct
// constructor builds — same axis name, deep-equal fresh instances.
// This is the refactor's no-regression contract: sweep artifacts key on
// Policy.Name, so name identity plus instance equality keeps every
// golden artifact byte-identical.
func TestLegacySpellingsMatchConstructors(t *testing.T) {
	cases := []struct {
		spelling string
		want     Policy
	}{
		{"xen", XenPolicy()},
		{"xen-credit", XenPolicy()},
		{"aql", AQLPolicy()},
		{"aql-w:2", AQLWindowPolicy(2)},
		{"aql:window=2", AQLWindowPolicy(2)},
		{"aql-nocustom:5ms", AQLNoCustomPolicy(5 * sim.Millisecond)},
		{"fixed:10ms", FixedPolicy(10 * sim.Millisecond)},
		{"vturbo", VTurboPolicy()},
		{"vslicer", VSlicerPolicy()},
		{"microsliced", MicroslicedPolicy()},
		{"hetero-aql", HeteroAQLPolicy(sim.Millisecond)},
		{"edf:10ms", EDFPolicy(10 * sim.Millisecond)},
	}
	for _, c := range cases {
		got, err := PolicyByName(c.spelling)
		if err != nil {
			t.Errorf("%s: %v", c.spelling, err)
			continue
		}
		if got.Name != c.want.Name {
			t.Errorf("%s resolved to %q, want %q", c.spelling, got.Name, c.want.Name)
		}
		if !reflect.DeepEqual(got.New(), c.want.New()) {
			t.Errorf("%s builds a different policy instance than its constructor", c.spelling)
		}
	}
}

// TestPolicyPluginsListing: -list renders from PolicyPlugins(); the
// descriptors must be sorted, carry the paper policies, and keep the
// parameterized spellings in the grammar.
func TestPolicyPluginsListing(t *testing.T) {
	descs := PolicyPlugins()
	seen := map[string]PolicyDesc{}
	for i, d := range descs {
		seen[d.Name] = d
		if i > 0 && descs[i-1].Name >= d.Name {
			t.Errorf("descriptors not sorted: %q before %q", descs[i-1].Name, d.Name)
		}
	}
	for _, want := range []string{"xen", "aql", "aql-w", "aql-nocustom", "fixed", "vturbo", "vslicer", "microsliced", "hetero-aql", "edf"} {
		if _, ok := seen[want]; !ok {
			t.Errorf("plugin %q missing from PolicyPlugins()", want)
		}
	}
	if d := seen["aql"]; len(d.Params) != 1 || d.Params[0].GrammarHint() != "<periods>" {
		t.Errorf("aql descriptor params = %+v", d.Params)
	}
	if d := seen["edf"]; len(d.Params) != 1 || !d.Params[0].Required || d.Params[0].Kind != scenario.ParamDuration {
		t.Errorf("edf descriptor params = %+v", d.Params)
	}
}

package catalog_test

import (
	"encoding/json"
	"testing"

	"aqlsched/internal/catalog"
)

// TestDocumentCoversAxes: the self-documentation names every axis the
// paper's registrations populate, and serializes cleanly.
func TestDocumentCoversAxes(t *testing.T) {
	doc := catalog.Document()
	if len(doc.Scenarios) == 0 || len(doc.Workloads) == 0 || len(doc.Topologies) == 0 {
		t.Fatalf("document is missing core axes: %d scenarios, %d workloads, %d topologies",
			len(doc.Scenarios), len(doc.Workloads), len(doc.Topologies))
	}
	if len(doc.Policies) == 0 || len(doc.Metrics) == 0 {
		t.Fatalf("document is missing policies (%d) or metrics (%d)", len(doc.Policies), len(doc.Metrics))
	}
	for _, p := range doc.Policies {
		if p.Name == "" {
			t.Fatal("policy doc with empty name")
		}
	}
	for _, m := range doc.Metrics {
		if m.Name == "" || m.Unit == "" || m.Direction == "" {
			t.Fatalf("incomplete metric doc: %+v", m)
		}
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back catalog.Doc
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Policies) != len(doc.Policies) {
		t.Fatalf("JSON round trip lost policies: %d != %d", len(back.Policies), len(doc.Policies))
	}
}

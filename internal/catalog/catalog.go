// Package catalog is the name → factory registry layer between the
// paper's concrete catalogue (machines, benchmark apps, colocation
// scenarios, scheduling policies) and everything that references
// experiment axes by name (sweep spec files, cmd/aqlsweep, the
// experiments package). Each axis has a registry; the paper's entries
// register themselves in papers.go, and new entries — generated
// scenarios, custom machines — join through the same Register calls, so
// spec authors and tools discover every valid name from one place.
//
// Registries hold factories, not values: every lookup constructs fresh
// state, which is what lets the sweep layer run grid cells concurrently
// without sharing topologies, app slices or policy controllers.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"aqlsched/internal/hw"
	"aqlsched/internal/metrics"
	"aqlsched/internal/scenario"
	"aqlsched/internal/workload"
)

// Registry is a concurrency-safe name → factory table for one kind of
// catalog entry.
type Registry[T any] struct {
	kind string
	mu   sync.RWMutex
	m    map[string]T
}

// NewRegistry returns an empty registry; kind names the entry type in
// error messages ("scenario", "workload", ...).
func NewRegistry[T any](kind string) *Registry[T] {
	return &Registry[T]{kind: kind, m: map[string]T{}}
}

// Register adds an entry. It panics on an empty name or a duplicate:
// registries are populated from init functions and a collision is a
// programming error, not an input error.
func (r *Registry[T]) Register(name string, v T) {
	if name == "" {
		panic("catalog: Register with empty " + r.kind + " name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		panic(fmt.Sprintf("catalog: %s %q registered twice", r.kind, name))
	}
	r.m[name] = v
}

// Lookup finds an entry by name.
func (r *Registry[T]) Lookup(name string) (T, error) {
	r.mu.RLock()
	v, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		var zero T
		return zero, fmt.Errorf("catalog: unknown %s %q (known: %s)", r.kind, name, strings.Join(r.Names(), ", "))
	}
	return v, nil
}

// Has reports whether name is registered.
func (r *Registry[T]) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.m[name]
	return ok
}

// Names lists the registered names, sorted.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --- Domain registries -----------------------------------------------------

// Scenario is one resolvable scenario axis point: a display name plus a
// constructor returning a fresh scenario.Spec per run.
type Scenario struct {
	Name string
	New  func() scenario.Spec
}

// Policy is one resolvable policy axis point: the canonical display
// name plus a constructor returning a fresh policy instance per run.
type Policy struct {
	Name string
	New  func() scenario.Policy
}

// Scenarios maps scenario names (S1..S5, four-socket, and anything
// registered later) to spec constructors.
var Scenarios = NewRegistry[func() scenario.Spec]("scenario")

// Workloads maps benchmark application names to AppSpec factories.
var Workloads = NewRegistry[func() workload.AppSpec]("workload")

// ScenarioByName resolves a scenario axis point.
func ScenarioByName(name string) (Scenario, error) {
	f, err := Scenarios.Lookup(name)
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{Name: name, New: f}, nil
}

// WorkloadByName resolves a benchmark application by name, with a
// clean error for user-supplied names (spec files).
func WorkloadByName(name string) (workload.AppSpec, error) {
	f, err := Workloads.Lookup(name)
	if err != nil {
		return workload.AppSpec{}, err
	}
	return f(), nil
}

// --- Policies ---------------------------------------------------------------
//
// Policies are parameterized ("fixed:10ms", "aql-w:8"), so the policy
// axis is a plugin registry (plugin.go): a descriptor declaring
// aliases and typed knobs plus a build function, from which the string
// grammar, the spec-file {"policy": ...} block, and the -list
// documentation all derive.

// --- Extra axes ------------------------------------------------------------
//
// Layers above the catalog (the fleet's placement policies) own their
// registries but still want their names discoverable next to the core
// axes. RegisterAxis hooks a name lister under an axis kind; aqlsweep
// -list walks ExtraAxes so new axes show up without the catalog
// importing their packages (which would cycle).

type extraAxis struct {
	kind  string
	names func() []string
}

var (
	axisMu sync.RWMutex
	axes   []extraAxis
)

// RegisterAxis publishes an additional catalog axis: kind labels it in
// listings ("placements"), names lists its valid entries. Registered
// once per kind, from init functions.
func RegisterAxis(kind string, names func() []string) {
	if kind == "" || names == nil {
		panic("catalog: RegisterAxis needs a kind and a lister")
	}
	axisMu.Lock()
	defer axisMu.Unlock()
	for _, a := range axes {
		if a.kind == kind {
			panic(fmt.Sprintf("catalog: axis %q registered twice", kind))
		}
	}
	axes = append(axes, extraAxis{kind: kind, names: names})
}

// ExtraAxis is one published additional axis.
type ExtraAxis struct {
	Kind  string
	Names []string
}

// ExtraAxes lists the registered additional axes in registration order,
// with their current names resolved.
func ExtraAxes() []ExtraAxis {
	axisMu.RLock()
	defer axisMu.RUnlock()
	out := make([]ExtraAxis, 0, len(axes))
	for _, a := range axes {
		out = append(out, ExtraAxis{Kind: a.kind, Names: a.names()})
	}
	return out
}

// --- Topologies ------------------------------------------------------------
//
// The canonical topology registry lives in internal/hw so that layers
// below the catalog (scenario generation) can resolve machines without
// importing it; the catalog exposes the same registry as its topology
// axis.

// TopologyByName returns a fresh copy of a registered machine.
func TopologyByName(name string) (*hw.Topology, error) { return hw.TopologyByName(name) }

// TopologyNames lists the registered machines, sorted.
func TopologyNames() []string { return hw.TopologyNames() }

// RegisterTopology adds a named machine to the shared registry.
func RegisterTopology(name string, f func() *hw.Topology) { hw.RegisterTopology(name, f) }

// --- Metrics ---------------------------------------------------------------
//
// The canonical metric registry lives in internal/metrics (the scenario
// layer registers the paper's measurements at init); the catalog
// exposes it as the discovery surface tooling uses, exactly like the
// other axes.

// MetricDescs lists every registered measurement descriptor in
// registration order — the column order of schema-driven artifacts.
// Importing the catalog guarantees the scenario layer's registrations
// have run.
func MetricDescs() []metrics.Desc { return metrics.Descs() }

// MetricByName resolves one metric descriptor, with a clean error for
// user-supplied names (aqlsweep -metrics).
func MetricByName(name string) (metrics.Desc, error) {
	if d, ok := metrics.DescByName(name); ok {
		return d, nil
	}
	names := make([]string, 0, len(metrics.Descs()))
	for _, d := range metrics.Descs() {
		names = append(names, d.Name)
	}
	return metrics.Desc{}, fmt.Errorf("catalog: unknown metric %q (known: %s)", name, strings.Join(names, ", "))
}

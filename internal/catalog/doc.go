package catalog

// Self-documentation: one JSON-serializable Document describing every
// experiment axis the catalog knows — scenarios, workloads, machines,
// policy plugins with their typed knobs, metrics, and any extra axes
// registered by higher layers. aqlsweepd serves it as GET /v1/catalog
// so clients can discover valid spec-file names without a binary in
// hand; aqlsweep -list renders the same registries as text.

import "aqlsched/internal/scenario"

// PolicyDoc documents one policy plugin: its canonical name, aliases,
// the string grammar's positional knob, and every typed parameter.
type PolicyDoc struct {
	Name       string               `json:"name"`
	Aliases    []string             `json:"aliases,omitempty"`
	Help       string               `json:"help,omitempty"`
	Positional string               `json:"positional,omitempty"`
	Params     []scenario.ParamDesc `json:"params,omitempty"`
}

// MetricDoc documents one registered measurement.
type MetricDoc struct {
	Name      string `json:"name"`
	Unit      string `json:"unit"`
	Direction string `json:"direction"`
	Agg       string `json:"agg"`
	Scope     string `json:"scope"`
	Primary   bool   `json:"primary,omitempty"`
}

// AxisDoc documents one extra axis published via RegisterAxis.
type AxisDoc struct {
	Kind  string   `json:"kind"`
	Names []string `json:"names"`
}

// Doc is the catalog's full self-description.
type Doc struct {
	Scenarios  []string    `json:"scenarios"`
	Workloads  []string    `json:"workloads"`
	Topologies []string    `json:"topologies"`
	Policies   []PolicyDoc `json:"policies"`
	Metrics    []MetricDoc `json:"metrics"`
	Axes       []AxisDoc   `json:"axes,omitempty"`
}

// Document snapshots every registry into one serializable Doc. Name
// lists are sorted, policies sort by canonical name, metrics keep
// registration order (the artifact column order).
func Document() Doc {
	doc := Doc{
		Scenarios:  Scenarios.Names(),
		Workloads:  Workloads.Names(),
		Topologies: TopologyNames(),
	}
	for _, pd := range PolicyPlugins() {
		doc.Policies = append(doc.Policies, PolicyDoc{
			Name:       pd.Name,
			Aliases:    pd.Aliases,
			Help:       pd.Help,
			Positional: pd.Positional,
			Params:     pd.Params,
		})
	}
	for _, d := range MetricDescs() {
		doc.Metrics = append(doc.Metrics, MetricDoc{
			Name:      d.Name,
			Unit:      d.Unit,
			Direction: d.Direction.String(),
			Agg:       d.Agg.String(),
			Scope:     d.Scope.String(),
			Primary:   d.Primary,
		})
	}
	for _, a := range ExtraAxes() {
		doc.Axes = append(doc.Axes, AxisDoc(a))
	}
	return doc
}

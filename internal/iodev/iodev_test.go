package iodev_test

import (
	"testing"

	"aqlsched/internal/cache"
	"aqlsched/internal/credit"
	"aqlsched/internal/hw"
	"aqlsched/internal/iodev"
	"aqlsched/internal/sim"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

func newIdleHyp() *xen.Hypervisor {
	return xen.New(hw.I73770(), credit.New(), 9, xen.WithGuestPCPUs([]hw.PCPUID{0}))
}

func TestServerQueueSemantics(t *testing.T) {
	s := iodev.NewServer("s", 1)
	s.Push(100)
	s.Push(200)
	if s.Pending() != 2 {
		t.Fatalf("pending %d, want 2", s.Pending())
	}
	if at := s.Take(); at != 100 {
		t.Errorf("Take = %v, want FIFO 100", at)
	}
	s.Complete(200, 450)
	if s.Lat.Count() != 1 || s.Lat.Mean() != 250 {
		t.Errorf("latency recorded %v (n=%d), want 250", s.Lat.Mean(), s.Lat.Count())
	}
}

func TestServerTakeEmptyPanics(t *testing.T) {
	s := iodev.NewServer("s", 1)
	defer func() {
		if recover() == nil {
			t.Error("Take on empty server did not panic")
		}
	}()
	s.Take()
}

func TestPoissonSourceRateAndLatencyPath(t *testing.T) {
	h := newIdleHyp()
	d := h.CreateDomain("web", 256, 0, 1)
	srv := iodev.NewServer("web", 1)
	d.OS.Spawn("handler", 0, true,
		workload.NewHandler(srv, 100*sim.Microsecond, cache.Profile{WSS: 32 * hw.KB}), 0)
	src := iodev.NewPoissonSource(h, d, srv, 500, sim.NewRNG(3))
	src.Start()
	h.Run(4 * sim.Second)
	// ~2000 requests expected over 4s at 500/s.
	if n := srv.Lat.Count(); n < 1700 || n > 2300 {
		t.Errorf("served %d requests, want ~2000", n)
	}
	// Idle machine: latency = forward delay + ctx switch + service.
	if m := srv.Lat.Mean(); m > 400*sim.Microsecond {
		t.Errorf("idle-machine mean latency %v, want < 400µs", m)
	}
	if src.Issued() == 0 {
		t.Error("source reports zero issued")
	}
}

func TestPoissonSourceStop(t *testing.T) {
	h := newIdleHyp()
	d := h.CreateDomain("web", 256, 0, 1)
	srv := iodev.NewServer("web", 1)
	d.OS.Spawn("handler", 0, true,
		workload.NewHandler(srv, 50*sim.Microsecond, cache.Profile{WSS: 32 * hw.KB}), 0)
	src := iodev.NewPoissonSource(h, d, srv, 1000, sim.NewRNG(5))
	src.Start()
	h.Run(1 * sim.Second)
	src.Stop()
	at := src.Issued()
	h.Run(2 * sim.Second)
	if src.Issued() > at+1 {
		t.Errorf("source kept issuing after Stop: %d -> %d", at, src.Issued())
	}
}

func TestClosedLoopKeepsBoundedOutstanding(t *testing.T) {
	h := newIdleHyp()
	d := h.CreateDomain("mail", 256, 0, 1)
	srv := iodev.NewServer("mail", 1)
	d.OS.Spawn("handler", 0, true,
		workload.NewHandler(srv, 200*sim.Microsecond, cache.Profile{WSS: 32 * hw.KB}), 0)
	src := iodev.NewClosedLoopSource(h, d, srv, 8, 10*sim.Millisecond, sim.NewRNG(7))
	src.Start()
	h.Run(3 * sim.Second)
	// 8 clients, ~10.2ms cycle: ~780/s -> ~2300 over 3s.
	if n := srv.Lat.Count(); n < 1500 || n > 3000 {
		t.Errorf("closed loop served %d, want ~2300", n)
	}
	if srv.Pending() > 8 {
		t.Errorf("pending %d exceeds client population 8", srv.Pending())
	}
}

func TestClosedLoopThrottlesUnderLoad(t *testing.T) {
	// A saturated server must not accumulate unbounded backlog: the
	// closed loop self-throttles to the service rate.
	h := newIdleHyp()
	d := h.CreateDomain("mail", 256, 0, 1)
	srv := iodev.NewServer("mail", 1)
	d.OS.Spawn("handler", 0, true,
		workload.NewHandler(srv, 5*sim.Millisecond, cache.Profile{WSS: 32 * hw.KB}), 0)
	src := iodev.NewClosedLoopSource(h, d, srv, 16, 1*sim.Millisecond, sim.NewRNG(9))
	src.Start()
	h.Run(3 * sim.Second)
	if srv.Pending() > 16 {
		t.Errorf("backlog %d despite closed loop (16 clients)", srv.Pending())
	}
	// Service-bound throughput: ~200/s.
	if n := srv.Lat.Count(); n < 400 || n > 800 {
		t.Errorf("served %d over 3s, want ~600 (service bound)", n)
	}
}

// Package iodev models the IO path of the split-driver architecture
// (Section 3.3.2 and Fig. 1): requests arrive at a virtual device, pass
// through the driver domain (a fixed forwarding delay standing in for
// dom0's pinned, uncontended cores), raise an event-channel notification
// into the guest, and are finally served by a guest handler thread.
// Request latency — the IOInt metric of the paper — is measured from
// device arrival to guest service completion, so it includes exactly the
// hypervisor scheduling delays the paper manipulates.
package iodev

import (
	"fmt"

	"aqlsched/internal/metrics"
	"aqlsched/internal/sim"
	"aqlsched/internal/xen"
)

// ForwardDelay is the driver-domain (dom0) processing delay per request.
// The paper pins dom0 to dedicated cores, so this path is uncontended
// and constant.
const ForwardDelay = 30 * sim.Microsecond

// Server is the guest-side request queue for one port: the device pushes
// arrival timestamps, the handler program pops them and reports
// completions.
type Server struct {
	Name string
	Port int
	// Lat collects request latencies (arrival to completion).
	Lat *metrics.Histogram

	// arrivals is a FIFO with an explicit head index: Take advances head
	// instead of re-slicing away capacity, and Push compacts in place
	// when full, so a long-lived server stops allocating once the queue
	// reaches its high-water mark.
	arrivals []sim.Time
	head     int
	dropped  uint64
	// onComplete, when set, is invoked at each completion (closed-loop
	// clients use it to issue the next request).
	onComplete func(now sim.Time)
}

// NewServer returns an empty server for the given port.
func NewServer(name string, port int) *Server {
	return &Server{Name: name, Port: port, Lat: metrics.NewHistogram()}
}

// Push records a request arrival (device side).
func (s *Server) Push(at sim.Time) {
	if s.head > 0 && len(s.arrivals) == cap(s.arrivals) {
		n := copy(s.arrivals, s.arrivals[s.head:])
		s.arrivals = s.arrivals[:n]
		s.head = 0
	}
	s.arrivals = append(s.arrivals, at)
}

// Take pops the oldest pending arrival. It panics when empty: the
// handler must only Take after a successful event wait.
func (s *Server) Take() sim.Time {
	if s.Pending() == 0 {
		panic(fmt.Sprintf("iodev: %s: Take with no pending request", s.Name))
	}
	at := s.arrivals[s.head]
	s.head++
	if s.head == len(s.arrivals) {
		s.arrivals = s.arrivals[:0]
		s.head = 0
	}
	return at
}

// Pending reports queued, un-served arrivals.
func (s *Server) Pending() int { return len(s.arrivals) - s.head }

// DropPending discards queued, un-served arrivals (phase teardown: a
// VM leaving its IO phase must not serve stale requests with inflated
// latencies when the next IO phase starts). Returns the count dropped.
func (s *Server) DropPending() int {
	n := s.Pending()
	s.arrivals = s.arrivals[:0]
	s.head = 0
	s.dropped += uint64(n)
	return n
}

// Complete records a finished request that arrived at `arrived`.
func (s *Server) Complete(arrived, now sim.Time) {
	s.Lat.Record(now - arrived)
	if s.onComplete != nil {
		s.onComplete(now)
	}
}

// PoissonSource drives a server with open-loop Poisson arrivals, the
// standard model for an internet-facing service (SPECweb-like load).
type PoissonSource struct {
	h    *xen.Hypervisor
	dom  *xen.Domain
	srv  *Server
	mean sim.Time // mean inter-arrival
	rng  *sim.RNG

	// arrivalFn and notifyFn are bound once at construction and shared
	// by every scheduled occurrence (the engine stores the same function
	// value in many pending events), so the per-request path allocates
	// no closures.
	arrivalFn sim.EventFunc
	notifyFn  sim.EventFunc

	issued  uint64
	stopped bool
	// inflight counts pending arrival events, so a Stop/Start cycle
	// (phased VMs gate their source on the active phase) never stacks a
	// second arrival chain on top of one still in the event queue.
	inflight int
}

// NewPoissonSource builds a source issuing ratePerSec requests per
// second on average. The source is idle until Start.
func NewPoissonSource(h *xen.Hypervisor, dom *xen.Domain, srv *Server, ratePerSec float64, rng *sim.RNG) *PoissonSource {
	if ratePerSec <= 0 {
		panic("iodev: non-positive request rate")
	}
	p := &PoissonSource{
		h:       h,
		dom:     dom,
		srv:     srv,
		mean:    sim.Time(float64(sim.Second) / ratePerSec),
		rng:     rng,
		stopped: true,
	}
	p.arrivalFn = func(now sim.Time) {
		p.inflight--
		if p.stopped {
			return
		}
		p.issue(now)
		p.scheduleNext()
	}
	p.notifyFn = func(t sim.Time) {
		p.h.NotifyIO(p.dom, p.srv.Port, t)
	}
	return p
}

// Start begins (or resumes) issuing requests. Idempotent: a running
// source stays on a single arrival chain.
func (p *PoissonSource) Start() {
	if !p.stopped {
		return
	}
	p.stopped = false
	if p.inflight == 0 {
		p.scheduleNext()
	}
}

// Stop ceases issuing after the next pending arrival. A later Start
// resumes the chain.
func (p *PoissonSource) Stop() { p.stopped = true }

// Issued reports the number of requests issued so far.
func (p *PoissonSource) Issued() uint64 { return p.issued }

func (p *PoissonSource) scheduleNext() {
	p.inflight++
	p.h.Engine.After(p.rng.ExpTime(p.mean), p.arrivalFn)
}

func (p *PoissonSource) issue(now sim.Time) {
	p.issued++
	p.srv.Push(now)
	// Driver-domain forwarding, then the event-channel upcall.
	p.h.Engine.After(ForwardDelay, p.notifyFn)
}

// ClosedLoopSource models N clients that each keep one request in
// flight, thinking for a fixed time between completion and re-issue
// (SPECmail-like corporate load).
type ClosedLoopSource struct {
	h     *xen.Hypervisor
	dom   *xen.Domain
	srv   *Server
	think sim.Time
	rng   *sim.RNG

	// issueFn and notifyFn are bound once and shared across occurrences
	// (see PoissonSource): completions re-issue without allocating.
	issueFn  sim.EventFunc
	notifyFn sim.EventFunc

	clients int
	issued  uint64
	stopped bool
}

// NewClosedLoopSource builds a closed-loop source with the given client
// count and mean think time.
func NewClosedLoopSource(h *xen.Hypervisor, dom *xen.Domain, srv *Server, clients int, think sim.Time, rng *sim.RNG) *ClosedLoopSource {
	if clients <= 0 {
		panic("iodev: closed loop needs at least one client")
	}
	c := &ClosedLoopSource{h: h, dom: dom, srv: srv, think: think, rng: rng, clients: clients}
	c.issueFn = func(now sim.Time) {
		if !c.stopped {
			c.issue(now)
		}
	}
	c.notifyFn = func(t sim.Time) {
		c.h.NotifyIO(c.dom, c.srv.Port, t)
	}
	srv.onComplete = c.completed
	return c
}

// Start issues the initial burst (one request per client, jittered).
func (c *ClosedLoopSource) Start() {
	for i := 0; i < c.clients; i++ {
		c.h.Engine.After(c.rng.ExpTime(c.think), c.issueFn)
	}
}

// Stop ends the loop: completions no longer re-issue.
func (c *ClosedLoopSource) Stop() { c.stopped = true }

// Issued reports the number of requests issued so far.
func (c *ClosedLoopSource) Issued() uint64 { return c.issued }

func (c *ClosedLoopSource) completed(now sim.Time) {
	if c.stopped {
		return
	}
	c.h.Engine.After(c.rng.ExpTime(c.think), c.issueFn)
}

func (c *ClosedLoopSource) issue(now sim.Time) {
	c.issued++
	c.srv.Push(now)
	c.h.Engine.After(ForwardDelay, c.notifyFn)
}

package hw

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"aqlsched/internal/sim"
)

func TestBuilderDefaultsAreI73770(t *testing.T) {
	got, err := TopologyBuilder{Sockets: 1, CoresPerSocket: 8}.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := &Topology{
		Sockets:        1,
		CoresPerSocket: 8,
		L1:             CacheSpec{Size: 32 * KB, Ways: 8, LineSize: 64, LatencyNS: 1},
		L2:             CacheSpec{Size: 256 * KB, Ways: 8, LineSize: 64, LatencyNS: 4},
		LLC:            CacheSpec{Size: 8 * MB, Ways: 20, LineSize: 64, LatencyNS: 12, SharedLLC: true},
		MemLatencyNS:   80,
		MemBandwidth:   12 * GB,
		CtxSwitchCost:  3 * sim.Microsecond,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("builder defaults drifted from the Table 2 machine:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestBuilderXeonMatchesSection42(t *testing.T) {
	got := XeonE54603()
	want := &Topology{
		Sockets:        4,
		CoresPerSocket: 4,
		L1:             CacheSpec{Size: 32 * KB, Ways: 8, LineSize: 64, LatencyNS: 1},
		L2:             CacheSpec{Size: 256 * KB, Ways: 8, LineSize: 64, LatencyNS: 4},
		LLC:            CacheSpec{Size: 10 * MB, Ways: 20, LineSize: 64, LatencyNS: 14, SharedLLC: true},
		MemLatencyNS:   95,
		MemBandwidth:   10 * GB,
		CtxSwitchCost:  3 * sim.Microsecond,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Xeon builder drifted from the Section 4.2 machine:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestBuilderValidation(t *testing.T) {
	bad := []struct {
		name string
		b    TopologyBuilder
	}{
		{"no sockets", TopologyBuilder{CoresPerSocket: 4}},
		{"no cores", TopologyBuilder{Sockets: 2}},
		{"negative L1", TopologyBuilder{Sockets: 1, CoresPerSocket: 1, L1KB: -1}},
		{"negative bandwidth", TopologyBuilder{Sockets: 1, CoresPerSocket: 1, MemGBps: -4}},
		{"negative latency", TopologyBuilder{Sockets: 1, CoresPerSocket: 1, MemNS: -80}},
		{"inverted hierarchy", TopologyBuilder{Sockets: 1, CoresPerSocket: 1, L2KB: 16 * 1024, LLCMB: 1}},
		{"negative ctx switch", TopologyBuilder{Sockets: 1, CoresPerSocket: 1, CtxSwitchUS: -3}},
	}
	for _, tc := range bad {
		if _, err := tc.b.Build(); err == nil {
			t.Errorf("%s: bad builder accepted", tc.name)
		}
	}
	if err := (TopologyBuilder{Sockets: 2, CoresPerSocket: 16, LLCMB: 24}).Validate(); err != nil {
		t.Errorf("good builder rejected: %v", err)
	}
}

func TestBuilderFromJSON(t *testing.T) {
	var b TopologyBuilder
	blob := `{"sockets": 2, "cores_per_socket": 8, "llc_mb": 12, "llc_ways": 16, "mem_ns": 90, "mem_gbps": 14}`
	if err := json.Unmarshal([]byte(blob), &b); err != nil {
		t.Fatal(err)
	}
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.TotalPCPUs() != 16 {
		t.Errorf("TotalPCPUs = %d, want 16", topo.TotalPCPUs())
	}
	if topo.LLC.Size != 12*MB || topo.LLC.Ways != 16 {
		t.Errorf("LLC %d B %d ways, want 12 MB 16 ways", topo.LLC.Size, topo.LLC.Ways)
	}
	if topo.MemLatencyNS != 90 || topo.MemBandwidth != 14*GB {
		t.Errorf("memory system %d ns %d B/s", topo.MemLatencyNS, topo.MemBandwidth)
	}
	// Unspecified knobs fall back to calibration defaults.
	if topo.L1.Size != 32*KB || topo.L2.Size != 256*KB {
		t.Errorf("L1/L2 defaults lost: %d/%d", topo.L1.Size, topo.L2.Size)
	}
}

func TestTopologyRegistry(t *testing.T) {
	names := TopologyNames()
	if len(names) < 2 {
		t.Fatalf("registry too small: %v", names)
	}
	for _, want := range []string{"i7-3770", "xeon-e5-4603"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("paper machine %q not registered (have %v)", want, names)
		}
	}

	i7, err := TopologyByName("i7-3770")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(i7, I73770()) {
		t.Error("registry i7-3770 differs from I73770()")
	}
	// Lookups return fresh copies, never a shared value.
	other, _ := TopologyByName("i7-3770")
	if i7 == other {
		t.Error("registry handed out the same *Topology twice")
	}

	if _, err := TopologyByName("pdp-11"); err == nil || !strings.Contains(err.Error(), "pdp-11") {
		t.Errorf("unknown topology error = %v", err)
	}
}

func TestRegisterTopologyGuards(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("empty name", func() { RegisterTopology("", I73770) })
	expectPanic("nil factory", func() { RegisterTopology("x", nil) })
	expectPanic("duplicate", func() { RegisterTopology("i7-3770", I73770) })
}

package hw

import (
	"testing"
	"testing/quick"
)

func TestReferenceMachinesValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		top  *Topology
	}{
		{"i7-3770", I73770()},
		{"Xeon E5-4603", XeonE54603()},
	} {
		if err := tc.top.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestI73770MatchesTable2(t *testing.T) {
	top := I73770()
	if top.Sockets != 1 || top.CoresPerSocket != 8 {
		t.Errorf("i7-3770: %d sockets x %d cores, want 1x8", top.Sockets, top.CoresPerSocket)
	}
	if top.LLC.Size != 8*MB {
		t.Errorf("LLC size %d, want 8 MB", top.LLC.Size)
	}
	if top.LLC.Ways != 20 {
		t.Errorf("LLC ways %d, want 20", top.LLC.Ways)
	}
	if top.L2.Size != 256*KB || top.L1.Size != 32*KB {
		t.Errorf("L1/L2 sizes %d/%d, want 32KB/256KB", top.L1.Size, top.L2.Size)
	}
}

func TestXeonHasFourSockets(t *testing.T) {
	top := XeonE54603()
	if top.Sockets != 4 || top.CoresPerSocket != 4 {
		t.Errorf("Xeon: %d sockets x %d cores, want 4x4", top.Sockets, top.CoresPerSocket)
	}
	if top.TotalPCPUs() != 16 {
		t.Errorf("TotalPCPUs = %d, want 16", top.TotalPCPUs())
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	good := I73770()
	cases := []func(*Topology){
		func(t *Topology) { t.Sockets = 0 },
		func(t *Topology) { t.CoresPerSocket = -1 },
		func(t *Topology) { t.LLC.Size = 0 },
		func(t *Topology) { t.L2.Size = 0 },
		func(t *Topology) { t.MemBandwidth = 0 },
		func(t *Topology) { t.MemLatencyNS = 0 },
	}
	for i, mutate := range cases {
		top := *good
		mutate(&top)
		if err := top.Validate(); err == nil {
			t.Errorf("case %d: bad topology validated", i)
		}
	}
}

func TestSocketOfMapping(t *testing.T) {
	top := XeonE54603()
	cases := []struct {
		p    PCPUID
		want SocketID
	}{
		{0, 0}, {3, 0}, {4, 1}, {7, 1}, {8, 2}, {15, 3},
	}
	for _, c := range cases {
		if got := top.SocketOf(c.p); got != c.want {
			t.Errorf("SocketOf(%d) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestPCPUsOfSocket(t *testing.T) {
	top := XeonE54603()
	got := top.PCPUsOfSocket(2)
	want := []PCPUID{8, 9, 10, 11}
	if len(got) != len(want) {
		t.Fatalf("PCPUsOfSocket(2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PCPUsOfSocket(2) = %v, want %v", got, want)
		}
	}
}

// Property: every pCPU maps to the socket that lists it.
func TestSocketMappingRoundTripProperty(t *testing.T) {
	f := func(sockets, cores uint8) bool {
		top := &Topology{Sockets: int(sockets%6) + 1, CoresPerSocket: int(cores%8) + 1}
		for p := 0; p < top.TotalPCPUs(); p++ {
			s := top.SocketOf(PCPUID(p))
			found := false
			for _, q := range top.PCPUsOfSocket(s) {
				if q == PCPUID(p) {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCountersDeltaAndRatios(t *testing.T) {
	a := Counters{Instructions: 1000, LLCReferences: 100, LLCMisses: 25, IOEvents: 3, PauseLoops: 7}
	b := Counters{Instructions: 4000, LLCReferences: 400, LLCMisses: 100, IOEvents: 10, PauseLoops: 20}
	d := b.Sub(a)
	if d.Instructions != 3000 || d.LLCReferences != 300 || d.LLCMisses != 75 {
		t.Errorf("delta = %+v", d)
	}
	if got := d.LLCMissRatio(); got != 0.25 {
		t.Errorf("LLCMissRatio = %v, want 0.25", got)
	}
	if got := d.LLCRefRatio(); got != 0.1 {
		t.Errorf("LLCRefRatio = %v, want 0.1", got)
	}
	var zero Counters
	if zero.LLCMissRatio() != 0 || zero.LLCRefRatio() != 0 {
		t.Error("zero counters must have zero ratios")
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Instructions: 1, LLCReferences: 2, LLCMisses: 3, IOEvents: 4, PauseLoops: 5, StolenTime: 6}
	b := a
	b.Add(a)
	if b.Instructions != 2 || b.LLCReferences != 4 || b.LLCMisses != 6 ||
		b.IOEvents != 8 || b.PauseLoops != 10 || b.StolenTime != 12 {
		t.Errorf("Add result %+v", b)
	}
}

// bigLittle is a two-socket classed machine: per socket, cores 0-2 are
// "big" at baseline speed, cores 3-7 "little" at 0.6 with a smaller L2.
func bigLittle() *Topology {
	top := *I73770()
	top.Sockets = 2
	top.Classes = []CoreClass{
		{Name: "big", Count: 3, Speed: 1},
		{Name: "little", Count: 5, Speed: 0.6, L2: &CacheSpec{Size: 128 * KB, Ways: 8, LineSize: 64}},
	}
	return &top
}

func TestCoreClassMapping(t *testing.T) {
	top := bigLittle()
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if !top.Heterogeneous() {
		t.Fatal("classed topology not heterogeneous")
	}
	if got := top.FastestClass(); got != 0 {
		t.Errorf("FastestClass = %d, want 0", got)
	}
	// The class layout repeats per socket: socket-major pCPU IDs are
	// preserved, so socket 1's cores 8-10 are big again.
	cases := []struct {
		p     PCPUID
		class int
		speed float64
	}{
		{0, 0, 1}, {2, 0, 1}, {3, 1, 0.6}, {7, 1, 0.6},
		{8, 0, 1}, {10, 0, 1}, {11, 1, 0.6}, {15, 1, 0.6},
	}
	for _, c := range cases {
		if got := top.ClassOf(c.p); got != c.class {
			t.Errorf("ClassOf(%d) = %d, want %d", c.p, got, c.class)
		}
		if got := top.SpeedOf(c.p); got != c.speed {
			t.Errorf("SpeedOf(%d) = %v, want %v", c.p, got, c.speed)
		}
	}
	// Cache overrides apply to the little class only.
	if got := top.L2Of(0).Size; got != 256*KB {
		t.Errorf("big L2 = %d, want the machine default 256 KB", got)
	}
	if got := top.L2Of(3).Size; got != 128*KB {
		t.Errorf("little L2 = %d, want the 128 KB override", got)
	}
	if got := top.L1Of(3).Size; got != 32*KB {
		t.Errorf("little L1 = %d, want the machine default 32 KB", got)
	}
}

func TestHomogeneousTopologyHasNoClasses(t *testing.T) {
	top := I73770()
	if top.Heterogeneous() {
		t.Error("i7-3770 reports heterogeneous")
	}
	if got := top.ClassOf(0); got != -1 {
		t.Errorf("ClassOf = %d, want -1", got)
	}
	if got := top.SpeedOf(5); got != 1 {
		t.Errorf("SpeedOf = %v, want 1", got)
	}
	if got := top.FastestClass(); got != -1 {
		t.Errorf("FastestClass = %d, want -1", got)
	}
	// Uniform classes at speed 1 with no overrides stay homogeneous.
	top.Classes = []CoreClass{{Count: 8}}
	if top.Heterogeneous() {
		t.Error("single speed-1 class reports heterogeneous")
	}
}

func TestValidateRejectsBadClasses(t *testing.T) {
	cases := []func(*Topology){
		func(t *Topology) { t.Classes[0].Count = 0 },
		func(t *Topology) { t.Classes[1].Speed = -0.5 },
		func(t *Topology) { t.Classes[1].Count = 6 }, // sum != cores_per_socket
		func(t *Topology) { t.Classes[1].L2 = &CacheSpec{Size: 0} },
	}
	for i, mutate := range cases {
		top := bigLittle()
		mutate(top)
		if err := top.Validate(); err == nil {
			t.Errorf("case %d: bad class set validated", i)
		}
	}
}

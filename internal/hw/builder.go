package hw

import (
	"fmt"

	"aqlsched/internal/sim"
)

// TopologyBuilder constructs validated Topology values from a compact,
// JSON-friendly parameter set: socket/core counts plus cache geometry
// and memory-system knobs in human units (KB/MB, ns, GB/s, µs). Zero
// fields take the calibration machine's defaults (Table 2's i7-3770),
// so the minimal builder only names the machine shape:
//
//	topo, err := hw.TopologyBuilder{Sockets: 2, CoresPerSocket: 8}.Build()
//
// The JSON tags are the spec-file schema: sweep spec files may define
// machines inline under "topologies" (see internal/sweep).
type TopologyBuilder struct {
	Sockets        int `json:"sockets"`
	CoresPerSocket int `json:"cores_per_socket"`

	// Cache capacities: L1/L2 in KB, LLC in MB.
	L1KB  int64   `json:"l1_kb,omitempty"`
	L2KB  int64   `json:"l2_kb,omitempty"`
	LLCMB float64 `json:"llc_mb,omitempty"`

	// Associativity and line size (bytes, shared by all levels).
	L1Ways   int   `json:"l1_ways,omitempty"`
	L2Ways   int   `json:"l2_ways,omitempty"`
	LLCWays  int   `json:"llc_ways,omitempty"`
	LineSize int64 `json:"line_size,omitempty"`

	// Load-to-use latencies in nanoseconds.
	L1NS  int64 `json:"l1_ns,omitempty"`
	L2NS  int64 `json:"l2_ns,omitempty"`
	LLCNS int64 `json:"llc_ns,omitempty"`
	MemNS int64 `json:"mem_ns,omitempty"`

	// MemGBps is the per-socket fill bandwidth in GB/s.
	MemGBps float64 `json:"mem_gbps,omitempty"`
	// CtxSwitchUS is the direct context-switch cost in microseconds.
	CtxSwitchUS float64 `json:"ctx_switch_us,omitempty"`

	// Classes partitions each socket's cores into heterogeneous core
	// classes (big.LITTLE-style). Counts must sum to cores_per_socket;
	// empty means one homogeneous class at speed 1.
	Classes []CoreClassBuilder `json:"classes,omitempty"`
}

// CoreClassBuilder is the JSON-friendly form of one CoreClass.
type CoreClassBuilder struct {
	// Name labels the class in listings ("big", "little").
	Name string `json:"name,omitempty"`
	// Count is the number of cores per socket in this class.
	Count int `json:"count"`
	// Speed is the class's relative execution speed (default 1).
	Speed float64 `json:"speed,omitempty"`
	// L1KB and L2KB override the class's private cache capacities;
	// 0 keeps the topology-wide sizes.
	L1KB int64 `json:"l1_kb,omitempty"`
	L2KB int64 `json:"l2_kb,omitempty"`
}

// withDefaults returns a copy with every zero knob replaced by the
// i7-3770 calibration value.
func (b TopologyBuilder) withDefaults() TopologyBuilder {
	def := func(v *int64, d int64) {
		if *v == 0 {
			*v = d
		}
	}
	defI := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	defF := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&b.L1KB, 32)
	def(&b.L2KB, 256)
	defF(&b.LLCMB, 8)
	defI(&b.L1Ways, 8)
	defI(&b.L2Ways, 8)
	defI(&b.LLCWays, 20)
	def(&b.LineSize, 64)
	def(&b.L1NS, 1)
	def(&b.L2NS, 4)
	def(&b.LLCNS, 12)
	def(&b.MemNS, 80)
	defF(&b.MemGBps, 12)
	defF(&b.CtxSwitchUS, 3)
	return b
}

// Validate reports an error when the parameters cannot yield a usable
// topology. Zero knobs are validated after default substitution, so
// only explicitly bad values are rejected.
func (b TopologyBuilder) Validate() error {
	if b.Sockets <= 0 {
		return fmt.Errorf("hw: builder needs at least one socket, got %d", b.Sockets)
	}
	if b.CoresPerSocket <= 0 {
		return fmt.Errorf("hw: builder needs at least one core per socket, got %d", b.CoresPerSocket)
	}
	// Sanity cap: a typo (or a fuzzer) asking for a million-core machine
	// must fail validation, not exhaust memory building per-core state.
	const maxCores = 4096
	if int64(b.Sockets)*int64(b.CoresPerSocket) > maxCores {
		return fmt.Errorf("hw: builder asks for %d x %d cores, more than the %d sanity cap",
			b.Sockets, b.CoresPerSocket, maxCores)
	}
	d := b.withDefaults()
	switch {
	case d.L1KB < 0 || d.L2KB < 0 || d.LLCMB < 0:
		return fmt.Errorf("hw: builder cache sizes must be positive")
	case d.L1Ways < 0 || d.L2Ways < 0 || d.LLCWays < 0:
		return fmt.Errorf("hw: builder associativities must be positive")
	case d.LineSize < 0:
		return fmt.Errorf("hw: builder line size must be positive, got %d", d.LineSize)
	case d.L1NS < 0 || d.L2NS < 0 || d.LLCNS < 0 || d.MemNS < 0:
		return fmt.Errorf("hw: builder latencies must be positive")
	case d.MemGBps < 0:
		return fmt.Errorf("hw: builder memory bandwidth must be positive, got %v GB/s", d.MemGBps)
	case d.CtxSwitchUS < 0:
		return fmt.Errorf("hw: builder context-switch cost must be positive, got %v µs", d.CtxSwitchUS)
	}
	l1 := d.L1KB * KB
	l2 := d.L2KB * KB
	llc := int64(d.LLCMB * float64(MB))
	if !(l1 < l2 && l2 < llc) {
		return fmt.Errorf("hw: builder cache hierarchy must grow: L1 %d B < L2 %d B < LLC %d B", l1, l2, llc)
	}
	if len(d.Classes) > 0 {
		total := 0
		for i, c := range d.Classes {
			if c.Count <= 0 {
				return fmt.Errorf("hw: builder core class %d needs a positive count, got %d", i, c.Count)
			}
			if c.Speed < 0 {
				return fmt.Errorf("hw: builder core class %d speed must not be negative, got %v", i, c.Speed)
			}
			if c.L1KB < 0 || c.L2KB < 0 {
				return fmt.Errorf("hw: builder core class %d cache overrides must be positive", i)
			}
			cl1, cl2 := c.L1KB*KB, c.L2KB*KB
			if cl1 == 0 {
				cl1 = l1
			}
			if cl2 == 0 {
				cl2 = l2
			}
			if !(cl1 < cl2 && cl2 < llc) {
				return fmt.Errorf("hw: builder core class %d cache hierarchy must grow: L1 %d B < L2 %d B < LLC %d B", i, cl1, cl2, llc)
			}
			total += c.Count
		}
		if total != d.CoresPerSocket {
			return fmt.Errorf("hw: builder core classes cover %d cores per socket, machine has %d", total, d.CoresPerSocket)
		}
	}
	return nil
}

// Build validates the parameters and constructs the topology.
func (b TopologyBuilder) Build() (*Topology, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	d := b.withDefaults()
	t := &Topology{
		Sockets:        d.Sockets,
		CoresPerSocket: d.CoresPerSocket,
		L1:             CacheSpec{Size: d.L1KB * KB, Ways: d.L1Ways, LineSize: d.LineSize, LatencyNS: d.L1NS},
		L2:             CacheSpec{Size: d.L2KB * KB, Ways: d.L2Ways, LineSize: d.LineSize, LatencyNS: d.L2NS},
		LLC:            CacheSpec{Size: int64(d.LLCMB * float64(MB)), Ways: d.LLCWays, LineSize: d.LineSize, LatencyNS: d.LLCNS, SharedLLC: true},
		MemLatencyNS:   d.MemNS,
		MemBandwidth:   int64(d.MemGBps * float64(GB)),
		CtxSwitchCost:  sim.Time(d.CtxSwitchUS * float64(sim.Microsecond)),
	}
	for _, c := range d.Classes {
		cc := CoreClass{Name: c.Name, Count: c.Count, Speed: c.Speed}
		if c.L1KB != 0 {
			l1 := t.L1
			l1.Size = c.L1KB * KB
			cc.L1 = &l1
		}
		if c.L2KB != 0 {
			l2 := t.L2
			l2.Size = c.L2KB * KB
			cc.L2 = &l2
		}
		t.Classes = append(t.Classes, cc)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustBuild is Build for statically known-good parameters.
func (b TopologyBuilder) MustBuild() *Topology {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

package hw

// Counters is the per-vCPU performance-monitoring block. The simulator's
// execution and cache models increment these exactly where real hardware
// and the Xen event-channel machinery would, and the vCPU type
// recognition system (vTRS) reads and resets them each monitoring
// period, mirroring the perfctr-xen based monitors of Section 3.3.2.
type Counters struct {
	// Instructions retired (in abstract work units; the model uses one
	// unit per nominal nanosecond of ideal execution).
	Instructions uint64
	// LLCReferences counts loads that reached the last-level cache.
	LLCReferences uint64
	// LLCMisses counts LLC references that missed to memory.
	LLCMisses uint64
	// IOEvents counts event-channel notifications bound for this vCPU
	// (the IO request counter of the IOInt monitor).
	IOEvents uint64
	// PauseLoops counts PAUSE-loop exits (spin iterations trapped by the
	// hardware's Pause Loop Exiting feature).
	PauseLoops uint64
	// LockOps counts spin-lock acquisitions performed by the vCPU (the
	// ConSpin monitor: the paper's hypercall wrapper around the guest
	// spin-lock API, Section 3.3.2).
	LockOps uint64
	// StolenTime accumulates time the vCPU spent runnable but not
	// running (used by overhead diagnostics, not by vTRS).
	StolenTime uint64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Instructions += other.Instructions
	c.LLCReferences += other.LLCReferences
	c.LLCMisses += other.LLCMisses
	c.IOEvents += other.IOEvents
	c.PauseLoops += other.PauseLoops
	c.LockOps += other.LockOps
	c.StolenTime += other.StolenTime
}

// Sub returns c - other, counter-wise. Used to compute per-period deltas
// from free-running counters.
func (c Counters) Sub(other Counters) Counters {
	return Counters{
		Instructions:  c.Instructions - other.Instructions,
		LLCReferences: c.LLCReferences - other.LLCReferences,
		LLCMisses:     c.LLCMisses - other.LLCMisses,
		IOEvents:      c.IOEvents - other.IOEvents,
		PauseLoops:    c.PauseLoops - other.PauseLoops,
		LockOps:       c.LockOps - other.LockOps,
		StolenTime:    c.StolenTime - other.StolenTime,
	}
}

// LLCMissRatio reports misses per reference in [0,1]; zero when the
// period had no LLC references.
func (c Counters) LLCMissRatio() float64 {
	if c.LLCReferences == 0 {
		return 0
	}
	return float64(c.LLCMisses) / float64(c.LLCReferences)
}

// LLCRefRatio reports LLC references per instruction; zero when the
// period retired no instructions.
func (c Counters) LLCRefRatio() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.LLCReferences) / float64(c.Instructions)
}

// Package hw models the physical machine the hypervisor manages:
// sockets, cores (pCPUs), the cache hierarchy geometry, and the per-vCPU
// performance-monitoring-unit (PMU) counter block the recognition system
// reads.
//
// Two concrete machines from the paper are provided: the single-socket
// Intel i7-3770 used for calibration and the single-socket experiments
// (Table 2), and the four-socket Xeon E5-4603 used for the multi-socket
// experiment (Section 4.2).
package hw

import (
	"fmt"

	"aqlsched/internal/sim"
)

// Sizes in bytes.
const (
	KB int64 = 1024
	MB int64 = 1024 * KB
	GB int64 = 1024 * MB
)

// CacheSpec describes one level of the cache hierarchy.
type CacheSpec struct {
	Size      int64 // capacity in bytes
	Ways      int   // associativity
	LineSize  int64 // bytes per line
	LatencyNS int64 // load-to-use latency in nanoseconds
	SharedLLC bool  // true when this level is shared per socket
}

// Topology describes the machine geometry and memory system parameters
// used by the cache/performance model.
type Topology struct {
	Sockets        int
	CoresPerSocket int

	L1  CacheSpec
	L2  CacheSpec
	LLC CacheSpec

	// Classes partitions each socket's cores into heterogeneous core
	// classes. Empty means one homogeneous class at speed 1 with the
	// topology-wide cache specs — exactly today's layout.
	Classes []CoreClass

	// MemLatencyNS is the LLC-miss (DRAM) load latency in nanoseconds.
	MemLatencyNS int64
	// MemBandwidth is the per-socket fill bandwidth in bytes per second,
	// bounding how fast a working set can be re-installed in the LLC.
	MemBandwidth int64
	// CtxSwitchCost is the direct hypervisor context-switch cost
	// (register state, runqueue manipulation) per dispatch.
	CtxSwitchCost sim.Time
}

// CoreClass describes one group of cores within each socket of a
// heterogeneous (big.LITTLE-style) machine: how many cores per socket
// belong to the class, how fast they execute relative to the baseline,
// and optional private-cache overrides. Classes partition each socket
// in list order: with classes {big: 4, little: 4}, cores 0-3 of every
// socket are big, cores 4-7 little (socket-major pCPU IDs preserved).
type CoreClass struct {
	// Name labels the class in listings ("big", "little"); optional.
	Name string
	// Count is the number of cores per socket in this class.
	Count int
	// Speed is the class's execution speed relative to the machine's
	// baseline core (1 = baseline, 0.5 = half speed). 0 means 1.
	Speed float64
	// L1 and L2 override the topology-wide private cache specs for the
	// class's cores; nil keeps the defaults.
	L1, L2 *CacheSpec
}

// speed reports the class's effective speed factor.
func (c CoreClass) speed() float64 {
	if c.Speed == 0 {
		return 1
	}
	return c.Speed
}

// TotalPCPUs reports the number of physical CPUs.
func (t *Topology) TotalPCPUs() int { return t.Sockets * t.CoresPerSocket }

// Validate reports an error when the topology is not usable.
func (t *Topology) Validate() error {
	switch {
	case t.Sockets <= 0:
		return fmt.Errorf("hw: topology needs at least one socket, got %d", t.Sockets)
	case t.CoresPerSocket <= 0:
		return fmt.Errorf("hw: topology needs at least one core per socket, got %d", t.CoresPerSocket)
	case t.LLC.Size <= 0:
		return fmt.Errorf("hw: LLC size must be positive, got %d", t.LLC.Size)
	case t.L2.Size <= 0 || t.L1.Size <= 0:
		return fmt.Errorf("hw: L1/L2 sizes must be positive")
	case t.MemBandwidth <= 0:
		return fmt.Errorf("hw: memory bandwidth must be positive")
	case t.MemLatencyNS <= 0:
		return fmt.Errorf("hw: memory latency must be positive")
	}
	if len(t.Classes) > 0 {
		total := 0
		for i, c := range t.Classes {
			if c.Count <= 0 {
				return fmt.Errorf("hw: core class %d needs a positive count, got %d", i, c.Count)
			}
			if c.Speed < 0 {
				return fmt.Errorf("hw: core class %d speed must not be negative, got %v", i, c.Speed)
			}
			for _, cs := range []*CacheSpec{c.L1, c.L2} {
				if cs != nil && cs.Size <= 0 {
					return fmt.Errorf("hw: core class %d cache override needs a positive size", i)
				}
			}
			total += c.Count
		}
		if total != t.CoresPerSocket {
			return fmt.Errorf("hw: core classes cover %d cores per socket, topology has %d", total, t.CoresPerSocket)
		}
	}
	return nil
}

// ClassOf reports the index into Classes of a pCPU's core class, or -1
// on a homogeneous topology.
func (t *Topology) ClassOf(p PCPUID) int {
	if len(t.Classes) == 0 {
		return -1
	}
	c := int(p) % t.CoresPerSocket // class layout repeats per socket
	for i := range t.Classes {
		if c < t.Classes[i].Count {
			return i
		}
		c -= t.Classes[i].Count
	}
	return len(t.Classes) - 1
}

// SpeedOf reports a pCPU's execution speed factor (1 on homogeneous
// topologies).
func (t *Topology) SpeedOf(p PCPUID) float64 {
	if i := t.ClassOf(p); i >= 0 {
		return t.Classes[i].speed()
	}
	return 1
}

// L1Of and L2Of report a pCPU's private cache specs, honoring any
// class override.
func (t *Topology) L1Of(p PCPUID) CacheSpec {
	if i := t.ClassOf(p); i >= 0 && t.Classes[i].L1 != nil {
		return *t.Classes[i].L1
	}
	return t.L1
}

// L2Of is L1Of for the second-level private cache.
func (t *Topology) L2Of(p PCPUID) CacheSpec {
	if i := t.ClassOf(p); i >= 0 && t.Classes[i].L2 != nil {
		return *t.Classes[i].L2
	}
	return t.L2
}

// Heterogeneous reports whether the topology's core classes make some
// cores differ from others — by speed or by private-cache geometry.
func (t *Topology) Heterogeneous() bool {
	for _, c := range t.Classes {
		if c.speed() != 1 || c.L1 != nil || c.L2 != nil {
			return true
		}
	}
	return false
}

// FastestClass reports the index of the highest-speed core class, or
// -1 on a homogeneous topology. Ties break to the earlier class.
func (t *Topology) FastestClass() int {
	best, bestSpeed := -1, 0.0
	for i, c := range t.Classes {
		if s := c.speed(); s > bestSpeed {
			best, bestSpeed = i, s
		}
	}
	return best
}

// I73770 returns the calibration machine from Table 2 of the paper:
// one socket, 8 cores, 32 KB L1D, 256 KB L2, 8 MB 20-way LLC, 8 GB RAM.
// Its parameters are the TopologyBuilder defaults; registered as
// "i7-3770".
func I73770() *Topology {
	return TopologyBuilder{Sockets: 1, CoresPerSocket: 8}.MustBuild()
}

// XeonE54603 returns the four-socket machine used in Section 4.2:
// 4 sockets x 4 cores, 10 MB LLC per socket. Registered as
// "xeon-e5-4603".
func XeonE54603() *Topology {
	return TopologyBuilder{
		Sockets:        4,
		CoresPerSocket: 4,
		LLCMB:          10,
		LLCNS:          14,
		MemNS:          95,
		MemGBps:        10,
	}.MustBuild()
}

// PCPUID identifies one physical CPU.
type PCPUID int

// SocketID identifies one socket.
type SocketID int

// SocketOf reports which socket a pCPU belongs to. pCPUs are numbered
// socket-major: socket s owns pCPUs [s*CoresPerSocket, (s+1)*CoresPerSocket).
func (t *Topology) SocketOf(p PCPUID) SocketID {
	return SocketID(int(p) / t.CoresPerSocket)
}

// PCPUsOfSocket lists the pCPU IDs belonging to socket s.
func (t *Topology) PCPUsOfSocket(s SocketID) []PCPUID {
	out := make([]PCPUID, 0, t.CoresPerSocket)
	base := int(s) * t.CoresPerSocket
	for i := 0; i < t.CoresPerSocket; i++ {
		out = append(out, PCPUID(base+i))
	}
	return out
}

// Package hw models the physical machine the hypervisor manages:
// sockets, cores (pCPUs), the cache hierarchy geometry, and the per-vCPU
// performance-monitoring-unit (PMU) counter block the recognition system
// reads.
//
// Two concrete machines from the paper are provided: the single-socket
// Intel i7-3770 used for calibration and the single-socket experiments
// (Table 2), and the four-socket Xeon E5-4603 used for the multi-socket
// experiment (Section 4.2).
package hw

import (
	"fmt"

	"aqlsched/internal/sim"
)

// Sizes in bytes.
const (
	KB int64 = 1024
	MB int64 = 1024 * KB
	GB int64 = 1024 * MB
)

// CacheSpec describes one level of the cache hierarchy.
type CacheSpec struct {
	Size      int64 // capacity in bytes
	Ways      int   // associativity
	LineSize  int64 // bytes per line
	LatencyNS int64 // load-to-use latency in nanoseconds
	SharedLLC bool  // true when this level is shared per socket
}

// Topology describes the machine geometry and memory system parameters
// used by the cache/performance model.
type Topology struct {
	Sockets        int
	CoresPerSocket int

	L1  CacheSpec
	L2  CacheSpec
	LLC CacheSpec

	// MemLatencyNS is the LLC-miss (DRAM) load latency in nanoseconds.
	MemLatencyNS int64
	// MemBandwidth is the per-socket fill bandwidth in bytes per second,
	// bounding how fast a working set can be re-installed in the LLC.
	MemBandwidth int64
	// CtxSwitchCost is the direct hypervisor context-switch cost
	// (register state, runqueue manipulation) per dispatch.
	CtxSwitchCost sim.Time
}

// TotalPCPUs reports the number of physical CPUs.
func (t *Topology) TotalPCPUs() int { return t.Sockets * t.CoresPerSocket }

// Validate reports an error when the topology is not usable.
func (t *Topology) Validate() error {
	switch {
	case t.Sockets <= 0:
		return fmt.Errorf("hw: topology needs at least one socket, got %d", t.Sockets)
	case t.CoresPerSocket <= 0:
		return fmt.Errorf("hw: topology needs at least one core per socket, got %d", t.CoresPerSocket)
	case t.LLC.Size <= 0:
		return fmt.Errorf("hw: LLC size must be positive, got %d", t.LLC.Size)
	case t.L2.Size <= 0 || t.L1.Size <= 0:
		return fmt.Errorf("hw: L1/L2 sizes must be positive")
	case t.MemBandwidth <= 0:
		return fmt.Errorf("hw: memory bandwidth must be positive")
	case t.MemLatencyNS <= 0:
		return fmt.Errorf("hw: memory latency must be positive")
	}
	return nil
}

// I73770 returns the calibration machine from Table 2 of the paper:
// one socket, 8 cores, 32 KB L1D, 256 KB L2, 8 MB 20-way LLC, 8 GB RAM.
// Its parameters are the TopologyBuilder defaults; registered as
// "i7-3770".
func I73770() *Topology {
	return TopologyBuilder{Sockets: 1, CoresPerSocket: 8}.MustBuild()
}

// XeonE54603 returns the four-socket machine used in Section 4.2:
// 4 sockets x 4 cores, 10 MB LLC per socket. Registered as
// "xeon-e5-4603".
func XeonE54603() *Topology {
	return TopologyBuilder{
		Sockets:        4,
		CoresPerSocket: 4,
		LLCMB:          10,
		LLCNS:          14,
		MemNS:          95,
		MemGBps:        10,
	}.MustBuild()
}

// PCPUID identifies one physical CPU.
type PCPUID int

// SocketID identifies one socket.
type SocketID int

// SocketOf reports which socket a pCPU belongs to. pCPUs are numbered
// socket-major: socket s owns pCPUs [s*CoresPerSocket, (s+1)*CoresPerSocket).
func (t *Topology) SocketOf(p PCPUID) SocketID {
	return SocketID(int(p) / t.CoresPerSocket)
}

// PCPUsOfSocket lists the pCPU IDs belonging to socket s.
func (t *Topology) PCPUsOfSocket(s SocketID) []PCPUID {
	out := make([]PCPUID, 0, t.CoresPerSocket)
	base := int(s) * t.CoresPerSocket
	for i := 0; i < t.CoresPerSocket; i++ {
		out = append(out, PCPUID(base+i))
	}
	return out
}

package hw

import (
	"fmt"
	"sort"
	"sync"
)

// The topology registry maps names to topology factories, so that every
// layer above (scenario generation, sweep spec files, the catalog) can
// reference machines by name. Factories — not shared *Topology values —
// keep concurrent sweep runs free of shared mutable state.
var (
	topoMu sync.RWMutex
	topos  = map[string]func() *Topology{}
)

// RegisterTopology adds a named topology factory. It panics on an empty
// name or a duplicate registration — registries are populated from init
// functions, where a collision is a programming error.
func RegisterTopology(name string, f func() *Topology) {
	if name == "" || f == nil {
		panic("hw: RegisterTopology needs a name and a factory")
	}
	topoMu.Lock()
	defer topoMu.Unlock()
	if _, dup := topos[name]; dup {
		panic(fmt.Sprintf("hw: topology %q registered twice", name))
	}
	topos[name] = f
}

// TopologyByName returns a fresh copy of the named topology.
func TopologyByName(name string) (*Topology, error) {
	topoMu.RLock()
	f, ok := topos[name]
	topoMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("hw: unknown topology %q (known: %v)", name, TopologyNames())
	}
	return f(), nil
}

// TopologyNames lists the registered topologies, sorted.
func TopologyNames() []string {
	topoMu.RLock()
	defer topoMu.RUnlock()
	out := make([]string, 0, len(topos))
	for n := range topos {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// The two concrete machines of the paper register themselves; everything
// that used to hard-code I73770/XeonE54603 can reach them by name.
func init() {
	RegisterTopology("i7-3770", I73770)
	RegisterTopology("xeon-e5-4603", XeonE54603)
}

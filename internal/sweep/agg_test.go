package sweep

import (
	"bytes"
	"strings"
	"testing"

	"aqlsched/internal/scenario"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

// flakyPolicy panics on its first instantiation only — one failed
// baseline replication in an otherwise healthy cell.
type flakyPolicy struct{ fail bool }

func (f *flakyPolicy) Name() string { return "flaky-base" }
func (f *flakyPolicy) Setup(h *xen.Hypervisor, deps []*workload.Deployment) {
	if f.fail {
		panic("flaky baseline replication")
	}
}

// assertNoNaN fails on any NaN/Inf leaking into an emitted artifact.
func assertNoNaN(t *testing.T, label, s string) {
	t.Helper()
	for _, bad := range []string{"NaN", "Inf", "null"} {
		if strings.Contains(s, bad) {
			t.Errorf("%s artifact contains %q:\n%s", label, bad, s)
		}
	}
}

// TestAggregateSkipsFailedBaselineReplication: when one baseline
// replication fails, the paired norm sample for that seed is skipped —
// the remaining pairs still normalize, and no NaN/Inf reaches the
// JSON/CSV artifacts.
func TestAggregateSkipsFailedBaselineReplication(t *testing.T) {
	calls := 0
	spec, err := (&File{
		Name:      "flaky",
		Scenarios: refs("S2"),
		Policies:  pols("microsliced"),
		Seeds:     2,
		WarmupMS:  300,
		MeasureMS: 500,
	}).Spec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Policies = append([]Policy{{
		Name: "flaky-base",
		New: func() scenario.Policy {
			calls++
			return &flakyPolicy{fail: calls == 1}
		},
	}}, spec.Policies...)
	spec.Baseline = "flaky-base"

	// Workers must be 1 so "first instantiation" is the seed#0 baseline
	// replication deterministically.
	res, err := Exec(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() != 1 {
		t.Fatalf("%d failed runs, want exactly the one flaky baseline", res.Failed())
	}

	cell := res.Cell("S2", "microsliced")
	if cell == nil || len(cell.Apps) == 0 {
		t.Fatal("measured cell missing")
	}
	for i := range cell.Apps {
		a := &cell.Apps[i]
		perf := a.Perf()
		if perf == nil || perf.Stats.N != 2 {
			t.Errorf("%s primary metric missing or wrong sample count: %+v", a.App, perf)
		}
		if n := a.Norm(); n == nil {
			t.Errorf("%s lost its norm entirely; only the failed pair should be skipped", a.App)
		} else if n.N != 1 {
			t.Errorf("%s norm has %d samples, want 1 (seed#0 pair skipped)", a.App, n.N)
		}
	}

	var js, cs bytes.Buffer
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	assertNoNaN(t, "JSON", js.String())
	assertNoNaN(t, "CSV", cs.String())
}

// TestAllReplicationsFailedCell: a cell with zero surviving
// replications renders as FAILED in the CSV, an empty cell in JSON,
// and a note in the table — never NaN.
func TestAllReplicationsFailedCell(t *testing.T) {
	spec, err := (&File{
		Name:      "doomed",
		Scenarios: refs("S2"),
		Policies:  pols("xen"),
		Seeds:     2,
		WarmupMS:  300,
		MeasureMS: 500,
	}).Spec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Policies = append(spec.Policies, Policy{
		Name: "boom",
		New:  func() scenario.Policy { return panicPolicy{} },
	})
	res, err := Exec(spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() != 2 {
		t.Fatalf("%d failed runs, want 2", res.Failed())
	}
	cell := res.Cell("S2", "boom")
	if cell == nil || cell.Runs != 0 || len(cell.Apps) != 0 || len(cell.Metrics) != 0 {
		t.Errorf("dead cell not empty: %+v", cell)
	}

	var js, cs, tbl bytes.Buffer
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	res.Table().Render(&tbl)
	if !strings.Contains(cs.String(), "S2,boom,,,FAILED") {
		t.Error("FAILED marker missing from CSV")
	}
	if !strings.Contains(tbl.String(), "2 run(s) failed") {
		t.Error("failure note missing from table")
	}
	assertNoNaN(t, "JSON", js.String())
	assertNoNaN(t, "CSV", cs.String())
}

// TestNormAndCellAppNilPaths: the convenience accessors must be safe
// on absent coordinates.
func TestNormAndCellAppNilPaths(t *testing.T) {
	res := &Result{}
	if got := res.Norm("nope", "nada", "ghost"); got != 0 {
		t.Errorf("Norm on empty result = %v, want 0", got)
	}
	if res.Cell("nope", "nada") != nil {
		t.Error("Cell on empty result not nil")
	}
	var c *Cell
	if c.App("ghost") != nil {
		t.Error("App on nil cell not nil")
	}
	if c.Metric("ghost") != nil {
		t.Error("Metric on nil cell not nil")
	}
	var ca *CellApp
	if ca.Metric("ghost") != nil || ca.Perf() != nil || ca.Norm() != nil {
		t.Error("nil CellApp accessors not nil-safe")
	}
	c = &Cell{Apps: []CellApp{{App: "real"}}}
	if c.App("ghost") != nil {
		t.Error("App finds a ghost")
	}
	if c.App("real") == nil {
		t.Error("App misses a real app")
	}
	if c.App("real").Perf() != nil {
		t.Error("Perf on a metric-less app not nil")
	}
	// A cell present but without norms: Norm degrades to 0.
	res = &Result{Cells: []Cell{{Scenario: "s", Policy: "p", Apps: []CellApp{{App: "a"}}}}}
	if got := res.Norm("s", "p", "a"); got != 0 {
		t.Errorf("Norm without baseline = %v, want 0", got)
	}
}

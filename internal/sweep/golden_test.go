package sweep

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata golden artifacts from the current simulator output")

// TestGoldenBenchArtifacts executes the built-in "bench" sweep and
// compares its JSON and CSV artifacts byte for byte against committed
// golden files. The simulator is fully deterministic, so any diff means
// an optimization or refactor changed simulation results — exactly the
// silent drift this test exists to catch. If a change is *meant* to
// alter results, regenerate with:
//
//	go test ./internal/sweep/ -run Golden -update-golden
//
// and justify the new goldens in the PR.
func TestGoldenBenchArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("bench sweep is ~100ms per worker; skipped in -short")
	}
	spec, ok := Builtin("bench")
	if !ok {
		t.Fatal("built-in bench sweep missing")
	}
	res, err := Exec(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f := res.Failed(); f > 0 {
		t.Fatalf("%d of %d runs failed", f, len(res.Runs))
	}

	var jsonBuf, csvBuf bytes.Buffer
	if err := res.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}

	check := func(name string, got []byte) {
		path := filepath.Join("testdata", name)
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s (%d bytes)", path, len(got))
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden %s (run with -update-golden to create): %v", path, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from golden (%d bytes got, %d want).\n"+
				"Simulation results changed — if intentional, regenerate with -update-golden and explain in the PR.\n"+
				"First divergence at byte %d.", name, len(got), len(want), firstDiff(got, want))
		}
	}
	check("bench.golden.json", jsonBuf.Bytes())
	check("bench.golden.csv", csvBuf.Bytes())
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

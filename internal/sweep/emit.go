package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"aqlsched/internal/report"
)

// Document is the JSON artifact shape: the sweep's identity, its axes,
// and the aggregate cells. It deliberately excludes wall-clock data so
// the artifact is byte-identical across worker counts and machines.
type Document struct {
	Name      string   `json:"name"`
	Baseline  string   `json:"baseline,omitempty"`
	Seeds     int      `json:"seeds"`
	Scenarios []string `json:"scenarios"`
	Policies  []string `json:"policies"`
	Failed    int      `json:"failed_runs,omitempty"`
	Cells     []Cell   `json:"cells"`
}

// Document builds the emittable view of the result.
func (r *Result) Document() Document {
	return Document{
		Name:      r.Name,
		Baseline:  r.Baseline,
		Seeds:     r.Seeds,
		Scenarios: r.Scenarios,
		Policies:  r.Policies,
		Failed:    r.Failed(),
		Cells:     r.Cells,
	}
}

// WriteJSON emits the aggregate document as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Document())
}

// csvFloat formats a float with enough digits to round-trip, so the
// CSV artifact is as deterministic as the JSON one.
func csvFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// hasAdapt reports whether any cell carries adaptation diagnostics.
func (r *Result) hasAdapt() bool {
	for i := range r.Cells {
		if r.Cells[i].Adapt != nil {
			return true
		}
	}
	return false
}

// adaptCSV renders the per-cell adaptation columns ("" when absent).
func adaptCSV(a *AdaptCell) []string {
	if a == nil {
		return []string{"", "", "", "", ""}
	}
	return []string{
		strconv.Itoa(a.Window),
		csvFloat(a.Latency.Mean),
		csvFloat(a.MatchFrac.Mean),
		csvFloat(a.Reclusters.Mean),
		csvFloat(a.Migrations.Mean),
	}
}

// WriteCSV emits one row per (scenario, policy, app) aggregate. Sweeps
// whose cells carry adaptation diagnostics gain five extra columns;
// static sweeps keep the historical header, so committed golden
// artifacts stay byte-identical.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	withAdapt := r.hasAdapt()
	header := []string{
		"scenario", "policy", "app", "type", "metric_kind",
		"metric_mean", "metric_std", "metric_ci95", "metric_min", "metric_max",
		"norm_mean", "norm_std", "norm_ci95", "runs",
	}
	if withAdapt {
		header = append(header,
			"vtrs_window", "adapt_latency_periods", "adapt_match_frac",
			"reclusters_mean", "migrations_mean")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range r.Cells {
		// A cell whose every replication failed has no apps; mark it so
		// CSV-only consumers can tell a failed cell from an absent one.
		if len(c.Apps) == 0 {
			row := []string{c.Scenario, c.Policy, "", "", "FAILED",
				"", "", "", "", "", "", "", "", strconv.Itoa(c.Runs)}
			if withAdapt {
				row = append(row, adaptCSV(c.Adapt)...)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
			continue
		}
		for _, a := range c.Apps {
			kind := "time_per_job_s"
			if a.IsLatency {
				kind = "latency_us"
			}
			row := []string{
				c.Scenario, c.Policy, a.App, a.Type, kind,
				csvFloat(a.Metric.Mean), csvFloat(a.Metric.Std), csvFloat(a.Metric.CI95),
				csvFloat(a.Metric.Min), csvFloat(a.Metric.Max),
				"", "", "",
				strconv.Itoa(c.Runs),
			}
			if a.Norm != nil {
				row[10] = csvFloat(a.Norm.Mean)
				row[11] = csvFloat(a.Norm.Std)
				row[12] = csvFloat(a.Norm.CI95)
			}
			if withAdapt {
				row = append(row, adaptCSV(c.Adapt)...)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table renders the aggregates as a report table, one row per
// (scenario, policy, app).
func (r *Result) Table() *report.Table {
	title := fmt.Sprintf("Sweep %s: %d scenarios x %d policies x %d seeds",
		r.Name, len(r.Scenarios), len(r.Policies), r.Seeds)
	t := &report.Table{
		Title:   title,
		Headers: []string{"scenario", "policy", "app", "type", "metric", "±ci95", "norm", "±ci95"},
	}
	for _, c := range r.Cells {
		for _, a := range c.Apps {
			norm, nci := "-", "-"
			if a.Norm != nil {
				norm = fmt.Sprintf("%.3f", a.Norm.Mean)
				nci = fmt.Sprintf("%.3f", a.Norm.CI95)
			}
			t.AddRow(c.Scenario, c.Policy, a.App, a.Type,
				fmt.Sprintf("%.4g", a.Metric.Mean), fmt.Sprintf("%.3g", a.Metric.CI95),
				norm, nci)
		}
	}
	if r.Baseline != "" {
		t.AddNote("norm = metric / %s metric, paired per seed replication; lower is better", r.Baseline)
	}
	for _, c := range r.Cells {
		if a := c.Adapt; a != nil {
			t.AddNote("adaptation %s/%s (vTRS n=%d): recognition latency %.2f periods (±%.2f), truth-match %.0f%%, reclusters %.1f, migrations %.1f per measure window",
				c.Scenario, c.Policy, a.Window, a.Latency.Mean, a.Latency.CI95,
				100*a.MatchFrac.Mean, a.Reclusters.Mean, a.Migrations.Mean)
		}
	}
	if f := r.Failed(); f > 0 {
		t.AddNote("%d run(s) failed and were excluded from aggregates", f)
	}
	return t
}

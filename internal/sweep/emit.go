package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"aqlsched/internal/atomicio"
	"aqlsched/internal/metrics"
	"aqlsched/internal/report"
)

// MetricSchema is the self-description of one metric column in an
// emitted artifact, derived from the registry Desc.
type MetricSchema struct {
	Name      string `json:"name"`
	Unit      string `json:"unit"`
	Direction string `json:"direction"`
	Agg       string `json:"agg"`
	Scope     string `json:"scope"`
}

// Document is the JSON artifact shape: the sweep's identity, its axes,
// the metric schema, and the aggregate cells. Every emitter derives
// its columns from the same schema, so a newly registered metric shows
// up everywhere without emitter changes. The document deliberately
// excludes wall-clock data so the artifact is byte-identical across
// worker counts and machines.
type Document struct {
	Name      string         `json:"name"`
	Baseline  string         `json:"baseline,omitempty"`
	Seeds     int            `json:"seeds"`
	Scenarios []string       `json:"scenarios"`
	Policies  []string       `json:"policies"`
	Failed    int            `json:"failed_runs,omitempty"`
	Schema    []MetricSchema `json:"schema"`
	Cells     []Cell         `json:"cells"`
}

// Schema lists the metrics present anywhere in the result's cells, in
// registry order — the emitted column set.
func (r *Result) Schema() []MetricSchema {
	present := map[string]bool{}
	for i := range r.Cells {
		c := &r.Cells[i]
		for j := range c.Apps {
			for _, m := range c.Apps[j].Metrics {
				present[m.Name] = true
			}
		}
		for _, m := range c.Metrics {
			present[m.Name] = true
		}
	}
	out := []MetricSchema{}
	for _, d := range metrics.Descs() {
		if !present[d.Name] {
			continue
		}
		out = append(out, MetricSchema{
			Name:      d.Name,
			Unit:      d.Unit,
			Direction: d.Direction.String(),
			Agg:       d.Agg.String(),
			Scope:     d.Scope.String(),
		})
	}
	return out
}

// Document builds the emittable view of the result.
func (r *Result) Document() Document {
	return Document{
		Name:      r.Name,
		Baseline:  r.Baseline,
		Seeds:     r.Seeds,
		Scenarios: r.Scenarios,
		Policies:  r.Policies,
		Failed:    r.Failed(),
		Schema:    r.Schema(),
		Cells:     r.Cells,
	}
}

// WriteJSON emits the aggregate document as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Document())
}

// WriteArtifacts emits <dir>/<name>.json, .csv and .txt (creating dir
// as needed) and returns the paths written. Every write is atomic
// (temp file + rename), so an interrupted process never leaves a
// truncated artifact — the shared emit path of aqlsweep -out and
// aqlsweepd job completion, which is what makes service and batch
// artifacts byte-comparable.
func (r *Result) WriteArtifacts(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	emit := func(ext string, write func(io.Writer) error) error {
		path := filepath.Join(dir, r.Name+ext)
		if err := atomicio.WriteTo(path, 0o644, write); err != nil {
			return err
		}
		paths = append(paths, path)
		return nil
	}
	if err := emit(".json", r.WriteJSON); err != nil {
		return nil, err
	}
	if err := emit(".csv", r.WriteCSV); err != nil {
		return nil, err
	}
	if err := emit(".txt", func(w io.Writer) error { r.Table().Render(w); return nil }); err != nil {
		return nil, err
	}
	return paths, nil
}

// csvFloat formats a float with enough digits to round-trip, so the
// CSV artifact is as deterministic as the JSON one.
func csvFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// metricUnit resolves a metric's unit for display ("" when the name
// left the registry — impossible for artifacts we emitted ourselves).
func metricUnit(name string) string {
	d, _ := metrics.DescByName(name)
	return d.Unit
}

// WriteCSV emits the aggregate in long form: one row per (scenario,
// policy, app, metric), followed by one row per (scenario, policy,
// metric) for run-scoped metrics (empty app and type columns). Rows
// follow cell expansion order and registry metric order, so the
// artifact is deterministic for any worker count; the column set never
// depends on which metrics happen to be present.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"scenario", "policy", "app", "type", "metric", "unit",
		"mean", "std", "ci95", "min", "max",
		"norm_mean", "norm_std", "norm_ci95", "runs",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := func(c *Cell, app, typ string, m *CellMetric) error {
		out := []string{
			c.Scenario, c.Policy, app, typ, m.Name, metricUnit(m.Name),
			csvFloat(m.Stats.Mean), csvFloat(m.Stats.Std), csvFloat(m.Stats.CI95),
			csvFloat(m.Stats.Min), csvFloat(m.Stats.Max),
			"", "", "",
			strconv.Itoa(c.Runs),
		}
		if m.Norm != nil {
			out[11] = csvFloat(m.Norm.Mean)
			out[12] = csvFloat(m.Norm.Std)
			out[13] = csvFloat(m.Norm.CI95)
		}
		return cw.Write(out)
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		// A cell whose every replication failed has no rows at all; mark
		// it so CSV-only consumers can tell a failed cell from an absent
		// one.
		if c.Runs == 0 {
			out := []string{c.Scenario, c.Policy, "", "", "FAILED", "",
				"", "", "", "", "", "", "", "", strconv.Itoa(c.Runs)}
			if err := cw.Write(out); err != nil {
				return err
			}
			continue
		}
		for j := range c.Apps {
			a := &c.Apps[j]
			for k := range a.Metrics {
				if err := row(c, a.App, a.Type, &a.Metrics[k]); err != nil {
					return err
				}
			}
		}
		for k := range c.Metrics {
			if err := row(c, "", "", &c.Metrics[k]); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table renders the aggregates as a report table in the same long
// form as the CSV: one row per (scenario, policy, app, metric), with
// run-scoped metrics under an empty app column.
func (r *Result) Table() *report.Table {
	title := fmt.Sprintf("Sweep %s: %d scenarios x %d policies x %d seeds",
		r.Name, len(r.Scenarios), len(r.Policies), r.Seeds)
	t := &report.Table{
		Title:   title,
		Headers: []string{"scenario", "policy", "app", "metric", "mean", "±ci95", "norm", "±ci95"},
	}
	addRow := func(c *Cell, app string, m *CellMetric) {
		norm, nci := "-", "-"
		if m.Norm != nil {
			norm = fmt.Sprintf("%.3f", m.Norm.Mean)
			nci = fmt.Sprintf("%.3f", m.Norm.CI95)
		}
		name := m.Name
		if u := metricUnit(m.Name); u != "" && u != "index" && u != "frac" && u != "count" {
			name += " (" + u + ")"
		}
		t.AddRow(c.Scenario, c.Policy, app, name,
			fmt.Sprintf("%.4g", m.Stats.Mean), fmt.Sprintf("%.3g", m.Stats.CI95),
			norm, nci)
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		for j := range c.Apps {
			a := &c.Apps[j]
			for k := range a.Metrics {
				addRow(c, a.App, &a.Metrics[k])
			}
		}
		for k := range c.Metrics {
			addRow(c, "-", &c.Metrics[k])
		}
	}
	if r.Baseline != "" {
		t.AddNote("norm = metric normalized over %s, paired per seed replication; lower is better", r.Baseline)
	}
	if f := r.Failed(); f > 0 {
		t.AddNote("%d run(s) failed and were excluded from aggregates", f)
	}
	return t
}

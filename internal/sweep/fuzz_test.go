package sweep

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzSpecParse throws arbitrary bytes at the spec-file parser, seeded
// with every shipped example spec. The property under test: Parse never
// panics and never hangs — rejected input gets an error, accepted input
// yields a spec whose grid expands within the validation caps (host
// count, vCPU budgets, churn arrival count, storm event count), so a
// hostile spec file can fail but cannot wedge or OOM the process.
func FuzzSpecParse(f *testing.F) {
	specs, err := filepath.Glob("../../examples/specs/*.json")
	if err != nil || len(specs) == 0 {
		f.Fatalf("no example specs found to seed the corpus: %v", err)
	}
	for _, p := range specs {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"scenarios": [{"gen": {"vcpus": 999999999, "mix": {"IOInt": 1}}}], "policies": ["xen"]}`))
	f.Add([]byte(`{"scenarios": [{"fleet": {"hosts": 1e9, "vcpus": 8, "mix": {"IOInt": 1}}}], "policies": ["xen"]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data)
		if err != nil {
			return
		}
		// Accepted specs must expand and re-validate cleanly: the grid is
		// what Exec would iterate, so expansion itself has to be cheap and
		// panic-free for anything Parse lets through.
		if err := spec.Validate(); err != nil {
			t.Fatalf("Parse accepted a spec that fails Validate: %v", err)
		}
		if len(spec.Runs()) == 0 {
			t.Fatal("accepted spec expands to an empty grid")
		}
	})
}

package sweep

import (
	"fmt"
	"math"

	"aqlsched/internal/metrics"
)

// Stats summarizes one sample set across seed replications. CI95 is
// the half-width of the 95% confidence interval under the normal
// approximation (1.96·s/√n); with a single replication Std and CI95
// are zero.
type Stats struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	N    int     `json:"n"`
}

// NewStats computes summary statistics over xs (sample stddev).
func NewStats(xs []float64) Stats {
	s := Stats{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
		s.CI95 = 1.96 * s.Std / math.Sqrt(float64(s.N))
	}
	return s
}

// CellMetric aggregates one registered metric inside one cell: the raw
// per-run samples summarized across replications and, for
// direction-aware metrics under a baseline, the per-replication
// normalized performance (paired by seed). A replication whose run did
// not record the metric (failed measurement, non-adaptive run)
// contributes no sample.
type CellMetric struct {
	// Name is the metric's registry name; unit, direction, aggregation
	// kind and scope come from the Document schema (or the registry).
	Name  string `json:"name"`
	Stats Stats  `json:"stats"`
	// Norm summarizes the per-replication normalized performance
	// against the baseline policy. Nil when the sweep has no baseline,
	// the metric is a diagnostic, or no replication pair normalized.
	Norm *Stats `json:"norm,omitempty"`
}

// CellApp aggregates one application inside one cell: its metric Set's
// union across replications, in registry order.
type CellApp struct {
	App string `json:"app"`
	// Type is the expected vCPU type (IOInt, ConSpin, ...).
	Type    string       `json:"type"`
	Metrics []CellMetric `json:"metrics"`
}

// Metric finds an aggregated metric by registry name; nil when absent.
func (a *CellApp) Metric(name string) *CellMetric {
	if a == nil {
		return nil
	}
	for i := range a.Metrics {
		if a.Metrics[i].Name == name {
			return &a.Metrics[i]
		}
	}
	return nil
}

// Perf returns the app's primary performance aggregate (the metric the
// paper's figures report); nil when every replication failed to
// measure it.
func (a *CellApp) Perf() *CellMetric {
	if a == nil {
		return nil
	}
	for i := range a.Metrics {
		if d, ok := metrics.DescByName(a.Metrics[i].Name); ok && d.Primary {
			return &a.Metrics[i]
		}
	}
	return nil
}

// Norm is the normalized aggregate of the app's primary performance
// metric; nil without a baseline or when no pair normalized.
func (a *CellApp) Norm() *Stats {
	if m := a.Perf(); m != nil {
		return m.Norm
	}
	return nil
}

// Cell is the aggregate of one scenario × policy coordinate.
type Cell struct {
	Scenario string    `json:"scenario"`
	Policy   string    `json:"policy"`
	Apps     []CellApp `json:"apps"`
	// Metrics aggregates the run-scoped metric Sets (hypervisor
	// counters, adaptation diagnostics), in registry order.
	Metrics []CellMetric `json:"metrics,omitempty"`
	// Runs is how many replications succeeded.
	Runs int `json:"runs"`
}

// App finds an application aggregate by name; nil when absent.
func (c *Cell) App(name string) *CellApp {
	if c == nil {
		return nil
	}
	for i := range c.Apps {
		if c.Apps[i].App == name {
			return &c.Apps[i]
		}
	}
	return nil
}

// Metric finds a run-scoped aggregate by registry name; nil when absent.
func (c *Cell) Metric(name string) *CellMetric {
	if c == nil {
		return nil
	}
	for i := range c.Metrics {
		if c.Metrics[i].Name == name {
			return &c.Metrics[i]
		}
	}
	return nil
}

// Norm is a convenience accessor for the mean normalized performance
// of one app's primary metric in one cell (0 when the coordinate or
// baseline is missing).
func (r *Result) Norm(scenarioName, policyName, app string) float64 {
	if n := r.Cell(scenarioName, policyName).App(app).Norm(); n != nil {
		return n.Mean
	}
	return 0
}

// collectMetric gathers one metric's samples across a cell's n
// replications: get reads the metric from replication k (ok=false when
// that run failed or never measured it), getBase reads the paired
// baseline replication (nil without a baseline). Returns nil when no
// replication measured the metric — the column simply does not exist
// for this cell.
func collectMetric(d metrics.Desc, n int, get, getBase func(k int) (float64, bool)) *CellMetric {
	var raw, norm []float64
	for k := 0; k < n; k++ {
		v, ok := get(k)
		if !ok {
			continue
		}
		raw = append(raw, v)
		if getBase == nil {
			continue
		}
		bv, ok := getBase(k)
		if !ok {
			continue
		}
		if nv, ok := d.Normalized(v, bv); ok {
			norm = append(norm, nv)
		}
	}
	if len(raw) == 0 {
		return nil
	}
	cm := &CellMetric{Name: d.Name, Stats: NewStats(raw)}
	if len(norm) > 0 {
		s := NewStats(norm)
		cm.Norm = &s
	}
	return cm
}

// aggregate folds the run matrix into per-cell statistics. It is fully
// schema-driven: for every cell it walks the metric registry in
// registration order, collects the samples each replication's Sets
// recorded, and summarizes them generically — adding a metric anywhere
// in the pipeline automatically adds it here and in every emitter.
// Cells are walked in expansion order so the output is deterministic.
func aggregate(spec *Spec, runs []RunResult) []Cell {
	n := spec.seeds()
	baselineIdx := -1
	for pi, p := range spec.Policies {
		if spec.Baseline != "" && p.Name == spec.Baseline {
			baselineIdx = pi
		}
	}
	// runAt addresses the matrix by coordinates.
	runAt := func(si, pi, k int) *RunResult {
		idx := (si*len(spec.Policies)+pi)*n + k
		rr := &runs[idx]
		if rr.Err != nil {
			return nil
		}
		return rr
	}

	var perApp, perRun []metrics.Desc
	for _, d := range metrics.Descs() {
		if d.Scope == metrics.PerRun {
			perRun = append(perRun, d)
		} else {
			perApp = append(perApp, d)
		}
	}

	var cells []Cell
	for si := range spec.Scenarios {
		for pi := range spec.Policies {
			// Apps starts non-nil so an all-failed cell emits "apps": []
			// rather than null in the JSON artifact.
			cell := Cell{Scenario: spec.Scenarios[si].Name, Policy: spec.Policies[pi].Name, Apps: []CellApp{}}
			// App order comes from the first successful replication
			// (scenario.Run emits apps in deployment order, which is
			// identical across replications of one scenario).
			var first *RunResult
			for k := 0; k < n; k++ {
				if rr := runAt(si, pi, k); rr != nil {
					cell.Runs++
					if first == nil {
						first = rr
					}
				}
			}
			if first == nil {
				cells = append(cells, cell)
				continue
			}
			for ai, am := range first.Apps {
				ca := CellApp{App: am.Name, Type: am.Expected.String(), Metrics: []CellMetric{}}
				for _, d := range perApp {
					d := d
					get := func(k int) (float64, bool) {
						rr := runAt(si, pi, k)
						if rr == nil || ai >= len(rr.Apps) {
							return 0, false
						}
						return rr.Apps[ai].Metrics.Get(d.Name)
					}
					var getBase func(k int) (float64, bool)
					if baselineIdx >= 0 {
						getBase = func(k int) (float64, bool) {
							rr := runAt(si, baselineIdx, k)
							if rr == nil || ai >= len(rr.Apps) {
								return 0, false
							}
							return rr.Apps[ai].Metrics.Get(d.Name)
						}
					}
					if cm := collectMetric(d, n, get, getBase); cm != nil {
						ca.Metrics = append(ca.Metrics, *cm)
					}
				}
				cell.Apps = append(cell.Apps, ca)
			}
			for _, d := range perRun {
				d := d
				get := func(k int) (float64, bool) {
					rr := runAt(si, pi, k)
					if rr == nil {
						return 0, false
					}
					return rr.Metrics.Get(d.Name)
				}
				var getBase func(k int) (float64, bool)
				if baselineIdx >= 0 {
					getBase = func(k int) (float64, bool) {
						rr := runAt(si, baselineIdx, k)
						if rr == nil {
							return 0, false
						}
						return rr.Metrics.Get(d.Name)
					}
				}
				if cm := collectMetric(d, n, get, getBase); cm != nil {
					cell.Metrics = append(cell.Metrics, *cm)
				}
			}
			cells = append(cells, cell)
		}
	}
	return cells
}

// SelectMetrics restricts every emitter (JSON, CSV, table) to the
// named metrics, dropping all other columns from the cells in place.
// It errors — before mutating anything — on a name that is not
// registered, and on a selection no cell ever recorded (a registered
// metric the sweep never measured, e.g. adapt_* on a static grid):
// both would otherwise silently emit an empty artifact. Emission
// order stays registry order regardless of selection order.
func (r *Result) SelectMetrics(names ...string) error {
	keep := make(map[string]bool, len(names))
	for _, n := range names {
		if _, ok := metrics.DescByName(n); !ok {
			return fmt.Errorf("sweep: unknown metric %q (aqlsweep -list-metrics prints the registry)", n)
		}
		keep[n] = true
	}
	recorded := false
	for i := range r.Cells {
		c := &r.Cells[i]
		for j := range c.Apps {
			for _, m := range c.Apps[j].Metrics {
				recorded = recorded || keep[m.Name]
			}
		}
		for _, m := range c.Metrics {
			recorded = recorded || keep[m.Name]
		}
	}
	if !recorded && len(r.Cells) > 0 {
		return fmt.Errorf("sweep: selection %v matches no metric recorded by this sweep", names)
	}
	filter := func(ms []CellMetric) []CellMetric {
		out := ms[:0]
		for _, m := range ms {
			if keep[m.Name] {
				out = append(out, m)
			}
		}
		return out
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		for j := range c.Apps {
			c.Apps[j].Metrics = filter(c.Apps[j].Metrics)
		}
		c.Metrics = filter(c.Metrics)
	}
	return nil
}

package sweep

import (
	"math"

	"aqlsched/internal/metrics"
)

// Stats summarizes one sample set across seed replications. CI95 is
// the half-width of the 95% confidence interval under the normal
// approximation (1.96·s/√n); with a single replication Std and CI95
// are zero.
type Stats struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	N    int     `json:"n"`
}

// NewStats computes summary statistics over xs (sample stddev).
func NewStats(xs []float64) Stats {
	s := Stats{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
		s.CI95 = 1.96 * s.Std / math.Sqrt(float64(s.N))
	}
	return s
}

// CellApp aggregates one application inside one cell.
type CellApp struct {
	App string `json:"app"`
	// Type is the expected vCPU type (IOInt, ConSpin, ...).
	Type string `json:"type"`
	// IsLatency tells whether Metric is mean latency (µs) or
	// time-per-job (s); both are lower-is-better.
	IsLatency bool `json:"is_latency"`
	// Metric summarizes the raw per-run metric across replications.
	Metric Stats `json:"metric"`
	// Norm summarizes the per-replication normalized performance
	// against the baseline policy (paired by seed replication). Nil
	// when the sweep has no baseline or every baseline metric was zero.
	Norm *Stats `json:"norm,omitempty"`
}

// AdaptCell aggregates adaptation diagnostics across the replications
// of one cell (dynamic scenarios under recognizing policies only).
// Latency is in vTRS monitoring periods; Reclusters and Migrations
// count measurement-window churn.
type AdaptCell struct {
	// Window is the vTRS window n the cell's policy ran with.
	Window     int   `json:"window"`
	Latency    Stats `json:"latency_periods"`
	MatchFrac  Stats `json:"match_frac"`
	Flips      Stats `json:"flips"`
	Reclusters Stats `json:"reclusters"`
	Migrations Stats `json:"migrations"`
}

// Cell is the aggregate of one scenario × policy coordinate.
type Cell struct {
	Scenario string    `json:"scenario"`
	Policy   string    `json:"policy"`
	Apps     []CellApp `json:"apps"`
	// Adapt summarizes adaptation diagnostics when the cell's runs
	// produced them (dynamic scenario + recognizing policy).
	Adapt *AdaptCell `json:"adapt,omitempty"`
	// Runs is how many replications succeeded.
	Runs int `json:"runs"`
}

// App finds an application aggregate by name; nil when absent.
func (c *Cell) App(name string) *CellApp {
	if c == nil {
		return nil
	}
	for i := range c.Apps {
		if c.Apps[i].App == name {
			return &c.Apps[i]
		}
	}
	return nil
}

// Norm is a convenience accessor for the mean normalized performance
// of one app in one cell (0 when the coordinate or baseline is
// missing).
func (r *Result) Norm(scenarioName, policyName, app string) float64 {
	if ca := r.Cell(scenarioName, policyName).App(app); ca != nil && ca.Norm != nil {
		return ca.Norm.Mean
	}
	return 0
}

// aggregateAdapt folds the adaptation diagnostics of one cell's
// replications into summary statistics; nil when no replication
// produced any. Latency samples come only from runs that recognized at
// least one flip (a mean over zero flips is undefined, not zero).
func aggregateAdapt(spec *Spec, runAt func(si, pi, k int) *RunResult, si, pi, n int) *AdaptCell {
	var lat, match, flips, recl, mig []float64
	window := 0
	for k := 0; k < n; k++ {
		rr := runAt(si, pi, k)
		if rr == nil || rr.Adapt == nil {
			continue
		}
		a := rr.Adapt
		window = a.Window
		if a.RecognizedFlips > 0 {
			lat = append(lat, a.MeanLatencyPeriods)
		}
		match = append(match, a.MatchedFrac)
		flips = append(flips, float64(a.Flips))
		recl = append(recl, float64(a.Reclusters))
		mig = append(mig, float64(a.Migrations))
	}
	if len(match) == 0 {
		return nil
	}
	return &AdaptCell{
		Window:     window,
		Latency:    NewStats(lat),
		MatchFrac:  NewStats(match),
		Flips:      NewStats(flips),
		Reclusters: NewStats(recl),
		Migrations: NewStats(mig),
	}
}

// aggregate folds the run matrix into per-cell statistics, walking
// cells in expansion order so the output is deterministic.
func aggregate(spec *Spec, runs []RunResult) []Cell {
	n := spec.seeds()
	baselineIdx := -1
	for pi, p := range spec.Policies {
		if spec.Baseline != "" && p.Name == spec.Baseline {
			baselineIdx = pi
		}
	}
	// runAt addresses the matrix by coordinates.
	runAt := func(si, pi, k int) *RunResult {
		idx := (si*len(spec.Policies)+pi)*n + k
		rr := &runs[idx]
		if rr.Err != nil {
			return nil
		}
		return rr
	}

	var cells []Cell
	for si := range spec.Scenarios {
		for pi := range spec.Policies {
			// Apps starts non-nil so an all-failed cell emits "apps": []
			// rather than null in the JSON artifact.
			cell := Cell{Scenario: spec.Scenarios[si].Name, Policy: spec.Policies[pi].Name, Apps: []CellApp{}}
			// App order comes from the first successful replication
			// (scenario.Run emits apps in deployment order, which is
			// identical across replications of one scenario).
			var first *RunResult
			for k := 0; k < n; k++ {
				if rr := runAt(si, pi, k); rr != nil {
					cell.Runs++
					if first == nil {
						first = rr
					}
				}
			}
			if first == nil {
				cells = append(cells, cell)
				continue
			}
			for ai, am := range first.Apps {
				ca := CellApp{App: am.Name, Type: am.Expected.String(), IsLatency: am.IsLatency}
				var raw, norm []float64
				for k := 0; k < n; k++ {
					rr := runAt(si, pi, k)
					if rr == nil || ai >= len(rr.Apps) {
						continue
					}
					m := rr.Apps[ai].Metric()
					raw = append(raw, m)
					if baselineIdx < 0 {
						continue
					}
					base := runAt(si, baselineIdx, k)
					if base == nil || ai >= len(base.Apps) {
						continue
					}
					if bm := base.Apps[ai].Metric(); bm > 0 {
						norm = append(norm, metrics.Normalized(m, bm))
					}
				}
				ca.Metric = NewStats(raw)
				if len(norm) > 0 {
					s := NewStats(norm)
					ca.Norm = &s
				}
				cell.Apps = append(cell.Apps, ca)
			}
			cell.Adapt = aggregateAdapt(spec, runAt, si, pi, n)
			cells = append(cells, cell)
		}
	}
	return cells
}

package sweep

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// genSpecJSON is a complete generated-scenario sweep defined purely in
// JSON: an inline two-socket machine, a generated mix with pinned
// catalog apps, and three policies.
const genSpecJSON = `{
	"name": "gen-quick",
	"topologies": {
		"dual-4": {"sockets": 2, "cores_per_socket": 4, "llc_mb": 6, "mem_gbps": 10}
	},
	"scenarios": [
		{"gen": {
			"name": "mix-a",
			"topology": "dual-4",
			"vcpus": 16,
			"oversub": 4,
			"mix": {"IOInt": 0.3, "ConSpin": 0.2, "LLCF": 0.25, "LLCO": 0.25},
			"apps": ["bzip2"]
		}}
	],
	"policies": ["xen", "aql"],
	"baseline": "xen-credit",
	"seeds": 2,
	"warmup_ms": 300,
	"measure_ms": 600
}`

func TestSpecFileGeneratorBlock(t *testing.T) {
	spec, err := Parse([]byte(genSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Scenarios) != 1 || spec.Scenarios[0].Name != "mix-a" {
		t.Fatalf("scenario axis %+v", spec.Scenarios)
	}
	s := spec.Scenarios[0].New()
	if s.Topo.Sockets != 2 || s.Topo.CoresPerSocket != 4 {
		t.Errorf("generated scenario machine %dx%d, want the inline dual-4", s.Topo.Sockets, s.Topo.CoresPerSocket)
	}
	if len(s.GuestPCPUs) != 4 {
		t.Errorf("%d guest pCPUs, want 4 (16 vCPUs / oversub 4)", len(s.GuestPCPUs))
	}
	if s.Apps[0].Spec.Name != "bzip2" {
		t.Errorf("pinned app missing: first app %q", s.Apps[0].Spec.Name)
	}
	// The axis constructor must re-expand to the identical population
	// every time it is called (one call per sweep run).
	if again := spec.Scenarios[0].New(); !reflect.DeepEqual(s, again) {
		t.Error("generator axis point expands differently across calls")
	}
}

// TestSpecFileGeneratedSweepDeterminism is the end-to-end acceptance
// criterion: a generated-scenario sweep defined purely in JSON produces
// byte-identical JSON/CSV artifacts for any -workers value.
func TestSpecFileGeneratedSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	exec := func(workers int) (string, string) {
		spec, err := Parse([]byte(genSpecJSON))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Exec(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() != 0 {
			t.Fatalf("workers=%d: %d runs failed", workers, res.Failed())
		}
		var j, c bytes.Buffer
		if err := res.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := exec(1)
	j8, c8 := exec(8)
	if j1 != j8 {
		t.Error("generated sweep JSON differs between -workers 1 and 8")
	}
	if c1 != c8 {
		t.Error("generated sweep CSV differs between -workers 1 and 8")
	}
}

func TestSpecFileTopologyOverride(t *testing.T) {
	spec, err := Parse([]byte(`{
		"scenarios": [{"name": "S1", "topology": "xeon-e5-4603"}],
		"policies": ["xen"]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	sc := spec.Scenarios[0]
	if sc.Name != "S1@xeon-e5-4603" {
		t.Errorf("override axis name %q", sc.Name)
	}
	s := sc.New()
	if s.Topo.Sockets != 4 {
		t.Errorf("override machine has %d sockets, want 4", s.Topo.Sockets)
	}
	if s.GuestPCPUs != nil {
		t.Errorf("override kept stale guest pCPUs %v", s.GuestPCPUs)
	}
	// The population is still S1's.
	if len(s.Apps) == 0 || s.Apps[0].Spec.Name != "fluidanimate" {
		t.Errorf("override lost the S1 population: %+v", s.Apps)
	}
	// Two runs must not share the topology value.
	if a, b := sc.New(), sc.New(); a.Topo == b.Topo {
		t.Error("override runs share one *hw.Topology")
	}
}

// TestSpecFileErrorPaths: every malformed spec must fail the parse with
// a useful error, never a panic at run time.
func TestSpecFileErrorPaths(t *testing.T) {
	cases := []struct {
		name, json, wantErr string
	}{
		{"unknown scenario", `{"scenarios":["S9"],"policies":["xen"]}`, "S9"},
		{"unknown policy", `{"scenarios":["S1"],"policies":["frob"]}`, "frob"},
		{"unknown topology override", `{"scenarios":[{"name":"S1","topology":"cray-1"}],"policies":["xen"]}`, "cray-1"},
		{"unknown gen topology", `{"scenarios":[{"gen":{"vcpus":8,"mix":{"LLCF":1},"topology":"cray-1"}}],"policies":["xen"]}`, "cray-1"},
		{"missing mix", `{"scenarios":[{"gen":{"vcpus":8}}],"policies":["xen"]}`, "mix"},
		{"bad mix type", `{"scenarios":[{"gen":{"vcpus":8,"mix":{"IOBound":1}}}],"policies":["xen"]}`, "IOBound"},
		{"bad mix weight", `{"scenarios":[{"gen":{"vcpus":8,"mix":{"IOInt":-1}}}],"policies":["xen"]}`, "positive"},
		{"zero vcpus", `{"scenarios":[{"gen":{"mix":{"IOInt":1}}}],"policies":["xen"]}`, "vCPU"},
		{"unknown pinned app", `{"scenarios":[{"gen":{"vcpus":8,"mix":{"IOInt":1},"apps":["quake3"]}}],"policies":["xen"]}`, "quake3"},
		{"empty scenario entry", `{"scenarios":[{}],"policies":["xen"]}`, "no generator"},
		{"name plus gen", `{"scenarios":[{"name":"S1","gen":{"vcpus":8,"mix":{"IOInt":1}}}],"policies":["xen"]}`, "both"},
		{"entry topology plus gen", `{"scenarios":[{"topology":"xeon-e5-4603","gen":{"vcpus":8,"mix":{"IOInt":1}}}],"policies":["xen"]}`, "inside the generator block"},
		{"unknown top-level key", `{"scenarioz":["S1"],"policies":["xen"]}`, "scenarioz"},
		{"typo in topology builder", `{"topologies":{"t":{"sockets":1,"cores_per_socket":4,"llcmb":24}},"scenarios":["S1"],"policies":["xen"]}`, "llcmb"},
		{"typo in gen block", `{"scenarios":[{"gen":{"vcpus":8,"mix":{"IOInt":1},"over_sub":8}}],"policies":["xen"]}`, "over_sub"},
		{"typo in scenario ref", `{"scenarios":[{"nam":"S1"}],"policies":["xen"]}`, "nam"},
		{"bad inline topology", `{"topologies":{"t":{"sockets":0,"cores_per_socket":4}},"scenarios":[{"gen":{"vcpus":8,"mix":{"IOInt":1},"topology":"t"}}],"policies":["xen"]}`, "socket"},
		{"fixed oversubscribed budget", `{"scenarios":[{"gen":{"vcpus":1,"mix":{"IOInt":1},"apps":["facesim"]}}],"policies":["xen"]}`, "budget"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.json))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestSpecFileGenSeedIndependence: the generator seed fixes the
// population; the file's base seed only moves the simulation streams.
func TestSpecFileGenSeeds(t *testing.T) {
	parse := func(blob string) *Spec {
		s, err := Parse([]byte(blob))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	const a = `{"scenarios":[{"gen":{"vcpus":8,"mix":{"LLCF":1},"seed":7}}],"policies":["xen"]}`
	const b = `{"scenarios":[{"gen":{"vcpus":8,"mix":{"LLCF":1},"seed":8}}],"policies":["xen"]}`
	sa, sb := parse(a), parse(b)
	if reflect.DeepEqual(sa.Scenarios[0].New().Apps, sb.Scenarios[0].New().Apps) {
		t.Error("different generator seeds drew identical populations")
	}
	// Default generator seed follows base_seed.
	const c = `{"base_seed":11,"scenarios":[{"gen":{"vcpus":8,"mix":{"LLCF":1}}}],"policies":["xen"]}`
	const d = `{"base_seed":12,"scenarios":[{"gen":{"vcpus":8,"mix":{"LLCF":1}}}],"policies":["xen"]}`
	sc, sd := parse(c), parse(d)
	if reflect.DeepEqual(sc.Scenarios[0].New().Apps, sd.Scenarios[0].New().Apps) {
		t.Error("base_seed change did not move the default generator seed")
	}
	// Default axis name is deterministic and descriptive.
	if got := sc.Scenarios[0].Name; got != "gen0-i7-3770-8v" {
		t.Errorf("default gen axis name %q", got)
	}
}

func TestGenmixBuiltin(t *testing.T) {
	s, ok := Builtin("genmix")
	if !ok {
		t.Fatal("genmix builtin missing")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	sc := s.Scenarios[0].New()
	if sc.Topo.TotalPCPUs() != 16 {
		t.Errorf("genmix machine has %d pCPUs, want 16", sc.Topo.TotalPCPUs())
	}
	if len(sc.GuestPCPUs) != 8 {
		t.Errorf("genmix guest pCPUs %d, want 8 (32 vCPUs / oversub 4)", len(sc.GuestPCPUs))
	}
}

// TestGenmixBuiltinMatchesExampleSpec: `aqlsweep -spec genmix` (the
// builtin) and `-spec examples/specs/genmix.json` (the CI smoke file)
// must define the same experiment, or the two spellings would emit
// same-named artifacts with different populations.
func TestGenmixBuiltinMatchesExampleSpec(t *testing.T) {
	builtin, ok := Builtin("genmix")
	if !ok {
		t.Fatal("genmix builtin missing")
	}
	file, err := Load("../../examples/specs/genmix.json")
	if err != nil {
		t.Fatal(err)
	}
	if builtin.Name != file.Name || builtin.Baseline != file.Baseline ||
		builtin.Seeds != file.Seeds || builtin.BaseSeed != file.BaseSeed ||
		builtin.Warmup != file.Warmup || builtin.Measure != file.Measure {
		t.Errorf("genmix builtin and example file disagree on sweep knobs:\nbuiltin %+v\nfile    %+v", builtin, file)
	}
	var bp, fp []string
	for _, p := range builtin.Policies {
		bp = append(bp, p.Name)
	}
	for _, p := range file.Policies {
		fp = append(fp, p.Name)
	}
	if !reflect.DeepEqual(bp, fp) {
		t.Errorf("policy axes differ: builtin %v, file %v", bp, fp)
	}
	if len(builtin.Scenarios) != 1 || len(file.Scenarios) != 1 {
		t.Fatalf("axis sizes differ: %d vs %d", len(builtin.Scenarios), len(file.Scenarios))
	}
	if !reflect.DeepEqual(builtin.Scenarios[0].New(), file.Scenarios[0].New()) {
		t.Error("genmix builtin and example file expand to different scenarios")
	}
}

// dynSpecJSON exercises the dynamic-scenario schema end to end: a
// phased + churning generated population.
const dynSpecJSON = `{
	"name": "dyn-quick",
	"scenarios": [
		{"gen": {
			"name": "dyn-a",
			"vcpus": 8,
			"oversub": 2,
			"mix": {"IOInt": 0.5, "LoLCF": 0.5},
			"phases": [
				{"type": "LoLCF", "ms": 400},
				{"type": "LLCO", "ms": 400}
			],
			"phase_prob": 0.5,
			"churn": {"rate_per_sec": 3, "mean_life_ms": 500, "horizon_ms": 800, "max_vms": 3}
		}}
	],
	"policies": ["xen", "aql"],
	"baseline": "xen-credit",
	"seeds": 2,
	"warmup_ms": 300,
	"measure_ms": 600
}`

func TestSpecFileDynamicBlocks(t *testing.T) {
	spec, err := Parse([]byte(dynSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	sc := spec.Scenarios[0].New()
	if !sc.Dynamic() {
		t.Fatal("spec-file scenario with phases+churn not dynamic")
	}
	if len(sc.Arrivals) == 0 || len(sc.Arrivals) > 3 {
		t.Errorf("%d arrivals, want 1..3 (max_vms)", len(sc.Arrivals))
	}
	phased := 0
	for _, e := range sc.Apps {
		if len(e.Spec.Phases) > 0 {
			phased++
		}
	}
	if phased == 0 {
		t.Error("no phased VMs generated at phase_prob 0.5")
	}
}

func TestSpecFileDynamicErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"unknown phase type", `{"name":"x","scenarios":[{"gen":{"vcpus":4,"mix":{"LoLCF":1},
			"phases":[{"type":"Bogus","ms":400},{"type":"LoLCF","ms":400}]}}],"policies":["xen"]}`},
		{"single phase", `{"name":"x","scenarios":[{"gen":{"vcpus":4,"mix":{"LoLCF":1},
			"phases":[{"type":"LoLCF","ms":400}]}}],"policies":["xen"]}`},
		{"conspin phase", `{"name":"x","scenarios":[{"gen":{"vcpus":4,"mix":{"LoLCF":1},
			"phases":[{"type":"ConSpin","ms":400},{"type":"LoLCF","ms":400}]}}],"policies":["xen"]}`},
		{"churn without horizon", `{"name":"x","scenarios":[{"gen":{"vcpus":4,"mix":{"LoLCF":1},
			"churn":{"rate_per_sec":2,"mean_life_ms":500}}}],"policies":["xen"]}`},
		{"churn unknown key", `{"name":"x","scenarios":[{"gen":{"vcpus":4,"mix":{"LoLCF":1},
			"churn":{"rate_per_sec":2,"mean_life_ms":500,"horizon_ms":800,"oops":1}}}],"policies":["xen"]}`},
		{"negative phase ms", `{"name":"x","scenarios":[{"gen":{"vcpus":4,"mix":{"LoLCF":1},
			"phases":[{"type":"LoLCF","ms":-5},{"type":"LLCO","ms":400}]}}],"policies":["xen"]}`},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.json)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestSweepDynamicDeterminism extends the subsystem's core guarantee
// to churn + phased scenarios: bit-identical JSON and CSV artifacts at
// any worker count, adaptation aggregates included.
func TestSweepDynamicDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the dynmix grid twice; skipped in -short")
	}
	spec1, ok := Builtin("dynmix")
	if !ok {
		t.Fatal("dynmix builtin missing")
	}
	spec4, _ := Builtin("dynmix")
	emit := func(spec *Spec, workers int) (string, string) {
		res, err := Exec(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() != 0 {
			t.Fatalf("%d failed runs at workers=%d", res.Failed(), workers)
		}
		var js, cs bytes.Buffer
		if err := res.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteCSV(&cs); err != nil {
			t.Fatal(err)
		}
		return js.String(), cs.String()
	}
	j1, c1 := emit(spec1, 1)
	j4, c4 := emit(spec4, 4)
	if j1 != j4 {
		t.Error("dynmix JSON differs between workers=1 and workers=4")
	}
	if c1 != c4 {
		t.Error("dynmix CSV differs between workers=1 and workers=4")
	}
	// The dynamic sweep must actually emit adaptation data for the
	// recognizing policy — as ordinary schema-driven metric rows.
	if !strings.Contains(c1, "adapt_latency_periods") {
		t.Error("adaptation rows missing from dynamic CSV")
	}
	if !strings.Contains(j1, `"adapt_match_frac"`) {
		t.Error("adaptation aggregate missing from dynamic JSON")
	}
}

// TestDynmixBuiltinMatchesExampleSpec mirrors the genmix equivalence
// guarantee for the dynamic example spec.
func TestDynmixBuiltinMatchesExampleSpec(t *testing.T) {
	builtin, ok := Builtin("dynmix")
	if !ok {
		t.Fatal("dynmix builtin missing")
	}
	file, err := Load("../../examples/specs/dynmix.json")
	if err != nil {
		t.Fatal(err)
	}
	if builtin.Name != file.Name || builtin.Baseline != file.Baseline ||
		builtin.Seeds != file.Seeds || builtin.BaseSeed != file.BaseSeed ||
		builtin.Warmup != file.Warmup || builtin.Measure != file.Measure {
		t.Errorf("dynmix builtin and example file disagree on sweep knobs")
	}
	var bp, fp []string
	for _, p := range builtin.Policies {
		bp = append(bp, p.Name)
	}
	for _, p := range file.Policies {
		fp = append(fp, p.Name)
	}
	if !reflect.DeepEqual(bp, fp) {
		t.Errorf("policy axes differ: builtin %v, file %v", bp, fp)
	}
	if len(builtin.Scenarios) != 1 || len(file.Scenarios) != 1 {
		t.Fatalf("axis sizes differ: %d vs %d", len(builtin.Scenarios), len(file.Scenarios))
	}
	b, f := builtin.Scenarios[0].New(), file.Scenarios[0].New()
	if !reflect.DeepEqual(b, f) {
		t.Error("dynmix builtin and example file expand to different scenarios")
	}
	if !b.Dynamic() || len(b.Arrivals) == 0 {
		t.Error("dynmix scenario is not dynamic (no churn expanded)")
	}
}

// TestSpecFileExplicitPhaseProbZero: "phase_prob": 0 must mean "no
// phased VMs", not silently default to 1.
func TestSpecFileExplicitPhaseProbZero(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "p0",
		"scenarios": [{"gen": {"vcpus": 4, "mix": {"LoLCF": 1},
			"phases": [{"type": "LoLCF", "ms": 400}, {"type": "LLCO", "ms": 400}],
			"phase_prob": 0}}],
		"policies": ["xen"]}`))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range spec.Scenarios[0].New().Apps {
		if len(e.Spec.Phases) > 0 {
			t.Fatalf("VM %s is phased despite phase_prob 0", e.Spec.Name)
		}
	}
	if _, err := Parse([]byte(`{
		"name": "p2",
		"scenarios": [{"gen": {"vcpus": 4, "mix": {"LoLCF": 1},
			"phases": [{"type": "LoLCF", "ms": 400}, {"type": "LLCO", "ms": 400}],
			"phase_prob": 1.5}}],
		"policies": ["xen"]}`)); err == nil {
		t.Error("phase_prob 1.5 accepted")
	}
}

// TestHeteroBuiltinMatchesExampleSpec: `aqlsweep -spec hetero` and the
// CI smoke file examples/specs/hetero.json must define the same
// experiment (the genmix contract, for the heterogeneous sweep).
func TestHeteroBuiltinMatchesExampleSpec(t *testing.T) {
	builtin, ok := Builtin("hetero")
	if !ok {
		t.Fatal("hetero builtin missing")
	}
	file, err := Load("../../examples/specs/hetero.json")
	if err != nil {
		t.Fatal(err)
	}
	if builtin.Name != file.Name || builtin.Baseline != file.Baseline ||
		builtin.Seeds != file.Seeds || builtin.BaseSeed != file.BaseSeed ||
		builtin.Warmup != file.Warmup || builtin.Measure != file.Measure {
		t.Errorf("hetero builtin and example file disagree on sweep knobs:\nbuiltin %+v\nfile    %+v", builtin, file)
	}
	var bp, fp []string
	for _, p := range builtin.Policies {
		bp = append(bp, p.Name)
	}
	for _, p := range file.Policies {
		fp = append(fp, p.Name)
	}
	if !reflect.DeepEqual(bp, fp) {
		t.Errorf("policy axes differ: builtin %v, file %v", bp, fp)
	}
	if len(builtin.Scenarios) != 1 || len(file.Scenarios) != 1 {
		t.Fatalf("axis sizes differ: %d vs %d", len(builtin.Scenarios), len(file.Scenarios))
	}
	if !reflect.DeepEqual(builtin.Scenarios[0].New(), file.Scenarios[0].New()) {
		t.Error("hetero builtin and example file expand to different scenarios")
	}
	sc := builtin.Scenarios[0].New()
	if !sc.Topo.Heterogeneous() {
		t.Error("hetero sweep machine is homogeneous")
	}
}

// TestSpecFilePolicyBlocks: the structured {"policy": {...}} spelling
// expands to the same axis point as the string grammar.
func TestSpecFilePolicyBlocks(t *testing.T) {
	const blob = `{
		"scenarios": ["S1"],
		"policies": [
			"xen",
			{"policy": {"name": "fixed", "params": {"q": "5ms"}}},
			{"policy": {"name": "aql", "params": {"window": 8}}},
			{"policy": {"name": "aql"}},
			{"policy": {"name": "edf", "params": {"deadline": "10ms"}}}
		]
	}`
	s, err := Parse([]byte(blob))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range s.Policies {
		names = append(names, p.Name)
	}
	want := []string{"xen-credit", "fixed-5.000ms", "aql-w8", "aql", "edf-10.000ms"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("policy axis %v, want %v", names, want)
	}
}

// TestSpecFilePolicyBlockErrors: malformed policy entries fail with
// errors naming the problem, not silently skewing the axis.
func TestSpecFilePolicyBlockErrors(t *testing.T) {
	cases := []struct {
		name, json, wantErr string
	}{
		{"missing name", `{"scenarios":["S1"],"policies":[{"policy":{"params":{"q":"5ms"}}}]}`, "name"},
		{"empty block", `{"scenarios":["S1"],"policies":[{}]}`, "policy"},
		{"typo at entry level", `{"scenarios":["S1"],"policies":[{"polcy":{"name":"xen"}}]}`, "polcy"},
		{"typo in block", `{"scenarios":["S1"],"policies":[{"policy":{"name":"xen","prams":{}}}]}`, "prams"},
		{"unknown policy", `{"scenarios":["S1"],"policies":[{"policy":{"name":"frob"}}]}`, "frob"},
		{"unknown param", `{"scenarios":["S1"],"policies":[{"policy":{"name":"aql","params":{"widnow":4}}}]}`, "widnow"},
		{"out of range", `{"scenarios":["S1"],"policies":[{"policy":{"name":"aql","params":{"window":65}}}]}`, "65"},
		{"numeric duration", `{"scenarios":["S1"],"policies":[{"policy":{"name":"fixed","params":{"q":5}}}]}`, "duration"},
		{"missing required", `{"scenarios":["S1"],"policies":[{"policy":{"name":"edf"}}]}`, "deadline"},
		{"args in block name", `{"scenarios":["S1"],"policies":[{"policy":{"name":"fixed:5ms"}}]}`, "params"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.json))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

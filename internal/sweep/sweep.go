// Package sweep turns the paper's evaluation — a grid of scenario ×
// policy × seed runs — into a declarative, parallel orchestration
// subsystem. A Spec names its axes; Exec expands them into a run
// matrix, executes the runs on a bounded pool of goroutines, and
// aggregates per-cell statistics (mean, stddev, 95% CI across seed
// replications, plus normalized performance against a baseline
// policy).
//
// Determinism is a hard guarantee: every run owns an independently
// forked sim.RNG seed that is a pure function of its grid coordinates,
// and aggregation walks the matrix in expansion order. The same Spec
// therefore produces bit-identical aggregates for any worker count —
// `go test -run Sweep` asserts exactly that.
package sweep

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"aqlsched/internal/baselines"
	"aqlsched/internal/core"
	"aqlsched/internal/fleet"
	"aqlsched/internal/metrics"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
)

// DefaultSeed matches the experiments package default.
const DefaultSeed uint64 = 0xA91

// Scenario is one point on the scenario axis. Exactly one of New and
// NewFleet is set: New builds a fresh single-host scenario.Spec,
// NewFleet a fresh multi-host fleet.Spec. Constructors return fresh
// values for every run so that concurrent runs never share mutable
// state (topologies, app slices); the sweep overrides the returned
// spec's Seed, Warmup and Measure fields.
type Scenario struct {
	Name     string
	New      func() scenario.Spec
	NewFleet func() *fleet.Spec
}

// Policy is one point on the policy axis. New builds a fresh
// scenario.Policy per run, so policies that capture per-run state (the
// AQL controller output) stay race-free under any worker count.
type Policy struct {
	Name string
	New  func() scenario.Policy
}

// Spec declares a sweep: the cross product of Scenarios × Policies,
// replicated Seeds times.
type Spec struct {
	Name      string
	Scenarios []Scenario
	Policies  []Policy
	// Baseline names the policy used for per-app normalization (the
	// paper normalizes everything over default Xen). Empty disables
	// normalized aggregates.
	Baseline string
	// Seeds is the number of seed replications per cell (default 1).
	// Replication 0 runs with BaseSeed itself, so a single-seed sweep
	// reproduces the legacy sequential experiments bit-for-bit;
	// replication k > 0 runs with an RNG fork of BaseSeed labelled k.
	Seeds int
	// BaseSeed seeds the whole sweep (default DefaultSeed).
	BaseSeed uint64
	// Warmup and Measure, when set, override every scenario's windows.
	Warmup  sim.Time
	Measure sim.Time
}

// Run is one cell-replication of the expanded matrix.
type Run struct {
	// Index is the position in expansion order (scenario-major, then
	// policy, then seed replication).
	Index       int
	ScenarioIdx int
	PolicyIdx   int
	SeedIdx     int
	Scenario    string
	Policy      string
	// Seed is the run's simulation seed, a pure function of BaseSeed
	// and SeedIdx (shared across policies so normalization pairs runs
	// of the same replication).
	Seed uint64
}

func (s *Spec) seeds() int {
	if s.Seeds <= 0 {
		return 1
	}
	return s.Seeds
}

func (s *Spec) baseSeed() uint64 {
	if s.BaseSeed == 0 {
		return DefaultSeed
	}
	return s.BaseSeed
}

// SeedFor reports the simulation seed of replication k: BaseSeed for
// k = 0, an independent SplitMix fork for k > 0.
func (s *Spec) SeedFor(k int) uint64 {
	base := s.baseSeed()
	if k == 0 {
		return base
	}
	return sim.NewRNG(base).Fork(uint64(k)).Uint64()
}

// Validate reports an error for an unrunnable spec.
func (s *Spec) Validate() error {
	if len(s.Scenarios) == 0 {
		return fmt.Errorf("sweep %q: no scenarios", s.Name)
	}
	if len(s.Policies) == 0 {
		return fmt.Errorf("sweep %q: no policies", s.Name)
	}
	seen := map[string]bool{}
	for _, sc := range s.Scenarios {
		if sc.New == nil && sc.NewFleet == nil {
			return fmt.Errorf("sweep %q: scenario %q has no constructor", s.Name, sc.Name)
		}
		if sc.New != nil && sc.NewFleet != nil {
			return fmt.Errorf("sweep %q: scenario %q is both single-host and fleet", s.Name, sc.Name)
		}
		if seen[sc.Name] {
			return fmt.Errorf("sweep %q: duplicate scenario %q", s.Name, sc.Name)
		}
		seen[sc.Name] = true
	}
	seen = map[string]bool{}
	baselineOK := s.Baseline == ""
	for _, p := range s.Policies {
		if p.New == nil {
			return fmt.Errorf("sweep %q: policy %q has no constructor", s.Name, p.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("sweep %q: duplicate policy %q", s.Name, p.Name)
		}
		seen[p.Name] = true
		if p.Name == s.Baseline {
			baselineOK = true
		}
	}
	if !baselineOK {
		return fmt.Errorf("sweep %q: baseline policy %q not on the policy axis", s.Name, s.Baseline)
	}
	return nil
}

// Runs expands the spec into its run matrix, scenario-major.
func (s *Spec) Runs() []Run {
	n := s.seeds()
	out := make([]Run, 0, len(s.Scenarios)*len(s.Policies)*n)
	for si, sc := range s.Scenarios {
		for pi, p := range s.Policies {
			for k := 0; k < n; k++ {
				out = append(out, Run{
					Index:       len(out),
					ScenarioIdx: si,
					PolicyIdx:   pi,
					SeedIdx:     k,
					Scenario:    sc.Name,
					Policy:      p.Name,
					Seed:        s.SeedFor(k),
				})
			}
		}
	}
	return out
}

// RunResult is the outcome of one run: the per-app and per-VM
// measurement Sets plus the run-scoped metric Set (hypervisor
// counters, adaptation diagnostics). Policy keeps the exact policy
// instance used, so AQL runs expose their controller (see Controller).
// Raw is retained only under Options.KeepRaw.
type RunResult struct {
	Run
	Apps  []scenario.AppMeasure
	PerVM []scenario.AppMeasure
	// Metrics is the run-scoped Set (scenario.Result.Metrics): every
	// value flows into the cell aggregates through the metric registry.
	Metrics metrics.Set
	// Instance is the exact policy value used by this run.
	Instance scenario.Policy
	Raw      *scenario.Result
	// Err records a panic from the run (the sweep keeps going).
	Err error
	// Elapsed is the wall-clock cost of the run (diagnostic only; never
	// part of emitted aggregates, which must stay deterministic).
	Elapsed time.Duration
}

// Controller returns the AQL controller captured by this run's policy,
// or nil when the policy was not AQL (or never produced one).
func (rr *RunResult) Controller() *core.Controller {
	if a, ok := rr.Instance.(baselines.AQL); ok && a.Out != nil {
		return *a.Out
	}
	return nil
}

// Options tunes execution, not results: any Workers value produces the
// same Result modulo the Elapsed diagnostics.
type Options struct {
	// Workers bounds the goroutine pool (default: GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
	// KeepRaw retains every run's full *scenario.Result (hypervisor,
	// deployments). Costly on big grids; off by default.
	KeepRaw bool
	// Journal, when non-nil, checkpoints every completed run and skips
	// runs the journal already holds — the crash-safe resume path.
	Journal *Journal
	// RunTimeout, when positive, bounds each run's wall-clock time: a
	// run still executing after the timeout is marked FAILED (the sweep
	// continues) instead of wedging the pool. The timed-out goroutine is
	// abandoned — simulation runs have no cancellation points — so a
	// sweep with many timeouts leaks their memory until exit; the
	// watchdog exists to let a long sweep finish, not to make hangs
	// cheap.
	RunTimeout time.Duration
	// FleetWorkers shards each fleet run's host advances across this
	// many goroutines (0 = the fleet spec's hint, else GOMAXPROCS;
	// 1 = serial). Like Workers it never changes results — fleet runs
	// are byte-identical at any shard count — and it composes with
	// Workers: a sweep may run cells in parallel while each fleet cell
	// shards internally.
	FleetWorkers int
	// OnRun, when non-nil, is called once per newly executed run —
	// successful or failed — right after it completes (journal-restored
	// runs are not re-reported; Journal.RestoredCount covers them).
	// Calls are serialized, so the callback may mutate shared state
	// without its own locking, but it runs on the sweep's worker
	// goroutines and must return quickly. This is the incremental
	// result hook aqlsweepd streams from.
	OnRun func(*RunResult)
	// Context, when non-nil, cancels the sweep between runs: once it is
	// done, no further runs are dispatched, in-flight runs complete
	// (simulations have no cancellation points) and are journaled as
	// usual, and Exec returns the context's error. The journal plus a
	// later resume make a canceled sweep continuable.
	Context context.Context
}

// EffectiveWorkers reports the pool size Exec will use before
// clamping to the run count.
func (o Options) EffectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result is an executed sweep: the raw run matrix plus per-cell
// aggregates in expansion order.
type Result struct {
	Name      string
	Baseline  string
	Seeds     int
	Scenarios []string
	Policies  []string
	Runs      []RunResult
	Cells     []Cell
}

// Failed counts runs that panicked.
func (r *Result) Failed() int {
	n := 0
	for i := range r.Runs {
		if r.Runs[i].Err != nil {
			n++
		}
	}
	return n
}

// FailedCells counts cells whose every replication failed — the cells
// the emitters mark FAILED, with no aggregates at all.
func (r *Result) FailedCells() int {
	n := 0
	for i := range r.Cells {
		if r.Cells[i].Runs == 0 {
			n++
		}
	}
	return n
}

// Cell finds an aggregate cell by coordinates; nil when absent.
func (r *Result) Cell(scenarioName, policyName string) *Cell {
	for i := range r.Cells {
		if r.Cells[i].Scenario == scenarioName && r.Cells[i].Policy == policyName {
			return &r.Cells[i]
		}
	}
	return nil
}

// RunFor finds one run by coordinates; nil when absent.
func (r *Result) RunFor(scenarioName, policyName string, seedIdx int) *RunResult {
	for i := range r.Runs {
		rr := &r.Runs[i]
		if rr.Scenario == scenarioName && rr.Policy == policyName && rr.SeedIdx == seedIdx {
			return rr
		}
	}
	return nil
}

// Exec expands the spec and executes it on opts.Workers goroutines.
// Results are deterministic for any worker count: runs are seeded by
// grid coordinates and collected by index, never by completion order.
func Exec(spec *Spec, opts Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	runs := spec.Runs()
	results := make([]RunResult, len(runs))

	workers := opts.EffectiveWorkers()
	if workers > len(runs) {
		workers = len(runs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards progress output and the done counter
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				status := ""
				if opts.Journal != nil {
					if rr, ok := opts.Journal.Restored(idx); ok {
						results[idx] = rr
						status = "skipped (journaled)"
					}
				}
				if status == "" {
					results[idx] = execWatched(spec, runs[idx], opts)
					rr := &results[idx]
					if rr.Err != nil {
						status = "FAILED: " + rr.Err.Error()
					} else {
						status = "ok"
						if opts.Journal != nil {
							if err := opts.Journal.Record(rr); err != nil && opts.Progress != nil {
								mu.Lock()
								fmt.Fprintf(opts.Progress, "sweep %s: journal write failed: %v\n", spec.Name, err)
								mu.Unlock()
							}
						}
					}
					if opts.OnRun != nil {
						// After the journal write, so a callback observing the
						// run can already read its checkpoint; serialized under
						// the same mutex as progress output.
						mu.Lock()
						opts.OnRun(rr)
						mu.Unlock()
					}
				}
				if opts.Progress != nil {
					mu.Lock()
					done++
					rr := &results[idx]
					fmt.Fprintf(opts.Progress, "sweep %s: [%d/%d] %s/%s seed#%d %s (%v)\n",
						spec.Name, done, len(runs), rr.Scenario, rr.Policy, rr.SeedIdx,
						status, rr.Elapsed.Round(time.Millisecond))
					mu.Unlock()
				}
			}
		}()
	}
feed:
	for idx := range runs {
		if opts.Context != nil {
			select {
			case jobs <- idx:
			case <-opts.Context.Done():
				break feed
			}
		} else {
			jobs <- idx
		}
	}
	close(jobs)
	wg.Wait()
	if opts.Context != nil {
		if err := opts.Context.Err(); err != nil {
			return nil, err
		}
	}

	res := &Result{
		Name:     spec.Name,
		Baseline: spec.Baseline,
		Seeds:    spec.seeds(),
		Runs:     results,
	}
	for _, sc := range spec.Scenarios {
		res.Scenarios = append(res.Scenarios, sc.Name)
	}
	for _, p := range spec.Policies {
		res.Policies = append(res.Policies, p.Name)
	}
	res.Cells = aggregate(spec, results)
	return res, nil
}

// execWatched runs one grid cell replication under the per-run
// watchdog: a run exceeding Options.RunTimeout is marked FAILED so a
// single hung configuration cannot wedge the whole sweep. The hung
// goroutine is abandoned (see Options.RunTimeout); its late result is
// received by nobody thanks to the buffered channel.
func execWatched(spec *Spec, run Run, opts Options) RunResult {
	if opts.RunTimeout <= 0 {
		return execOne(spec, run, opts)
	}
	ch := make(chan RunResult, 1)
	go func() { ch <- execOne(spec, run, opts) }()
	timer := time.NewTimer(opts.RunTimeout)
	defer timer.Stop()
	select {
	case rr := <-ch:
		return rr
	case <-timer.C:
		return RunResult{
			Run:     run,
			Err:     fmt.Errorf("run %s/%s seed#%d timed out after %v", run.Scenario, run.Policy, run.SeedIdx, opts.RunTimeout),
			Elapsed: opts.RunTimeout,
		}
	}
}

// execOne runs one grid cell replication, converting panics into an
// error so a single bad configuration cannot sink a long sweep.
func execOne(spec *Spec, run Run, opts Options) (rr RunResult) {
	rr.Run = run
	start := time.Now()
	defer func() {
		rr.Elapsed = time.Since(start)
		if p := recover(); p != nil {
			rr.Err = fmt.Errorf("run %s/%s seed#%d panicked: %v", run.Scenario, run.Policy, run.SeedIdx, p)
		}
	}()

	if nf := spec.Scenarios[run.ScenarioIdx].NewFleet; nf != nil {
		fs := nf()
		fs.Seed = run.Seed
		if fs.GenSeed == 0 {
			// Pin the population to the sweep's base seed so replications
			// vary only the per-host simulations, mirroring the scenario
			// generator's GenSeed/Seed split.
			fs.GenSeed = spec.baseSeed()
		}
		if spec.Warmup > 0 {
			fs.Warmup = spec.Warmup
		}
		if spec.Measure > 0 {
			fs.Measure = spec.Measure
		}
		res := fleet.Run(*fs, fleet.Options{
			NewPolicy: spec.Policies[run.PolicyIdx].New,
			Workers:   opts.FleetWorkers,
		})
		rr.Apps = res.Apps
		rr.Metrics = res.Metrics
		return rr
	}

	sc := spec.Scenarios[run.ScenarioIdx].New()
	sc.Seed = run.Seed
	if spec.Warmup > 0 {
		sc.Warmup = spec.Warmup
	}
	if spec.Measure > 0 {
		sc.Measure = spec.Measure
	}
	pol := spec.Policies[run.PolicyIdx].New()
	res := scenario.Run(sc, pol)

	rr.Apps = res.Apps
	rr.PerVM = res.PerVM
	rr.Metrics = res.Metrics
	rr.Instance = pol
	if opts.KeepRaw {
		rr.Raw = res
	} else if ctl := rr.Controller(); ctl != nil {
		// Keep the controller's diagnostics (LastPlan, Reclusters) but
		// release the hypervisor and monitoring history it anchors —
		// otherwise every AQL run would pin a full simulation graph,
		// defeating the point of KeepRaw being opt-in.
		ctl.H = nil
		ctl.Monitor = nil
	}
	return rr
}

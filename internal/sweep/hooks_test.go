package sweep

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
)

// TestOnRunCalledPerRun: the per-run completion callback fires exactly
// once per newly executed run, with the run's grid coordinates.
func TestOnRunCalledPerRun(t *testing.T) {
	spec := journalSpec(t)
	seen := map[int]int{}
	res, err := Exec(spec, Options{Workers: 2, OnRun: func(rr *RunResult) {
		seen[rr.Index]++ // serialized by contract: no locking here
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Runs) {
		t.Fatalf("OnRun saw %d distinct runs, want %d", len(seen), len(res.Runs))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("OnRun fired %d times for run %d, want 1", n, idx)
		}
	}
}

// TestOnRunSkipsRestored: journal-restored runs are not re-reported.
func TestOnRunSkipsRestored(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	spec := journalSpec(t)
	m := NewManifest(spec, []byte(fleetSpecJSON), "")
	j, err := CreateJournal(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(spec, Options{Workers: 2, Journal: j}); err != nil {
		t.Fatal(err)
	}

	j2, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if j2.RestoredCount() != len(spec.Runs()) {
		t.Fatalf("restored %d, want %d", j2.RestoredCount(), len(spec.Runs()))
	}
	calls := 0
	if _, err := Exec(journalSpec(t), Options{Workers: 2, Journal: j2, OnRun: func(*RunResult) { calls++ }}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("OnRun fired %d times on a fully restored sweep, want 0", calls)
	}
}

// TestContextCancelStopsDispatch: a canceled context stops the sweep
// between runs; completed cells stay journaled so a resume can finish
// the grid.
func TestContextCancelStopsDispatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	spec := journalSpec(t)
	m := NewManifest(spec, []byte(fleetSpecJSON), "")
	j, err := CreateJournal(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	executed := 0
	_, err = Exec(spec, Options{Workers: 1, Journal: j, Context: ctx, OnRun: func(*RunResult) {
		executed++
		cancel() // cancel after the first completed run
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Exec error = %v, want context.Canceled", err)
	}
	if executed == 0 || executed >= len(spec.Runs()) {
		t.Fatalf("executed %d runs before cancel took effect, want in [1, %d)", executed, len(spec.Runs()))
	}

	// The journal lets a resume complete the grid with byte-identical
	// artifacts (cells are deterministic).
	j2, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if j2.RestoredCount() != executed {
		t.Fatalf("journal restored %d runs, want %d", j2.RestoredCount(), executed)
	}
	res, err := Exec(journalSpec(t), Options{Workers: 2, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Exec(journalSpec(t), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, gotCSV := render(t, res)
	wantJSON, wantCSV := render(t, ref)
	if gotJSON != wantJSON || gotCSV != wantCSV {
		t.Fatal("resumed-after-cancel artifacts differ from uninterrupted run")
	}
}

// TestContextPreCanceled: an already-canceled context executes nothing.
func TestContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	_, err := Exec(journalSpec(t), Options{Workers: 2, Context: ctx, OnRun: func(*RunResult) { calls++ }})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Exec error = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("executed %d runs under a pre-canceled context, want 0", calls)
	}
}

// TestManifestRebuildRoundTrip: NewManifest → Rebuild reproduces the
// exact grid, and tampering with the manifest fails the rebuild.
func TestManifestRebuildRoundTrip(t *testing.T) {
	spec := journalSpec(t)
	m := NewManifest(spec, []byte(fleetSpecJSON), "")
	re, err := m.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Runs()) != len(spec.Runs()) || re.Name != spec.Name {
		t.Fatalf("rebuilt spec differs: %d runs/%q, want %d/%q", len(re.Runs()), re.Name, len(spec.Runs()), spec.Name)
	}

	bad := m
	bad.Seeds = m.Seeds + 1 // override drift must break the fingerprint
	if _, err := bad.Rebuild(); err == nil {
		t.Fatal("Rebuild accepted a manifest with edited overrides")
	}

	empty := Manifest{Runs: 1}
	if _, err := empty.Rebuild(); err == nil {
		t.Fatal("Rebuild accepted a manifest with no spec source")
	}
}

// TestJournalCheckpointBytes: Checkpoint returns the exact journaled
// line, newline-terminated single-line JSON.
func TestJournalCheckpointBytes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	spec := journalSpec(t)
	j, err := CreateJournal(dir, NewManifest(spec, []byte(fleetSpecJSON), ""))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(spec, Options{Workers: 1, Journal: j}); err != nil {
		t.Fatal(err)
	}
	j2, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	idxs := j2.RestoredIndexes()
	if len(idxs) != len(spec.Runs()) {
		t.Fatalf("RestoredIndexes = %v, want %d entries", idxs, len(spec.Runs()))
	}
	for i := 1; i < len(idxs); i++ {
		if idxs[i] <= idxs[i-1] {
			t.Fatalf("RestoredIndexes not ascending: %v", idxs)
		}
	}
	line, err := j2.Checkpoint(idxs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(line) == 0 || line[len(line)-1] != '\n' {
		t.Fatal("checkpoint line is not newline-terminated")
	}
	for _, b := range line[:len(line)-1] {
		if b == '\n' {
			t.Fatal("checkpoint spans multiple lines")
		}
	}
}

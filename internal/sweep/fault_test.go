package sweep

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// faultSpecJSON is fleetSpecJSON under fire: a crash storm, a degrade
// storm, flaky migrations and a bounded-retry recovery policy. Small
// enough to execute twice in the determinism test.
const faultSpecJSON = `{
	"name": "fault-quick",
	"scenarios": [
		{"fleet": {
			"name": "dc",
			"hosts": 4,
			"oversub": 2,
			"placement": ["least-loaded", "bin-pack"],
			"tenants": {"alpha": 2, "beta": 1},
			"vcpus": 48,
			"mix": {"IOInt": 0.3, "ConSpin": 0.3, "LLCF": 0.4},
			"churn": {"rate_per_sec": 25, "mean_life_ms": 120, "min_life_ms": 40, "horizon_ms": 260},
			"rebalance": {"every_ms": 40, "threshold": 0.08, "migration_ms": 15, "max_per_tick": 4},
			"faults": {
				"crashes": [{"host": 0, "at_ms": 120, "down_ms": 60}],
				"crash_storm": {"rate_per_sec": 8, "start_ms": 90, "horizon_ms": 280, "mean_down_ms": 50},
				"degrade_storm": {"rate_per_sec": 6, "horizon_ms": 280, "mean_down_ms": 70, "factor": 0.5},
				"migration_fail_prob": 0.25,
				"recovery": {"max_retries": 4, "retry_delay_ms": 8, "backoff": 2, "on_exhaust": "requeue"}
			}
		}}
	],
	"policies": ["xen"],
	"seeds": 2,
	"warmup_ms": 80,
	"measure_ms": 220
}`

// TestFaultSweepDeterminism: failure injection must not cost the
// worker-count determinism guarantee — fault timelines are seeded and
// merged into the same (time, sequence) event order as everything else.
func TestFaultSweepDeterminism(t *testing.T) {
	artifacts := func(workers int) (string, string) {
		spec, err := Parse([]byte(faultSpecJSON))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Exec(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, rr := range res.Runs {
			if rr.Err != nil {
				t.Fatalf("run %s/%s failed: %v", rr.Scenario, rr.Policy, rr.Err)
			}
		}
		var j, c bytes.Buffer
		if err := res.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := artifacts(1)
	j4, c4 := artifacts(4)
	if j1 != j4 {
		t.Error("JSON artifacts differ between -workers 1 and 4 under failure injection")
	}
	if c1 != c4 {
		t.Error("CSV artifacts differ between -workers 1 and 4 under failure injection")
	}
	for _, m := range []string{"fleet_faults_injected", "fleet_vms_replaced", "fleet_downtime_vm_seconds"} {
		if !strings.Contains(j1, m) {
			t.Errorf("fault metric %s missing from the JSON artifact", m)
		}
	}
}

// TestFaultFleetBuiltinMatchesExampleSpec: `aqlsweep -spec faultfleet`
// and `-spec examples/specs/faultfleet.json` must define the same
// experiment, fault plan included.
func TestFaultFleetBuiltinMatchesExampleSpec(t *testing.T) {
	builtin, ok := Builtin("faultfleet")
	if !ok {
		t.Fatal("faultfleet builtin missing")
	}
	file, err := Load("../../examples/specs/faultfleet.json")
	if err != nil {
		t.Fatal(err)
	}
	if builtin.Name != file.Name || builtin.Seeds != file.Seeds ||
		builtin.Warmup != file.Warmup || builtin.Measure != file.Measure {
		t.Errorf("faultfleet builtin and example file disagree on sweep knobs:\nbuiltin %+v\nfile    %+v", builtin, file)
	}
	if len(builtin.Scenarios) != len(file.Scenarios) {
		t.Fatalf("axis sizes differ: %d vs %d", len(builtin.Scenarios), len(file.Scenarios))
	}
	for i := range builtin.Scenarios {
		b, f := builtin.Scenarios[i], file.Scenarios[i]
		if b.Name != f.Name {
			t.Errorf("scenario %d named %q vs %q", i, b.Name, f.Name)
		}
		bs, fs := b.NewFleet(), f.NewFleet()
		if bs.Faults == nil || fs.Faults == nil {
			t.Fatalf("scenario %q lost its fault plan (builtin nil=%v, file nil=%v)", b.Name, bs.Faults == nil, fs.Faults == nil)
		}
		if !reflect.DeepEqual(bs, fs) {
			t.Errorf("faultfleet builtin and example file expand scenario %q differently:\nbuiltin %+v\nfile    %+v", b.Name, bs, fs)
		}
	}
}

func TestSpecFileFaultErrorPaths(t *testing.T) {
	mk := func(faults string) string {
		return `{"scenarios": [{"fleet": {"hosts": 2, "vcpus": 8, "mix": {"IOInt": 1},
			"faults": ` + faults + `}}], "policies": ["xen"]}`
	}
	cases := []struct {
		name   string
		faults string
		want   string
	}{
		{"crash out of range", `{"crashes": [{"host": 7, "at_ms": 1}]}`, "targets host 7"},
		{"bad factor", `{"degrades": [{"host": 0, "for_ms": 5, "factor": 2}]}`, "must be in (0, 1]"},
		{"bad probability", `{"migration_fail_prob": 2}`, "must be in [0, 1]"},
		{"bad exhaust policy", `{"recovery": {"on_exhaust": "panic"}}`, "on-exhaust"},
		{"unknown key", `{"chaos_monkey": true}`, "chaos_monkey"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(mk(c.faults)))
			if err == nil {
				t.Fatal("bad fault block accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

package sweep

import (
	"bytes"
	"strings"
	"testing"
)

// TestFleetWorkersDeterminism: intra-run sharding, alone and nested
// under sweep-level parallelism, must leave every artifact byte
// untouched — the faultSpecJSON grid exercises crashes, storms, flaky
// migrations and recovery retries through the epoch-parallel loop.
func TestFleetWorkersDeterminism(t *testing.T) {
	artifacts := func(opts Options) (string, string) {
		spec, err := Parse([]byte(faultSpecJSON))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Exec(spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, rr := range res.Runs {
			if rr.Err != nil {
				t.Fatalf("run %s/%s failed: %v", rr.Scenario, rr.Policy, rr.Err)
			}
		}
		var j, c bytes.Buffer
		if err := res.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}

	jSerial, cSerial := artifacts(Options{Workers: 1, FleetWorkers: 1})
	cases := []struct {
		name string
		opts Options
	}{
		{"fleet-workers=4", Options{Workers: 1, FleetWorkers: 4}},
		{"nested workers=4 fleet-workers=4", Options{Workers: 4, FleetWorkers: 4}},
	}
	for _, c := range cases {
		j, cs := artifacts(c.opts)
		if j != jSerial {
			t.Errorf("%s: JSON artifact differs from the serial run", c.name)
		}
		if cs != cSerial {
			t.Errorf("%s: CSV artifact differs from the serial run", c.name)
		}
	}
}

// TestFleetWorkersSpecHint: the {"fleet": {"workers": N}} spec knob
// reaches fleet.Spec and, being an execution hint, changes nothing in
// the artifacts.
func TestFleetWorkersSpecHint(t *testing.T) {
	hinted := strings.Replace(faultSpecJSON, `"hosts": 4,`, `"hosts": 4, "workers": 3,`, 1)
	if hinted == faultSpecJSON {
		t.Fatal("failed to splice the workers hint into the spec")
	}
	spec, err := Parse([]byte(hinted))
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range spec.Scenarios {
		if fs := sc.NewFleet(); fs.Workers != 3 {
			t.Errorf("scenario %s: Workers hint = %d, want 3", sc.Name, fs.Workers)
		}
	}

	res, err := Exec(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Parse([]byte(faultSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Exec(base, Options{Workers: 1, FleetWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var jHint, jBase bytes.Buffer
	if err := res.WriteJSON(&jHint); err != nil {
		t.Fatal(err)
	}
	if err := want.WriteJSON(&jBase); err != nil {
		t.Fatal(err)
	}
	if jHint.String() != jBase.String() {
		t.Error("the workers hint changed the artifacts; it must be execution-only")
	}
}

// TestFleetWorkersSpecRejectsNegative: a negative hint fails at parse
// time, not mid-sweep.
func TestFleetWorkersSpecRejectsNegative(t *testing.T) {
	bad := strings.Replace(faultSpecJSON, `"hosts": 4,`, `"hosts": 4, "workers": -2,`, 1)
	if _, err := Parse([]byte(bad)); err == nil || !strings.Contains(err.Error(), "workers") {
		t.Errorf("negative fleet workers hint accepted at parse time, err = %v", err)
	}
}

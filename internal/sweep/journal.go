package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"aqlsched/internal/atomicio"
	"aqlsched/internal/metrics"
	"aqlsched/internal/scenario"
)

// Journal is the crash-safety layer of a sweep: every successfully
// completed run is checkpointed to its own file (written atomically),
// so a sweep killed mid-flight can be resumed with the completed cells
// skipped. Cells are independent and deterministic, which is what makes
// a restored result indistinguishable from a re-executed one — the
// resumed sweep's artifacts are byte-identical to an uninterrupted
// run's.
//
// On disk a journal is a directory:
//
//	manifest.json   identity: sweep name, spec fingerprint, spec source
//	run-00042.json  one checkpointed run (expansion index 42)
type Journal struct {
	dir      string
	restored map[int]RunResult
}

// Manifest identifies the sweep a journal belongs to. The fingerprint
// pins the exact spec (resuming against an edited spec must fail, not
// silently mix grids); the embedded source lets -resume <dir> rebuild
// the sweep without re-supplying the original flags.
type Manifest struct {
	// Name is the sweep name (diagnostic).
	Name string `json:"name"`
	// Fingerprint is the hex SHA-256 of the spec source.
	Fingerprint string `json:"fingerprint"`
	// Builtin names a built-in sweep, or "" when SpecJSON is set.
	Builtin string `json:"builtin,omitempty"`
	// SpecJSON holds the spec-file bytes for file-driven sweeps. It is a
	// string, not a json.RawMessage, on purpose: the fingerprint covers
	// these exact bytes, and embedding them as a JSON string survives the
	// manifest's own indent/parse round trip byte-for-byte, which raw
	// embedding does not.
	SpecJSON string `json:"spec_json,omitempty"`
	// Seeds, BaseSeed, WarmupNS and MeasureNS snapshot the effective
	// overrides applied when the journal was created, so a resume
	// reconstructs the exact same grid without re-supplying the flags.
	Seeds     int    `json:"seeds"`
	BaseSeed  uint64 `json:"base_seed"`
	WarmupNS  int64  `json:"warmup_ns"`
	MeasureNS int64  `json:"measure_ns"`
	// Runs is the expanded matrix size (a sanity check on open).
	Runs int `json:"runs"`
}

// FingerprintBuiltin fingerprints a built-in sweep reference.
func FingerprintBuiltin(name string) string {
	return fingerprint([]byte("builtin:" + name))
}

// FingerprintSpec fingerprints raw spec-file bytes.
func FingerprintSpec(data []byte) string {
	return fingerprint(data)
}

func fingerprint(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// runRecord is the serialized form of one completed run: the grid
// coordinates plus everything aggregation (and therefore every emitted
// artifact) reads. Policy instances and raw simulation state are
// deliberately not journaled — they are diagnostics of a live run.
type runRecord struct {
	Index       int                   `json:"index"`
	ScenarioIdx int                   `json:"scenario_idx"`
	PolicyIdx   int                   `json:"policy_idx"`
	SeedIdx     int                   `json:"seed_idx"`
	Scenario    string                `json:"scenario"`
	Policy      string                `json:"policy"`
	Seed        uint64                `json:"seed"`
	Apps        []scenario.AppMeasure `json:"apps,omitempty"`
	PerVM       []scenario.AppMeasure `json:"per_vm,omitempty"`
	Metrics     metrics.Set           `json:"metrics"`
}

// CreateJournal initializes a journal directory (creating it as needed)
// and writes the manifest. An existing manifest for a different
// fingerprint is an error: one directory belongs to one sweep.
func CreateJournal(dir string, m Manifest) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	mpath := filepath.Join(dir, "manifest.json")
	if old, err := readManifest(mpath); err == nil {
		if old.Fingerprint != m.Fingerprint {
			return nil, fmt.Errorf("sweep: journal %s belongs to another spec (fingerprint %.12s… != %.12s…)",
				dir, old.Fingerprint, m.Fingerprint)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("sweep: journal %s: %v", dir, err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := atomicio.WriteFile(mpath, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	return &Journal{dir: dir, restored: map[int]RunResult{}}, nil
}

// OpenJournal loads an existing journal: the manifest plus every intact
// run checkpoint. A checkpoint that fails to parse is skipped (its run
// simply re-executes) — atomic writes make that near-impossible, but a
// resume must never be wedged by one bad file.
func OpenJournal(dir string) (*Journal, *Manifest, error) {
	m, err := readManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: journal %s: %v", dir, err)
	}
	j := &Journal{dir: dir, restored: map[int]RunResult{}}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if n := e.Name(); len(n) > 4 && n[:4] == "run-" && filepath.Ext(n) == ".json" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			continue
		}
		var rec runRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			continue
		}
		if rec.Index < 0 || rec.Index >= m.Runs {
			continue
		}
		j.restored[rec.Index] = RunResult{
			Run: Run{
				Index:       rec.Index,
				ScenarioIdx: rec.ScenarioIdx,
				PolicyIdx:   rec.PolicyIdx,
				SeedIdx:     rec.SeedIdx,
				Scenario:    rec.Scenario,
				Policy:      rec.Policy,
				Seed:        rec.Seed,
			},
			Apps:    rec.Apps,
			PerVM:   rec.PerVM,
			Metrics: rec.Metrics,
		}
	}
	return j, m, nil
}

func readManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Restored returns the checkpointed result of run idx, if present.
func (j *Journal) Restored(idx int) (RunResult, bool) {
	rr, ok := j.restored[idx]
	return rr, ok
}

// RestoredCount reports how many runs the journal restored.
func (j *Journal) RestoredCount() int { return len(j.restored) }

// Dir is the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// Record checkpoints one successfully completed run. Failed runs are
// not recorded — a resume retries them. The write is atomic, so a
// process killed here leaves either a complete checkpoint or none.
func (j *Journal) Record(rr *RunResult) error {
	if rr.Err != nil {
		return nil
	}
	rec := runRecord{
		Index:       rr.Index,
		ScenarioIdx: rr.ScenarioIdx,
		PolicyIdx:   rr.PolicyIdx,
		SeedIdx:     rr.SeedIdx,
		Scenario:    rr.Scenario,
		Policy:      rr.Policy,
		Seed:        rr.Seed,
		Apps:        rr.Apps,
		PerVM:       rr.PerVM,
		Metrics:     rr.Metrics,
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	path := filepath.Join(j.dir, fmt.Sprintf("run-%05d.json", rr.Index))
	return atomicio.WriteFile(path, append(data, '\n'), 0o644)
}

package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"aqlsched/internal/atomicio"
	"aqlsched/internal/metrics"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
)

// Journal is the crash-safety layer of a sweep: every successfully
// completed run is checkpointed to its own file (written atomically),
// so a sweep killed mid-flight can be resumed with the completed cells
// skipped. Cells are independent and deterministic, which is what makes
// a restored result indistinguishable from a re-executed one — the
// resumed sweep's artifacts are byte-identical to an uninterrupted
// run's.
//
// On disk a journal is a directory:
//
//	manifest.json   identity: sweep name, spec fingerprint, spec source
//	run-00042.json  one checkpointed run (expansion index 42)
type Journal struct {
	dir      string
	restored map[int]RunResult
}

// Manifest identifies the sweep a journal belongs to. The fingerprint
// pins the exact spec (resuming against an edited spec must fail, not
// silently mix grids); the embedded source lets -resume <dir> rebuild
// the sweep without re-supplying the original flags.
type Manifest struct {
	// Name is the sweep name (diagnostic).
	Name string `json:"name"`
	// Fingerprint is the hex SHA-256 of the spec source.
	Fingerprint string `json:"fingerprint"`
	// Builtin names a built-in sweep, or "" when SpecJSON is set.
	Builtin string `json:"builtin,omitempty"`
	// SpecJSON holds the spec-file bytes for file-driven sweeps. It is a
	// string, not a json.RawMessage, on purpose: the fingerprint covers
	// these exact bytes, and embedding them as a JSON string survives the
	// manifest's own indent/parse round trip byte-for-byte, which raw
	// embedding does not.
	SpecJSON string `json:"spec_json,omitempty"`
	// Seeds, BaseSeed, WarmupNS and MeasureNS snapshot the effective
	// overrides applied when the journal was created, so a resume
	// reconstructs the exact same grid without re-supplying the flags.
	Seeds     int    `json:"seeds"`
	BaseSeed  uint64 `json:"base_seed"`
	WarmupNS  int64  `json:"warmup_ns"`
	MeasureNS int64  `json:"measure_ns"`
	// Runs is the expanded matrix size (a sanity check on open).
	Runs int `json:"runs"`
}

// NewManifest snapshots a sweep's identity for a crash-safe journal:
// the spec source (raw file bytes, or a built-in name), plus every
// grid-shaping override already applied to spec. The fingerprint
// covers all of it, so resuming against an edited spec or different
// overrides fails instead of silently mixing grids. Both aqlsweep's
// -out journal and aqlsweepd's per-job journals are created from this.
func NewManifest(spec *Spec, src []byte, builtin string) Manifest {
	ident := append([]byte(nil), src...)
	if builtin != "" {
		ident = []byte("builtin:" + builtin)
	}
	ident = append(ident, fmt.Sprintf("|seeds=%d|base=%d|warmup=%d|measure=%d",
		spec.Seeds, spec.BaseSeed, spec.Warmup, spec.Measure)...)
	return Manifest{
		Name:        spec.Name,
		Fingerprint: fingerprint(ident),
		Builtin:     builtin,
		SpecJSON:    string(src),
		Seeds:       spec.Seeds,
		BaseSeed:    spec.BaseSeed,
		WarmupNS:    int64(spec.Warmup),
		MeasureNS:   int64(spec.Measure),
		Runs:        len(spec.Runs()),
	}
}

// Rebuild reconstructs the exact Spec the manifest was created for —
// the -resume path, also used by aqlsweepd to re-run recovered jobs.
// It re-derives the fingerprint and run count and fails on any
// mismatch (a changed built-in, an edited embedded spec).
func (m *Manifest) Rebuild() (*Spec, error) {
	var spec *Spec
	switch {
	case m.Builtin != "":
		s, ok := Builtin(m.Builtin)
		if !ok {
			return nil, fmt.Errorf("sweep: manifest references unknown built-in sweep %q", m.Builtin)
		}
		spec = s
	case len(m.SpecJSON) > 0:
		s, err := Parse([]byte(m.SpecJSON))
		if err != nil {
			return nil, fmt.Errorf("sweep: manifest's embedded spec: %v", err)
		}
		spec = s
	default:
		return nil, fmt.Errorf("sweep: manifest names neither a built-in nor an embedded spec")
	}
	spec.Seeds = m.Seeds
	spec.BaseSeed = m.BaseSeed
	spec.Warmup = sim.Time(m.WarmupNS)
	spec.Measure = sim.Time(m.MeasureNS)
	if got := NewManifest(spec, []byte(m.SpecJSON), m.Builtin).Fingerprint; got != m.Fingerprint {
		return nil, fmt.Errorf("sweep: manifest fingerprint mismatch (the built-in or binary changed since the journal was written)")
	}
	if got := len(spec.Runs()); got != m.Runs {
		return nil, fmt.Errorf("sweep: manifest expects %d runs, the rebuilt sweep has %d", m.Runs, got)
	}
	return spec, nil
}

// FingerprintBuiltin fingerprints a built-in sweep reference.
func FingerprintBuiltin(name string) string {
	return fingerprint([]byte("builtin:" + name))
}

// FingerprintSpec fingerprints raw spec-file bytes.
func FingerprintSpec(data []byte) string {
	return fingerprint(data)
}

func fingerprint(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// runRecord is the serialized form of one completed run: the grid
// coordinates plus everything aggregation (and therefore every emitted
// artifact) reads. Policy instances and raw simulation state are
// deliberately not journaled — they are diagnostics of a live run.
type runRecord struct {
	Index       int                   `json:"index"`
	ScenarioIdx int                   `json:"scenario_idx"`
	PolicyIdx   int                   `json:"policy_idx"`
	SeedIdx     int                   `json:"seed_idx"`
	Scenario    string                `json:"scenario"`
	Policy      string                `json:"policy"`
	Seed        uint64                `json:"seed"`
	Apps        []scenario.AppMeasure `json:"apps,omitempty"`
	PerVM       []scenario.AppMeasure `json:"per_vm,omitempty"`
	Metrics     metrics.Set           `json:"metrics"`
}

// CreateJournal initializes a journal directory (creating it as needed)
// and writes the manifest. An existing manifest for a different
// fingerprint is an error: one directory belongs to one sweep.
func CreateJournal(dir string, m Manifest) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	mpath := filepath.Join(dir, "manifest.json")
	if old, err := readManifest(mpath); err == nil {
		if old.Fingerprint != m.Fingerprint {
			return nil, fmt.Errorf("sweep: journal %s belongs to another spec (fingerprint %.12s… != %.12s…)",
				dir, old.Fingerprint, m.Fingerprint)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("sweep: journal %s: %v", dir, err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := atomicio.WriteFile(mpath, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	return &Journal{dir: dir, restored: map[int]RunResult{}}, nil
}

// OpenJournal loads an existing journal: the manifest plus every intact
// run checkpoint. A checkpoint that fails to parse is skipped (its run
// simply re-executes) — atomic writes make that near-impossible, but a
// resume must never be wedged by one bad file.
func OpenJournal(dir string) (*Journal, *Manifest, error) {
	m, err := readManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: journal %s: %v", dir, err)
	}
	j := &Journal{dir: dir, restored: map[int]RunResult{}}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if n := e.Name(); len(n) > 4 && n[:4] == "run-" && filepath.Ext(n) == ".json" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			continue
		}
		var rec runRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			continue
		}
		if rec.Index < 0 || rec.Index >= m.Runs {
			continue
		}
		j.restored[rec.Index] = RunResult{
			Run: Run{
				Index:       rec.Index,
				ScenarioIdx: rec.ScenarioIdx,
				PolicyIdx:   rec.PolicyIdx,
				SeedIdx:     rec.SeedIdx,
				Scenario:    rec.Scenario,
				Policy:      rec.Policy,
				Seed:        rec.Seed,
			},
			Apps:    rec.Apps,
			PerVM:   rec.PerVM,
			Metrics: rec.Metrics,
		}
	}
	return j, m, nil
}

func readManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Restored returns the checkpointed result of run idx, if present.
func (j *Journal) Restored(idx int) (RunResult, bool) {
	rr, ok := j.restored[idx]
	return rr, ok
}

// RestoredCount reports how many runs the journal restored.
func (j *Journal) RestoredCount() int { return len(j.restored) }

// RestoredIndexes returns the expansion indexes the journal restored,
// ascending — aqlsweepd seeds a recovered job's result stream from it.
func (j *Journal) RestoredIndexes() []int {
	out := make([]int, 0, len(j.restored))
	for idx := range j.restored {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// Checkpoint returns the raw journaled bytes of run idx exactly as
// written: one JSON object on a single line, newline-terminated —
// ready to be emitted verbatim as an NDJSON stream line.
func (j *Journal) Checkpoint(idx int) ([]byte, error) {
	return os.ReadFile(CheckpointPath(j.dir, idx))
}

// CheckpointPath is the journal checkpoint file of run idx inside dir.
// Exposed so aqlsweepd can stream checkpoints of journals it is not
// currently executing (finished or recovered jobs).
func CheckpointPath(dir string, idx int) string {
	return filepath.Join(dir, fmt.Sprintf("run-%05d.json", idx))
}

// Dir is the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// Record checkpoints one successfully completed run. Failed runs are
// not recorded — a resume retries them. The write is atomic, so a
// process killed here leaves either a complete checkpoint or none.
func (j *Journal) Record(rr *RunResult) error {
	if rr.Err != nil {
		return nil
	}
	rec := runRecord{
		Index:       rr.Index,
		ScenarioIdx: rr.ScenarioIdx,
		PolicyIdx:   rr.PolicyIdx,
		SeedIdx:     rr.SeedIdx,
		Scenario:    rr.Scenario,
		Policy:      rr.Policy,
		Seed:        rr.Seed,
		Apps:        rr.Apps,
		PerVM:       rr.PerVM,
		Metrics:     rr.Metrics,
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return atomicio.WriteFile(CheckpointPath(j.dir, rr.Index), append(data, '\n'), 0o644)
}

package sweep

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// fleetSpecJSON is a small but complete fleet block: multi-placement,
// multi-tenant, churn and rebalancing — big enough to migrate, small
// enough for the determinism test to run the grid twice.
const fleetSpecJSON = `{
	"name": "fleet-quick",
	"scenarios": [
		{"fleet": {
			"name": "dc",
			"hosts": 4,
			"oversub": 2,
			"placement": ["least-loaded", "bin-pack"],
			"tenants": {"alpha": 2, "beta": 1},
			"vcpus": 48,
			"mix": {"IOInt": 0.3, "ConSpin": 0.3, "LLCF": 0.4},
			"churn": {"rate_per_sec": 25, "mean_life_ms": 120, "min_life_ms": 40, "horizon_ms": 260},
			"rebalance": {"every_ms": 40, "threshold": 0.08, "migration_ms": 15, "max_per_tick": 4}
		}}
	],
	"policies": ["xen"],
	"seeds": 2,
	"warmup_ms": 80,
	"measure_ms": 220
}`

func TestSpecFileFleetBlock(t *testing.T) {
	s, err := Parse([]byte(fleetSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Scenarios) != 2 {
		t.Fatalf("placement expansion produced %d scenarios, want 2", len(s.Scenarios))
	}
	wantNames := []string{"dc+least-loaded", "dc+bin-pack"}
	for i, sc := range s.Scenarios {
		if sc.Name != wantNames[i] {
			t.Errorf("scenario %d named %q, want %q", i, sc.Name, wantNames[i])
		}
		if sc.NewFleet == nil || sc.New != nil {
			t.Fatalf("scenario %q: want a fleet constructor only", sc.Name)
		}
		fs := sc.NewFleet()
		if fs.Placement != strings.TrimPrefix(sc.Name, "dc+") {
			t.Errorf("scenario %q builds placement %q", sc.Name, fs.Placement)
		}
		if fs.Hosts != 4 || fs.VCPUs != 48 {
			t.Errorf("scenario %q: hosts=%d vcpus=%d, want 4/48", sc.Name, fs.Hosts, fs.VCPUs)
		}
		// Tenant order is sorted by name for determinism.
		if fs.Tenants[0].Name != "alpha" || fs.Tenants[1].Name != "beta" {
			t.Errorf("tenant order %v, want alpha then beta", fs.Tenants)
		}
		// Constructors must return independent copies.
		if sc.NewFleet() == fs {
			t.Error("NewFleet returned a shared spec pointer")
		}
	}
}

func TestSpecFileFleetErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{
			"zero hosts",
			`{"scenarios": [{"fleet": {"hosts": 0, "vcpus": 8, "mix": {"IOInt": 1}}}], "policies": ["xen"]}`,
			"at least one host",
		},
		{
			"unknown placement",
			`{"scenarios": [{"fleet": {"hosts": 2, "vcpus": 8, "placement": "round-robin", "mix": {"IOInt": 1}}}], "policies": ["xen"]}`,
			"unknown placement",
		},
		{
			"insane tenant weight",
			`{"scenarios": [{"fleet": {"hosts": 2, "vcpus": 8, "tenants": {"a": -3}, "mix": {"IOInt": 1}}}], "policies": ["xen"]}`,
			"must be positive",
		},
		{
			"missing population",
			`{"scenarios": [{"fleet": {"hosts": 2, "mix": {"IOInt": 1}}}], "policies": ["xen"]}`,
			"vCPU budget",
		},
		{
			"unknown mix type",
			`{"scenarios": [{"fleet": {"hosts": 2, "vcpus": 8, "mix": {"TurboBoost": 1}}}], "policies": ["xen"]}`,
			"unknown",
		},
		{
			"fleet plus name",
			`{"scenarios": [{"name": "S1", "fleet": {"hosts": 2, "vcpus": 8, "mix": {"IOInt": 1}}}], "policies": ["xen"]}`,
			"combines a fleet block",
		},
		{
			"fleet plus gen",
			`{"scenarios": [{"gen": {"vcpus": 8, "mix": {"IOInt": 1}}, "fleet": {"hosts": 2, "vcpus": 8, "mix": {"IOInt": 1}}}], "policies": ["xen"]}`,
			"combines a fleet block",
		},
		{
			"unknown fleet key",
			`{"scenarios": [{"fleet": {"hosts": 2, "vcpus": 8, "mix": {"IOInt": 1}, "hypervisor": "kvm"}}], "policies": ["xen"]}`,
			"hypervisor",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.json))
			if err == nil {
				t.Fatal("bad fleet spec accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestFleetSweepDeterminism: fleet sweep artifacts must be byte-
// identical at any worker count — the cross-host event merge is ordered
// by (time, sequence), never by goroutine scheduling.
func TestFleetSweepDeterminism(t *testing.T) {
	artifacts := func(workers int) (string, string) {
		spec, err := Parse([]byte(fleetSpecJSON))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Exec(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() > 0 {
			for _, rr := range res.Runs {
				if rr.Err != nil {
					t.Fatalf("run %s/%s failed: %v", rr.Scenario, rr.Policy, rr.Err)
				}
			}
		}
		var j, c bytes.Buffer
		if err := res.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := artifacts(1)
	j4, c4 := artifacts(4)
	if j1 != j4 {
		t.Error("JSON artifacts differ between -workers 1 and 4")
	}
	if c1 != c4 {
		t.Error("CSV artifacts differ between -workers 1 and 4")
	}
	if !strings.Contains(j1, "fleet_migrations") || !strings.Contains(j1, "fleet_tenant_jain") {
		t.Error("fleet metrics missing from the JSON artifact")
	}
	if !strings.Contains(c1, "tenant:alpha") {
		t.Error("per-tenant rows missing from the CSV artifact")
	}
}

// TestFleetBuiltinMatchesExampleSpec: `aqlsweep -spec fleet` (the
// builtin) and `-spec examples/specs/fleet.json` (the CI smoke file)
// must define the same experiment.
func TestFleetBuiltinMatchesExampleSpec(t *testing.T) {
	builtin, ok := Builtin("fleet")
	if !ok {
		t.Fatal("fleet builtin missing")
	}
	file, err := Load("../../examples/specs/fleet.json")
	if err != nil {
		t.Fatal(err)
	}
	if builtin.Name != file.Name || builtin.Baseline != file.Baseline ||
		builtin.Seeds != file.Seeds || builtin.BaseSeed != file.BaseSeed ||
		builtin.Warmup != file.Warmup || builtin.Measure != file.Measure {
		t.Errorf("fleet builtin and example file disagree on sweep knobs:\nbuiltin %+v\nfile    %+v", builtin, file)
	}
	var bp, fp []string
	for _, p := range builtin.Policies {
		bp = append(bp, p.Name)
	}
	for _, p := range file.Policies {
		fp = append(fp, p.Name)
	}
	if !reflect.DeepEqual(bp, fp) {
		t.Errorf("policy axes differ: builtin %v, file %v", bp, fp)
	}
	if len(builtin.Scenarios) != len(file.Scenarios) {
		t.Fatalf("axis sizes differ: %d vs %d", len(builtin.Scenarios), len(file.Scenarios))
	}
	for i := range builtin.Scenarios {
		b, f := builtin.Scenarios[i], file.Scenarios[i]
		if b.Name != f.Name {
			t.Errorf("scenario %d named %q vs %q", i, b.Name, f.Name)
		}
		if b.NewFleet == nil || f.NewFleet == nil {
			t.Fatalf("scenario %d is not a fleet scenario in both spellings", i)
		}
		if !reflect.DeepEqual(b.NewFleet(), f.NewFleet()) {
			t.Errorf("fleet builtin and example file expand scenario %q differently", b.Name)
		}
	}
}

package sweep

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

// quickSpec is a small but real grid: one Table-4 scenario under three
// policies, two seed replications, quick windows.
func quickSpec(t *testing.T) *Spec {
	t.Helper()
	s, err := (&File{
		Name:      "quick",
		Scenarios: refs("S2"),
		Policies:  pols("xen", "microsliced", "aql"),
		Baseline:  "xen-credit",
		Seeds:     2,
		WarmupMS:  400,
		MeasureMS: 900,
	}).Spec()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSweepDeterminism is the subsystem's core guarantee: the same
// spec and seed produce bit-identical aggregates for any worker count.
func TestSweepDeterminism(t *testing.T) {
	spec := quickSpec(t)

	seq, err := Exec(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Exec(spec, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Failed() != 0 || par.Failed() != 0 {
		t.Fatalf("failed runs: seq=%d par=%d", seq.Failed(), par.Failed())
	}

	var seqJSON, parJSON bytes.Buffer
	if err := seq.WriteJSON(&seqJSON); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteJSON(&parJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON.Bytes(), parJSON.Bytes()) {
		t.Errorf("JSON aggregates differ between -workers=1 and -workers=8:\n--- seq ---\n%s\n--- par ---\n%s",
			seqJSON.String(), parJSON.String())
	}

	var seqCSV, parCSV bytes.Buffer
	if err := seq.WriteCSV(&seqCSV); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteCSV(&parCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqCSV.Bytes(), parCSV.Bytes()) {
		t.Error("CSV aggregates differ between -workers=1 and -workers=8")
	}
}

// TestSweepAggregates sanity-checks the cells of a real run: every
// coordinate exists, metrics are finite and positive, the baseline
// normalizes to exactly 1, and per-seed runs carry distinct seeds.
func TestSweepAggregates(t *testing.T) {
	spec := quickSpec(t)
	res, err := Exec(spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(spec.Scenarios) * len(spec.Policies); len(res.Cells) != want {
		t.Fatalf("%d cells, want %d", len(res.Cells), want)
	}
	for _, c := range res.Cells {
		if c.Runs != 2 {
			t.Errorf("cell %s/%s: %d runs, want 2", c.Scenario, c.Policy, c.Runs)
		}
		if len(c.Apps) == 0 {
			t.Errorf("cell %s/%s: no apps", c.Scenario, c.Policy)
		}
		for i := range c.Apps {
			a := &c.Apps[i]
			perf := a.Perf()
			if perf == nil || perf.Stats.N != 2 {
				t.Errorf("%s/%s/%s: primary metric missing or N wrong: %+v", c.Scenario, c.Policy, a.App, perf)
				continue
			}
			if !(perf.Stats.Mean > 0) || math.IsInf(perf.Stats.Mean, 0) {
				t.Errorf("%s/%s/%s: bad metric mean %v", c.Scenario, c.Policy, a.App, perf.Stats.Mean)
			}
			n := a.Norm()
			if n == nil {
				t.Errorf("%s/%s/%s: missing normalized stats", c.Scenario, c.Policy, a.App)
				continue
			}
			if c.Policy == spec.Baseline && (n.Mean != 1 || n.Std != 0) {
				t.Errorf("%s/%s/%s: baseline norm %v±%v, want exactly 1±0",
					c.Scenario, c.Policy, a.App, n.Mean, n.Std)
			}
		}
	}
	// Seed replication 0 must be the base seed (legacy-compatible);
	// replication 1 must differ and be shared across policies.
	r0 := res.RunFor("S2", "aql", 0)
	r1 := res.RunFor("S2", "aql", 1)
	if r0 == nil || r1 == nil {
		t.Fatal("missing runs")
	}
	if r0.Seed != spec.BaseSeed && r0.Seed != DefaultSeed {
		t.Errorf("replication 0 seed %#x, want base seed", r0.Seed)
	}
	if r1.Seed == r0.Seed {
		t.Error("replication 1 reuses replication 0's seed")
	}
	if x := res.RunFor("S2", "xen-credit", 1); x == nil || x.Seed != r1.Seed {
		t.Error("seed replication 1 not shared across policies (breaks paired normalization)")
	}
	// The AQL runs must expose their controllers independently.
	if r0.Controller() == nil || r1.Controller() == nil {
		t.Error("AQL runs lost their controllers")
	}
	if res.RunFor("S2", "xen-credit", 0).Controller() != nil {
		t.Error("xen run unexpectedly has a controller")
	}
}

// TestSweepExpand checks the matrix shape and ordering invariants the
// aggregator indexes by.
func TestSweepExpand(t *testing.T) {
	spec := quickSpec(t)
	runs := spec.Runs()
	if want := 1 * 3 * 2; len(runs) != want {
		t.Fatalf("%d runs, want %d", len(runs), want)
	}
	for i, r := range runs {
		if r.Index != i {
			t.Errorf("run %d has index %d", i, r.Index)
		}
		wantIdx := (r.ScenarioIdx*len(spec.Policies)+r.PolicyIdx)*spec.seeds() + r.SeedIdx
		if wantIdx != i {
			t.Errorf("run %d coordinates (%d,%d,%d) do not match expansion order",
				i, r.ScenarioIdx, r.PolicyIdx, r.SeedIdx)
		}
		if r.Seed != spec.SeedFor(r.SeedIdx) {
			t.Errorf("run %d seed %#x, want %#x", i, r.Seed, spec.SeedFor(r.SeedIdx))
		}
	}
}

func TestSweepValidate(t *testing.T) {
	good := quickSpec(t)
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := *good
	bad.Baseline = "nope"
	if err := bad.Validate(); err == nil {
		t.Error("missing baseline accepted")
	}
	bad = *good
	bad.Policies = append(bad.Policies, bad.Policies[0])
	if err := bad.Validate(); err == nil {
		t.Error("duplicate policy accepted")
	}
	bad = *good
	bad.Scenarios = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty scenario axis accepted")
	}
}

func TestSweepSpecFile(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "t",
		"scenarios": ["S1", "four-socket"],
		"policies": ["xen", "vturbo", "fixed:10ms", "aql-nocustom:1ms"],
		"quanta": ["90ms"],
		"baseline": "xen-credit",
		"seeds": 4,
		"base_seed": 7,
		"warmup_ms": 100,
		"measure_ms": 200
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Scenarios) != 2 || len(spec.Policies) != 5 {
		t.Fatalf("axes %dx%d, want 2x5", len(spec.Scenarios), len(spec.Policies))
	}
	if spec.Policies[4].Name != "fixed-90.000ms" {
		t.Errorf("quanta shorthand produced %q", spec.Policies[4].Name)
	}
	if spec.Warmup != 100*sim.Millisecond || spec.Measure != 200*sim.Millisecond {
		t.Errorf("windows %v/%v", spec.Warmup, spec.Measure)
	}
	if len(spec.Runs()) != 2*5*4 {
		t.Errorf("%d runs, want 40", len(spec.Runs()))
	}

	// The baseline accepts spec-file syntax as well as resolved names.
	alias, err := Parse([]byte(`{"scenarios":["S1"],"policies":["xen","fixed:10ms"],"baseline":"fixed:10ms"}`))
	if err != nil {
		t.Fatalf("spec-file baseline syntax rejected: %v", err)
	}
	if alias.Baseline != "fixed-10.000ms" {
		t.Errorf("baseline alias resolved to %q", alias.Baseline)
	}

	for _, bad := range []string{
		`{"scenarios":["S9"],"policies":["xen"]}`,
		`{"scenarios":["S1"],"policies":["frob"]}`,
		`{"scenarios":["S1"],"policies":["fixed:-3ms"]}`,
		`{"scenarios":["S1"],"policies":[]}`,
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("bad spec accepted: %s", bad)
		}
	}
}

func TestSweepBuiltins(t *testing.T) {
	names := BuiltinNames()
	if len(names) == 0 {
		t.Fatal("no builtins")
	}
	for _, n := range names {
		s, ok := Builtin(n)
		if !ok {
			t.Fatalf("builtin %q vanished", n)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", n, err)
		}
	}
	if _, ok := Builtin("definitely-not-a-sweep"); ok {
		t.Error("unknown builtin resolved")
	}
}

func TestSweepStats(t *testing.T) {
	s := NewStats([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 || s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Errorf("stats %+v", s)
	}
	if math.Abs(s.Std-2.138) > 0.001 {
		t.Errorf("std %v, want ~2.138 (sample stddev)", s.Std)
	}
	if math.Abs(s.CI95-1.96*s.Std/math.Sqrt(8)) > 1e-12 {
		t.Errorf("ci95 %v inconsistent with std", s.CI95)
	}
	if z := NewStats(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty stats %+v", z)
	}
	if one := NewStats([]float64{3}); one.Std != 0 || one.CI95 != 0 || one.Mean != 3 {
		t.Errorf("single-sample stats %+v", one)
	}
}

// panicPolicy blows up during setup, standing in for a misconfigured
// grid cell.
type panicPolicy struct{}

func (panicPolicy) Name() string { return "boom" }
func (panicPolicy) Setup(h *xen.Hypervisor, deps []*workload.Deployment) {
	panic("configured to fail")
}

// TestSweepFailureIsolated proves one panicking run cannot sink the
// sweep: its cell reports zero runs while the others aggregate fine.
func TestSweepFailureIsolated(t *testing.T) {
	spec := quickSpec(t)
	spec.Baseline = ""
	spec.Seeds = 1
	spec.Policies = append(spec.Policies, Policy{
		Name: "boom",
		New:  func() scenario.Policy { return panicPolicy{} },
	})
	res, err := Exec(spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() != 1 {
		t.Fatalf("%d failed runs, want exactly 1", res.Failed())
	}
	boom := res.Cell("S2", "boom")
	if boom == nil || boom.Runs != 0 || len(boom.Apps) != 0 {
		t.Errorf("failed cell not empty: %+v", boom)
	}
	ok := res.Cell("S2", "aql")
	if ok == nil || ok.Runs != 1 || len(ok.Apps) == 0 {
		t.Errorf("healthy cell damaged by the failure: %+v", ok)
	}
	if rr := res.RunFor("S2", "boom", 0); rr == nil || rr.Err == nil ||
		!strings.Contains(rr.Err.Error(), "configured to fail") {
		t.Errorf("panic not captured: %+v", rr)
	}
	// The CSV must carry a marker for the failed cell, not skip it.
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "S2,boom,,,FAILED") {
		t.Errorf("failed cell missing from CSV:\n%s", csv.String())
	}
}

package sweep

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"aqlsched/internal/metrics"
)

// emitSpec is a small real grid covering both metric families: S5 has
// an IO app (latency + percentiles + fairness) and batch apps
// (time_per_job), under a baseline so norms exist.
func emitSpec(t *testing.T) *Spec {
	t.Helper()
	s, err := (&File{
		Name:      "emit",
		Scenarios: refs("S5"),
		Policies:  pols("xen", "microsliced"),
		Baseline:  "xen-credit",
		Seeds:     2,
		WarmupMS:  300,
		MeasureMS: 500,
	}).Spec()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// registryRank maps metric names to registration order for
// subsequence checks.
func registryRank(t *testing.T) map[string]int {
	t.Helper()
	rank := map[string]int{}
	for i, d := range metrics.Descs() {
		rank[d.Name] = i
	}
	if len(rank) == 0 {
		t.Fatal("metric registry empty — scenario registrations missing")
	}
	return rank
}

// TestEmitterColumnOrderDeterministic: the schema-driven emitters must
// produce byte-identical artifacts for any worker count, and every
// row group must list metrics in registry order — the column order is
// a function of the registry, never of run scheduling.
func TestEmitterColumnOrderDeterministic(t *testing.T) {
	spec := emitSpec(t)
	emit := func(workers int) (string, string, string) {
		res, err := Exec(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var js, cs, tb bytes.Buffer
		if err := res.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteCSV(&cs); err != nil {
			t.Fatal(err)
		}
		res.Table().Render(&tb)
		return js.String(), cs.String(), tb.String()
	}
	j1, c1, t1 := emit(1)
	j4, c4, t4 := emit(4)
	if j1 != j4 {
		t.Error("JSON artifact differs between -workers 1 and -workers 4")
	}
	if c1 != c4 {
		t.Error("CSV artifact differs between -workers 1 and -workers 4")
	}
	if t1 != t4 {
		t.Error("table differs between -workers 1 and -workers 4")
	}

	// Within every (scenario, policy, app) group the metric rows must
	// follow registry order.
	rank := registryRank(t)
	lines := strings.Split(strings.TrimSpace(c1), "\n")
	if lines[0] != "scenario,policy,app,type,metric,unit,mean,std,ci95,min,max,norm_mean,norm_std,norm_ci95,runs" {
		t.Fatalf("unexpected CSV header: %s", lines[0])
	}
	lastKey, lastRank := "", -1
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		key, metric := f[0]+"/"+f[1]+"/"+f[2], f[4]
		r, known := rank[metric]
		if !known {
			t.Fatalf("CSV emits unregistered metric %q", metric)
		}
		if key == lastKey && r <= lastRank {
			t.Errorf("metric %q out of registry order in group %s", metric, key)
		}
		lastKey, lastRank = key, r
	}
}

// TestSelectMetricsFiltersAndErrors: selection restricts all emitted
// rows to the chosen metrics, and an unknown name errors cleanly
// instead of emitting an empty artifact.
func TestSelectMetricsFiltersAndErrors(t *testing.T) {
	res, err := Exec(emitSpec(t), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.SelectMetrics("definitely_not_a_metric"); err == nil {
		t.Fatal("unknown metric selection accepted")
	} else if !strings.Contains(err.Error(), "definitely_not_a_metric") {
		t.Errorf("error does not name the offender: %v", err)
	}
	// A registered metric this (static) sweep never recorded must also
	// error instead of emitting a header-only artifact.
	if err := res.SelectMetrics("adapt_match_frac"); err == nil {
		t.Fatal("selection of an unrecorded metric accepted")
	}
	if res.Cell("S5", "microsliced").App("SPECweb2009").Perf() == nil {
		t.Fatal("failed selection mutated the cells")
	}
	if err := res.SelectMetrics("latency_mean", "pool_migrations"); err != nil {
		t.Fatal(err)
	}
	var cs bytes.Buffer
	if err := res.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cs.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("selection emptied the artifact:\n%s", cs.String())
	}
	for _, line := range lines[1:] {
		m := strings.Split(line, ",")[4]
		if m != "latency_mean" && m != "pool_migrations" {
			t.Errorf("unselected metric %q leaked into the CSV", m)
		}
	}
	// The schema shrinks with the selection.
	for _, s := range res.Schema() {
		if s.Name != "latency_mean" && s.Name != "pool_migrations" {
			t.Errorf("unselected metric %q still in the schema", s.Name)
		}
	}
}

// TestDocumentRoundTrip pins the emitted schema: the JSON artifact
// parses back into a Document whose schema matches the result's, with
// exactly the expected metric set for a static sweep in registry
// order.
func TestDocumentRoundTrip(t *testing.T) {
	res, err := Exec(emitSpec(t), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted JSON does not round-trip: %v", err)
	}
	if !reflect.DeepEqual(doc, res.Document()) {
		t.Error("round-tripped Document differs from the emitted one")
	}
	var names []string
	for _, s := range doc.Schema {
		names = append(names, s.Name)
	}
	want := []string{
		"latency_mean", "time_per_job", "latency_p50", "latency_p95",
		"latency_p99", "fairness_jain", "ctx_switches", "preemptions",
		"pool_migrations",
	}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("emitted schema %v, want %v (registry order, static sweep)", names, want)
	}
	// Schema entries are self-describing.
	for _, s := range doc.Schema {
		d, ok := metrics.DescByName(s.Name)
		if !ok {
			t.Fatalf("schema names unregistered metric %q", s.Name)
		}
		if s.Unit != d.Unit || s.Direction != d.Direction.String() ||
			s.Agg != d.Agg.String() || s.Scope != d.Scope.String() {
			t.Errorf("schema entry %+v disagrees with registry desc %+v", s, d)
		}
	}
	// Cells survive the round trip with norms intact.
	web := doc.Cells[1].App("SPECweb2009")
	if web == nil || web.Norm() == nil {
		t.Error("round-tripped cell lost the web app's normalized stats")
	}
}

package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func journalSpec(t *testing.T) *Spec {
	t.Helper()
	spec, err := Parse([]byte(fleetSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func render(t *testing.T, res *Result) (string, string) {
	t.Helper()
	var j, c bytes.Buffer
	if err := res.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	return j.String(), c.String()
}

// TestJournalResumeByteIdentical is the crash-safety contract end to
// end (in-process): execute with a journal, then re-execute resuming
// from it — every run restores instead of re-executing, and the
// artifacts are byte-identical to the uninterrupted ones.
func TestJournalResumeByteIdentical(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "quick.journal")
	spec := journalSpec(t)
	fp := FingerprintSpec([]byte(fleetSpecJSON))
	j1, err := CreateJournal(dir, Manifest{Name: spec.Name, Fingerprint: fp, Runs: len(spec.Runs())})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := Exec(spec, Options{Workers: 2, Journal: j1})
	if err != nil {
		t.Fatal(err)
	}
	json1, csv1 := render(t, res1)

	// Simulate a crash that lost some progress: delete one checkpoint.
	if err := os.Remove(filepath.Join(dir, "run-00001.json")); err != nil {
		t.Fatal(err)
	}

	j2, m, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fingerprint != fp {
		t.Fatalf("manifest fingerprint %q, want %q", m.Fingerprint, fp)
	}
	want := len(spec.Runs()) - 1
	if j2.RestoredCount() != want {
		t.Fatalf("restored %d runs, want %d", j2.RestoredCount(), want)
	}
	var progress bytes.Buffer
	res2, err := Exec(journalSpec(t), Options{Workers: 2, Journal: j2, Progress: &progress})
	if err != nil {
		t.Fatal(err)
	}
	json2, csv2 := render(t, res2)
	if json1 != json2 {
		t.Error("resumed JSON artifact differs from the uninterrupted one")
	}
	if csv1 != csv2 {
		t.Error("resumed CSV artifact differs from the uninterrupted one")
	}
	if n := strings.Count(progress.String(), "skipped (journaled)"); n != want {
		t.Errorf("progress reports %d skipped runs, want %d:\n%s", n, want, progress.String())
	}
}

// TestManifestSpecBytesRoundTrip: the fingerprint covers the exact
// spec-file bytes, so the manifest's own write/read cycle must hand
// them back unchanged — indentation, trailing newline and all.
func TestManifestSpecBytesRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	src := "{\n\t\"oddly\": \"formatted\"\n}\n"
	if _, err := CreateJournal(dir, Manifest{Name: "rt", Fingerprint: FingerprintSpec([]byte(src)), SpecJSON: src, Runs: 1}); err != nil {
		t.Fatal(err)
	}
	_, m, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.SpecJSON != src {
		t.Errorf("spec bytes mangled by the manifest round trip:\nwrote %q\nread  %q", src, m.SpecJSON)
	}
	if FingerprintSpec([]byte(m.SpecJSON)) != m.Fingerprint {
		t.Error("fingerprint no longer matches the restored spec bytes")
	}
}

func TestJournalRejectsForeignSpec(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	if _, err := CreateJournal(dir, Manifest{Name: "a", Fingerprint: FingerprintSpec([]byte("spec-a")), Runs: 4}); err != nil {
		t.Fatal(err)
	}
	_, err := CreateJournal(dir, Manifest{Name: "b", Fingerprint: FingerprintSpec([]byte("spec-b")), Runs: 4})
	if err == nil || !strings.Contains(err.Error(), "belongs to another spec") {
		t.Fatalf("journal reuse across specs not rejected: %v", err)
	}
}

// TestJournalSkipsCorruptCheckpoint: a mangled run file must not wedge
// a resume — the run simply re-executes.
func TestJournalSkipsCorruptCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	spec := journalSpec(t)
	j, err := CreateJournal(dir, Manifest{Name: spec.Name, Fingerprint: "fp", Runs: len(spec.Runs())})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(spec, Options{Journal: j}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "run-00000.json"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An out-of-range index must be ignored too.
	if err := os.WriteFile(filepath.Join(dir, "run-00099.json"), []byte(`{"index": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	j2, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(spec.Runs()) - 1; j2.RestoredCount() != want {
		t.Errorf("restored %d runs, want %d (corrupt and out-of-range files skipped)", j2.RestoredCount(), want)
	}
}

// TestRunTimeoutMarksFailed: the watchdog must convert a hung cell into
// a failed run instead of hanging the whole sweep. A 1 ns budget makes
// every real run overrun.
func TestRunTimeoutMarksFailed(t *testing.T) {
	res, err := Exec(journalSpec(t), Options{Workers: 2, RunTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() != len(res.Runs) {
		t.Fatalf("%d of %d runs failed, want all (1ns watchdog)", res.Failed(), len(res.Runs))
	}
	for _, rr := range res.Runs {
		if rr.Err == nil || !strings.Contains(rr.Err.Error(), "timed out after") {
			t.Fatalf("run %s/%s: err = %v, want watchdog timeout", rr.Scenario, rr.Policy, rr.Err)
		}
	}
}

// TestJournalSkipsFailedRuns: failed runs are retried on resume, so
// Record must not checkpoint them.
func TestJournalSkipsFailedRuns(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	spec := journalSpec(t)
	j, err := CreateJournal(dir, Manifest{Name: spec.Name, Fingerprint: "fp", Runs: len(spec.Runs())})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(spec, Options{Journal: j, RunTimeout: time.Nanosecond}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "run-") {
			t.Errorf("failed run checkpointed as %s", e.Name())
		}
	}
}

package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"aqlsched/internal/baselines"
	"aqlsched/internal/core"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
)

// --- Named axis points -----------------------------------------------------

// ScenarioByName resolves a scenario axis point from the paper's
// catalogue: S1–S5 (Table 4) or "four-socket" (Fig. 3 / Fig. 6 right).
func ScenarioByName(name string) (Scenario, error) {
	if name == "four-socket" {
		return Scenario{Name: name, New: func() scenario.Spec {
			return scenario.FourSocket(0) // seed overridden per run
		}}, nil
	}
	for _, s := range scenario.Table4(0) {
		if s.Name == name {
			return Scenario{Name: name, New: func() scenario.Spec {
				return scenario.ScenarioByName(name, 0)
			}}, nil
		}
	}
	return Scenario{}, fmt.Errorf("sweep: unknown scenario %q (want S1..S5 or four-socket)", name)
}

// XenPolicy is the unmodified credit scheduler (the usual baseline).
func XenPolicy() Policy {
	return Policy{Name: baselines.XenDefault{}.Name(), New: func() scenario.Policy {
		return baselines.XenDefault{}
	}}
}

// AQLPolicy is the paper's system. Every run gets a fresh controller
// output slot, retrievable via RunResult.Controller.
func AQLPolicy() Policy {
	return Policy{Name: baselines.AQL{}.Name(), New: func() scenario.Policy {
		return baselines.AQL{Out: new(*core.Controller)}
	}}
}

// AQLNoCustomPolicy is the Fig. 7 ablation: clustering stays active but
// every pool runs the fixed quantum q.
func AQLNoCustomPolicy(q sim.Time) Policy {
	name := baselines.AQL{DisableCustomization: true, FixedQuantum: q}.Name()
	return Policy{Name: name, New: func() scenario.Policy {
		return baselines.AQL{DisableCustomization: true, FixedQuantum: q, Out: new(*core.Controller)}
	}}
}

// FixedPolicy runs every vCPU at quantum q in one pool.
func FixedPolicy(q sim.Time) Policy {
	name := baselines.FixedQuantum{Q: q}.Name()
	return Policy{Name: name, New: func() scenario.Policy {
		return baselines.FixedQuantum{Q: q}
	}}
}

// VTurboPolicy, VSlicerPolicy and MicroslicedPolicy are the related
// systems of Fig. 8, manually configured as in the paper.
func VTurboPolicy() Policy {
	return Policy{Name: baselines.VTurbo{}.Name(), New: func() scenario.Policy {
		return baselines.VTurbo{}
	}}
}

// VSlicerPolicy differentiates IO-intensive slices on shared pools.
func VSlicerPolicy() Policy {
	return Policy{Name: baselines.VSlicer{}.Name(), New: func() scenario.Policy {
		return baselines.VSlicer{}
	}}
}

// MicroslicedPolicy shortens the quantum for every vCPU.
func MicroslicedPolicy() Policy {
	m := baselines.Microsliced()
	return Policy{Name: m.Name(), New: func() scenario.Policy {
		return baselines.Microsliced()
	}}
}

// PolicyByName resolves a policy axis point. Recognized names: xen (or
// xen-credit), aql, vturbo, vslicer, microsliced, fixed:<duration>
// (e.g. fixed:10ms) and aql-nocustom:<duration>.
func PolicyByName(name string) (Policy, error) {
	if q, ok := strings.CutPrefix(name, "fixed:"); ok {
		d, err := parseQuantum(q)
		if err != nil {
			return Policy{}, err
		}
		return FixedPolicy(d), nil
	}
	if q, ok := strings.CutPrefix(name, "aql-nocustom:"); ok {
		d, err := parseQuantum(q)
		if err != nil {
			return Policy{}, err
		}
		return AQLNoCustomPolicy(d), nil
	}
	switch name {
	case "xen", "xen-credit":
		return XenPolicy(), nil
	case "aql":
		return AQLPolicy(), nil
	case "vturbo":
		return VTurboPolicy(), nil
	case "vslicer":
		return VSlicerPolicy(), nil
	case "microsliced":
		return MicroslicedPolicy(), nil
	}
	return Policy{}, fmt.Errorf("sweep: unknown policy %q (want xen, aql, vturbo, vslicer, microsliced, fixed:<dur>, aql-nocustom:<dur>)", name)
}

func parseQuantum(s string) (sim.Time, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("sweep: bad quantum %q: %v", s, err)
	}
	q := sim.Time(d / time.Microsecond)
	if q <= 0 {
		return 0, fmt.Errorf("sweep: quantum %q must be positive", s)
	}
	return q, nil
}

// --- Declarative spec files ------------------------------------------------

// File is the JSON on-disk sweep specification consumed by aqlsweep.
// Scenario and policy entries use the names understood by
// ScenarioByName and PolicyByName.
type File struct {
	Name      string   `json:"name"`
	Scenarios []string `json:"scenarios"`
	Policies  []string `json:"policies"`
	// Quanta, when set, appends one fixed:<q> policy per entry (a
	// shorthand for quantum-length axes, e.g. ["1ms","10ms","90ms"]).
	Quanta   []string `json:"quanta,omitempty"`
	Baseline string   `json:"baseline,omitempty"`
	Seeds    int      `json:"seeds,omitempty"`
	BaseSeed uint64   `json:"base_seed,omitempty"`
	// WarmupMS and MeasureMS override every scenario's windows.
	WarmupMS  int64 `json:"warmup_ms,omitempty"`
	MeasureMS int64 `json:"measure_ms,omitempty"`
}

// Parse turns raw spec-file JSON into a runnable Spec.
func Parse(data []byte) (*Spec, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("sweep: bad spec file: %v", err)
	}
	return f.Spec()
}

// Load reads and parses a spec file from disk.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Spec resolves the file's names into a runnable Spec.
func (f *File) Spec() (*Spec, error) {
	s := &Spec{
		Name:     f.Name,
		Baseline: f.Baseline,
		Seeds:    f.Seeds,
		BaseSeed: f.BaseSeed,
		Warmup:   sim.Time(f.WarmupMS) * sim.Millisecond,
		Measure:  sim.Time(f.MeasureMS) * sim.Millisecond,
	}
	if s.Name == "" {
		s.Name = "sweep"
	}
	for _, name := range f.Scenarios {
		sc, err := ScenarioByName(name)
		if err != nil {
			return nil, err
		}
		s.Scenarios = append(s.Scenarios, sc)
	}
	for _, name := range f.Policies {
		p, err := PolicyByName(name)
		if err != nil {
			return nil, err
		}
		s.Policies = append(s.Policies, p)
	}
	for _, q := range f.Quanta {
		p, err := PolicyByName("fixed:" + q)
		if err != nil {
			return nil, err
		}
		s.Policies = append(s.Policies, p)
	}
	// Accept both spellings for the baseline: the spec-file policy
	// syntax ("xen", "fixed:30ms") and the resolved policy name
	// ("xen-credit", "fixed-30.000ms").
	if s.Baseline != "" {
		if p, err := PolicyByName(s.Baseline); err == nil {
			s.Baseline = p.Name
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// --- Built-in sweeps -------------------------------------------------------

// builtins maps names to ready-made sweep specifications mirroring the
// paper's evaluation structure.
var builtins = map[string]func() *Spec{
	"policy-grid": func() *Spec {
		return mustFile(File{
			Name:      "policy-grid",
			Scenarios: []string{"S1", "S2", "S3", "S4", "S5"},
			Policies:  []string{"xen", "aql"},
			Baseline:  "xen-credit",
			Seeds:     3,
		})
	},
	"fig8": func() *Spec {
		return mustFile(File{
			Name:      "fig8",
			Scenarios: []string{"S5"},
			Policies:  []string{"xen", "vturbo", "microsliced", "vslicer", "aql"},
			Baseline:  "xen-credit",
		})
	},
	"quantum-grid": func() *Spec {
		return mustFile(File{
			Name:      "quantum-grid",
			Scenarios: []string{"S1", "S2", "S3", "S4", "S5"},
			Policies:  []string{"fixed:30ms"},
			Quanta:    []string{"1ms", "10ms", "60ms", "90ms"},
			Baseline:  "fixed:30ms",
			Seeds:     3,
		})
	},
	"four-socket": func() *Spec {
		return mustFile(File{
			Name:      "four-socket",
			Scenarios: []string{"four-socket"},
			Policies:  []string{"xen", "aql"},
			Baseline:  "xen-credit",
		})
	},
	"baseline-grid": func() *Spec {
		return mustFile(File{
			Name:      "baseline-grid",
			Scenarios: []string{"S1", "S2", "S3", "S4", "S5"},
			Policies:  []string{"xen", "vturbo", "microsliced", "vslicer", "aql"},
			Baseline:  "xen-credit",
			Seeds:     3,
		})
	},
	// bench is a small real grid with short windows: 12 runs covering a
	// lock-heavy and an IO-heavy scenario under three policies. It is
	// the workload of BenchmarkSweepParallel and of the committed
	// golden-determinism artifacts (testdata/), so its definition must
	// stay stable.
	"bench": func() *Spec {
		return mustFile(File{
			Name:      "bench",
			Scenarios: []string{"S1", "S5"},
			Policies:  []string{"xen", "microsliced", "aql"},
			Baseline:  "xen-credit",
			Seeds:     2,
			WarmupMS:  400,
			MeasureMS: 900,
		})
	},
}

func mustFile(f File) *Spec {
	s, err := f.Spec()
	if err != nil {
		panic("sweep: bad builtin: " + err.Error())
	}
	return s
}

// Builtin returns a named built-in sweep specification.
func Builtin(name string) (*Spec, bool) {
	f, ok := builtins[name]
	if !ok {
		return nil, false
	}
	return f(), true
}

// BuiltinNames lists the built-in sweeps, sorted.
func BuiltinNames() []string {
	out := make([]string, 0, len(builtins))
	for n := range builtins {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

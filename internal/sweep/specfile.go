package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"aqlsched/internal/catalog"
	"aqlsched/internal/fleet"
	"aqlsched/internal/hw"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
)

// --- Named axis points (thin catalog lookups) ------------------------------

// ScenarioByName resolves a scenario axis point from the catalog:
// S1–S5 (Table 4), "four-socket" (Fig. 3 / Fig. 6 right), and anything
// registered since.
func ScenarioByName(name string) (Scenario, error) {
	sc, err := catalog.ScenarioByName(name)
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{Name: sc.Name, New: sc.New}, nil
}

// PolicyByName resolves a policy axis point from the catalog grammar:
// xen (or xen-credit), aql, vturbo, vslicer, microsliced,
// fixed:<duration> (e.g. fixed:10ms) and aql-nocustom:<duration>.
func PolicyByName(name string) (Policy, error) {
	p, err := catalog.PolicyByName(name)
	if err != nil {
		return Policy{}, err
	}
	return Policy(p), nil
}

// The policy constructors remain exported for Go callers building
// sweep.Spec values directly (the experiments package); each is the
// catalog entry of the same name.

// XenPolicy is the unmodified credit scheduler (the usual baseline).
func XenPolicy() Policy { return Policy(catalog.XenPolicy()) }

// AQLPolicy is the paper's system. Every run gets a fresh controller
// output slot, retrievable via RunResult.Controller.
func AQLPolicy() Policy { return Policy(catalog.AQLPolicy()) }

// AQLNoCustomPolicy is the Fig. 7 ablation: clustering stays active but
// every pool runs the fixed quantum q.
func AQLNoCustomPolicy(q sim.Time) Policy { return Policy(catalog.AQLNoCustomPolicy(q)) }

// FixedPolicy runs every vCPU at quantum q in one pool.
func FixedPolicy(q sim.Time) Policy { return Policy(catalog.FixedPolicy(q)) }

// VTurboPolicy, VSlicerPolicy and MicroslicedPolicy are the related
// systems of Fig. 8, manually configured as in the paper.
func VTurboPolicy() Policy { return Policy(catalog.VTurboPolicy()) }

// VSlicerPolicy differentiates IO-intensive slices on shared pools.
func VSlicerPolicy() Policy { return Policy(catalog.VSlicerPolicy()) }

// MicroslicedPolicy shortens the quantum for every vCPU.
func MicroslicedPolicy() Policy { return Policy(catalog.MicroslicedPolicy()) }

// --- Declarative spec files ------------------------------------------------

// File is the JSON on-disk sweep specification consumed by aqlsweep.
// Scenario entries are either catalog names ("S1", "four-socket"),
// catalog names with a topology override ({"name": "S1", "topology":
// "xeon-e5-4603"}), or inline generator blocks ({"gen": {...}}); see
// ScenarioRef. Policy entries use the catalog grammar understood by
// PolicyByName. Topology references resolve against the file's own
// "topologies" section first, then the shared registry.
type File struct {
	Name string `json:"name"`
	// Topologies defines machines inline, by builder parameters; their
	// names are visible to this file's scenario entries only.
	Topologies map[string]hw.TopologyBuilder `json:"topologies,omitempty"`
	Scenarios  []ScenarioRef                 `json:"scenarios"`
	Policies   []PolicyRef                   `json:"policies"`
	// Quanta, when set, appends one fixed:<q> policy per entry (a
	// shorthand for quantum-length axes, e.g. ["1ms","10ms","90ms"]).
	Quanta   []string `json:"quanta,omitempty"`
	Baseline string   `json:"baseline,omitempty"`
	Seeds    int      `json:"seeds,omitempty"`
	BaseSeed uint64   `json:"base_seed,omitempty"`
	// WarmupMS and MeasureMS override every scenario's windows.
	WarmupMS  int64 `json:"warmup_ms,omitempty"`
	MeasureMS int64 `json:"measure_ms,omitempty"`
}

// ScenarioRef is one scenario-axis entry of a spec file. In JSON it is
// either a bare catalog name ("S1") or an object:
//
//	{"name": "S1", "topology": "big-box"}   // catalog scenario, other machine
//	{"gen": {"vcpus": 32, "mix": {...}}}    // generated colocation mix
type ScenarioRef struct {
	// Name references a catalog scenario.
	Name string `json:"name,omitempty"`
	// Topology moves the named scenario onto another machine (a
	// file-local or registered topology). The scenario keeps its VM
	// population but runs on all pCPUs of the new machine; the axis
	// point is renamed "<name>@<topology>".
	Topology string `json:"topology,omitempty"`
	// Gen generates the scenario instead of naming one.
	Gen *GenBlock `json:"gen,omitempty"`
	// Fleet declares a multi-host fleet scenario. A fleet entry with
	// several placement policies expands into one axis point per
	// placement ("<name>+<placement>"), so placements sweep like any
	// other axis.
	Fleet *FleetBlock `json:"fleet,omitempty"`
}

// Ref wraps a catalog scenario name for Go-constructed Files.
func Ref(name string) ScenarioRef { return ScenarioRef{Name: name} }

func refs(names ...string) []ScenarioRef {
	out := make([]ScenarioRef, len(names))
	for i, n := range names {
		out[i] = Ref(n)
	}
	return out
}

// UnmarshalJSON accepts both the bare-name and the object form. The
// object form rejects unknown keys (custom unmarshalers do not inherit
// the outer decoder's DisallowUnknownFields).
func (r *ScenarioRef) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		return json.Unmarshal(data, &r.Name)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	type plain ScenarioRef // drop methods to avoid recursion
	return dec.Decode((*plain)(r))
}

// PolicyRef is one policy-axis entry of a spec file. In JSON it is
// either a grammar string ("aql", "fixed:5ms", "edf:deadline=10ms") or
// a structured block resolved through the plugin registry's typed
// parameter validation:
//
//	{"policy": {"name": "edf", "params": {"deadline": "10ms"}}}
type PolicyRef struct {
	// Name is the grammar spelling (string form).
	Name string
	// Block is the structured form, when given instead of Name.
	Block *PolicyBlock
}

// PolicyBlock is the structured policy spelling: a plugin name plus
// its typed parameters (numbers for int/float knobs, duration strings
// like "10ms" for duration knobs).
type PolicyBlock struct {
	Name   string         `json:"name"`
	Params map[string]any `json:"params,omitempty"`
}

// Pol wraps a grammar spelling for Go-constructed Files.
func Pol(name string) PolicyRef { return PolicyRef{Name: name} }

func pols(names ...string) []PolicyRef {
	out := make([]PolicyRef, len(names))
	for i, n := range names {
		out[i] = Pol(n)
	}
	return out
}

// UnmarshalJSON accepts both the grammar-string and the {"policy": ...}
// object form. The object form rejects unknown keys (custom
// unmarshalers do not inherit the outer decoder's
// DisallowUnknownFields).
func (r *PolicyRef) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		return json.Unmarshal(data, &r.Name)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var obj struct {
		Policy *PolicyBlock `json:"policy"`
	}
	if err := dec.Decode(&obj); err != nil {
		return err
	}
	if obj.Policy == nil || obj.Policy.Name == "" {
		return fmt.Errorf(`sweep: policy entry object needs a {"policy": {"name": ...}} block`)
	}
	r.Block = obj.Policy
	return nil
}

// resolve turns the reference into a policy axis point.
func (r PolicyRef) resolve() (Policy, error) {
	if r.Block != nil {
		p, err := catalog.PolicyFromConfig(r.Block.Name, r.Block.Params)
		return Policy(p), err
	}
	return PolicyByName(r.Name)
}

// GenBlock parameterizes a generated colocation scenario (see
// scenario.GenSpec): a machine reference, a vCPU budget, an
// over-subscription ratio and a type mix, optionally pinning named
// catalog workloads into the population.
type GenBlock struct {
	// Name labels the axis point (default "gen<i>-<topology>-<vcpus>v").
	Name string `json:"name,omitempty"`
	// Topology names the machine (file-local or registered; default
	// "i7-3770").
	Topology string `json:"topology,omitempty"`
	// VCPUs is the total guest vCPU budget (required, ≥ 1).
	VCPUs int `json:"vcpus"`
	// OverSub is the vCPU : guest-pCPU ratio (default 4).
	OverSub float64 `json:"oversub,omitempty"`
	// Mix weights the vCPU types by name ({"IOInt": 0.25, ...}).
	// Required unless Apps alone fill the budget.
	Mix map[string]float64 `json:"mix,omitempty"`
	// Apps pins named catalog workloads into the population (one VM
	// each, deployed first, counted against the budget).
	Apps []string `json:"apps,omitempty"`
	// Seed drives the generator draws (default: the file's base seed),
	// independent of the per-run simulation seeds.
	Seed uint64 `json:"seed,omitempty"`
	// Phases defines a behaviour cycle: generated VMs become phased
	// applications (their ground-truth type flips mid-run) with
	// probability PhaseProb. See scenario.GenSpec.
	Phases []PhaseBlock `json:"phases,omitempty"`
	// PhaseProb is the probability a generated VM is phased (default 1
	// when Phases is set).
	PhaseProb *float64 `json:"phase_prob,omitempty"`
	// Churn adds VM arrival/departure events to the scenario.
	Churn *ChurnBlock `json:"churn,omitempty"`
}

// PhaseBlock is one leg of a generated phase cycle: the ground-truth
// type and the phase length; per-phase behaviour knobs are drawn per
// VM from the generator config.
type PhaseBlock struct {
	Type string `json:"type"`
	MS   int64  `json:"ms"`
}

// ChurnBlock parameterizes generated VM churn (see scenario.ChurnSpec):
// Poisson arrivals at RatePerSec from StartMS until HorizonMS, each VM
// living an exponential MeanLifeMS (floored at MinLifeMS).
type ChurnBlock struct {
	RatePerSec float64 `json:"rate_per_sec"`
	MeanLifeMS int64   `json:"mean_life_ms"`
	MinLifeMS  int64   `json:"min_life_ms,omitempty"`
	StartMS    int64   `json:"start_ms,omitempty"`
	HorizonMS  int64   `json:"horizon_ms"`
	MaxVMs     int     `json:"max_vms,omitempty"`
}

// FleetBlock parameterizes a multi-host fleet scenario (see
// fleet.Spec): the host count and machine, the admission ratio, one or
// more placement policies, tenant weights, the generated VM population
// with optional churn, and the rebalancer.
type FleetBlock struct {
	// Name labels the axis point(s) (default "fleet<i>-<hosts>h").
	Name string `json:"name,omitempty"`
	// Hosts is the number of hosts (required, ≥ 1).
	Hosts int `json:"hosts"`
	// Topology names the per-host machine (file-local or registered;
	// default "i7-3770").
	Topology string `json:"topology,omitempty"`
	// OverSub is the per-host admission ratio (default 3).
	OverSub float64 `json:"oversub,omitempty"`
	// Placement lists the placement policies to sweep; a bare string is
	// accepted for a single policy (default "least-loaded").
	Placement PlacementList `json:"placement,omitempty"`
	// Tenants maps tenant names to proportional-share weights (default
	// one tenant "t0" with weight 1). Names are sorted for a
	// deterministic tenant order.
	Tenants map[string]float64 `json:"tenants,omitempty"`
	// VCPUs is the initial population's vCPU budget across the fleet
	// (required).
	VCPUs int `json:"vcpus"`
	// Mix weights the generated VM types by name (required).
	Mix map[string]float64 `json:"mix,omitempty"`
	// Churn adds Poisson VM arrivals with exponential lifetimes.
	Churn *ChurnBlock `json:"churn,omitempty"`
	// Rebalance parameterizes the live-migration trigger.
	Rebalance *RebalanceBlock `json:"rebalance,omitempty"`
	// Faults injects host crashes, transient degradation and migration
	// failures on a seeded schedule.
	Faults *FaultsBlock `json:"faults,omitempty"`
	// Seed drives the population draws (default: the file's base seed),
	// independent of the per-run simulation seeds.
	Seed uint64 `json:"seed,omitempty"`
	// Workers hints the shard-worker count for each run of this fleet
	// (0 = GOMAXPROCS, 1 = serial). An execution knob only — results
	// are byte-identical at any value — and overridden by the
	// -fleet-workers flag / sweep.Options.FleetWorkers when set.
	Workers int `json:"workers,omitempty"`
}

// RebalanceBlock is the spec-file form of fleet.Rebalance.
type RebalanceBlock struct {
	EveryMS     int64   `json:"every_ms,omitempty"`
	Threshold   float64 `json:"threshold,omitempty"`
	MigrationMS int64   `json:"migration_ms,omitempty"`
	MaxPerTick  int     `json:"max_per_tick,omitempty"`
}

// FaultsBlock is the spec-file form of fleet.FaultPlan: explicit and
// storm-drawn host crashes and degradations, a migration failure
// probability, and the recovery policy.
type FaultsBlock struct {
	// Seed drives the storm draws (default: the population seed, so
	// replications share the fault schedule like they share the
	// population).
	Seed uint64 `json:"seed,omitempty"`
	// Crashes and Degrades are explicit, hand-placed fault events.
	Crashes  []CrashBlock   `json:"crashes,omitempty"`
	Degrades []DegradeBlock `json:"degrades,omitempty"`
	// CrashStorm and DegradeStorm draw seeded Poisson fault schedules.
	CrashStorm   *StormBlock `json:"crash_storm,omitempty"`
	DegradeStorm *StormBlock `json:"degrade_storm,omitempty"`
	// MigFailProb fails each completing live migration with this
	// probability.
	MigFailProb float64 `json:"migration_fail_prob,omitempty"`
	// Recovery tunes the re-placement of crash victims.
	Recovery *RecoveryBlock `json:"recovery,omitempty"`
}

// CrashBlock is one explicit host crash: host dies at at_ms and
// recovers down_ms later (0 = never).
type CrashBlock struct {
	Host   int   `json:"host"`
	AtMS   int64 `json:"at_ms"`
	DownMS int64 `json:"down_ms,omitempty"`
}

// DegradeBlock is one explicit transient degradation: from at_ms for
// for_ms the host admits only factor × its nominal capacity.
type DegradeBlock struct {
	Host   int     `json:"host"`
	AtMS   int64   `json:"at_ms"`
	ForMS  int64   `json:"for_ms"`
	Factor float64 `json:"factor"`
}

// StormBlock draws a Poisson fault schedule: events at rate_per_sec
// from start_ms to horizon_ms, each lasting an exponential
// mean_down_ms; factor applies to degrade storms only; max, when
// positive, caps the event count.
type StormBlock struct {
	RatePerSec float64 `json:"rate_per_sec"`
	StartMS    int64   `json:"start_ms,omitempty"`
	HorizonMS  int64   `json:"horizon_ms"`
	MeanDownMS int64   `json:"mean_down_ms"`
	Factor     float64 `json:"factor,omitempty"`
	Max        int     `json:"max,omitempty"`
}

// RecoveryBlock is the spec-file form of fleet.Recovery: bounded
// retries with exponential backoff, then requeue or drop.
type RecoveryBlock struct {
	MaxRetries   int     `json:"max_retries,omitempty"`
	RetryDelayMS int64   `json:"retry_delay_ms,omitempty"`
	Backoff      float64 `json:"backoff,omitempty"`
	OnExhaust    string  `json:"on_exhaust,omitempty"`
}

// plan converts the block into the fleet's FaultPlan.
func (fb *FaultsBlock) plan() *fleet.FaultPlan {
	p := &fleet.FaultPlan{
		Seed:        fb.Seed,
		MigFailProb: fb.MigFailProb,
	}
	for _, c := range fb.Crashes {
		p.Crashes = append(p.Crashes, fleet.Crash{
			Host: c.Host,
			At:   sim.Time(c.AtMS) * sim.Millisecond,
			Down: sim.Time(c.DownMS) * sim.Millisecond,
		})
	}
	for _, d := range fb.Degrades {
		p.Degrades = append(p.Degrades, fleet.Degrade{
			Host:   d.Host,
			At:     sim.Time(d.AtMS) * sim.Millisecond,
			For:    sim.Time(d.ForMS) * sim.Millisecond,
			Factor: d.Factor,
		})
	}
	storm := func(s *StormBlock) *fleet.Storm {
		return &fleet.Storm{
			Rate:     s.RatePerSec,
			Start:    sim.Time(s.StartMS) * sim.Millisecond,
			Horizon:  sim.Time(s.HorizonMS) * sim.Millisecond,
			MeanDown: sim.Time(s.MeanDownMS) * sim.Millisecond,
			Factor:   s.Factor,
			Max:      s.Max,
		}
	}
	if fb.CrashStorm != nil {
		p.CrashStorm = storm(fb.CrashStorm)
	}
	if fb.DegradeStorm != nil {
		p.DegradeStorm = storm(fb.DegradeStorm)
	}
	if r := fb.Recovery; r != nil {
		p.Recovery = fleet.Recovery{
			MaxRetries: r.MaxRetries,
			RetryDelay: sim.Time(r.RetryDelayMS) * sim.Millisecond,
			Backoff:    r.Backoff,
			OnExhaust:  r.OnExhaust,
		}
	}
	return p
}

// PlacementList accepts either a JSON string or a list of strings.
type PlacementList []string

// UnmarshalJSON implements the string-or-list form.
func (p *PlacementList) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		*p = PlacementList{s}
		return nil
	}
	return json.Unmarshal(data, (*[]string)(p))
}

// Parse turns raw spec-file JSON into a runnable Spec. Unknown keys are
// rejected: a typo ("llcmb" for "llc_mb") must fail the load, not fall
// back to a default and silently run a different experiment.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("sweep: bad spec file: %v", err)
	}
	return f.Spec()
}

// Load reads and parses a spec file from disk.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// topology resolves a machine reference: the file's inline topologies
// shadow the shared registry.
func (f *File) topology(name string) (*hw.Topology, error) {
	if b, ok := f.Topologies[name]; ok {
		t, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("sweep: inline topology %q: %v", name, err)
		}
		return t, nil
	}
	return catalog.TopologyByName(name)
}

// scenarioAxis resolves one scenario entry into an axis point.
func (f *File) scenarioAxis(i int, r ScenarioRef) (Scenario, error) {
	switch {
	case r.Fleet != nil:
		return Scenario{}, fmt.Errorf("sweep: scenario entry %d: fleet blocks expand in Spec, not scenarioAxis", i)

	case r.Gen != nil:
		if r.Name != "" {
			return Scenario{}, fmt.Errorf("sweep: scenario entry %d sets both a name (%q) and a generator block", i, r.Name)
		}
		if r.Topology != "" {
			return Scenario{}, fmt.Errorf("sweep: scenario entry %d: put the topology inside the generator block ({\"gen\": {\"topology\": %q, ...}})", i, r.Topology)
		}
		return f.genAxis(i, r.Gen)

	case r.Name != "":
		sc, err := ScenarioByName(r.Name)
		if err != nil {
			return Scenario{}, err
		}
		if r.Topology == "" {
			return sc, nil
		}
		topo, err := f.topology(r.Topology)
		if err != nil {
			return Scenario{}, err
		}
		name := r.Name + "@" + r.Topology
		inner := sc.New
		return Scenario{Name: name, New: func() scenario.Spec {
			s := inner()
			t := *topo // fresh copy per run
			s.Topo = &t
			s.GuestPCPUs = nil // all pCPUs of the override machine
			s.Name = name
			return s
		}}, nil

	default:
		return Scenario{}, fmt.Errorf("sweep: scenario entry %d names no scenario and has no generator block", i)
	}
}

// genAxis expands a generator block into a scenario axis point. The
// GenSpec is validated (and trially expanded) at parse time so a bad
// block fails the load, not the run.
func (f *File) genAxis(i int, g *GenBlock) (Scenario, error) {
	topoName := g.Topology
	if topoName == "" {
		topoName = "i7-3770"
	}
	topo, err := f.topology(topoName)
	if err != nil {
		return Scenario{}, err
	}

	var fixed []workload.AppSpec
	for _, name := range g.Apps {
		app, err := catalog.WorkloadByName(name)
		if err != nil {
			return Scenario{}, fmt.Errorf("sweep: generator scenario %d: %v", i, err)
		}
		fixed = append(fixed, app)
	}

	seed := g.Seed
	if seed == 0 {
		seed = f.BaseSeed
	}
	if seed == 0 {
		seed = DefaultSeed
	}

	name := g.Name
	if name == "" {
		name = fmt.Sprintf("gen%d-%s-%dv", i, topoName, g.VCPUs)
	}

	gs := scenario.GenSpec{
		Name:    name,
		Topo:    topo,
		VCPUs:   g.VCPUs,
		OverSub: g.OverSub,
		Fixed:   fixed,
		Seed:    seed,
	}
	if len(g.Mix) > 0 {
		m, err := scenario.ParseMix(g.Mix)
		if err != nil {
			return Scenario{}, fmt.Errorf("sweep: generator scenario %d: %v", i, err)
		}
		gs.Mix = m
	}
	// An explicit "phase_prob": 0 means "no VM is phased" — honor it by
	// dropping the phases block entirely (GenSpec treats PhaseProb 0 as
	// "unset, default 1", so passing it through would invert the
	// intent).
	if g.PhaseProb == nil || *g.PhaseProb > 0 {
		for j, ph := range g.Phases {
			t, err := vcputype.Parse(ph.Type)
			if err != nil {
				return Scenario{}, fmt.Errorf("sweep: generator scenario %d: phase %d: %v", i, j, err)
			}
			gs.Phases = append(gs.Phases, workload.AppPhase{
				Type: t,
				Dur:  sim.Time(ph.MS) * sim.Millisecond,
			})
		}
	}
	if g.PhaseProb != nil {
		p := *g.PhaseProb
		if p < 0 || p > 1 {
			return Scenario{}, fmt.Errorf("sweep: generator scenario %d: phase_prob %v must be in [0, 1]", i, p)
		}
		gs.PhaseProb = p
	}
	if c := g.Churn; c != nil {
		gs.Churn = &scenario.ChurnSpec{
			Rate:         c.RatePerSec,
			MeanLifetime: sim.Time(c.MeanLifeMS) * sim.Millisecond,
			MinLifetime:  sim.Time(c.MinLifeMS) * sim.Millisecond,
			Start:        sim.Time(c.StartMS) * sim.Millisecond,
			Horizon:      sim.Time(c.HorizonMS) * sim.Millisecond,
			MaxVMs:       c.MaxVMs,
		}
	}
	if _, err := gs.Generate(); err != nil {
		return Scenario{}, fmt.Errorf("sweep: generator scenario %d: %v", i, err)
	}
	return Scenario{Name: name, New: gs.MustGenerate}, nil
}

// fleetAxis expands a fleet block into one scenario axis point per
// placement policy. The fleet spec is validated (and its VM timeline
// trially expanded) at parse time so a bad block — zero hosts, an
// unknown placement, a non-positive tenant weight — fails the load, not
// the run.
func (f *File) fleetAxis(i int, fb *FleetBlock) ([]Scenario, error) {
	var topo *hw.Topology
	if fb.Topology != "" {
		t, err := f.topology(fb.Topology)
		if err != nil {
			return nil, fmt.Errorf("sweep: fleet scenario %d: %v", i, err)
		}
		topo = t
	}

	var tenants []fleet.Tenant
	if len(fb.Tenants) > 0 {
		names := make([]string, 0, len(fb.Tenants))
		for n := range fb.Tenants {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			tenants = append(tenants, fleet.Tenant{Name: n, Weight: fb.Tenants[n]})
		}
	}

	seed := fb.Seed
	if seed == 0 {
		seed = f.BaseSeed
	}
	if seed == 0 {
		seed = DefaultSeed
	}

	name := fb.Name
	if name == "" {
		name = fmt.Sprintf("fleet%d-%dh", i, fb.Hosts)
	}

	placements := []string(fb.Placement)
	if len(placements) == 0 {
		placements = []string{"least-loaded"}
	}

	base := fleet.Spec{
		Name:    name,
		Hosts:   fb.Hosts,
		Topo:    topo,
		OverSub: fb.OverSub,
		Tenants: tenants,
		VCPUs:   fb.VCPUs,
		Mix:     fb.Mix,
		GenSeed: seed,
		Workers: fb.Workers,
	}
	if c := fb.Churn; c != nil {
		base.Churn = &scenario.ChurnSpec{
			Rate:         c.RatePerSec,
			MeanLifetime: sim.Time(c.MeanLifeMS) * sim.Millisecond,
			MinLifetime:  sim.Time(c.MinLifeMS) * sim.Millisecond,
			Start:        sim.Time(c.StartMS) * sim.Millisecond,
			Horizon:      sim.Time(c.HorizonMS) * sim.Millisecond,
			MaxVMs:       c.MaxVMs,
		}
	}
	if r := fb.Rebalance; r != nil {
		base.Rebalance = fleet.Rebalance{
			Every:         sim.Time(r.EveryMS) * sim.Millisecond,
			Threshold:     r.Threshold,
			MigrationTime: sim.Time(r.MigrationMS) * sim.Millisecond,
			MaxPerTick:    r.MaxPerTick,
		}
	}
	if fb.Faults != nil {
		base.Faults = fb.Faults.plan()
	}

	var out []Scenario
	for _, pl := range placements {
		proto := base
		proto.Placement = pl
		if len(placements) > 1 {
			proto.Name = name + "+" + pl
		}
		if _, err := proto.GenVMs(); err != nil {
			return nil, fmt.Errorf("sweep: fleet scenario %d: %v", i, err)
		}
		p := proto // capture one copy per placement
		out = append(out, Scenario{Name: p.Name, NewFleet: func() *fleet.Spec {
			c := p
			return &c
		}})
	}
	return out, nil
}

// Spec resolves the file's names into a runnable Spec.
func (f *File) Spec() (*Spec, error) {
	s := &Spec{
		Name:     f.Name,
		Baseline: f.Baseline,
		Seeds:    f.Seeds,
		BaseSeed: f.BaseSeed,
		Warmup:   sim.Time(f.WarmupMS) * sim.Millisecond,
		Measure:  sim.Time(f.MeasureMS) * sim.Millisecond,
	}
	if s.Name == "" {
		s.Name = "sweep"
	}
	for i, ref := range f.Scenarios {
		if ref.Fleet != nil {
			if ref.Name != "" || ref.Gen != nil {
				return nil, fmt.Errorf("sweep: scenario entry %d combines a fleet block with a name or generator block", i)
			}
			scs, err := f.fleetAxis(i, ref.Fleet)
			if err != nil {
				return nil, err
			}
			s.Scenarios = append(s.Scenarios, scs...)
			continue
		}
		sc, err := f.scenarioAxis(i, ref)
		if err != nil {
			return nil, err
		}
		s.Scenarios = append(s.Scenarios, sc)
	}
	for _, ref := range f.Policies {
		p, err := ref.resolve()
		if err != nil {
			return nil, err
		}
		s.Policies = append(s.Policies, p)
	}
	for _, q := range f.Quanta {
		p, err := PolicyByName("fixed:" + q)
		if err != nil {
			return nil, err
		}
		s.Policies = append(s.Policies, p)
	}
	// Accept both spellings for the baseline: the spec-file policy
	// syntax ("xen", "fixed:30ms") and the resolved policy name
	// ("xen-credit", "fixed-30.000ms").
	if s.Baseline != "" {
		if p, err := PolicyByName(s.Baseline); err == nil {
			s.Baseline = p.Name
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// --- Built-in sweeps -------------------------------------------------------

// builtins maps names to ready-made sweep specifications mirroring the
// paper's evaluation structure.
var builtins = map[string]func() *Spec{
	"policy-grid": func() *Spec {
		return mustFile(File{
			Name:      "policy-grid",
			Scenarios: refs("S1", "S2", "S3", "S4", "S5"),
			Policies:  pols("xen", "aql"),
			Baseline:  "xen-credit",
			Seeds:     3,
		})
	},
	"fig8": func() *Spec {
		return mustFile(File{
			Name:      "fig8",
			Scenarios: refs("S5"),
			Policies:  pols("xen", "vturbo", "microsliced", "vslicer", "aql"),
			Baseline:  "xen-credit",
		})
	},
	"quantum-grid": func() *Spec {
		return mustFile(File{
			Name:      "quantum-grid",
			Scenarios: refs("S1", "S2", "S3", "S4", "S5"),
			Policies:  pols("fixed:30ms"),
			Quanta:    []string{"1ms", "10ms", "60ms", "90ms"},
			Baseline:  "fixed:30ms",
			Seeds:     3,
		})
	},
	"four-socket": func() *Spec {
		return mustFile(File{
			Name:      "four-socket",
			Scenarios: refs("four-socket"),
			Policies:  pols("xen", "aql"),
			Baseline:  "xen-credit",
		})
	},
	"baseline-grid": func() *Spec {
		return mustFile(File{
			Name:      "baseline-grid",
			Scenarios: refs("S1", "S2", "S3", "S4", "S5"),
			Policies:  pols("xen", "vturbo", "microsliced", "vslicer", "aql"),
			Baseline:  "xen-credit",
			Seeds:     3,
		})
	},
	// bench is a small real grid with short windows: 12 runs covering a
	// lock-heavy and an IO-heavy scenario under three policies. It is
	// the workload of BenchmarkSweepParallel and of the committed
	// golden-determinism artifacts (testdata/), so its definition must
	// stay stable.
	"bench": func() *Spec {
		return mustFile(File{
			Name:      "bench",
			Scenarios: refs("S1", "S5"),
			Policies:  pols("xen", "microsliced", "aql"),
			Baseline:  "xen-credit",
			Seeds:     2,
			WarmupMS:  400,
			MeasureMS: 900,
		})
	},
	// genmix demonstrates the generator end to end: a synthetic
	// colocation mix on a generated two-socket machine. It must stay
	// identical to the committed examples/specs/genmix.json (the CI
	// smoke spec) so both spellings emit comparable artifacts — the
	// sweep tests assert the equivalence.
	"genmix": func() *Spec {
		return mustFile(File{
			Name: "genmix",
			Topologies: map[string]hw.TopologyBuilder{
				"dual-8": {Sockets: 2, CoresPerSocket: 8, LLCMB: 12, LLCWays: 16, MemNS: 90, MemGBps: 14},
			},
			Scenarios: []ScenarioRef{{Gen: &GenBlock{
				Name:     "mix-balanced",
				Topology: "dual-8",
				VCPUs:    32,
				OverSub:  4,
				Mix: map[string]float64{
					"IOInt": 0.25, "ConSpin": 0.25, "LLCF": 0.2, "LLCO": 0.15, "LoLCF": 0.15,
				},
				Apps: []string{"bzip2", "hmmer"},
			}}},
			Policies:  pols("xen", "aql", "fixed:5ms"),
			Baseline:  "xen-credit",
			Seeds:     2,
			WarmupMS:  400,
			MeasureMS: 900,
		})
	},
	// dynmix demonstrates the dynamic-scenario pipeline end to end: a
	// generated population where half the VMs flip type mid-run and VM
	// churn arrives throughout warmup and measurement. It must stay
	// identical to the committed examples/specs/dynmix.json (the CI
	// smoke spec) — the sweep tests assert the equivalence.
	"dynmix": func() *Spec {
		prob := 0.5
		return mustFile(File{
			Name: "dynmix",
			Scenarios: []ScenarioRef{{Gen: &GenBlock{
				Name:    "dyn-churn",
				VCPUs:   12,
				OverSub: 3,
				Mix: map[string]float64{
					"IOInt": 0.25, "LLCF": 0.35, "LoLCF": 0.25, "LLCO": 0.15,
				},
				Phases: []PhaseBlock{
					{Type: "LoLCF", MS: 1000},
					{Type: "LLCO", MS: 1000},
				},
				PhaseProb: &prob,
				Churn: &ChurnBlock{
					RatePerSec: 2,
					MeanLifeMS: 700,
					HorizonMS:  1100,
				},
			}}},
			Policies:  pols("xen", "aql", "fixed:5ms"),
			Baseline:  "xen-credit",
			Seeds:     2,
			WarmupMS:  400,
			MeasureMS: 900,
		})
	},
	// fleet demonstrates the multi-host layer end to end: a 100-host /
	// 2,400-vCPU datacenter with VM churn and live-migration
	// rebalancing, sweeping two placement policies in one spec. It must
	// stay identical to the committed examples/specs/fleet.json (the CI
	// smoke spec) — the sweep tests assert the equivalence.
	"fleet": func() *Spec {
		return mustFile(File{
			Name: "fleet",
			Scenarios: []ScenarioRef{{Fleet: &FleetBlock{
				Name:      "dc100",
				Hosts:     100,
				OverSub:   3,
				Placement: PlacementList{"least-loaded", "bin-pack"},
				Tenants:   map[string]float64{"alpha": 2, "beta": 1, "gamma": 1},
				VCPUs:     2400,
				Mix: map[string]float64{
					"IOInt": 0.25, "ConSpin": 0.25, "LLCF": 0.2, "LLCO": 0.15, "LoLCF": 0.15,
				},
				Churn: &ChurnBlock{
					RatePerSec: 40,
					MeanLifeMS: 400,
					MinLifeMS:  100,
					HorizonMS:  900,
				},
				Rebalance: &RebalanceBlock{
					EveryMS:     100,
					Threshold:   0.05,
					MigrationMS: 40,
					MaxPerTick:  8,
				},
			}}},
			Policies:  pols("xen"),
			WarmupMS:  300,
			MeasureMS: 700,
		})
	},
	// faultfleet demonstrates the failure-injection layer end to end: a
	// 20-host fleet under a crash storm, a degradation storm, flaky live
	// migrations and the default recovery policy. It must stay identical
	// to the committed examples/specs/faultfleet.json (the CI resume
	// smoke spec) — the sweep tests assert the equivalence.
	"faultfleet": func() *Spec {
		return mustFile(File{
			Name: "faultfleet",
			Scenarios: []ScenarioRef{{Fleet: &FleetBlock{
				Name:      "storm20",
				Hosts:     20,
				OverSub:   3,
				Placement: PlacementList{"least-loaded", "bin-pack"},
				Tenants:   map[string]float64{"alpha": 2, "beta": 1},
				VCPUs:     480,
				Mix: map[string]float64{
					"IOInt": 0.25, "ConSpin": 0.25, "LLCF": 0.2, "LLCO": 0.15, "LoLCF": 0.15,
				},
				Churn: &ChurnBlock{
					RatePerSec: 20,
					MeanLifeMS: 400,
					MinLifeMS:  100,
					HorizonMS:  900,
				},
				Rebalance: &RebalanceBlock{
					EveryMS:     100,
					Threshold:   0.05,
					MigrationMS: 40,
					MaxPerTick:  4,
				},
				Faults: &FaultsBlock{
					CrashStorm: &StormBlock{
						RatePerSec: 6,
						StartMS:    300,
						HorizonMS:  900,
						MeanDownMS: 150,
					},
					DegradeStorm: &StormBlock{
						RatePerSec: 4,
						HorizonMS:  1000,
						MeanDownMS: 200,
						Factor:     0.5,
					},
					MigFailProb: 0.2,
					Recovery: &RecoveryBlock{
						MaxRetries:   4,
						RetryDelayMS: 10,
						Backoff:      2,
						OnExhaust:    "requeue",
					},
				},
			}}},
			Policies:  pols("xen"),
			Seeds:     2,
			WarmupMS:  300,
			MeasureMS: 700,
		})
	},
	// hetero demonstrates heterogeneous core classes end to end: a
	// big.LITTLE machine (4 fast + 4 slow cores), the class-aware
	// hetero-aql policy against plain AQL, and the deadline-aware edf
	// policy spelled as a structured {"policy": ...} block. It must stay
	// identical to the committed examples/specs/hetero.json (the CI
	// smoke spec) — the sweep tests assert the equivalence.
	"hetero": func() *Spec {
		return mustFile(File{
			Name: "hetero",
			Topologies: map[string]hw.TopologyBuilder{
				"big-little": {Sockets: 1, CoresPerSocket: 8, Classes: []hw.CoreClassBuilder{
					{Name: "big", Count: 4, Speed: 1},
					{Name: "little", Count: 4, Speed: 0.6, L2KB: 128},
				}},
			},
			Scenarios: []ScenarioRef{{Gen: &GenBlock{
				Name:     "hetero-mix",
				Topology: "big-little",
				VCPUs:    24,
				OverSub:  3,
				Mix: map[string]float64{
					"IOInt": 0.3, "ConSpin": 0.2, "LLCF": 0.25, "LoLCF": 0.25,
				},
			}}},
			Policies: append(pols("xen", "aql", "hetero-aql"),
				PolicyRef{Block: &PolicyBlock{Name: "edf", Params: map[string]any{"deadline": "10ms"}}}),
			Baseline:  "xen-credit",
			Seeds:     2,
			WarmupMS:  400,
			MeasureMS: 900,
		})
	},
}

func mustFile(f File) *Spec {
	s, err := f.Spec()
	if err != nil {
		panic("sweep: bad builtin: " + err.Error())
	}
	return s
}

// Builtin returns a named built-in sweep specification.
func Builtin(name string) (*Spec, bool) {
	f, ok := builtins[name]
	if !ok {
		return nil, false
	}
	return f(), true
}

// BuiltinNames lists the built-in sweeps, sorted.
func BuiltinNames() []string {
	out := make([]string, 0, len(builtins))
	for n := range builtins {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package baselines

import (
	"aqlsched/internal/core"
	"aqlsched/internal/hw"
	"aqlsched/internal/metrics"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

// HeteroAQL is the heterogeneous-topology consumer of the AQL
// machinery: on machines whose core classes differ it pins the
// (manually identified, as for vTurbo) latency-sensitive vCPUs to a
// pool over the fastest core class at a small quantum, and everything
// else to the remaining cores at the default quantum. On homogeneous
// machines — or when the fast class would leave no cores for the rest —
// it degrades to the plain AQL controller, so one spelling works across
// a mixed topology axis.
type HeteroAQL struct {
	// FastQ is the fast-class pool's quantum (default 1 ms).
	FastQ sim.Time
	// Out receives the fallback AQL controller for post-run inspection
	// (nil on heterogeneous machines, where assignment is static).
	Out **core.Controller
}

// Name implements the scenario policy interface.
func (p HeteroAQL) Name() string {
	if q := p.fastQ(); q != sim.Millisecond {
		return "hetero-aql-" + q.String()
	}
	return "hetero-aql"
}

func (p HeteroAQL) fastQ() sim.Time {
	if p.FastQ <= 0 {
		return sim.Millisecond
	}
	return p.FastQ
}

// FastPCPUs lists the guest pCPUs of h's fastest core class, or nil
// when the topology gives hetero placement nothing to work with (no
// classes, or no slower cores left over). Exposed for placement tests.
func (p HeteroAQL) FastPCPUs(h *xen.Hypervisor) []hw.PCPUID {
	topo := h.Topo
	if !topo.Heterogeneous() {
		return nil
	}
	fastest := topo.FastestClass()
	var fast, rest []hw.PCPUID
	for _, pc := range h.GuestPCPUs() {
		if topo.ClassOf(pc) == fastest {
			fast = append(fast, pc)
		} else {
			rest = append(rest, pc)
		}
	}
	if len(fast) == 0 || len(rest) == 0 {
		return nil
	}
	return fast
}

// Setup implements the scenario policy interface.
func (p HeteroAQL) Setup(h *xen.Hypervisor, deps []*workload.Deployment) {
	fast := p.FastPCPUs(h)
	if fast == nil {
		AQL{Out: p.Out}.Setup(h, deps)
		return
	}
	topo, fastest := h.Topo, h.Topo.FastestClass()
	var rest []hw.PCPUID
	for _, pc := range h.GuestPCPUs() {
		if topo.ClassOf(pc) != fastest {
			rest = append(rest, pc)
		}
	}
	fastPool := xen.NewCPUPool("fast", p.fastQ(), fast)
	slowPool := xen.NewCPUPool("slow", xen.DefaultSlice, rest)
	plan := &xen.PoolPlan{Pools: []*xen.CPUPool{fastPool, slowPool}, Assign: map[*xen.VCPU]*xen.CPUPool{}}
	io := ioVCPUs(deps)
	for _, vc := range h.AllVCPUs() {
		if io[vc] {
			plan.Assign[vc] = fastPool
		} else {
			plan.Assign[vc] = slowPool
		}
	}
	if err := h.ApplyPlan(plan, h.Engine.Now()); err != nil {
		panic("baselines: " + err.Error())
	}
}

// AQLController implements scenario.ControllerProvider for the
// homogeneous fallback.
func (p HeteroAQL) AQLController() *core.Controller {
	if p.Out == nil {
		return nil
	}
	return *p.Out
}

// EDFStats counts deadline accounting across one policy instance's run.
type EDFStats struct {
	Misses     uint64
	Dispatches uint64
}

// EDF is the deadline-aware quantum policy from the real-time
// scheduling axis: every vCPU shares one pool whose quantum derives
// from the deadline (half of it, clamped to the Xen default slice), so
// with k runnable vCPUs per core the worst-case scheduling delay stays
// near (k-1)·deadline/2. Every dispatch's delay-since-runnable is
// checked against the deadline and reported as deadline_miss_ratio.
type EDF struct {
	// Deadline is the per-dispatch scheduling-delay bound.
	Deadline sim.Time
	// Stats receives the miss/dispatch counters (fresh per run).
	Stats *EDFStats
}

// Name implements the scenario policy interface.
func (e EDF) Name() string { return "edf-" + e.Deadline.String() }

// Quantum reports the deadline-derived pool quantum.
func (e EDF) Quantum() sim.Time {
	q := e.Deadline / 2
	if q < 1 {
		q = 1
	}
	if q > xen.DefaultSlice {
		q = xen.DefaultSlice
	}
	return q
}

// Setup implements the scenario policy interface.
func (e EDF) Setup(h *xen.Hypervisor, deps []*workload.Deployment) {
	pool := xen.NewCPUPool("edf", e.Quantum(), h.GuestPCPUs())
	plan := &xen.PoolPlan{Pools: []*xen.CPUPool{pool}, Assign: map[*xen.VCPU]*xen.CPUPool{}}
	for _, v := range h.AllVCPUs() {
		plan.Assign[v] = pool
	}
	if err := h.ApplyPlan(plan, h.Engine.Now()); err != nil {
		panic("baselines: " + err.Error())
	}
	stats, deadline := e.Stats, e.Deadline
	h.OnDispatch = func(_ *xen.VCPU, wait, _ sim.Time) {
		stats.Dispatches++
		if wait > deadline {
			stats.Misses++
		}
	}
}

// ReportRunMetrics implements scenario.RunMetricsReporter. It
// accumulates with any counts already in the set: a fleet run invokes
// it once per host against the fleet's shared metric set.
func (e EDF) ReportRunMetrics(set *metrics.Set) {
	misses := float64(e.Stats.Misses)
	disp := float64(e.Stats.Dispatches)
	if prev, ok := set.Get(scenario.MDeadlineMisses.Name); ok {
		misses += prev
	}
	if prev, ok := set.Get(scenario.MDeadlineDispatches.Name); ok {
		disp += prev
	}
	set.Put(scenario.MDeadlineMisses, misses)
	set.Put(scenario.MDeadlineDispatches, disp)
	if disp > 0 {
		set.Put(scenario.MDeadlineMissRatio, misses/disp)
	}
}

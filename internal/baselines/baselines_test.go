package baselines_test

import (
	"math"
	"testing"

	"aqlsched/internal/baselines"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
)

// s5 builds the paper's S5 colocation with short windows — enough for
// every app to complete work, quick enough for a unit test.
func s5(seed uint64) scenario.Spec {
	spec := scenario.ScenarioByName("S5", seed)
	spec.Warmup = 400 * sim.Millisecond
	spec.Measure = 900 * sim.Millisecond
	return spec
}

// policies lists every scheduler the package provides, each fresh per
// test.
func policies() []scenario.Policy {
	return []scenario.Policy{
		baselines.XenDefault{},
		baselines.FixedQuantum{Q: 10 * sim.Millisecond},
		baselines.Microsliced(),
		baselines.VTurbo{},
		baselines.VSlicer{},
		baselines.AQL{},
	}
}

// TestPoliciesRunS5 runs every baseline policy on S5 and checks the
// fundamentals: all five applications are measured, per-app metrics
// are finite and positive, and apps come back in deployment order.
func TestPoliciesRunS5(t *testing.T) {
	wantOrder := []string{"SPECweb2009", "facesim", "bzip2", "libquantum", "hmmer"}
	for _, pol := range policies() {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			t.Parallel()
			res := scenario.Run(s5(0xA91), pol)
			if len(res.Apps) != len(wantOrder) {
				t.Fatalf("%d apps measured, want %d", len(res.Apps), len(wantOrder))
			}
			for i, a := range res.Apps {
				if a.Name != wantOrder[i] {
					t.Errorf("app %d is %q, want %q (deployment order)", i, a.Name, wantOrder[i])
				}
				m, ok := a.Perf()
				if !ok || math.IsNaN(m) || math.IsInf(m, 0) || m <= 0 {
					t.Errorf("%s: metric %v (ok=%v), want finite and positive", a.Name, m, ok)
				}
				d, _, _ := a.Metrics.Primary()
				if isLat := d.Name == scenario.MLatencyMean.Name; isLat != (a.Name == "SPECweb2009") {
					t.Errorf("%s: primary metric %q, want latency metric only for the web app", a.Name, d.Name)
				}
				if a.Instances <= 0 {
					t.Errorf("%s: %d instances", a.Name, a.Instances)
				}
			}
			if res.CtxSwitches == 0 {
				t.Error("hypervisor never context-switched")
			}
		})
	}
}

// TestPoliciesAreDeterministic re-runs each policy with the same seed
// and demands identical measurements — the property the sweep
// subsystem's parallelism rests on.
func TestPoliciesAreDeterministic(t *testing.T) {
	for _, mk := range []func() scenario.Policy{
		func() scenario.Policy { return baselines.XenDefault{} },
		func() scenario.Policy { return baselines.Microsliced() },
		func() scenario.Policy { return baselines.AQL{} },
	} {
		a := scenario.Run(s5(7), mk())
		b := scenario.Run(s5(7), mk())
		if name := a.Policy; name != b.Policy {
			t.Fatalf("policy names differ: %q vs %q", a.Policy, b.Policy)
		}
		for i := range a.Apps {
			if !a.Apps[i].Metrics.Equal(b.Apps[i].Metrics) {
				t.Errorf("%s/%s: metric sets differ across identical runs: %v vs %v",
					a.Policy, a.Apps[i].Name, a.Apps[i].Metrics.Names(), b.Apps[i].Metrics.Names())
			}
		}
	}
}

// TestMicroslicedHelpsIOHurtsLLCF pins the paper's headline contrast
// on S5: a 1 ms quantum for everyone slashes web latency but taxes the
// LLC-friendly batch app, relative to default Xen.
func TestMicroslicedHelpsIOHurtsLLCF(t *testing.T) {
	base := scenario.Run(s5(0xA91), baselines.XenDefault{})
	micro := scenario.Run(s5(0xA91), baselines.Microsliced())
	norm := scenario.Normalize(micro, base)
	if n := norm["SPECweb2009"]; n >= 1 {
		t.Errorf("microsliced web latency normalized %.3f, want < 1", n)
	}
	if n := norm["bzip2"]; n <= 1 {
		t.Errorf("microsliced bzip2 normalized %.3f, want > 1 (LLCF penalty)", n)
	}
}

// TestVTurboRefusesToTakeEveryCore documents the guard against a turbo
// pool that would starve the normal pool.
func TestVTurboRefusesToTakeEveryCore(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("vTurbo with TurboPCPUs >= all guest pCPUs did not panic")
		}
	}()
	scenario.Run(s5(1), baselines.VTurbo{TurboPCPUs: 4})
}

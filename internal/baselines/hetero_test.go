package baselines_test

import (
	"testing"

	"aqlsched/internal/baselines"
	"aqlsched/internal/core"
	"aqlsched/internal/credit"
	"aqlsched/internal/hw"
	"aqlsched/internal/scenario"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

// bigLittleTopo is the i7-3770 with its 8 cores split into a fast and
// a slow class — the smallest heterogeneous machine.
func bigLittleTopo() *hw.Topology {
	top := *hw.I73770()
	top.Classes = []hw.CoreClass{
		{Name: "big", Count: 4, Speed: 1},
		{Name: "little", Count: 4, Speed: 0.6},
	}
	return &top
}

// suiteApp finds a reference app of the wanted expected vCPU type.
func suiteApp(t *testing.T, want vcputype.Type) workload.AppSpec {
	t.Helper()
	for _, s := range workload.Suite() {
		if s.Expected == want {
			return s
		}
	}
	t.Fatalf("no suite app with expected type %v", want)
	return workload.AppSpec{}
}

// TestHeteroAQLPlacesIOOnFastCores: on a classed machine the policy
// must pool the latency-sensitive (IOInt-expected) vCPUs onto the
// fastest core class at the small quantum, and everything else onto
// the remaining cores at the Xen default.
func TestHeteroAQLPlacesIOOnFastCores(t *testing.T) {
	topo := bigLittleTopo()
	h := xen.New(topo, credit.New(), 1)
	rng := sim.NewRNG(9)
	io := workload.Deploy(h, suiteApp(t, vcputype.IOInt), "", rng)
	batch := workload.Deploy(h, suiteApp(t, vcputype.LLCF), "", rng)
	deps := []*workload.Deployment{io, batch}

	pol := baselines.HeteroAQL{}
	fast := pol.FastPCPUs(h)
	if len(fast) == 0 {
		t.Fatal("FastPCPUs empty on a classed machine")
	}
	for _, p := range fast {
		if topo.ClassOf(p) != 0 {
			t.Errorf("fast pCPU %d is in class %d, want the big class 0", p, topo.ClassOf(p))
		}
	}

	pol.Setup(h, deps)
	for _, v := range io.Dom.VCPUs {
		pool := v.Pool()
		if pool == nil || pool.Name != "fast" {
			t.Fatalf("IO vCPU in pool %v, want the fast pool", pool)
		}
		if pool.Slice != sim.Millisecond {
			t.Errorf("fast pool quantum %v, want the 1 ms default", pool.Slice)
		}
		for _, p := range pool.PCPUs() {
			if topo.ClassOf(p) != 0 {
				t.Errorf("fast pool spans pCPU %d of class %d", p, topo.ClassOf(p))
			}
		}
	}
	for _, v := range batch.Dom.VCPUs {
		pool := v.Pool()
		if pool == nil || pool.Name != "slow" {
			t.Fatalf("batch vCPU in pool %v, want the slow pool", pool)
		}
		if pool.Slice != xen.DefaultSlice {
			t.Errorf("slow pool quantum %v, want the Xen default", pool.Slice)
		}
		for _, p := range pool.PCPUs() {
			if topo.ClassOf(p) == 0 {
				t.Errorf("slow pool includes fast pCPU %d", p)
			}
		}
	}
}

// TestHeteroAQLFallsBackToAQL: on a homogeneous machine the policy is
// plain AQL — FastPCPUs yields nothing and Setup wires the adaptive
// controller.
func TestHeteroAQLFallsBackToAQL(t *testing.T) {
	h := xen.New(hw.I73770(), credit.New(), 1)
	rng := sim.NewRNG(9)
	deps := []*workload.Deployment{workload.Deploy(h, suiteApp(t, vcputype.IOInt), "", rng)}

	pol := baselines.HeteroAQL{Out: new(*core.Controller)}
	if fast := pol.FastPCPUs(h); fast != nil {
		t.Fatalf("FastPCPUs = %v on a homogeneous machine, want nil", fast)
	}
	pol.Setup(h, deps)
	if pol.AQLController() == nil {
		t.Error("homogeneous fallback did not arm the AQL controller")
	}
}

func TestHeteroAQLNames(t *testing.T) {
	if got := (baselines.HeteroAQL{}).Name(); got != "hetero-aql" {
		t.Errorf("default name %q", got)
	}
	if got := (baselines.HeteroAQL{FastQ: 2 * sim.Millisecond}).Name(); got == "hetero-aql" {
		t.Errorf("non-default quantum not reflected in the name: %q", got)
	}
}

// TestHeteroAQLRunsEndToEnd: a full scenario run on the classed
// machine must complete and measure every app (the speed-scaled
// dispatch path under a real workload).
func TestHeteroAQLRunsEndToEnd(t *testing.T) {
	spec := s5(0xA91)
	spec.Topo = bigLittleTopo()
	res := scenario.Run(spec, baselines.HeteroAQL{})
	if len(res.Apps) == 0 {
		t.Fatal("no apps measured")
	}
	for _, a := range res.Apps {
		if m, ok := a.Perf(); !ok || m <= 0 {
			t.Errorf("%s: metric %v (ok=%v)", a.Name, m, ok)
		}
	}
	// Determinism on the heterogeneous path: the speed-scaling
	// arithmetic is integer-anchored, so identical seeds agree exactly.
	again := scenario.Run(spec, baselines.HeteroAQL{})
	for i := range res.Apps {
		if !res.Apps[i].Metrics.Equal(again.Apps[i].Metrics) {
			t.Errorf("%s: hetero run not deterministic", res.Apps[i].Name)
		}
	}
}

// TestEDFEmitsDeadlineMetrics: an EDF run reports the deadline miss
// accounting; other policies leave the metrics absent.
func TestEDFEmitsDeadlineMetrics(t *testing.T) {
	res := scenario.Run(s5(7), baselines.EDF{Deadline: 10 * sim.Millisecond, Stats: new(baselines.EDFStats)})
	misses, okM := res.Metrics.Get(scenario.MDeadlineMisses.Name)
	disp, okD := res.Metrics.Get(scenario.MDeadlineDispatches.Name)
	ratio, okR := res.Metrics.Get(scenario.MDeadlineMissRatio.Name)
	if !okM || !okD || !okR {
		t.Fatalf("deadline metrics missing: misses=%v dispatches=%v ratio=%v", okM, okD, okR)
	}
	if disp <= 0 {
		t.Fatalf("deadline_dispatches = %v, want > 0", disp)
	}
	if want := misses / disp; ratio != want {
		t.Errorf("deadline_miss_ratio = %v, want misses/dispatches = %v", ratio, want)
	}

	base := scenario.Run(s5(7), baselines.XenDefault{})
	if _, ok := base.Metrics.Get(scenario.MDeadlineMissRatio.Name); ok {
		t.Error("xen run emits deadline_miss_ratio; the metric must stay policy-gated")
	}
}

// TestEDFQuantumDerivation pins the deadline→quantum rule: half the
// deadline, clamped to [1, DefaultSlice].
func TestEDFQuantumDerivation(t *testing.T) {
	cases := []struct {
		deadline, want sim.Time
	}{
		{10 * sim.Millisecond, 5 * sim.Millisecond},
		{1, 1}, // floor clamp
		{200 * sim.Millisecond, xen.DefaultSlice}, // ceiling clamp
	}
	for _, c := range cases {
		if got := (baselines.EDF{Deadline: c.deadline}).Quantum(); got != c.want {
			t.Errorf("Quantum(deadline=%v) = %v, want %v", c.deadline, got, c.want)
		}
	}
}

// Package baselines implements the schedulers the paper compares
// against in Section 4.2 (Fig. 8 and Table 6):
//
//   - vTurbo [14]: a dedicated "turbo" pCPU pool with a small quantum,
//     to which IO-intensive vCPUs are manually assigned;
//   - vSlicer [15]: IO-intensive vCPUs get differentiated, smaller time
//     slices on the shared pools (no dedicated cores);
//   - Microsliced [6]: a small quantum for every vCPU.
//
// None of them recognizes types online (Table 6: "dynamic application
// type recognition: not supported"), so — exactly as the authors did —
// the experiments configure them manually from the known workload types
// for their best performance.
package baselines

import (
	"fmt"

	"aqlsched/internal/core"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/workload"
	"aqlsched/internal/xen"
)

// XenDefault is the unmodified Xen credit scheduler: one pool, 30 ms
// quantum, BOOST enabled. It is the normalization baseline of every
// figure.
type XenDefault struct{}

// Name implements the scenario policy interface.
func (XenDefault) Name() string { return "xen-credit" }

// Setup implements the scenario policy interface (nothing to do: the
// hypervisor starts in exactly this configuration).
func (XenDefault) Setup(h *xen.Hypervisor, deps []*workload.Deployment) {}

// FixedQuantum runs every vCPU in a single pool with quantum Q.
type FixedQuantum struct {
	Q sim.Time
	N string
}

// Name implements the scenario policy interface.
func (f FixedQuantum) Name() string {
	if f.N != "" {
		return f.N
	}
	return "fixed-" + f.Q.String()
}

// Setup implements the scenario policy interface.
func (f FixedQuantum) Setup(h *xen.Hypervisor, deps []*workload.Deployment) {
	pool := xen.NewCPUPool("all", f.Q, h.GuestPCPUs())
	plan := &xen.PoolPlan{Pools: []*xen.CPUPool{pool}, Assign: map[*xen.VCPU]*xen.CPUPool{}}
	for _, v := range h.AllVCPUs() {
		plan.Assign[v] = pool
	}
	if err := h.ApplyPlan(plan, h.Engine.Now()); err != nil {
		panic("baselines: " + err.Error())
	}
}

// Microsliced is [6]: shorten the quantum for everyone. The paper
// configured it at 1 ms for the comparison. (Its companion hardware
// change for reducing LLC contention is not modelled — that is exactly
// the LLCF penalty Fig. 8 shows.)
func Microsliced() FixedQuantum {
	return FixedQuantum{Q: 1 * sim.Millisecond, N: "microsliced"}
}

// VTurbo is [14]: dedicate TurboPCPUs cores as a turbo pool with a
// small quantum and pin the (manually identified) IO-intensive vCPUs to
// it; everything else shares the remaining cores at the default
// quantum.
type VTurbo struct {
	// TurboPCPUs is how many cores the turbo pool takes (default 1).
	TurboPCPUs int
	// Q is the turbo quantum (default 1 ms, the paper's comparison
	// configuration).
	Q sim.Time
}

// Name implements the scenario policy interface.
func (VTurbo) Name() string { return "vturbo" }

// Setup implements the scenario policy interface.
func (v VTurbo) Setup(h *xen.Hypervisor, deps []*workload.Deployment) {
	n := v.TurboPCPUs
	if n <= 0 {
		n = 1
	}
	q := v.Q
	if q <= 0 {
		q = 1 * sim.Millisecond
	}
	guest := h.GuestPCPUs()
	if n >= len(guest) {
		panic("baselines: vTurbo would take every pCPU")
	}
	turbo := xen.NewCPUPool("turbo", q, guest[:n])
	normal := xen.NewCPUPool("normal", xen.DefaultSlice, guest[n:])
	plan := &xen.PoolPlan{Pools: []*xen.CPUPool{turbo, normal}, Assign: map[*xen.VCPU]*xen.CPUPool{}}
	io := ioVCPUs(deps)
	for _, vc := range h.AllVCPUs() {
		if io[vc] {
			plan.Assign[vc] = turbo
		} else {
			plan.Assign[vc] = normal
		}
	}
	if err := h.ApplyPlan(plan, h.Engine.Now()); err != nil {
		panic("baselines: " + err.Error())
	}
}

// VSlicer is [15]: latency-sensitive vCPUs are sliced at a smaller
// quantum (differentiated-frequency CPU slicing) but share the same
// pools as everyone else.
type VSlicer struct {
	// MicroSlice is the latency-sensitive slice (default 5 ms, the
	// vSlicer paper's micro time-slice).
	MicroSlice sim.Time
}

// Name implements the scenario policy interface.
func (VSlicer) Name() string { return "vslicer" }

// Setup implements the scenario policy interface.
func (v VSlicer) Setup(h *xen.Hypervisor, deps []*workload.Deployment) {
	q := v.MicroSlice
	if q <= 0 {
		q = 5 * sim.Millisecond
	}
	io := ioVCPUs(deps)
	for _, vc := range h.AllVCPUs() {
		if io[vc] {
			vc.SliceOverride = q
		}
	}
}

// AQL attaches the AQL_Sched controller (the paper's system).
type AQL struct {
	// DisableCustomization gives the Fig. 7 ablation (clustering only,
	// FixedQuantum on every pool).
	DisableCustomization bool
	FixedQuantum         sim.Time
	// MonitorOnly runs vTRS sampling without ever reconfiguring pools —
	// the Section 4.3 overhead measurement.
	MonitorOnly bool
	// Window overrides the vTRS sliding-window length n (and, with it,
	// the recluster cadence and grace period) — the reactivity-vs-churn
	// knob of Section 3.3. Zero keeps the paper's n = 4.
	Window int
	// Out receives the controller for post-run inspection.
	Out **core.Controller
}

// Name implements the scenario policy interface.
func (a AQL) Name() string {
	switch {
	case a.MonitorOnly:
		return "aql-monitor-only"
	case a.DisableCustomization:
		return "aql-nocustom-" + a.FixedQuantum.String()
	case a.Window > 0:
		return fmt.Sprintf("aql-w%d", a.Window)
	}
	return "aql"
}

// Setup implements the scenario policy interface.
func (a AQL) Setup(h *xen.Hypervisor, deps []*workload.Deployment) {
	c := core.New(h)
	if a.DisableCustomization {
		c.QuantumCustomization = false
		c.FixedQuantum = a.FixedQuantum
	}
	if a.Window > 0 {
		c.Monitor.Window = a.Window
		c.ReclusterEvery = a.Window
		c.GracePeriods = 2 * a.Window
	}
	// MonitorOnly wins over Window: a monitor-only run must never
	// recluster, whatever window it samples with.
	if a.MonitorOnly {
		c.ReclusterEvery = 0
	}
	c.Start()
	if a.Out != nil {
		*a.Out = c
	}
}

// AQLController implements scenario.ControllerProvider: it exposes the
// controller the last Setup produced, so the adaptation tracker can
// read recognized types. Nil until Setup runs (or without an Out slot).
func (a AQL) AQLController() *core.Controller {
	if a.Out == nil {
		return nil
	}
	return *a.Out
}

// ioVCPUs marks the vCPUs of IO-intensive deployments (manual
// configuration, as the paper did for the baselines).
func ioVCPUs(deps []*workload.Deployment) map[*xen.VCPU]bool {
	out := make(map[*xen.VCPU]bool)
	for _, d := range deps {
		if d.Spec.Expected == vcputype.IOInt {
			for _, v := range d.Dom.VCPUs {
				out[v] = true
			}
		}
	}
	return out
}

package vtrs

import (
	"math"
	"testing"
	"testing/quick"

	"aqlsched/internal/hw"
	"aqlsched/internal/vcputype"
)

// Period-sized counter deltas representative of each type (30ms period,
// vCPU running ~1/4 of the time at 1000 instr/µs).
func ioDelta() hw.Counters {
	return hw.Counters{Instructions: 2_000_000, LLCReferences: 500, IOEvents: 8}
}
func spinDelta() hw.Counters {
	return hw.Counters{Instructions: 4_000_000, LLCReferences: 1200, PauseLoops: 50_000, LockOps: 12}
}
func llcfDelta() hw.Counters {
	// RR = 1%, MR = 3%.
	return hw.Counters{Instructions: 7_000_000, LLCReferences: 70_000, LLCMisses: 2100}
}
func llcoDelta() hw.Counters {
	// RR = 3%, MR = 90%.
	return hw.Counters{Instructions: 7_000_000, LLCReferences: 210_000, LLCMisses: 189_000}
}
func lolcfDelta() hw.Counters {
	// RR = 0.01%.
	return hw.Counters{Instructions: 7_000_000, LLCReferences: 700, LLCMisses: 70}
}

func TestCursorsSumInvariant(t *testing.T) {
	lim := DefaultLimits()
	for name, d := range map[string]hw.Counters{
		"io": ioDelta(), "spin": spinDelta(), "llcf": llcfDelta(),
		"llco": llcoDelta(), "lolcf": lolcfDelta(),
	} {
		c := Compute(d, lim)
		sum := c.LoLCF + c.LLCF + c.LLCO
		if math.Abs(sum-100) > 1e-9 {
			t.Errorf("%s: CPU-burn cursors sum to %.4f, want 100 (equation 2)", name, sum)
		}
	}
}

func TestComputeRecognizesEachType(t *testing.T) {
	lim := DefaultLimits()
	cases := []struct {
		name  string
		delta hw.Counters
		want  vcputype.Type
	}{
		{"IOInt", ioDelta(), vcputype.IOInt},
		{"ConSpin", spinDelta(), vcputype.ConSpin},
		{"LLCF", llcfDelta(), vcputype.LLCF},
		{"LLCO", llcoDelta(), vcputype.LLCO},
		{"LoLCF", lolcfDelta(), vcputype.LoLCF},
	}
	for _, tc := range cases {
		r := NewRecognizer(lim, 4)
		for i := 0; i < 4; i++ {
			r.Observe(tc.delta)
		}
		if got := r.Type(); got != tc.want {
			t.Errorf("%s: recognized as %v (avg %+v)", tc.name, got, r.Averages())
		}
	}
}

func TestSaturationAtLimit(t *testing.T) {
	lim := DefaultLimits()
	d := hw.Counters{Instructions: 1_000_000, IOEvents: uint64(lim.IOIntLimit * 10)}
	c := Compute(d, lim)
	if c.IOInt != 100 {
		t.Errorf("IOInt cursor %v above limit, want 100", c.IOInt)
	}
}

func TestTypeChangeTracksWindow(t *testing.T) {
	// A vCPU that switches from LLCF to LLCO behaviour should be
	// re-typed after the window refills (the paper's dynamic vTRS).
	r := NewRecognizer(DefaultLimits(), 4)
	for i := 0; i < 8; i++ {
		r.Observe(llcfDelta())
	}
	if r.Type() != vcputype.LLCF {
		t.Fatalf("initial type %v, want LLCF", r.Type())
	}
	for i := 0; i < 4; i++ {
		r.Observe(llcoDelta())
	}
	if r.Type() != vcputype.LLCO {
		t.Errorf("after behaviour change, type %v, want LLCO", r.Type())
	}
}

func TestIdlePeriodsAreSkipped(t *testing.T) {
	// Zero-delta periods (descheduled vCPU) must not push the window
	// toward LoLCF.
	r := NewRecognizer(DefaultLimits(), 4)
	for i := 0; i < 4; i++ {
		r.Observe(llcfDelta())
	}
	for i := 0; i < 20; i++ {
		r.Observe(hw.Counters{}) // descheduled: nothing happened
	}
	if r.Type() != vcputype.LLCF {
		t.Errorf("idle periods changed type to %v, want LLCF retained", r.Type())
	}
}

func TestIOSignalCountsEvenWithoutCompute(t *testing.T) {
	// An IO vCPU that barely computes still gets typed via its events.
	r := NewRecognizer(DefaultLimits(), 4)
	d := hw.Counters{Instructions: 50_000, IOEvents: 20}
	for i := 0; i < 4; i++ {
		r.Observe(d)
	}
	if r.Type() != vcputype.IOInt {
		t.Errorf("low-compute IO vCPU typed %v, want IOInt", r.Type())
	}
}

func TestDefaultTypeIsLoLCF(t *testing.T) {
	r := NewRecognizer(DefaultLimits(), 4)
	if r.Type() != vcputype.LoLCF {
		t.Errorf("unobserved vCPU typed %v, want LoLCF", r.Type())
	}
	if r.Ready() {
		t.Error("recognizer claims ready with no samples")
	}
}

func TestMixedIOAndTrashingIsIOIntWithHighLLCO(t *testing.T) {
	// The IOInt+ profile of Section 3.5: an IO vCPU whose CPU work
	// trashes the LLC. Type stays IOInt; the LLCO cursor (used by the
	// first-level clustering) must be high.
	r := NewRecognizer(DefaultLimits(), 4)
	d := llcoDelta()
	d.IOEvents = 20
	for i := 0; i < 4; i++ {
		r.Observe(d)
	}
	if r.Type() != vcputype.IOInt {
		t.Fatalf("typed %v, want IOInt", r.Type())
	}
	if avg := r.Averages(); avg.LLCO < 50 {
		t.Errorf("LLCO cursor %v, want > 50 (trashing IOInt+)", avg.LLCO)
	}
}

// Property: cursors are always within [0, 100] and the CPU-burn cursors
// sum to 100, for arbitrary counter deltas.
func TestCursorBoundsProperty(t *testing.T) {
	lim := DefaultLimits()
	f := func(instr uint32, refs uint32, missFrac uint8, io uint16, pause uint32) bool {
		d := hw.Counters{
			Instructions:  uint64(instr),
			LLCReferences: uint64(refs),
			LLCMisses:     uint64(refs) * uint64(missFrac%101) / 100,
			IOEvents:      uint64(io),
			PauseLoops:    uint64(pause),
		}
		c := Compute(d, lim)
		for _, v := range []float64{c.IOInt, c.ConSpin, c.LoLCF, c.LLCF, c.LLCO} {
			if v < -1e-9 || v > 100+1e-9 {
				return false
			}
		}
		return math.Abs(c.LoLCF+c.LLCF+c.LLCO-100) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: recognizer averages are convex combinations of observed
// cursors, hence bounded by [0,100] too.
func TestAverageBoundsProperty(t *testing.T) {
	lim := DefaultLimits()
	f := func(seeds []uint32) bool {
		r := NewRecognizer(lim, 4)
		for _, s := range seeds {
			d := hw.Counters{
				Instructions:  uint64(s%10_000_000) + uint64(lim.MinInstructions),
				LLCReferences: uint64(s % 500_000),
				LLCMisses:     uint64(s % 100_000),
				IOEvents:      uint64(s % 50),
				PauseLoops:    uint64(s % 100_000),
			}
			if d.LLCMisses > d.LLCReferences {
				d.LLCMisses = d.LLCReferences
			}
			r.Observe(d)
		}
		avg := r.Averages()
		for _, v := range []float64{avg.IOInt, avg.ConSpin, avg.LoLCF, avg.LLCF, avg.LLCO} {
			if v < -1e-9 || v > 100+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

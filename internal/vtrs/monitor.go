package vtrs

import (
	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
	"aqlsched/internal/xen"
)

// Sample is one recorded (period, averages, type) observation, used to
// regenerate Fig. 4.
type Sample struct {
	Period int
	At     sim.Time
	Avg    Cursors
	Type   vcputype.Type
}

// Monitor drives a Recognizer per vCPU off the hypervisor's counters.
// Every Period it snapshots each vCPU's free-running counter block,
// computes the delta against the previous snapshot and feeds the
// recognizer — exactly the three monitoring systems of Section 3.3.2
// (event-channel analysis, PLE trapping, PMU reading), which the paper
// measured to have negligible overhead.
type Monitor struct {
	H      *xen.Hypervisor
	Period sim.Time
	Window int
	Limits Limits

	// OnPeriod, when set, runs after each monitoring period (the AQL
	// controller hooks its decision cadence here).
	OnPeriod func(now sim.Time, period int)

	recs    map[*xen.VCPU]*Recognizer
	last    map[*xen.VCPU]hw.Counters
	periods int

	traced map[*xen.VCPU][]Sample
}

// NewMonitor builds a monitor with the default period, window and
// limits.
func NewMonitor(h *xen.Hypervisor) *Monitor {
	return &Monitor{
		H:      h,
		Period: DefaultPeriod,
		Window: DefaultWindow,
		Limits: DefaultLimits(),
		recs:   make(map[*xen.VCPU]*Recognizer),
		last:   make(map[*xen.VCPU]hw.Counters),
		traced: make(map[*xen.VCPU][]Sample),
	}
}

// Start schedules the periodic sampling.
func (m *Monitor) Start() {
	var tick func(now sim.Time)
	tick = func(now sim.Time) {
		m.sample(now)
		m.H.Engine.After(m.Period, tick)
	}
	m.H.Engine.After(m.Period, tick)
}

// Trace enables per-period recording for a vCPU (Fig. 4).
func (m *Monitor) Trace(v *xen.VCPU) { m.traced[v] = []Sample{} }

// Samples returns the recorded trace for a vCPU.
func (m *Monitor) Samples(v *xen.VCPU) []Sample { return m.traced[v] }

// Periods reports how many monitoring periods have elapsed.
func (m *Monitor) Periods() int { return m.periods }

// sample runs one monitoring period for every vCPU.
func (m *Monitor) sample(now sim.Time) {
	m.periods++
	for _, d := range m.H.Domains {
		for _, v := range d.VCPUs {
			rec, ok := m.recs[v]
			if !ok {
				rec = NewRecognizer(m.Limits, m.Window)
				m.recs[v] = rec
			}
			cur := v.Counters
			delta := cur.Sub(m.last[v])
			m.last[v] = cur
			rec.Observe(delta)
			if trace, ok := m.traced[v]; ok {
				m.traced[v] = append(trace, Sample{
					Period: m.periods,
					At:     now,
					Avg:    rec.Averages(),
					Type:   rec.Type(),
				})
			}
		}
	}
	if m.OnPeriod != nil {
		m.OnPeriod(now, m.periods)
	}
}

// TypeOf reports the recognized type of a vCPU (LoLCF before any
// observation).
func (m *Monitor) TypeOf(v *xen.VCPU) vcputype.Type {
	if rec, ok := m.recs[v]; ok {
		return rec.Type()
	}
	return vcputype.LoLCF
}

// AveragesOf reports the cursor averages of a vCPU.
func (m *Monitor) AveragesOf(v *xen.VCPU) Cursors {
	if rec, ok := m.recs[v]; ok {
		return rec.Averages()
	}
	return Cursors{}
}

// TrashingCursor reports the vCPU's LLCO cursor average — the trashing
// intensity the first-level clustering algorithm uses to classify
// IOInt+/ConSpin+ vCPUs (Section 3.5).
func (m *Monitor) TrashingCursor(v *xen.VCPU) float64 {
	return m.AveragesOf(v).LLCO
}

// Package vtrs implements the vCPU Type Recognition System of
// Section 3.3: every monitoring period (30 ms) it samples each vCPU's
// low-level counters — IO events from the event-channel monitor, PAUSE
// loops from the Pause-Loop-Exiting monitor, LLC references/misses and
// instructions from the PMU monitor — normalizes them into five cursors
// per equations (1)-(5), slides an n-entry window (n = 4 in the paper),
// and types the vCPU by the highest cursor average.
package vtrs

import (
	"fmt"

	"aqlsched/internal/hw"
	"aqlsched/internal/sim"
	"aqlsched/internal/vcputype"
)

// Default monitoring parameters (Section 3.3.1).
const (
	// DefaultPeriod is the monitoring period.
	DefaultPeriod = 30 * sim.Millisecond
	// DefaultWindow is n, the number of periods before a decision; the
	// paper found n = 4 a good trade-off between reactivity and
	// migration churn.
	DefaultWindow = 4
)

// Limits are the normalization thresholds of equations (1)-(5). They
// are calibration constants of the monitoring system: the value above
// which a metric marks the vCPU as 100% of a type.
type Limits struct {
	// IOIntLimit: IO events per period making a vCPU fully IOInt.
	IOIntLimit float64
	// ConSpinLimit: spin-lock operations per period making it fully
	// ConSpin (the hypercall-wrapper monitor).
	ConSpinLimit float64
	// PLELimit: PAUSE-loop exits per period making it fully ConSpin
	// (the hardware monitor; Section 3.3.2 offers both and we take the
	// stronger of the two signals — ops dominate under light contention,
	// pauses under heavy contention).
	PLELimit float64
	// LLCRRLimit: the maximum LLC references-per-instruction ratio a
	// LoLCF vCPU may generate (equation 3).
	LLCRRLimit float64
	// LLCMRLimit: the maximum LLC miss ratio an LLCF vCPU may generate
	// (equation 4).
	LLCMRLimit float64
	// MinInstructions gates the CPU-burn cursors: a period in which the
	// vCPU barely ran carries no cache information and is skipped
	// unless it carries IO or spin signal.
	MinInstructions uint64
}

// DefaultLimits returns the thresholds used throughout the evaluation.
func DefaultLimits() Limits {
	return Limits{
		IOIntLimit:      4,     // ≥ ~133 IO events/s -> fully IOInt
		ConSpinLimit:    1,     // any spin-lock use in a period marks it ConSpin
		PLELimit:        3000,  // ≥ ~94 µs of spinning per period
		LLCRRLimit:      0.002, // 0.2% of instructions referencing LLC
		LLCMRLimit:      0.30,  // 30% LLC miss ratio boundary
		MinInstructions: 300_000,
	}
}

// Cursors holds the five per-period cursor values (percent, 0-100).
// LoLCF + LLCF + LLCO always sum to 100 (equation 2).
type Cursors struct {
	IOInt, ConSpin, LoLCF, LLCF, LLCO float64
}

// Get returns the cursor for a type.
func (c Cursors) Get(t vcputype.Type) float64 {
	switch t {
	case vcputype.IOInt:
		return c.IOInt
	case vcputype.ConSpin:
		return c.ConSpin
	case vcputype.LoLCF:
		return c.LoLCF
	case vcputype.LLCF:
		return c.LLCF
	case vcputype.LLCO:
		return c.LLCO
	}
	panic(fmt.Sprintf("vtrs: no cursor for %v", t))
}

// saturate implements equation (1): level scaled against a limit,
// saturating at 100.
func saturate(level, limit float64) float64 {
	if limit <= 0 {
		panic("vtrs: non-positive limit")
	}
	if level >= limit {
		return 100
	}
	return level * 100 / limit
}

// Compute derives the five cursors from one period's counter delta,
// following equations (1)-(5) of Section 3.3.1.
func Compute(delta hw.Counters, lim Limits) Cursors {
	var c Cursors
	// Equation (1) for IOInt and ConSpin.
	c.IOInt = saturate(float64(delta.IOEvents), lim.IOIntLimit)
	c.ConSpin = saturate(float64(delta.LockOps), lim.ConSpinLimit)
	if lim.PLELimit > 0 {
		if ple := saturate(float64(delta.PauseLoops), lim.PLELimit); ple > c.ConSpin {
			c.ConSpin = ple
		}
	}

	// Equations (3)-(5) for the CPU-burn sub-types.
	rr := delta.LLCRefRatio()
	mr := delta.LLCMissRatio()
	if rr < lim.LLCRRLimit {
		c.LoLCF = (lim.LLCRRLimit - rr) * 100 / lim.LLCRRLimit
	}
	if mr < lim.LLCMRLimit {
		v := (lim.LLCMRLimit - mr) * 100 / lim.LLCMRLimit
		if rest := 100 - c.LoLCF; v > rest {
			v = rest
		}
		c.LLCF = v
	}
	c.LLCO = 100 - c.LoLCF - c.LLCF
	return c
}

// TypeHysteresis is the margin (in cursor percentage points) a new
// candidate type's average must exceed the current type's average by
// before the recognizer switches. It damps borderline flapping, which
// would otherwise translate into vCPU migration churn (the concern that
// made the paper pick n = 4 rather than 1).
const TypeHysteresis = 8.0

// TieBand generalizes the paper's priority-order tie-break to noisy
// measurements: among cursor averages within TieBand points of the
// maximum, the highest-priority (most specific) type wins. The LoLCF
// cursor sits near 80 for any low-LLC-traffic thread, so an IO or
// spin-lock thread whose own cursor dips a few points below it in one
// window period must not be misread as plain CPU burn.
const TieBand = 10.0

// Recognizer is the per-vCPU sliding window of cursor samples.
type Recognizer struct {
	lim    Limits
	window int
	hist   []Cursors
	next   int
	filled int

	hasType bool
	current vcputype.Type
}

// NewRecognizer builds a recognizer with the given window length.
func NewRecognizer(lim Limits, window int) *Recognizer {
	if window <= 0 {
		panic("vtrs: window must be positive")
	}
	return &Recognizer{lim: lim, window: window, hist: make([]Cursors, window)}
}

// Observe feeds one period's counter delta. Periods carrying no signal
// (the vCPU barely ran and produced no IO or spin events) are skipped so
// a descheduled vCPU does not drift toward LoLCF.
func (r *Recognizer) Observe(delta hw.Counters) {
	if delta.Instructions < r.lim.MinInstructions &&
		float64(delta.IOEvents) < r.lim.IOIntLimit/2 &&
		float64(delta.LockOps) < r.lim.ConSpinLimit/2 &&
		(r.lim.PLELimit <= 0 || float64(delta.PauseLoops) < r.lim.PLELimit/2) {
		return
	}
	r.hist[r.next] = Compute(delta, r.lim)
	r.next = (r.next + 1) % r.window
	if r.filled < r.window {
		r.filled++
	}
}

// Ready reports whether at least one sample has been observed.
func (r *Recognizer) Ready() bool { return r.filled > 0 }

// Averages reports the window-averaged cursors (xx_cur_avg).
func (r *Recognizer) Averages() Cursors {
	var sum Cursors
	if r.filled == 0 {
		return sum
	}
	for i := 0; i < r.filled; i++ {
		c := r.hist[i]
		sum.IOInt += c.IOInt
		sum.ConSpin += c.ConSpin
		sum.LoLCF += c.LoLCF
		sum.LLCF += c.LLCF
		sum.LLCO += c.LLCO
	}
	n := float64(r.filled)
	sum.IOInt /= n
	sum.ConSpin /= n
	sum.LoLCF /= n
	sum.LLCF /= n
	sum.LLCO /= n
	return sum
}

// Type reports the recognized vCPU type: the highest cursor average,
// ties broken by the paper's priority order (specific types first), with
// hysteresis against borderline flapping. Before any sample arrives, the
// default is LoLCF (an idle vCPU).
func (r *Recognizer) Type() vcputype.Type {
	if r.filled == 0 {
		return vcputype.LoLCF
	}
	avg := r.Averages()
	bestV := -1.0
	for _, t := range vcputype.All() {
		if v := avg.Get(t); v > bestV {
			bestV = v
		}
	}
	// First type (priority order) within the tie band of the maximum.
	best := vcputype.LoLCF
	for _, t := range vcputype.All() {
		if avg.Get(t) >= bestV-TieBand {
			best = t
			break
		}
	}
	r.hasType = true
	r.current = best
	return best
}
